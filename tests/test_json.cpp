/**
 * @file
 * util/json.hpp: escaping, exact 64-bit round-trips, nested scopes, and
 * parser strictness. The writer/parser pair is what makes the
 * BENCH_*.json trajectory files trustworthy, so round-trips are tested
 * through actual serialize -> parse cycles.
 */
#include <gtest/gtest.h>

#include <cstdint>

#include "util/error.hpp"
#include "util/json.hpp"

using namespace mts;

TEST(Json, ScalarsRender)
{
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue(std::int64_t(-7)).dump(), "-7");
    EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
    EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
}

TEST(Json, EscapingSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(jsonEscape(std::string("ctrl\x01")), "ctrl\\u0001");
    // UTF-8 passes through untouched.
    EXPECT_EQ(jsonEscape("§ 5.2 — ok"), "§ 5.2 — ok");
}

TEST(Json, EscapedStringsRoundTrip)
{
    const std::string nasty =
        "quote\" backslash\\ newline\n tab\t ctrl\x02 unicode§";
    JsonValue v = JsonValue::object();
    v["s"] = JsonValue(nasty);
    JsonValue back = parseJson(v.dump());
    EXPECT_EQ(back.find("s")->asString(), nasty);
}

TEST(Json, LargeUint64CountersRoundTripExactly)
{
    // Cycle/bit counters exceed 2^53; doubles would corrupt them.
    const std::uint64_t big = 18446744073709551615ull;  // 2^64-1
    const std::uint64_t odd = (1ull << 60) + 1;
    JsonValue v = JsonValue::object();
    v["max"] = JsonValue(big);
    v["odd"] = JsonValue(odd);
    std::string text = v.dump();
    EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
    JsonValue back = parseJson(text);
    EXPECT_EQ(back.find("max")->asUint(), big);
    EXPECT_EQ(back.find("odd")->asUint(), odd);
}

TEST(Json, NegativeIntegersRoundTrip)
{
    JsonValue v = JsonValue::object();
    v["t"] = JsonValue(std::int64_t(-123456789012345ll));
    JsonValue back = parseJson(v.dump());
    EXPECT_EQ(back.find("t")->asInt(), -123456789012345ll);
}

TEST(Json, DoublesRoundTripShortest)
{
    JsonValue v = JsonValue::array();
    v.push(JsonValue(0.1));
    v.push(JsonValue(0.8533333333333334));
    v.push(JsonValue(1e300));
    JsonValue back = parseJson(v.dump());
    EXPECT_DOUBLE_EQ(back.at(0).asNumber(), 0.1);
    EXPECT_DOUBLE_EQ(back.at(1).asNumber(), 0.8533333333333334);
    EXPECT_DOUBLE_EQ(back.at(2).asNumber(), 1e300);
}

TEST(Json, NestedScopesRoundTripAndPreserveOrder)
{
    JsonValue v = JsonValue::object();
    v["cpu"]["p0"]["instructions"] = JsonValue(std::uint64_t(123));
    v["cpu"]["p1"]["instructions"] = JsonValue(std::uint64_t(456));
    v["net"]["bits"]["forward"] = JsonValue(std::uint64_t(789));
    v["tables"] = JsonValue::array();
    v["tables"].push(JsonValue("t1"));

    JsonValue back = parseJson(v.dump(2));
    EXPECT_EQ(back.find("cpu")->find("p1")->find("instructions")->asUint(),
              456u);
    EXPECT_EQ(back.find("net")->find("bits")->find("forward")->asUint(),
              789u);
    ASSERT_EQ(back.find("tables")->size(), 1u);
    EXPECT_EQ(back.find("tables")->at(0).asString(), "t1");
    // Insertion order survives the round trip.
    const auto &items = back.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, "cpu");
    EXPECT_EQ(items[1].first, "net");
    EXPECT_EQ(items[2].first, "tables");
}

TEST(Json, PrettyAndCompactParseTheSame)
{
    JsonValue v = JsonValue::object();
    v["a"] = JsonValue(1);
    v["b"]["c"] = JsonValue("x");
    JsonValue fromCompact = parseJson(v.dump(0));
    JsonValue fromPretty = parseJson(v.dump(4));
    EXPECT_EQ(fromCompact.dump(), fromPretty.dump());
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_THROW(parseJson(""), FatalError);
    EXPECT_THROW(parseJson("{"), FatalError);
    EXPECT_THROW(parseJson("{\"a\":1,}"), FatalError);
    EXPECT_THROW(parseJson("[1 2]"), FatalError);
    EXPECT_THROW(parseJson("\"unterminated"), FatalError);
    EXPECT_THROW(parseJson("nul"), FatalError);
    EXPECT_THROW(parseJson("{} trailing"), FatalError);
}

TEST(Json, TypeMismatchesAreFatal)
{
    JsonValue arr = JsonValue::array();
    EXPECT_THROW(arr["key"], FatalError);
    JsonValue num = JsonValue(1.5);
    EXPECT_THROW(num.asUint(), FatalError);
    EXPECT_THROW(JsonValue("s").asNumber(), FatalError);
}
