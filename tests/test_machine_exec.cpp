#include <gtest/gtest.h>

#include "test_helpers.hpp"

using namespace mts;
using namespace mts::test;

namespace
{

/** Run "result = a OP b" through the machine and return the result. */
std::int64_t
evalIntOp(const std::string &op, std::int64_t a, std::int64_t b)
{
    std::string src = ".shared result, 1\nmain:\n";
    src += "    li r8, " + std::to_string(a) + "\n";
    src += "    li r9, " + std::to_string(b) + "\n";
    src += "    " + op + " r10, r8, r9\n";
    src += "    sts r10, result\n    halt\n";
    return runAsm(src).sharedInt("result");
}

double
evalFpOp(const std::string &op, double a, double b, bool unary = false)
{
    char buf[64];
    std::string src = ".shared result, 1\nmain:\n";
    std::snprintf(buf, sizeof(buf), "    fli f1, %.17g\n", a);
    src += buf;
    std::snprintf(buf, sizeof(buf), "    fli f2, %.17g\n", b);
    src += buf;
    src += unary ? "    " + op + " f3, f1\n"
                 : "    " + op + " f3, f1, f2\n";
    src += "    fsts f3, result\n    halt\n";
    return runAsm(src).sharedDouble("result");
}

} // namespace

struct IntOpCase
{
    const char *op;
    std::int64_t a, b, expect;
};

class IntAluTest : public ::testing::TestWithParam<IntOpCase>
{
};

TEST_P(IntAluTest, ComputesExpectedValue)
{
    const IntOpCase &c = GetParam();
    EXPECT_EQ(evalIntOp(c.op, c.a, c.b), c.expect)
        << c.op << " " << c.a << ", " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    AllIntOps, IntAluTest,
    ::testing::Values(
        IntOpCase{"add", 3, 4, 7}, IntOpCase{"add", -3, 4, 1},
        IntOpCase{"sub", 3, 4, -1}, IntOpCase{"sub", -5, -5, 0},
        IntOpCase{"mul", 7, -6, -42}, IntOpCase{"mul", 1 << 20, 1 << 20,
                                                1ll << 40},
        IntOpCase{"div", 42, 5, 8}, IntOpCase{"div", -42, 5, -8},
        IntOpCase{"rem", 42, 5, 2}, IntOpCase{"rem", -42, 5, -2},
        IntOpCase{"and", 0b1100, 0b1010, 0b1000},
        IntOpCase{"or", 0b1100, 0b1010, 0b1110},
        IntOpCase{"xor", 0b1100, 0b1010, 0b0110},
        IntOpCase{"sll", 3, 4, 48}, IntOpCase{"srl", 48, 4, 3},
        IntOpCase{"sra", -16, 2, -4}, IntOpCase{"slt", 3, 4, 1},
        IntOpCase{"slt", 4, 3, 0}, IntOpCase{"slt", -1, 0, 1},
        IntOpCase{"sle", 4, 4, 1}, IntOpCase{"sle", 5, 4, 0},
        IntOpCase{"seq", 9, 9, 1}, IntOpCase{"seq", 9, 8, 0},
        IntOpCase{"sne", 9, 8, 1}, IntOpCase{"sne", 9, 9, 0}));

TEST(MachineExec, AddWrapsWithoutUb)
{
    // INT64_MAX + 1 wraps to INT64_MIN (two's complement).
    EXPECT_EQ(evalIntOp("add", 0x7fffffffffffffffll, 1),
              -0x7fffffffffffffffll - 1);
}

TEST(MachineExec, MulWrapsWithoutUb)
{
    std::int64_t got = evalIntOp("mul", 0x7fffffffffffffffll, 3);
    std::uint64_t expect = 0x7fffffffffffffffull * 3ull;
    EXPECT_EQ(static_cast<std::uint64_t>(got), expect);
}

TEST(MachineExec, DivByZeroIsFatal)
{
    EXPECT_THROW(evalIntOp("div", 5, 0), FatalError);
    EXPECT_THROW(evalIntOp("rem", 5, 0), FatalError);
}

struct FpOpCase
{
    const char *op;
    double a, b, expect;
    bool unary;
};

class FpAluTest : public ::testing::TestWithParam<FpOpCase>
{
};

TEST_P(FpAluTest, ComputesExpectedValue)
{
    const FpOpCase &c = GetParam();
    EXPECT_DOUBLE_EQ(evalFpOp(c.op, c.a, c.b, c.unary), c.expect)
        << c.op;
}

INSTANTIATE_TEST_SUITE_P(
    AllFpOps, FpAluTest,
    ::testing::Values(
        FpOpCase{"fadd", 1.5, 2.25, 3.75, false},
        FpOpCase{"fsub", 1.5, 2.25, -0.75, false},
        FpOpCase{"fmul", 1.5, 2.0, 3.0, false},
        FpOpCase{"fdiv", 3.0, 2.0, 1.5, false},
        FpOpCase{"fmin", 3.0, 2.0, 2.0, false},
        FpOpCase{"fmax", 3.0, 2.0, 3.0, false},
        FpOpCase{"fsqrt", 9.0, 0.0, 3.0, true},
        FpOpCase{"fneg", 2.5, 0.0, -2.5, true},
        FpOpCase{"fabs", -2.5, 0.0, 2.5, true},
        FpOpCase{"fmv", 7.25, 0.0, 7.25, true}));

TEST(MachineExec, FpCompares)
{
    auto run = [](const char *op, double a, double b) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      ".shared result, 1\nmain:\n    fli f1, %.17g\n"
                      "    fli f2, %.17g\n", a, b);
        std::string src = buf;
        src += std::string("    ") + op + " r10, f1, f2\n";
        src += "    sts r10, result\n    halt\n";
        return runAsm(src).sharedInt("result");
    };
    EXPECT_EQ(run("feq", 1.0, 1.0), 1);
    EXPECT_EQ(run("feq", 1.0, 2.0), 0);
    EXPECT_EQ(run("flt", 1.0, 2.0), 1);
    EXPECT_EQ(run("flt", 2.0, 1.0), 0);
    EXPECT_EQ(run("fle", 2.0, 2.0), 1);
}

TEST(MachineExec, Conversions)
{
    MiniRun mr = runAsm(R"(
.shared a, 1
.shared b, 1
main:
    li   r1, -7
    cvtif f1, r1
    fsts f1, a
    fli  f2, 9.75
    cvtfi r2, f2
    sts  r2, b
    halt
)");
    EXPECT_DOUBLE_EQ(mr.sharedDouble("a"), -7.0);
    EXPECT_EQ(mr.sharedInt("b"), 9);  // truncation toward zero
}

TEST(MachineExec, R0IsAlwaysZero)
{
    MiniRun mr = runAsm(R"(
.shared result, 1
main:
    li  r0, 99
    add r0, r0, 5
    sts r0, result
    halt
)");
    EXPECT_EQ(mr.sharedInt("result"), 0);
}

TEST(MachineExec, BranchesTakenAndNotTaken)
{
    MiniRun mr = runAsm(R"(
.shared result, 1
main:
    li  r1, 0
    li  r2, 10
loop:
    add r1, r1, 1
    blt r1, r2, loop
    sts r1, result
    halt
)");
    EXPECT_EQ(mr.sharedInt("result"), 10);
}

TEST(MachineExec, CallAndReturn)
{
    MiniRun mr = runAsm(R"(
.shared result, 1
.entry main
double_it:
    add  v0, a0, a0
    ret
main:
    li   a0, 21
    call double_it
    sts  v0, result
    halt
)");
    EXPECT_EQ(mr.sharedInt("result"), 42);
}

TEST(MachineExec, LocalMemoryStack)
{
    MiniRun mr = runAsm(R"(
.shared result, 1
main:
    sub  sp, sp, 2
    li   r1, 11
    stl  r1, 0(sp)
    li   r2, 31
    stl  r2, 1(sp)
    ldl  r3, 0(sp)
    ldl  r4, 1(sp)
    add  r5, r3, r4
    sts  r5, result
    halt
)");
    EXPECT_EQ(mr.sharedInt("result"), 42);
}

TEST(MachineExec, LocalStaticsAreZeroInitialized)
{
    MiniRun mr = runAsm(R"(
.shared result, 1
.local buf, 8
main:
    la  r1, buf
    ldl r2, 3(r1)
    sts r2, result
    halt
)");
    EXPECT_EQ(mr.sharedInt("result"), 0);
}

TEST(MachineExec, LocalMemoryIsPerThread)
{
    // Each thread stores its id into the same local static address; the
    // values must not interfere.
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 1;
    cfg.threadsPerProc = 4;
    MiniRun mr = runAsm(R"(
.shared results, 4
.local mine, 1
main:
    la  r1, mine
    stl a0, 0(r1)
    ldl r2, 0(r1)
    la  r3, results
    add r3, r3, a0
    sts r2, 0(r3)
    halt
)",
                        cfg);
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(mr.machine->sharedMem().readInt(
                      mr.prog.sharedAddr("results") + t),
                  t);
}

TEST(MachineExec, ThreadStartupRegisters)
{
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 2;
    cfg.threadsPerProc = 3;
    MiniRun mr = runAsm(R"(
.shared ids, 6
.shared counts, 6
main:
    la  r1, ids
    add r1, r1, a0
    sts a0, 0(r1)
    la  r2, counts
    add r2, r2, a0
    sts a1, 0(r2)
    halt
)",
                        cfg);
    for (int t = 0; t < 6; ++t) {
        EXPECT_EQ(mr.machine->sharedMem().readInt(
                      mr.prog.sharedAddr("ids") + t),
                  t);
        EXPECT_EQ(mr.machine->sharedMem().readInt(
                      mr.prog.sharedAddr("counts") + t),
                  6);
    }
}

TEST(MachineExec, PrintOpcodesReachHandler)
{
    Program p = assemble(R"(
main:
    li r1, 123
    print r1
    fli f1, 2.5
    fprint f1
    halt
)");
    MachineConfig cfg = miniConfig();
    Machine m(p, cfg);
    std::vector<std::string> lines;
    m.setPrintHandler([&](const std::string &s) { lines.push_back(s); });
    m.run();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "123");
    EXPECT_EQ(lines[1], "2.5");
}

TEST(MachineExec, SharedOpcodeWithLocalAddressIsFatal)
{
    EXPECT_THROW(runAsm("main:\n    lds r1, 5(r0)\n    halt\n"),
                 FatalError);
}

TEST(MachineExec, LocalOpcodeWithSharedAddressIsFatal)
{
    EXPECT_THROW(runAsm(".shared x, 1\nmain:\n    li r1, x\n"
                        "    ldl r2, 0(r1)\n    halt\n"),
                 FatalError);
}

TEST(MachineExec, LocalAddressOutOfRangeIsFatal)
{
    MachineConfig cfg = miniConfig();
    cfg.localWords = 1024;
    EXPECT_THROW(runAsm("main:\n    li r1, 5000\n    stl r0, 0(r1)\n"
                        "    halt\n",
                        cfg),
                 FatalError);
}

TEST(MachineExec, SharedAddressOutOfRangeIsFatal)
{
    EXPECT_THROW(runAsm(".shared x, 4\nmain:\n    li r1, x\n"
                        "    lds r2, 1000(r1)\n    halt\n"),
                 FatalError);
}

TEST(MachineExec, JumpToGarbageIsFatal)
{
    EXPECT_THROW(runAsm("main:\n    li r1, 99999\n    jr r1\n    halt\n"),
                 FatalError);
}

TEST(MachineExec, WatchdogCatchesInfiniteLoop)
{
    MachineConfig cfg = miniConfig();
    cfg.maxCycles = 10'000;
    EXPECT_THROW(runAsm("main:\nloop:\n    j loop\n", cfg), FatalError);
}

TEST(MachineExec, DeterministicAcrossRuns)
{
    auto once = [] {
        MachineConfig cfg = miniConfig();
        cfg.numProcs = 4;
        cfg.threadsPerProc = 3;
        return runAsmWithRuntime(R"(
.shared c, 1
.shared bar, 2
.entry main
main:
    li  t0, 1
    faa t1, c(r0), t0
    la  a0, bar
    mv  a1, a1
    call __mts_barrier
    halt
)",
                                 cfg)
            .result.cycles;
    };
    EXPECT_EQ(once(), once());
}

TEST(MachineExec, MachineRunTwiceIsFatal)
{
    Program p = assemble("main:\n    halt\n");
    Machine m(p, miniConfig());
    m.run();
    EXPECT_THROW(m.run(), FatalError);
}
