#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mts;

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 0.0);
    EXPECT_EQ(h.format(), "");
}

TEST(Histogram, BucketBoundaries)
{
    Histogram h;
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    h.add(5);
    h.add(8);
    h.add(9);
    // buckets: {1}, {2}, {3,4}, {5..8}, {9..16}
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 1.0 / 7);
    EXPECT_DOUBLE_EQ(h.fractionAt(2), 1.0 / 7);
    EXPECT_DOUBLE_EQ(h.fractionAt(3), 2.0 / 7);
    EXPECT_DOUBLE_EQ(h.fractionAt(4), 2.0 / 7);
    EXPECT_DOUBLE_EQ(h.fractionAt(6), 2.0 / 7);
    EXPECT_DOUBLE_EQ(h.fractionAt(16), 1.0 / 7);
}

TEST(Histogram, MeanAndWeights)
{
    Histogram h;
    h.add(10, 3);
    h.add(20, 1);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 12.5);
}

TEST(Histogram, FractionAtMostIsCumulative)
{
    Histogram h;
    for (std::uint64_t v : {1, 1, 2, 4, 9})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.fractionAtMost(2), 3.0 / 5);
    EXPECT_DOUBLE_EQ(h.fractionAtMost(4), 4.0 / 5);
    EXPECT_DOUBLE_EQ(h.fractionAtMost(1000), 1.0);
}

TEST(Histogram, MergeAndClear)
{
    Histogram a, b;
    a.add(5);
    b.add(7, 2);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, ZeroClampsIntoFirstBucket)
{
    Histogram h;
    h.add(0);
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 1.0);
}

TEST(Histogram, BucketLabels)
{
    EXPECT_EQ(Histogram::bucketLabel(1), "1");
    EXPECT_EQ(Histogram::bucketLabel(2), "2");
    EXPECT_EQ(Histogram::bucketLabel(3), "3-4");
    EXPECT_EQ(Histogram::bucketLabel(7), "5-8");
    EXPECT_EQ(Histogram::bucketLabel(100), "65-128");
}

TEST(Strings, TrimAndSplit)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim(""), "");
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("%.2f", 1.5), "1.50");
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, RangesRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.nextBelow(10), 10u);
        double d = r.nextDouble(2.0, 3.0);
        EXPECT_GE(d, 2.0);
        EXPECT_LT(d, 3.0);
    }
}

TEST(Table, RendersAlignedColumns)
{
    Table t("Demo");
    t.header({"App", "Value"});
    t.row({"sieve", "1.00"});
    t.row({"blkmat", "0.50"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("== Demo =="), std::string::npos);
    EXPECT_NE(s.find("sieve"), std::string::npos);
    EXPECT_NE(s.find("Value"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(std::uint64_t(12345)), "12345");
}

TEST(ErrorMacros, FatalThrowsWithContext)
{
    try {
        MTS_FATAL("something " << 42);
        FAIL() << "should have thrown";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("something 42"),
                  std::string::npos);
    }
}

TEST(ErrorMacros, RequirePassesAndFails)
{
    EXPECT_NO_THROW(MTS_REQUIRE(1 + 1 == 2, "fine"));
    EXPECT_THROW(MTS_REQUIRE(false, "nope"), FatalError);
}
