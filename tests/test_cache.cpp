/**
 * Coherence and cache behaviour tests (paper Section 6 machinery).
 */
#include <gtest/gtest.h>

#include "cache/directory.hpp"
#include "cache/group_estimate_cache.hpp"
#include "test_helpers.hpp"

using namespace mts;
using namespace mts::test;

namespace
{

MachineConfig
cacheConfig(int procs = 1, int threads = 1)
{
    MachineConfig cfg = miniConfig();
    cfg.model = SwitchModel::ConditionalSwitch;
    cfg.numProcs = procs;
    cfg.threadsPerProc = threads;
    return cfg;
}

} // namespace

TEST(CacheUnit, ProbeMissThenInstallThenHit)
{
    SharedCache cache(CacheConfig{64, 4});
    std::uint64_t v = 0;
    Cycle ready = 0;
    Addr a = kSharedBase + 8;
    EXPECT_EQ(cache.probe(a, 10, v, ready), ProbeResult::Miss);
    std::uint64_t line[4] = {1, 2, 3, 4};
    cache.install(cache.lineBase(a), line, 210);
    // Before validFrom: MSHR merge.
    EXPECT_EQ(cache.probe(a, 100, v, ready), ProbeResult::Merge);
    EXPECT_EQ(ready, 210u);
    // After validFrom: hit with the right word.
    EXPECT_EQ(cache.probe(a + 1, 210, v, ready), ProbeResult::Hit);
    EXPECT_EQ(v, 2u);
}

TEST(CacheUnit, InvalidateDropsLine)
{
    SharedCache cache(CacheConfig{64, 4});
    std::uint64_t line[4] = {7, 7, 7, 7};
    Addr a = kSharedBase;
    cache.install(a, line, 0);
    EXPECT_TRUE(cache.present(a + 3));
    cache.invalidate(a + 2);
    EXPECT_FALSE(cache.present(a));
    std::uint64_t v;
    Cycle ready;
    EXPECT_EQ(cache.probe(a, 100, v, ready), ProbeResult::Miss);
    EXPECT_EQ(cache.statistics().invalidationsReceived, 1u);
}

TEST(CacheUnit, UpdateOwnOnlyTouchesPresentLines)
{
    SharedCache cache(CacheConfig{64, 4});
    Addr a = kSharedBase;
    cache.updateOwn(a, 42);  // no-allocate: still absent
    EXPECT_FALSE(cache.present(a));
    std::uint64_t line[4] = {0, 0, 0, 0};
    cache.install(a, line, 0);
    cache.updateOwn(a + 1, 42);
    std::uint64_t v;
    Cycle ready;
    EXPECT_EQ(cache.probe(a + 1, 10, v, ready), ProbeResult::Hit);
    EXPECT_EQ(v, 42u);
}

TEST(CacheUnit, DirectMappedConflictEvicts)
{
    SharedCache cache(CacheConfig{16, 4});  // 4 lines
    std::uint64_t line[4] = {1, 1, 1, 1};
    Addr a = kSharedBase;
    Addr conflicting = kSharedBase + 16;  // same index, different tag
    cache.install(a, line, 0);
    cache.install(conflicting, line, 0);
    EXPECT_FALSE(cache.present(a));
    EXPECT_TRUE(cache.present(conflicting));
}

TEST(CacheUnit, BadGeometryRejected)
{
    EXPECT_THROW(SharedCache(CacheConfig{64, 3}), FatalError);
    EXPECT_THROW(SharedCache(CacheConfig{66, 4}), FatalError);
}

TEST(Directory, SharersTrackedAndCleared)
{
    Directory dir;
    dir.addSharer(100, 1);
    dir.addSharer(100, 2);
    dir.addSharer(100, 2);  // duplicate ignored
    dir.addSharer(104, 3);
    auto victims = dir.writersInvalidationSet(100, 2);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], 1);
    // Entry cleared after a write.
    EXPECT_TRUE(dir.writersInvalidationSet(100, 9).empty());
    EXPECT_EQ(dir.trackedLines(), 1u);
}

TEST(GroupEstimate, HitsWithin32WordLine)
{
    GroupEstimateCache g;
    EXPECT_FALSE(g.access(kSharedBase + 0));
    EXPECT_TRUE(g.access(kSharedBase + 5));
    EXPECT_TRUE(g.access(kSharedBase + 31));
    EXPECT_FALSE(g.access(kSharedBase + 32));  // next line
    EXPECT_FALSE(g.access(kSharedBase + 5));   // line was replaced
    EXPECT_DOUBLE_EQ(g.hitRate(), 2.0 / 5.0);
}

TEST(CacheCoherence, ConsumerSeesProducerUpdateThroughCache)
{
    MachineConfig cfg = cacheConfig(2, 1);
    Program raw = assemble(R"(
.shared flag, 1
.shared data, 1
.shared out, 1
main:
    bne a0, r0, consumer
    li  r1, 55
    sts r1, data
    li  r1, 1
    sts r1, flag
    halt
consumer:
    lds.spin r2, flag     ; caches the line; invalidated by producer
    cswitch
    beq r2, r0, consumer
    lds r3, data
    cswitch
    sts r3, out
    halt
)");
    Machine m(raw, cfg);
    m.run();
    EXPECT_EQ(m.sharedMem().readInt(raw.sharedAddr("out")), 55);
}

TEST(CacheCoherence, FalseSharingStillCorrect)
{
    // Two processors repeatedly write adjacent words of one line, then
    // read both back.
    MachineConfig cfg = cacheConfig(2, 1);
    Program raw = assemble(R"(
.shared line, 4
.shared bar, 2
.shared out, 2
main:
    li  r2, 0
    li  r5, line
    add r5, r5, a0        ; word a0 of the line
loop:
    add r2, r2, 1
    sts r2, 0(r5)
    lds r3, 0(r5)
    cswitch
    bne r3, r2, fail
    blt r2, 30, loop
    li  r6, out
    add r6, r6, a0
    sts r3, 0(r6)
    halt
fail:
    li  r7, 0-1
    li  r6, out
    add r6, r6, a0
    sts r7, 0(r6)
    halt
)");
    Machine m(raw, cfg);
    m.run();
    EXPECT_EQ(m.sharedMem().readInt(raw.sharedAddr("out")), 30);
    EXPECT_EQ(m.sharedMem().readInt(raw.sharedAddr("out") + 1), 30);
}

TEST(CacheCoherence, InFlightFillCannotResurrectStaleData)
{
    // Regression for the hazard found during bring-up: thread B of a
    // processor misses on a line while thread A of the same processor
    // has a store to that line in flight; the fill installs pre-store
    // data and the arrival-time fix must re-apply the store.
    MachineConfig cfg = cacheConfig(2, 2);
    Program raw = assemble(R"(
.shared c, 1
.shared lk, 2
main:
    li  r2, 0
loop:
    ; ticket lock inline
    li  r3, 1
    faa r4, lk(r0), r3
    cswitch
spin:
    lds.spin r5, lk+1(r0)
    cswitch
    bne r5, r4, spin
    ; critical section: c++
    lds r6, c(r0)
    cswitch
    add r6, r6, 1
    sts r6, c(r0)
    ; unlock
    li  r3, 1
    faa r4, lk+1(r0), r3
    cswitch
    add r2, r2, 1
    blt r2, 40, loop
    halt
)");
    Machine m(raw, cfg);
    m.run();
    EXPECT_EQ(m.sharedMem().readInt(raw.sharedAddr("c")), 4 * 40);
}

TEST(CacheCoherence, HitRateReflectsSpatialLocality)
{
    // Sequential scan of 256 words with 4-word lines: 3/4 hit rate.
    MachineConfig cfg = cacheConfig(1, 1);
    Program raw = assemble(R"(
.shared arr, 256
main:
    li  r1, arr
    li  r2, 0
loop:
    lds r3, 0(r1)
    cswitch
    add r1, r1, 1
    add r2, r2, 1
    blt r2, 256, loop
    halt
)");
    Machine m(raw, cfg);
    RunResult r = m.run();
    EXPECT_EQ(r.cache.misses, 64u);
    EXPECT_EQ(r.cache.hits, 192u);
    EXPECT_DOUBLE_EQ(r.cache.hitRate(), 0.75);
}

TEST(CacheCoherence, LineFillCountsFillTraffic)
{
    MachineConfig cfg = cacheConfig(1, 1);
    Program raw = assemble(R"(
.shared arr, 8
main:
    lds r1, arr
    cswitch
    lds r2, arr+4
    cswitch
    halt
)");
    Machine m(raw, cfg);
    RunResult r = m.run();
    EXPECT_EQ(r.net.fillMsgs, 2u);
    EXPECT_EQ(r.net.loadMsgs, 0u);
    // fill: fwd 64, ret 32 + 4*64 = 288.
    EXPECT_EQ(r.net.forwardBits, 128u);
    EXPECT_EQ(r.net.returnBits, 576u);
}

TEST(CacheCoherence, InvalidationMessagesCounted)
{
    MachineConfig cfg = cacheConfig(2, 1);
    Program raw = assemble(R"(
.shared x, 4
.shared sink, 2
main:
    lds r1, x             ; both processors cache the line
    cswitch
    bne a0, r0, writer
    li  r9, sink
    sts r1, 0(r9)
    halt
writer:
    li  r2, 9
    sts r2, x+1           ; invalidates the other processor
    li  r9, sink
    sts r1, 1(r9)
    halt
)");
    Machine m(raw, cfg);
    RunResult r = m.run();
    EXPECT_GE(r.net.invalMsgs, 1u);
}

TEST(CacheCoherence, FetchAddBypassesAndInvalidates)
{
    MachineConfig cfg = cacheConfig(1, 1);
    Program raw = assemble(R"(
.shared x, 4
.shared out, 1
main:
    lds r1, x             ; line cached
    cswitch
    li  r2, 5
    faa r3, x(r0), r2     ; bypasses cache, drops our copy
    cswitch
    lds r4, x             ; must refetch: 5, not stale 0
    cswitch
    sts r4, out
    halt
)");
    Machine m(raw, cfg);
    RunResult r = m.run();
    EXPECT_EQ(m.sharedMem().readInt(raw.sharedAddr("out")), 5);
    EXPECT_EQ(r.cache.misses, 2u);
}
