/**
 * Edge-case tests of findBasicBlocks: degenerate programs, terminator
 * placement, and the partition property every consumer (grouping pass,
 * CFG) relies on.
 */
#include <gtest/gtest.h>

#include "opt/basic_blocks.hpp"
#include "test_helpers.hpp"

using namespace mts;

namespace
{

/** Assert the ranges exactly partition [0, code.size()). */
void
expectPartition(const Program &p)
{
    auto blocks = findBasicBlocks(p);
    std::int32_t expect = 0;
    for (const BlockRange &b : blocks) {
        EXPECT_EQ(b.begin, expect);
        EXPECT_LT(b.begin, b.end);
        expect = b.end;
    }
    EXPECT_EQ(expect, static_cast<std::int32_t>(p.code.size()));
}

} // namespace

TEST(BasicBlocksEdge, EmptyProgramHasNoBlocks)
{
    Program p;
    EXPECT_TRUE(findBasicBlocks(p).empty());
}

TEST(BasicBlocksEdge, ProgramEndingInBranch)
{
    // The final instruction is a control instruction: no trailing
    // fallthrough block must be invented past the end.
    Program p = assemble(R"(
main:
    li  r1, 0
    beq r1, 0, main
)");
    auto blocks = findBasicBlocks(p);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].begin, 0);
    EXPECT_EQ(blocks[0].end, 2);
    expectPartition(p);
}

TEST(BasicBlocksEdge, BackToBackLabelsShareOneLeader)
{
    // Two labels on the same instruction produce one block, not an
    // empty one.
    Program p = assemble(R"(
main:
    li r1, 1
a:
b:
    add r1, r1, 1
    halt
)");
    auto blocks = findBasicBlocks(p);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[1].begin, 1);
    EXPECT_EQ(blocks[1].end, 3);
    expectPartition(p);
}

TEST(BasicBlocksEdge, JrTerminatesABlock)
{
    Program p = assemble(R"(
main:
    jal fn
    halt
fn:
    add r2, r4, r5
    jr  ra
)");
    auto blocks = findBasicBlocks(p);
    // jal ends block 0; halt is its own block (leader after control);
    // fn: starts a block ending at the jr.
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0].end, 1);
    EXPECT_EQ(blocks[1].end, 2);
    EXPECT_EQ(blocks[2].begin, 2);
    EXPECT_EQ(blocks[2].end, 4);
    EXPECT_EQ(p.code[3].op, Opcode::JR);
    expectPartition(p);
}

TEST(BasicBlocksEdge, BranchTargetMidProgramSplitsBlock)
{
    Program p = assemble(R"(
main:
    li  r1, 0
    li  r2, 0
back:
    add r1, r1, 1
    blt r1, 4, back
    halt
)");
    auto blocks = findBasicBlocks(p);
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[1].begin, 2);  // the branch target
    expectPartition(p);
}

TEST(BasicBlocksEdge, RangesPartitionEveryApp)
{
    // Property: for every benchmark app the block ranges are a gapless,
    // non-overlapping partition of [0, |code|).
    for (const App *app : allApps()) {
        SCOPED_TRACE(app->name());
        Program p = assemble(app->source(), app->options(1.0));
        expectPartition(p);
        Program g = applyGroupingPass(p);
        expectPartition(g);
    }
}
