/**
 * @file
 * Shared helpers for the mtsim test suites.
 */
#ifndef MTS_TESTS_TEST_HELPERS_HPP
#define MTS_TESTS_TEST_HELPERS_HPP

#include <memory>
#include <string>

#include "core/mtsim.hpp"

namespace mts::test
{

/** A completed run whose memory can still be inspected. */
struct MiniRun
{
    Program prog;
    std::unique_ptr<Machine> machine;
    RunResult result;

    std::int64_t
    sharedInt(const std::string &name) const
    {
        return machine->sharedMem().readInt(prog.sharedAddr(name));
    }

    double
    sharedDouble(const std::string &name) const
    {
        return machine->sharedMem().readDouble(prog.sharedAddr(name));
    }
};

/** Default config: 1 processor, 1 thread, 200-cycle switch-on-load. */
inline MachineConfig
miniConfig()
{
    MachineConfig cfg;
    cfg.numProcs = 1;
    cfg.threadsPerProc = 1;
    cfg.model = SwitchModel::SwitchOnLoad;
    cfg.network.roundTrip = 200;
    cfg.maxCycles = 50'000'000;
    return cfg;
}

/** Assemble (no prelude) and run to completion. */
inline MiniRun
runAsm(const std::string &src, MachineConfig cfg = miniConfig(),
       const AsmOptions &opts = {})
{
    MiniRun mr;
    mr.prog = assemble(src, opts);
    mr.machine = std::make_unique<Machine>(mr.prog, cfg);
    mr.result = mr.machine->run();
    return mr;
}

/** Assemble with the runtime prelude prepended, then run. */
inline MiniRun
runAsmWithRuntime(const std::string &src, MachineConfig cfg = miniConfig(),
                  const AsmOptions &opts = {})
{
    return runAsm(runtimePrelude() + src, cfg, opts);
}

} // namespace mts::test

#endif // MTS_TESTS_TEST_HELPERS_HPP
