/**
 * @file
 * MetricsRegistry: typed metrics, roll-up semantics, equivalence with
 * the legacy struct merge() chains, RunRecord emission, and the
 * end-to-end publishing done by Machine::run (including the tracer
 * metrics-snapshot hook).
 */
#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "core/mtsim.hpp"
#include "metrics/metrics.hpp"
#include "metrics/run_record.hpp"
#include "metrics/stat_publish.hpp"
#include "test_helpers.hpp"

using namespace mts;

TEST(MetricsRegistry, CountersAccumulate)
{
    MetricsRegistry reg;
    reg.add("cpu.p0.instructions", 10);
    reg.add("cpu.p0.instructions", 5);
    EXPECT_EQ(reg.counter("cpu.p0.instructions"), 15u);
    EXPECT_EQ(reg.counter("missing"), 0u);
    EXPECT_TRUE(reg.contains("cpu.p0.instructions"));
    EXPECT_FALSE(reg.contains("missing"));
}

TEST(MetricsRegistry, MaxCountersTakeMaximum)
{
    MetricsRegistry reg;
    reg.max("cpu.p0.finish_time", 100);
    reg.max("cpu.p0.finish_time", 40);
    EXPECT_EQ(reg.counter("cpu.p0.finish_time"), 100u);
    reg.max("cpu.p0.finish_time", 250);
    EXPECT_EQ(reg.counter("cpu.p0.finish_time"), 250u);
}

TEST(MetricsRegistry, KindMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.add("x", 1);
    EXPECT_THROW(reg.max("x", 2), FatalError);
    EXPECT_THROW(reg.set("x", 1.0), FatalError);
    EXPECT_THROW(reg.histogram("x"), FatalError);
    EXPECT_THROW(reg.hist("x"), FatalError);
}

TEST(MetricsRegistry, RollUpAggregatesPerProcScopes)
{
    MetricsRegistry reg;
    reg.add("cpu.p0.instructions", 100);
    reg.add("cpu.p1.instructions", 50);
    reg.max("cpu.p0.finish_time", 10);
    reg.max("cpu.p1.finish_time", 90);
    reg.histogram("cpu.p0.run_lengths").add(4);
    reg.histogram("cpu.p1.run_lengths").add(8, 2);
    reg.rollUp("cpu");
    EXPECT_EQ(reg.counter("cpu.instructions"), 150u);
    EXPECT_EQ(reg.counter("cpu.finish_time"), 90u);
    ASSERT_NE(reg.hist("cpu.run_lengths"), nullptr);
    EXPECT_EQ(reg.hist("cpu.run_lengths")->count(), 3u);
    // Per-proc scopes survive the roll-up.
    EXPECT_EQ(reg.counter("cpu.p1.instructions"), 50u);
}

TEST(MetricsRegistry, RollUpIgnoresForeignScopes)
{
    MetricsRegistry reg;
    reg.add("net.messages", 7);
    reg.add("cpu.p0.instructions", 1);
    reg.add("cpu.px.instructions", 99);  // not a processor index
    reg.rollUp("cpu");
    EXPECT_EQ(reg.counter("cpu.instructions"), 1u);
    EXPECT_EQ(reg.counter("net.messages"), 7u);
}

TEST(MetricsRegistry, PublishRollUpMatchesLegacyMergeChain)
{
    // The registry path must aggregate exactly like the merge() chain
    // it replaced (pinned in test_stats_merge.cpp).
    CpuStats a, b;
    a.instructions = 11;
    a.busyCycles = 21;
    a.finishTime = 500;
    a.runLengths.add(3);
    b.instructions = 7;
    b.busyCycles = 9;
    b.finishTime = 900;
    b.runLengths.add(3);
    b.runLengths.add(64);

    CpuStats merged = a;
    merged.merge(b);

    MetricsRegistry reg;
    publishCpuStats(reg, "cpu.p0", a);
    publishCpuStats(reg, "cpu.p1", b);
    reg.rollUp("cpu");
    CpuStats viaRegistry = cpuStatsFromMetrics(reg, "cpu");

    EXPECT_EQ(viaRegistry.instructions, merged.instructions);
    EXPECT_EQ(viaRegistry.busyCycles, merged.busyCycles);
    EXPECT_EQ(viaRegistry.finishTime, merged.finishTime);
    EXPECT_EQ(viaRegistry.runLengths.count(), merged.runLengths.count());
    EXPECT_DOUBLE_EQ(viaRegistry.runLengths.mean(),
                     merged.runLengths.mean());
}

TEST(MetricsRegistry, PublishReadbackAreInverse)
{
    NetworkStats n;
    n.messages = 5;
    n.forwardBits = 123;
    n.returnBits = 456;
    n.invalMsgs = 2;
    CacheStats c;
    c.hits = 10;
    c.misses = 3;
    MetricsRegistry reg;
    publishNetworkStats(reg, "net", n);
    publishCacheStats(reg, "cache", c);
    NetworkStats n2 = networkStatsFromMetrics(reg, "net");
    CacheStats c2 = cacheStatsFromMetrics(reg, "cache");
    EXPECT_EQ(n2.messages, n.messages);
    EXPECT_EQ(n2.totalBits(), n.totalBits());
    EXPECT_EQ(n2.invalMsgs, n.invalMsgs);
    EXPECT_EQ(c2.hits, c.hits);
    EXPECT_EQ(c2.misses, c.misses);
}

TEST(MetricsRegistry, MergeCombinesRegistries)
{
    MetricsRegistry a, b;
    a.add("x.count", 1);
    a.max("x.peak", 5);
    b.add("x.count", 2);
    b.max("x.peak", 3);
    b.add("y.only", 7);
    b.histogram("x.h").add(2);
    a.merge(b);
    EXPECT_EQ(a.counter("x.count"), 3u);
    EXPECT_EQ(a.counter("x.peak"), 5u);
    EXPECT_EQ(a.counter("y.only"), 7u);
    ASSERT_NE(a.hist("x.h"), nullptr);
    EXPECT_EQ(a.hist("x.h")->count(), 1u);
}

TEST(MetricsRegistry, ToJsonNestsScopes)
{
    MetricsRegistry reg;
    reg.add("cpu.p0.instructions", 42);
    reg.set("derived.utilization", 0.5);
    reg.histogram("cpu.p0.run_lengths").add(4, 3);
    JsonValue j = reg.toJson();
    EXPECT_EQ(
        j.find("cpu")->find("p0")->find("instructions")->asUint(), 42u);
    EXPECT_DOUBLE_EQ(j.find("derived")->find("utilization")->asNumber(),
                     0.5);
    const JsonValue *h = j.find("cpu")->find("p0")->find("run_lengths");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->find("count")->asUint(), 3u);
    EXPECT_EQ(h->find("buckets")->find("3-4")->asUint(), 3u);
}

namespace
{

/** Captures the end-of-run metrics snapshot. */
class SnapshotTracer : public Tracer
{
  public:
    void
    onMetricsSnapshot(Cycle cycle, const MetricsRegistry &metrics) override
    {
        snapshotCycle = cycle;
        instructions = metrics.counter("cpu.instructions");
        perProc = metrics.counter("cpu.p0.instructions");
        calls++;
    }

    Cycle snapshotCycle = 0;
    std::uint64_t instructions = 0;
    std::uint64_t perProc = 0;
    int calls = 0;
};

} // namespace

TEST(MetricsEndToEnd, MachinePublishesPerProcAndTotalScopes)
{
    const std::string src = R"(
.shared arr, 16
main:
    li  r8, 5
    li  r9, 0
    li  r11, arr
loop:
    lds r10, 0(r11)
    add r11, r11, 1
    add r9, r9, 1
    blt r9, r8, loop
    halt
)";
    MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.threadsPerProc = 1;
    cfg.model = SwitchModel::SwitchOnLoad;
    cfg.network.roundTrip = 200;
    SnapshotTracer tracer;
    cfg.tracer = &tracer;
    Machine m(assemble(src), cfg);
    RunResult r = m.run();

    // Registry totals equal the struct view reconstituted from them.
    EXPECT_EQ(r.metrics.counter("cpu.instructions"), r.cpu.instructions);
    EXPECT_EQ(r.metrics.counter("cpu.p0.instructions") +
                  r.metrics.counter("cpu.p1.instructions"),
              r.cpu.instructions);
    EXPECT_EQ(r.metrics.counter("cpu.finish_time"), r.cycles);
    EXPECT_EQ(r.metrics.counter("net.messages"), r.net.messages);
    ASSERT_NE(r.metrics.hist("cpu.run_lengths"), nullptr);
    EXPECT_EQ(r.metrics.hist("cpu.run_lengths")->count(),
              r.cpu.runLengths.count());

    // The tracer saw the same snapshot.
    EXPECT_EQ(tracer.calls, 1);
    EXPECT_EQ(tracer.snapshotCycle, r.cycles);
    EXPECT_EQ(tracer.instructions, r.cpu.instructions);
    EXPECT_GT(tracer.perProc, 0u);
}

TEST(RunRecordTest, CarriesConfigAndHeadlineMetrics)
{
    ExperimentRunner runner(0.2);
    auto cfg = ExperimentRunner::makeConfig(SwitchModel::SwitchOnLoad, 2,
                                            2, 200);
    ExperimentRun run = runner.run(sieveApp(), cfg);

    const RunRecord &rec = run.record;
    EXPECT_EQ(rec.app, "sieve");
    EXPECT_EQ(rec.model, "switch-on-load");
    EXPECT_EQ(rec.numProcs, 2);
    EXPECT_EQ(rec.threadsPerProc, 2);
    EXPECT_EQ(rec.latency, 200u);
    EXPECT_EQ(rec.cycles, run.result.cycles);
    EXPECT_TRUE(rec.hasEfficiency);
    EXPECT_DOUBLE_EQ(rec.efficiency, run.efficiency);
    EXPECT_EQ(rec.referenceCycles, run.referenceCycles);
    EXPECT_EQ(rec.metrics.counter("cpu.instructions"),
              run.result.cpu.instructions);

    // The JSON form round-trips the headline numbers.
    JsonValue j = parseJson(rec.toJson().dump(2));
    EXPECT_EQ(j.find("schema")->asString(), "mts.run/1");
    EXPECT_EQ(j.find("app")->asString(), "sieve");
    EXPECT_EQ(j.find("cycles")->asUint(), run.result.cycles);
    EXPECT_DOUBLE_EQ(j.find("efficiency")->asNumber(), run.efficiency);
    EXPECT_EQ(j.find("metrics")
                  ->find("cpu")
                  ->find("instructions")
                  ->asUint(),
              run.result.cpu.instructions);
}

TEST(ReporterTest, BenchSchemaMatchesRenderedTable)
{
    // Schema-shape smoke test for the mts.bench/1 documents the bench
    // drivers emit: rows keyed by column name, cell values exactly as
    // printed, notes and attached records carried through.
    using mts::bench::Reporter;
    char prog[] = "bench_demo";
    char *argv[] = {prog, nullptr};
    Reporter rep("demo", 1, argv);
    testing::internal::CaptureStdout();
    rep.banner("Demo table", 0.5);

    Table t("Demo: one row");
    t.header({"Application", "Cycles"});
    t.row({"sieve", "123"});
    rep.table(t);
    rep.note("trailing note");

    RunRecord rec;
    rec.app = "sieve";
    rec.cycles = 123;
    rep.attach(rec);
    std::string text = testing::internal::GetCapturedStdout();
    EXPECT_NE(text.find("Demo: one row"), std::string::npos);
    EXPECT_NE(text.find("trailing note"), std::string::npos);

    JsonValue j = parseJson(rep.toJson().dump(2));
    EXPECT_EQ(j.find("schema")->asString(), "mts.bench/1");
    EXPECT_EQ(j.find("bench")->asString(), "demo");
    EXPECT_EQ(j.find("title")->asString(), "Demo table");
    EXPECT_DOUBLE_EQ(j.find("scale")->asNumber(), 0.5);
    ASSERT_EQ(j.find("tables")->size(), 1u);
    const JsonValue &jt = j.find("tables")->at(0);
    EXPECT_EQ(jt.find("title")->asString(), "Demo: one row");
    ASSERT_EQ(jt.find("rows")->size(), 1u);
    EXPECT_EQ(jt.find("rows")->at(0).find("Application")->asString(),
              "sieve");
    EXPECT_EQ(jt.find("rows")->at(0).find("Cycles")->asString(), "123");
    ASSERT_EQ(j.find("notes")->size(), 1u);
    EXPECT_EQ(j.find("notes")->at(0).asString(), "trailing note");
    ASSERT_EQ(j.find("records")->size(), 1u);
    EXPECT_EQ(j.find("records")->at(0).find("app")->asString(), "sieve");
    EXPECT_EQ(j.find("records")->at(0).find("cycles")->asUint(), 123u);
}
