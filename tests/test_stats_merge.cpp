/**
 * @file
 * Pins the merge() semantics of the per-component stat structs. These
 * tests were written against the pre-metrics-layer behaviour and must
 * stay green through the registry refactor: publishing into
 * MetricsRegistry scopes and rolling them up has to aggregate exactly
 * like the original hand-rolled merge() chains.
 */
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cpu/cpu_stats.hpp"
#include "mem/network.hpp"

using namespace mts;

namespace
{

CpuStats
sampleCpu(std::uint64_t base, Cycle finish)
{
    CpuStats s;
    s.instructions = base + 1;
    s.busyCycles = base + 2;
    s.stallCycles = base + 3;
    s.idleCycles = base + 4;
    s.switchesTaken = base + 5;
    s.switchesSkipped = base + 6;
    s.sliceLimitSwitches = base + 7;
    s.zeroRuns = base + 13;
    s.sharedLoads = base + 8;
    s.spinLoads = base + 9;
    s.sharedStores = base + 10;
    s.fetchAdds = base + 11;
    s.estimateHits = base + 12;
    s.finishTime = finish;
    s.runLengths.add(base + 1);
    s.runLengths.add(2 * base + 1);
    return s;
}

} // namespace

TEST(StatsMerge, CpuStatsSumsEveryCounter)
{
    CpuStats a = sampleCpu(100, 500);
    CpuStats b = sampleCpu(1000, 400);
    a.merge(b);
    EXPECT_EQ(a.instructions, 101u + 1001u);
    EXPECT_EQ(a.busyCycles, 102u + 1002u);
    EXPECT_EQ(a.stallCycles, 103u + 1003u);
    EXPECT_EQ(a.idleCycles, 104u + 1004u);
    EXPECT_EQ(a.switchesTaken, 105u + 1005u);
    EXPECT_EQ(a.switchesSkipped, 106u + 1006u);
    EXPECT_EQ(a.sliceLimitSwitches, 107u + 1007u);
    EXPECT_EQ(a.zeroRuns, 113u + 1013u);
    EXPECT_EQ(a.sharedLoads, 108u + 1008u);
    EXPECT_EQ(a.spinLoads, 109u + 1009u);
    EXPECT_EQ(a.sharedStores, 110u + 1010u);
    EXPECT_EQ(a.fetchAdds, 111u + 1011u);
    EXPECT_EQ(a.estimateHits, 112u + 1012u);
}

TEST(StatsMerge, CpuStatsFinishTimeIsMax)
{
    CpuStats early = sampleCpu(1, 100);
    CpuStats late = sampleCpu(1, 900);
    CpuStats a = early;
    a.merge(late);
    EXPECT_EQ(a.finishTime, 900u);
    CpuStats b = late;
    b.merge(early);
    EXPECT_EQ(b.finishTime, 900u);
}

TEST(StatsMerge, CpuStatsRunLengthHistogramsConcatenate)
{
    CpuStats a, b;
    a.runLengths.add(3);
    a.runLengths.add(5);
    b.runLengths.add(3, 2);
    a.merge(b);
    EXPECT_EQ(a.runLengths.count(), 4u);
    EXPECT_DOUBLE_EQ(a.runLengths.fractionAt(3), 3.0 / 4);
    EXPECT_DOUBLE_EQ(a.runLengths.mean(), (3 + 5 + 3 + 3) / 4.0);
}

TEST(StatsMerge, CpuStatsMergeWithDefaultIsIdentity)
{
    CpuStats a = sampleCpu(7, 77);
    CpuStats before = a;
    a.merge(CpuStats{});
    EXPECT_EQ(a.instructions, before.instructions);
    EXPECT_EQ(a.finishTime, before.finishTime);
    EXPECT_EQ(a.runLengths.count(), before.runLengths.count());
}

TEST(StatsMerge, NetworkStatsSumsAllFields)
{
    NetworkStats a, b;
    a.messages = 3;
    a.forwardBits = 100;
    a.returnBits = 200;
    a.loadMsgs = 1;
    a.storeMsgs = 2;
    a.faaMsgs = 3;
    a.fillMsgs = 4;
    a.invalMsgs = 5;
    a.spinMsgs = 6;
    a.pairMsgs = 7;
    b = a;
    a.merge(b);
    EXPECT_EQ(a.messages, 6u);
    EXPECT_EQ(a.forwardBits, 200u);
    EXPECT_EQ(a.returnBits, 400u);
    EXPECT_EQ(a.loadMsgs, 2u);
    EXPECT_EQ(a.storeMsgs, 4u);
    EXPECT_EQ(a.faaMsgs, 6u);
    EXPECT_EQ(a.fillMsgs, 8u);
    EXPECT_EQ(a.invalMsgs, 10u);
    EXPECT_EQ(a.spinMsgs, 12u);
    EXPECT_EQ(a.pairMsgs, 14u);
    EXPECT_EQ(a.totalBits(), 600u);
}

TEST(StatsMerge, CacheStatsSumsAndHitRateFollows)
{
    CacheStats a, b;
    a.hits = 90;
    a.misses = 5;
    a.mergedMisses = 5;
    a.invalidationsReceived = 2;
    a.storeThroughs = 7;
    b.hits = 10;
    b.misses = 85;
    b.mergedMisses = 5;
    b.invalidationsReceived = 1;
    b.storeThroughs = 3;
    a.merge(b);
    EXPECT_EQ(a.hits, 100u);
    EXPECT_EQ(a.misses, 90u);
    EXPECT_EQ(a.mergedMisses, 10u);
    EXPECT_EQ(a.invalidationsReceived, 3u);
    EXPECT_EQ(a.storeThroughs, 10u);
    EXPECT_DOUBLE_EQ(a.hitRate(), 100.0 / 200.0);
}

TEST(StatsMerge, HistogramMergePreservesSumAndCount)
{
    Histogram a, b;
    a.add(1);
    a.add(17);
    b.add(1000, 3);
    std::uint64_t wantCount = a.count() + b.count();
    std::uint64_t wantSum = a.sum() + b.sum();
    a.merge(b);
    EXPECT_EQ(a.count(), wantCount);
    EXPECT_EQ(a.sum(), wantSum);
    EXPECT_DOUBLE_EQ(a.fractionAt(1000), 3.0 / 5);
}

TEST(StatsMerge, MergeIsOrderIndependent)
{
    CpuStats x = sampleCpu(10, 50), y = sampleCpu(20, 60),
             z = sampleCpu(30, 40);
    CpuStats ab = x;
    ab.merge(y);
    ab.merge(z);
    CpuStats ba = z;
    ba.merge(x);
    ba.merge(y);
    EXPECT_EQ(ab.instructions, ba.instructions);
    EXPECT_EQ(ab.finishTime, ba.finishTime);
    EXPECT_EQ(ab.runLengths.count(), ba.runLengths.count());
    EXPECT_DOUBLE_EQ(ab.runLengths.mean(), ba.runLengths.mean());
}
