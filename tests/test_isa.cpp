#include <gtest/gtest.h>

#include "isa/addressing.hpp"
#include "isa/instruction.hpp"
#include "isa/opcode.hpp"

using namespace mts;

TEST(Opcode, NameRoundTripAllOpcodes)
{
    for (int i = 0; i < static_cast<int>(Opcode::NUM_OPCODES); ++i) {
        auto op = static_cast<Opcode>(i);
        std::string_view name = opcodeName(op);
        EXPECT_FALSE(name.empty());
        EXPECT_EQ(opcodeFromName(name), op) << name;
    }
}

TEST(Opcode, UnknownNameReturnsSentinel)
{
    EXPECT_EQ(opcodeFromName("bogus"), Opcode::NUM_OPCODES);
}

TEST(Opcode, LatenciesMatchR3000Flavour)
{
    EXPECT_EQ(resultLatency(Opcode::ADD), 1);
    EXPECT_GT(resultLatency(Opcode::MUL), resultLatency(Opcode::ADD));
    EXPECT_GT(resultLatency(Opcode::DIV), resultLatency(Opcode::MUL));
    EXPECT_GT(resultLatency(Opcode::FDIV), resultLatency(Opcode::FMUL));
    EXPECT_GT(resultLatency(Opcode::FMUL), resultLatency(Opcode::FADD));
    EXPECT_EQ(resultLatency(Opcode::LDL), 2);
}

TEST(Opcode, SharedLoadClassification)
{
    EXPECT_TRUE(isSharedLoad(Opcode::LDS));
    EXPECT_TRUE(isSharedLoad(Opcode::FLDS));
    EXPECT_TRUE(isSharedLoad(Opcode::LDSD));
    EXPECT_TRUE(isSharedLoad(Opcode::FLDSD));
    EXPECT_TRUE(isSharedLoad(Opcode::LDS_SPIN));
    EXPECT_TRUE(isSharedLoad(Opcode::FAA));
    EXPECT_FALSE(isSharedLoad(Opcode::LDL));
    EXPECT_FALSE(isSharedLoad(Opcode::STS));
}

TEST(Opcode, StoreAndMemClassification)
{
    EXPECT_TRUE(isSharedStore(Opcode::STS));
    EXPECT_TRUE(isSharedStore(Opcode::FSTS));
    EXPECT_FALSE(isSharedStore(Opcode::STL));
    EXPECT_TRUE(isLocalMem(Opcode::STL));
    EXPECT_TRUE(isLocalMem(Opcode::FLDL));
    EXPECT_TRUE(isMem(Opcode::FAA));
    EXPECT_FALSE(isMem(Opcode::ADD));
}

TEST(Opcode, ControlClassification)
{
    EXPECT_TRUE(isBranch(Opcode::BEQ));
    EXPECT_TRUE(isBranch(Opcode::BGE));
    EXPECT_FALSE(isBranch(Opcode::J));
    EXPECT_TRUE(isControl(Opcode::J));
    EXPECT_TRUE(isControl(Opcode::JAL));
    EXPECT_TRUE(isControl(Opcode::JR));
    EXPECT_TRUE(isControl(Opcode::HALT));
    EXPECT_FALSE(isControl(Opcode::CSWITCH));
}

namespace
{

Instruction
make(Opcode op, std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2,
     bool useImm = false)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.useImm = useImm;
    return i;
}

} // namespace

TEST(Operands, AluRegisterForm)
{
    Operands o = getOperands(make(Opcode::ADD, 1, 2, 3));
    ASSERT_EQ(o.numDefs, 1);
    EXPECT_EQ(o.defs[0], intReg(1));
    ASSERT_EQ(o.numUses, 2);
    EXPECT_EQ(o.uses[0], intReg(2));
    EXPECT_EQ(o.uses[1], intReg(3));
}

TEST(Operands, AluImmediateFormDropsRs2)
{
    Operands o = getOperands(make(Opcode::ADD, 1, 2, 0, true));
    EXPECT_EQ(o.numUses, 1);
}

TEST(Operands, WritesToR0AreDiscarded)
{
    Operands o = getOperands(make(Opcode::ADD, 0, 2, 3));
    EXPECT_EQ(o.numDefs, 0);
}

TEST(Operands, FpBanksAreTagged)
{
    Operands o = getOperands(make(Opcode::FADD, 1, 2, 3));
    EXPECT_EQ(o.defs[0], fpReg(1));
    EXPECT_EQ(o.uses[0], fpReg(2));
    EXPECT_GE(o.defs[0], 32);
}

TEST(Operands, FpCompareWritesIntBank)
{
    Operands o = getOperands(make(Opcode::FLT, 5, 1, 2));
    EXPECT_EQ(o.defs[0], intReg(5));
    EXPECT_EQ(o.uses[0], fpReg(1));
}

TEST(Operands, LoadPairDefinesTwoRegisters)
{
    Operands o = getOperands(make(Opcode::LDSD, 8, 2, 0));
    ASSERT_EQ(o.numDefs, 2);
    EXPECT_EQ(o.defs[0], intReg(8));
    EXPECT_EQ(o.defs[1], intReg(9));
}

TEST(Operands, StoreUsesBaseAndValue)
{
    Operands o = getOperands(make(Opcode::FSTS, 0, 2, 7));
    EXPECT_EQ(o.numDefs, 0);
    ASSERT_EQ(o.numUses, 2);
    EXPECT_EQ(o.uses[0], intReg(2));
    EXPECT_EQ(o.uses[1], fpReg(7));
}

TEST(Operands, FaaDefinesResultUsesAddend)
{
    Operands o = getOperands(make(Opcode::FAA, 3, 2, 5));
    EXPECT_EQ(o.defs[0], intReg(3));
    EXPECT_EQ(o.numUses, 2);
}

TEST(Operands, JalDefinesRa)
{
    Operands o = getOperands(make(Opcode::JAL, 0, 0, 0));
    ASSERT_EQ(o.numDefs, 1);
    EXPECT_EQ(o.defs[0], intReg(kRegRa));
}

TEST(Disassemble, BasicForms)
{
    Instruction i = make(Opcode::ADD, 1, 2, 3);
    EXPECT_EQ(disassemble(i), "add r1, r2, r3");
    i.useImm = true;
    i.imm = -4;
    EXPECT_EQ(disassemble(i), "add r1, r2, -4");
    EXPECT_EQ(disassemble(make(Opcode::CSWITCH, 0, 0, 0)), "cswitch");
    EXPECT_EQ(disassemble(make(Opcode::FADD, 1, 2, 3)),
              "fadd f1, f2, f3");
}

TEST(Disassemble, MemoryForms)
{
    Instruction i = make(Opcode::LDS, 4, 5, 0);
    i.imm = 12;
    EXPECT_EQ(disassemble(i), "lds r4, 12(r5)");
    Instruction s = make(Opcode::FSTS, 0, 5, 6);
    s.imm = -2;
    EXPECT_EQ(disassemble(s), "fsts f6, -2(r5)");
    Instruction f = make(Opcode::FAA, 3, 5, 7);
    f.imm = 0;
    EXPECT_EQ(disassemble(f), "faa r3, 0(r5), r7");
}

TEST(Disassemble, BranchUsesLabelResolver)
{
    Instruction b = make(Opcode::BNE, 0, 1, 2);
    b.target = 17;
    auto resolver = [](std::int32_t t) {
        return t == 17 ? std::string("loop") : std::string();
    };
    EXPECT_EQ(disassemble(b, resolver), "bne r1, r2, loop");
    EXPECT_EQ(disassemble(b), "bne r1, r2, @17");
}

TEST(Addressing, SharedBaseClassification)
{
    EXPECT_TRUE(isSharedAddr(kSharedBase));
    EXPECT_TRUE(isSharedAddr(kSharedBase + 123));
    EXPECT_FALSE(isSharedAddr(0));
    EXPECT_FALSE(isSharedAddr(kSharedBase - 1));
}
