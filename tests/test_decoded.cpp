/**
 * @file
 * Pre-decoded execution core: handler-table completeness, the local-run
 * span table, and observational identity of the batched fast path.
 */
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "isa/decoded.hpp"
#include "test_helpers.hpp"

using namespace mts;
using namespace mts::test;

namespace
{

/** A representative Instruction for @p op (valid operands). */
Instruction
instFor(Opcode op, bool useImm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = 8;
    inst.rs1 = 9;
    inst.rs2 = 10;
    inst.useImm = useImm;
    inst.imm = 1;
    inst.fimm = 1.0;
    inst.target = 0;
    inst.srcLine = 7;
    return inst;
}

} // namespace

// Every opcode must decode to exactly one handler — the startup assert in
// decodeOne plus this test are the completeness guarantee the batcher and
// the dispatch switch rely on.
TEST(DecodedCore, EveryOpcodeHasExactlyOneHandler)
{
    std::map<Handler, std::set<Opcode>> producers;
    for (int o = 0; o < static_cast<int>(Opcode::NUM_OPCODES); ++o) {
        Opcode op = static_cast<Opcode>(o);
        for (bool useImm : {false, true}) {
            DecodedOp d = decodeOne(instFor(op, useImm));
            ASSERT_NE(d.h, Handler::NUM_HANDLERS)
                << opcodeName(op) << " useImm=" << useImm;
            EXPECT_EQ(d.op, op);
            EXPECT_EQ(d.lat, resultLatency(op));
            EXPECT_EQ(d.h == Handler::SharedLoad, isSharedLoad(op))
                << opcodeName(op);
            EXPECT_EQ(d.h == Handler::SharedStore, isSharedStore(op))
                << opcodeName(op);
            // Span safety: a local handler must never be control flow,
            // shared memory, or a switch decision point.
            if (isLocalHandler(d.h)) {
                EXPECT_FALSE(isControl(op)) << opcodeName(op);
                EXPECT_FALSE(isSharedMem(op)) << opcodeName(op);
                EXPECT_NE(op, Opcode::CSWITCH);
            }
            producers[d.h].insert(op);
        }
    }
    // Shared handlers multiplex several opcodes through flags; every other
    // handler must come from exactly one opcode.
    for (const auto &[h, ops] : producers) {
        if (h == Handler::SharedLoad || h == Handler::SharedStore)
            continue;
        EXPECT_EQ(ops.size(), 1u)
            << "handler " << static_cast<int>(h)
            << " produced by multiple opcodes";
    }
}

TEST(DecodedCore, OperandFormFoldedAtDecode)
{
    EXPECT_EQ(decodeOne(instFor(Opcode::ADD, false)).h, Handler::AddRR);
    EXPECT_EQ(decodeOne(instFor(Opcode::ADD, true)).h, Handler::AddRI);
    EXPECT_EQ(decodeOne(instFor(Opcode::BNE, false)).h, Handler::BneRR);
    EXPECT_EQ(decodeOne(instFor(Opcode::BNE, true)).h, Handler::BneRI);
    // FP ops have no immediate form; the flag must not change the handler.
    EXPECT_EQ(decodeOne(instFor(Opcode::FADD, true)).h, Handler::Fadd);
}

TEST(DecodedCore, FlagsAndDestinationBank)
{
    EXPECT_EQ(decodeOne(instFor(Opcode::FAA, false)).flags, kDecFaa);
    EXPECT_EQ(decodeOne(instFor(Opcode::LDS_SPIN, false)).flags, kDecSpin);
    EXPECT_EQ(decodeOne(instFor(Opcode::LDSD, false)).flags, kDecPair);
    EXPECT_EQ(decodeOne(instFor(Opcode::FLDSD, false)).flags,
              kDecPair | kDecFpDest);
    EXPECT_EQ(decodeOne(instFor(Opcode::FSTS, false)).flags, kDecFpVal);

    EXPECT_EQ(decodeOne(instFor(Opcode::LDS, false)).d0, intReg(8));
    EXPECT_EQ(decodeOne(instFor(Opcode::FLDS, false)).d0, fpReg(8));
    // FAA's destination is the integer bank even though rd names it.
    EXPECT_EQ(decodeOne(instFor(Opcode::FAA, false)).d0, intReg(8));
    EXPECT_EQ(decodeOne(instFor(Opcode::FADD, false)).d0, fpReg(8));
    EXPECT_EQ(decodeOne(instFor(Opcode::CVTFI, false)).d0, intReg(8));
    EXPECT_EQ(decodeOne(instFor(Opcode::CVTIF, false)).d0, fpReg(8));
}

TEST(DecodedCore, SpanTableCountsLocalSuffixes)
{
    Program prog = assemble(".shared x, 1\n"
                            "main:\n"
                            "    li r8, 5\n"        // 0: local
                            "    add r9, r8, 1\n"   // 1: local
                            "    mul r10, r9, 2\n"  // 2: local
                            "    sts r10, x\n"      // 3: shared store
                            "    li r11, 1\n"       // 4: local
                            "    beq r11, 1, end\n" // 5: branch
                            "    nop\n"             // 6: local
                            "end:\n"
                            "    halt\n");          // 7: halt
    DecodedProgram d = decodeProgram(prog.code);
    ASSERT_EQ(d.size(), 8u);
    EXPECT_EQ(d[0].localRun, 3);
    EXPECT_EQ(d[1].localRun, 2);
    EXPECT_EQ(d[2].localRun, 1);
    EXPECT_EQ(d[3].localRun, 0);  // shared store terminates the span
    EXPECT_EQ(d[4].localRun, 1);
    EXPECT_EQ(d[5].localRun, 0);  // branch
    EXPECT_EQ(d[6].localRun, 1);
    EXPECT_EQ(d[7].localRun, 0);  // halt
}

namespace
{

/** Tracer that records nothing: forces the per-instruction path. */
class NullTracer : public Tracer
{
};

constexpr const char *kSpanProgram =
    ".shared acc, 1\n"
    ".shared gate, 1\n"
    "main:\n"
    "    li r8, 0\n"
    "    li r9, 0\n"
    "loop:\n"
    "    add r10, r9, 3\n"
    "    mul r11, r10, 5\n"
    "    sub r12, r11, r9\n"
    "    xor r13, r12, 9\n"
    "    and r14, r13, 1023\n"
    "    add r8, r8, r14\n"
    "    lds r15, gate\n"
    "    add r8, r8, r15\n"
    "    cswitch\n"
    "    add r9, r9, 1\n"
    "    blt r9, 400, loop\n"
    "    faa r0, acc(r0), r8\n"
    "    mv r2, r8\n"
    "    halt\n";

/** All CpuStats fields that must match bit for bit. */
void
expectSameStats(const CpuStats &a, const CpuStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    EXPECT_EQ(a.idleCycles, b.idleCycles);
    EXPECT_EQ(a.switchesTaken, b.switchesTaken);
    EXPECT_EQ(a.switchesSkipped, b.switchesSkipped);
    EXPECT_EQ(a.sliceLimitSwitches, b.sliceLimitSwitches);
    EXPECT_EQ(a.zeroRuns, b.zeroRuns);
    EXPECT_EQ(a.sharedLoads, b.sharedLoads);
    EXPECT_EQ(a.spinLoads, b.spinLoads);
    EXPECT_EQ(a.sharedStores, b.sharedStores);
    EXPECT_EQ(a.fetchAdds, b.fetchAdds);
    EXPECT_EQ(a.estimateHits, b.estimateHits);
    EXPECT_EQ(a.finishTime, b.finishTime);
    EXPECT_EQ(a.runLengths.count(), b.runLengths.count());
    EXPECT_EQ(a.runLengths.sum(), b.runLengths.sum());
}

} // namespace

// The batched span executor must be observationally identical to
// instruction-at-a-time stepping (DESIGN.md §11): same digest, same
// completion time, same statistics — across every switch model. A null
// tracer disables batching without changing any simulated behaviour.
TEST(DecodedCore, SpanBatchingIsObservationallyIdentical)
{
    for (SwitchModel model : kAllModels) {
        MachineConfig cfg = miniConfig();
        cfg.model = model;
        cfg.numProcs = 2;
        cfg.threadsPerProc = 4;

        Program prog = assemble(kSpanProgram);

        Machine fast(prog, cfg);
        fast.setPrintHandler([](const std::string &) {});
        RunResult fr = fast.run();

        NullTracer tracer;
        MachineConfig slowCfg = cfg;
        slowCfg.tracer = &tracer;
        Machine slow(prog, slowCfg);
        slow.setPrintHandler([](const std::string &) {});
        RunResult sr = slow.run();

        EXPECT_EQ(fr.digest, sr.digest) << switchModelName(model);
        EXPECT_EQ(fr.cycles, sr.cycles) << switchModelName(model);
        expectSameStats(fr.cpu, sr.cpu);

        // The fast run must actually have exercised the batcher (except
        // switch-every-cycle, where batching is disabled by design), and
        // the traced run must not have.
        if (model != SwitchModel::SwitchEveryCycle) {
            EXPECT_GT(fast.processor(0).spanInstructions(), 0u)
                << switchModelName(model);
        }
        EXPECT_EQ(slow.processor(0).spanInstructions(), 0u);
    }
}
