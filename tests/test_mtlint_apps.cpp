/**
 * Acceptance gate for the checker suite: every benchmark app and the
 * runtime prelude must lint clean (zero error-severity findings), both
 * as written and after the grouping pass — and the pass output must
 * translation-validate against its source.
 */
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "analysis/verify_grouping.hpp"
#include "test_helpers.hpp"

using namespace mts;

namespace
{

void
expectLintClean(const Program &prog, bool grouped)
{
    LintOptions opts;
    opts.grouped = grouped;
    LintReport r = runLint(prog, opts);
    EXPECT_EQ(r.count(Severity::Error), 0u) << r.renderText(prog);
}

} // namespace

TEST(MtlintApps, AllAppsLintCleanRawAndGrouped)
{
    for (const App *app : allApps()) {
        SCOPED_TRACE(app->name());
        Program p = assemble(app->source(), app->options(1.0));
        expectLintClean(p, false);

        Program g = applyGroupingPass(p);
        LintReport tv;
        EXPECT_TRUE(verifyGroupingPass(p, g, tv)) << tv.renderText(g);
        expectLintClean(g, true);
    }
}

TEST(MtlintApps, RuntimePreludeLintsClean)
{
    // The prelude alone, driven by a minimal main exercising the lock
    // and barrier entry points the apps rely on.
    std::string src = runtimePrelude() + R"(
.entry main
main:
    jal __mts_lock
    jal __mts_unlock
    jal __mts_barrier
    halt
)";
    Program p = assemble(src);
    expectLintClean(p, false);

    Program g = applyGroupingPass(p);
    LintReport tv;
    EXPECT_TRUE(verifyGroupingPass(p, g, tv)) << tv.renderText(g);
    expectLintClean(g, true);
}

TEST(MtlintApps, LintIsDeterministic)
{
    // Same input, same report — the JSON gate in CI depends on it.
    Program p = assemble(findApp("water").source(),
                         findApp("water").options(1.0));
    LintOptions opts;
    opts.grouped = true;
    Program g = applyGroupingPass(p);
    LintReport a = runLint(g, opts);
    LintReport b = runLint(g, opts);
    ASSERT_EQ(a.diags().size(), b.diags().size());
    for (std::size_t i = 0; i < a.diags().size(); ++i) {
        EXPECT_EQ(a.diags()[i].pc, b.diags()[i].pc);
        EXPECT_EQ(a.diags()[i].message, b.diags()[i].message);
    }
}
