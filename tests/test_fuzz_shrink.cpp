/**
 * @file
 * End-to-end proof that the fuzzing subsystem can actually catch a
 * miscompile: a deliberately corrupted "grouping pass" is injected via
 * DiffOptions::groupedTransform, the campaign must flag it, and the
 * ddmin shrinker must cut the reproducer down to a handful of
 * instructions — deterministically. Plus direct unit tests of
 * shrinkProgram / countInstructionLines.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "opt/grouping_pass.hpp"
#include "verify/fuzz.hpp"
#include "verify/shrink.hpp"

using namespace mts;

namespace
{

/**
 * A grouping pass with a planted bug: after the real pass, the first
 * ADD writing v0 (the generated epilogue's `mv v0, s0` checksum
 * publish) gets its source replaced with zero. Every generated program
 * publishes a checksum, so every seed should now diverge at the
 * grouped-reference self-check.
 */
Program
corruptV0(const Program &p)
{
    Program g = applyGroupingPass(p);
    for (Instruction &inst : g.code)
        if (inst.op == Opcode::ADD && inst.rd == kRegRet0) {
            inst.rs1 = kRegZero;
            break;
        }
    return g;
}

FuzzOptions
injectedMiscompileOptions()
{
    FuzzOptions opts;
    opts.seeds = 1;
    opts.firstSeed = 7;
    opts.shrink = true;
    opts.diff.groupedTransform = corruptV0;
    // The failure is caught before any machine run, so the matrix knobs
    // barely matter; keep the default ones for realism.
    return opts;
}

} // namespace

TEST(FuzzShrink, InjectedMiscompileIsCaughtAndShrunk)
{
    FuzzReport rep = runFuzzCampaign(injectedMiscompileOptions());
    ASSERT_EQ(rep.failures.size(), 1u)
        << "a corrupted grouping pass must be flagged";
    const FuzzFailure &f = rep.failures[0];
    EXPECT_EQ(f.seed, 7u);
    EXPECT_EQ(f.first.kind, DivergenceKind::Digest);
    EXPECT_EQ(f.first.config, "grouped reference")
        << "miscompile should be caught by the self-check, "
           "before any machine run";

    // The shrinker must deliver a usable reproducer, far smaller than
    // the generated program.
    ASSERT_FALSE(f.minimizedSource.empty());
    EXPECT_GT(f.shrinkAttempts, 0);
    EXPECT_LE(f.minimizedInstructions, 15);
    EXPECT_LT(f.minimizedInstructions,
              countInstructionLines(f.source));
    EXPECT_EQ(f.minimizedInstructions,
              countInstructionLines(f.minimizedSource));
}

TEST(FuzzShrink, ShrinkingIsDeterministic)
{
    FuzzReport a = runFuzzCampaign(injectedMiscompileOptions());
    FuzzReport b = runFuzzCampaign(injectedMiscompileOptions());
    ASSERT_EQ(a.failures.size(), 1u);
    ASSERT_EQ(b.failures.size(), 1u);
    EXPECT_EQ(a.failures[0].source, b.failures[0].source);
    EXPECT_EQ(a.failures[0].minimizedSource,
              b.failures[0].minimizedSource);
    EXPECT_EQ(a.failures[0].shrinkAttempts, b.failures[0].shrinkAttempts);
}

TEST(Shrink, CountsOnlyInstructionLines)
{
    EXPECT_EQ(countInstructionLines("; comment\n"
                                    "# comment\n"
                                    ".shared x, 1\n"
                                    "main:\n"
                                    "Lbl:   ; trailing comment\n"
                                    "\n"
                                    "    li t0, 1\n"
                                    "    halt\n"),
              2);
    EXPECT_EQ(countInstructionLines(""), 0);
}

TEST(Shrink, DdminFindsTheTwoRelevantLines)
{
    // Predicate: "fails" iff both marker instructions survive. ddmin
    // must strip all ten decoys and keep exactly the two markers.
    const std::string src = "main:\n"
                            "    li t0, 0\n"
                            "    li t1, 1\n"
                            "    li t2, 2\n"
                            "    li t3, 3\n"
                            "    add s0, t0, 77\n"
                            "    li t4, 4\n"
                            "    li t5, 5\n"
                            "    li t6, 6\n"
                            "    li t7, 7\n"
                            "    add s1, s0, 99\n"
                            "    li t8, 8\n"
                            "    halt\n";
    auto needsBothMarkers = [](const std::string &cand) {
        return cand.find("77") != std::string::npos &&
               cand.find("99") != std::string::npos;
    };
    ASSERT_TRUE(needsBothMarkers(src));

    ShrinkResult r = shrinkProgram(src, needsBothMarkers);
    EXPECT_EQ(r.instructions, 2);
    EXPECT_NE(r.source.find("add s0, t0, 77"), std::string::npos);
    EXPECT_NE(r.source.find("add s1, s0, 99"), std::string::npos);
    EXPECT_NE(r.source.find("main:"), std::string::npos)
        << "labels are structural and must survive";
    EXPECT_GT(r.attempts, 0);

    ShrinkResult again = shrinkProgram(src, needsBothMarkers);
    EXPECT_EQ(again.source, r.source);
    EXPECT_EQ(again.attempts, r.attempts);
}

TEST(Shrink, AttemptBudgetIsHonoured)
{
    std::string src = "main:\n";
    for (int i = 0; i < 40; ++i)
        src += "    li t0, " + std::to_string(i) + "\n";
    src += "    halt\n";

    int calls = 0;
    ShrinkOptions opts;
    opts.maxAttempts = 5;
    ShrinkResult r = shrinkProgram(
        src,
        [&](const std::string &) {
            ++calls;
            return false;  // nothing removable: full passes, no progress
        },
        opts);
    EXPECT_LE(r.attempts, 5);
    EXPECT_EQ(calls, r.attempts);
    EXPECT_EQ(r.instructions, countInstructionLines(src));
}
