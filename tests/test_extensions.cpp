/**
 * Tests of the beyond-the-paper extensions: channel serialization,
 * hot-spot memory-port serialization, the software combining-tree
 * barrier, and critical-region priority scheduling. Each is a knob the
 * paper's text motivates (Sections 6.1, 6.2 and reference [26]) but
 * leaves unimplemented.
 */
#include <gtest/gtest.h>

#include "test_helpers.hpp"

using namespace mts;
using namespace mts::test;

TEST(ChannelModel, SerializationDelaysReturn)
{
    // One load on a 2-bit channel: request 64 bits -> 32 cycles of
    // injection, reply 96 bits -> 48 cycles. Completion must move from
    // 200 to 200 + 32 + 48 cycles after issue.
    MachineConfig cfg = miniConfig();
    cfg.network.channelBits = 2;
    MiniRun mr = runAsm(R"(
.shared x, 1
main:
    lds r1, x
    add r2, r1, 1
    halt
)",
                        cfg);
    // lds@0 completes at 280; add@280; halt@281 -> 282.
    EXPECT_EQ(mr.result.cycles, 282u);
}

TEST(ChannelModel, BackToBackStoresQueueAtTheInterface)
{
    // Stores are 128 bits; on an 8-bit channel each takes 16 cycles to
    // inject, so the second store's arrival is pushed out.
    MachineConfig cfg = miniConfig();
    cfg.network.channelBits = 8;
    MiniRun wide = runAsm(R"(
.shared x, 2
.shared out, 1
main:
    li  r1, 7
    sts r1, x
    sts r1, x+1
    lds r2, x+1
    add r3, r2, 0
    sts r3, out
    halt
)",
                          cfg);
    EXPECT_EQ(wide.sharedInt("out"), 7);  // ordering preserved

    MachineConfig fast = miniConfig();
    MiniRun free = runAsm(R"(
.shared x, 2
.shared out, 1
main:
    li  r1, 7
    sts r1, x
    sts r1, x+1
    lds r2, x+1
    add r3, r2, 0
    sts r3, out
    halt
)",
                          fast);
    EXPECT_GT(wide.result.cycles, free.result.cycles);
}

TEST(ChannelModel, SpinTrafficBypassesTheChannel)
{
    MachineConfig cfg = miniConfig();
    cfg.network.channelBits = 1;  // brutally narrow
    MiniRun mr = runAsm(R"(
.shared x, 1
main:
    lds.spin r1, x
    halt
)",
                        cfg);
    // Spin loads are not serialized: lds.spin@0 blocks to 200, halt@200
    // -> completion at 201.
    EXPECT_EQ(mr.result.cycles, 201u);
}

TEST(ChannelModel, NarrowChannelsHurtBandwidthHungryApps)
{
    ExperimentRunner runner(0.1);
    auto base = ExperimentRunner::makeConfig(
        SwitchModel::ExplicitSwitch, 4, 8);
    auto wide = runner.run(sorApp(), base);
    base.network.channelBits = 2;
    auto narrow = runner.run(sorApp(), base);
    EXPECT_LT(narrow.efficiency, wide.efficiency);
}

TEST(HotSpotModel, SameWordAccessesSerialize)
{
    // 8 threads fetch-and-add one counter; with a 10-cycle memory port
    // the total time must grow by roughly the serialization.
    auto run = [](Cycle port) {
        MachineConfig cfg = miniConfig();
        cfg.numProcs = 8;
        cfg.threadsPerProc = 1;
        cfg.network.memPortCycles = port;
        return runAsm(R"(
.shared c, 1
main:
    li  r3, 1
    faa r4, c(r0), r3
    add r5, r4, 1
    halt
)",
                      cfg);
    };
    MiniRun combining = run(0);
    MiniRun hotspot = run(20);
    EXPECT_EQ(combining.sharedInt("c"), 8);
    EXPECT_EQ(hotspot.sharedInt("c"), 8);
    // 8 serialized accesses at 20 cycles each add >= 7*20 cycles to the
    // last one's completion.
    EXPECT_GE(hotspot.result.cycles, combining.result.cycles + 140);
}

TEST(HotSpotModel, PerSourceOrderingPreserved)
{
    // Producer writes data (hot word) then flag; consumer must never see
    // the flag without the data, even under port contention.
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 2;
    cfg.network.memPortCycles = 50;
    MiniRun mr = runAsm(R"(
.shared data, 1
.shared flag, 1
.shared out, 1
main:
    bne a0, r0, consumer
    li  r1, 99
    sts r1, data
    li  r1, 1
    sts r1, flag
    halt
consumer:
    lds.spin r2, flag
    beq r2, r0, consumer
    lds r3, data
    sts r3, out
    halt
)",
                        cfg);
    EXPECT_EQ(mr.sharedInt("out"), 99);
}

namespace
{

const char *const kTreeBarrierKernel = R"(
.shared tree, 256
.shared rounds, 1
.entry main
main:
    mv  s0, a0
    mv  s1, a1
    li  s2, 0
loop:
    la  a0, tree
    mv  a1, s1
    mv  a2, s0
    call __mts_barrier_tree
    add s2, s2, 1
    blt s2, 4, loop
    li  t0, 1
    la  t1, rounds
    faa t2, 0(t1), t0
    halt
)";

} // namespace

class TreeBarrier : public ::testing::TestWithParam<int>
{
};

TEST_P(TreeBarrier, AllThreadsCompleteEveryEpisode)
{
    int threads = GetParam();
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 4;
    cfg.threadsPerProc = threads;
    MiniRun mr = runAsmWithRuntime(kTreeBarrierKernel, cfg);
    EXPECT_EQ(mr.sharedInt("rounds"), 4 * threads);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, TreeBarrier,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(TreeBarrierSemantics, OrderingAcrossPhases)
{
    // Same neighbour-read property as the centralized barrier test.
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 4;
    cfg.threadsPerProc = 4;
    MiniRun mr = runAsmWithRuntime(R"(
.shared tree, 256
.shared vals, 64
.shared bad, 1
.entry main
main:
    mv  s0, a0
    mv  s1, a1
    la  t0, vals
    add t0, t0, s0
    add t1, s0, 100
    sts t1, 0(t0)
    la  a0, tree
    mv  a1, s1
    mv  a2, s0
    call __mts_barrier_tree
    add t2, s0, 1
    rem t2, t2, s1
    la  t0, vals
    add t0, t0, t2
    lds t3, 0(t0)
    add t4, t2, 100
    beq t3, t4, fine
    li  t5, 1
    la  t6, bad
    faa t7, 0(t6), t5
fine:
    halt
)",
                                   cfg);
    EXPECT_EQ(mr.sharedInt("bad"), 0);
}

TEST(TreeBarrierHotSpot, FanInBoundsPerWordTraffic)
{
    // Under the hot-spot model a centralized barrier's counter serializes
    // all N arrivals; the tree's fan-in of 4 bounds each word's queue.
    auto run = [](bool tree, int procs) {
        MachineConfig cfg = miniConfig();
        cfg.numProcs = procs;
        cfg.threadsPerProc = 1;
        cfg.network.memPortCycles = 32;
        const char *central = R"(
.shared bar, 2
.shared tree, 256
.entry main
main:
    mv  s0, a0
    mv  s1, a1
    la  a0, bar
    mv  a1, s1
    call __mts_barrier
    halt
)";
        const char *treed = R"(
.shared bar, 2
.shared tree, 256
.entry main
main:
    mv  s0, a0
    mv  s1, a1
    la  a0, tree
    mv  a1, s1
    mv  a2, s0
    call __mts_barrier_tree
    halt
)";
        return runAsmWithRuntime(tree ? treed : central, cfg)
            .result.cycles;
    };
    // At 32 processors the centralized counter serializes 32 faa's.
    Cycle central = run(false, 32);
    Cycle tree = run(true, 32);
    EXPECT_LT(tree, central);
}

TEST(PriorityScheduling, SetpriIsNopWithoutTheFeature)
{
    MiniRun mr = runAsm(R"(
.shared out, 1
main:
    setpri 1
    li  r1, 5
    setpri 0
    sts r1, out
    halt
)");
    EXPECT_EQ(mr.sharedInt("out"), 5);
    EXPECT_EQ(mr.result.cpu.instructions, 5u);
}

TEST(PriorityScheduling, LockHolderPreferredOnRotation)
{
    // Lock-heavy kernel with background cache-hit streams; priority
    // scheduling must keep the counter correct, and the holder gets the
    // processor back ahead of round-robin order.
    const std::string src = R"(
.shared counter, 1
.shared lk, 2
.entry main
main:
    li s2, 0
loop:
    la a0, lk
    call __mts_lock
    lds t1, counter
    add t1, t1, 1
    sts t1, counter
    la a0, lk
    call __mts_unlock
    add s2, s2, 1
    blt s2, 15, loop
    halt
)";
    for (bool pri : {false, true}) {
        MachineConfig cfg = miniConfig();
        cfg.model = SwitchModel::ConditionalSwitch;
        cfg.numProcs = 2;
        cfg.threadsPerProc = 4;
        cfg.prioritySched = pri;
        Program prog =
            applyGroupingPass(assemble(runtimePrelude() + src));
        Machine m(prog, cfg);
        m.run();
        EXPECT_EQ(m.sharedMem().readInt(prog.sharedAddr("counter")),
                  15 * 8)
            << "prioritySched=" << pri;
    }
}

TEST(PriorityScheduling, AssemblerRejectsBadPriority)
{
    EXPECT_THROW(assemble("main:\n    setpri 2\n    halt\n"), FatalError);
}
