/**
 * Tests of the grouping compiler pass (paper Section 5.1), including the
 * semantic-equivalence property the pass must preserve.
 */
#include <gtest/gtest.h>

#include "opt/basic_blocks.hpp"
#include "test_helpers.hpp"

using namespace mts;
using namespace mts::test;

namespace
{

std::size_t
countOp(const Program &p, Opcode op)
{
    std::size_t n = 0;
    for (const auto &inst : p.code)
        if (inst.op == op)
            ++n;
    return n;
}

} // namespace

TEST(BasicBlocks, LeadersAtLabelsTargetsAndAfterControl)
{
    Program p = assemble(R"(
main:
    li  r1, 0
loop:
    add r1, r1, 1
    blt r1, 10, loop
    li  r2, 5
    j   end
mid:
    nop
end:
    halt
)");
    auto blocks = findBasicBlocks(p);
    // main[0..1), loop[1..3), [3..5), mid[5..6), end[6..7)
    ASSERT_EQ(blocks.size(), 5u);
    EXPECT_EQ(blocks[0].begin, 0);
    EXPECT_EQ(blocks[1].begin, 1);
    EXPECT_EQ(blocks[1].end, 3);
    EXPECT_EQ(blocks[2].begin, 3);
    EXPECT_EQ(blocks[3].begin, 5);
    EXPECT_EQ(blocks[4].begin, 6);
}

TEST(GroupingPass, SorStyleFiveLoadsFormOneGroup)
{
    // The paper's Figure 4: five independent loads, one cswitch.
    // Loads interleaved with independent fp work: the pass must hoist
    // all five into one group above the unrelated fadds.
    Program p = assemble(R"(
.shared u, 100
main:
    li   r1, u
    flds f1, 10(r1)
    fadd f8, f10, f11
    flds f2, 30(r1)
    fadd f9, f8, f10
    flds f3, 19(r1)
    flds f4, 21(r1)
    flds f5, 20(r1)
    fadd f6, f1, f2
    fadd f7, f3, f4
    halt
)");
    GroupingStats gs;
    Program g = applyGroupingPass(p, &gs);
    EXPECT_EQ(countOp(g, Opcode::CSWITCH), 1u);
    EXPECT_EQ(gs.loadGroups, 1u);
    EXPECT_DOUBLE_EQ(gs.staticGroupingFactor(), 5.0);
    // All five loads precede the cswitch.
    std::size_t switchPos = 0;
    for (std::size_t i = 0; i < g.code.size(); ++i)
        if (g.code[i].op == Opcode::CSWITCH)
            switchPos = i;
    std::size_t loadsBefore = 0;
    for (std::size_t i = 0; i < switchPos; ++i)
        if (g.code[i].op == Opcode::FLDS)
            ++loadsBefore;
    EXPECT_EQ(loadsBefore, 5u);
}

TEST(GroupingPass, DependentLoadsSplitIntoTwoGroups)
{
    // Pointer chase: the second load's address needs the first's value.
    Program p = assemble(R"(
.shared a, 10
main:
    li  r1, a
    lds r2, 0(r1)
    lds r3, 0(r2)
    halt
)");
    GroupingStats gs;
    Program g = applyGroupingPass(p, &gs);
    EXPECT_EQ(countOp(g, Opcode::CSWITCH), 2u);
    EXPECT_EQ(gs.loadGroups, 2u);
}

TEST(GroupingPass, PessimisticSharedStoreAliasing)
{
    // A store between two loads must not be crossed (paper footnote 1),
    // even though the addresses are statically distinct.
    Program p = assemble(R"(
.shared a, 10
main:
    li  r1, a
    lds r2, 0(r1)
    sts r2, 5(r1)
    lds r3, 1(r1)
    halt
)");
    Program g = applyGroupingPass(p, nullptr);
    // Order must remain load, store, load.
    std::vector<Opcode> memOps;
    for (const auto &inst : g.code)
        if (isSharedMem(inst.op))
            memOps.push_back(inst.op);
    ASSERT_EQ(memOps.size(), 3u);
    EXPECT_EQ(memOps[0], Opcode::LDS);
    EXPECT_EQ(memOps[1], Opcode::STS);
    EXPECT_EQ(memOps[2], Opcode::LDS);
    EXPECT_EQ(countOp(g, Opcode::CSWITCH), 2u);
}

TEST(GroupingPass, LocalDisjointAccessesMayReorder)
{
    // Two local stores at distinct offsets from the same base do not
    // block hoisting the second shared load over them.
    Program p = assemble(R"(
.shared a, 10
main:
    li  r1, a
    lds r2, 0(r1)
    stl r2, 0(sp)
    lds r3, 1(r1)
    halt
)");
    GroupingStats gs;
    Program g = applyGroupingPass(p, &gs);
    // stl depends on r2 (RAW) so it cannot move above the wait, but the
    // second load is independent and joins the first group.
    EXPECT_EQ(countOp(g, Opcode::CSWITCH), 1u);
    EXPECT_DOUBLE_EQ(gs.staticGroupingFactor(), 2.0);
}

TEST(GroupingPass, GroupsNeverCrossBasicBlocks)
{
    Program p = assemble(R"(
.shared a, 10
main:
    li  r1, a
    lds r2, 0(r1)
    beq r2, r0, skip
    lds r3, 1(r1)
skip:
    halt
)");
    GroupingStats gs;
    Program g = applyGroupingPass(p, &gs);
    EXPECT_EQ(countOp(g, Opcode::CSWITCH), 2u);
}

TEST(GroupingPass, BranchConsumingLoadGetsSwitchFirst)
{
    Program p = assemble(R"(
.shared a, 10
main:
    li  r1, a
    lds r2, 0(r1)
    bne r2, r0, main
    halt
)");
    Program g = applyGroupingPass(p, nullptr);
    // Sequence must be ... lds, cswitch, bne.
    std::size_t i = 0;
    while (g.code[i].op != Opcode::LDS)
        ++i;
    EXPECT_EQ(g.code[i + 1].op, Opcode::CSWITCH);
    EXPECT_EQ(g.code[i + 2].op, Opcode::BNE);
}

TEST(GroupingPass, IdempotentOnItsOwnOutput)
{
    Program p = assemble(R"(
.shared u, 100
main:
    li   r1, u
    flds f1, 0(r1)
    flds f2, 1(r1)
    fadd f3, f1, f2
    halt
)");
    Program once = applyGroupingPass(p, nullptr);
    Program twice = applyGroupingPass(once, nullptr);
    ASSERT_EQ(once.code.size(), twice.code.size());
    for (std::size_t i = 0; i < once.code.size(); ++i)
        EXPECT_EQ(once.code[i].op, twice.code[i].op) << "at " << i;
}

TEST(GroupingPass, BranchTargetsRemappedCorrectly)
{
    Program p = assemble(R"(
.shared a, 4
main:
    li  r4, 0
loop:
    lds r2, a
    add r4, r4, 1
    blt r4, 3, loop
    sts r4, a+1
    halt
)");
    Program g = applyGroupingPass(p, nullptr);
    // Run both: same result.
    MachineConfig cfg = miniConfig();
    Machine m1(p, cfg);
    m1.run();
    MachineConfig cfg2 = miniConfig();
    cfg2.model = SwitchModel::ExplicitSwitch;
    Machine m2(g, cfg2);
    m2.run();
    EXPECT_EQ(m1.sharedMem().readInt(p.sharedAddr("a") + 1),
              m2.sharedMem().readInt(g.sharedAddr("a") + 1));
}

TEST(GroupingPass, EntrySymbolSurvives)
{
    Program p = assemble(R"(
.entry main
helper:
    ret
main:
    halt
)");
    Program g = applyGroupingPass(p, nullptr);
    EXPECT_EQ(g.code[g.entry].op, Opcode::HALT);
    EXPECT_EQ(g.labelFor(g.entry), "main");
}

TEST(GroupingPass, SpinLoadsStayOrderedWithSharedAccesses)
{
    // A spin load is a synchronization access; a later shared load must
    // not be hoisted above it.
    Program p = assemble(R"(
.shared f, 1
.shared d, 1
main:
    lds.spin r1, f
    lds r2, d
    halt
)");
    Program g = applyGroupingPass(p, nullptr);
    std::size_t spinPos = 0, loadPos = 0;
    for (std::size_t i = 0; i < g.code.size(); ++i) {
        if (g.code[i].op == Opcode::LDS_SPIN)
            spinPos = i;
        if (g.code[i].op == Opcode::LDS)
            loadPos = i;
    }
    EXPECT_LT(spinPos, loadPos);
}

// ---- The big property: the pass preserves application semantics. ----

class GroupingSemanticsProperty
    : public ::testing::TestWithParam<const App *>
{
};

TEST_P(GroupingSemanticsProperty, GroupedCodeComputesSameResults)
{
    const App &app = *GetParam();
    AsmOptions opts = app.options(0.05);
    Program original = assemble(app.source(), opts);
    GroupingStats gs;
    Program grouped = applyGroupingPass(original, &gs);
    EXPECT_EQ(gs.instructionsOut,
              gs.instructionsIn + gs.switchesInserted);

    // Original under switch-on-load.
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 2;
    cfg.threadsPerProc = 2;
    Machine m1(original, cfg);
    app.init(m1);
    m1.run();
    AppCheckResult r1 = app.check(m1);
    EXPECT_TRUE(r1.ok) << r1.message;

    // Grouped under explicit-switch.
    MachineConfig cfg2 = cfg;
    cfg2.model = SwitchModel::ExplicitSwitch;
    Machine m2(grouped, cfg2);
    app.init(m2);
    m2.run();
    AppCheckResult r2 = app.check(m2);
    EXPECT_TRUE(r2.ok) << r2.message;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, GroupingSemanticsProperty,
    ::testing::ValuesIn(allApps()),
    [](const ::testing::TestParamInfo<const App *> &info) {
        return info.param->name();
    });
