/**
 * Tests of the mtlint checker suite: use-before-def, split-phase,
 * run-length and spin/lock discipline.
 */
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "test_helpers.hpp"

using namespace mts;

namespace
{

std::size_t
countFrom(const LintReport &r, std::string_view checker, Severity sev)
{
    std::size_t n = 0;
    for (const Diag &d : r.diags())
        if (d.checker == checker && d.severity == sev)
            ++n;
    return n;
}

const Diag *
firstFrom(const LintReport &r, std::string_view checker)
{
    for (const Diag &d : r.diags())
        if (d.checker == checker)
            return &d;
    return nullptr;
}

} // namespace

TEST(UseBeforeDef, CleanProgramIsSilent)
{
    Program p = assemble(R"(
main:
    li  r1, 3
    add r2, r1, r4
    halt
)");
    LintReport r = runLint(p);
    EXPECT_EQ(countFrom(r, "use-before-def", Severity::Error), 0u);
    EXPECT_EQ(countFrom(r, "use-before-def", Severity::Warning), 0u);
}

TEST(UseBeforeDef, ReadOnEveryPathIsAnError)
{
    Program p = assemble(R"(
main:
    add r2, r1, r1
    halt
)");
    LintReport r = runLint(p);
    ASSERT_EQ(countFrom(r, "use-before-def", Severity::Error), 1u);
    const Diag *d = firstFrom(r, "use-before-def");
    EXPECT_EQ(d->pc, 0);
    EXPECT_NE(d->message.find("r1"), std::string::npos);
}

TEST(UseBeforeDef, ReadOnSomePathIsAWarning)
{
    Program p = assemble(R"(
main:
    beq r4, 0, use
    li  r1, 7
use:
    add r2, r1, 0
    halt
)");
    LintReport r = runLint(p);
    EXPECT_EQ(countFrom(r, "use-before-def", Severity::Error), 0u);
    EXPECT_EQ(countFrom(r, "use-before-def", Severity::Warning), 1u);
}

TEST(UseBeforeDef, CalleeAssumesCallerDefinedEverything)
{
    // r7 is written by main before the call; the callee must not
    // complain about reading it.
    Program p = assemble(R"(
main:
    li  r7, 5
    jal fn
    halt
fn:
    add r2, r7, 1
    jr  ra
)");
    LintReport r = runLint(p);
    EXPECT_EQ(countFrom(r, "use-before-def", Severity::Error), 0u);
    EXPECT_EQ(countFrom(r, "use-before-def", Severity::Warning), 0u);
}

TEST(SplitPhase, UseWithoutCswitchIsAnError)
{
    // Hand-written "grouped" code that forgot the cswitch.
    Program p = assemble(R"(
.shared x, 4
main:
    li  r1, x
    lds r2, 0(r1)
    add r3, r2, 1
    halt
)");
    LintOptions opts;
    opts.grouped = true;
    LintReport r = runLint(p, opts);
    ASSERT_EQ(countFrom(r, "split-phase", Severity::Error), 1u);
    EXPECT_EQ(firstFrom(r, "split-phase")->pc, 2);
}

TEST(SplitPhase, CswitchCommitsTheGroup)
{
    Program p = assemble(R"(
.shared x, 4
main:
    li  r1, x
    lds r2, 0(r1)
    cswitch
    add r3, r2, 1
    halt
)");
    LintOptions opts;
    opts.grouped = true;
    LintReport r = runLint(p, opts);
    EXPECT_EQ(countFrom(r, "split-phase", Severity::Error), 0u);
}

TEST(SplitPhase, HazardFlowsAcrossBlocks)
{
    Program p = assemble(R"(
.shared x, 4
main:
    li  r1, x
    lds r2, 0(r1)
    beq r4, 0, done
    nop
done:
    add r3, r2, 1
    halt
)");
    LintOptions opts;
    opts.grouped = true;
    LintReport r = runLint(p, opts);
    EXPECT_EQ(countFrom(r, "split-phase", Severity::Error), 1u);
}

TEST(RunLength, LoopWithoutSwitchPointWarns)
{
    Program p = assemble(R"(
main:
    li  r1, 0
loop:
    add r1, r1, 1
    blt r1, 100, loop
    halt
)");
    LintOptions opts;
    opts.grouped = true;
    LintReport r = runLint(p, opts);
    EXPECT_EQ(countFrom(r, "run-length", Severity::Warning), 1u);

    // The same loop with a cswitch is quiet.
    Program q = assemble(R"(
main:
    li  r1, 0
loop:
    add r1, r1, 1
    cswitch
    blt r1, 100, loop
    halt
)");
    LintReport r2 = runLint(q, opts);
    EXPECT_EQ(countFrom(r2, "run-length", Severity::Warning), 0u);
}

TEST(RunLength, StraightLineOverTheSliceLimitWarns)
{
    // Six divides: 6 * 35 = 210 static cycles > the 200-cycle limit.
    Program p = assemble(R"(
main:
    li  r1, 90
    div r1, r1, 3
    div r1, r1, 3
    div r1, r1, 3
    div r1, r1, 3
    div r1, r1, 3
    div r1, r1, 3
    halt
)");
    LintOptions opts;
    opts.grouped = true;
    LintReport r = runLint(p, opts);
    EXPECT_EQ(countFrom(r, "run-length", Severity::Warning), 1u);

    // Raising the limit silences it; 0 disables the checker.
    opts.sliceLimit = 1000;
    EXPECT_EQ(countFrom(runLint(p, opts), "run-length",
                        Severity::Warning),
              0u);
    opts.sliceLimit = 0;
    EXPECT_EQ(countFrom(runLint(p, opts), "run-length",
                        Severity::Warning),
              0u);
}

TEST(SpinLock, SpinLoadOutsideALoopIsAnError)
{
    Program p = assemble(R"(
.shared flag, 1
main:
    li       r1, flag
    lds.spin r2, 0(r1)
    halt
)");
    LintReport r = runLint(p);
    EXPECT_EQ(countFrom(r, "spin-lock", Severity::Error), 1u);
}

TEST(SpinLock, SpinLoopIsClean)
{
    Program p = assemble(R"(
.shared flag, 1
main:
    li       r1, flag
wait:
    lds.spin r2, 0(r1)
    beq      r2, 0, wait
    halt
)");
    LintReport r = runLint(p);
    EXPECT_EQ(countFrom(r, "spin-lock", Severity::Error), 0u);
}

TEST(SpinLock, HaltWithRaisedPriorityIsAnError)
{
    Program p = assemble(R"(
main:
    setpri 1
    halt
)");
    LintReport r = runLint(p);
    ASSERT_EQ(countFrom(r, "spin-lock", Severity::Error), 1u);
    EXPECT_NE(firstFrom(r, "spin-lock")->message.find("setpri"),
              std::string::npos);
}

TEST(SpinLock, BalancedPairIsClean)
{
    Program p = assemble(R"(
main:
    setpri 1
    add r1, r4, r5
    setpri 0
    halt
)");
    LintReport r = runLint(p);
    EXPECT_EQ(countFrom(r, "spin-lock", Severity::Error), 0u);
}

TEST(SpinLock, RaiseInCalleeLowerInOtherCalleeIsClean)
{
    // The lock/unlock shape of the runtime prelude: one routine raises,
    // a different routine lowers; pairing is only visible
    // interprocedurally through the routine summaries.
    Program p = assemble(R"(
main:
    jal raise
    add r1, r4, r5
    jal lower
    halt
raise:
    setpri 1
    jr ra
lower:
    setpri 0
    jr ra
)");
    LintReport r = runLint(p);
    EXPECT_EQ(countFrom(r, "spin-lock", Severity::Error), 0u);
}

TEST(SpinLock, RaiseInCalleeNeverLoweredIsAnError)
{
    Program p = assemble(R"(
main:
    jal raise
    halt
raise:
    setpri 1
    jr ra
)");
    LintReport r = runLint(p);
    EXPECT_EQ(countFrom(r, "spin-lock", Severity::Error), 1u);
}

TEST(Lint, EmptyProgramProducesNoFindings)
{
    Program p;
    LintReport r = runLint(p);
    EXPECT_TRUE(r.diags().empty());
}
