/**
 * The runtime prelude's synchronization primitives (ticket lock,
 * sense-reversing barrier) must be correct under every machine model —
 * parameterized mutual-exclusion and barrier-ordering properties.
 */
#include <gtest/gtest.h>

#include "test_helpers.hpp"

using namespace mts;
using namespace mts::test;

namespace
{

struct SyncCase
{
    SwitchModel model;
    int procs;
    int threads;
};

std::string
caseName(const ::testing::TestParamInfo<SyncCase> &info)
{
    std::string name(switchModelName(info.param.model));
    for (char &c : name)
        if (c == '-')
            c = '_';
    return name + "_p" + std::to_string(info.param.procs) + "t" +
           std::to_string(info.param.threads);
}

MiniRun
runSync(const SyncCase &c, const std::string &src)
{
    MachineConfig cfg = miniConfig();
    cfg.model = c.model;
    cfg.numProcs = c.procs;
    cfg.threadsPerProc = c.threads;
    Program p = assemble(runtimePrelude() + src);
    Program chosen = modelNeedsSwitchInstr(c.model)
                         ? applyGroupingPass(p)
                         : p;
    MiniRun mr;
    mr.prog = p;  // symbol addresses are identical in both versions
    mr.machine = std::make_unique<Machine>(chosen, cfg);
    mr.result = mr.machine->run();
    return mr;
}

} // namespace

class SyncPrimitives : public ::testing::TestWithParam<SyncCase>
{
};

TEST_P(SyncPrimitives, LockProvidesMutualExclusion)
{
    const SyncCase &c = GetParam();
    MiniRun mr = runSync(c, R"(
.const K, 30
.shared counter, 1
.shared lk, 2
.entry main
main:
    li s2, 0
loop:
    la a0, lk
    call __mts_lock
    lds t1, counter
    add t1, t1, 1
    sts t1, counter
    la a0, lk
    call __mts_unlock
    add s2, s2, 1
    blt s2, K, loop
    halt
)");
    EXPECT_EQ(mr.sharedInt("counter"), 30ll * c.procs * c.threads);
}

TEST_P(SyncPrimitives, BarrierOrderingProperty)
{
    const SyncCase &c = GetParam();
    MiniRun mr = runSync(c, R"(
.shared vals, 64
.shared bar, 2
.shared bad, 1
.entry main
main:
    mv  s0, a0
    mv  s1, a1
    ; phase 1: publish my value
    la  t0, vals
    add t0, t0, s0
    add t1, s0, 100
    sts t1, 0(t0)
    la  a0, bar
    mv  a1, s1
    call __mts_barrier
    ; phase 2: read right neighbour's value (wraps)
    add t2, s0, 1
    rem t2, t2, s1
    la  t0, vals
    add t0, t0, t2
    lds t3, 0(t0)
    add t4, t2, 100
    beq t3, t4, fine
    li  t5, 1
    la  t6, bad
    faa t7, 0(t6), t5
fine:
    halt
)");
    EXPECT_EQ(mr.sharedInt("bad"), 0);
}

TEST_P(SyncPrimitives, BarrierReusableAcrossEpisodes)
{
    const SyncCase &c = GetParam();
    MiniRun mr = runSync(c, R"(
.shared bar, 2
.shared rounds, 1
.entry main
main:
    mv  s0, a0
    mv  s1, a1
    li  s2, 0
loop:
    la  a0, bar
    mv  a1, s1
    call __mts_barrier
    add s2, s2, 1
    blt s2, 5, loop
    li  t0, 1
    la  t1, rounds
    faa t2, 0(t1), t0
    halt
)");
    EXPECT_EQ(mr.sharedInt("rounds"), c.procs * c.threads);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndShapes, SyncPrimitives,
    ::testing::Values(
        SyncCase{SwitchModel::SwitchOnLoad, 1, 4},
        SyncCase{SwitchModel::SwitchOnLoad, 4, 1},
        SyncCase{SwitchModel::SwitchOnLoad, 4, 4},
        SyncCase{SwitchModel::SwitchEveryCycle, 2, 3},
        SyncCase{SwitchModel::SwitchOnUse, 2, 3},
        SyncCase{SwitchModel::ExplicitSwitch, 1, 4},
        SyncCase{SwitchModel::ExplicitSwitch, 4, 4},
        SyncCase{SwitchModel::SwitchOnMiss, 2, 3},
        SyncCase{SwitchModel::SwitchOnUseMiss, 2, 3},
        SyncCase{SwitchModel::ConditionalSwitch, 1, 4},
        SyncCase{SwitchModel::ConditionalSwitch, 4, 4}),
    caseName);

TEST(SyncStress, ManyThreadsTicketLockIsFair)
{
    // 16 threads acquire once each and record the order; ticket locks
    // grant in ticket order, so every thread appears exactly once.
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 4;
    cfg.threadsPerProc = 4;
    MiniRun mr = runAsmWithRuntime(R"(
.shared lk, 2
.shared order, 16
.shared idx, 1
.entry main
main:
    mv  s0, a0
    la  a0, lk
    call __mts_lock
    li  t0, 1
    faa t1, idx(r0), t0
    la  t2, order
    add t2, t2, t1
    sts s0, 0(t2)
    la  a0, lk
    call __mts_unlock
    halt
)",
                                   cfg);
    std::vector<bool> seen(16, false);
    Addr base = mr.prog.sharedAddr("order");
    for (int i = 0; i < 16; ++i) {
        std::int64_t v = mr.machine->sharedMem().readInt(base + i);
        ASSERT_GE(v, 0);
        ASSERT_LT(v, 16);
        EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
        seen[static_cast<std::size_t>(v)] = true;
    }
}
