/**
 * Race-detection suite: the FastTrack-style vector-clock engine in
 * isolation, the tracer-layer dynamic detector end to end, the static
 * data-race checker on the same programs, and the cross-validation
 * harness that ties the two halves together.
 */
#include <gtest/gtest.h>

#include "analysis/checkers.hpp"
#include "apps/app.hpp"
#include "asm/assembler.hpp"
#include "opt/grouping_pass.hpp"
#include "sim/machine.hpp"
#include "verify/race_detector.hpp"
#include "verify/race_fuzz.hpp"
#include "verify/race_mutations.hpp"
#include "verify/program_gen.hpp"

using namespace mts;

namespace
{

constexpr Addr kA = kSharedBase + 0;
constexpr Addr kB = kSharedBase + 1;
constexpr Addr kFlag = kSharedBase + 2;

std::vector<Diag>
dataRaceDiags(const Program &prog)
{
    LintOptions opts;
    opts.races = true;
    LintReport report = runLint(prog, opts);
    std::vector<Diag> out;
    for (const Diag &d : report.diags())
        if (d.checker == "data-race")
            out.push_back(d);
    return out;
}

/** One dynamic run with the detector attached. */
struct DynOutcome
{
    std::vector<RaceRecord> races;
    std::string text;
    JsonValue json;
};

DynOutcome
runWithDetector(const Program &prog, int procs, int tpp)
{
    MachineConfig cfg;
    cfg.model = SwitchModel::SwitchOnLoad;
    cfg.numProcs = procs;
    cfg.threadsPerProc = tpp;
    cfg.network.roundTrip = 200;
    cfg.maxCycles = 400'000'000ull;
    RaceDetector det(prog,
                     static_cast<std::uint32_t>(cfg.totalThreads()));
    cfg.tracer = &det;
    Machine m(prog, cfg);
    m.setPrintHandler([](const std::string &) {});
    m.run();
    return {det.races(), det.renderText(), det.toJson("test")};
}

} // namespace

// ---------------------------------------------------------------------
// VectorClockEngine epoch logic

TEST(VectorClockEngine, UnorderedWritesRace)
{
    VectorClockEngine e(2);
    EXPECT_FALSE(e.write(0, kA, 10).race);
    auto c = e.write(1, kA, 20);
    EXPECT_TRUE(c.race);
    EXPECT_EQ(c.priorTid, 0u);
    EXPECT_EQ(c.priorPc, 10);
    EXPECT_TRUE(c.priorWrite);
}

TEST(VectorClockEngine, SameThreadSequenceNeverRaces)
{
    VectorClockEngine e(2);
    EXPECT_FALSE(e.write(0, kA, 1).race);
    EXPECT_FALSE(e.read(0, kA, 2).race);
    EXPECT_FALSE(e.rmw(0, kA, 3).race);
    EXPECT_FALSE(e.write(0, kA, 4).race);
}

TEST(VectorClockEngine, ReadSharePromotionAndWriteReadRace)
{
    VectorClockEngine e(3);
    // Two concurrent lock-free readers promote the word's exclusive
    // read epoch to a full read vector.
    EXPECT_FALSE(e.read(0, kA, 1).race);
    EXPECT_EQ(e.sharedReadWords(), 0u);
    EXPECT_FALSE(e.read(1, kA, 2).race);
    EXPECT_EQ(e.sharedReadWords(), 1u);
    // An unordered writer then conflicts with one of the shared reads.
    auto c = e.write(2, kA, 3);
    EXPECT_TRUE(c.race);
    EXPECT_FALSE(c.priorWrite);
    EXPECT_TRUE(c.priorPc == 1 || c.priorPc == 2);
}

TEST(VectorClockEngine, RepeatReleaseElision)
{
    VectorClockEngine e(2);
    VectorClockEngine::Clock before = e.clockOf(0);
    EXPECT_FALSE(e.write(0, kA, 1).race);
    EXPECT_EQ(e.clockOf(0), before + 1);  // a release opens an epoch
    // A repeat store publishes nothing new: elided, no epoch turn.
    EXPECT_FALSE(e.write(0, kA, 2).race);
    EXPECT_EQ(e.elidedWrites(), 1u);
    EXPECT_EQ(e.clockOf(0), before + 1);
}

TEST(VectorClockEngine, JoinBlocksElision)
{
    VectorClockEngine e(2);
    EXPECT_FALSE(e.write(1, kFlag, 1).race);  // stash to join below
    EXPECT_FALSE(e.write(0, kA, 2).race);
    // The acquire changes thread 0's clock without an epoch turn; the
    // next store must re-stash so consumers see the joined clock.
    e.acquire(0, kFlag);
    EXPECT_FALSE(e.write(0, kA, 3).race);
    EXPECT_EQ(e.elidedWrites(), 0u);
}

TEST(VectorClockEngine, ReleaseClockJoinOrdersGuardedData)
{
    VectorClockEngine e(2);
    // Store-then-flag publication: data, then flag; the consumer's
    // spin read joins the flag's release clock.
    EXPECT_FALSE(e.write(0, kA, 1).race);
    EXPECT_FALSE(e.write(0, kFlag, 2).race);
    e.acquire(1, kFlag);
    EXPECT_FALSE(e.read(1, kA, 3).race);
}

TEST(VectorClockEngine, StoreOpensFreshEpoch)
{
    // Regression for the post-release blind spot: a store issued
    // *after* a release must not inherit the release's epoch, or a
    // consumer that joined the release would mistake the later store
    // for ordered.
    VectorClockEngine e(2);
    EXPECT_FALSE(e.write(0, kFlag, 1).race);
    e.acquire(1, kFlag);
    EXPECT_FALSE(e.write(0, kA, 2).race);  // after the join happened
    auto c = e.read(1, kA, 3);
    EXPECT_TRUE(c.race);
    EXPECT_TRUE(c.priorWrite);
    EXPECT_EQ(c.priorPc, 2);
}

TEST(VectorClockEngine, FaaChainsAndNeverSelfRaces)
{
    VectorClockEngine e(2);
    // faa-vs-faa on one word is ordered by the atomic itself...
    EXPECT_FALSE(e.rmw(0, kB, 1).race);
    EXPECT_FALSE(e.rmw(1, kB, 2).race);
    // ...and carries the first thread's prior publication across.
    VectorClockEngine e2(2);
    EXPECT_FALSE(e2.write(0, kA, 1).race);
    EXPECT_FALSE(e2.rmw(0, kB, 2).race);
    EXPECT_FALSE(e2.rmw(1, kB, 3).race);
    EXPECT_FALSE(e2.read(1, kA, 4).race);
}

TEST(VectorClockEngine, SpinReadIsExemptWhileFlagIsWritten)
{
    VectorClockEngine e(2);
    // The spinner polls while the flag is concurrently written — that
    // is the idiom, so neither side reports a race.
    e.acquire(1, kFlag);
    EXPECT_FALSE(e.write(0, kFlag, 1).race);
    e.acquire(1, kFlag);
    EXPECT_FALSE(e.write(0, kFlag, 2).race);
}

// ---------------------------------------------------------------------
// Injected race through both halves (golden diagnostics)

namespace
{

constexpr const char *kRacySource = R"(
.shared gp_x, 1
.entry main
main:
    la t0, gp_x
    sts a0, 0(t0)
    lds t1, 0(t0)
    halt
)";

} // namespace

TEST(RaceDetection, InjectedRaceCaughtDynamically)
{
    Program prog = assemble(kRacySource);
    DynOutcome out = runWithDetector(prog, 2, 1);
    ASSERT_FALSE(out.races.empty());
    const RaceRecord &r = out.races.front();
    EXPECT_EQ(r.addr, kSharedBase);
    EXPECT_TRUE(r.write1);

    EXPECT_NE(out.text.find("race: gp_x+0"), std::string::npos)
        << out.text;
    EXPECT_NE(out.text.find("unordered with a prior"),
              std::string::npos);

    EXPECT_EQ(out.json["schema"].asString(), "mts.race/1");
    EXPECT_FALSE(out.json["clean"].asBool());
}

TEST(RaceDetection, RaceCaughtWhenThreadsTimeMultiplexOneContext)
{
    // Same racy pair, but both software threads share ONE hardware
    // context under the virtual-threading scheduler: the interleaving
    // now comes from block swaps and timer preemptions rather than
    // parallel contexts. The detector keys on software-thread ids, so
    // serialising the threads through one context must not make the
    // unordered accesses look ordered.
    Program prog = assemble(kRacySource);
    MachineConfig cfg;
    cfg.model = SwitchModel::SwitchOnLoad;
    cfg.numProcs = 1;
    cfg.threadsPerProc = 1;
    cfg.swThreadsPerProc = 2;
    cfg.quantumCycles = 50;
    cfg.network.roundTrip = 200;
    cfg.maxCycles = 400'000'000ull;
    RaceDetector det(prog,
                     static_cast<std::uint32_t>(cfg.totalThreads()));
    cfg.tracer = &det;
    Machine m(prog, cfg);
    m.setPrintHandler([](const std::string &) {});
    m.run();

    ASSERT_FALSE(det.races().empty());
    const RaceRecord &r = det.races().front();
    EXPECT_EQ(r.addr, kSharedBase);
    EXPECT_NE(det.renderText().find("race: gp_x+0"), std::string::npos)
        << det.renderText();
}

TEST(RaceDetection, InjectedRaceFlaggedStatically)
{
    Program prog = assemble(kRacySource);
    std::vector<Diag> diags = dataRaceDiags(prog);
    ASSERT_FALSE(diags.empty());
    bool named = false;
    for (const Diag &d : diags)
        if (d.message.find("gp_x") != std::string::npos)
            named = true;
    EXPECT_TRUE(named) << diags.front().message;
    // Both sides of the pair are reported.
    EXPECT_GE(diags.front().pc2, 0);
}

TEST(RaceDetection, CleanProgramIsQuietInBothHalves)
{
    GenOptions gen;
    gen.seed = 1;
    gen.threads = 4;
    GeneratedProgram gp = generateProgram(gen);
    Program prog = assemble(runtimePrelude() + gp.source);
    EXPECT_TRUE(dataRaceDiags(prog).empty());
    EXPECT_TRUE(runWithDetector(prog, 4, 1).races.empty());
    DynOutcome out = runWithDetector(prog, 2, 2);
    EXPECT_TRUE(out.races.empty());
    EXPECT_EQ(out.json["schema"].asString(), "mts.race/1");
    EXPECT_TRUE(out.json["clean"].asBool());
}

// ---------------------------------------------------------------------
// Seeded mutations and the cross-validation harness

TEST(RaceMutations, EverySeededMutantIsCaughtDynamically)
{
    GenOptions gen;
    gen.seed = 1;
    gen.threads = 4;
    GeneratedProgram gp = generateProgram(gen);
    std::vector<RaceMutation> muts = enumerateRaceMutations(gp.source, 1);
    ASSERT_GE(muts.size(), 2u);
    for (const RaceMutation &m : muts) {
        SCOPED_TRACE(std::string(mutationKindName(m.kind)));
        std::string src = applyRaceMutation(gp.source, m);
        EXPECT_NE(src, gp.source);
        Program prog = assemble(runtimePrelude() + src);
        std::size_t caught = runWithDetector(prog, 4, 1).races.size() +
                             runWithDetector(prog, 2, 2).races.size();
        EXPECT_GT(caught, 0u);
    }
}

TEST(RaceFuzz, CampaignCrossValidates)
{
    RaceFuzzOptions opts;
    opts.seeds = 3;
    opts.firstSeed = 1;
    RaceFuzzReport rep = runRaceFuzzCampaign(opts);
    EXPECT_TRUE(rep.ok()) << rep.failures.size() << " failure(s), first: "
                          << (rep.failures.empty()
                                  ? std::string()
                                  : rep.failures.front().detail);
    EXPECT_EQ(rep.seedsRun, 3);
    EXPECT_GT(rep.mutantsRun, 0);
    EXPECT_GT(rep.dynamicRaces, 0);

    JsonValue doc = makeRaceFuzzJson(rep, opts);
    EXPECT_EQ(doc["schema"].asString(), "mts.racefuzz/1");
    EXPECT_TRUE(doc["ok"].asBool());
}

// ---------------------------------------------------------------------
// The benchmark apps and the runtime are race-clean under both halves

TEST(RaceApps, AllAppsStaticallyRaceCleanRawAndGrouped)
{
    for (const App *app : allApps()) {
        SCOPED_TRACE(app->name());
        Program p = assemble(app->source(), app->options(1.0));
        LintOptions opts;
        opts.races = true;
        EXPECT_EQ(runLint(p, opts).count(Severity::Error), 0u);

        Program g = applyGroupingPass(p);
        opts.grouped = true;
        EXPECT_EQ(runLint(g, opts).count(Severity::Error), 0u);
    }
}

TEST(RaceApps, AllAppsDynamicallyRaceClean)
{
    for (const App *app : allApps()) {
        for (int tpp : {1, 2}) {
            SCOPED_TRACE(app->name() + " tpp=" + std::to_string(tpp));
            Program prog = assemble(app->source(), app->options(0.08));
            MachineConfig cfg;
            cfg.model = SwitchModel::SwitchOnLoad;
            cfg.numProcs = 4;
            cfg.threadsPerProc = tpp;
            cfg.network.roundTrip = 200;
            cfg.maxCycles = 400'000'000ull;
            RaceDetector det(
                prog, static_cast<std::uint32_t>(cfg.totalThreads()));
            cfg.tracer = &det;
            Machine m(prog, cfg);
            m.setPrintHandler([](const std::string &) {});
            app->init(m);
            m.run();
            EXPECT_TRUE(det.clean()) << det.renderText();
        }
    }
}

TEST(RaceApps, RuntimePreludeRaceCleanUnderContention)
{
    // Lock-guarded increments followed by a barrier and an unguarded
    // read of the total: exercises every runtime sync primitive's
    // happens-before edges at once.
    std::string src = runtimePrelude() + R"(
.shared gp_cnt, 1
.shared gp_lk, 2
.shared gp_bar, 2
.entry main
main:
    mv s7, a0
    la a0, gp_lk
    call __mts_lock
    la t0, gp_cnt
    lds t1, 0(t0)
    add t1, t1, 1
    sts t1, 0(t0)
    la a0, gp_lk
    call __mts_unlock
    la a0, gp_bar
    li a1, 4
    call __mts_barrier
    la t0, gp_cnt
    lds t1, 0(t0)
    mv v0, t1
    halt
)";
    Program prog = assemble(src);
    EXPECT_TRUE(dataRaceDiags(prog).empty());
    EXPECT_TRUE(runWithDetector(prog, 4, 1).races.empty())
        << runWithDetector(prog, 4, 1).text;
    EXPECT_TRUE(runWithDetector(prog, 2, 2).races.empty())
        << runWithDetector(prog, 2, 2).text;
}
