/**
 * @file
 * Golden-file tests of the two trace renderers behind `mtsim --trace`
 * and `mtsim --timeline`. The simulator is deterministic, so the exact
 * byte stream each tracer produces for a fixed program and machine
 * configuration is a stable regression surface: any change in issue
 * timing, switch decisions or formatting shows up as a diff here.
 *
 * Expected outputs live in tests/golden/; regenerate intentionally
 * changed ones with `mtsim_verify_tests --update-golden`.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "golden.hpp"
#include "test_helpers.hpp"
#include "trace/text_tracer.hpp"
#include "trace/timeline.hpp"
#include "util/strings.hpp"

using namespace mts;

namespace
{

/**
 * Fixed workload: each thread hammers its own shared slot a few times
 * (misses + switches under switch-on-load) and publishes a checksum.
 */
const char *const kTracedSource = ".shared data, 16\n"
                                  ".shared sink, 4\n"
                                  "main:\n"
                                  "    la t0, data\n"
                                  "    add t0, t0, a0\n"
                                  "    li s0, 0\n"
                                  "    li s1, 3\n"
                                  "Lloop:\n"
                                  "    sts a0, 0(t0)\n"
                                  "    lds t1, 0(t0)\n"
                                  "    add s0, s0, t1\n"
                                  "    sub s1, s1, 1\n"
                                  "    bnez s1, Lloop\n"
                                  "    la t2, sink\n"
                                  "    add t2, t2, a0\n"
                                  "    sts s0, 0(t2)\n"
                                  "    mv v0, s0\n"
                                  "    halt\n";

MachineConfig
tracedConfig()
{
    MachineConfig cfg = test::miniConfig();
    cfg.numProcs = 2;
    cfg.threadsPerProc = 2;
    return cfg;
}

} // namespace

TEST(TraceGolden, TextTraceMatchesGolden)
{
    std::ostringstream os;
    TextTracer tracer(os, 0, 1500, 400);
    MachineConfig cfg = tracedConfig();
    cfg.tracer = &tracer;
    test::runAsm(kTracedSource, cfg);
    EXPECT_GT(tracer.eventsEmitted(), 0u);
    test::compareGolden("trace_text.txt", os.str());
}

TEST(TraceGolden, TimelineMatchesGolden)
{
    TimelineTracer tracer(50);
    MachineConfig cfg = tracedConfig();
    cfg.tracer = &tracer;
    test::runAsm(kTracedSource, cfg);

    // Render plus the summary numbers the CLI derives from the tracer,
    // pinned to stable text form.
    std::string out = tracer.render(110);
    out += format("switches: %llu\n",
                  static_cast<unsigned long long>(tracer.switches()));
    out += format("occupancy: %.4f\n", tracer.occupancy());
    test::compareGolden("timeline.txt", out);
}

namespace
{

/**
 * Virtual-threading workload: three software threads on one hardware
 * context, each spinning locally long enough to be timer-preempted a
 * few times before publishing through a remote store/load pair (a
 * block swap). Exercises every scheduler event kind.
 */
const char *const kVtSource = ".shared data, 4\n"
                              ".shared sink, 4\n"
                              "main:\n"
                              "    li s0, 0\n"
                              "    li s1, 40\n"
                              "Lspin:\n"
                              "    add s0, s0, 1\n"
                              "    sub s1, s1, 1\n"
                              "    bnez s1, Lspin\n"
                              "    la t0, data\n"
                              "    add t0, t0, a0\n"
                              "    sts s0, 0(t0)\n"
                              "    lds t1, 0(t0)\n"
                              "    la t2, sink\n"
                              "    add t2, t2, a0\n"
                              "    sts t1, 0(t2)\n"
                              "    mv v0, t1\n"
                              "    halt\n";

MachineConfig
vtTracedConfig()
{
    MachineConfig cfg = test::miniConfig();
    cfg.numProcs = 1;
    cfg.threadsPerProc = 1;
    cfg.swThreadsPerProc = 3;
    cfg.quantumCycles = 30;
    cfg.ctxSwitchCost = 2;
    return cfg;
}

} // namespace

TEST(TraceGolden, VThreadTextTraceMatchesGolden)
{
    std::ostringstream os;
    TextTracer tracer(os, 0, 2500, 500);
    MachineConfig cfg = vtTracedConfig();
    cfg.tracer = &tracer;
    test::runAsm(kVtSource, cfg);

    // Companion sanity check so a regeneration cannot bless a stream
    // missing a scheduler event kind.
    const std::string out = os.str();
    for (const char *kind :
         {"preempt", "save", "restore", "requeue", "install"})
        EXPECT_NE(out.find(std::string("sched ") + kind),
                  std::string::npos)
            << "no " << kind << " event in trace";
    test::compareGolden("trace_vthreads.txt", out);
}

TEST(TraceGolden, VThreadTimelineMatchesGolden)
{
    TimelineTracer tracer(50);
    MachineConfig cfg = vtTracedConfig();
    cfg.tracer = &tracer;
    test::runAsm(kVtSource, cfg);

    std::string out = tracer.render(110);
    out += format("switches: %llu\n",
                  static_cast<unsigned long long>(tracer.switches()));
    out += format("sched-events: %llu\n",
                  static_cast<unsigned long long>(tracer.schedEvents()));
    out += format("occupancy: %.4f\n", tracer.occupancy());
    EXPECT_GT(tracer.schedEvents(), 0u);
    test::compareGolden("timeline_vthreads.txt", out);
}

TEST(TraceGolden, TextTracerHonoursWindowAndCap)
{
    // Companion sanity check so a golden regeneration cannot silently
    // bless a broken window/cap: a [200, 400) window must emit a strict
    // subset, and a cap of 5 exactly 5.
    std::ostringstream whole, windowed, capped;
    {
        TextTracer tracer(whole);
        MachineConfig cfg = tracedConfig();
        cfg.tracer = &tracer;
        test::runAsm(kTracedSource, cfg);
    }
    {
        TextTracer tracer(windowed, 200, 400);
        MachineConfig cfg = tracedConfig();
        cfg.tracer = &tracer;
        test::runAsm(kTracedSource, cfg);
    }
    {
        TextTracer tracer(capped, 0, ~Cycle(0), 5);
        MachineConfig cfg = tracedConfig();
        cfg.tracer = &tracer;
        test::runAsm(kTracedSource, cfg);
        EXPECT_EQ(tracer.eventsEmitted(), 5u);
    }
    EXPECT_FALSE(windowed.str().empty());
    EXPECT_LT(windowed.str().size(), whole.str().size());
    EXPECT_EQ(split(capped.str(), '\n').size(), 6u);  // 5 lines + ""
}
