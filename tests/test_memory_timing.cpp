/**
 * Cycle-exact timing tests of the shared-memory system: constant
 * round-trip latency, ordered delivery, grouped waits, fetch-and-add
 * combining semantics, and traffic accounting.
 */
#include <gtest/gtest.h>

#include "test_helpers.hpp"

using namespace mts;
using namespace mts::test;

TEST(MemoryTiming, SingleLoadRoundTripIsExactly200)
{
    // lds@0 (switch, resume at 200), add@200, sts@201, halt@202 -> 203.
    MiniRun mr = runAsm(R"(
.shared x, 1
.shared y, 1
main:
    lds r1, x
    add r2, r1, 1
    sts r2, y
    halt
)");
    EXPECT_EQ(mr.result.cycles, 203u);
    EXPECT_EQ(mr.sharedInt("y"), 1);
}

TEST(MemoryTiming, CustomLatencyRespected)
{
    MachineConfig cfg = miniConfig();
    cfg.network.roundTrip = 400;
    MiniRun mr = runAsm(R"(
.shared x, 1
main:
    lds r1, x
    add r2, r1, 1
    halt
)",
                        cfg);
    EXPECT_EQ(mr.result.cycles, 402u);
}

TEST(MemoryTiming, ZeroLatencyIdealMachine)
{
    MachineConfig cfg = miniConfig();
    cfg.model = SwitchModel::Ideal;
    cfg.network.roundTrip = 0;
    MiniRun mr = runAsm(R"(
.shared x, 1
.shared y, 1
main:
    lds r1, x
    add r2, r1, 1
    sts r2, y
    halt
)",
                        cfg);
    EXPECT_EQ(mr.result.cycles, 4u);
    EXPECT_EQ(mr.sharedInt("y"), 1);
}

TEST(MemoryTiming, GroupedLoadsWaitOnceUnderExplicitSwitch)
{
    // lds@0, lds@1, cswitch@2: wake at max(1+200, 3) = 201;
    // add@201, sts@202, halt@203 -> 204 cycles. Two loads, one wait.
    MachineConfig cfg = miniConfig();
    cfg.model = SwitchModel::ExplicitSwitch;
    MiniRun mr = runAsm(R"(
.shared a, 1
.shared b, 1
.shared y, 1
main:
    lds r1, a
    lds r2, b
    cswitch
    add r3, r1, r2
    sts r3, y
    halt
)",
                        cfg);
    EXPECT_EQ(mr.result.cycles, 204u);
    EXPECT_EQ(mr.result.cpu.switchesTaken, 1u);
}

TEST(MemoryTiming, UngroupedLoadsWaitTwiceUnderSwitchOnLoad)
{
    // lds@0 -> resume 200; lds@200 -> resume 400; add@400, halt@401
    // -> completion at 402.
    MiniRun mr = runAsm(R"(
.shared a, 1
.shared b, 1
main:
    lds r1, a
    lds r2, b
    add r3, r1, r2
    halt
)");
    EXPECT_EQ(mr.result.cycles, 402u);
    EXPECT_EQ(mr.result.cpu.switchesTaken, 2u);
}

TEST(MemoryTiming, OwnStoreVisibleToLaterLoad)
{
    MiniRun mr = runAsm(R"(
.shared x, 1
.shared y, 1
main:
    li  r1, 77
    sts r1, x
    lds r2, x
    sts r2, y
    halt
)");
    EXPECT_EQ(mr.sharedInt("y"), 77);
}

TEST(MemoryTiming, StoresDoNotBlock)
{
    MiniRun mr = runAsm(R"(
.shared x, 4
main:
    li  r1, 1
    sts r1, x
    sts r1, x+1
    sts r1, x+2
    halt
)");
    // li@0, three stores @1..3, halt@4 -> 5 cycles; no switches.
    EXPECT_EQ(mr.result.cycles, 5u);
    EXPECT_EQ(mr.result.cpu.switchesTaken, 0u);
}

TEST(MemoryTiming, FetchAddReturnsOldValue)
{
    MiniRun mr = runAsm(R"(
.shared c, 1
.shared first, 1
.shared second, 1
main:
    li  r1, 5
    faa r2, c(r0), r1
    sts r2, first
    li  r1, 3
    faa r2, c(r0), r1
    sts r2, second
    halt
)");
    EXPECT_EQ(mr.sharedInt("first"), 0);
    EXPECT_EQ(mr.sharedInt("second"), 5);
    EXPECT_EQ(mr.sharedInt("c"), 8);
}

TEST(MemoryTiming, FetchAddIsAtomicAcrossThreads)
{
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 4;
    cfg.threadsPerProc = 4;
    MiniRun mr = runAsm(R"(
.shared c, 1
main:
    li  r2, 0
    li  r3, 1
loop:
    faa r4, c(r0), r3
    add r2, r2, 1
    blt r2, 25, loop
    halt
)",
                        cfg);
    EXPECT_EQ(mr.sharedInt("c"), 16 * 25);
}

TEST(MemoryTiming, FetchAddAtomicOnIdealNetworkToo)
{
    MachineConfig cfg = miniConfig();
    cfg.model = SwitchModel::Ideal;
    cfg.network.roundTrip = 0;
    cfg.numProcs = 8;
    cfg.threadsPerProc = 2;
    MiniRun mr = runAsm(R"(
.shared c, 1
main:
    li  r2, 0
    li  r3, 1
loop:
    faa r4, c(r0), r3
    add r2, r2, 1
    blt r2, 40, loop
    halt
)",
                        cfg);
    EXPECT_EQ(mr.sharedInt("c"), 16 * 40);
}

TEST(MemoryTiming, LoadPairFetchesAdjacentWords)
{
    MiniRun mr = runAsm(R"(
.shared pair, 2
.shared y, 1
main:
    li  r1, 30
    sts r1, pair
    li  r1, 12
    sts r1, pair+1
    ldsd r4, pair(r0)
    add r6, r4, r5
    sts r6, y
    halt
)");
    EXPECT_EQ(mr.sharedInt("y"), 42);
}

TEST(MemoryTiming, CrossProcessorProducerConsumer)
{
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 2;
    cfg.threadsPerProc = 1;
    MiniRun mr = runAsm(R"(
.shared flag, 1
.shared data, 1
.shared out, 1
main:
    bne a0, r0, consumer
    li  r1, 123
    sts r1, data
    li  r1, 1
    sts r1, flag          ; ordered after data (same source)
    halt
consumer:
    lds.spin r2, flag
    beq r2, r0, consumer
    lds r3, data
    sts r3, out
    halt
)",
                        cfg);
    EXPECT_EQ(mr.sharedInt("out"), 123);
}

TEST(MemoryTiming, TrafficAccounting)
{
    MiniRun mr = runAsm(R"(
.shared x, 2
main:
    lds  r1, x
    sts  r1, x+1
    ldsd r2, x(r0)
    li   r4, 1
    faa  r5, x(r0), r4
    halt
)");
    const NetworkStats &net = mr.result.net;
    EXPECT_EQ(net.loadMsgs, 2u);  // lds + ldsd
    EXPECT_EQ(net.storeMsgs, 1u);
    EXPECT_EQ(net.faaMsgs, 1u);
    EXPECT_EQ(net.messages, 4u);
    // load: 64 fwd + 96 ret; pair: 64 + 160; store: 128 + 32;
    // faa: 128 + 96.
    EXPECT_EQ(net.forwardBits, 64u + 64u + 128u + 128u);
    EXPECT_EQ(net.returnBits, 96u + 160u + 32u + 96u);
}

TEST(MemoryTiming, SpinLoadsExcludedFromBandwidth)
{
    MiniRun mr = runAsm(R"(
.shared x, 1
main:
    lds.spin r1, x
    lds.spin r1, x
    halt
)");
    EXPECT_EQ(mr.result.net.spinMsgs, 2u);
    EXPECT_EQ(mr.result.net.forwardBits, 0u);
    EXPECT_EQ(mr.result.net.returnBits, 0u);
    EXPECT_EQ(mr.result.cpu.spinLoads, 2u);
    EXPECT_EQ(mr.result.cpu.sharedLoads, 0u);
}

TEST(MemoryTiming, OrderedDeliveryRoundRobinWake)
{
    // Two threads on one processor alternate; each load's wake time is
    // its own issue+200, and round-robin order is respected (thread 0's
    // second load resumes before thread 1's second load).
    MachineConfig cfg = miniConfig();
    cfg.threadsPerProc = 2;
    MiniRun mr = runAsm(R"(
.shared x, 1
.shared order, 4
.shared idx, 1
main:
    lds r1, x
    li  r2, 1
    faa r3, idx(r0), r2
    la  r9, order
    add r9, r9, r3
    sts a0, 0(r9)
    lds r1, x
    faa r3, idx(r0), r2
    la  r9, order
    add r9, r9, r3
    sts a0, 0(r9)
    halt
)",
                        cfg);
    Addr base = mr.prog.sharedAddr("order");
    SharedMemory &mem = mr.machine->sharedMem();
    EXPECT_EQ(mem.readInt(base + 0), 0);
    EXPECT_EQ(mem.readInt(base + 1), 1);
    EXPECT_EQ(mem.readInt(base + 2), 0);
    EXPECT_EQ(mem.readInt(base + 3), 1);
}

TEST(MemoryTiming, BitsPerCycleMetric)
{
    NetworkStats net;
    net.forwardBits = 1000;
    net.returnBits = 600;
    EXPECT_DOUBLE_EQ(net.bitsPerCycle(100, 4), 4.0);
    EXPECT_DOUBLE_EQ(net.bitsPerCycle(0, 4), 0.0);
}
