/**
 * @file
 * Golden-file comparison helper. Expected outputs live in tests/golden/
 * (path baked in via the MTS_TEST_DATA_DIR compile definition, so the
 * tests run from any working directory). Running the test binary with
 * `--update-golden` — or MTS_UPDATE_GOLDEN=1 — rewrites them.
 */
#ifndef MTS_TESTS_GOLDEN_HPP
#define MTS_TESTS_GOLDEN_HPP

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace mts::test
{

/** Set by gtest_main.cpp from --update-golden / MTS_UPDATE_GOLDEN. */
extern bool gUpdateGolden;

inline std::string
goldenPath(const std::string &name)
{
    return std::string(MTS_TEST_DATA_DIR) + "/golden/" + name;
}

/**
 * Compare @p actual against golden/@p name (or rewrite it in update
 * mode). Use only for output that is deterministic by construction.
 */
inline void
compareGolden(const std::string &name, const std::string &actual)
{
    const std::string path = goldenPath(name);
    if (gUpdateGolden) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << "; regenerate with: mtsim_verify_tests --update-golden";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "output changed; if intentional, regenerate with: "
           "mtsim_verify_tests --update-golden";
}

} // namespace mts::test

#endif // MTS_TESTS_GOLDEN_HPP
