/**
 * Tests of the tracing subsystem: event delivery, filtering, and the
 * occupancy timeline.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "test_helpers.hpp"
#include "trace/text_tracer.hpp"
#include "trace/timeline.hpp"

using namespace mts;
using namespace mts::test;

namespace
{

/** Collects raw event counts. */
struct CountingTracer : Tracer
{
    std::uint64_t instructions = 0;
    std::uint64_t switches = 0;
    std::uint64_t accesses = 0;
    std::vector<SwitchReason> reasons;

    void
    onInstruction(Cycle, std::uint16_t, std::uint32_t, std::int32_t,
                  const Instruction &) override
    {
        ++instructions;
    }

    void
    onSwitch(Cycle, std::uint16_t, std::uint32_t, std::uint32_t, Cycle,
             SwitchReason reason) override
    {
        ++switches;
        reasons.push_back(reason);
    }

    void
    onSharedAccess(Cycle, std::uint16_t, std::uint32_t,
                   const MemOp &) override
    {
        ++accesses;
    }
};

const char *const kKernel = R"(
.shared x, 4
.shared y, 1
main:
    lds r1, x
    lds r2, x+1
    add r3, r1, r2
    sts r3, y
    halt
)";

} // namespace

TEST(Trace, EventCountsMatchStatistics)
{
    CountingTracer tracer;
    MachineConfig cfg = miniConfig();
    cfg.tracer = &tracer;
    Program prog = assemble(kKernel);
    Machine m(prog, cfg);
    RunResult r = m.run();

    EXPECT_EQ(tracer.instructions, r.cpu.instructions);
    EXPECT_EQ(tracer.switches, r.cpu.switchesTaken);
    EXPECT_EQ(tracer.accesses, 3u);  // two loads + one store
    ASSERT_EQ(tracer.reasons.size(), 2u);
    EXPECT_EQ(tracer.reasons[0], SwitchReason::Load);
}

TEST(Trace, ExplicitSwitchReasonReported)
{
    CountingTracer tracer;
    MachineConfig cfg = miniConfig();
    cfg.model = SwitchModel::ExplicitSwitch;
    cfg.tracer = &tracer;
    Program prog = applyGroupingPass(assemble(kKernel));
    Machine m(prog, cfg);
    m.run();
    ASSERT_FALSE(tracer.reasons.empty());
    EXPECT_EQ(tracer.reasons[0], SwitchReason::Explicit);
}

TEST(Trace, TextTracerFormatsAndCaps)
{
    std::ostringstream os;
    TextTracer tracer(os, 0, ~Cycle(0), 5);
    MachineConfig cfg = miniConfig();
    cfg.tracer = &tracer;
    Machine m(assemble(kKernel), cfg);
    m.run();
    EXPECT_EQ(tracer.eventsEmitted(), 5u);  // capped
    std::string text = os.str();
    EXPECT_NE(text.find("lds r1"), std::string::npos);
    EXPECT_NE(text.find("p00"), std::string::npos);
}

TEST(Trace, TextTracerCycleWindow)
{
    std::ostringstream os;
    TextTracer tracer(os, 1000, 2000);  // nothing happens in this window
    MachineConfig cfg = miniConfig();
    cfg.tracer = &tracer;
    Machine m(assemble("main:\n    li r1, 1\n    halt\n"), cfg);
    m.run();
    EXPECT_EQ(tracer.eventsEmitted(), 0u);
}

TEST(Trace, SwitchReasonNames)
{
    EXPECT_STREQ(switchReasonName(SwitchReason::Load), "load");
    EXPECT_STREQ(switchReasonName(SwitchReason::Explicit), "cswitch");
    EXPECT_STREQ(switchReasonName(SwitchReason::SliceLimit),
                 "slice-limit");
    EXPECT_STREQ(switchReasonName(SwitchReason::Halt), "halt");
}

TEST(Timeline, OccupancyRisesWithThreads)
{
    auto occupancy = [](int threads) {
        TimelineTracer timeline(50);
        MachineConfig cfg = miniConfig();
        cfg.threadsPerProc = threads;
        cfg.tracer = &timeline;
        Program prog = assemble(R"(
.shared x, 64
main:
    li  r2, 0
loop:
    la  r3, x
    add r3, r3, r2
    lds r1, 0(r3)
    add r2, r2, 1
    blt r2, 40, loop
    halt
)");
        Machine m(prog, cfg);
        m.run();
        return timeline.occupancy();
    };
    double one = occupancy(1);
    double eight = occupancy(8);
    EXPECT_LT(one, 0.5);   // mostly idle: one thread vs 200-cycle trips
    EXPECT_GT(eight, one * 2);
}

TEST(Timeline, RenderShowsRowsAndLegend)
{
    TimelineTracer timeline(10);
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 2;
    cfg.tracer = &timeline;
    Machine m(assemble("main:\n    li r1, 1\n    halt\n"), cfg);
    m.run();
    std::string art = timeline.render();
    EXPECT_NE(art.find("p00 |"), std::string::npos);
    EXPECT_NE(art.find("p01 |"), std::string::npos);
    EXPECT_NE(art.find("one column = 10 cycles"), std::string::npos);
}
