/**
 * @file
 * Custom gtest entry point for suites with golden-file tests: accepts
 * `--update-golden` (or the environment variable MTS_UPDATE_GOLDEN=1)
 * to rewrite the expected outputs in tests/golden/ instead of
 * comparing against them. See tests/README.md.
 */
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

namespace mts::test
{
bool gUpdateGolden = false;
}

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--update-golden"))
            mts::test::gUpdateGolden = true;
    if (const char *env = std::getenv("MTS_UPDATE_GOLDEN"))
        if (*env && std::strcmp(env, "0") != 0)
            mts::test::gUpdateGolden = true;
    return RUN_ALL_TESTS();
}
