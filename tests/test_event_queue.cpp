#include <gtest/gtest.h>

#include "mem/event_queue.hpp"

using namespace mts;

TEST(EventQueue, EmptyQueueSentinels)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextMemTime(), kNever);
    EXPECT_EQ(q.nextProcTime(), kNever);
    EXPECT_FALSE(q.memIsNext());
}

TEST(EventQueue, TimeOrdering)
{
    EventQueue q;
    MemOp op;
    q.pushMem(30, op);
    q.pushMem(10, op);
    q.pushMem(20, op);
    EXPECT_EQ(q.popMem().time, 10u);
    EXPECT_EQ(q.popMem().time, 20u);
    EXPECT_EQ(q.popMem().time, 30u);
}

TEST(EventQueue, MemoryWinsTies)
{
    EventQueue q;
    q.pushProc(10, 0);
    MemOp op;
    q.pushMem(10, op);
    EXPECT_TRUE(q.memIsNext());
    q.popMem();
    EXPECT_FALSE(q.memIsNext());
    EXPECT_EQ(q.popProc().time, 10u);
}

TEST(EventQueue, SeqBreaksSameTimeDeterministically)
{
    EventQueue q;
    MemOp a, b;
    a.addr = 1;
    b.addr = 2;
    q.pushMem(5, a);
    q.pushMem(5, b);
    EXPECT_EQ(q.popMem().op.addr, 1u);  // FIFO within a timestamp
    EXPECT_EQ(q.popMem().op.addr, 2u);
}

TEST(EventQueue, ProcEventsCarryProcessor)
{
    EventQueue q;
    q.pushProc(7, 3);
    q.pushProc(5, 1);
    EXPECT_EQ(q.popProc().proc, 1);
    EXPECT_EQ(q.popProc().proc, 3);
    EXPECT_TRUE(q.empty());
}
