#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/event_queue.hpp"
#include "util/rng.hpp"

using namespace mts;

TEST(EventQueue, EmptyQueueSentinels)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextMemTime(), kNever);
    EXPECT_EQ(q.nextProcTime(), kNever);
    EXPECT_FALSE(q.memIsNext());
}

TEST(EventQueue, TimeOrdering)
{
    EventQueue q;
    MemOp op;
    q.pushMem(30, op);
    q.pushMem(10, op);
    q.pushMem(20, op);
    EXPECT_EQ(q.popMem().time, 10u);
    EXPECT_EQ(q.popMem().time, 20u);
    EXPECT_EQ(q.popMem().time, 30u);
}

TEST(EventQueue, MemoryWinsTies)
{
    EventQueue q;
    q.pushProc(10, 0);
    MemOp op;
    q.pushMem(10, op);
    EXPECT_TRUE(q.memIsNext());
    q.popMem();
    EXPECT_FALSE(q.memIsNext());
    EXPECT_EQ(q.popProc().time, 10u);
}

TEST(EventQueue, SeqBreaksSameTimeDeterministically)
{
    EventQueue q;
    MemOp a, b;
    a.addr = 1;
    b.addr = 2;
    q.pushMem(5, a);
    q.pushMem(5, b);
    EXPECT_EQ(q.popMem().op.addr, 1u);  // FIFO within a timestamp
    EXPECT_EQ(q.popMem().op.addr, 2u);
}

TEST(EventQueue, ProcEventsCarryProcessor)
{
    EventQueue q;
    q.pushProc(7, 3);
    q.pushProc(5, 1);
    EXPECT_EQ(q.popProc().proc, 1);
    EXPECT_EQ(q.popProc().proc, 3);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeekThenDropMatchesPop)
{
    EventQueue q;
    MemOp a, b;
    a.addr = 11;
    b.addr = 22;
    q.pushMem(4, a);
    q.pushMem(2, b);
    EXPECT_EQ(q.peekMem().op.addr, 22u);
    q.dropMem();
    EXPECT_EQ(q.peekMem().op.addr, 11u);
    q.dropMem();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomizedOrderMatchesReferenceSort)
{
    // The lane queue must behave exactly like a (time, seq)-sorted list
    // even for adversarial per-source orderings across many sources.
    Rng rng(0xfeedu);
    EventQueue q;
    struct Ref
    {
        Cycle time;
        std::uint64_t seq;
    };
    std::vector<Ref> expected;
    std::uint64_t seq = 0;
    // The proc stream allows one in-flight resume per processor, so
    // track occupancy and only push into free slots.
    bool inFlight[5] = {};
    for (int i = 0; i < 2000; ++i) {
        MemOp op;
        op.proc = static_cast<std::uint16_t>(rng.next() % 7);
        Cycle t = rng.next() % 97;
        op.addr = static_cast<Addr>(seq);  // tag to identify the event
        q.pushMem(t, op);
        expected.push_back({t, seq++});
        // Interleave proc events so both streams stay exercised.
        if (i % 3 == 0) {
            Cycle pt = rng.next() % 97;
            auto proc = static_cast<std::uint16_t>(rng.next() % 5);
            if (!inFlight[proc]) {
                q.pushProc(pt, proc);
                inFlight[proc] = true;
            }
        }
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Ref &a, const Ref &b) {
                         return a.time != b.time ? a.time < b.time
                                                 : a.seq < b.seq;
                     });
    for (const Ref &r : expected) {
        ASSERT_FALSE(q.empty());
        // Drain any proc events due strictly before the next mem event.
        while (!q.memIsNext())
            inFlight[q.popProc().proc] = false;
        MemEvent e = q.popMem();
        EXPECT_EQ(e.time, r.time);
        EXPECT_EQ(e.op.addr, static_cast<Addr>(r.seq));
    }
    while (!q.empty())
        q.popProc();
}
