/**
 * @file
 * Tests for the pluggable interconnect layer (mem/network_model.hpp),
 * the sparse directory (cache/directory.hpp) and MachineConfig
 * validation:
 *
 *  - ConstantLatencyNetwork must reproduce the historical Machine
 *    timing exactly: unit equivalence against the hand-computed
 *    pipe/channel/memory-port math, plus pinned end-to-end cycle counts
 *    and digests captured from the pre-refactor seed simulator.
 *  - MeshNetwork: XY-routing distance math, link-contention queueing,
 *    ordered per-source delivery, determinism (repeat runs and parallel
 *    sweeps byte-identical), and architectural equivalence to the
 *    constant-latency machine (same digest, different timing).
 *  - Directory: full-map exactness and registration order; limited-
 *    pointer overflow to broadcast (Dir_i B) with the writer excluded.
 *  - validateMachineConfig diagnostics name the offending field.
 *  - P=1024 is a first-class configuration: a mesh machine with 1024
 *    processors constructs and runs a real program to completion.
 */
#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "mem/network_model.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

using namespace mts;
using namespace mts::test;

namespace
{

MemOp
loadAt(Cycle t, std::uint16_t proc, Addr addr)
{
    MemOp op;
    op.kind = MemOpKind::Load;
    op.addr = addr;
    op.proc = proc;
    op.issueTime = t;
    return op;
}

} // namespace

// ---------------------------------------------------------------------
// ConstantLatencyNetwork unit equivalence
// ---------------------------------------------------------------------

TEST(ConstantNetwork, PlainPipeTiming)
{
    NetworkConfig net;
    net.roundTrip = 200;
    auto model = makeNetworkModel(net, 4, 4);
    EXPECT_EQ(model->name(), "constant-latency");
    EXPECT_EQ(model->minDelay(), 100u);
    EXPECT_FALSE(model->zeroLatency());
    EXPECT_EQ(model->linkStats(), nullptr);

    NetworkTiming t = model->route(loadAt(1000, 0, kSharedBase + 7));
    EXPECT_EQ(t.arrival, 1100u);
    EXPECT_EQ(t.returnTime, 1200u);

    // No contention configured: a second message from the same source
    // sails through with the same constant latency.
    t = model->route(loadAt(1001, 0, kSharedBase + 8));
    EXPECT_EQ(t.arrival, 1101u);
    EXPECT_EQ(t.returnTime, 1201u);
}

TEST(ConstantNetwork, ChannelSerializationMatchesSeedMath)
{
    NetworkConfig net;
    net.roundTrip = 200;
    net.channelBits = 8;  // load forward = 64 bits -> 8 cycles
    auto model = makeNetworkModel(net, 4, 4);

    // Seed math: sendStart = max(issue, injectFree) + serialize(fwd);
    // arrival = sendStart + oneWay; return adds serialize(ret).
    NetworkTiming t = model->route(loadAt(100, 1, kSharedBase));
    EXPECT_EQ(t.arrival, 100 + 8 + 100u);
    // 1-word load return = 96 bits -> 12 cycles.
    EXPECT_EQ(t.returnTime, 208 + 100 + 12u);

    // Same channel, issued while the injector is still busy: queues.
    t = model->route(loadAt(101, 1, kSharedBase + 1));
    EXPECT_EQ(t.arrival, 108 + 8 + 100u);

    // Different processor: its own channel, no queueing.
    t = model->route(loadAt(101, 2, kSharedBase + 2));
    EXPECT_EQ(t.arrival, 101 + 8 + 100u);
}

TEST(ConstantNetwork, MemoryPortHotSpotSerializes)
{
    NetworkConfig net;
    net.roundTrip = 200;
    net.memPortCycles = 10;
    auto model = makeNetworkModel(net, 4, 4);

    Addr hot = kSharedBase + 42;
    EXPECT_EQ(model->route(loadAt(0, 0, hot)).arrival, 110u);
    // Next access to the same word waits for the port.
    EXPECT_EQ(model->route(loadAt(1, 1, hot)).arrival, 120u);
    // A different word is untouched by the hot spot.
    EXPECT_EQ(model->route(loadAt(2, 2, hot + 1)).arrival, 112u);
}

TEST(ConstantNetwork, PerSourceArrivalsAreMonotone)
{
    NetworkConfig net;
    net.roundTrip = 200;
    net.memPortCycles = 50;
    auto model = makeNetworkModel(net, 2, 4);

    Addr hot = kSharedBase;
    Cycle a1 = model->route(loadAt(0, 0, hot)).arrival;
    EXPECT_EQ(a1, 150u);
    // A spin load skips the memory port, so its raw arrival (101) would
    // overtake the first message; ordered delivery clamps it.
    MemOp spin = loadAt(1, 0, hot + 9);
    spin.spin = true;
    Cycle a2 = model->route(spin).arrival;
    EXPECT_EQ(a2, a1);
}

TEST(ConstantNetwork, ZeroRoundTripIsIdealNetwork)
{
    NetworkConfig net;
    net.roundTrip = 0;
    auto model = makeNetworkModel(net, 4, 4);
    EXPECT_TRUE(model->zeroLatency());
}

// ---------------------------------------------------------------------
// Pinned seed outputs: the refactored spine must time programs exactly
// as the pre-refactor simulator did (values captured from the seed).
// ---------------------------------------------------------------------

namespace
{

struct PinnedRun
{
    const char *model;
    Cycle cycles;
};

RunResult
runSieve(SwitchModel model)
{
    const App &app = findApp("sieve");
    AsmOptions opts = app.options(0.25);
    Program prog = assemble(app.source(), opts);
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.threadsPerProc = 4;
    cfg.model = model;
    if (modelNeedsSwitchInstr(model) || cfg.groupEstimate)
        prog = applyGroupingPass(prog);
    Machine m(prog, cfg);
    app.init(m);
    RunResult r = m.run();
    AppCheckResult chk = app.check(m);
    EXPECT_TRUE(chk.ok) << chk.message;
    return r;
}

} // namespace

TEST(ConstantNetwork, PinnedSeedEquivalence)
{
    // sieve @ scale 0.25, 4 procs x 4 threads, latency 200 — cycle
    // counts and digests recorded from the seed simulator before the
    // NetworkModel extraction. Any timing drift in the constant path
    // fails here.
    const std::uint64_t kDigestShared = 0x65976debe27cb508ull;
    const std::uint64_t kDigestRegs = 0xb9b23f3a46fd0825ull;
    const PinnedRun pins[] = {
        {"switch-on-load", 1772265},
        {"conditional-switch", 909844},
        {"explicit-switch", 1772268},
    };
    for (const PinnedRun &pin : pins) {
        RunResult r = runSieve(switchModelFromName(pin.model));
        EXPECT_EQ(r.cycles, pin.cycles) << pin.model;
        EXPECT_EQ(r.digest.sharedHash, kDigestShared) << pin.model;
        EXPECT_EQ(r.digest.regHash, kDigestRegs) << pin.model;
    }
}

// ---------------------------------------------------------------------
// MeshNetwork
// ---------------------------------------------------------------------

TEST(MeshNetwork, XyRoutingTimingOnEmptyMesh)
{
    NetworkConfig net;
    net.kind = NetworkKind::Mesh;
    net.meshX = 4;
    net.meshY = 4;
    net.hopCycles = 2;
    net.linkBits = 64;
    auto model = makeNetworkModel(net, 16, 4);
    EXPECT_EQ(model->name(), "mesh");
    EXPECT_EQ(model->minDelay(), 2u);
    ASSERT_NE(model->linkStats(), nullptr);

    // addr line 5 -> home node 5 = (1,1); source 0 = (0,0): 2 hops.
    // Load forward = 64 bits -> 1 cycle/link. Per hop: serialize (1) +
    // traverse (2). Arrival = 100 + 2*(1+2) = 106. Return (96 bits ->
    // 2 cycles/link): 106 + 2*(2+2) = 114.
    MemOp op = loadAt(100, 0, kSharedBase);
    op.addr = 5 * 4;  // line-interleaved home mapping: line 5
    NetworkTiming t = model->route(op);
    EXPECT_EQ(t.arrival, 106u);
    EXPECT_EQ(t.returnTime, 114u);

    const NetLinkStats &ls = *model->linkStats();
    EXPECT_EQ(ls.routedMsgs, 2u);  // forward + return
    EXPECT_EQ(ls.hops, 4u);
    EXPECT_DOUBLE_EQ(ls.avgHops(), 2.0);
}

TEST(MeshNetwork, HomeLocalAccessPaysOneHop)
{
    NetworkConfig net;
    net.kind = NetworkKind::Mesh;
    net.hopCycles = 3;
    auto model = makeNetworkModel(net, 16, 4);
    // Line 0 is homed at node 0; issued by node 0: injection hop only,
    // each way.
    NetworkTiming t = model->route(loadAt(50, 0, 0));
    EXPECT_EQ(t.arrival, 53u);
    EXPECT_EQ(t.returnTime, 56u);
    EXPECT_EQ(model->linkStats()->localMsgs, 2u);
    EXPECT_EQ(model->linkStats()->routedMsgs, 0u);
}

TEST(MeshNetwork, LinkContentionQueues)
{
    NetworkConfig net;
    net.kind = NetworkKind::Mesh;
    net.meshX = 4;
    net.meshY = 1;
    net.hopCycles = 1;
    net.linkBits = 16;  // 64-bit load header -> 4 cycles per link
    auto model = makeNetworkModel(net, 4, 4);

    // Two processors' messages share the (2,0)->(3,0) east link:
    // node1 -> node3 and node2 -> node3, both issued at t=0.
    MemOp a = loadAt(0, 1, 0);
    a.addr = 3 * 4;  // home node 3
    MemOp b = loadAt(0, 2, 0);
    b.addr = 3 * 4;

    // a: links (1->2), (2->3): depart 0, arr at node2 = 5; link (2,E)
    // busy [5,9), arrival = 10.
    Cycle arrA = model->route(a).arrival;
    EXPECT_EQ(arrA, 10u);
    // b uses only (2->3), but it is busy until 9: departs 9, arrives
    // 9 + 4 + 1 = 14 (9 cycles of queueing wait from t=5... issued 0,
    // waits 9).
    Cycle arrB = model->route(b).arrival;
    EXPECT_EQ(arrB, 14u);
    EXPECT_GT(model->linkStats()->waitCycles, 0u);
    EXPECT_GT(model->linkStats()->busyMax, 0u);
}

TEST(MeshNetwork, SpinTrafficExemptFromContention)
{
    NetworkConfig net;
    net.kind = NetworkKind::Mesh;
    net.meshX = 4;
    net.meshY = 1;
    net.hopCycles = 1;
    net.linkBits = 1;  // pathological serialization for real traffic
    auto model = makeNetworkModel(net, 4, 4);

    MemOp spin = loadAt(0, 0, 0);
    spin.addr = 3 * 4;
    spin.spin = true;
    // Exempt: pays pure distance (3 hops each way), no serialization.
    NetworkTiming t = model->route(spin);
    EXPECT_EQ(t.arrival, 3u);
    EXPECT_EQ(t.returnTime, 6u);
    // And leaves no trace in the link counters (footnote 2).
    EXPECT_EQ(model->linkStats()->routedMsgs, 0u);
    EXPECT_EQ(model->linkStats()->busyCycles, 0u);
}

TEST(MeshNetwork, AutoDimsFactorizeNearSquare)
{
    NetworkConfig net;
    auto [x16, y16] = resolveMeshDims(net, 16);
    EXPECT_EQ(x16 * y16, 16);
    EXPECT_EQ(x16, 4);
    auto [x1024, y1024] = resolveMeshDims(net, 1024);
    EXPECT_EQ(x1024, 32);
    EXPECT_EQ(y1024, 32);
    auto [x6, y6] = resolveMeshDims(net, 6);
    EXPECT_EQ(x6, 2);
    EXPECT_EQ(y6, 3);
}

namespace
{

/** A small racy-free multi-thread workload for end-to-end mesh runs. */
const char *kMeshWorkload = ".shared slots, 64\n"
                            ".shared acc, 1\n"
                            "main:\n"
                            "    la t0, slots\n"
                            "    add t0, t0, a0\n"
                            "    mul t1, a0, 7\n"
                            "    add t1, t1, 3\n"
                            "    sts t1, 0(t0)\n"
                            "    lds t2, 0(t0)\n"
                            "    li t3, 1\n"
                            "    faa zero, acc, t3\n"
                            "    mv v0, t2\n"
                            "    halt\n";

MachineConfig
meshConfig(int procs, int threads)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.threadsPerProc = threads;
    cfg.model = SwitchModel::SwitchOnLoad;
    cfg.network.kind = NetworkKind::Mesh;
    cfg.network.linkBits = 16;
    return cfg;
}

} // namespace

TEST(MeshNetwork, RepeatRunsAreDeterministic)
{
    MiniRun a = runAsm(kMeshWorkload, meshConfig(16, 2));
    MiniRun b = runAsm(kMeshWorkload, meshConfig(16, 2));
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.digest, b.result.digest);
    EXPECT_EQ(a.result.link.waitCycles, b.result.link.waitCycles);
    EXPECT_TRUE(a.result.hasLinkStats);
}

TEST(MeshNetwork, ArchitecturallyEquivalentToConstantLatency)
{
    MiniRun mesh = runAsm(kMeshWorkload, meshConfig(8, 2));
    MachineConfig constCfg = meshConfig(8, 2);
    constCfg.network = NetworkConfig{200};
    MiniRun constant = runAsm(kMeshWorkload, constCfg);
    // Timing differs; architecture must not.
    EXPECT_EQ(mesh.result.digest, constant.result.digest);
    EXPECT_EQ(mesh.sharedInt("acc"), 16);
}

TEST(MeshNetwork, SweepIsDeterministicAcrossJobCounts)
{
    // The link-contention queues live inside each Machine, and sweep
    // results are collected in submission order: an 8-worker sweep must
    // reproduce the serial sweep exactly, cycle for cycle.
    auto sweep = [&](unsigned jobs) {
        ExperimentRunner runner(0.2);
        SweepRunner sw(runner, jobs);
        const App &app = findApp("sieve");
        std::vector<SweepRunner::Job> work;
        for (int t : {1, 2, 4}) {
            SweepRunner::Job job;
            job.app = &app;
            job.config = meshConfig(16, t);
            work.push_back(job);
        }
        std::vector<Cycle> cycles;
        for (const ExperimentRun &r : sw.runAll(work))
            cycles.push_back(r.result.cycles);
        return cycles;
    };
    EXPECT_EQ(sweep(1), sweep(8));
}

TEST(MeshNetwork, P1024MachineRunsToCompletion)
{
    // The headline configuration: a 32x32 mesh with 1024 processors
    // and a limited-pointer directory constructs and runs a real
    // program end to end.
    MachineConfig cfg = meshConfig(1024, 1);
    cfg.directory.mode = DirectoryMode::LimitedPtr;
    cfg.directory.pointers = 4;
    const char *src = ".shared slots, 1024\n"
                      ".shared acc, 1\n"
                      "main:\n"
                      "    la t0, slots\n"
                      "    add t0, t0, a0\n"
                      "    sts a0, 0(t0)\n"
                      "    li t3, 1\n"
                      "    faa zero, acc, t3\n"
                      "    halt\n";
    MiniRun r = runAsm(src, cfg);
    EXPECT_EQ(r.sharedInt("acc"), 1024);
    EXPECT_TRUE(r.result.hasLinkStats);
    EXPECT_GT(r.result.link.routedMsgs, 0u);
    EXPECT_GT(r.result.link.avgHops(), 1.0);
}

// ---------------------------------------------------------------------
// Backend registry
// ---------------------------------------------------------------------

TEST(NetworkRegistry, NamesRoundTrip)
{
    for (NetworkKind k : kAllNetworkKinds)
        EXPECT_EQ(networkKindFromName(networkKindName(k)), k);
}

TEST(NetworkRegistry, UnknownNameListsBackends)
{
    try {
        networkKindFromName("hypercube");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown network 'hypercube'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("constant-latency"), std::string::npos) << msg;
        EXPECT_NE(msg.find("mesh"), std::string::npos) << msg;
    }
}

TEST(NetworkRegistry, ConfigTokenDistinguishesBackends)
{
    NetworkConfig a;
    NetworkConfig b;
    b.kind = NetworkKind::Mesh;
    EXPECT_NE(networkConfigToken(a), networkConfigToken(b));
    NetworkConfig c = b;
    c.linkBits = 16;
    EXPECT_NE(networkConfigToken(b), networkConfigToken(c));
}

// ---------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------

TEST(Directory, FullMapPreservesRegistrationOrder)
{
    Directory dir(DirectoryConfig{}, 16);
    dir.addSharer(0, 5);
    dir.addSharer(0, 2);
    dir.addSharer(0, 9);
    dir.addSharer(0, 2);  // duplicate ignored
    std::vector<std::uint16_t> inv = dir.writersInvalidationSet(0, 9);
    ASSERT_EQ(inv.size(), 2u);
    EXPECT_EQ(inv[0], 5);
    EXPECT_EQ(inv[1], 2);
    // The entry was cleared.
    EXPECT_TRUE(dir.writersInvalidationSet(0, 9).empty());
    EXPECT_EQ(dir.broadcasts(), 0u);
}

TEST(Directory, FullMapSpillsPastInlinePointers)
{
    Directory dir(DirectoryConfig{}, 64);
    for (std::uint16_t p = 0; p < 20; ++p)
        dir.addSharer(8, p);
    std::vector<std::uint16_t> inv = dir.writersInvalidationSet(8, 0);
    ASSERT_EQ(inv.size(), 19u);
    for (std::uint16_t p = 1; p < 20; ++p)
        EXPECT_EQ(inv[p - 1], p);  // registration order, writer excluded
}

TEST(Directory, LimitedPointerOverflowBroadcasts)
{
    DirectoryConfig cfg;
    cfg.mode = DirectoryMode::LimitedPtr;
    cfg.pointers = 2;
    Directory dir(cfg, 8);
    dir.addSharer(0, 1);
    dir.addSharer(0, 2);
    EXPECT_EQ(dir.overflows(), 0u);
    dir.addSharer(0, 3);  // third sharer overflows 2 pointers
    EXPECT_EQ(dir.overflows(), 1u);
    EXPECT_EQ(dir.broadcastLines(), 1u);

    // A write now invalidates everyone except the writer — including
    // processors that never shared the line (imprecise broadcast).
    std::vector<std::uint16_t> inv = dir.writersInvalidationSet(0, 2);
    EXPECT_EQ(inv.size(), 7u);
    for (std::uint16_t p : inv)
        EXPECT_NE(p, 2);
    EXPECT_EQ(dir.broadcasts(), 1u);
}

TEST(Directory, LimitedPointerExactWhileUnderLimit)
{
    DirectoryConfig cfg;
    cfg.mode = DirectoryMode::LimitedPtr;
    cfg.pointers = 4;
    Directory dir(cfg, 1024);
    dir.addSharer(16, 100);
    dir.addSharer(16, 900);
    std::vector<std::uint16_t> inv = dir.writersInvalidationSet(16, 100);
    ASSERT_EQ(inv.size(), 1u);
    EXPECT_EQ(inv[0], 900);
    EXPECT_EQ(dir.broadcasts(), 0u);
}

// ---------------------------------------------------------------------
// MachineConfig validation
// ---------------------------------------------------------------------

namespace
{

std::string
validationError(const MachineConfig &cfg)
{
    try {
        validateMachineConfig(cfg);
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

} // namespace

TEST(ConfigValidation, DiagnosticsNameTheField)
{
    MachineConfig cfg;
    cfg.numProcs = 0;
    EXPECT_NE(validationError(cfg).find("numProcs"), std::string::npos);

    cfg = MachineConfig{};
    cfg.threadsPerProc = -1;
    EXPECT_NE(validationError(cfg).find("threadsPerProc"),
              std::string::npos);

    cfg = MachineConfig{};
    cfg.network.roundTrip = 201;
    EXPECT_NE(validationError(cfg).find("network.roundTrip"),
              std::string::npos);

    cfg = MachineConfig{};
    cfg.network.kind = NetworkKind::Mesh;
    cfg.network.meshX = 3;
    cfg.network.meshY = 3;  // 9 != 16
    EXPECT_NE(validationError(cfg).find("network.meshX"),
              std::string::npos);

    cfg = MachineConfig{};
    cfg.network.kind = NetworkKind::Mesh;
    cfg.network.linkBits = 0;
    EXPECT_NE(validationError(cfg).find("network.linkBits"),
              std::string::npos);

    cfg = MachineConfig{};
    cfg.network.kind = NetworkKind::Mesh;
    cfg.network.hopCycles = 0;
    EXPECT_NE(validationError(cfg).find("network.hopCycles"),
              std::string::npos);

    cfg = MachineConfig{};
    cfg.directory.pointers = 9;
    EXPECT_NE(validationError(cfg).find("directory.pointers"),
              std::string::npos);
}

TEST(ConfigValidation, MachineConstructionEnforcesIt)
{
    MachineConfig cfg = miniConfig();
    cfg.numProcs = 0;
    EXPECT_THROW(runAsm("main:\n    halt\n", cfg), FatalError);
}

TEST(ConfigValidation, DefaultAndMeshConfigsPass)
{
    EXPECT_EQ(validationError(MachineConfig{}), "");
    MachineConfig cfg;
    cfg.numProcs = 1024;
    cfg.network.kind = NetworkKind::Mesh;
    EXPECT_EQ(validationError(cfg), "");
}
