#include <gtest/gtest.h>

#include "core/experiment.hpp"

using namespace mts;

TEST(Experiment, ReferenceRunIsCachedAndPositive)
{
    ExperimentRunner runner(0.05);
    Cycle a = runner.referenceCycles(sieveApp());
    Cycle b = runner.referenceCycles(sieveApp());
    EXPECT_GT(a, 0u);
    EXPECT_EQ(a, b);
}

TEST(Experiment, IdealSingleProcessorEfficiencyIsOne)
{
    ExperimentRunner runner(0.05);
    auto cfg = ExperimentRunner::makeConfig(SwitchModel::Ideal, 1, 1, 0);
    auto run = runner.run(sieveApp(), cfg);
    EXPECT_DOUBLE_EQ(run.efficiency, 1.0);
    EXPECT_DOUBLE_EQ(run.speedup, 1.0);
}

TEST(Experiment, MultithreadingRaisesEfficiencyUnderLatency)
{
    ExperimentRunner runner(0.1);
    auto one = runner.run(sieveApp(), ExperimentRunner::makeConfig(
                                          SwitchModel::SwitchOnLoad, 4, 1));
    auto many = runner.run(sieveApp(),
                           ExperimentRunner::makeConfig(
                               SwitchModel::SwitchOnLoad, 4, 12));
    EXPECT_GT(many.efficiency, one.efficiency * 2);
}

TEST(Experiment, ThreadsForEfficiencyFindsMinimalLevel)
{
    // Scale must leave enough work per thread that the efficiency target
    // is parallelism-feasible (the paper's "problem too small" domain).
    ExperimentRunner runner(0.3);
    auto base =
        ExperimentRunner::makeConfig(SwitchModel::SwitchOnLoad, 4, 1);
    int t50 = runner.threadsForEfficiency(sieveApp(), base, 0.5, 24);
    int t70 = runner.threadsForEfficiency(sieveApp(), base, 0.7, 24);
    ASSERT_GT(t50, 0);
    ASSERT_GT(t70, 0);
    EXPECT_LE(t50, t70);
    // Unreachable target reports -1.
    EXPECT_EQ(runner.threadsForEfficiency(sieveApp(), base, 1.5, 4), -1);
}

TEST(Experiment, GroupedCodeChosenForExplicitSwitch)
{
    ExperimentRunner runner(0.05);
    const PreparedApp &pa = runner.prepare(sorApp());
    bool hasSwitch = false;
    for (const auto &inst : pa.grouped->code)
        if (inst.op == Opcode::CSWITCH)
            hasSwitch = true;
    EXPECT_TRUE(hasSwitch);
    // And grouping found sor's 5-load group.
    EXPECT_GE(pa.groupingStats.staticGroupingFactor(), 3.0);
    // run() with explicit-switch must succeed (uses grouped code).
    auto run = runner.run(
        sorApp(),
        ExperimentRunner::makeConfig(SwitchModel::ExplicitSwitch, 2, 4));
    EXPECT_GT(run.efficiency, 0.0);
}

TEST(Experiment, ExplicitSwitchBeatsSwitchOnLoadOnSor)
{
    // The paper's headline: grouping dramatically helps sor.
    ExperimentRunner runner(0.15);
    auto sol = runner.run(sorApp(), ExperimentRunner::makeConfig(
                                        SwitchModel::SwitchOnLoad, 4, 8));
    auto es = runner.run(sorApp(), ExperimentRunner::makeConfig(
                                       SwitchModel::ExplicitSwitch, 4, 8));
    EXPECT_GT(es.efficiency, sol.efficiency * 1.8);
}

TEST(Experiment, InvalidScaleRejected)
{
    EXPECT_THROW(ExperimentRunner(-1.0), FatalError);
}
