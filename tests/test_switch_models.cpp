/**
 * Behavioural tests of the seven multithreading models (paper Figure 1).
 */
#include <gtest/gtest.h>

#include "test_helpers.hpp"

using namespace mts;
using namespace mts::test;

namespace
{

MachineConfig
modelConfig(SwitchModel m, int procs = 1, int threads = 1)
{
    MachineConfig cfg = miniConfig();
    cfg.model = m;
    cfg.numProcs = procs;
    cfg.threadsPerProc = threads;
    return cfg;
}

} // namespace

TEST(SwitchModels, ModelNamesRoundTrip)
{
    for (SwitchModel m : kAllModels)
        EXPECT_EQ(switchModelFromName(switchModelName(m)), m);
    EXPECT_THROW(switchModelFromName("bogus"), FatalError);
}

TEST(SwitchModels, TaxonomyPredicates)
{
    EXPECT_TRUE(modelUsesCache(SwitchModel::SwitchOnMiss));
    EXPECT_TRUE(modelUsesCache(SwitchModel::SwitchOnUseMiss));
    EXPECT_TRUE(modelUsesCache(SwitchModel::ConditionalSwitch));
    EXPECT_FALSE(modelUsesCache(SwitchModel::ExplicitSwitch));
    EXPECT_TRUE(modelNeedsSwitchInstr(SwitchModel::ExplicitSwitch));
    EXPECT_TRUE(modelNeedsSwitchInstr(SwitchModel::ConditionalSwitch));
    EXPECT_FALSE(modelNeedsSwitchInstr(SwitchModel::SwitchOnLoad));
}

TEST(SwitchModels, ExplicitSwitchRequiresGroupedCode)
{
    Program raw = assemble(".shared x, 1\nmain:\n    lds r1, x\n"
                           "    halt\n");
    EXPECT_THROW(Machine(raw, modelConfig(SwitchModel::ExplicitSwitch)),
                 FatalError);
}

TEST(SwitchModels, SwitchEveryCycleSwitchesPerInstruction)
{
    MiniRun mr = runAsm(R"(
main:
    li r1, 1
    li r2, 2
    add r3, r1, r2
    halt
)",
                        modelConfig(SwitchModel::SwitchEveryCycle));
    // Every instruction switches except the final halt, which terminates
    // the thread instead.
    EXPECT_EQ(mr.result.cpu.switchesTaken,
              mr.result.cpu.instructions - 1);
}

TEST(SwitchModels, SwitchEveryCycleInterleavesThreads)
{
    MachineConfig cfg = modelConfig(SwitchModel::SwitchEveryCycle, 1, 2);
    MiniRun mr = runAsm(R"(
.shared out, 2
main:
    li  r1, 10
    add r1, r1, a0
    la  r2, out
    add r2, r2, a0
    sts r1, 0(r2)
    halt
)",
                        cfg);
    Addr base = mr.prog.sharedAddr("out");
    EXPECT_EQ(mr.machine->sharedMem().readInt(base), 10);
    EXPECT_EQ(mr.machine->sharedMem().readInt(base + 1), 11);
}

TEST(SwitchModels, SwitchOnUseRunsPastLoad)
{
    // Independent instructions after the load execute before the switch:
    // lds@0, li@1, li@2, use@switch -> resume 200, add@200, halt@201.
    MiniRun mr = runAsm(R"(
.shared x, 1
main:
    lds r1, x
    li  r3, 7
    li  r4, 8
    add r2, r1, r3
    halt
)",
                        modelConfig(SwitchModel::SwitchOnUse));
    EXPECT_EQ(mr.result.cycles, 202u);
    EXPECT_EQ(mr.result.cpu.switchesTaken, 1u);

    // The same code under switch-on-load pays the wait before the li's.
    MiniRun sol = runAsm(R"(
.shared x, 1
main:
    lds r1, x
    li  r3, 7
    li  r4, 8
    add r2, r1, r3
    halt
)");
    EXPECT_EQ(sol.result.cycles, 204u);
}

TEST(SwitchModels, SwitchOnUseDoesNotSwitchWhenValueReady)
{
    // Enough independent work covers the latency; no switch at the use.
    std::string src = ".shared x, 1\nmain:\n    lds r1, x\n";
    for (int i = 0; i < 210; ++i)
        src += "    add r3, r3, 1\n";
    src += "    add r2, r1, 1\n    halt\n";
    MiniRun mr = runAsm(src, modelConfig(SwitchModel::SwitchOnUse));
    EXPECT_EQ(mr.result.cpu.switchesTaken, 0u);
}

TEST(SwitchModels, ConditionalSwitchSkipsOnHit)
{
    MachineConfig cfg = modelConfig(SwitchModel::ConditionalSwitch);
    MiniRun mr = runAsm(R"(
.shared x, 4
main:
    lds r1, x
    cswitch
    lds r2, x+1
    cswitch
    halt
)",
                        cfg);
    // First load misses (switch taken), second hits the filled line
    // (switch skipped).
    EXPECT_EQ(mr.result.cpu.switchesTaken, 1u);
    EXPECT_EQ(mr.result.cpu.switchesSkipped, 1u);
    EXPECT_EQ(mr.result.cache.hits, 1u);
    EXPECT_EQ(mr.result.cache.misses, 1u);
}

TEST(SwitchModels, ConditionalSwitchSliceLimitForcesSwitch)
{
    MachineConfig cfg = modelConfig(SwitchModel::ConditionalSwitch);
    cfg.sliceLimit = 200;
    // Warm the line, then spin on cached hits for > 200 cycles.
    MiniRun mr = runAsm(R"(
.shared x, 4
main:
    lds r1, x
    cswitch
    li  r3, 0
loop:
    lds r2, x+1
    cswitch
    add r3, r3, 1
    blt r3, 100, loop
    halt
)",
                        cfg);
    EXPECT_GT(mr.result.cpu.sliceLimitSwitches, 0u);
}

TEST(SwitchModels, ConditionalSwitchSliceLimitZeroDisablesIt)
{
    MachineConfig cfg = modelConfig(SwitchModel::ConditionalSwitch);
    cfg.sliceLimit = 0;
    MiniRun mr = runAsm(R"(
.shared x, 4
main:
    lds r1, x
    cswitch
    li  r3, 0
loop:
    lds r2, x+1
    cswitch
    add r3, r3, 1
    blt r3, 100, loop
    halt
)",
                        cfg);
    EXPECT_EQ(mr.result.cpu.sliceLimitSwitches, 0u);
    EXPECT_EQ(mr.result.cpu.switchesTaken, 1u);
}

TEST(SwitchModels, SwitchOnMissPaysPipelinePenalty)
{
    MachineConfig cfg = modelConfig(SwitchModel::SwitchOnMiss);
    cfg.missSwitchPenalty = 3;
    MiniRun mr = runAsm(R"(
.shared x, 1
main:
    lds r1, x
    halt
)",
                        cfg);
    EXPECT_EQ(mr.result.cpu.stallCycles, 3u);
    EXPECT_EQ(mr.result.cpu.switchesTaken, 1u);
}

TEST(SwitchModels, SwitchOnMissHitDoesNotSwitch)
{
    MachineConfig cfg = modelConfig(SwitchModel::SwitchOnMiss);
    MiniRun mr = runAsm(R"(
.shared x, 4
main:
    lds r1, x
    lds r2, x+1
    halt
)",
                        cfg);
    // Second access hits the line filled by the first.
    EXPECT_EQ(mr.result.cpu.switchesTaken, 1u);
    EXPECT_EQ(mr.result.cache.hits, 1u);
}

TEST(SwitchModels, SwitchOnUseMissToleratesHitsAtUse)
{
    MachineConfig cfg = modelConfig(SwitchModel::SwitchOnUseMiss);
    MiniRun mr = runAsm(R"(
.shared x, 4
main:
    lds r1, x
    li  r3, 5
    add r2, r1, r3
    lds r4, x+1
    add r5, r4, r3
    halt
)",
                        cfg);
    // First use switches (miss in flight); second load hits -> no switch.
    EXPECT_EQ(mr.result.cpu.switchesTaken, 1u);
}

TEST(SwitchModels, IdealModelIgnoresCswitch)
{
    MachineConfig cfg = modelConfig(SwitchModel::Ideal);
    cfg.network.roundTrip = 0;
    MiniRun mr = runAsm(R"(
.shared x, 1
main:
    lds r1, x
    cswitch
    halt
)",
                        cfg);
    EXPECT_EQ(mr.result.cpu.switchesTaken, 0u);
    EXPECT_EQ(mr.result.cycles, 3u);  // cswitch still costs its cycle
}

TEST(SwitchModels, RoundRobinIsStrictAndFair)
{
    // 4 threads each append their id twice; strict round robin under
    // switch-on-load must give 0,1,2,3,0,1,2,3.
    MachineConfig cfg = modelConfig(SwitchModel::SwitchOnLoad, 1, 4);
    MiniRun mr = runAsm(R"(
.shared x, 1
.shared order, 8
.shared idx, 1
main:
    li  r2, 1
    lds r1, x             ; switch
    faa r3, idx(r0), r2
    la  r9, order
    add r9, r9, r3
    sts a0, 0(r9)
    lds r1, x             ; switch
    faa r3, idx(r0), r2
    la  r9, order
    add r9, r9, r3
    sts a0, 0(r9)
    halt
)",
                        cfg);
    Addr base = mr.prog.sharedAddr("order");
    SharedMemory &mem = mr.machine->sharedMem();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(mem.readInt(base + i), i % 4) << "slot " << i;
}

TEST(SwitchModels, RunLengthDistributionRecorded)
{
    MiniRun mr = runAsm(R"(
.shared x, 1
main:
    li  r3, 0
loop:
    lds r1, x
    add r3, r3, 1
    blt r3, 10, loop
    halt
)");
    // 10 loads -> 10 switches plus the final halt run.
    EXPECT_EQ(mr.result.cpu.switchesTaken, 10u);
    EXPECT_GE(mr.result.cpu.runLengths.count(), 10u);
    EXPECT_GT(mr.result.cpu.runLengths.mean(), 0.0);
}

class AllModelsCorrectness
    : public ::testing::TestWithParam<SwitchModel>
{
};

TEST_P(AllModelsCorrectness, FaaSumAcrossThreadsIsExact)
{
    SwitchModel m = GetParam();
    MachineConfig cfg = modelConfig(m, 2, 3);
    std::string src = R"(
.shared c, 1
main:
    li  r2, 0
    li  r3, 1
loop:
    faa r4, c(r0), r3
    add r2, r2, 1
    blt r2, 20, loop
    halt
)";
    // Models that only switch at cswitch need grouped code.
    Program prog = assemble(src);
    Program chosen =
        modelNeedsSwitchInstr(m) ? applyGroupingPass(prog) : prog;
    Machine machine(chosen, cfg);
    machine.run();
    EXPECT_EQ(machine.sharedMem().readInt(prog.sharedAddr("c")), 6 * 20)
        << switchModelName(m);
}

INSTANTIATE_TEST_SUITE_P(
    Taxonomy, AllModelsCorrectness, ::testing::ValuesIn(kAllModels),
    [](const ::testing::TestParamInfo<SwitchModel> &info) {
        std::string name(switchModelName(info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });
