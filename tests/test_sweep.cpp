/**
 * Host-parallel sweep engine: determinism of single simulations, parity
 * of parallel sweeps with serial execution, the speculative
 * threads-for-efficiency ladder, and the thread pool / flat map
 * utilities underneath.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/mtsim.hpp"
#include "util/flat_map.hpp"
#include "util/thread_pool.hpp"

using namespace mts;

// ---------------------------------------------------------------- pool

TEST(ThreadPool, ResultsArriveInSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, DrainsMoreTasksThanWorkers)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        std::vector<std::future<void>> futures;
        for (int i = 0; i < 200; ++i)
            futures.push_back(pool.submit([&done] { ++done; }));
        for (auto &f : futures)
            f.get();
    }
    EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultWorkersHonorsMtsJobs)
{
    setenv("MTS_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultWorkers(), 3u);
    unsetenv("MTS_JOBS");
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

// ------------------------------------------------------------ flat map

TEST(FlatMap, InsertLookupAndGrowth)
{
    AddrCycleMap m(4);
    for (Addr a = 0; a < 500; ++a)
        m[a] = a * 3;
    EXPECT_EQ(m.size(), 500u);
    for (Addr a = 0; a < 500; ++a)
        EXPECT_EQ(m[a], a * 3);
    EXPECT_EQ(m.size(), 500u);  // lookups insert nothing new
    m[17] = 999;
    EXPECT_EQ(m[17], 999u);
}

TEST(FlatMap, AbsentKeysDefaultToZero)
{
    AddrCycleMap m;
    EXPECT_EQ(m[12345], 0u);
    EXPECT_EQ(m.size(), 1u);
}

// --------------------------------------------------------------- sweep

TEST(Sweep, SimulationIsDeterministic)
{
    // Two independent runners, same config: identical cycle counts.
    auto cfg =
        ExperimentRunner::makeConfig(SwitchModel::SwitchOnLoad, 2, 3);
    ExperimentRunner r1(0.05);
    ExperimentRunner r2(0.05);
    auto a = r1.run(sieveApp(), cfg);
    auto b = r2.run(sieveApp(), cfg);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.cpu.instructions, b.result.cpu.instructions);
    EXPECT_EQ(a.result.net.messages, b.result.net.messages);
    EXPECT_DOUBLE_EQ(a.efficiency, b.efficiency);
}

namespace
{

std::vector<SweepRunner::Job>
parityJobs()
{
    std::vector<SweepRunner::Job> jobs;
    for (const App *app : {&sieveApp(), &sorApp()})
        for (int threads : {1, 2, 4})
            jobs.push_back({app, ExperimentRunner::makeConfig(
                                     SwitchModel::SwitchOnLoad, 2,
                                     threads)});
    return jobs;
}

/** Render a run the way a table row would, for byte-level comparison. */
std::string
renderRun(const ExperimentRun &run)
{
    return std::to_string(run.result.cycles) + "|" +
           std::to_string(run.result.cpu.instructions) + "|" +
           std::to_string(run.efficiency) + "|" +
           std::to_string(run.referenceCycles);
}

} // namespace

TEST(Sweep, ParallelResultsMatchSerialByteForByte)
{
    ExperimentRunner serialRunner(0.05);
    SweepRunner serial(serialRunner, 1);
    auto serialRuns = serial.runAll(parityJobs());

    ExperimentRunner parallelRunner(0.05);
    SweepRunner parallel(parallelRunner, 8);
    EXPECT_EQ(parallel.jobs(), 8u);
    auto parallelRuns = parallel.runAll(parityJobs());

    ASSERT_EQ(serialRuns.size(), parallelRuns.size());
    for (std::size_t i = 0; i < serialRuns.size(); ++i)
        EXPECT_EQ(renderRun(serialRuns[i]), renderRun(parallelRuns[i]))
            << "sweep job " << i;
}

TEST(Sweep, MapKeepsSubmissionOrderAndPropagatesExceptions)
{
    ExperimentRunner runner(0.05);
    SweepRunner sweep(runner, 4);
    auto values = sweep.map(
        32, [](std::size_t i) { return static_cast<int>(i) * 2; });
    ASSERT_EQ(values.size(), 32u);
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(values[i], static_cast<int>(i) * 2);

    EXPECT_THROW(sweep.map(4,
                           [](std::size_t i) -> int {
                               if (i == 2)
                                   throw std::runtime_error("task 2");
                               return 0;
                           }),
                 std::runtime_error);
}

TEST(Sweep, ParallelLadderMatchesSerialForAllApps)
{
    // Satellite (c): the speculative parallel ladder must return the
    // same minimal multithreading level as the serial search, app by app.
    ExperimentRunner serialRunner(0.08);
    ExperimentRunner parallelRunner(0.08);
    parallelRunner.setLadderJobs(4);
    for (const App *app : allApps()) {
        auto base = ExperimentRunner::makeConfig(
            SwitchModel::SwitchOnLoad, 2, 1);
        int serial =
            serialRunner.threadsForEfficiency(*app, base, 0.5, 6);
        int parallel =
            parallelRunner.threadsForEfficiency(*app, base, 0.5, 6);
        EXPECT_EQ(serial, parallel) << app->name();
    }
}

TEST(Sweep, ConcurrentPrepareAssemblesOnce)
{
    // Many workers preparing the same app must agree on one PreparedApp
    // instance (per-app once-flags, not per-worker copies).
    ExperimentRunner runner(0.05);
    SweepRunner sweep(runner, 8);
    auto addrs = sweep.map(16, [&](std::size_t) {
        return &runner.prepare(sieveApp());
    });
    for (const PreparedApp *pa : addrs)
        EXPECT_EQ(pa, addrs[0]);
}
