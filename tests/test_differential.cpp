/**
 * @file
 * Tests for the differential runner (src/verify/differential.cpp): a
 * known-independent program must survive the whole configuration matrix,
 * a racy program must be screened out as Unstable before any machine
 * run, and a block of fixed generator seeds must stay divergence-free
 * with the metrics invariants armed. These seeds are the fast, always-on
 * slice of the fuzzing subsystem; the CI fuzz job runs fresh seeds.
 */
#include <gtest/gtest.h>

#include "verify/differential.hpp"
#include "verify/fuzz.hpp"

using namespace mts;

namespace
{

/** Small matrix for single-program tests: full model set, one split. */
DiffOptions
quickOptions()
{
    DiffOptions opts;
    opts.threads = 4;
    opts.tppList = {1, 4};
    return opts;
}

} // namespace

TEST(Differential, IndependentProgramSurvivesMatrix)
{
    // Disjoint result slots + a commutative FAA accumulator: the digest
    // is the same under every schedule, so every config must agree.
    const std::string src = ".entry main\n"
                            ".shared slots, 4\n"
                            ".shared acc, 1\n"
                            "main:\n"
                            "    la t0, slots\n"
                            "    add t0, t0, a0\n"
                            "    mul t1, a0, 13\n"
                            "    add t1, t1, 5\n"
                            "    sts t1, 0(t0)\n"
                            "    li t2, 1\n"
                            "    faa zero, acc, t2\n"
                            "    mv v0, t1\n"
                            "    fli f0, 0.5\n"
                            "    halt\n";
    DiffReport rep = runDifferential(src, quickOptions());
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GT(rep.machineRuns, 0);
}

TEST(Differential, RacyProgramScreenedAsUnstable)
{
    // Last writer wins on one shared word and every thread reads it
    // back: the result depends on the schedule, so the two-quanta
    // reference screen must reject it before any machine run.
    const std::string src = ".entry main\n"
                            ".shared w, 1\n"
                            "main:\n"
                            "    la t0, w\n"
                            "    sts a0, 0(t0)\n"
                            "    lds t2, 0(t0)\n"
                            "    mv v0, t2\n"
                            "    halt\n";
    DiffReport rep = runDifferential(src, quickOptions());
    ASSERT_EQ(rep.divergences.size(), 1u) << rep.summary();
    EXPECT_EQ(rep.divergences[0].kind, DivergenceKind::Unstable);
    EXPECT_EQ(rep.machineRuns, 0);
}

TEST(Differential, ReferenceRunErrorIsReportedNotThrown)
{
    DiffReport rep = runDifferential(".entry main\nmain:\nLspin:\n"
                                     "    j Lspin\n",
                                     [] {
                                         DiffOptions o = quickOptions();
                                         o.ref.maxSteps = 10'000;
                                         return o;
                                     }());
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.divergences[0].kind, DivergenceKind::RunError);
}

TEST(Differential, FixedSeedBlockIsDivergenceFree)
{
    // 64 pinned seeds through generate -> full matrix, invariants on.
    // Any simulator or grouping-pass regression that changes results
    // (not just timing) fails here, in-tree, without the CI fuzz job.
    FuzzOptions opts;
    opts.seeds = 64;
    opts.firstSeed = 1;
    opts.shrink = false;  // diagnosis belongs to mtfuzz, not this test
    opts.diff.checkInvariants = true;

    FuzzReport rep = runFuzzCampaign(opts);
    EXPECT_EQ(rep.seedsRun, 64);
    EXPECT_GT(rep.machineRuns, 0);
    std::string firstFailure;
    if (!rep.ok())
        firstFailure = "seed " + std::to_string(rep.failures[0].seed) +
                       ": " + rep.failures[0].first.config + ": " +
                       rep.failures[0].first.detail;
    EXPECT_TRUE(rep.ok()) << firstFailure;
}
