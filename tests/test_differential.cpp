/**
 * @file
 * Tests for the differential runner (src/verify/differential.cpp): a
 * known-independent program must survive the whole configuration matrix,
 * a racy program must be screened out as Unstable before any machine
 * run, and a block of fixed generator seeds must stay divergence-free
 * with the metrics invariants armed. These seeds are the fast, always-on
 * slice of the fuzzing subsystem; the CI fuzz job runs fresh seeds.
 */
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "asm/assembler.hpp"
#include "opt/grouping_pass.hpp"
#include "sim/machine.hpp"
#include "trace/tracer.hpp"
#include "verify/differential.hpp"
#include "verify/fuzz.hpp"

using namespace mts;

namespace
{

/** Small matrix for single-program tests: full model set, one split. */
DiffOptions
quickOptions()
{
    DiffOptions opts;
    opts.threads = 4;
    opts.tppList = {1, 4};
    return opts;
}

} // namespace

TEST(Differential, IndependentProgramSurvivesMatrix)
{
    // Disjoint result slots + a commutative FAA accumulator: the digest
    // is the same under every schedule, so every config must agree.
    const std::string src = ".entry main\n"
                            ".shared slots, 4\n"
                            ".shared acc, 1\n"
                            "main:\n"
                            "    la t0, slots\n"
                            "    add t0, t0, a0\n"
                            "    mul t1, a0, 13\n"
                            "    add t1, t1, 5\n"
                            "    sts t1, 0(t0)\n"
                            "    li t2, 1\n"
                            "    faa zero, acc, t2\n"
                            "    mv v0, t1\n"
                            "    fli f0, 0.5\n"
                            "    halt\n";
    DiffReport rep = runDifferential(src, quickOptions());
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GT(rep.machineRuns, 0);
}

TEST(Differential, MeshSliceIsInMatrixAndDivergenceFree)
{
    // The load-dependent mesh backend (narrow links, one limited-pointer
    // directory config) is part of the matrix by default: switching it
    // off must remove exactly its runs, and with it on a schedule-
    // independent program must still match the reference digest —
    // contention may move every message, never any result.
    const std::string src = ".entry main\n"
                            ".shared slots, 4\n"
                            ".shared acc, 1\n"
                            "main:\n"
                            "    la t0, slots\n"
                            "    add t0, t0, a0\n"
                            "    mul t1, a0, 9\n"
                            "    add t1, t1, 2\n"
                            "    sts t1, 0(t0)\n"
                            "    li t2, 1\n"
                            "    faa zero, acc, t2\n"
                            "    mv v0, t1\n"
                            "    halt\n";
    DiffOptions withMesh = quickOptions();
    DiffReport meshRep = runDifferential(src, withMesh);
    EXPECT_TRUE(meshRep.ok()) << meshRep.summary();

    DiffOptions noMesh = quickOptions();
    noMesh.includeMesh = false;
    DiffReport plainRep = runDifferential(src, noMesh);
    EXPECT_TRUE(plainRep.ok()) << plainRep.summary();
    EXPECT_EQ(meshRep.machineRuns, plainRep.machineRuns + 2);
    EXPECT_EQ(meshRep.refDigest, plainRep.refDigest);
}

TEST(Differential, PinnedSeedsSurviveMeshBackend)
{
    // A pinned-seed fuzz slice dedicated to the mesh backend: seeds
    // disjoint from the other blocks, mesh slice armed (and counted),
    // invariants on. Divergence here means link contention changed an
    // architectural result.
    FuzzOptions opts;
    opts.seeds = 8;
    opts.firstSeed = 701;
    opts.shrink = false;
    opts.diff.checkInvariants = true;
    opts.diff.includeMesh = true;

    FuzzReport rep = runFuzzCampaign(opts);
    EXPECT_EQ(rep.seedsRun, 8);
    std::string firstFailure;
    if (!rep.ok())
        firstFailure = "seed " + std::to_string(rep.failures[0].seed) +
                       ": " + rep.failures[0].first.config + ": " +
                       rep.failures[0].first.detail;
    EXPECT_TRUE(rep.ok()) << firstFailure;
}

TEST(Differential, VThreadSliceIsInMatrixAndDivergenceFree)
{
    // The virtual-threading slice (N software threads over K < N
    // hardware contexts, ratios 2 and N, quanta 50 and 500, with and
    // without a context-switch cost) is part of the matrix by default:
    // switching it off must remove exactly its four runs, and with it
    // on a schedule-independent program must still match the reference
    // digest — preemption may move every thread, never any result.
    const std::string src = ".entry main\n"
                            ".shared slots, 4\n"
                            ".shared acc, 1\n"
                            "main:\n"
                            "    la t0, slots\n"
                            "    add t0, t0, a0\n"
                            "    mul t1, a0, 11\n"
                            "    add t1, t1, 3\n"
                            "    sts t1, 0(t0)\n"
                            "    li t2, 1\n"
                            "    faa zero, acc, t2\n"
                            "    mv v0, t1\n"
                            "    halt\n";
    DiffOptions withVt = quickOptions();
    DiffReport vtRep = runDifferential(src, withVt);
    EXPECT_TRUE(vtRep.ok()) << vtRep.summary();

    DiffOptions noVt = quickOptions();
    noVt.includeVThreads = false;
    DiffReport plainRep = runDifferential(src, noVt);
    EXPECT_TRUE(plainRep.ok()) << plainRep.summary();
    EXPECT_EQ(vtRep.machineRuns, plainRep.machineRuns + 4);
    EXPECT_EQ(vtRep.refDigest, plainRep.refDigest);
}

TEST(Differential, FusedSliceIsInMatrixAndDivergenceFree)
{
    // Every matrix run fuses aggressively (fuseThreshold = 1 by
    // default), and the fused slice re-runs two representative configs
    // with the superinstruction tier forced off: switching the slice
    // off must remove exactly its two runs, and with it on a schedule-
    // independent program must still match the reference digest — so
    // fused and decoded executions are both checked against the same
    // oracle in one matrix.
    const std::string src = ".entry main\n"
                            ".shared slots, 4\n"
                            ".shared acc, 1\n"
                            "main:\n"
                            "    la t0, slots\n"
                            "    add t0, t0, a0\n"
                            "    mul t1, a0, 7\n"
                            "    add t1, t1, 1\n"
                            "    sts t1, 0(t0)\n"
                            "    li t2, 1\n"
                            "    faa zero, acc, t2\n"
                            "    mv v0, t1\n"
                            "    halt\n";
    DiffOptions withFused = quickOptions();
    DiffReport fusedRep = runDifferential(src, withFused);
    EXPECT_TRUE(fusedRep.ok()) << fusedRep.summary();

    DiffOptions noFused = quickOptions();
    noFused.includeFused = false;
    DiffReport plainRep = runDifferential(src, noFused);
    EXPECT_TRUE(plainRep.ok()) << plainRep.summary();
    EXPECT_EQ(fusedRep.machineRuns, plainRep.machineRuns + 2);
    EXPECT_EQ(fusedRep.refDigest, plainRep.refDigest);
}

TEST(Differential, PinnedSeedsSurviveVirtualThreading)
{
    // A pinned-seed fuzz slice dedicated to the virtual-threading
    // layer: seeds disjoint from the other blocks (1..64, 501.., 701..),
    // vt slice armed by default, invariants on — including the
    // scheduler's own identities (save == restore == ctx cost x
    // preemptions, run-count identity with the preemption term).
    // Divergence here means preemptive time-multiplexing changed an
    // architectural result.
    FuzzOptions opts;
    opts.seeds = 32;
    opts.firstSeed = 801;
    opts.shrink = false;
    opts.diff.checkInvariants = true;
    opts.diff.includeVThreads = true;

    FuzzReport rep = runFuzzCampaign(opts);
    EXPECT_EQ(rep.seedsRun, 32);
    std::string firstFailure;
    if (!rep.ok())
        firstFailure = "seed " + std::to_string(rep.failures[0].seed) +
                       ": " + rep.failures[0].first.config + ": " +
                       rep.failures[0].first.detail;
    EXPECT_TRUE(rep.ok()) << firstFailure;
}

TEST(Differential, RacyProgramScreenedAsUnstable)
{
    // Last writer wins on one shared word and every thread reads it
    // back: the result depends on the schedule, so the two-quanta
    // reference screen must reject it before any machine run.
    const std::string src = ".entry main\n"
                            ".shared w, 1\n"
                            "main:\n"
                            "    la t0, w\n"
                            "    sts a0, 0(t0)\n"
                            "    lds t2, 0(t0)\n"
                            "    mv v0, t2\n"
                            "    halt\n";
    DiffReport rep = runDifferential(src, quickOptions());
    ASSERT_EQ(rep.divergences.size(), 1u) << rep.summary();
    EXPECT_EQ(rep.divergences[0].kind, DivergenceKind::Unstable);
    EXPECT_EQ(rep.machineRuns, 0);
}

TEST(Differential, ReferenceRunErrorIsReportedNotThrown)
{
    DiffReport rep = runDifferential(".entry main\nmain:\nLspin:\n"
                                     "    j Lspin\n",
                                     [] {
                                         DiffOptions o = quickOptions();
                                         o.ref.maxSteps = 10'000;
                                         return o;
                                     }());
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.divergences[0].kind, DivergenceKind::RunError);
}

TEST(Differential, FixedSeedBlockIsDivergenceFree)
{
    // 64 pinned seeds through generate -> full matrix, invariants on.
    // Any simulator or grouping-pass regression that changes results
    // (not just timing) fails here, in-tree, without the CI fuzz job.
    FuzzOptions opts;
    opts.seeds = 64;
    opts.firstSeed = 1;
    opts.shrink = false;  // diagnosis belongs to mtfuzz, not this test
    opts.diff.checkInvariants = true;

    FuzzReport rep = runFuzzCampaign(opts);
    EXPECT_EQ(rep.seedsRun, 64);
    EXPECT_GT(rep.machineRuns, 0);
    std::string firstFailure;
    if (!rep.ok())
        firstFailure = "seed " + std::to_string(rep.failures[0].seed) +
                       ": " + rep.failures[0].first.config + ": " +
                       rep.failures[0].first.detail;
    EXPECT_TRUE(rep.ok()) << firstFailure;
}

// ---------------------------------------------------------------------------
// Decoded-core identity block: pinned generator seeds through the
// pre-decoded execution core, per model, comparing the batched local-run
// fast path against forced instruction-at-a-time stepping (a null tracer
// disables batching without changing simulated behaviour). Digest,
// completion time and the metrics accounting identities must all hold on
// both paths — the machine-checkable form of the DESIGN.md §11
// observational-identity invariant.
// ---------------------------------------------------------------------------

namespace
{

class NullTracer : public Tracer
{
};

/** busy+stall+idle == finish and run-length mass == switches+threads. */
void
expectAccountingIdentities(const Machine &machineConst,
                           const MachineConfig &cfg,
                           const std::string &label)
{
    Machine &machine = const_cast<Machine &>(machineConst);
    for (int p = 0; p < cfg.numProcs; ++p) {
        const CpuStats &c = machine.processor(p).stats;
        EXPECT_EQ(c.busyCycles + c.stallCycles + c.idleCycles,
                  c.finishTime)
            << label << " cpu.p" << p;
        EXPECT_EQ(c.runLengths.count() + c.zeroRuns,
                  c.switchesTaken +
                      static_cast<std::uint64_t>(cfg.threadsPerProc))
            << label << " cpu.p" << p;
    }
}

} // namespace

TEST(Differential, DecodedCoreMatchesPerInstructionPathOnPinnedSeeds)
{
    // Seeds disjoint from FixedSeedBlockIsDivergenceFree (1..64) so the
    // two blocks cover different generated programs.
    constexpr std::uint64_t kFirstSeed = 501;
    constexpr int kSeeds = 8;

    for (int s = 0; s < kSeeds; ++s) {
        GenOptions gen;
        gen.seed = kFirstSeed + s;
        GeneratedProgram gp = generateProgram(gen);
        std::string src =
            gp.usesRuntime ? runtimePrelude() + gp.source : gp.source;
        Program raw = assemble(src);
        Program grouped = applyGroupingPass(raw);

        for (SwitchModel model : kAllModels) {
            // Raw code has no cswitch (including the prelude's spin
            // loops), so cswitch-driven models would livelock on it.
            const Program &prog =
                modelNeedsSwitchInstr(model) ? grouped : raw;
            MachineConfig cfg;
            cfg.numProcs = 2;
            cfg.threadsPerProc = gp.threads / 2;
            cfg.model = model;
            cfg.network = NetworkConfig{200};
            std::string label =
                "seed " + std::to_string(gp.seed) + " " +
                std::string(switchModelName(model));

            Machine fast(prog, cfg);
            fast.setPrintHandler([](const std::string &) {});
            RunResult fr = fast.run();

            NullTracer tracer;
            MachineConfig slowCfg = cfg;
            slowCfg.tracer = &tracer;
            Machine slow(prog, slowCfg);
            slow.setPrintHandler([](const std::string &) {});
            RunResult sr = slow.run();

            EXPECT_EQ(fr.digest, sr.digest)
                << label << ": " << fr.digest.hex() << " vs "
                << sr.digest.hex();
            EXPECT_EQ(fr.cycles, sr.cycles) << label;
            EXPECT_EQ(fr.cpu.instructions, sr.cpu.instructions) << label;
            EXPECT_EQ(fr.cpu.stallCycles, sr.cpu.stallCycles) << label;
            EXPECT_EQ(fr.cpu.idleCycles, sr.cpu.idleCycles) << label;
            EXPECT_EQ(fr.cpu.switchesTaken, sr.cpu.switchesTaken)
                << label;

            expectAccountingIdentities(fast, cfg, label + " [batched]");
            expectAccountingIdentities(slow, cfg, label + " [stepped]");
        }
    }
}

TEST(Differential, FusedTierMatchesDecodedPathOnPinnedSeeds)
{
    // The three-way identity for the superinstruction tier: pinned
    // generator seeds (disjoint from the 1..64, 501.., 701.. and 801..
    // blocks), per model, comparing a machine that fuses every span on
    // first touch against one with the tier forced off — digest,
    // completion time and the accounting identities must all hold on
    // both, and both digests must equal the reference interpreter's.
    // The machine-checkable form of the DESIGN.md §15 contract.
    constexpr std::uint64_t kFirstSeed = 901;
    constexpr int kSeeds = 8;

    std::uint64_t totalFusedInstructions = 0;
    for (int s = 0; s < kSeeds; ++s) {
        GenOptions gen;
        gen.seed = kFirstSeed + s;
        GeneratedProgram gp = generateProgram(gen);
        std::string src =
            gp.usesRuntime ? runtimePrelude() + gp.source : gp.source;
        Program raw = assemble(src);
        Program grouped = applyGroupingPass(raw);

        RefOptions refOpts;
        refOpts.threads = gp.threads;
        StateDigest refDigest = runReference(raw, refOpts).digest;

        for (SwitchModel model : kAllModels) {
            const Program &prog =
                modelNeedsSwitchInstr(model) ? grouped : raw;
            MachineConfig cfg;
            cfg.numProcs = 2;
            cfg.threadsPerProc = gp.threads / 2;
            cfg.model = model;
            cfg.network = NetworkConfig{200};
            cfg.fuseThreshold = 1;  // fuse everything on first touch
            std::string label =
                "seed " + std::to_string(gp.seed) + " " +
                std::string(switchModelName(model));

            Machine fused(prog, cfg);
            fused.setPrintHandler([](const std::string &) {});
            RunResult fr = fused.run();

            MachineConfig offCfg = cfg;
            offCfg.fuseSpans = false;
            Machine decodedOnly(prog, offCfg);
            decodedOnly.setPrintHandler([](const std::string &) {});
            RunResult dr = decodedOnly.run();

            EXPECT_EQ(fr.digest, dr.digest)
                << label << ": " << fr.digest.hex() << " vs "
                << dr.digest.hex();
            EXPECT_EQ(fr.digest, refDigest)
                << label << ": fused vs reference";
            EXPECT_EQ(fr.cycles, dr.cycles) << label;
            EXPECT_EQ(fr.cpu.instructions, dr.cpu.instructions) << label;
            EXPECT_EQ(fr.cpu.busyCycles, dr.cpu.busyCycles) << label;
            EXPECT_EQ(fr.cpu.stallCycles, dr.cpu.stallCycles) << label;
            EXPECT_EQ(fr.cpu.idleCycles, dr.cpu.idleCycles) << label;
            EXPECT_EQ(fr.cpu.switchesTaken, dr.cpu.switchesTaken)
                << label;
            EXPECT_FALSE(dr.hasFuseStats) << label;
            totalFusedInstructions += fr.fuse.instructions;

            expectAccountingIdentities(fused, cfg, label + " [fused]");
            expectAccountingIdentities(decodedOnly, offCfg,
                                       label + " [decoded]");
        }
    }
    // The block must actually have exercised the fused path (the
    // switch-every-cycle model never fuses; the other six models do).
    EXPECT_GT(totalFusedInstructions, 0u);
}
