#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "util/error.hpp"

using namespace mts;

TEST(Assembler, MinimalProgram)
{
    Program p = assemble("main:\n    halt\n");
    ASSERT_EQ(p.code.size(), 1u);
    EXPECT_EQ(p.code[0].op, Opcode::HALT);
    EXPECT_EQ(p.entry, 0);
}

TEST(Assembler, EntryDirective)
{
    Program p = assemble(R"(
.entry main
helper:
    ret
main:
    halt
)");
    EXPECT_EQ(p.entry, 1);
    EXPECT_EQ(p.code[p.entry].op, Opcode::HALT);
}

TEST(Assembler, SharedLayoutSequential)
{
    Program p = assemble(R"(
.shared a, 10
.shared b, 20
.shared c, 1
main:
    halt
)");
    EXPECT_EQ(p.sharedAddr("a"), kSharedBase);
    EXPECT_EQ(p.sharedAddr("b"), kSharedBase + 10);
    EXPECT_EQ(p.sharedAddr("c"), kSharedBase + 30);
    EXPECT_EQ(p.sharedWords, 31u);
}

TEST(Assembler, LocalLayoutStartsAt16)
{
    Program p = assemble(R"(
.local x, 4
.local y, 8
main:
    halt
)");
    EXPECT_EQ(p.symbols.at("x").value, 16);
    EXPECT_EQ(p.symbols.at("y").value, 20);
    EXPECT_EQ(p.localStaticWords, 12u);
}

TEST(Assembler, ConstDefaultAndOverride)
{
    AsmOptions opts;
    opts.defines["N"] = 99;
    Program p = assemble(".const N, 5\n.const M, 7\nmain:\n halt\n", opts);
    EXPECT_EQ(p.constValue("N"), 99);  // host -D wins
    EXPECT_EQ(p.constValue("M"), 7);
}

TEST(Assembler, ConstExpressions)
{
    Program p = assemble(R"(
.const A, 4
.const B, A*3+2
.const C, (A+B)*2
.const D, 1<<10
.const E, B/A
.const F, B%A
main:
    halt
)");
    EXPECT_EQ(p.constValue("B"), 14);
    EXPECT_EQ(p.constValue("C"), 36);
    EXPECT_EQ(p.constValue("D"), 1024);
    EXPECT_EQ(p.constValue("E"), 3);
    EXPECT_EQ(p.constValue("F"), 2);
}

TEST(Assembler, NegativeImmediates)
{
    Program p = assemble("main:\n    li r1, -42\n    halt\n");
    EXPECT_EQ(p.code[0].imm, -42);
}

TEST(Assembler, RegisterAliases)
{
    Program p = assemble("main:\n    add sp, ra, zero\n    halt\n");
    EXPECT_EQ(p.code[0].rd, 29);
    EXPECT_EQ(p.code[0].rs1, 31);
    EXPECT_EQ(p.code[0].rs2, 0);
}

TEST(Assembler, ImmediateVsRegisterOperand)
{
    Program p = assemble("main:\n    add r1, r2, r3\n    add r1, r2, 7\n"
                         "    halt\n");
    EXPECT_FALSE(p.code[0].useImm);
    EXPECT_EQ(p.code[0].rs2, 3);
    EXPECT_TRUE(p.code[1].useImm);
    EXPECT_EQ(p.code[1].imm, 7);
}

TEST(Assembler, MemoryOperandForms)
{
    Program p = assemble(R"(
.shared arr, 16
main:
    lds r1, 8(r2)
    lds r1, arr(r3)
    lds r1, arr+4(r0)
    lds r1, arr
    halt
)");
    EXPECT_EQ(p.code[0].imm, 8);
    EXPECT_EQ(p.code[0].rs1, 2);
    EXPECT_EQ(static_cast<Addr>(p.code[1].imm), kSharedBase);
    EXPECT_EQ(p.code[1].rs1, 3);
    EXPECT_EQ(static_cast<Addr>(p.code[2].imm), kSharedBase + 4);
    EXPECT_EQ(p.code[3].rs1, 0);
}

TEST(Assembler, BranchTargets)
{
    Program p = assemble(R"(
main:
    li r1, 0
loop:
    add r1, r1, 1
    blt r1, 10, loop
    halt
)");
    EXPECT_EQ(p.code[2].target, 1);
    EXPECT_TRUE(p.code[2].useImm);
}

TEST(Assembler, ForwardBranchTargets)
{
    Program p = assemble(R"(
main:
    beq r1, r0, end
    add r1, r1, 1
end:
    halt
)");
    EXPECT_EQ(p.code[0].target, 2);
}

TEST(Assembler, PseudoInstructions)
{
    Program p = assemble(R"(
main:
    mv r1, r2
    la r3, 100
    beqz r4, out
    bnez r4, out
    bgt r5, r6, out
    ble r5, r6, out
    call sub
    ret
out:
    halt
sub:
    ret
)");
    EXPECT_EQ(p.code[0].op, Opcode::ADD);
    EXPECT_TRUE(p.code[0].useImm);
    EXPECT_EQ(p.code[1].op, Opcode::LI);
    EXPECT_EQ(p.code[2].op, Opcode::BEQ);
    EXPECT_EQ(p.code[3].op, Opcode::BNE);
    // bgt a,b -> blt b,a
    EXPECT_EQ(p.code[4].op, Opcode::BLT);
    EXPECT_EQ(p.code[4].rs1, 6);
    EXPECT_EQ(p.code[4].rs2, 5);
    EXPECT_EQ(p.code[5].op, Opcode::BGE);
    EXPECT_EQ(p.code[6].op, Opcode::JAL);
    EXPECT_EQ(p.code[7].op, Opcode::JR);
    EXPECT_EQ(p.code[7].rs1, kRegRa);
}

TEST(Assembler, FloatImmediates)
{
    Program p = assemble("main:\n    fli f1, 2.5\n    fli f2, -0.5\n"
                         "    fli f3, 3\n    halt\n");
    EXPECT_DOUBLE_EQ(p.code[0].fimm, 2.5);
    EXPECT_DOUBLE_EQ(p.code[1].fimm, -0.5);
    EXPECT_DOUBLE_EQ(p.code[2].fimm, 3.0);
}

TEST(Assembler, FaaOperands)
{
    Program p = assemble(".shared c, 1\nmain:\n    faa r3, c(r0), r5\n"
                         "    halt\n");
    EXPECT_EQ(p.code[0].op, Opcode::FAA);
    EXPECT_EQ(p.code[0].rd, 3);
    EXPECT_EQ(p.code[0].rs2, 5);
}

TEST(Assembler, LabelsRecordedForListing)
{
    Program p = assemble("main:\n    halt\nextra:\n    halt\n");
    EXPECT_EQ(p.labelFor(0), "main");
    EXPECT_EQ(p.labelFor(1), "extra");
    std::string listing = p.listing();
    EXPECT_NE(listing.find("main:"), std::string::npos);
    EXPECT_NE(listing.find("halt"), std::string::npos);
}

TEST(Assembler, ErrorUnknownMnemonic)
{
    EXPECT_THROW(assemble("main:\n    frobnicate r1\n"), FatalError);
}

TEST(Assembler, ErrorUnknownLabel)
{
    EXPECT_THROW(assemble("main:\n    j nowhere\n"), FatalError);
}

TEST(Assembler, ErrorDuplicateLabel)
{
    EXPECT_THROW(assemble("a:\n    halt\na:\n    halt\n"), FatalError);
}

TEST(Assembler, ErrorDuplicateShared)
{
    EXPECT_THROW(assemble(".shared x, 1\n.shared x, 2\nmain:\n halt\n"),
                 FatalError);
}

TEST(Assembler, ErrorFpRegWhereIntExpected)
{
    EXPECT_THROW(assemble("main:\n    add r1, f2, r3\n    halt\n"),
                 FatalError);
}

TEST(Assembler, ErrorTrailingJunk)
{
    EXPECT_THROW(assemble("main:\n    halt r1\n"), FatalError);
}

TEST(Assembler, ErrorEmptyProgram)
{
    EXPECT_THROW(assemble("; nothing here\n"), FatalError);
}

TEST(Assembler, ErrorBadEntry)
{
    EXPECT_THROW(assemble(".entry nowhere\nmain:\n    halt\n"),
                 FatalError);
}

TEST(Assembler, ErrorLabelInExpression)
{
    EXPECT_THROW(assemble("main:\n    li r1, main\n    halt\n"),
                 FatalError);
}

TEST(Assembler, ErrorNegativeSharedSize)
{
    EXPECT_THROW(assemble(".shared x, 0-4\nmain:\n halt\n"), FatalError);
}

TEST(Assembler, ErrorDivisionByZeroInExpression)
{
    EXPECT_THROW(assemble(".const X, 5/0\nmain:\n halt\n"), FatalError);
}

TEST(Assembler, LdsdRequiresRoomForPair)
{
    EXPECT_THROW(assemble("main:\n    ldsd r31, 0(r1)\n    halt\n"),
                 FatalError);
    Program p = assemble("main:\n    ldsd r30, 0(r1)\n    halt\n");
    EXPECT_EQ(p.code[0].op, Opcode::LDSD);
}

TEST(Assembler, LabelOnOwnLineBindsToNextInstruction)
{
    Program p = assemble(R"(
main:
    li r1, 1
target:

    halt
)");
    EXPECT_EQ(p.symbols.at("target").value, 1);
}
