; Deliberately malformed program for the mtsim CLI error-path tests:
; the mnemonic on line 5 does not exist.
.entry main
main:
    bogus r1, r2
    halt
