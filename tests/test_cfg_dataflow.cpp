/**
 * Tests of the analysis layer below the checkers: CFG edge
 * construction, routine partitioning, cycle detection, and the
 * liveness / reaching-definitions instances of the dataflow engine.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "analysis/reaching_defs.hpp"
#include "test_helpers.hpp"

using namespace mts;

namespace
{

bool
hasEdge(const Cfg &cfg, std::int32_t from, std::int32_t to, EdgeKind kind)
{
    for (const CfgEdge &e : cfg.block(from).succs)
        if (e.block == to && e.kind == kind)
            return true;
    return false;
}

} // namespace

TEST(Cfg, BranchFallthroughJumpAndTerminatorEdges)
{
    Program p = assemble(R"(
main:
    li  r1, 0
loop:
    add r1, r1, 1
    blt r1, 10, loop
    j   end
mid:
    nop
end:
    halt
)");
    Cfg cfg(p);
    // main[0..1) loop[1..3) [3..4) mid[4..5) end[5..6)
    ASSERT_EQ(cfg.numBlocks(), 5);
    EXPECT_TRUE(hasEdge(cfg, 0, 1, EdgeKind::Fallthrough));
    EXPECT_TRUE(hasEdge(cfg, 1, 1, EdgeKind::Branch));
    EXPECT_TRUE(hasEdge(cfg, 1, 2, EdgeKind::Fallthrough));
    EXPECT_TRUE(hasEdge(cfg, 2, 4, EdgeKind::Jump));
    EXPECT_FALSE(hasEdge(cfg, 2, 3, EdgeKind::Fallthrough));  // after j
    EXPECT_TRUE(cfg.block(4).succs.empty());                  // halt
    // Preds mirror succs.
    ASSERT_EQ(cfg.block(4).preds.size(), 2u);  // from j and from mid
    EXPECT_TRUE(cfg.blockInCycle(1));
    EXPECT_FALSE(cfg.blockInCycle(0));
    EXPECT_NE(cfg.sccOf(0), cfg.sccOf(1));
}

TEST(Cfg, CallEdgesAndRoutinePartition)
{
    Program p = assemble(R"(
main:
    jal fn
    halt
fn:
    add r2, r4, r5
    jr  ra
orphan:
    sub r3, r3, 1
    jr  ra
)");
    Cfg cfg(p);
    // Blocks: main[0..1) [1..2) fn[2..4) orphan[4..6)
    ASSERT_EQ(cfg.numBlocks(), 4);
    EXPECT_TRUE(hasEdge(cfg, 0, 2, EdgeKind::Call));
    EXPECT_TRUE(hasEdge(cfg, 0, 1, EdgeKind::Fallthrough));
    EXPECT_TRUE(cfg.block(2).succs.empty());  // jr: routine return

    // Routine partition: entry, the jal target, and the labelled
    // routine nothing calls.
    auto entries = cfg.routineEntries();
    EXPECT_NE(std::find(entries.begin(), entries.end(), 0),
              entries.end());
    EXPECT_NE(std::find(entries.begin(), entries.end(), 2),
              entries.end());
    EXPECT_NE(std::find(entries.begin(), entries.end(), 3),
              entries.end());

    // Intraprocedural traversal of main skips into the callee but does
    // fall through across the jal.
    auto blocks = cfg.routineBlocks(0);
    EXPECT_NE(std::find(blocks.begin(), blocks.end(), 1), blocks.end());
    EXPECT_EQ(std::find(blocks.begin(), blocks.end(), 2), blocks.end());
}

TEST(Cfg, RoutineBlocksAreReversePostOrder)
{
    Program p = assemble(R"(
main:
    li  r1, 0
    beq r1, 0, right
    li  r2, 1
    j   join
right:
    li  r2, 2
join:
    halt
)");
    Cfg cfg(p);
    auto rpo = cfg.routineBlocks(cfg.entryBlock());
    ASSERT_FALSE(rpo.empty());
    EXPECT_EQ(rpo.front(), cfg.entryBlock());
    // join must come after both arms.
    auto pos = [&](std::int32_t b) {
        return std::find(rpo.begin(), rpo.end(), b) - rpo.begin();
    };
    std::int32_t join = cfg.blockOf(p.code.size() - 1);
    for (const CfgEdge &e : cfg.block(join).preds)
        EXPECT_LT(pos(e.block), pos(join));
}

TEST(Liveness, BackwardFlowThroughALoop)
{
    Program p = assemble(R"(
main:
    li  r1, 0
    li  r2, 10
loop:
    add r1, r1, 1
    blt r1, r2, loop
    halt
)");
    Cfg cfg(p);
    auto blocks = cfg.routineBlocks(cfg.entryBlock());
    auto live = computeLiveness(cfg, blocks, 0);
    // Before the loop header both the counter and the bound are live.
    std::int32_t loop = cfg.blockOf(2);
    EXPECT_TRUE(live.liveIn[loop] & regBit(intReg(1)));
    EXPECT_TRUE(live.liveIn[loop] & regBit(intReg(2)));
    // At program entry nothing is live (both are defined first).
    EXPECT_FALSE(live.liveIn[cfg.entryBlock()] & regBit(intReg(1)));
    // liveBefore at the branch still sees r2.
    EXPECT_TRUE(live.liveBefore(cfg, 3) & regBit(intReg(2)));
}

TEST(ReachingDefs, EntryPseudoDefsAndRedefinition)
{
    Program p = assemble(R"(
main:
    li  r1, 1
    beq r4, 0, skip
    li  r1, 2
skip:
    add r2, r1, r1
    halt
)");
    Cfg cfg(p);
    auto blocks = cfg.routineBlocks(cfg.entryBlock());
    auto rd = computeReachingDefs(cfg, blocks);
    // At the add, both writes of r1 reach (the join of the two paths).
    std::int32_t addPc = 3;
    ASSERT_EQ(p.code[addPc].op, Opcode::ADD);
    auto sites = rd.reachingAt(cfg, addPc, intReg(1));
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_EQ(sites[0].pc, 0);
    EXPECT_EQ(sites[1].pc, 2);
    // r4 is only defined by the entry pseudo-def.
    auto r4sites = rd.reachingAt(cfg, 1, intReg(4));
    ASSERT_EQ(r4sites.size(), 1u);
    EXPECT_EQ(r4sites[0].pc, -1);
}
