/**
 * @file
 * Tests for the architectural reference interpreter (src/verify/):
 * instruction semantics against hand-computed results, FAA atomicity
 * under round-robin interleaving, pair-load register writes, digest
 * determinism/sensitivity, and the error behaviour the differential
 * runner relies on.
 */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "verify/reference_interp.hpp"

using namespace mts;

namespace
{

RefResult
runRef(const std::string &src, RefOptions opts = {})
{
    return runReference(assemble(src), opts);
}

} // namespace

TEST(ReferenceInterp, AluChainMatchesHandComputation)
{
    RefResult r = runRef(".shared out, 1\n"
                         "main:\n"
                         "    li t0, 1000\n"
                         "    mul t0, t0, 41\n"   // 41000
                         "    add t0, t0, 7\n"    // 41007
                         "    div t1, t0, 9\n"    // 4556
                         "    rem t2, t0, 9\n"    // 3
                         "    sll t1, t1, 2\n"    // 18224
                         "    xor t0, t1, t2\n"   // 18227
                         "    sts t0, out\n"
                         "    mv v0, t0\n"
                         "    halt\n",
                         {.threads = 1});
    EXPECT_EQ(r.sharedImage[0], 18227u);
    EXPECT_EQ(r.threads[0].iregs[kRegRet0], 18227);
    EXPECT_TRUE(r.threads[0].halted);
}

TEST(ReferenceInterp, FpChainAndPrints)
{
    RefResult r = runRef("main:\n"
                         "    fli f1, 2.25\n"
                         "    fli f2, -4.0\n"
                         "    fabs f2, f2\n"
                         "    fsqrt f2, f2\n"    // 2.0
                         "    fmul f3, f1, f2\n" // 4.5
                         "    fprint f3\n"
                         "    fmv f0, f3\n"
                         "    halt\n",
                         {.threads = 1});
    EXPECT_DOUBLE_EQ(r.threads[0].fregs[0], 4.5);
    ASSERT_EQ(r.prints.size(), 1u);
    EXPECT_EQ(r.prints[0], "4.5");
}

TEST(ReferenceInterp, PairLoadWritesBothRegisters)
{
    RefResult r = runRef(".shared pair, 2\n"
                         "main:\n"
                         "    la t0, pair\n"
                         "    li t1, 111\n"
                         "    li t2, 222\n"
                         "    sts t1, 0(t0)\n"
                         "    sts t2, 1(t0)\n"
                         "    ldsd t3, 0(t0)\n"
                         "    mv v0, t3\n"
                         "    mv v1, t4\n"
                         "    halt\n",
                         {.threads = 1});
    EXPECT_EQ(r.threads[0].iregs[kRegRet0], 111);
    EXPECT_EQ(r.threads[0].iregs[kRegRet0 + 1], 222);
}

TEST(ReferenceInterp, FaaIsAtomicAcrossThreads)
{
    // 8 threads x 50 increments: any lost update would show in the sum.
    const std::string src = ".shared acc, 1\n"
                            ".const N, 50\n"
                            "main:\n"
                            "    li s1, N\n"
                            "    li t7, 1\n"
                            "Lloop:\n"
                            "    faa zero, acc, t7\n"
                            "    sub s1, s1, 1\n"
                            "    bnez s1, Lloop\n"
                            "    halt\n";
    for (std::uint64_t q : {1ull, 3ull, 7ull}) {
        RefResult r = runRef(src, {.threads = 8, .quantum = q});
        EXPECT_EQ(r.sharedImage[0], 400u) << "quantum " << q;
    }
}

TEST(ReferenceInterp, LiveFaaDeliversPreAddValue)
{
    RefResult r = runRef(".shared acc, 1\n"
                         "main:\n"
                         "    li t0, 5\n"
                         "    sts t0, acc\n"
                         "    li t2, 3\n"
                         "    faa t1, acc, t2\n"
                         "    mv v0, t1\n"
                         "    halt\n",
                         {.threads = 1});
    EXPECT_EQ(r.threads[0].iregs[kRegRet0], 5);  // old value
    EXPECT_EQ(r.sharedImage[0], 8u);             // 5 + 3
}

TEST(ReferenceInterp, DigestDeterministicAndScheduleStable)
{
    // Disjoint per-thread slots: interleaving-independent by design.
    const std::string src = ".shared out, 4\n"
                            "main:\n"
                            "    la t0, out\n"
                            "    add t0, t0, a0\n"
                            "    mul t1, a0, 17\n"
                            "    add t1, t1, 3\n"
                            "    sts t1, 0(t0)\n"
                            "    mv v0, t1\n"
                            "    halt\n";
    RefResult a = runRef(src, {.threads = 4, .quantum = 1});
    RefResult b = runRef(src, {.threads = 4, .quantum = 1});
    RefResult c = runRef(src, {.threads = 4, .quantum = 5});
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.digest, c.digest);
    EXPECT_EQ(a.digest.hex(), b.digest.hex());
}

TEST(ReferenceInterp, DigestSensitiveToSingleValueChange)
{
    const char *tmpl = ".shared out, 1\n"
                       "main:\n"
                       "    li t0, %d\n"
                       "    sts t0, out\n"
                       "    halt\n";
    char s1[128], s2[128];
    std::snprintf(s1, sizeof(s1), tmpl, 1234);
    std::snprintf(s2, sizeof(s2), tmpl, 1235);
    RefOptions one{.threads = 1};
    EXPECT_NE(runRef(s1, one).digest, runRef(s2, one).digest);
}

TEST(ReferenceInterp, DigestSensitiveToTerminationRegisters)
{
    const std::string base = "main:\n    li v0, 7\n    halt\n";
    const std::string other = "main:\n    li v0, 8\n    halt\n";
    RefOptions one{.threads = 1};
    EXPECT_NE(runRef(base, one).digest, runRef(other, one).digest);
}

TEST(ReferenceInterp, MatchesMachineDigestOnIndependentProgram)
{
    // The whole subsystem in miniature: the same program, run on the
    // reference and on a real Machine, must produce one digest.
    const std::string src = ".shared out, 2\n"
                            "main:\n"
                            "    la t0, out\n"
                            "    add t0, t0, a0\n"
                            "    li t1, 29\n"
                            "    mul t1, t1, 3\n"
                            "    sts t1, 0(t0)\n"
                            "    mv v0, t1\n"
                            "    fli f0, 1.5\n"
                            "    halt\n";
    Program prog = assemble(src);
    RefResult ref = runReference(prog, {.threads = 2});

    MachineConfig cfg = test::miniConfig();
    cfg.numProcs = 2;
    cfg.model = SwitchModel::SwitchOnUse;
    Machine machine(prog, cfg);
    RunResult r = machine.run();
    EXPECT_EQ(r.digest, ref.digest);
}

TEST(ReferenceInterp, DivByZeroIsFatal)
{
    EXPECT_THROW(runRef("main:\n"
                        "    li t0, 1\n"
                        "    div t1, t0, zero\n"
                        "    halt\n",
                        {.threads = 1}),
                 FatalError);
}

TEST(ReferenceInterp, StepBudgetCatchesLivelock)
{
    RefOptions opts{.threads = 1};
    opts.maxSteps = 1000;
    EXPECT_THROW(runRef("main:\nLspin:\n    j Lspin\n", opts), FatalError);
}
