/**
 * End-to-end integration: every benchmark application must compute
 * verified-correct results under every machine model and a spread of
 * machine shapes. Each case exercises assembler, optimizer, processor,
 * memory system, coherence and runtime together.
 */
#include <gtest/gtest.h>

#include "test_helpers.hpp"

using namespace mts;
using namespace mts::test;

namespace
{

struct AppCase
{
    const App *app;
    SwitchModel model;
    int procs;
    int threads;
    Cycle latency;
};

std::string
caseName(const ::testing::TestParamInfo<AppCase> &info)
{
    std::string name = info.param.app->name() + "_";
    name += switchModelName(info.param.model);
    name += "_p" + std::to_string(info.param.procs) + "t" +
            std::to_string(info.param.threads) + "l" +
            std::to_string(info.param.latency);
    for (char &c : name)
        if (c == '-')
            c = '_';
    return name;
}

std::vector<AppCase>
makeCases()
{
    std::vector<AppCase> cases;
    for (const App *app : allApps()) {
        cases.push_back({app, SwitchModel::Ideal, 1, 1, 0});
        cases.push_back({app, SwitchModel::Ideal, 8, 1, 0});
        cases.push_back({app, SwitchModel::SwitchOnLoad, 4, 4, 200});
        cases.push_back({app, SwitchModel::SwitchOnUse, 2, 4, 200});
        cases.push_back({app, SwitchModel::ExplicitSwitch, 4, 4, 200});
        cases.push_back({app, SwitchModel::ExplicitSwitch, 2, 2, 400});
        cases.push_back({app, SwitchModel::SwitchOnMiss, 2, 4, 200});
        cases.push_back({app, SwitchModel::ConditionalSwitch, 4, 4, 200});
    }
    return cases;
}

} // namespace

class AppIntegration : public ::testing::TestWithParam<AppCase>
{
};

TEST_P(AppIntegration, ComputesVerifiedResult)
{
    const AppCase &c = GetParam();
    const App &app = *c.app;
    AsmOptions opts = app.options(0.08);
    Program prog = assemble(app.source(), opts);
    Program chosen = modelNeedsSwitchInstr(c.model)
                         ? applyGroupingPass(prog)
                         : prog;

    MachineConfig cfg;
    cfg.model = c.model;
    cfg.numProcs = c.procs;
    cfg.threadsPerProc = c.threads;
    cfg.network.roundTrip = c.latency;
    cfg.maxCycles = 400'000'000;

    Machine machine(chosen, cfg);
    app.init(machine);
    RunResult r = machine.run();
    AppCheckResult chk = app.check(machine);
    EXPECT_TRUE(chk.ok) << chk.message;
    EXPECT_GT(r.cpu.instructions, 0u);
    EXPECT_GT(r.cycles, 0u);
    // Cycle accounting sanity: busy cycles never exceed total capacity.
    EXPECT_LE(r.cpu.busyCycles,
              r.cycles * static_cast<Cycle>(c.procs));
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllModels, AppIntegration,
                         ::testing::ValuesIn(makeCases()), caseName);

TEST(AppRegistry, SevenAppsInTableOrder)
{
    const auto &apps = allApps();
    ASSERT_EQ(apps.size(), 7u);
    EXPECT_EQ(apps[0]->name(), "sieve");
    EXPECT_EQ(apps[1]->name(), "blkmat");
    EXPECT_EQ(apps[2]->name(), "sor");
    EXPECT_EQ(apps[3]->name(), "ugray");
    EXPECT_EQ(apps[4]->name(), "water");
    EXPECT_EQ(apps[5]->name(), "locus");
    EXPECT_EQ(apps[6]->name(), "mp3d");
}

TEST(AppRegistry, FindByNameAndUnknownFatal)
{
    EXPECT_EQ(findApp("mp3d").name(), "mp3d");
    EXPECT_THROW(findApp("doom"), FatalError);
}

TEST(AppRegistry, DescriptionsAndProcsPopulated)
{
    for (const App *app : allApps()) {
        EXPECT_FALSE(app->description().empty()) << app->name();
        EXPECT_GT(app->tableProcs(), 0) << app->name();
        EXPECT_FALSE(app->source().empty());
    }
}

TEST(AppScaling, ScaleChangesProblemSize)
{
    AsmOptions small = sieveApp().options(0.1);
    AsmOptions big = sieveApp().options(1.0);
    EXPECT_LT(small.defines.at("N"), big.defines.at("N"));
}

TEST(AppScaling, GroupEstimateModeRunsCorrectly)
{
    // §5.2 estimator on explicit-switch code (Table 6 machinery).
    const App &app = locusApp();
    AsmOptions opts = app.options(0.08);
    Program prog = applyGroupingPass(assemble(app.source(), opts));
    MachineConfig cfg;
    cfg.model = SwitchModel::ExplicitSwitch;
    cfg.numProcs = 2;
    cfg.threadsPerProc = 4;
    cfg.groupEstimate = true;
    Machine machine(prog, cfg);
    app.init(machine);
    RunResult r = machine.run();
    AppCheckResult chk = app.check(machine);
    EXPECT_TRUE(chk.ok) << chk.message;
    // locus walks consecutive grid cells: plenty of estimate hits.
    EXPECT_GT(r.estimateHitRate(), 0.3);
}
