/**
 * @file
 * Virtual-threading layer tests: the run queue and its round-robin
 * policy in isolation, the scheduler's accounting identities (quantum
 * preemption, block-swap requeueing, halt installs), the N == K
 * equivalence theorem (with as many software threads as hardware
 * contexts and zero context-switch cost, the layer must be
 * cycle-identical to the 1:1 machine on every switch model), and a
 * many-processor oversubscribed run driven to a verified result.
 */
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "asm/assembler.hpp"
#include "opt/grouping_pass.hpp"
#include "sim/machine.hpp"
#include "sim/run_queue.hpp"
#include "trace/tracer.hpp"
#include "verify/fuzz.hpp"

using namespace mts;

// ---------------------------------------------------------------------------
// Run queue + policy in isolation.
// ---------------------------------------------------------------------------

TEST(RunQueue, RoundRobinIsFifoWhenAllReady)
{
    RoundRobinPolicy policy;
    RunQueue q(policy);
    q.enqueue(3, 0);
    q.enqueue(1, 0);
    q.enqueue(2, 0);
    ASSERT_EQ(q.size(), 3u);

    // All ready: strict insertion order, regardless of thread ids.
    EXPECT_EQ(q.take(q.pick(10)).thread, 3);
    EXPECT_EQ(q.take(q.pick(10)).thread, 1);
    EXPECT_EQ(q.take(q.pick(10)).thread, 2);
    EXPECT_TRUE(q.empty());
}

TEST(RunQueue, RoundRobinPrefersOldestReadyThenEarliestWakeup)
{
    RoundRobinPolicy policy;
    RunQueue q(policy);
    q.enqueue(0, 100);
    q.enqueue(1, 5);
    q.enqueue(2, 50);

    // Only thread 1 is ready at cycle 10.
    EXPECT_EQ(q.entries()[q.pick(10)].thread, 1);
    // Both 1 and 2 are ready at cycle 60; 1 is older.
    EXPECT_EQ(q.entries()[q.pick(60)].thread, 1);
    // Nobody ready at cycle 0: earliest wakeup (thread 1) wins.
    EXPECT_EQ(q.entries()[q.pick(0)].thread, 1);
    EXPECT_EQ(q.minReadyAt(), 5u);

    // Wakeup ties break toward the older entry.
    RunQueue tie(policy);
    tie.enqueue(7, 40);
    tie.enqueue(8, 40);
    EXPECT_EQ(tie.entries()[tie.pick(0)].thread, 7);
}

// ---------------------------------------------------------------------------
// Scheduler accounting on real machines.
// ---------------------------------------------------------------------------

namespace
{

/** Records every scheduler event the processor emits. */
class SchedEventLog : public Tracer
{
  public:
    struct Event
    {
        Cycle cycle;
        SchedEventKind kind;
        std::uint32_t gid;
        Cycle detail;
    };
    std::vector<Event> events;

    void
    onSchedEvent(Cycle cycle, std::uint16_t, SchedEventKind kind,
                 std::uint32_t gid, Cycle detail) override
    {
        events.push_back({cycle, kind, gid, detail});
    }

    std::vector<std::uint32_t>
    gids(SchedEventKind kind) const
    {
        std::vector<std::uint32_t> out;
        for (const Event &e : events)
            if (e.kind == kind)
                out.push_back(e.gid);
        return out;
    }
};

/** Two software threads of pure local compute on one context. */
const char *kComputeSrc = ".entry main\n"
                          ".shared out, 8\n"
                          "main:\n"
                          "    li t0, 0\n"
                          "    li t1, 600\n"
                          "Lloop:\n"
                          "    add t0, t0, 1\n"
                          "    bne t0, t1, Lloop\n"
                          "    la t2, out\n"
                          "    add t2, t2, a0\n"
                          "    sts t0, 0(t2)\n"
                          "    mv v0, t0\n"
                          "    halt\n";

MachineConfig
vtConfig(int procs, int contexts, int swThreads, Cycle quantum,
         Cycle ctxCost)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.threadsPerProc = contexts;
    cfg.swThreadsPerProc = swThreads;
    cfg.quantumCycles = quantum;
    cfg.ctxSwitchCost = ctxCost;
    cfg.model = SwitchModel::SwitchOnLoad;
    cfg.network.roundTrip = 200;
    cfg.maxCycles = 50'000'000;
    return cfg;
}

} // namespace

TEST(VThreads, QuantumPreemptionPaysSaveAndRestoreExactly)
{
    // Two compute-bound threads share one context: only the timer can
    // multiplex them, and every preemption must pay the save and the
    // restore half of the context-switch cost — nothing else may.
    Program prog = assemble(kComputeSrc);
    Machine machine(prog, vtConfig(1, 1, 2, 50, 4));
    RunResult r = machine.run();

    ASSERT_TRUE(r.hasSchedStats);
    EXPECT_GT(r.sched.preemptions, 0u);
    EXPECT_EQ(r.sched.saveCycles, 4 * r.sched.preemptions);
    EXPECT_EQ(r.sched.restoreCycles, 4 * r.sched.preemptions);
    // Pure compute never blocks on memory, so the timer is the only
    // switch source; both halts find the queue in its terminal state.
    EXPECT_EQ(r.sched.blockSwitches, 0u);
    EXPECT_EQ(r.sched.haltInstalls, 1u);
    EXPECT_EQ(r.sched.requeues, r.sched.preemptions);

    // Both threads ran to completion on the one context.
    EXPECT_EQ(machine.sharedMem().readInt(prog.sharedAddr("out")), 600);
    EXPECT_EQ(machine.sharedMem().readInt(prog.sharedAddr("out") + 1),
              600);

    // Cycle accounting still closes with the scheduler in the loop.
    const CpuStats &c = machine.processor(0).stats;
    EXPECT_EQ(c.busyCycles + c.stallCycles + c.idleCycles, c.finishTime);
    EXPECT_EQ(c.runLengths.count() + c.zeroRuns,
              c.switchesTaken + r.sched.preemptions + 2);
}

TEST(VThreads, TimerInstallsFollowFifoOrder)
{
    // Three compute threads on one context, zero cost: the round-robin
    // installs must cycle t1, t2, t0, t1, t2, t0, ... (threads 1 and 2
    // start queued, thread 0 starts installed).
    Program prog = assemble(kComputeSrc);
    SchedEventLog log;
    MachineConfig cfg = vtConfig(1, 1, 3, 50, 0);
    cfg.tracer = &log;
    Machine machine(prog, cfg);
    machine.run();

    std::vector<std::uint32_t> installs =
        log.gids(SchedEventKind::Install);
    ASSERT_GE(installs.size(), 6u);
    const std::uint32_t want[6] = {1, 2, 0, 1, 2, 0};
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(installs[static_cast<std::size_t>(i)], want[i])
            << "install #" << i;

    // Zero cost: save/restore events exist but carry no cycles.
    for (const SchedEventLog::Event &e : log.events)
        if (e.kind == SchedEventKind::Save ||
            e.kind == SchedEventKind::Restore)
            EXPECT_EQ(e.detail, 0u);
}

TEST(VThreads, BlockedThreadsRequeueAndWake)
{
    // Threads that block on remote loads swap out for free (the save
    // hides under the memory latency): every scheduler departure is
    // either a block swap or a preemption, and each requeues exactly
    // one thread. Halts drain the queue exactly N - K times.
    const char *src = ".entry main\n"
                      ".shared data, 16\n"
                      ".shared out, 4\n"
                      "main:\n"
                      "    li t0, 0\n"
                      "    li t1, 12\n"
                      "    li t3, 0\n"
                      "Lloop:\n"
                      "    la t2, data\n"
                      "    add t2, t2, t0\n"
                      "    lds t4, 0(t2)\n"
                      "    add t3, t3, t4\n"
                      "    add t0, t0, 1\n"
                      "    bne t0, t1, Lloop\n"
                      "    la t2, out\n"
                      "    add t2, t2, a0\n"
                      "    sts t3, 0(t2)\n"
                      "    mv v0, t3\n"
                      "    halt\n";
    Program prog = assemble(src);
    Machine machine(prog, vtConfig(1, 2, 4, 500, 0));
    RunResult r = machine.run();

    ASSERT_TRUE(r.hasSchedStats);
    EXPECT_GT(r.sched.blockSwitches, 0u);
    EXPECT_EQ(r.sched.requeues,
              r.sched.blockSwitches + r.sched.preemptions);
    EXPECT_EQ(r.sched.haltInstalls, 2u);
    EXPECT_EQ(r.cycles, machine.processor(0).stats.finishTime);
}

// ---------------------------------------------------------------------------
// N == K equivalence: with as many software threads as contexts the
// queue is empty from construction to halt, so every scheduler hook is
// a dead branch and the machine must be cycle-identical to 1:1 — on
// every switch model, for both program variants, at zero switch cost.
// ---------------------------------------------------------------------------

TEST(VThreads, NEqualsKIsCycleIdenticalOnAllModels)
{
    constexpr std::uint64_t kFirstSeed = 901;
    constexpr int kSeeds = 4;

    for (int s = 0; s < kSeeds; ++s) {
        GenOptions gen;
        gen.seed = kFirstSeed + s;
        GeneratedProgram gp = generateProgram(gen);
        std::string src =
            gp.usesRuntime ? runtimePrelude() + gp.source : gp.source;
        Program raw = assemble(src);
        Program grouped = applyGroupingPass(raw);

        for (SwitchModel model : kAllModels) {
            const Program &prog =
                modelNeedsSwitchInstr(model) ? grouped : raw;
            MachineConfig cfg;
            cfg.numProcs = 2;
            cfg.threadsPerProc = gp.threads / 2;
            cfg.model = model;
            cfg.network = NetworkConfig{200};
            std::string label =
                "seed " + std::to_string(gp.seed) + " " +
                std::string(switchModelName(model));

            Machine plain(prog, cfg);
            plain.setPrintHandler([](const std::string &) {});
            RunResult pr = plain.run();

            MachineConfig vtCfg = cfg;
            vtCfg.swThreadsPerProc = cfg.threadsPerProc;
            vtCfg.quantumCycles = 100;
            vtCfg.ctxSwitchCost = 0;
            Machine vt(prog, vtCfg);
            vt.setPrintHandler([](const std::string &) {});
            RunResult vr = vt.run();

            EXPECT_EQ(pr.digest, vr.digest)
                << label << ": " << pr.digest.hex() << " vs "
                << vr.digest.hex();
            EXPECT_EQ(pr.cycles, vr.cycles) << label;
            EXPECT_EQ(pr.cpu.instructions, vr.cpu.instructions) << label;
            EXPECT_EQ(pr.cpu.busyCycles, vr.cpu.busyCycles) << label;
            EXPECT_EQ(pr.cpu.stallCycles, vr.cpu.stallCycles) << label;
            EXPECT_EQ(pr.cpu.idleCycles, vr.cpu.idleCycles) << label;
            EXPECT_EQ(pr.cpu.switchesTaken, vr.cpu.switchesTaken)
                << label;

            // The layer is on (stats published) but never acted.
            ASSERT_TRUE(vr.hasSchedStats) << label;
            EXPECT_EQ(vr.sched.preemptions, 0u) << label;
            EXPECT_EQ(vr.sched.blockSwitches, 0u) << label;
            EXPECT_EQ(vr.sched.haltInstalls, 0u) << label;
            EXPECT_EQ(vr.sched.requeues, 0u) << label;
            EXPECT_EQ(vr.sched.saveCycles, 0u) << label;
            EXPECT_EQ(vr.sched.restoreCycles, 0u) << label;
            EXPECT_FALSE(pr.hasSchedStats) << label;
        }
    }
}

// ---------------------------------------------------------------------------
// Scale: a heavily oversubscribed multiprocessor still computes the
// verified result.
// ---------------------------------------------------------------------------

TEST(VThreads, OversubscribedSieveRunsToVerifiedResult)
{
    // 64 processors x 2 contexts x 8 software threads (N/K = 4, 512
    // threads total), costed preemption: the application's own checker
    // must pass and the scheduler identities must close machine-wide.
    const App &app = findApp("sieve");
    AsmOptions opts = app.options(0.08);
    Program prog = assemble(app.source(), opts);

    MachineConfig cfg = vtConfig(64, 2, 8, 100, 2);
    cfg.maxCycles = 400'000'000;
    Machine machine(prog, cfg);
    app.init(machine);
    RunResult r = machine.run();

    AppCheckResult chk = app.check(machine);
    EXPECT_TRUE(chk.ok) << chk.message;
    ASSERT_TRUE(r.hasSchedStats);
    EXPECT_EQ(r.sched.saveCycles, 2 * r.sched.preemptions);
    EXPECT_EQ(r.sched.restoreCycles, 2 * r.sched.preemptions);
    EXPECT_EQ(r.sched.requeues,
              r.sched.blockSwitches + r.sched.preemptions);
    // Every processor drains its queue through halt installs.
    EXPECT_EQ(r.sched.haltInstalls, 64u * 6u);
    EXPECT_GT(r.cpu.instructions, 0u);
}
