/**
 * Translation validation of the grouping pass: legitimate pass output
 * must verify clean, and each seeded miscompile must be caught with the
 * right diagnostic.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/verify_grouping.hpp"
#include "opt/basic_blocks.hpp"
#include "test_helpers.hpp"

using namespace mts;

namespace
{

const char *kSource = R"(
.shared u, 100
.shared total, 1
main:
    li   r1, u
    li   r9, total
    lds  r2, 0(r1)
    lds  r3, 1(r1)
    add  r5, r2, r3
    sts  r5, 0(r9)
    lds  r6, 2(r1)
    blt  r6, r5, main
    halt
)";

/** Pass output for the fixture source (verified clean first). */
Program
groupedFixture(Program &orig)
{
    orig = assemble(kSource);
    return applyGroupingPass(orig);
}

/** True when some "translation" finding mentions @p needle. */
bool
caught(const LintReport &r, const std::string &needle)
{
    for (const Diag &d : r.diags())
        if (d.checker == "translation" &&
            d.severity == Severity::Error &&
            d.message.find(needle) != std::string::npos)
            return true;
    return false;
}

std::size_t
indexOf(const Program &p, Opcode op, std::size_t nth = 0)
{
    for (std::size_t i = 0; i < p.code.size(); ++i)
        if (p.code[i].op == op && nth-- == 0)
            return i;
    ADD_FAILURE() << "opcode not found";
    return 0;
}

} // namespace

TEST(VerifyGrouping, RealPassOutputVerifies)
{
    Program orig;
    Program g = groupedFixture(orig);
    LintReport r;
    EXPECT_TRUE(verifyGroupingPass(orig, g, r));
    EXPECT_EQ(r.count(Severity::Error), 0u);
}

TEST(VerifyGrouping, EveryAppVerifies)
{
    for (const App *app : allApps()) {
        SCOPED_TRACE(app->name());
        Program p = assemble(app->source(), app->options(1.0));
        Program g = applyGroupingPass(p);
        LintReport r;
        EXPECT_TRUE(verifyGroupingPass(p, g, r))
            << r.renderText(g);
    }
}

TEST(VerifyGrouping, SwapDependentInstructionsCaught)
{
    // Swap the add with the load producing its operand (RAW violated).
    Program orig;
    Program g = groupedFixture(orig);
    std::size_t add = indexOf(g, Opcode::ADD);
    std::size_t lds = add - 1;
    ASSERT_TRUE(isSharedLoad(g.code[lds].op) ||
                g.code[lds].op == Opcode::CSWITCH);
    // Find the last shared load before the add and swap them.
    while (!isSharedLoad(g.code[lds].op))
        --lds;
    std::swap(g.code[lds], g.code[add]);
    LintReport r;
    EXPECT_FALSE(verifyGroupingPass(orig, g, r));
    EXPECT_TRUE(caught(r, "dependence violated")) << r.renderText(g);
}

TEST(VerifyGrouping, DroppedCswitchCaught)
{
    Program orig;
    Program g = groupedFixture(orig);
    std::size_t sw = indexOf(g, Opcode::CSWITCH);
    g.code.erase(g.code.begin() + static_cast<std::ptrdiff_t>(sw));
    for (Instruction &inst : g.code)
        if (inst.target > static_cast<std::int32_t>(sw))
            --inst.target;
    if (g.entry > static_cast<std::int32_t>(sw))
        --g.entry;
    LintReport r;
    EXPECT_FALSE(verifyGroupingPass(orig, g, r));
    // The load group is no longer committed before its results are
    // consumed (or before the block ends).
    EXPECT_TRUE(caught(r, "cswitch") || caught(r, "in-flight"))
        << r.renderText(g);
}

TEST(VerifyGrouping, ReorderAcrossSharedStoreCaught)
{
    // Move the load of 2(r1) above the store it must follow (the
    // pessimistic alias rule orders every shared load after any shared
    // store).
    Program orig;
    Program g = groupedFixture(orig);
    std::size_t sts = indexOf(g, Opcode::STS);
    // The next shared load after the store.
    std::size_t lds = sts + 1;
    while (lds < g.code.size() && !isSharedLoad(g.code[lds].op))
        ++lds;
    ASSERT_LT(lds, g.code.size());
    Instruction moved = g.code[lds];
    g.code.erase(g.code.begin() + static_cast<std::ptrdiff_t>(lds));
    g.code.insert(g.code.begin() + static_cast<std::ptrdiff_t>(sts),
                  moved);
    LintReport r;
    EXPECT_FALSE(verifyGroupingPass(orig, g, r));
    EXPECT_TRUE(caught(r, "dependence violated") ||
                caught(r, "cswitch") || caught(r, "in-flight"))
        << r.renderText(g);
}

TEST(VerifyGrouping, DuplicatedInstructionCaught)
{
    Program orig;
    Program g = groupedFixture(orig);
    std::size_t add = indexOf(g, Opcode::ADD);
    g.code.insert(g.code.begin() + static_cast<std::ptrdiff_t>(add),
                  g.code[add]);
    for (Instruction &inst : g.code)
        if (inst.target >= static_cast<std::int32_t>(add))
            ++inst.target;
    LintReport r;
    EXPECT_FALSE(verifyGroupingPass(orig, g, r));
    EXPECT_TRUE(caught(r, "invented or duplicated")) << r.renderText(g);
}

TEST(VerifyGrouping, DroppedInstructionCaught)
{
    Program orig;
    Program g = groupedFixture(orig);
    std::size_t add = indexOf(g, Opcode::ADD);
    g.code.erase(g.code.begin() + static_cast<std::ptrdiff_t>(add));
    for (Instruction &inst : g.code)
        if (inst.target > static_cast<std::int32_t>(add))
            --inst.target;
    LintReport r;
    EXPECT_FALSE(verifyGroupingPass(orig, g, r));
    EXPECT_TRUE(caught(r, "dropped")) << r.renderText(g);
}

TEST(VerifyGrouping, RewrittenOperandCaught)
{
    // Changing a register operand shows up as one instruction dropped
    // plus one invented.
    Program orig;
    Program g = groupedFixture(orig);
    std::size_t add = indexOf(g, Opcode::ADD);
    g.code[add].rs2 = 7;
    LintReport r;
    EXPECT_FALSE(verifyGroupingPass(orig, g, r));
    EXPECT_TRUE(caught(r, "dropped")) << r.renderText(g);
    EXPECT_TRUE(caught(r, "invented or duplicated")) << r.renderText(g);
}

TEST(VerifyGrouping, RetargetedBranchCaught)
{
    Program orig;
    Program g = groupedFixture(orig);
    std::size_t br = indexOf(g, Opcode::BLT);
    // Redirect the loop branch at some other block leader.
    auto blocks = findBasicBlocks(g);
    ASSERT_GE(blocks.size(), 2u);
    std::int32_t wrong = blocks.back().begin;
    ASSERT_NE(g.code[br].target, wrong);
    g.code[br].target = wrong;
    LintReport r;
    EXPECT_FALSE(verifyGroupingPass(orig, g, r));
    EXPECT_TRUE(caught(r, "branch target")) << r.renderText(g);
}
