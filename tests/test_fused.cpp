/**
 * @file
 * Superinstruction tier (src/isa/fused.*, DESIGN.md §15): the symbolic
 * scoreboard walk must reproduce the decoded path's static timing, the
 * guards must bail out exactly when fused assumptions break (pending
 * watermark at entry, quantum deadline inside the span, tracer armed),
 * and the shared FuseCache must publish identical spans to concurrent
 * Machines. All execution tests close the loop against a fuse-off run:
 * same digest, same cycles, same counters.
 */
#include <thread>

#include <gtest/gtest.h>

#include "isa/fused.hpp"
#include "test_helpers.hpp"

using namespace mts;
using namespace mts::test;

namespace
{

/** Tracer that records nothing: disables span batching and fusion. */
class NullTracer : public Tracer
{
};

/** The CpuStats fields a fused run must reproduce bit for bit. */
void
expectSameStats(const CpuStats &a, const CpuStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    EXPECT_EQ(a.idleCycles, b.idleCycles);
    EXPECT_EQ(a.switchesTaken, b.switchesTaken);
    EXPECT_EQ(a.switchesSkipped, b.switchesSkipped);
    EXPECT_EQ(a.zeroRuns, b.zeroRuns);
    EXPECT_EQ(a.finishTime, b.finishTime);
    EXPECT_EQ(a.runLengths.count(), b.runLengths.count());
    EXPECT_EQ(a.runLengths.sum(), b.runLengths.sum());
}

} // namespace

// Hand-computed static schedule: li (lat 1), add (1), mul (12), a
// dependent add that must absorb the mul stall, and a trailing mul
// whose result outlives the span (exit scoreboard entry).
TEST(Fused, CompileComputesStaticTiming)
{
    Program prog = assemble("main:\n"
                            "    li r8, 7\n"       // issues at 0
                            "    add r9, r8, 5\n"  // issues at 1
                            "    mul r10, r9, 3\n" // issues at 2, ready 14
                            "    add r11, r10, 1\n"// stalls to 14
                            "    mul r12, r8, 9\n" // issues at 15, ready 27
                            "    halt\n");
    DecodedProgram d = decodeProgram(prog.code);
    ASSERT_EQ(d[0].localRun, 5);

    FusedSpan fs = fuseSpan(d, 0);
    EXPECT_EQ(fs.startPc, 0);
    EXPECT_EQ(fs.len, 5u);
    ASSERT_EQ(fs.issueOff.size(), 5u);
    EXPECT_EQ(fs.issueOff[0], 0u);
    EXPECT_EQ(fs.issueOff[1], 1u);
    EXPECT_EQ(fs.issueOff[2], 2u);
    EXPECT_EQ(fs.issueOff[3], 14u);  // waits out mul r10 (latency 12)
    EXPECT_EQ(fs.issueOff[4], 15u);
    EXPECT_EQ(fs.totalCycles, 16u);  // last issue + 1
    EXPECT_EQ(fs.stallCycles, 11u);  // 14 - 3 in-order issue slots
    EXPECT_EQ(fs.sbMaxOff, 27);      // mul r12 ready time
    // Only r12 is still pending at exit; every earlier result ripened
    // inside the span and its scoreboard write is elided.
    ASSERT_EQ(fs.exitDefs.size(), 1u);
    EXPECT_EQ(fs.exitDefs[0].reg, intReg(12));
    EXPECT_EQ(fs.exitDefs[0].readyOff, 27u);
}

TEST(Fused, CompileStopsAtSharedBoundary)
{
    // Fusion may never cross a shared access: the span is exactly the
    // local run, which the decoder already terminates at sts.
    Program prog = assemble(".shared x, 1\n"
                            "main:\n"
                            "    li r8, 5\n"
                            "    add r9, r8, 1\n"
                            "    mul r10, r9, 2\n"
                            "    sts r10, x\n"
                            "    halt\n");
    DecodedProgram d = decodeProgram(prog.code);
    ASSERT_EQ(d[0].localRun, 3);

    FusedSpan fs = fuseSpan(d, 0);
    EXPECT_EQ(fs.len, 3u);
    for (const FusedOp &op : fs.ops) {
        EXPECT_NE(op.h, Handler::SharedLoad);
        EXPECT_NE(op.h, Handler::SharedStore);
    }
}

TEST(Fused, CompileCapsAtMaxFusedOps)
{
    // A longer local run fuses as a chain: the compiled span stops at
    // kMaxFusedOps and the suffix keeps its own profile counter.
    std::string src = "main:\n    li r8, 0\n";
    for (int i = 0; i < 299; ++i)
        src += "    add r8, r8, 1\n";
    src += "    halt\n";
    Program prog = assemble(src);
    DecodedProgram d = decodeProgram(prog.code);
    ASSERT_EQ(d[0].localRun, 300);

    FusedSpan fs = fuseSpan(d, 0);
    EXPECT_EQ(fs.len, kMaxFusedOps);
    EXPECT_EQ(fs.totalCycles, Cycle(kMaxFusedOps));  // all latency-1
    EXPECT_EQ(fs.stallCycles, 0u);
    EXPECT_TRUE(fs.exitDefs.empty());
}

TEST(Fused, ExecutionMatchesDecodedOnApp)
{
    // End-to-end: sieve with every span fused on first touch must be
    // observationally identical to the tier forced off — digest,
    // cycles, every counter — and the checker must still pass.
    const App &app = sieveApp();
    Program prog = assemble(app.source(), app.options(0.08));

    MachineConfig cfg;
    cfg.model = SwitchModel::SwitchOnLoad;
    cfg.numProcs = 2;
    cfg.threadsPerProc = 4;
    cfg.network.roundTrip = 200;
    cfg.fuseThreshold = 1;

    Machine fused(prog, cfg);
    app.init(fused);
    fused.setPrintHandler([](const std::string &) {});
    RunResult fr = fused.run();
    AppCheckResult chk = app.check(fused);
    EXPECT_TRUE(chk.ok) << chk.message;

    MachineConfig offCfg = cfg;
    offCfg.fuseSpans = false;
    Machine decodedOnly(prog, offCfg);
    app.init(decodedOnly);
    decodedOnly.setPrintHandler([](const std::string &) {});
    RunResult dr = decodedOnly.run();

    EXPECT_EQ(fr.digest, dr.digest)
        << fr.digest.hex() << " vs " << dr.digest.hex();
    EXPECT_EQ(fr.cycles, dr.cycles);
    expectSameStats(fr.cpu, dr.cpu);

    // The fused run must actually have used the tier, and report it.
    EXPECT_TRUE(fr.hasFuseStats);
    EXPECT_GT(fr.fuse.spans, 0u);
    EXPECT_GT(fr.fuse.execs, 0u);
    EXPECT_GT(fr.fuse.instructions, 0u);
    EXPECT_FALSE(dr.hasFuseStats);
    EXPECT_EQ(dr.fuse.instructions, 0u);
}

TEST(Fused, WatermarkGuardBailsOutOnPendingResult)
{
    // The loop body ends with a mul whose result outlives the span, so
    // re-entering the loop head finds scoreboardMax > now: the guard
    // must fall back to the decoded path (never execute with a stale
    // watermark) and the result must still match a fuse-off run.
    const std::string src = "main:\n"
                            "    li r8, 0\n"
                            "    li r9, 0\n"
                            "loop:\n"
                            "    add r10, r9, 3\n"
                            "    xor r11, r10, 9\n"
                            "    add r9, r9, 1\n"
                            "    mul r12, r9, 7\n"
                            "    blt r9, 100, loop\n"
                            "    add r2, r8, r12\n"
                            "    halt\n";
    MachineConfig cfg = miniConfig();
    cfg.fuseThreshold = 1;
    MiniRun fusedRun = runAsm(src, cfg);

    MachineConfig offCfg = cfg;
    offCfg.fuseSpans = false;
    MiniRun offRun = runAsm(src, offCfg);

    EXPECT_EQ(fusedRun.result.digest, offRun.result.digest);
    EXPECT_EQ(fusedRun.result.cycles, offRun.result.cycles);
    expectSameStats(fusedRun.result.cpu, offRun.result.cpu);
    EXPECT_GT(fusedRun.result.fuse.execs, 0u);
    EXPECT_GT(fusedRun.result.fuse.bailoutWatermark, 0u);
}

TEST(Fused, QuantumDeadlineInsideSpanBailsOut)
{
    // Virtual threading with a quantum shorter than the hot span's
    // totalCycles: the budget guard must split the span (decoded prefix
    // execution up to the preemption point) instead of overrunning the
    // deadline, and the digest must still match a fuse-off run.
    const std::string src = "main:\n"
                            "    li r8, 0\n"
                            "    li r9, 0\n"
                            "loop:\n"
                            "    mul r10, r9, 5\n"
                            "    add r11, r10, 1\n"
                            "    xor r12, r11, 3\n"
                            "    add r8, r8, r12\n"
                            "    add r9, r9, 1\n"
                            "    blt r9, 200, loop\n"
                            "    mv r2, r8\n"
                            "    halt\n";
    MachineConfig cfg = miniConfig();
    cfg.threadsPerProc = 2;
    cfg.swThreadsPerProc = 4;
    cfg.quantumCycles = 7;  // shorter than the span's static schedule
    cfg.fuseThreshold = 1;
    MiniRun fusedRun = runAsm(src, cfg);

    MachineConfig offCfg = cfg;
    offCfg.fuseSpans = false;
    MiniRun offRun = runAsm(src, offCfg);

    EXPECT_EQ(fusedRun.result.digest, offRun.result.digest);
    EXPECT_EQ(fusedRun.result.cycles, offRun.result.cycles);
    expectSameStats(fusedRun.result.cpu, offRun.result.cpu);
    EXPECT_GT(fusedRun.result.fuse.bailoutBudget, 0u);
}

TEST(Fused, TracerDisablesFuseTier)
{
    // A tracer needs every per-instruction event, so the tier (like the
    // batcher) must stand down entirely — and say so in the results.
    const std::string src = "main:\n"
                            "    li r8, 1\n"
                            "    add r9, r8, 2\n"
                            "    mul r2, r9, 3\n"
                            "    halt\n";
    MachineConfig cfg = miniConfig();
    cfg.fuseThreshold = 1;
    MiniRun fusedRun = runAsm(src, cfg);

    NullTracer tracer;
    MachineConfig tracedCfg = cfg;
    tracedCfg.tracer = &tracer;
    Program prog = assemble(src);
    Machine traced(prog, tracedCfg);
    traced.setPrintHandler([](const std::string &) {});
    RunResult tr = traced.run();

    EXPECT_FALSE(traced.processor(0).fuseTier());
    EXPECT_FALSE(tr.hasFuseStats);
    EXPECT_EQ(tr.fuse.execs, 0u);
    EXPECT_EQ(fusedRun.result.digest, tr.digest);
    EXPECT_EQ(fusedRun.result.cycles, tr.cycles);
}

TEST(Fused, ConcurrentMachinesShareOneFuseCache)
{
    // The sweep pool's sharing pattern: many Machines over one immutable
    // DecodedProgram, all fusing on first touch from their own threads.
    // Publication must be race-free (TSan covers the memory model; this
    // test pins the semantics): every machine computes the same digest
    // as a serial baseline, and a second concurrent round compiles
    // nothing new — the span set is a pure function of the program.
    const std::string src = ".shared acc, 1\n"
                            "main:\n"
                            "    li r8, 0\n"
                            "    li r9, 0\n"
                            "loop:\n"
                            "    add r10, r9, 3\n"
                            "    mul r11, r10, 5\n"
                            "    sub r12, r11, r9\n"
                            "    and r13, r12, 1023\n"
                            "    add r8, r8, r13\n"
                            "    add r9, r9, 1\n"
                            "    blt r9, 50, loop\n"
                            "    faa r0, acc(r0), r8\n"
                            "    mv r2, r8\n"
                            "    halt\n";
    auto prog = std::make_shared<const Program>(assemble(src));
    auto decoded =
        std::make_shared<const DecodedProgram>(decodeProgram(prog->code));
    ASSERT_NE(decoded->fuse, nullptr);

    MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.threadsPerProc = 2;
    cfg.model = SwitchModel::SwitchOnLoad;
    cfg.network.roundTrip = 200;
    cfg.fuseThreshold = 1;

    auto runOnce = [&] {
        Machine m(prog, decoded, cfg);
        m.setPrintHandler([](const std::string &) {});
        return m.run().digest;
    };
    const StateDigest baseline = runOnce();

    constexpr int kMachines = 8;
    std::vector<StateDigest> digests(kMachines);
    {
        std::vector<std::thread> pool;
        pool.reserve(kMachines);
        for (int i = 0; i < kMachines; ++i)
            pool.emplace_back([&, i] { digests[i] = runOnce(); });
        for (std::thread &t : pool)
            t.join();
    }
    for (int i = 0; i < kMachines; ++i)
        EXPECT_EQ(digests[i], baseline) << "machine " << i;

    const std::size_t spans = decoded->fuse->compiledSpans();
    EXPECT_GT(spans, 0u);

    // Second round: every span is already published, so the cache must
    // not grow — fusion is memoization, not per-machine state.
    {
        std::vector<std::thread> pool;
        for (int i = 0; i < kMachines; ++i)
            pool.emplace_back([&] { (void)runOnce(); });
        for (std::thread &t : pool)
            t.join();
    }
    EXPECT_EQ(decoded->fuse->compiledSpans(), spans);
}
