#include <gtest/gtest.h>

#include "asm/lexer.hpp"
#include "util/error.hpp"

using namespace mts;

TEST(Lexer, EmptyLineYieldsEnd)
{
    auto toks = lexLine("", 1);
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, TokKind::End);
}

TEST(Lexer, CommentOnlyLine)
{
    auto toks = lexLine("   ; a comment", 1);
    EXPECT_EQ(toks[0].kind, TokKind::End);
    toks = lexLine(" # hash comment", 1);
    EXPECT_EQ(toks[0].kind, TokKind::End);
}

TEST(Lexer, IdentifiersAndDirectives)
{
    auto toks = lexLine(".shared arr, 10", 1);
    ASSERT_GE(toks.size(), 4u);
    EXPECT_EQ(toks[0].kind, TokKind::Ident);
    EXPECT_EQ(toks[0].text, ".shared");
    EXPECT_EQ(toks[1].text, "arr");
    EXPECT_EQ(toks[2].text, ",");
    EXPECT_EQ(toks[3].intValue, 10);
}

TEST(Lexer, DecimalAndHexIntegers)
{
    auto toks = lexLine("li r1, 0x10", 1);
    EXPECT_EQ(toks[3].kind, TokKind::Int);
    EXPECT_EQ(toks[3].intValue, 16);
    toks = lexLine("li r1, 12345", 1);
    EXPECT_EQ(toks[3].intValue, 12345);
}

TEST(Lexer, FloatLiterals)
{
    auto toks = lexLine("fli f1, 2.5", 1);
    EXPECT_EQ(toks[3].kind, TokKind::Float);
    EXPECT_DOUBLE_EQ(toks[3].floatValue, 2.5);
}

TEST(Lexer, FloatExponent)
{
    auto toks = lexLine("fli f1, 1.5e3", 1);
    EXPECT_EQ(toks[3].kind, TokKind::Float);
    EXPECT_DOUBLE_EQ(toks[3].floatValue, 1500.0);
    toks = lexLine("fli f1, 2e-3", 1);
    EXPECT_EQ(toks[3].kind, TokKind::Float);
    EXPECT_DOUBLE_EQ(toks[3].floatValue, 0.002);
}

TEST(Lexer, MemoryOperandPunctuation)
{
    auto toks = lexLine("lds r1, 8(r2)", 1);
    // lds r1 , 8 ( r2 ) END
    ASSERT_EQ(toks.size(), 8u);
    EXPECT_EQ(toks[4].text, "(");
    EXPECT_EQ(toks[5].text, "r2");
    EXPECT_EQ(toks[6].text, ")");
}

TEST(Lexer, ShiftOperators)
{
    auto toks = lexLine(".const X, 1<<20", 1);
    bool found = false;
    for (const auto &t : toks)
        if (t.kind == TokKind::Punct && t.text == "<<")
            found = true;
    EXPECT_TRUE(found);
}

TEST(Lexer, StrayAngleBracketFatal)
{
    EXPECT_THROW(lexLine("li r1, 1<2", 1), FatalError);
}

TEST(Lexer, UnexpectedCharacterFatal)
{
    EXPECT_THROW(lexLine("li r1, @5", 1), FatalError);
}

TEST(Lexer, LabelColon)
{
    auto toks = lexLine("loop: add r1, r1, 1", 1);
    EXPECT_EQ(toks[0].text, "loop");
    EXPECT_EQ(toks[1].text, ":");
    EXPECT_EQ(toks[2].text, "add");
}

TEST(Lexer, DottedMnemonic)
{
    auto toks = lexLine("lds.spin r1, 0(r2)", 1);
    EXPECT_EQ(toks[0].text, "lds.spin");
}

TEST(Lexer, NegativeHandledAtParserLevel)
{
    auto toks = lexLine("li r1, -5", 1);
    EXPECT_EQ(toks[3].kind, TokKind::Punct);
    EXPECT_EQ(toks[3].text, "-");
    EXPECT_EQ(toks[4].intValue, 5);
}
