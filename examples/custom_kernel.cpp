/**
 * @file
 * Writing your own workload: a parallel histogram kernel built from
 * scratch — dynamic work claiming with fetch-and-add, a barrier from the
 * runtime prelude, and a host-side oracle. This is the template for
 * adding an eighth application to the suite.
 *
 *     ./build/examples/custom_kernel [model]
 */
#include <cstdio>
#include <vector>

#include "core/mtsim.hpp"
#include "util/rng.hpp"

int
main(int argc, char **argv)
{
    using namespace mts;
    SwitchModel model = switchModelFromName(
        argc > 1 ? argv[1] : "conditional-switch");

    // Histogram of 8192 values into 32 buckets; blocks of 64 values are
    // claimed dynamically; per-thread local counts merge via faa.
    const std::string kernel = runtimePrelude() + R"(
.const N, 8192
.const BUCKETS, 32
.const BLOCK, 64
.shared values, N
.shared hist, BUCKETS
.shared next_block, 1
.local  local_hist, BUCKETS
.entry  main
main:
    mv   s0, a0
    mv   s1, a1
claim:
    li   t0, 1
    faa  t1, next_block(r0), t0
    li   t2, BLOCK
    mul  t3, t1, t2            ; start index
    li   t4, N
    bge  t3, t4, merge
    add  t5, t3, t2            ; end index
    li   t6, values
    add  t7, t6, t3            ; cursor
    add  t8, t6, t5            ; end
scan:
    lds  t9, 0(t7)             ; value (bucket id precomputed by host)
    la   t6, local_hist
    add  t6, t6, t9
    ldl  s2, 0(t6)
    add  s2, s2, 1
    stl  s2, 0(t6)             ; local accumulate: no shared traffic
    add  t7, t7, 1
    blt  t7, t8, scan
    j    claim
merge:
    li   s3, 0                 ; merge local counts with fetch-and-add
merge_loop:
    la   t0, local_hist
    add  t0, t0, s3
    ldl  t1, 0(t0)
    beq  t1, r0, merge_next
    li   t2, hist
    add  t2, t2, s3
    faa  t3, 0(t2), t1
merge_next:
    add  s3, s3, 1
    blt  s3, BUCKETS, merge_loop
    halt
)";

    Program prog = assemble(kernel);
    if (modelNeedsSwitchInstr(model))
        prog = applyGroupingPass(prog);

    MachineConfig cfg;
    cfg.model = model;
    cfg.numProcs = 8;
    cfg.threadsPerProc = 4;
    cfg.network.roundTrip = 200;
    Machine machine(prog, cfg);

    // Host-side input and oracle.
    Rng rng(42);
    std::vector<std::int64_t> expected(32, 0);
    SharedMemory &mem = machine.sharedMem();
    Addr values = prog.sharedAddr("values");
    for (int i = 0; i < 8192; ++i) {
        auto bucket = static_cast<std::int64_t>(rng.nextBelow(32));
        mem.writeInt(values + i, bucket);
        ++expected[static_cast<std::size_t>(bucket)];
    }

    RunResult r = machine.run();

    bool ok = true;
    Addr hist = prog.sharedAddr("hist");
    for (int b = 0; b < 32; ++b)
        if (mem.readInt(hist + b) != expected[b]) {
            std::printf("bucket %d: got %lld want %lld\n", b,
                        (long long)mem.readInt(hist + b),
                        (long long)expected[b]);
            ok = false;
        }

    std::printf("histogram of 8192 values under %s: %s\n",
                std::string(switchModelName(model)).c_str(),
                ok ? "correct" : "WRONG");
    std::printf("cycles=%llu utilization=%.0f%% switches=%llu "
                "bits/cycle/proc=%.2f\n",
                (unsigned long long)r.cycles, 100.0 * r.utilization(),
                (unsigned long long)r.cpu.switchesTaken,
                r.bitsPerCycle());
    return ok ? 0 : 1;
}
