/**
 * @file
 * Model advisor: for a given application, how many hardware thread
 * contexts does each multithreading model need to reach a target
 * efficiency — and what does it cost in network bandwidth? This is the
 * architect's question the paper answers across Tables 3, 5 and 8.
 *
 *     ./build/examples/model_advisor [app] [target-efficiency]
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/mtsim.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace mts;
    const App &app = findApp(argc > 1 ? argv[1] : "sor");
    double target = argc > 2 ? std::atof(argv[2]) : 0.8;

    ExperimentRunner runner(0.5);
    int procs = app.tableProcs();
    std::printf("advisor: %s on %d processors, 200-cycle latency, target "
                "%.0f%% efficiency\n\n",
                app.name().c_str(), procs, 100.0 * target);

    Table t("threads needed per model (and cost at that level)");
    t.header({"model", "threads", "efficiency", "bits/cyc/proc",
              "register file (regs)"});
    for (SwitchModel m :
         {SwitchModel::SwitchOnLoad, SwitchModel::SwitchOnUse,
          SwitchModel::ExplicitSwitch, SwitchModel::SwitchOnMiss,
          SwitchModel::ConditionalSwitch}) {
        auto base = ExperimentRunner::makeConfig(m, procs, 1);
        int threads = runner.threadsForEfficiency(app, base, target, 32);
        if (threads < 0) {
            t.row({std::string(switchModelName(m)), "-", "unreachable",
                   "-", "-"});
            continue;
        }
        base.threadsPerProc = threads;
        auto run = runner.run(app, base);
        t.row({std::string(switchModelName(m)), std::to_string(threads),
               Table::num(100.0 * run.efficiency, 0) + "%",
               Table::num(run.result.bitsPerCycle(), 2),
               std::to_string(threads * 64)});
    }
    t.print(std::cout);
    std::puts("\n(the register-file column is the paper's cost argument "
              "for small\nmultithreading levels: 32 int + 32 fp "
              "registers per context)");
    return 0;
}
