/**
 * @file
 * Latency explorer: how much network latency can each multithreading
 * model tolerate before a workload's efficiency collapses? This is the
 * machine-sizing question the paper's introduction poses for 1024-
 * processor machines with latencies in the hundreds of cycles.
 *
 *     ./build/examples/latency_explorer [app] [threads]
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/mtsim.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace mts;
    const App &app = findApp(argc > 1 ? argv[1] : "water");
    int threads = argc > 2 ? std::atoi(argv[2]) : 8;

    ExperimentRunner runner(0.5);
    std::printf("latency tolerance of %s (8 processors x %d threads)\n\n",
                app.name().c_str(), threads);

    Table t("efficiency vs round-trip latency");
    t.header({"model", "0", "50", "100", "200", "400", "800"});
    for (SwitchModel m :
         {SwitchModel::SwitchOnLoad, SwitchModel::SwitchOnUse,
          SwitchModel::ExplicitSwitch, SwitchModel::SwitchOnMiss,
          SwitchModel::ConditionalSwitch}) {
        std::vector<std::string> row{std::string(switchModelName(m))};
        for (Cycle lat : {0, 50, 100, 200, 400, 800}) {
            auto cfg = ExperimentRunner::makeConfig(m, 8, threads, lat);
            auto run = runner.run(app, cfg);
            row.push_back(Table::num(100.0 * run.efficiency, 0) + "%");
        }
        t.row(row);
    }
    t.print(std::cout);
    std::puts("\nreading: grouping (explicit-switch) holds efficiency "
              "flat far longer than\nswitch-on-load; caches "
              "(conditional-switch) stretch it further still.");
    return 0;
}
