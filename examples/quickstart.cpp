/**
 * @file
 * Quickstart: assemble a small parallel kernel, run it on two machine
 * models, and read back its result — the mtsim public API in ~60 lines.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "core/mtsim.hpp"

int
main()
{
    using namespace mts;

    // A tiny SPMD kernel: every thread sums a slice of a shared array
    // and fetch-and-adds its partial into a global total. r4/a0 = thread
    // id, r5/a1 = thread count at startup.
    const std::string kernel = R"(
.const N, 4096
.shared data, N
.shared total, 1
.entry  main
main:
    li   t0, N
    mul  t1, t0, a0
    div  t1, t1, a1          ; lo = N*tid/nthreads
    add  t2, a0, 1
    mul  t3, t0, t2
    div  t3, t3, a1          ; hi
    li   t4, data
    add  t5, t4, t1          ; cursor
    add  t6, t4, t3          ; end
    li   s0, 0               ; partial sum
loop:
    bge  t5, t6, done
    lds  t7, 0(t5)           ; shared load (this is what we hide!)
    add  s0, s0, t7
    add  t5, t5, 1
    j    loop
done:
    faa  t8, total(r0), s0
    halt
)";

    // Assemble once; run the grouping pass for the explicit-switch model.
    Program prog = assemble(kernel);
    GroupingStats gs;
    Program grouped = applyGroupingPass(prog, &gs);

    auto runOn = [&](const Program &p, SwitchModel model, int threads) {
        MachineConfig cfg;
        cfg.model = model;
        cfg.numProcs = 8;
        cfg.threadsPerProc = threads;
        cfg.network.roundTrip = 200;

        Machine machine(p, cfg);
        // Host-side input: fill the shared array.
        SharedMemory &mem = machine.sharedMem();
        Addr data = p.sharedAddr("data");
        for (Addr i = 0; i < 4096; ++i)
            mem.writeInt(data + i, static_cast<std::int64_t>(i % 7));

        RunResult r = machine.run();
        std::printf("  %-18s threads=%2d  cycles=%8llu  utilization=%4.0f%%"
                    "  switches=%llu\n",
                    std::string(switchModelName(model)).c_str(), threads,
                    (unsigned long long)r.cycles,
                    100.0 * r.utilization(),
                    (unsigned long long)r.cpu.switchesTaken);
        return machine.sharedMem().readInt(p.sharedAddr("total"));
    };

    std::puts("sum of 4096 elements on 8 processors, 200-cycle memory "
              "latency:\n");
    std::int64_t expect = 0;
    for (int i = 0; i < 4096; ++i)
        expect += i % 7;

    std::puts("switch-on-load (no compiler support):");
    std::int64_t a = runOn(prog, SwitchModel::SwitchOnLoad, 1);
    std::int64_t b = runOn(prog, SwitchModel::SwitchOnLoad, 8);
    std::puts("explicit-switch (grouped by the compiler pass):");
    std::int64_t c = runOn(grouped, SwitchModel::ExplicitSwitch, 8);

    std::printf("\nresults: %lld / %lld / %lld (expected %lld) — %s\n",
                (long long)a, (long long)b, (long long)c,
                (long long)expect,
                (a == expect && b == expect && c == expect) ? "correct"
                                                            : "WRONG");
    std::printf("grouping pass inserted %zu context switches for %zu "
                "shared loads\n",
                gs.switchesInserted, gs.sharedLoads);
    return 0;
}
