/**
 * @file
 * Latency hiding, visualized: an ASCII occupancy timeline of one
 * processor's thread contexts under increasing multithreading levels.
 * Columns are cycle buckets; the digit shows which thread context issued
 * instructions, '.' means the processor sat idle waiting on memory.
 *
 *     ./build/examples/timeline [app] [model]
 */
#include <cstdio>
#include <cstdlib>

#include "core/mtsim.hpp"
#include "trace/timeline.hpp"

int
main(int argc, char **argv)
{
    using namespace mts;
    const App &app = findApp(argc > 1 ? argv[1] : "sor");
    SwitchModel model =
        switchModelFromName(argc > 2 ? argv[2] : "explicit-switch");

    std::printf("one processor running %s under %s, 200-cycle latency\n\n",
                app.name().c_str(),
                std::string(switchModelName(model)).c_str());

    for (int threads : {1, 2, 4, 8}) {
        AsmOptions opts = app.options(0.05);
        Program prog = assemble(app.source(), opts);
        if (modelNeedsSwitchInstr(model))
            prog = applyGroupingPass(prog);

        MachineConfig cfg;
        cfg.model = model;
        cfg.numProcs = 1;
        cfg.threadsPerProc = threads;
        cfg.network.roundTrip = 200;

        TimelineTracer timeline(400);
        cfg.tracer = &timeline;
        Machine machine(prog, cfg);
        app.init(machine);
        RunResult r = machine.run();

        std::printf("--- %d thread%s: %llu cycles, occupancy %.0f%%, "
                    "%llu switches ---\n",
                    threads, threads > 1 ? "s" : "",
                    (unsigned long long)r.cycles,
                    100.0 * timeline.occupancy(),
                    (unsigned long long)timeline.switches());
        std::fputs(timeline.render(96).c_str(), stdout);
        std::puts("");
    }
    std::puts("reading: with one thread the row is mostly '.', the "
              "processor starving on\n200-cycle round trips; each added "
              "context fills more of the row — the paper's\nlatency "
              "hiding, one glyph per time slice.");
    return 0;
}
