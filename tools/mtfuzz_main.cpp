/**
 * @file
 * mtfuzz — differential fuzzer for the MTS simulator.
 *
 * Generates interleaving-independent random programs, runs each on the
 * architectural reference interpreter and on the Machine across every
 * switch model / thread split / cache geometry, and reports any
 * final-state or metrics-invariant divergence, shrunk to a minimal
 * reproducer.
 *
 *     mtfuzz --seeds 500                 # fuzz seeds 1..500
 *     mtfuzz --seed 1234 --seeds 1       # replay one seed
 *     mtfuzz --emit 1234                 # print a seed's program
 *     mtfuzz --seeds 200 --json out.json # export mts.fuzz/1 record
 *
 * With --races the campaign cross-validates the race detectors instead
 * (see verify/race_fuzz.hpp): each seed's program must be race-clean
 * under both the static and the dynamic detector, and every seeded
 * racy mutation of it must be caught by both.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "verify/fuzz.hpp"
#include "verify/race_fuzz.hpp"

namespace
{

void
usage()
{
    std::puts(
        "usage: mtfuzz [options]\n"
        "  --seeds N        number of seeds to run (default 100)\n"
        "  --seed K         first seed (default 1)\n"
        "  --threads N      total threads per program (default 4)\n"
        "  --segments N     program size in segments (default 10)\n"
        "  --latency N      network round-trip cycles (default 200)\n"
        "  --models CSV     switch models to test (default: all)\n"
        "  --jobs N         worker threads (default: MTS_JOBS or cores)\n"
        "  --no-shrink      report failures without minimizing them\n"
        "  --no-invariants  check digests only, skip metrics identities\n"
        "  --races          cross-validate the static and dynamic race\n"
        "                   detectors (seeded racy mutations) instead\n"
        "  --emit K         print the program seed K generates and exit\n"
        "  --json FILE      write the campaign record (schema mts.fuzz/1,\n"
        "                   or mts.racefuzz/1 with --races)\n"
        "  --quiet          suppress per-seed progress\n"
        "  --help, -h       show this help\n"
        "exit status: 0 clean, 1 divergences found, 2 usage error");
}

bool
parsePositive(const char *s, long long &out)
{
    char *end = nullptr;
    out = std::strtoll(s, &end, 10);
    return end && *end == '\0' && out > 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mts;
    FuzzOptions opts;
    std::string jsonPath;
    bool quiet = false;
    bool races = false;
    long long emitSeed = -1;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        long long v = 0;
        if (a == "--seeds" && i + 1 < argc && parsePositive(argv[++i], v)) {
            opts.seeds = static_cast<int>(v);
        } else if (a == "--seed" && i + 1 < argc &&
                   parsePositive(argv[++i], v)) {
            opts.firstSeed = static_cast<std::uint64_t>(v);
        } else if (a == "--threads" && i + 1 < argc &&
                   parsePositive(argv[++i], v)) {
            opts.diff.threads = static_cast<int>(v);
        } else if (a == "--segments" && i + 1 < argc &&
                   parsePositive(argv[++i], v)) {
            opts.gen.segments = static_cast<int>(v);
        } else if (a == "--latency" && i + 1 < argc) {
            opts.diff.latency =
                static_cast<Cycle>(std::atoll(argv[++i]));
        } else if (a == "--models" && i + 1 < argc) {
            try {
                for (const std::string &name : split(argv[++i], ','))
                    opts.diff.models.push_back(
                        switchModelFromName(std::string(trim(name))));
            } catch (const FatalError &e) {
                std::fprintf(stderr, "mtfuzz: %s\n", e.what());
                return 2;
            }
        } else if (a == "--jobs" && i + 1 < argc &&
                   parsePositive(argv[++i], v)) {
            opts.jobs = static_cast<unsigned>(v);
        } else if (a == "--no-shrink") {
            opts.shrink = false;
        } else if (a == "--races") {
            races = true;
        } else if (a == "--no-invariants") {
            opts.diff.checkInvariants = false;
        } else if (a == "--emit" && i + 1 < argc &&
                   parsePositive(argv[++i], v)) {
            emitSeed = v;
        } else if (a == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "mtfuzz: unknown or malformed option "
                                 "'%s'\n",
                         a.c_str());
            std::fprintf(stderr,
                         "run 'mtfuzz --help' for the option list\n");
            return 2;
        }
    }

    if (emitSeed > 0) {
        GenOptions gen = opts.gen;
        gen.seed = static_cast<std::uint64_t>(emitSeed);
        gen.threads = opts.diff.threads;
        std::fputs(generateProgram(gen).source.c_str(), stdout);
        return 0;
    }

    if (races) {
        RaceFuzzOptions ro;
        ro.seeds = opts.seeds;
        ro.firstSeed = opts.firstSeed;
        ro.threads = opts.diff.threads;
        ro.gen = opts.gen;
        ro.latency = opts.diff.latency;
        ro.jobs = opts.jobs;
        std::printf("mtfuzz: race cross-validation, seeds %llu..%llu, "
                    "%d threads, latency %llu\n",
                    static_cast<unsigned long long>(ro.firstSeed),
                    static_cast<unsigned long long>(
                        ro.firstSeed +
                        static_cast<std::uint64_t>(ro.seeds) - 1),
                    ro.threads,
                    static_cast<unsigned long long>(ro.latency));
        RaceFuzzReport rep = runRaceFuzzCampaign(
            ro, quiet ? std::function<void(const std::string &)>{}
                      : [](const std::string &msg) {
                            std::printf("mtfuzz: %s\n", msg.c_str());
                            std::fflush(stdout);
                        });
        if (!jsonPath.empty()) {
            std::ofstream out(jsonPath);
            if (!out) {
                std::fprintf(stderr, "mtfuzz: cannot write %s\n",
                             jsonPath.c_str());
                return 2;
            }
            out << makeRaceFuzzJson(rep, ro).dump(2) << '\n';
        }
        if (rep.ok()) {
            std::printf("mtfuzz: %d seeds, %d mutants, %d dynamic "
                        "race(s), all cross-validated\n",
                        rep.seedsRun, rep.mutantsRun, rep.dynamicRaces);
            return 0;
        }
        std::printf("mtfuzz: %zu cross-validation failure(s)\n",
                    rep.failures.size());
        for (const RaceFuzzFailure &f : rep.failures)
            std::printf("  seed %llu%s%s: %s: %s\n",
                        static_cast<unsigned long long>(f.seed),
                        f.mutation.empty() ? "" : " ",
                        f.mutation.c_str(), f.what.c_str(),
                        f.detail.c_str());
        return 1;
    }

    std::printf("mtfuzz: seeds %llu..%llu, %d threads, latency %llu, "
                "%s models\n",
                static_cast<unsigned long long>(opts.firstSeed),
                static_cast<unsigned long long>(
                    opts.firstSeed +
                    static_cast<std::uint64_t>(opts.seeds) - 1),
                opts.diff.threads,
                static_cast<unsigned long long>(opts.diff.latency),
                opts.diff.models.empty() ? "all"
                                         : std::to_string(
                                               opts.diff.models.size())
                                               .c_str());

    FuzzReport report = runFuzzCampaign(
        opts, quiet ? std::function<void(const std::string &)>{}
                    : [](const std::string &msg) {
                          std::printf("mtfuzz: %s\n", msg.c_str());
                          std::fflush(stdout);
                      });

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "mtfuzz: cannot write %s\n",
                         jsonPath.c_str());
            return 2;
        }
        out << makeFuzzRecord(report, opts).toJson().dump(2) << '\n';
    }

    if (report.ok()) {
        std::printf("mtfuzz: %d seeds, %d machine runs, no divergences\n",
                    report.seedsRun, report.machineRuns);
        return 0;
    }

    std::printf("mtfuzz: %zu failing seed(s) out of %d\n",
                report.failures.size(), report.seedsRun);
    for (const FuzzFailure &f : report.failures) {
        std::printf("\n==== seed %llu: %d divergence(s), first [%s] %s "
                    "====\n%s",
                    static_cast<unsigned long long>(f.seed),
                    f.divergences,
                    std::string(divergenceKindName(f.first.kind)).c_str(),
                    f.first.config.c_str(), f.first.detail.c_str());
        if (!f.minimizedSource.empty()) {
            std::printf("---- minimized reproducer (%d instructions, "
                        "replay: mtfuzz --seed %llu --seeds 1) ----\n%s",
                        f.minimizedInstructions,
                        static_cast<unsigned long long>(f.seed),
                        f.minimizedSource.c_str());
        } else {
            std::printf("replay: mtfuzz --seed %llu --seeds 1\n",
                        static_cast<unsigned long long>(f.seed));
        }
    }
    return 1;
}
