/**
 * @file
 * mtsim — run a benchmark application (or a raw .s file) on the
 * simulated multithreaded multiprocessor.
 *
 *     mtsim --app sor --model explicit-switch --procs 16 --threads 8
 *     mtsim --app mp3d --model conditional-switch --latency 400 --stats
 *     mtsim --asm my_kernel.s -D N=4096 --model switch-on-load
 *     mtsim --list
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/mtsim.hpp"
#include "metrics/run_record.hpp"
#include "trace/text_tracer.hpp"
#include "trace/timeline.hpp"
#include "util/strings.hpp"

namespace
{

void
usage()
{
    std::puts(
        "usage: mtsim [options]\n"
        "  --app NAME          benchmark app (sieve blkmat sor ugray water"
        " locus mp3d)\n"
        "  --asm FILE          run a raw MTS assembly file instead\n"
        "  --model NAME        ideal | switch-every-cycle | switch-on-load"
        " | switch-on-use |\n"
        "                      explicit-switch | switch-on-miss | "
        "switch-on-use-miss | conditional-switch\n"
        "  --procs N           processors (default 16)\n"
        "  --threads N         hardware threads per processor (default 1)\n"
        "  --sw-threads N      software threads per processor, "
        "time-multiplexed over the\n"
        "                      --threads hardware contexts (default: off, "
        "1:1)\n"
        "  --quantum-cycles N  virtual-threading timer quantum "
        "(default 500)\n"
        "  --ctx-cost N        cycles to save (and to restore) a context "
        "on preemption\n"
        "                      (default 0)\n"
        "  --latency N         round-trip shared latency (default 200; 0 ="
        " ideal network)\n"
        "  --network NAME      interconnect backend: constant-latency "
        "(default) | mesh\n"
        "  --mesh-dims XxY     mesh dimensions (default: near-square "
        "factorization of --procs)\n"
        "  --hop-cycles N      mesh per-hop router+wire latency "
        "(default 2)\n"
        "  --link-bits N       mesh link bandwidth in bits/cycle "
        "(default 64)\n"
        "  --directory MODE    sharer directory: full-map (default) | "
        "limited\n"
        "  --dir-pointers N    pointer slots per line for --directory "
        "limited (default 4, max 8)\n"
        "  --scale X           problem-size multiplier (default 1.0)\n"
        "  --cache-words N     cache capacity in words (default 2048)\n"
        "  --line-words N      cache line size in words (default 4)\n"
        "  --slice-limit N     conditional-switch run-length limit "
        "(default 200; 0 = off)\n"
        "  --eff-target X      instead of one run, report the smallest "
        "multithreading level\n"
        "                      reaching efficiency X (the paper's Table "
        "3/5/6/8 search)\n"
        "  --jobs N            host worker threads for the --eff-target "
        "ladder\n"
        "                      (default: MTS_JOBS, else hardware "
        "concurrency)\n"
        "  --fuse on|off       profile-guided superinstruction tier "
        "(default on;\n"
        "                      observationally identical either way)\n"
        "  --fuse-threshold N  span executions before fusing "
        "(default 8)\n"
        "  --fuse-stats        print fused-tier counters after the run\n"
        "  --group-estimate    enable the Section 5.2 inter-block "
        "grouping estimator\n"
        "  --no-group          skip the grouping pass (raw code)\n"
        "  -D NAME=VALUE       define/override an assembly constant\n"
        "  --stats             print detailed statistics\n"
        "  --json FILE         also write the run record (schema "
        "mts.run/1) as JSON\n"
        "  --trace N           print the first N trace events\n"
        "  --timeline          print an ASCII occupancy timeline\n"
        "  --listing           print the (grouped) program listing and "
        "exit\n"
        "  --list              list the benchmark applications\n"
        "  --list-models       list the switch-model names\n"
        "  --list-networks     list the interconnect backend names\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mts;
    std::string appName;
    std::string asmFile;
    MachineConfig cfg;
    cfg.model = SwitchModel::SwitchOnLoad;
    double scale = 1.0;
    double effTarget = 0.0;
    unsigned jobs = 0;  // 0 = MTS_JOBS / hardware concurrency
    bool wantStats = false;
    bool wantFuseStats = false;
    bool wantListing = false;
    std::string jsonPath;
    std::uint64_t traceEvents = 0;
    bool wantTimeline = false;
    bool noGroup = false;
    AsmOptions extraDefs;

    auto intArg = [&](int &i) {
        if (i + 1 >= argc) {
            usage();
            std::exit(2);
        }
        return std::atoll(argv[++i]);
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        try {
            if (a == "--app" && i + 1 < argc) {
                appName = argv[++i];
            } else if (a == "--asm" && i + 1 < argc) {
                asmFile = argv[++i];
            } else if (a == "--model" && i + 1 < argc) {
                cfg.model = switchModelFromName(argv[++i]);
            } else if (a == "--procs") {
                cfg.numProcs = static_cast<int>(intArg(i));
            } else if (a == "--threads") {
                cfg.threadsPerProc = static_cast<int>(intArg(i));
            } else if (a == "--sw-threads") {
                cfg.swThreadsPerProc = static_cast<int>(intArg(i));
            } else if (a == "--quantum-cycles") {
                // Clamp negatives to 0 so validateMachineConfig reports
                // them with the same field-naming diagnostic as 0.
                long long q = intArg(i);
                cfg.quantumCycles = q <= 0 ? 0 : static_cast<Cycle>(q);
            } else if (a == "--ctx-cost") {
                long long c = intArg(i);
                cfg.ctxSwitchCost = c <= 0 ? 0 : static_cast<Cycle>(c);
            } else if (a == "--latency") {
                cfg.network.roundTrip = static_cast<Cycle>(intArg(i));
            } else if (a == "--network" && i + 1 < argc) {
                cfg.network.kind = networkKindFromName(argv[++i]);
            } else if (a == "--mesh-dims" && i + 1 < argc) {
                auto xy = split(argv[++i], 'x');
                if (xy.size() != 2) {
                    std::fprintf(stderr,
                                 "mtsim: --mesh-dims expects XxY (e.g. "
                                 "32x32)\n");
                    return 2;
                }
                cfg.network.meshX = std::atoi(xy[0].c_str());
                cfg.network.meshY = std::atoi(xy[1].c_str());
            } else if (a == "--hop-cycles") {
                cfg.network.hopCycles = static_cast<Cycle>(intArg(i));
            } else if (a == "--link-bits") {
                cfg.network.linkBits =
                    static_cast<std::uint64_t>(intArg(i));
            } else if (a == "--directory" && i + 1 < argc) {
                cfg.directory.mode = directoryModeFromName(argv[++i]);
            } else if (a == "--dir-pointers") {
                cfg.directory.pointers = static_cast<int>(intArg(i));
            } else if (a == "--scale" && i + 1 < argc) {
                scale = std::atof(argv[++i]);
            } else if (a == "--cache-words") {
                cfg.cache.sizeWords = static_cast<unsigned>(intArg(i));
            } else if (a == "--line-words") {
                cfg.cache.lineWords = static_cast<unsigned>(intArg(i));
            } else if (a == "--slice-limit") {
                cfg.sliceLimit = static_cast<Cycle>(intArg(i));
            } else if (a == "--eff-target" && i + 1 < argc) {
                effTarget = std::atof(argv[++i]);
            } else if (a == "--jobs") {
                jobs = static_cast<unsigned>(intArg(i));
            } else if ((a == "--fuse" && i + 1 < argc) ||
                       a == "--fuse=on" || a == "--fuse=off") {
                std::string v = a == "--fuse" ? argv[++i]
                                              : a.substr(a.find('=') + 1);
                if (v == "on") {
                    cfg.fuseSpans = true;
                } else if (v == "off") {
                    cfg.fuseSpans = false;
                } else {
                    std::fprintf(stderr,
                                 "mtsim: --fuse expects on|off (got "
                                 "'%s')\n",
                                 v.c_str());
                    return 2;
                }
            } else if (a == "--fuse-threshold") {
                // Clamp negatives to 0 so validateMachineConfig reports
                // them with the same field-naming diagnostic as 0.
                long long t = intArg(i);
                cfg.fuseThreshold =
                    t <= 0 ? 0 : static_cast<std::uint32_t>(t);
            } else if (a == "--fuse-stats") {
                wantFuseStats = true;
            } else if (a == "--group-estimate") {
                cfg.groupEstimate = true;
            } else if (a == "--no-group") {
                noGroup = true;
            } else if (a == "-D" && i + 1 < argc) {
                auto kv = split(argv[++i], '=');
                if (kv.size() != 2) {
                    usage();
                    return 2;
                }
                extraDefs.defines[kv[0]] = std::atoll(kv[1].c_str());
            } else if (a == "--trace") {
                traceEvents = static_cast<std::uint64_t>(intArg(i));
            } else if (a == "--timeline") {
                wantTimeline = true;
            } else if (a == "--stats") {
                wantStats = true;
            } else if (a == "--json" && i + 1 < argc) {
                jsonPath = argv[++i];
            } else if (a == "--listing") {
                wantListing = true;
            } else if (a == "--list") {
                for (const App *app : allApps())
                    std::printf("%-8s %s\n", app->name().c_str(),
                                app->description().c_str());
                return 0;
            } else if (a == "--list-models") {
                for (SwitchModel m : kAllModels)
                    std::printf("%s\n",
                                std::string(switchModelName(m)).c_str());
                return 0;
            } else if (a == "--list-networks") {
                for (NetworkKind k : kAllNetworkKinds)
                    std::printf("%s\n",
                                std::string(networkKindName(k)).c_str());
                return 0;
            } else if (a == "--help" || a == "-h") {
                usage();
                return 0;
            } else {
                std::fprintf(stderr, "mtsim: unknown option '%s'\n",
                             a.c_str());
                std::fprintf(stderr,
                             "run 'mtsim --help' for the option list\n");
                return 2;
            }
        } catch (const FatalError &e) {
            std::fprintf(stderr, "mtsim: %s\n", e.what());
            return 1;
        }
    }

    try {
        if (effTarget > 0) {
            // Minimal-multithreading-level search (Tables 3/5/6/8), with
            // the ladder evaluated speculatively across host workers.
            if (appName.empty()) {
                std::fprintf(stderr,
                             "mtsim: --eff-target requires --app\n");
                return 2;
            }
            const App &app = findApp(appName);
            ExperimentRunner runner(scale);
            runner.setLadderJobs(jobs ? jobs
                                      : ThreadPool::defaultWorkers());
            int level = runner.threadsForEfficiency(app, cfg, effTarget);
            std::printf("model=%s procs=%d latency=%llu target=%.0f%%\n",
                        std::string(switchModelName(cfg.model)).c_str(),
                        cfg.numProcs,
                        (unsigned long long)cfg.network.roundTrip,
                        100.0 * effTarget);
            if (level < 0) {
                std::printf("threads-for-efficiency=unreachable (up to "
                            "32 threads/proc)\n");
                return 1;
            }
            std::printf("threads-for-efficiency=%d\n", level);
            return 0;
        }

        Program prog;
        const App *app = nullptr;
        if (!asmFile.empty()) {
            std::ifstream in(asmFile);
            if (!in) {
                std::fprintf(stderr, "mtsim: cannot open %s\n",
                             asmFile.c_str());
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            try {
                prog = assemble(runtimePrelude() + ss.str(), extraDefs);
            } catch (const FatalError &e) {
                // Report against the user's file: name it, and shift
                // line numbers past the injected runtime prelude.
                std::string msg = e.what();
                const std::string &pre = runtimePrelude();
                auto preludeLines = static_cast<unsigned long>(
                    std::count(pre.begin(), pre.end(), '\n'));
                std::size_t at = msg.find("line ");
                if (at != std::string::npos) {
                    char *end = nullptr;
                    unsigned long n =
                        std::strtoul(msg.c_str() + at + 5, &end, 10);
                    if (end && n > preludeLines)
                        msg = msg.substr(0, at + 5) +
                              std::to_string(n - preludeLines) +
                              std::string(end);
                }
                std::fprintf(stderr, "mtsim: %s: %s\n", asmFile.c_str(),
                             msg.c_str());
                return 1;
            }
        } else if (!appName.empty()) {
            app = &findApp(appName);
            AsmOptions opts = app->options(scale);
            for (const auto &[k, v] : extraDefs.defines)
                opts.defines[k] = v;
            prog = assemble(app->source(), opts);
        } else {
            usage();
            return 2;
        }

        GroupingStats gs;
        bool useGrouped =
            !noGroup &&
            (modelNeedsSwitchInstr(cfg.model) || cfg.groupEstimate);
        Program grouped = applyGroupingPass(prog, &gs);
        const Program &chosen = useGrouped ? grouped : prog;

        if (wantListing) {
            std::fputs(chosen.listing().c_str(), stdout);
            return 0;
        }

        std::unique_ptr<TextTracer> textTracer;
        std::unique_ptr<TimelineTracer> timelineTracer;
        if (traceEvents) {
            textTracer = std::make_unique<TextTracer>(
                std::cout, 0, ~Cycle(0), traceEvents);
            cfg.tracer = textTracer.get();
        } else if (wantTimeline) {
            timelineTracer = std::make_unique<TimelineTracer>(200);
            cfg.tracer = timelineTracer.get();
        }

        Machine machine(chosen, cfg);
        if (app)
            app->init(machine);
        RunResult r = machine.run();
        if (timelineTracer) {
            std::fputs(timelineTracer->render(110).c_str(), stdout);
            std::printf("occupancy %.0f%%\n",
                        100.0 * timelineTracer->occupancy());
        }
        std::string check = "-";
        if (app) {
            AppCheckResult chk = app->check(machine);
            check = chk.ok ? "PASS" : "FAIL: " + chk.message;
        }

        std::printf("model=%s procs=%d threads=%d latency=%llu\n",
                    std::string(switchModelName(cfg.model)).c_str(),
                    cfg.numProcs, cfg.threadsPerProc,
                    (unsigned long long)cfg.network.roundTrip);
        if (cfg.swThreadsPerProc > 0)
            std::printf("vthreads: sw-threads=%d quantum=%llu "
                        "ctx-cost=%llu\n",
                        cfg.swThreadsPerProc,
                        (unsigned long long)cfg.quantumCycles,
                        (unsigned long long)cfg.ctxSwitchCost);
        if (cfg.network.kind == NetworkKind::Mesh) {
            auto [mx, my] = resolveMeshDims(cfg.network, cfg.numProcs);
            std::printf("network=mesh dims=%dx%d hop-cycles=%llu "
                        "link-bits=%llu directory=%s\n",
                        mx, my, (unsigned long long)cfg.network.hopCycles,
                        (unsigned long long)cfg.network.linkBits,
                        directoryModeName(cfg.directory.mode));
        }
        std::printf("cycles=%llu instructions=%llu utilization=%.3f "
                    "self-check=%s\n",
                    (unsigned long long)r.cycles,
                    (unsigned long long)r.cpu.instructions,
                    r.utilization(), check.c_str());
        if (wantStats) {
            std::printf(
                "busy=%llu stall=%llu idle=%llu switches=%llu "
                "(skipped=%llu, slice-forced=%llu)\n",
                (unsigned long long)r.cpu.busyCycles,
                (unsigned long long)r.cpu.stallCycles,
                (unsigned long long)r.cpu.idleCycles,
                (unsigned long long)r.cpu.switchesTaken,
                (unsigned long long)r.cpu.switchesSkipped,
                (unsigned long long)r.cpu.sliceLimitSwitches);
            std::printf(
                "shared: loads=%llu stores=%llu faa=%llu spin=%llu "
                "grouping-factor=%.2f\n",
                (unsigned long long)r.cpu.sharedLoads,
                (unsigned long long)r.cpu.sharedStores,
                (unsigned long long)r.cpu.fetchAdds,
                (unsigned long long)r.cpu.spinLoads, r.groupingFactor());
            std::printf("run-lengths: mean=%.1f dist=[%s]\n",
                        r.cpu.runLengths.mean(),
                        r.cpu.runLengths.format().c_str());
            std::printf("network: msgs=%llu bits/cycle/proc=%.2f "
                        "(inval=%llu)\n",
                        (unsigned long long)r.net.messages,
                        r.bitsPerCycle(),
                        (unsigned long long)r.net.invalMsgs);
            if (r.hasSchedStats)
                std::printf(
                    "sched: preemptions=%llu save=%llu restore=%llu "
                    "block-switches=%llu halt-installs=%llu "
                    "requeues=%llu queue-depth-mean=%.2f\n",
                    (unsigned long long)r.sched.preemptions,
                    (unsigned long long)r.sched.saveCycles,
                    (unsigned long long)r.sched.restoreCycles,
                    (unsigned long long)r.sched.blockSwitches,
                    (unsigned long long)r.sched.haltInstalls,
                    (unsigned long long)r.sched.requeues,
                    r.sched.queueDepth.mean());
            if (r.hasLinkStats)
                std::printf(
                    "links: routed=%llu local=%llu avg-hops=%.2f "
                    "wait-cycles=%llu max-link-util=%.3f\n",
                    (unsigned long long)r.link.routedMsgs,
                    (unsigned long long)r.link.localMsgs,
                    r.link.avgHops(),
                    (unsigned long long)r.link.waitCycles,
                    r.link.maxLinkUtilization(r.cycles));
            if (modelUsesCache(cfg.model))
                std::printf("cache: hit-rate=%.3f (hits=%llu misses=%llu "
                            "merges=%llu invalidations=%llu)\n",
                            r.cache.hitRate(),
                            (unsigned long long)r.cache.hits,
                            (unsigned long long)r.cache.misses,
                            (unsigned long long)r.cache.mergedMisses,
                            (unsigned long long)
                                r.cache.invalidationsReceived);
            if (cfg.groupEstimate)
                std::printf("estimate-cache: hit-rate=%.3f\n",
                            r.estimateHitRate());
            if (useGrouped)
                std::printf("grouping pass: %zu blocks, %zu loads, %zu "
                            "load groups, static factor %.2f\n",
                            gs.basicBlocks, gs.sharedLoads, gs.loadGroups,
                            gs.staticGroupingFactor());
        }
        if (wantFuseStats)
            std::printf(
                "fuse: spans=%llu execs=%llu instructions=%llu "
                "share=%.3f bailouts=watermark:%llu,budget:%llu\n",
                (unsigned long long)r.fuse.spans,
                (unsigned long long)r.fuse.execs,
                (unsigned long long)r.fuse.instructions,
                r.cpu.instructions
                    ? static_cast<double>(r.fuse.instructions) /
                          static_cast<double>(r.cpu.instructions)
                    : 0.0,
                (unsigned long long)r.fuse.bailoutWatermark,
                (unsigned long long)r.fuse.bailoutBudget);
        if (!jsonPath.empty()) {
            RunRecord rec =
                makeRunRecord(r, cfg, app ? app->name() : asmFile);
            std::ofstream jout(jsonPath);
            if (!jout) {
                std::fprintf(stderr, "mtsim: cannot write %s\n",
                             jsonPath.c_str());
                return 1;
            }
            jout << rec.toJson().dump(2) << '\n';
        }
        return check.rfind("FAIL", 0) == 0 ? 1 : 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mtsim: %s\n", e.what());
        return 1;
    }
}
