/**
 * @file
 * mtlint — static analysis for MTS assembly.
 *
 * Runs the CFG/dataflow checker suite (use-before-def, split-phase,
 * run-length, spin-lock) over a benchmark app or a raw assembly file;
 * with --grouped the grouping pass is applied first, its output is
 * translation-validated against the source program, and the
 * grouped-only checkers are enabled.
 *
 *     mtlint --app water                 # lint the raw program
 *     mtlint --app water --grouped       # lint + validate pass output
 *     mtlint file.s -D N=128 --json out.json
 *
 * Exit status: 0 clean (warnings allowed), 1 error-severity findings,
 * 2 usage error.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/checkers.hpp"
#include "analysis/verify_grouping.hpp"
#include "core/mtsim.hpp"
#include "util/strings.hpp"

namespace
{

void
usage()
{
    std::puts(
        "usage: mtlint (--app NAME | FILE.s) [options]\n"
        "  --app NAME       benchmark app (sieve blkmat sor ugray water"
        " locus mp3d)\n"
        "  -D NAME=VALUE    define/override an assembly constant\n"
        "  --grouped        apply the grouping pass first, validate the\n"
        "                   translation and enable the grouped-only "
        "checkers\n"
        "  --slice-limit N  conditional-switch run-length limit "
        "(default 200; 0 = off)\n"
        "  --races          enable the static data-race checker "
        "(lockset\n"
        "                   + shared-region analysis)\n"
        "  --json FILE      write the report (schema mts.lint/2) as "
        "JSON\n"
        "  --quiet          suppress the text report (exit status "
        "only)\n"
        "  --help, -h       show this help");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mts;
    std::string appName;
    std::string file;
    std::string jsonPath;
    AsmOptions defs;
    LintOptions lintOpts;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--app" && i + 1 < argc) {
            appName = argv[++i];
        } else if (a == "-D" && i + 1 < argc) {
            auto kv = split(argv[++i], '=');
            if (kv.size() != 2) {
                std::fprintf(stderr,
                             "mtlint: bad define '%s' (want "
                             "NAME=VALUE)\n",
                             argv[i]);
                return 2;
            }
            defs.defines[kv[0]] = std::atoll(kv[1].c_str());
        } else if (a == "--grouped") {
            lintOpts.grouped = true;
        } else if (a == "--races") {
            lintOpts.races = true;
        } else if (a == "--slice-limit" && i + 1 < argc) {
            lintOpts.sliceLimit =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (a == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] != '-') {
            file = a;
        } else {
            std::fprintf(stderr, "mtlint: unknown option '%s'\n",
                         a.c_str());
            std::fprintf(stderr,
                         "run 'mtlint --help' for the option list\n");
            return 2;
        }
    }

    try {
        Program prog;
        std::string progName;
        if (!appName.empty()) {
            const App &app = findApp(appName);
            AsmOptions opts = app.options(1.0);
            for (const auto &[k, v] : defs.defines)
                opts.defines[k] = v;
            prog = assemble(app.source(), opts);
            progName = app.name();
        } else if (!file.empty()) {
            std::ifstream in(file);
            if (!in) {
                std::fprintf(stderr, "mtlint: cannot open %s\n",
                             file.c_str());
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            prog = assemble(ss.str(), defs);
            progName = file;
        } else {
            usage();
            return 2;
        }

        Program analyzed = prog;
        LintReport report;
        if (lintOpts.grouped) {
            analyzed = applyGroupingPass(prog);
            verifyGroupingPass(prog, analyzed, report);
        }
        LintReport lint = runLint(analyzed, lintOpts);
        for (const Diag &d : lint.diags())
            report.add(analyzed, d);
        report.sort();

        if (!quiet) {
            std::fputs(report.renderText(analyzed).c_str(), stdout);
            std::printf("mtlint: %s%s: %zu error(s), %zu warning(s), "
                        "%zu note(s) in %zu instructions\n",
                        progName.c_str(),
                        lintOpts.grouped ? " (grouped)" : "",
                        report.count(Severity::Error),
                        report.count(Severity::Warning),
                        report.count(Severity::Info),
                        analyzed.code.size());
        }

        if (!jsonPath.empty()) {
            std::ofstream jout(jsonPath);
            if (!jout) {
                std::fprintf(stderr, "mtlint: cannot write %s\n",
                             jsonPath.c_str());
                return 1;
            }
            jout << report.toJson(progName, lintOpts.grouped).dump(2)
                 << '\n';
        }
        return report.hasErrors() ? 1 : 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mtlint: %s\n", e.what());
        return 1;
    }
}
