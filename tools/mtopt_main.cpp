/**
 * @file
 * mtopt — apply the shared-load grouping pass to MTS assembly and show
 * the result (the paper's Figure 4, live).
 *
 *     mtopt --app sor                # before/after listing of an app
 *     mtopt file.s -D N=128          # optimize a raw assembly file
 *     mtopt --app locus --verify     # translation-validate the output
 *     mtopt --app water --json out.json --stats
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/verify_grouping.hpp"
#include "core/mtsim.hpp"
#include "metrics/run_record.hpp"
#include "util/strings.hpp"

namespace
{

void
usage()
{
    std::puts(
        "usage: mtopt (--app NAME | FILE.s) [options]\n"
        "  --app NAME      benchmark app (sieve blkmat sor ugray water"
        " locus mp3d)\n"
        "  -D NAME=VALUE   define/override an assembly constant\n"
        "  --stats         print only the grouping statistics\n"
        "  --verify        translation-validate the pass output "
        "(non-zero exit on error)\n"
        "  --json FILE     write the statistics (schema mts.opt/1) as "
        "JSON\n"
        "  --help, -h      show this help");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mts;
    std::string appName;
    std::string file;
    std::string jsonPath;
    AsmOptions defs;
    bool statsOnly = false;
    bool verify = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--app" && i + 1 < argc) {
            appName = argv[++i];
        } else if (a == "-D" && i + 1 < argc) {
            auto kv = split(argv[++i], '=');
            if (kv.size() != 2) {
                std::fprintf(stderr,
                             "mtopt: bad define '%s' (want NAME=VALUE)\n",
                             argv[i]);
                return 2;
            }
            defs.defines[kv[0]] = std::atoll(kv[1].c_str());
        } else if (a == "--stats") {
            statsOnly = true;
        } else if (a == "--verify") {
            verify = true;
        } else if (a == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] != '-') {
            file = a;
        } else {
            std::fprintf(stderr, "mtopt: unknown option '%s'\n",
                         a.c_str());
            std::fprintf(stderr,
                         "run 'mtopt --help' for the option list\n");
            return 2;
        }
    }

    try {
        Program prog;
        std::string progName;
        if (!appName.empty()) {
            const App &app = findApp(appName);
            AsmOptions opts = app.options(1.0);
            for (const auto &[k, v] : defs.defines)
                opts.defines[k] = v;
            prog = assemble(app.source(), opts);
            progName = app.name();
        } else if (!file.empty()) {
            std::ifstream in(file);
            if (!in) {
                std::fprintf(stderr, "mtopt: cannot open %s\n",
                             file.c_str());
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            prog = assemble(ss.str(), defs);
            progName = file;
        } else {
            usage();
            return 2;
        }

        GroupingStats gs;
        Program grouped = applyGroupingPass(prog, &gs);
        if (!statsOnly && !verify) {
            std::puts("==== original ====");
            std::fputs(prog.listing().c_str(), stdout);
            std::puts("\n==== after grouping pass ====");
            std::fputs(grouped.listing().c_str(), stdout);
        }
        std::printf(
            "\n%zu basic blocks, %zu shared loads, %zu load groups, "
            "%zu cswitch inserted, static grouping factor %.2f, "
            "%zu blocks reordered, %zu -> %zu instructions\n",
            gs.basicBlocks, gs.sharedLoads, gs.loadGroups,
            gs.switchesInserted, gs.staticGroupingFactor(),
            gs.reorderedBlocks, gs.instructionsIn, gs.instructionsOut);

        if (!jsonPath.empty()) {
            OptRecord rec;
            rec.program = progName;
            rec.stats = gs;
            std::ofstream jout(jsonPath);
            if (!jout) {
                std::fprintf(stderr, "mtopt: cannot write %s\n",
                             jsonPath.c_str());
                return 1;
            }
            jout << rec.toJson().dump(2) << '\n';
        }

        if (verify) {
            LintReport report;
            bool ok = verifyGroupingPass(prog, grouped, report);
            std::fputs(report.renderText(grouped).c_str(), stdout);
            std::printf("verify: %s (%zu checked, %zu error(s))\n",
                        ok ? "OK" : "FAILED", grouped.code.size(),
                        report.count(Severity::Error));
            if (!ok)
                return 1;
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mtopt: %s\n", e.what());
        return 1;
    }
}
