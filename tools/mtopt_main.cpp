/**
 * @file
 * mtopt — apply the shared-load grouping pass to MTS assembly and show
 * the result (the paper's Figure 4, live).
 *
 *     mtopt --app sor              # before/after listing of an app
 *     mtopt file.s -D N=128        # optimize a raw assembly file
 *     mtopt --app locus --diff     # only blocks that changed
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/mtsim.hpp"
#include "util/strings.hpp"

int
main(int argc, char **argv)
{
    using namespace mts;
    std::string appName;
    std::string file;
    AsmOptions defs;
    bool statsOnly = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--app" && i + 1 < argc) {
            appName = argv[++i];
        } else if (a == "-D" && i + 1 < argc) {
            auto kv = split(argv[++i], '=');
            if (kv.size() == 2)
                defs.defines[kv[0]] = std::atoll(kv[1].c_str());
        } else if (a == "--stats") {
            statsOnly = true;
        } else if (a[0] != '-') {
            file = a;
        } else {
            std::puts("usage: mtopt (--app NAME | FILE.s) [-D N=V] "
                      "[--stats]");
            return a == "--help" || a == "-h" ? 0 : 2;
        }
    }

    try {
        Program prog;
        if (!appName.empty()) {
            const App &app = findApp(appName);
            AsmOptions opts = app.options(1.0);
            for (const auto &[k, v] : defs.defines)
                opts.defines[k] = v;
            prog = assemble(app.source(), opts);
        } else if (!file.empty()) {
            std::ifstream in(file);
            if (!in) {
                std::fprintf(stderr, "mtopt: cannot open %s\n",
                             file.c_str());
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            prog = assemble(ss.str(), defs);
        } else {
            std::puts("usage: mtopt (--app NAME | FILE.s) [-D N=V] "
                      "[--stats]");
            return 2;
        }

        GroupingStats gs;
        Program grouped = applyGroupingPass(prog, &gs);
        if (!statsOnly) {
            std::puts("==== original ====");
            std::fputs(prog.listing().c_str(), stdout);
            std::puts("\n==== after grouping pass ====");
            std::fputs(grouped.listing().c_str(), stdout);
        }
        std::printf(
            "\n%zu basic blocks, %zu shared loads, %zu load groups, "
            "%zu cswitch inserted, static grouping factor %.2f, "
            "%zu blocks reordered, %zu -> %zu instructions\n",
            gs.basicBlocks, gs.sharedLoads, gs.loadGroups,
            gs.switchesInserted, gs.staticGroupingFactor(),
            gs.reorderedBlocks, gs.instructionsIn, gs.instructionsOut);
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mtopt: %s\n", e.what());
        return 1;
    }
}
