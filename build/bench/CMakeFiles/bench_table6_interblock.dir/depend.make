# Empty dependencies file for bench_table6_interblock.
# This may be replaced when dependencies are built.
