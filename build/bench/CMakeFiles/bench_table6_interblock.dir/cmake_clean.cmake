file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_interblock.dir/bench_table6_interblock.cpp.o"
  "CMakeFiles/bench_table6_interblock.dir/bench_table6_interblock.cpp.o.d"
  "bench_table6_interblock"
  "bench_table6_interblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_interblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
