file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sol.dir/bench_table3_sol.cpp.o"
  "CMakeFiles/bench_table3_sol.dir/bench_table3_sol.cpp.o.d"
  "bench_table3_sol"
  "bench_table3_sol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
