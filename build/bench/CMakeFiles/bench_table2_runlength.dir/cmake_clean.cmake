file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_runlength.dir/bench_table2_runlength.cpp.o"
  "CMakeFiles/bench_table2_runlength.dir/bench_table2_runlength.cpp.o.d"
  "bench_table2_runlength"
  "bench_table2_runlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_runlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
