# Empty dependencies file for bench_table2_runlength.
# This may be replaced when dependencies are built.
