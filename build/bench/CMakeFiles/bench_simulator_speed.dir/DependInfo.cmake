
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_simulator_speed.cpp" "bench/CMakeFiles/bench_simulator_speed.dir/bench_simulator_speed.cpp.o" "gcc" "bench/CMakeFiles/bench_simulator_speed.dir/bench_simulator_speed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mts_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mts_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mts_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mts_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/mts_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mts_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
