file(REMOVE_RECURSE
  "CMakeFiles/bench_simulator_speed.dir/bench_simulator_speed.cpp.o"
  "CMakeFiles/bench_simulator_speed.dir/bench_simulator_speed.cpp.o.d"
  "bench_simulator_speed"
  "bench_simulator_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulator_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
