# Empty dependencies file for bench_simulator_speed.
# This may be replaced when dependencies are built.
