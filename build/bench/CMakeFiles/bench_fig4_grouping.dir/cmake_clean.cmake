file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_grouping.dir/bench_fig4_grouping.cpp.o"
  "CMakeFiles/bench_fig4_grouping.dir/bench_fig4_grouping.cpp.o.d"
  "bench_fig4_grouping"
  "bench_fig4_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
