# Empty dependencies file for bench_fig4_grouping.
# This may be replaced when dependencies are built.
