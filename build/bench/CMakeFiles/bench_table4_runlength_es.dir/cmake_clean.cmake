file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_runlength_es.dir/bench_table4_runlength_es.cpp.o"
  "CMakeFiles/bench_table4_runlength_es.dir/bench_table4_runlength_es.cpp.o.d"
  "bench_table4_runlength_es"
  "bench_table4_runlength_es.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_runlength_es.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
