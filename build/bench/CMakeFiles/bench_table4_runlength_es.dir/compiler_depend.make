# Empty compiler generated dependencies file for bench_table4_runlength_es.
# This may be replaced when dependencies are built.
