file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_es.dir/bench_table5_es.cpp.o"
  "CMakeFiles/bench_table5_es.dir/bench_table5_es.cpp.o.d"
  "bench_table5_es"
  "bench_table5_es.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_es.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
