# Empty dependencies file for bench_table5_es.
# This may be replaced when dependencies are built.
