file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_cs.dir/bench_table8_cs.cpp.o"
  "CMakeFiles/bench_table8_cs.dir/bench_table8_cs.cpp.o.d"
  "bench_table8_cs"
  "bench_table8_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
