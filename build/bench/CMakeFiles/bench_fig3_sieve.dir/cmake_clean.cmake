file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sieve.dir/bench_fig3_sieve.cpp.o"
  "CMakeFiles/bench_fig3_sieve.dir/bench_fig3_sieve.cpp.o.d"
  "bench_fig3_sieve"
  "bench_fig3_sieve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sieve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
