file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ideal.dir/bench_fig2_ideal.cpp.o"
  "CMakeFiles/bench_fig2_ideal.dir/bench_fig2_ideal.cpp.o.d"
  "bench_fig2_ideal"
  "bench_fig2_ideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
