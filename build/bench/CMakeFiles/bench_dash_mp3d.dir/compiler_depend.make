# Empty compiler generated dependencies file for bench_dash_mp3d.
# This may be replaced when dependencies are built.
