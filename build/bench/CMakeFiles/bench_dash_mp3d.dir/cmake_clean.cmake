file(REMOVE_RECURSE
  "CMakeFiles/bench_dash_mp3d.dir/bench_dash_mp3d.cpp.o"
  "CMakeFiles/bench_dash_mp3d.dir/bench_dash_mp3d.cpp.o.d"
  "bench_dash_mp3d"
  "bench_dash_mp3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dash_mp3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
