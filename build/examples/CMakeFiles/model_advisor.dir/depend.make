# Empty dependencies file for model_advisor.
# This may be replaced when dependencies are built.
