# Empty compiler generated dependencies file for model_advisor.
# This may be replaced when dependencies are built.
