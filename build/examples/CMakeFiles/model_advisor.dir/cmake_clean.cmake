file(REMOVE_RECURSE
  "CMakeFiles/model_advisor.dir/model_advisor.cpp.o"
  "CMakeFiles/model_advisor.dir/model_advisor.cpp.o.d"
  "model_advisor"
  "model_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
