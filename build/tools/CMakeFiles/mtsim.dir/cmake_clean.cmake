file(REMOVE_RECURSE
  "CMakeFiles/mtsim.dir/mtsim_main.cpp.o"
  "CMakeFiles/mtsim.dir/mtsim_main.cpp.o.d"
  "mtsim"
  "mtsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
