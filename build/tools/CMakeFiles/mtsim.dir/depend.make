# Empty dependencies file for mtsim.
# This may be replaced when dependencies are built.
