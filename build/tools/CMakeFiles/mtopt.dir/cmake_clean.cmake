file(REMOVE_RECURSE
  "CMakeFiles/mtopt.dir/mtopt_main.cpp.o"
  "CMakeFiles/mtopt.dir/mtopt_main.cpp.o.d"
  "mtopt"
  "mtopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
