# Empty compiler generated dependencies file for mtopt.
# This may be replaced when dependencies are built.
