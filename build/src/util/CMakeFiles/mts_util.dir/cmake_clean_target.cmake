file(REMOVE_RECURSE
  "libmts_util.a"
)
