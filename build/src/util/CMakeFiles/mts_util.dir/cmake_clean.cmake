file(REMOVE_RECURSE
  "CMakeFiles/mts_util.dir/error.cpp.o"
  "CMakeFiles/mts_util.dir/error.cpp.o.d"
  "CMakeFiles/mts_util.dir/histogram.cpp.o"
  "CMakeFiles/mts_util.dir/histogram.cpp.o.d"
  "CMakeFiles/mts_util.dir/strings.cpp.o"
  "CMakeFiles/mts_util.dir/strings.cpp.o.d"
  "CMakeFiles/mts_util.dir/table.cpp.o"
  "CMakeFiles/mts_util.dir/table.cpp.o.d"
  "libmts_util.a"
  "libmts_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
