# Empty dependencies file for mts_util.
# This may be replaced when dependencies are built.
