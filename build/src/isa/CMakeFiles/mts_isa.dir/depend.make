# Empty dependencies file for mts_isa.
# This may be replaced when dependencies are built.
