file(REMOVE_RECURSE
  "CMakeFiles/mts_isa.dir/instruction.cpp.o"
  "CMakeFiles/mts_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/mts_isa.dir/opcode.cpp.o"
  "CMakeFiles/mts_isa.dir/opcode.cpp.o.d"
  "libmts_isa.a"
  "libmts_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
