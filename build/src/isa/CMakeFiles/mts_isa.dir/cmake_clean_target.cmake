file(REMOVE_RECURSE
  "libmts_isa.a"
)
