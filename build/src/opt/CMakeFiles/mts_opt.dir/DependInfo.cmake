
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/basic_blocks.cpp" "src/opt/CMakeFiles/mts_opt.dir/basic_blocks.cpp.o" "gcc" "src/opt/CMakeFiles/mts_opt.dir/basic_blocks.cpp.o.d"
  "/root/repo/src/opt/grouping_pass.cpp" "src/opt/CMakeFiles/mts_opt.dir/grouping_pass.cpp.o" "gcc" "src/opt/CMakeFiles/mts_opt.dir/grouping_pass.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/mts_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mts_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
