file(REMOVE_RECURSE
  "libmts_opt.a"
)
