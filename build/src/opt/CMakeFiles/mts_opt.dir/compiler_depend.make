# Empty compiler generated dependencies file for mts_opt.
# This may be replaced when dependencies are built.
