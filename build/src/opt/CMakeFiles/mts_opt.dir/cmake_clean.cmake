file(REMOVE_RECURSE
  "CMakeFiles/mts_opt.dir/basic_blocks.cpp.o"
  "CMakeFiles/mts_opt.dir/basic_blocks.cpp.o.d"
  "CMakeFiles/mts_opt.dir/grouping_pass.cpp.o"
  "CMakeFiles/mts_opt.dir/grouping_pass.cpp.o.d"
  "libmts_opt.a"
  "libmts_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
