# Empty compiler generated dependencies file for mts_core.
# This may be replaced when dependencies are built.
