file(REMOVE_RECURSE
  "libmts_core.a"
)
