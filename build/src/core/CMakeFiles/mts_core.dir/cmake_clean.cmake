file(REMOVE_RECURSE
  "CMakeFiles/mts_core.dir/experiment.cpp.o"
  "CMakeFiles/mts_core.dir/experiment.cpp.o.d"
  "libmts_core.a"
  "libmts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
