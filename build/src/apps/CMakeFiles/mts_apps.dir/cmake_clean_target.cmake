file(REMOVE_RECURSE
  "libmts_apps.a"
)
