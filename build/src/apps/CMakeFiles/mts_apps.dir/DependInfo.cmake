
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_blkmat.cpp" "src/apps/CMakeFiles/mts_apps.dir/app_blkmat.cpp.o" "gcc" "src/apps/CMakeFiles/mts_apps.dir/app_blkmat.cpp.o.d"
  "/root/repo/src/apps/app_locus.cpp" "src/apps/CMakeFiles/mts_apps.dir/app_locus.cpp.o" "gcc" "src/apps/CMakeFiles/mts_apps.dir/app_locus.cpp.o.d"
  "/root/repo/src/apps/app_mp3d.cpp" "src/apps/CMakeFiles/mts_apps.dir/app_mp3d.cpp.o" "gcc" "src/apps/CMakeFiles/mts_apps.dir/app_mp3d.cpp.o.d"
  "/root/repo/src/apps/app_sieve.cpp" "src/apps/CMakeFiles/mts_apps.dir/app_sieve.cpp.o" "gcc" "src/apps/CMakeFiles/mts_apps.dir/app_sieve.cpp.o.d"
  "/root/repo/src/apps/app_sor.cpp" "src/apps/CMakeFiles/mts_apps.dir/app_sor.cpp.o" "gcc" "src/apps/CMakeFiles/mts_apps.dir/app_sor.cpp.o.d"
  "/root/repo/src/apps/app_ugray.cpp" "src/apps/CMakeFiles/mts_apps.dir/app_ugray.cpp.o" "gcc" "src/apps/CMakeFiles/mts_apps.dir/app_ugray.cpp.o.d"
  "/root/repo/src/apps/app_water.cpp" "src/apps/CMakeFiles/mts_apps.dir/app_water.cpp.o" "gcc" "src/apps/CMakeFiles/mts_apps.dir/app_water.cpp.o.d"
  "/root/repo/src/apps/prelude.cpp" "src/apps/CMakeFiles/mts_apps.dir/prelude.cpp.o" "gcc" "src/apps/CMakeFiles/mts_apps.dir/prelude.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/mts_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/mts_apps.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mts_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/mts_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mts_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mts_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mts_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
