# Empty dependencies file for mts_apps.
# This may be replaced when dependencies are built.
