file(REMOVE_RECURSE
  "CMakeFiles/mts_apps.dir/app_blkmat.cpp.o"
  "CMakeFiles/mts_apps.dir/app_blkmat.cpp.o.d"
  "CMakeFiles/mts_apps.dir/app_locus.cpp.o"
  "CMakeFiles/mts_apps.dir/app_locus.cpp.o.d"
  "CMakeFiles/mts_apps.dir/app_mp3d.cpp.o"
  "CMakeFiles/mts_apps.dir/app_mp3d.cpp.o.d"
  "CMakeFiles/mts_apps.dir/app_sieve.cpp.o"
  "CMakeFiles/mts_apps.dir/app_sieve.cpp.o.d"
  "CMakeFiles/mts_apps.dir/app_sor.cpp.o"
  "CMakeFiles/mts_apps.dir/app_sor.cpp.o.d"
  "CMakeFiles/mts_apps.dir/app_ugray.cpp.o"
  "CMakeFiles/mts_apps.dir/app_ugray.cpp.o.d"
  "CMakeFiles/mts_apps.dir/app_water.cpp.o"
  "CMakeFiles/mts_apps.dir/app_water.cpp.o.d"
  "CMakeFiles/mts_apps.dir/prelude.cpp.o"
  "CMakeFiles/mts_apps.dir/prelude.cpp.o.d"
  "CMakeFiles/mts_apps.dir/registry.cpp.o"
  "CMakeFiles/mts_apps.dir/registry.cpp.o.d"
  "libmts_apps.a"
  "libmts_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
