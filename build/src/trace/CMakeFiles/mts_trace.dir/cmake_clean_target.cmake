file(REMOVE_RECURSE
  "libmts_trace.a"
)
