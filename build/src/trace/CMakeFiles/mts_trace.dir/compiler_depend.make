# Empty compiler generated dependencies file for mts_trace.
# This may be replaced when dependencies are built.
