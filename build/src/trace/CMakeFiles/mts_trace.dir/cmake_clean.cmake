file(REMOVE_RECURSE
  "CMakeFiles/mts_trace.dir/text_tracer.cpp.o"
  "CMakeFiles/mts_trace.dir/text_tracer.cpp.o.d"
  "CMakeFiles/mts_trace.dir/timeline.cpp.o"
  "CMakeFiles/mts_trace.dir/timeline.cpp.o.d"
  "libmts_trace.a"
  "libmts_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
