file(REMOVE_RECURSE
  "libmts_sim.a"
)
