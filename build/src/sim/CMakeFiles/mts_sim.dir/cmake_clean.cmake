file(REMOVE_RECURSE
  "CMakeFiles/mts_sim.dir/machine.cpp.o"
  "CMakeFiles/mts_sim.dir/machine.cpp.o.d"
  "CMakeFiles/mts_sim.dir/processor.cpp.o"
  "CMakeFiles/mts_sim.dir/processor.cpp.o.d"
  "libmts_sim.a"
  "libmts_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
