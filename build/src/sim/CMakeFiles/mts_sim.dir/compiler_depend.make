# Empty compiler generated dependencies file for mts_sim.
# This may be replaced when dependencies are built.
