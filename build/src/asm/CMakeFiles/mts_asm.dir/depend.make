# Empty dependencies file for mts_asm.
# This may be replaced when dependencies are built.
