file(REMOVE_RECURSE
  "libmts_asm.a"
)
