file(REMOVE_RECURSE
  "CMakeFiles/mts_asm.dir/assembler.cpp.o"
  "CMakeFiles/mts_asm.dir/assembler.cpp.o.d"
  "CMakeFiles/mts_asm.dir/lexer.cpp.o"
  "CMakeFiles/mts_asm.dir/lexer.cpp.o.d"
  "CMakeFiles/mts_asm.dir/program.cpp.o"
  "CMakeFiles/mts_asm.dir/program.cpp.o.d"
  "libmts_asm.a"
  "libmts_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
