file(REMOVE_RECURSE
  "CMakeFiles/mts_cpu.dir/switch_model.cpp.o"
  "CMakeFiles/mts_cpu.dir/switch_model.cpp.o.d"
  "libmts_cpu.a"
  "libmts_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
