# Empty dependencies file for mts_cpu.
# This may be replaced when dependencies are built.
