file(REMOVE_RECURSE
  "libmts_cpu.a"
)
