# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mtsim_tests[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_custom_kernel "/root/repo/build/examples/custom_kernel")
set_tests_properties(example_custom_kernel PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_timeline "/root/repo/build/examples/timeline" "sieve" "switch-on-load")
set_tests_properties(example_timeline PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
