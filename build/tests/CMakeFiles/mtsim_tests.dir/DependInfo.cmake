
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps_integration.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_apps_integration.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_apps_integration.cpp.o.d"
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_grouping_pass.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_grouping_pass.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_grouping_pass.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_lexer.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_lexer.cpp.o.d"
  "/root/repo/tests/test_machine_exec.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_machine_exec.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_machine_exec.cpp.o.d"
  "/root/repo/tests/test_memory_timing.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_memory_timing.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_memory_timing.cpp.o.d"
  "/root/repo/tests/test_runtime_sync.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_runtime_sync.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_runtime_sync.cpp.o.d"
  "/root/repo/tests/test_switch_models.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_switch_models.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_switch_models.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util_modules.cpp" "tests/CMakeFiles/mtsim_tests.dir/test_util_modules.cpp.o" "gcc" "tests/CMakeFiles/mtsim_tests.dir/test_util_modules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mts_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mts_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mts_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mts_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/mts_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mts_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
