# Empty compiler generated dependencies file for mtsim_tests.
# This may be replaced when dependencies are built.
