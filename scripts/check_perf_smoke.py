#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh bench_simulator_speed JSON report
against the committed baseline and fail on a large median regression.

Usage: check_perf_smoke.py CURRENT.json [BASELINE.json]

Compares the `instr/s` counter of every benchmark present in both
files. CI runners are noisy and heterogeneous, so the gate is
deliberately loose: the build fails only if a benchmark regresses by
more than REGRESSION_LIMIT against the baseline median. Faster results
never fail, but improvements beyond the same limit print a WARNING so
stale baselines get refreshed instead of silently masking later
regressions.

When the current report carries both per-app series (BM_App/<app> with
the fused tier on, BM_AppNoFuse/<app> with it off — see
bench_simulator_speed.cpp), a per-app median-speedup table is printed
from the same report.
"""
import json
import pathlib
import sys

REGRESSION_LIMIT = 0.25  # fail when instr/s drops >25% vs baseline
IMPROVEMENT_WARN = 0.25  # warn (non-fatal) when >25% above baseline


def load_rates(path):
    """name -> instr/s for every benchmark reporting the counter.

    With --benchmark_repetitions the report carries one entry per
    repetition plus mean/median/stddev aggregates; the median aggregate
    (keyed back to its base run_name) wins over raw repetitions so both
    single-run baselines and repeated CI runs compare like for like.
    """
    with open(path) as f:
        data = json.load(f)
    rates = {}
    medians = {}
    for b in data.get("benchmarks", []):
        if "instr/s" not in b:
            continue
        rate = float(b["instr/s"])
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[b.get("run_name", b["name"])] = rate
        else:
            rates.setdefault(b["name"], []).append(rate)
    result = {name: sorted(rs)[len(rs) // 2] for name, rs in rates.items()}
    result.update(medians)
    return result


def fused_speedup_table(rates):
    """Per-app fused-vs-decoded medians from one report, as rows of
    (app, fused instr/s, decoded instr/s, speedup); empty when the
    report lacks either series."""
    rows = []
    for name, fused in sorted(rates.items()):
        if not name.startswith("BM_App/"):
            continue
        app = name[len("BM_App/"):]
        decoded = rates.get(f"BM_AppNoFuse/{app}")
        if decoded:
            rows.append((app, fused, decoded, fused / decoded))
    return rows


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    current = load_rates(argv[1])
    baseline_path = (argv[2] if len(argv) > 2 else
                     pathlib.Path(__file__).resolve().parent.parent /
                     "bench" / "baselines" / "BENCH_speed.json")
    baseline = load_rates(baseline_path)

    common = sorted(set(current) & set(baseline))
    if not common:
        print("perf-smoke: no common benchmarks between "
              f"{argv[1]} and {baseline_path}", file=sys.stderr)
        return 2

    failures = []
    warnings = []
    for name in common:
        ratio = current[name] / baseline[name]
        status = "ok"
        if ratio < 1.0 - REGRESSION_LIMIT:
            status = "REGRESSION"
            failures.append(name)
        elif ratio > 1.0 + IMPROVEMENT_WARN:
            status = "WARNING: faster than baseline — refresh it"
            warnings.append(name)
        print(f"{name:40s} base {baseline[name] / 1e6:9.2f}M "
              f"now {current[name] / 1e6:9.2f}M  x{ratio:5.2f}  {status}")

    speedups = fused_speedup_table(current)
    if speedups:
        print("\nfused-tier speedup (medians from this report):")
        print(f"{'app':10s} {'fused':>10s} {'decoded':>10s} {'speedup':>8s}")
        for app, fused, decoded, ratio in speedups:
            print(f"{app:10s} {fused / 1e6:9.2f}M {decoded / 1e6:9.2f}M "
                  f"{ratio:7.2f}x")

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"perf-smoke: {len(missing)} baseline benchmark(s) missing "
              f"from the current run: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    if failures:
        print(f"perf-smoke: FAIL — {len(failures)} benchmark(s) regressed "
              f"more than {REGRESSION_LIMIT:.0%}: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    if warnings:
        print(f"perf-smoke: WARNING (non-fatal) — {len(warnings)} "
              f"benchmark(s) improved more than {IMPROVEMENT_WARN:.0%} "
              f"over baseline; refresh bench/baselines/BENCH_speed.json: "
              f"{', '.join(warnings)}")
    print(f"perf-smoke: OK — {len(common)} benchmarks within "
          f"{REGRESSION_LIMIT:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
