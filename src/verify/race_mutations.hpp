/**
 * @file
 * Seeded racy mutations of generated programs.
 *
 * The race-detection cross-validation campaign needs programs that are
 * known-racy in a controlled way. Rather than generating racy programs
 * from scratch, it takes the race-free output of generateProgram() and
 * breaks exactly one synchronization idiom textually:
 *
 *  - DropLock:    remove one `call __mts_lock` / `call __mts_unlock`
 *                 pair, leaving the read-modify-write unprotected;
 *  - WidenSlice:  turn one `mul t1, s7, 8 ; slice stride` into a
 *                 multiply by 0, collapsing every thread's private
 *                 slice onto the same words;
 *  - DropBarrier: remove one `call __mts_barrier ; phase gate`,
 *                 unordering a phase write from its neighbour's read;
 *  - SpinToPlain: turn one `lds.spin` into a plain `lds`, making the
 *                 consumer's flag poll an unsynchronized read.
 *
 * Each mutation keeps the program terminating under every schedule, so
 * both detectors always get a full execution to inspect.
 */
#ifndef MTS_VERIFY_RACE_MUTATIONS_HPP
#define MTS_VERIFY_RACE_MUTATIONS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mts
{

enum class MutationKind
{
    DropLock,
    WidenSlice,
    DropBarrier,
    SpinToPlain,
};

std::string_view mutationKindName(MutationKind kind);

/** One applicable mutation site in a particular program. */
struct RaceMutation
{
    MutationKind kind = MutationKind::DropLock;
    int site = 0;  ///< which occurrence of the kind's pattern (0-based)
};

/**
 * All mutations applicable to @p source (at most one per kind: the
 * site is chosen from @p salt so different seeds exercise different
 * occurrences).
 */
std::vector<RaceMutation> enumerateRaceMutations(
    const std::string &source, std::uint64_t salt);

/** Apply one mutation; fatal if the site does not exist. */
std::string applyRaceMutation(const std::string &source,
                              const RaceMutation &m);

} // namespace mts

#endif // MTS_VERIFY_RACE_MUTATIONS_HPP
