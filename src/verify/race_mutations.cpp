#include "verify/race_mutations.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

/** Split into lines, keeping the content without the newline. */
std::vector<std::string>
toLines(const std::string &source)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= source.size()) {
        std::size_t nl = source.find('\n', start);
        if (nl == std::string::npos) {
            if (start < source.size())
                lines.push_back(source.substr(start));
            break;
        }
        lines.push_back(source.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (const std::string &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

int
countContaining(const std::vector<std::string> &lines,
                std::string_view needle)
{
    int n = 0;
    for (const std::string &l : lines)
        if (l.find(needle) != std::string::npos)
            ++n;
    return n;
}

/** Index of the @p site -th line containing @p needle; -1 if absent. */
int
findOccurrence(const std::vector<std::string> &lines,
               std::string_view needle, int site)
{
    int seen = 0;
    for (std::size_t i = 0; i < lines.size(); ++i)
        if (lines[i].find(needle) != std::string::npos &&
            seen++ == site)
            return static_cast<int>(i);
    return -1;
}

constexpr std::string_view kLockCall = "call __mts_lock";
constexpr std::string_view kUnlockCall = "call __mts_unlock";
constexpr std::string_view kSliceMark = "mul t1, s7, 8 ; slice stride";
constexpr std::string_view kPhaseGate = "call __mts_barrier ; phase gate";
constexpr std::string_view kSpinLoad = "lds.spin";

} // namespace

std::string_view
mutationKindName(MutationKind kind)
{
    switch (kind) {
      case MutationKind::DropLock:
        return "drop-lock";
      case MutationKind::WidenSlice:
        return "widen-slice";
      case MutationKind::DropBarrier:
        return "drop-barrier";
      case MutationKind::SpinToPlain:
        return "spin-to-plain";
    }
    return "?";
}

std::vector<RaceMutation>
enumerateRaceMutations(const std::string &source, std::uint64_t salt)
{
    std::vector<std::string> lines = toLines(source);
    std::vector<RaceMutation> out;
    auto add = [&](MutationKind kind, std::string_view needle) {
        int n = countContaining(lines, needle);
        if (n > 0)
            out.push_back(
                {kind, static_cast<int>(salt %
                                        static_cast<std::uint64_t>(n))});
    };
    add(MutationKind::DropLock, kLockCall);
    add(MutationKind::WidenSlice, kSliceMark);
    add(MutationKind::DropBarrier, kPhaseGate);
    add(MutationKind::SpinToPlain, kSpinLoad);
    return out;
}

std::string
applyRaceMutation(const std::string &source, const RaceMutation &m)
{
    std::vector<std::string> lines = toLines(source);
    switch (m.kind) {
      case MutationKind::DropLock: {
        int li = findOccurrence(lines, kLockCall, m.site);
        MTS_REQUIRE(li >= 0, "drop-lock site " << m.site << " not found");
        int ui = -1;
        for (std::size_t i = static_cast<std::size_t>(li) + 1;
             i < lines.size(); ++i)
            if (lines[i].find(kUnlockCall) != std::string::npos) {
                ui = static_cast<int>(i);
                break;
            }
        MTS_REQUIRE(ui >= 0, "drop-lock: no matching unlock call");
        lines.erase(lines.begin() + ui);
        lines.erase(lines.begin() + li);
        break;
      }
      case MutationKind::WidenSlice: {
        int i = findOccurrence(lines, kSliceMark, m.site);
        MTS_REQUIRE(i >= 0,
                    "widen-slice site " << m.site << " not found");
        std::size_t pos = lines[static_cast<std::size_t>(i)].find(
            "mul t1, s7, 8");
        lines[static_cast<std::size_t>(i)].replace(
            pos, std::string_view("mul t1, s7, 8").size(),
            "mul t1, s7, 0");
        break;
      }
      case MutationKind::DropBarrier: {
        int i = findOccurrence(lines, kPhaseGate, m.site);
        MTS_REQUIRE(i >= 0,
                    "drop-barrier site " << m.site << " not found");
        lines.erase(lines.begin() + i);
        break;
      }
      case MutationKind::SpinToPlain: {
        int i = findOccurrence(lines, kSpinLoad, m.site);
        MTS_REQUIRE(i >= 0,
                    "spin-to-plain site " << m.site << " not found");
        std::size_t pos =
            lines[static_cast<std::size_t>(i)].find(kSpinLoad);
        lines[static_cast<std::size_t>(i)].replace(pos, kSpinLoad.size(),
                                                   "lds");
        break;
      }
    }
    return joinLines(lines);
}

} // namespace mts
