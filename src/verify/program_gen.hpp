/**
 * @file
 * Seeded random generator of interleaving-independent MTS programs.
 *
 * The fuzzer needs programs whose final state is the same under *every*
 * legal execution order, so that a digest mismatch between the reference
 * interpreter and the Machine always means a bug, never a racy program.
 * Every construct the generator emits is order-independent by design:
 *
 *  - each thread stores only into its own disjoint slice of the shared
 *    private region (and its own gp_out/gp_fout result slots);
 *  - fetch-and-add accumulators only ever receive commutative additions;
 *    a live FAA result (which IS order-dependent) is folded through
 *    `slt` against a statically-known upper bound, which collapses it to
 *    the constant 1;
 *  - read-modify-write of a genuinely shared word happens only under the
 *    prelude ticket lock, and the (order-dependent) value read there is
 *    never folded into a checksum — only the (deterministic) final sum
 *    is observable;
 *  - producer/consumer values travel through a store-then-flag protocol
 *    spun on with `lds.spin`;
 *  - floating-point data never crosses threads except through that
 *    protocol, so FP non-associativity cannot surface.
 *
 * Checksums accumulate in s0 (integer) and f8 (double) and are published
 * to shared memory and to the termination registers v0/v1/f0/f1, making
 * a single dropped, duplicated or reordered instruction almost surely
 * visible in the digest.
 */
#ifndef MTS_VERIFY_PROGRAM_GEN_HPP
#define MTS_VERIFY_PROGRAM_GEN_HPP

#include <cstdint>
#include <string>

namespace mts
{

/** Shape knobs of one generated program. */
struct GenOptions
{
    std::uint64_t seed = 1;
    int threads = 4;    ///< thread count the program is generated for
    int segments = 10;  ///< top-level segments to emit

    /** Maximum trip count of generated counted loops. */
    int maxLoopTrips = 4;

    /// @name Feature gates (all on by default).
    /// @{
    bool withLocks = true;  ///< prelude ticket-lock protected RMW
    bool withFaa = true;    ///< fetch-and-add accumulators
    bool withSpin = true;   ///< store-then-flag producer/consumer
    bool withBarrier = true;
    bool withFp = true;
    bool withCswitch = true;  ///< sprinkle explicit cswitch instructions
    bool withPhases = true;   ///< barrier-separated neighbour exchange
    /// @}
};

/** A generated program (assembly source only; assemble to run). */
struct GeneratedProgram
{
    std::uint64_t seed = 0;
    int threads = 0;

    /**
     * User assembly. Programs using locks/barriers call prelude routines,
     * so assemble runtimePrelude() + source (see apps/app.hpp).
     */
    std::string source;

    /** True if the program calls prelude routines. */
    bool usesRuntime = false;
};

/** Generate one program; same options -> byte-identical source. */
GeneratedProgram generateProgram(const GenOptions &opts);

} // namespace mts

#endif // MTS_VERIFY_PROGRAM_GEN_HPP
