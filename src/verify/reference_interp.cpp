#include "verify/reference_interp.hpp"

#include <bit>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

/** Per-thread state plus its lazily-grown local memory. */
struct RefThread
{
    RefThreadState st;
    std::vector<std::uint64_t> local;
    Addr localWords = 0;

    std::int64_t
    readI(std::uint8_t r) const
    {
        return r == kRegZero ? 0 : st.iregs[r];
    }

    void
    writeI(std::uint8_t r, std::int64_t v)
    {
        if (r != kRegZero)
            st.iregs[r] = v;
    }

    std::uint64_t
    localRead(Addr addr, std::uint32_t line)
    {
        MTS_REQUIRE(addr < localWords, "local load out of bounds: address "
                                           << addr << " (line " << line
                                           << ")");
        return addr < local.size() ? local[addr] : 0;
    }

    void
    localWrite(Addr addr, std::uint64_t v, std::uint32_t line)
    {
        MTS_REQUIRE(addr < localWords, "local store out of bounds: address "
                                           << addr << " (line " << line
                                           << ")");
        if (addr >= local.size())
            local.resize(static_cast<std::size_t>(addr) + 1, 0);
        local[addr] = v;
    }
};

} // namespace

RefResult
runReference(const Program &prog, const RefOptions &opts)
{
    MTS_REQUIRE(opts.threads > 0, "reference needs at least one thread");
    MTS_REQUIRE(opts.quantum > 0, "reference quantum must be positive");
    MTS_REQUIRE(!prog.code.empty(), "reference given an empty program");

    RefResult res;
    res.sharedImage.assign(
        static_cast<std::size_t>(prog.sharedWords + opts.extraSharedWords),
        0);

    auto sharedSlot = [&](Addr addr,
                          std::uint32_t line) -> std::uint64_t & {
        MTS_REQUIRE(isSharedAddr(addr),
                    "shared access to local address " << addr << " (line "
                                                      << line << ")");
        Addr off = addr - kSharedBase;
        MTS_REQUIRE(off < res.sharedImage.size(),
                    "shared access out of bounds: word "
                        << off << " of " << res.sharedImage.size()
                        << " (line " << line << ")");
        return res.sharedImage[static_cast<std::size_t>(off)];
    };

    std::vector<RefThread> threads(static_cast<std::size_t>(opts.threads));
    for (int t = 0; t < opts.threads; ++t) {
        RefThread &th = threads[static_cast<std::size_t>(t)];
        th.localWords = opts.localWords;
        th.st.pc = prog.entry;
        th.st.iregs[kRegArg0] = t;
        th.st.iregs[kRegArg1] = opts.threads;
        th.st.iregs[kRegSp] = static_cast<std::int64_t>(opts.localWords);
    }

    const std::vector<Instruction> &code = prog.code;
    const auto codeSize = static_cast<std::int32_t>(code.size());
    int live = opts.threads;

    // One instruction (or quantum) per live thread, strictly round-robin.
    // A spinning thread makes no progress on its own; the budget bounds
    // programs whose spin condition is never satisfied.
    while (live > 0) {
        for (auto &th : threads) {
            if (th.st.halted)
                continue;
            for (std::uint64_t q = 0; q < opts.quantum && !th.st.halted;
                 ++q) {
                MTS_REQUIRE(res.steps < opts.maxSteps,
                            "reference interpreter exceeded "
                                << opts.maxSteps
                                << " instructions (livelock or runaway "
                                   "spin?)");
                MTS_REQUIRE(th.st.pc >= 0 && th.st.pc < codeSize,
                            "pc " << th.st.pc
                                  << " out of range (bad jr/fallthrough?)");
                const Instruction &inst =
                    code[static_cast<std::size_t>(th.st.pc)];
                ++res.steps;
                ++th.st.steps;

                std::int32_t nextPc = th.st.pc + 1;

                auto a = [&]() { return th.readI(inst.rs1); };
                auto b = [&]() {
                    return inst.useImm ? inst.imm : th.readI(inst.rs2);
                };
                auto wI = [&](std::int64_t v) { th.writeI(inst.rd, v); };
                auto wF = [&](double v) { th.st.fregs[inst.rd] = v; };
                auto fa = [&]() { return th.st.fregs[inst.rs1]; };
                auto fb = [&]() { return th.st.fregs[inst.rs2]; };
                auto effAddr = [&]() {
                    return static_cast<Addr>(th.readI(inst.rs1) + inst.imm);
                };

                switch (inst.op) {
                  case Opcode::NOP:
                    break;
                  case Opcode::HALT:
                    th.st.halted = true;
                    --live;
                    break;

                  // Timing-only instructions: architecturally nops.
                  case Opcode::CSWITCH:
                  case Opcode::SETPRI:
                    break;

                  // ---- integer ALU (wrapping two's complement) ----
                  case Opcode::ADD:
                    wI(static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a()) +
                        static_cast<std::uint64_t>(b())));
                    break;
                  case Opcode::SUB:
                    wI(static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a()) -
                        static_cast<std::uint64_t>(b())));
                    break;
                  case Opcode::MUL:
                    wI(static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a()) *
                        static_cast<std::uint64_t>(b())));
                    break;
                  case Opcode::DIV: {
                    std::int64_t d = b();
                    MTS_REQUIRE(d != 0, "div by zero at source line "
                                            << inst.srcLine);
                    wI(a() / d);
                    break;
                  }
                  case Opcode::REM: {
                    std::int64_t d = b();
                    MTS_REQUIRE(d != 0, "rem by zero at source line "
                                            << inst.srcLine);
                    wI(a() % d);
                    break;
                  }
                  case Opcode::AND: wI(a() & b()); break;
                  case Opcode::OR: wI(a() | b()); break;
                  case Opcode::XOR: wI(a() ^ b()); break;
                  case Opcode::SLL:
                    wI(static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a()) << (b() & 63)));
                    break;
                  case Opcode::SRL:
                    wI(static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a()) >> (b() & 63)));
                    break;
                  case Opcode::SRA: wI(a() >> (b() & 63)); break;
                  case Opcode::SLT: wI(a() < b() ? 1 : 0); break;
                  case Opcode::SLE: wI(a() <= b() ? 1 : 0); break;
                  case Opcode::SEQ: wI(a() == b() ? 1 : 0); break;
                  case Opcode::SNE: wI(a() != b() ? 1 : 0); break;
                  case Opcode::LI: wI(inst.imm); break;

                  // ---- floating point ----
                  case Opcode::FADD: wF(fa() + fb()); break;
                  case Opcode::FSUB: wF(fa() - fb()); break;
                  case Opcode::FMUL: wF(fa() * fb()); break;
                  case Opcode::FDIV: wF(fa() / fb()); break;
                  case Opcode::FSQRT: wF(std::sqrt(fa())); break;
                  case Opcode::FNEG: wF(-fa()); break;
                  case Opcode::FABS: wF(std::fabs(fa())); break;
                  case Opcode::FMIN: wF(std::fmin(fa(), fb())); break;
                  case Opcode::FMAX: wF(std::fmax(fa(), fb())); break;
                  case Opcode::FMV: wF(fa()); break;
                  case Opcode::FLI: wF(inst.fimm); break;
                  case Opcode::CVTIF:
                    wF(static_cast<double>(a()));
                    break;
                  case Opcode::CVTFI:
                    wI(static_cast<std::int64_t>(std::trunc(fa())));
                    break;
                  case Opcode::FEQ: wI(fa() == fb() ? 1 : 0); break;
                  case Opcode::FLT: wI(fa() < fb() ? 1 : 0); break;
                  case Opcode::FLE: wI(fa() <= fb() ? 1 : 0); break;

                  // ---- control flow ----
                  case Opcode::BEQ:
                    if (a() == b())
                        nextPc = inst.target;
                    break;
                  case Opcode::BNE:
                    if (a() != b())
                        nextPc = inst.target;
                    break;
                  case Opcode::BLT:
                    if (a() < b())
                        nextPc = inst.target;
                    break;
                  case Opcode::BGE:
                    if (a() >= b())
                        nextPc = inst.target;
                    break;
                  case Opcode::J:
                    nextPc = inst.target;
                    break;
                  case Opcode::JAL:
                    th.writeI(kRegRa, th.st.pc + 1);
                    nextPc = inst.target;
                    break;
                  case Opcode::JR:
                    nextPc = static_cast<std::int32_t>(a());
                    break;

                  // ---- local memory ----
                  case Opcode::LDL: {
                    Addr addr = effAddr();
                    MTS_REQUIRE(!isSharedAddr(addr),
                                "ldl with shared address (line "
                                    << inst.srcLine << ")");
                    wI(static_cast<std::int64_t>(
                        th.localRead(addr, inst.srcLine)));
                    break;
                  }
                  case Opcode::FLDL: {
                    Addr addr = effAddr();
                    MTS_REQUIRE(!isSharedAddr(addr),
                                "fldl with shared address (line "
                                    << inst.srcLine << ")");
                    wF(std::bit_cast<double>(
                        th.localRead(addr, inst.srcLine)));
                    break;
                  }
                  case Opcode::STL: {
                    Addr addr = effAddr();
                    MTS_REQUIRE(!isSharedAddr(addr),
                                "stl with shared address (line "
                                    << inst.srcLine << ")");
                    th.localWrite(addr,
                                  static_cast<std::uint64_t>(
                                      th.readI(inst.rs2)),
                                  inst.srcLine);
                    break;
                  }
                  case Opcode::FSTL: {
                    Addr addr = effAddr();
                    MTS_REQUIRE(!isSharedAddr(addr),
                                "fstl with shared address (line "
                                    << inst.srcLine << ")");
                    th.localWrite(
                        addr,
                        std::bit_cast<std::uint64_t>(th.st.fregs[inst.rs2]),
                        inst.srcLine);
                    break;
                  }

                  // ---- shared memory: immediate, atomic ----
                  case Opcode::LDS:
                  case Opcode::LDS_SPIN:
                    wI(static_cast<std::int64_t>(
                        sharedSlot(effAddr(), inst.srcLine)));
                    break;
                  case Opcode::FLDS:
                    wF(std::bit_cast<double>(
                        sharedSlot(effAddr(), inst.srcLine)));
                    break;
                  case Opcode::LDSD: {
                    Addr addr = effAddr();
                    std::uint64_t v0 = sharedSlot(addr, inst.srcLine);
                    std::uint64_t v1 = sharedSlot(addr + 1, inst.srcLine);
                    wI(static_cast<std::int64_t>(v0));
                    th.writeI(static_cast<std::uint8_t>(inst.rd + 1),
                              static_cast<std::int64_t>(v1));
                    break;
                  }
                  case Opcode::FLDSD: {
                    Addr addr = effAddr();
                    std::uint64_t v0 = sharedSlot(addr, inst.srcLine);
                    std::uint64_t v1 = sharedSlot(addr + 1, inst.srcLine);
                    wF(std::bit_cast<double>(v0));
                    th.st.fregs[inst.rd + 1] = std::bit_cast<double>(v1);
                    break;
                  }
                  case Opcode::FAA: {
                    std::uint64_t &slot =
                        sharedSlot(effAddr(), inst.srcLine);
                    std::uint64_t old = slot;
                    slot = old + static_cast<std::uint64_t>(
                                     th.readI(inst.rs2));
                    wI(static_cast<std::int64_t>(old));
                    break;
                  }
                  case Opcode::STS:
                    sharedSlot(effAddr(), inst.srcLine) =
                        static_cast<std::uint64_t>(th.readI(inst.rs2));
                    break;
                  case Opcode::FSTS:
                    sharedSlot(effAddr(), inst.srcLine) =
                        std::bit_cast<std::uint64_t>(
                            th.st.fregs[inst.rs2]);
                    break;

                  case Opcode::PRINT:
                    if (opts.collectPrints)
                        res.prints.push_back(
                            format("%lld", static_cast<long long>(a())));
                    break;
                  case Opcode::FPRINT:
                    if (opts.collectPrints)
                        res.prints.push_back(format("%.10g", fa()));
                    break;

                  default:
                    MTS_PANIC("unimplemented opcode "
                              << opcodeName(inst.op) << " at line "
                              << inst.srcLine);
                }

                th.st.pc = nextPc;
            }
        }
    }

    // Digest: the static shared segment (extra scratch excluded, matching
    // Machine::run), then termination registers in global-id order.
    for (Addr w = 0; w < prog.sharedWords; ++w)
        res.digest.addSharedWord(
            res.sharedImage[static_cast<std::size_t>(w)]);
    res.threads.reserve(threads.size());
    for (RefThread &th : threads) {
        res.digest.addThreadRegs(th.st.iregs[kDigestIntReg0],
                                 th.st.iregs[kDigestIntReg1],
                                 th.st.fregs[kDigestFpReg0],
                                 th.st.fregs[kDigestFpReg1]);
        res.threads.push_back(th.st);
    }
    return res;
}

} // namespace mts
