/**
 * @file
 * Differential runner: one program, every machine configuration, one
 * verdict.
 *
 * A program is assembled twice — raw and through the grouping pass — and
 * executed on the reference interpreter and on the Machine across the
 * configuration matrix (switch models x threads-per-processor splits x
 * cache geometries x a zero-latency slice). Every run's final-state
 * digest must equal the reference digest, and every run's metrics must
 * satisfy the accounting invariants the simulator is supposed to
 * maintain by construction:
 *
 *  - per processor, busy + stall + idle cycles == finish time;
 *  - run-length histogram mass + zero-length runs
 *        == taken switches + threads per processor
 *    (every taken switch and every halt ends exactly one run);
 *  - with virtual threading on: save cycles == restore cycles ==
 *    context-switch cost x timer preemptions, and the run-count identity
 *    gains the preemption term (a preemption ends a run without a taken
 *    switch);
 *  - network messages == load + store + faa + fill + inval messages;
 *  - forward/return bit totals == the per-type message counts times the
 *    pinned per-message field sizes (header/address/data words).
 *
 * Raw (ungrouped) programs are excluded from the explicit-switch and
 * conditional-switch models: those require `cswitch` instructions, and
 * the runtime prelude's spin loops have none until the grouping pass
 * inserts them.
 */
#ifndef MTS_VERIFY_DIFFERENTIAL_HPP
#define MTS_VERIFY_DIFFERENTIAL_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "cpu/switch_model.hpp"
#include "sim/state_digest.hpp"
#include "verify/reference_interp.hpp"

namespace mts
{

/** Why one configuration diverged. */
enum class DivergenceKind
{
    Digest,     ///< final state differs from the reference
    Invariant,  ///< a metrics accounting identity is violated
    RunError,   ///< the Machine rejected or failed a legal program
    Unstable,   ///< reference digests differ across schedules (racy
                ///< program: a generator bug, not a simulator bug)
};

std::string_view divergenceKindName(DivergenceKind kind);

/** One divergence: what failed, where, and how. */
struct Divergence
{
    DivergenceKind kind = DivergenceKind::Digest;
    std::string config;  ///< "explicit-switch grouped tpp=4 cache=8x2"
    std::string detail;  ///< first differing words, violated identity, ...
};

/** Configuration-matrix knobs of one differential run. */
struct DiffOptions
{
    int threads = 4;             ///< total threads in every config
    Cycle latency = 200;         ///< network round trip
    bool includeZeroLatency = true;

    /**
     * Also run a mesh-backend slice (narrow links for heavy contention,
     * one config with a limited-pointer directory). Load-dependent
     * timing must never change architectural results, so the digests
     * still have to match the reference.
     */
    bool includeMesh = true;

    /**
     * Also run a virtual-threading slice: the same `threads` software
     * threads time-multiplexed over fewer hardware contexts (N/K ratios
     * 2 and N, quanta 50 and 500, with and without a context-switch
     * cost). Preemption moves live register state between contexts at
     * arbitrary instruction boundaries, so these runs stress a whole
     * scheduling layer the 1:1 matrix never enters — and the digest
     * still has to match the reference. Skipped when `threads` < 2.
     */
    bool includeVThreads = true;

    /**
     * Also run a fused-vs-decoded slice: two representative configs
     * re-run with the superinstruction tier forced off. Every *other*
     * matrix run fuses aggressively (see `fuseThreshold`), so this
     * slice closes the three-way triangle — fused and decoded
     * executions must both reproduce the reference digest.
     */
    bool includeFused = true;
    bool checkInvariants = true;

    /**
     * Fuse threshold applied to every matrix run (1 = fuse on first
     * touch, maximizing fused-path coverage under the digest and
     * invariant checks).
     */
    std::uint32_t fuseThreshold = 1;

    /** Threads-per-processor splits (divisors of threads are used). */
    std::vector<int> tppList{1, 2, 4};

    /** Models to run (kAllModels when empty). */
    std::vector<SwitchModel> models;

    Cycle maxCycles = 400'000'000ull;
    RefOptions ref;

    /**
     * Transform producing the "grouped" program. Defaults to the real
     * grouping pass; tests inject deliberately-miscompiling transforms
     * to prove the harness catches them.
     */
    std::function<Program(const Program &)> groupedTransform;
};

/** Everything one differential run produced. */
struct DiffReport
{
    std::vector<Divergence> divergences;
    int machineRuns = 0;       ///< Machine configurations executed
    StateDigest refDigest;     ///< reference (schedule-stable) digest

    bool
    ok() const
    {
        return divergences.empty();
    }

    /** Multi-line human-readable summary of all divergences. */
    std::string summary() const;
};

/**
 * Run the full differential matrix on @p userSource (user assembly; the
 * runtime prelude is prepended before assembly).
 */
DiffReport runDifferential(const std::string &userSource,
                           const DiffOptions &opts = {});

} // namespace mts

#endif // MTS_VERIFY_DIFFERENTIAL_HPP
