#include "verify/differential.hpp"

#include "apps/app.hpp"
#include "asm/assembler.hpp"
#include "metrics/stat_publish.hpp"
#include "opt/grouping_pass.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace mts
{

std::string_view
divergenceKindName(DivergenceKind kind)
{
    switch (kind) {
      case DivergenceKind::Digest: return "digest";
      case DivergenceKind::Invariant: return "invariant";
      case DivergenceKind::RunError: return "run-error";
      case DivergenceKind::Unstable: return "unstable";
    }
    return "?";
}

namespace
{

/** Shared-segment symbol covering word offset @p off, or "". */
std::string
sharedSymbolAt(const Program &prog, Addr off)
{
    Addr addr = kSharedBase + off;
    for (const auto &[name, sym] : prog.symbols) {
        if (sym.kind != SymbolKind::Shared)
            continue;
        Addr base = static_cast<Addr>(sym.value);
        if (addr >= base && addr < base + (sym.size ? sym.size : 1))
            return format("%s+%llu", name.c_str(),
                          static_cast<unsigned long long>(addr - base));
    }
    return "";
}

/** First few shared-word and register differences, for the report. */
std::string
describeDigestDiff(const Program &prog, const RefResult &ref,
                   Machine &machine, const MachineConfig &cfg)
{
    std::string out;
    int shown = 0;
    for (Addr w = 0; w < prog.sharedWords && shown < 4; ++w) {
        std::uint64_t got = machine.sharedMem().read(kSharedBase + w);
        std::uint64_t want = ref.sharedImage[static_cast<std::size_t>(w)];
        if (got == want)
            continue;
        std::string sym = sharedSymbolAt(prog, w);
        out += format("  shared[%llu]%s%s: machine=%llu reference=%llu\n",
                      static_cast<unsigned long long>(w),
                      sym.empty() ? "" : " ", sym.c_str(),
                      static_cast<unsigned long long>(got),
                      static_cast<unsigned long long>(want));
        ++shown;
    }
    const int swPerProc = cfg.effSwThreadsPerProc();
    for (int p = 0; p < cfg.numProcs && shown < 8; ++p)
        for (int t = 0; t < swPerProc && shown < 8; ++t) {
            const ThreadContext &th =
                machine.processor(p).thread(static_cast<std::uint16_t>(t));
            int gid = p * swPerProc + t;
            const RefThreadState &rt =
                ref.threads[static_cast<std::size_t>(gid)];
            if (th.iregs[kDigestIntReg0] != rt.iregs[kDigestIntReg0] ||
                th.iregs[kDigestIntReg1] != rt.iregs[kDigestIntReg1]) {
                out += format("  thread %d v0/v1: machine=%lld/%lld "
                              "reference=%lld/%lld\n",
                              gid,
                              static_cast<long long>(
                                  th.iregs[kDigestIntReg0]),
                              static_cast<long long>(
                                  th.iregs[kDigestIntReg1]),
                              static_cast<long long>(
                                  rt.iregs[kDigestIntReg0]),
                              static_cast<long long>(
                                  rt.iregs[kDigestIntReg1]));
                ++shown;
            }
            if (th.fregs[kDigestFpReg0] != rt.fregs[kDigestFpReg0] ||
                th.fregs[kDigestFpReg1] != rt.fregs[kDigestFpReg1]) {
                out += format("  thread %d f0/f1: machine=%.17g/%.17g "
                              "reference=%.17g/%.17g\n",
                              gid, th.fregs[kDigestFpReg0],
                              th.fregs[kDigestFpReg1],
                              rt.fregs[kDigestFpReg0],
                              rt.fregs[kDigestFpReg1]);
                ++shown;
            }
        }
    if (out.empty())
        out = "  (hash mismatch with no visible word/register diff)\n";
    return out;
}

/** Check the metrics accounting identities of one finished run. */
void
checkInvariants(const RunResult &r, const MachineConfig &cfg,
                const std::string &label,
                std::vector<Divergence> &divergences)
{
    auto fail = [&](const std::string &detail) {
        divergences.push_back(
            {DivergenceKind::Invariant, label, detail});
    };

    const bool vt = cfg.swThreadsPerProc > 0;
    for (int p = 0; p < cfg.numProcs; ++p) {
        CpuStats c = cpuStatsFromMetrics(
            r.metrics, "cpu.p" + std::to_string(p));
        Cycle accounted = c.busyCycles + c.stallCycles + c.idleCycles;
        if (accounted != c.finishTime)
            fail(format("cpu.p%d: busy+stall+idle = %llu != finish_time "
                        "%llu",
                        p, static_cast<unsigned long long>(accounted),
                        static_cast<unsigned long long>(c.finishTime)));
        SchedStats s;
        if (vt)
            s = schedStatsFromMetrics(r.metrics,
                                      "sched.p" + std::to_string(p));
        std::uint64_t runsEnded = c.runLengths.count() + c.zeroRuns;
        std::uint64_t runsExpected =
            c.switchesTaken + s.preemptions +
            static_cast<std::uint64_t>(cfg.effSwThreadsPerProc());
        if (runsEnded != runsExpected)
            fail(format("cpu.p%d: run_lengths mass + zero_runs = %llu != "
                        "switches.taken + preemptions + threads = %llu",
                        p, static_cast<unsigned long long>(runsEnded),
                        static_cast<unsigned long long>(runsExpected)));
        if (vt) {
            // Only timer preemptions pay the context-switch cost, and
            // they pay the save and restore halves symmetrically.
            std::uint64_t expect = s.preemptions * cfg.ctxSwitchCost;
            if (s.saveCycles != expect || s.restoreCycles != expect)
                fail(format(
                    "sched.p%d: save/restore = %llu/%llu != ctx cost x "
                    "preemptions = %llu",
                    p, static_cast<unsigned long long>(s.saveCycles),
                    static_cast<unsigned long long>(s.restoreCycles),
                    static_cast<unsigned long long>(expect)));
        }
    }

    const NetworkStats &n = r.net;
    std::uint64_t msgSum = n.loadMsgs + n.storeMsgs + n.faaMsgs +
                           n.fillMsgs + n.invalMsgs;
    if (n.messages != msgSum)
        fail(format("net: messages %llu != per-type sum %llu",
                    static_cast<unsigned long long>(n.messages),
                    static_cast<unsigned long long>(msgSum)));

    std::uint64_t fwd = (n.loadMsgs + n.fillMsgs) *
                            (kHeaderBits + kAddrBits) +
                        (n.storeMsgs + n.faaMsgs) *
                            (kHeaderBits + kAddrBits + kDataBits) +
                        n.invalMsgs * (kHeaderBits + kAddrBits);
    if (n.forwardBits != fwd)
        fail(format("net: forward bits %llu != reconstruction %llu",
                    static_cast<unsigned long long>(n.forwardBits),
                    static_cast<unsigned long long>(fwd)));

    std::uint64_t lineBits =
        kHeaderBits + cfg.cache.lineWords * kDataBits;
    std::uint64_t ret = (n.loadMsgs - n.pairMsgs) *
                            (kHeaderBits + kDataBits) +
                        n.pairMsgs * (kHeaderBits + 2 * kDataBits) +
                        n.fillMsgs * lineBits + n.storeMsgs * kHeaderBits +
                        n.faaMsgs * (kHeaderBits + kDataBits) +
                        n.invalMsgs * kHeaderBits;
    if (n.returnBits != ret)
        fail(format("net: return bits %llu != reconstruction %llu",
                    static_cast<unsigned long long>(n.returnBits),
                    static_cast<unsigned long long>(ret)));
}

} // namespace

std::string
DiffReport::summary() const
{
    if (divergences.empty())
        return format("ok (%d machine runs, reference %s)\n", machineRuns,
                      refDigest.hex().c_str());
    std::string out = format("%zu divergence(s) in %d machine runs:\n",
                             divergences.size(), machineRuns);
    for (const Divergence &d : divergences) {
        out += format("[%s] %s\n",
                      std::string(divergenceKindName(d.kind)).c_str(),
                      d.config.c_str());
        out += d.detail;
        if (!d.detail.empty() && d.detail.back() != '\n')
            out += '\n';
    }
    return out;
}

DiffReport
runDifferential(const std::string &userSource, const DiffOptions &opts)
{
    DiffReport report;

    Program raw = assemble(runtimePrelude() + userSource);

    // Interleaving-independence screen: the reference digest must be the
    // same under two different round-robin schedules. A racy program
    // would turn every digest comparison below into noise.
    //
    // A reference failure (livelock budget, runtime fault) is reported
    // as a RunError divergence rather than thrown: one bad program must
    // not abort a whole fuzz campaign.
    RefOptions refOpts = opts.ref;
    refOpts.threads = opts.threads;
    RefResult ref;
    try {
        ref = runReference(raw, refOpts);
    } catch (const FatalError &e) {
        report.divergences.push_back({DivergenceKind::RunError,
                                      "reference run",
                                      format("  %s\n", e.what())});
        return report;
    }
    {
        RefOptions alt = refOpts;
        alt.quantum = refOpts.quantum == 3 ? 5 : 3;
        RefResult ref2;
        try {
            ref2 = runReference(raw, alt);
        } catch (const FatalError &e) {
            // Terminates under one schedule but faults under another:
            // order-dependent by definition.
            report.divergences.push_back(
                {DivergenceKind::Unstable, "reference self-check",
                 format("  quantum %llu ok, quantum %llu failed: %s\n",
                        static_cast<unsigned long long>(refOpts.quantum),
                        static_cast<unsigned long long>(alt.quantum),
                        e.what())});
            report.refDigest = ref.digest;
            return report;
        }
        if (ref.digest != ref2.digest) {
            report.divergences.push_back(
                {DivergenceKind::Unstable, "reference self-check",
                 format("  quantum %llu -> %s\n  quantum %llu -> %s\n",
                        static_cast<unsigned long long>(refOpts.quantum),
                        ref.digest.hex().c_str(),
                        static_cast<unsigned long long>(alt.quantum),
                        ref2.digest.hex().c_str())});
            report.refDigest = ref.digest;
            return report;
        }
    }
    report.refDigest = ref.digest;

    Program grouped = opts.groupedTransform ? opts.groupedTransform(raw)
                                            : applyGroupingPass(raw);

    // The grouped program must still be architecturally equivalent.
    {
        RefResult refG;
        try {
            refG = runReference(grouped, refOpts);
        } catch (const FatalError &e) {
            report.divergences.push_back(
                {DivergenceKind::RunError, "grouped reference",
                 format("  %s\n", e.what())});
            return report;
        }
        if (refG.digest != ref.digest) {
            report.divergences.push_back(
                {DivergenceKind::Digest, "grouped reference",
                 format("  grouping changed the reference digest:\n"
                        "  raw %s\n  grouped %s\n",
                        ref.digest.hex().c_str(),
                        refG.digest.hex().c_str())});
            return report;
        }
    }

    struct Variant
    {
        const char *name;
        const Program *prog;
    };
    const Variant variants[] = {{"raw", &raw}, {"grouped", &grouped}};

    std::vector<SwitchModel> models = opts.models;
    if (models.empty())
        models.assign(std::begin(kAllModels), std::end(kAllModels));

    // Cache geometries: the default, plus a tiny thrashing cache that
    // forces eviction/invalidation traffic.
    const CacheConfig cacheVariants[] = {{2048, 4}, {8, 2}};

    auto runOne = [&](const Variant &v, SwitchModel model, int tpp,
                      const CacheConfig &cache, const NetworkConfig &net,
                      const DirectoryConfig &dir = {}, int swThreads = 0,
                      Cycle quantum = 0, Cycle ctxCost = 0,
                      bool fuseOff = false) {
        MachineConfig cfg;
        // Virtual-threading runs put all `threads` software threads on
        // enough processors that tpp hardware contexts each multiplex
        // swThreads of them; 1:1 runs split threads across processors.
        cfg.numProcs =
            opts.threads / (swThreads > 0 ? swThreads : tpp);
        cfg.threadsPerProc = tpp;
        cfg.swThreadsPerProc = swThreads;
        if (swThreads > 0) {
            cfg.quantumCycles = quantum;
            cfg.ctxSwitchCost = ctxCost;
        }
        cfg.model = model;
        cfg.network = net;
        cfg.cache = cache;
        cfg.directory = dir;
        cfg.maxCycles = opts.maxCycles;
        cfg.fuseSpans = !fuseOff;
        cfg.fuseThreshold = opts.fuseThreshold;
        std::string label = format(
            "%s %s tpp=%d latency=%llu",
            std::string(switchModelName(model)).c_str(), v.name, tpp,
            static_cast<unsigned long long>(net.roundTrip));
        if (swThreads > 0)
            label += format(" vt=%d/%d q=%llu c=%llu", swThreads, tpp,
                            static_cast<unsigned long long>(quantum),
                            static_cast<unsigned long long>(ctxCost));
        if (net.kind == NetworkKind::Mesh)
            label += format(" net=mesh:lb%llu",
                            static_cast<unsigned long long>(net.linkBits));
        if (dir.mode == DirectoryMode::LimitedPtr)
            label += format(" dir=limited/%d", dir.pointers);
        if (modelUsesCache(model))
            label += format(" cache=%ux%u", cache.sizeWords,
                            cache.lineWords);
        if (fuseOff)
            label += " fuse=off";
        ++report.machineRuns;
        try {
            Machine machine(*v.prog, cfg);
            machine.setPrintHandler([](const std::string &) {});
            RunResult r = machine.run();
            if (r.digest != ref.digest)
                report.divergences.push_back(
                    {DivergenceKind::Digest, label,
                     describeDigestDiff(*v.prog, ref, machine, cfg)});
            if (opts.checkInvariants)
                checkInvariants(r, cfg, label, report.divergences);
        } catch (const FatalError &e) {
            report.divergences.push_back(
                {DivergenceKind::RunError, label,
                 format("  %s\n", e.what())});
        }
    };

    auto constNet = [&](Cycle latency) {
        NetworkConfig n;
        n.roundTrip = latency;
        return n;
    };

    for (const Variant &v : variants)
        for (SwitchModel model : models) {
            // Raw code has no cswitch anywhere (including the prelude's
            // spin loops), so cswitch-driven models would livelock.
            if (v.prog == &raw && modelNeedsSwitchInstr(model))
                continue;
            for (int tpp : opts.tppList) {
                if (tpp <= 0 || opts.threads % tpp != 0)
                    continue;
                if (modelUsesCache(model)) {
                    for (const CacheConfig &cache : cacheVariants)
                        runOne(v, model, tpp, cache,
                               constNet(opts.latency));
                } else {
                    runOne(v, model, tpp, CacheConfig{},
                           constNet(opts.latency));
                }
            }
        }

    int tppMax = 1;
    for (int t : opts.tppList)
        if (t > tppMax && opts.threads % t == 0)
            tppMax = t;

    if (opts.includeZeroLatency) {
        // Zero-latency machines take the direct-access fast path; one
        // representative per variant keeps the matrix affordable.
        runOne(variants[0], SwitchModel::SwitchOnLoad, tppMax,
               CacheConfig{}, constNet(0));
        runOne(variants[1], SwitchModel::ExplicitSwitch, tppMax,
               CacheConfig{}, constNet(0));
    }

    if (opts.includeVThreads && opts.threads >= 2) {
        // Virtual-threading slice: every software thread still runs to
        // the same architectural end state when time-multiplexed over
        // fewer hardware contexts, under both a thrashing quantum (50)
        // and a coarse one (500), free and costed context switches, and
        // both a blocking and a cswitch-driven model. K = threads/2
        // exercises queue + contexts jointly; K = 1 serializes the whole
        // processor through one context.
        const int kHalf = opts.threads / 2;
        runOne(variants[0], SwitchModel::SwitchOnLoad, kHalf,
               CacheConfig{}, constNet(opts.latency), {}, opts.threads,
               50, 4);
        runOne(variants[1], SwitchModel::ExplicitSwitch, kHalf,
               CacheConfig{}, constNet(opts.latency), {}, opts.threads,
               500, 0);
        runOne(variants[0], SwitchModel::SwitchOnUse, 1, CacheConfig{},
               constNet(opts.latency), {}, opts.threads, 50, 0);
        runOne(variants[1], SwitchModel::ConditionalSwitch, 1,
               CacheConfig{8, 2}, constNet(opts.latency), {},
               opts.threads, 500, 4);
    }

    if (opts.includeMesh) {
        // Mesh slice: narrow links make every queueing path (link
        // contention, per-source ordering, delayed fills) actually
        // exercise; the architectural digest must not notice. The
        // cached config also runs a 1-pointer directory, so overflow
        // broadcasts fire.
        NetworkConfig mesh;
        mesh.kind = NetworkKind::Mesh;
        mesh.linkBits = 16;
        runOne(variants[0], SwitchModel::SwitchOnLoad, tppMax,
               CacheConfig{}, mesh);
        DirectoryConfig dir;
        dir.mode = DirectoryMode::LimitedPtr;
        dir.pointers = 1;
        runOne(variants[1], SwitchModel::ConditionalSwitch, tppMax,
               CacheConfig{8, 2}, mesh, dir);
    }

    if (opts.includeFused) {
        // Fused-vs-decoded slice: the matrix above fuses hot spans on
        // first touch, so re-running two representative configs with
        // the tier off pins the decoded path against the same reference
        // digest — any fused/decoded divergence shows up as one of the
        // two sides disagreeing with the reference.
        runOne(variants[0], SwitchModel::SwitchOnLoad, tppMax,
               CacheConfig{}, constNet(opts.latency), {}, 0, 0, 0,
               /*fuseOff=*/true);
        runOne(variants[1], SwitchModel::ConditionalSwitch, tppMax,
               CacheConfig{8, 2}, constNet(opts.latency), {}, 0, 0, 0,
               /*fuseOff=*/true);
    }

    return report;
}

} // namespace mts
