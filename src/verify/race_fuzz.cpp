#include "verify/race_fuzz.hpp"

#include <algorithm>
#include <future>
#include <mutex>
#include <set>

#include "analysis/addr_resolve.hpp"
#include "analysis/checkers.hpp"
#include "apps/app.hpp"
#include "asm/assembler.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "verify/race_detector.hpp"
#include "verify/race_mutations.hpp"

namespace mts
{

namespace
{

/** Base symbol name of a "sym+off" / "sym+8*tid" description. */
std::string
baseSymbol(const std::string &described)
{
    std::size_t plus = described.find('+');
    std::string base =
        plus == std::string::npos ? described : described.substr(0, plus);
    return base;
}

/** The static race findings (both severities) for one program. */
std::vector<Diag>
staticRaceDiags(const Program &prog)
{
    LintOptions opts;
    opts.races = true;
    LintReport report = runLint(prog, opts);
    std::vector<Diag> out;
    for (const Diag &d : report.diags())
        if (d.checker == "data-race")
            out.push_back(d);
    return out;
}

/** One dynamic run; returns the detector's race records. */
std::vector<RaceRecord>
runDynamic(const Program &prog, int threads, int tpp, Cycle latency,
           Cycle maxCycles)
{
    MachineConfig cfg;
    cfg.numProcs = threads / tpp;
    cfg.threadsPerProc = tpp;
    cfg.model = SwitchModel::SwitchOnLoad;
    cfg.network.roundTrip = latency;
    cfg.maxCycles = maxCycles;
    RaceDetector detector(prog, static_cast<std::uint32_t>(threads));
    cfg.tracer = &detector;
    Machine machine(prog, cfg);
    machine.setPrintHandler([](const std::string &) {});
    machine.run();
    return detector.races();
}

/** The thread-per-processor splits exercised per program. */
std::vector<int>
tppSplits(int threads)
{
    std::vector<int> out{1};
    if (threads % 2 == 0 && threads > 1)
        out.push_back(2);
    return out;
}

struct SeedOutcome
{
    std::uint64_t seed = 0;
    int mutantsRun = 0;
    int dynamicRaces = 0;
    std::vector<RaceFuzzFailure> failures;
};

SeedOutcome
runSeed(std::uint64_t seed, const RaceFuzzOptions &opts)
{
    SeedOutcome out;
    out.seed = seed;

    GenOptions gen = opts.gen;
    gen.seed = seed;
    gen.threads = opts.threads;
    GeneratedProgram base = generateProgram(gen);

    auto fail = [&](const std::string &mutation, const std::string &what,
                    const std::string &detail) {
        out.failures.push_back({seed, mutation, what, detail});
    };

    Program baseProg;
    try {
        baseProg = assemble(runtimePrelude() + base.source);
    } catch (const FatalError &e) {
        fail("", "run-error", e.what());
        return out;
    }

    // Base program: statically and dynamically race-clean.
    {
        std::vector<Diag> diags = staticRaceDiags(baseProg);
        if (!diags.empty())
            fail("", "static-dirty",
                 format("%zu finding(s), first: %s", diags.size(),
                        diags.front().message.c_str()));
        for (int tpp : tppSplits(opts.threads)) {
            try {
                std::vector<RaceRecord> races = runDynamic(
                    baseProg, opts.threads, tpp, opts.latency,
                    opts.maxCycles);
                if (!races.empty())
                    fail("", "dynamic-dirty",
                         format("tpp=%d reported %zu race(s) on a "
                                "race-free program",
                                tpp, races.size()));
            } catch (const FatalError &e) {
                fail("", "run-error",
                     format("tpp=%d: %s", tpp, e.what()));
            }
        }
    }

    // Mutants: every one must be caught dynamically, and every word
    // the dynamic detector saw race must be statically flagged.
    for (const RaceMutation &m :
         enumerateRaceMutations(base.source, seed)) {
        std::string name(mutationKindName(m.kind));
        std::string mutatedSource = applyRaceMutation(base.source, m);
        ++out.mutantsRun;

        Program mutProg;
        try {
            mutProg = assemble(runtimePrelude() + mutatedSource);
        } catch (const FatalError &e) {
            fail(name, "run-error", e.what());
            continue;
        }

        std::set<std::string> dynamicSymbols;
        std::size_t caught = 0;
        bool ran = false;
        for (int tpp : tppSplits(opts.threads)) {
            try {
                std::vector<RaceRecord> races = runDynamic(
                    mutProg, opts.threads, tpp, opts.latency,
                    opts.maxCycles);
                ran = true;
                caught += races.size();
                for (const RaceRecord &r : races)
                    dynamicSymbols.insert(
                        baseSymbol(symbolizeAddr(mutProg, r.addr)));
            } catch (const FatalError &e) {
                fail(name, "run-error",
                     format("tpp=%d: %s", tpp, e.what()));
            }
        }
        out.dynamicRaces += static_cast<int>(caught);
        if (ran && caught == 0) {
            fail(name, "dynamic-miss",
                 "no configuration reported a race");
            continue;
        }

        std::vector<Diag> diags = staticRaceDiags(mutProg);
        for (const std::string &sym : dynamicSymbols) {
            if (sym.empty() || sym == "?")
                continue;
            bool flagged = false;
            for (const Diag &d : diags)
                if (d.message.find(sym) != std::string::npos) {
                    flagged = true;
                    break;
                }
            if (!flagged)
                fail(name, "static-miss",
                     format("dynamic race on %s has no static finding "
                            "(%zu static finding(s) total)",
                            sym.c_str(), diags.size()));
        }
    }
    return out;
}

} // namespace

RaceFuzzReport
runRaceFuzzCampaign(const RaceFuzzOptions &opts,
                    const std::function<void(const std::string &)> &log)
{
    RaceFuzzReport report;
    if (opts.seeds <= 0)
        return report;

    std::mutex logMutex;
    auto say = [&](const std::string &msg) {
        if (log) {
            std::lock_guard<std::mutex> lock(logMutex);
            log(msg);
        }
    };

    std::vector<SeedOutcome> outcomes(
        static_cast<std::size_t>(opts.seeds));
    {
        ThreadPool pool(opts.jobs);
        std::vector<std::future<void>> futures;
        futures.reserve(outcomes.size());
        for (int i = 0; i < opts.seeds; ++i) {
            std::uint64_t seed =
                opts.firstSeed + static_cast<std::uint64_t>(i);
            futures.push_back(pool.submit([&, i, seed] {
                outcomes[static_cast<std::size_t>(i)] =
                    runSeed(seed, opts);
            }));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
            futures[i].get();  // rethrows worker exceptions
            for (const RaceFuzzFailure &f : outcomes[i].failures)
                say(format("seed %llu%s%s: %s: %s",
                           static_cast<unsigned long long>(f.seed),
                           f.mutation.empty() ? "" : " ",
                           f.mutation.c_str(), f.what.c_str(),
                           f.detail.c_str()));
        }
    }

    report.seedsRun = opts.seeds;
    for (const SeedOutcome &o : outcomes) {
        report.mutantsRun += o.mutantsRun;
        report.dynamicRaces += o.dynamicRaces;
        report.failures.insert(report.failures.end(),
                               o.failures.begin(), o.failures.end());
    }
    std::sort(report.failures.begin(), report.failures.end(),
              [](const RaceFuzzFailure &a, const RaceFuzzFailure &b) {
                  return a.seed < b.seed;
              });
    return report;
}

JsonValue
makeRaceFuzzJson(const RaceFuzzReport &report,
                 const RaceFuzzOptions &opts)
{
    JsonValue doc = JsonValue::object();
    doc["schema"] = "mts.racefuzz/1";
    doc["firstSeed"] = opts.firstSeed;
    doc["seedsRun"] = report.seedsRun;
    doc["threads"] = opts.threads;
    doc["mutantsRun"] = report.mutantsRun;
    doc["dynamicRaces"] = report.dynamicRaces;
    doc["ok"] = report.ok();
    JsonValue arr = JsonValue::array();
    for (const RaceFuzzFailure &f : report.failures) {
        JsonValue jf = JsonValue::object();
        jf["seed"] = f.seed;
        jf["mutation"] = f.mutation;
        jf["what"] = f.what;
        jf["detail"] = f.detail;
        arr.push(std::move(jf));
    }
    doc["failures"] = std::move(arr);
    return doc;
}

} // namespace mts
