/**
 * @file
 * Race-detection cross-validation campaign.
 *
 * Each seed produces one race-free generated program and up to four
 * deliberately-racy mutants of it (see race_mutations.hpp), and runs
 * every one of them through both race detectors:
 *
 *  - the *base* program must be race-clean both statically (mtlint's
 *    lockset/region checker reports nothing) and dynamically (the
 *    vector-clock detector stays quiet under every configuration run);
 *  - every *mutant* must be caught dynamically (at least one
 *    configuration reports a race), and the static checker must flag
 *    every word the dynamic detector actually saw race — an
 *    error-or-warning diagnostic naming the same shared symbol.
 *
 * A failure in either direction is a detector bug: a dynamic miss
 * means the happens-before model has a hole, a static miss means the
 * lockset/region analysis is unsound for that idiom, and a dirty base
 * program means a false positive that would drown real reports.
 */
#ifndef MTS_VERIFY_RACE_FUZZ_HPP
#define MTS_VERIFY_RACE_FUZZ_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/machine_config.hpp"
#include "util/json.hpp"
#include "verify/program_gen.hpp"

namespace mts
{

/** Campaign knobs. */
struct RaceFuzzOptions
{
    int seeds = 25;
    std::uint64_t firstSeed = 1;
    int threads = 4;

    GenOptions gen;  ///< per-seed shape (seed/threads overwritten)

    Cycle latency = 200;  ///< network round trip for the dynamic runs
    Cycle maxCycles = 400'000'000ull;

    /** Worker threads; 0 = ThreadPool::defaultWorkers(). */
    unsigned jobs = 0;
};

/** One cross-validation failure. */
struct RaceFuzzFailure
{
    std::uint64_t seed = 0;
    std::string mutation;  ///< "" for the base program
    std::string what;      ///< static-dirty dynamic-dirty dynamic-miss
                           ///< static-miss run-error
    std::string detail;
};

/** Campaign outcome. */
struct RaceFuzzReport
{
    int seedsRun = 0;
    int mutantsRun = 0;
    int dynamicRaces = 0;  ///< distinct racy pairs seen across mutants
    std::vector<RaceFuzzFailure> failures;  ///< sorted by seed

    bool
    ok() const
    {
        return failures.empty();
    }
};

/** Run the campaign; @p log receives one-line progress messages. */
RaceFuzzReport runRaceFuzzCampaign(
    const RaceFuzzOptions &opts,
    const std::function<void(const std::string &)> &log = {});

/** The `mts.racefuzz/1` JSON document. */
JsonValue makeRaceFuzzJson(const RaceFuzzReport &report,
                           const RaceFuzzOptions &opts);

} // namespace mts

#endif // MTS_VERIFY_RACE_FUZZ_HPP
