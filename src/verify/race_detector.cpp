#include "verify/race_detector.hpp"

#include <algorithm>

#include "analysis/addr_resolve.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace mts
{

// ---------------------------------------------------------------------
// VectorClockEngine

VectorClockEngine::VectorClockEngine(std::uint32_t numThreads,
                                     Addr granularityWords)
    : n_(numThreads), gran_(granularityWords), clocks_(numThreads),
      snaps_(numThreads), dirty_(numThreads, true),
      joined_(numThreads, false)
{
    MTS_REQUIRE(granularityWords >= 1, "granularity must be >= 1 word");
    // Clock 0 means "never accessed", so live threads start at 1.
    for (std::uint32_t t = 0; t < n_; ++t) {
        clocks_[t].assign(n_, 0);
        clocks_[t][t] = 1;
    }
}

VectorClockEngine::Clock
VectorClockEngine::clockOf(std::uint32_t tid) const
{
    return clocks_[tid][tid];
}

VectorClockEngine::WordState &
VectorClockEngine::word(Addr a)
{
    return words_[key(a)];
}

const std::shared_ptr<const VectorClockEngine::VC> &
VectorClockEngine::snapshot(std::uint32_t tid)
{
    if (dirty_[tid] || !snaps_[tid]) {
        snaps_[tid] = std::make_shared<const VC>(clocks_[tid]);
        dirty_[tid] = false;
        joined_[tid] = false;  // the fresh snapshot reflects all joins
    }
    return snaps_[tid];
}

bool
VectorClockEngine::ordered(const Epoch &e, std::uint32_t tid) const
{
    return e.clk == 0 || e.clk <= clocks_[tid][e.tid];
}

void
VectorClockEngine::join(std::uint32_t tid, const VC &other)
{
    VC &mine = clocks_[tid];
    for (std::uint32_t u = 0; u < n_; ++u)
        if (other[u] > mine[u]) {
            mine[u] = other[u];
            dirty_[tid] = true;
            joined_[tid] = true;
        }
}

VectorClockEngine::Conflict
VectorClockEngine::checkWrite(WordState &ws, std::uint32_t tid)
{
    Conflict c;
    if (!ordered(ws.w, tid)) {
        c.race = true;
        c.priorTid = ws.w.tid;
        c.priorPc = ws.w.pc;
        c.priorWrite = true;
        return c;
    }
    if (ws.rvc) {
        for (std::uint32_t u = 0; u < n_; ++u)
            if (u != tid && (*ws.rvc)[u] > clocks_[tid][u]) {
                c.race = true;
                c.priorTid = u;
                c.priorPc = ws.rpc[u];
                c.priorWrite = false;
                return c;
            }
    } else if (ws.r.clk != 0 && ws.r.tid != tid &&
               !ordered(ws.r, tid)) {
        c.race = true;
        c.priorTid = ws.r.tid;
        c.priorPc = ws.r.pc;
        c.priorWrite = false;
    }
    return c;
}

VectorClockEngine::Conflict
VectorClockEngine::read(std::uint32_t tid, Addr addr, std::int32_t pc)
{
    WordState &ws = word(addr);
    Conflict c;
    if (!ordered(ws.w, tid)) {
        c.race = true;
        c.priorTid = ws.w.tid;
        c.priorPc = ws.w.pc;
        c.priorWrite = true;
    }
    // Record the read (even on a race, so one buggy pair does not
    // cascade into a report per subsequent access).
    Clock myClk = clocks_[tid][tid];
    if (ws.rvc) {
        (*ws.rvc)[tid] = myClk;
        ws.rpc[tid] = pc;
    } else if (ws.r.clk == 0 || ws.r.tid == tid || ordered(ws.r, tid)) {
        // Exclusive epoch: first reader, same reader, or an ordered
        // hand-off to a newer reader.
        ws.r = Epoch{myClk, tid, pc};
    } else {
        // Two concurrent lock-free readers: promote to a full read
        // vector (the FastTrack "read-share" transition).
        ws.rvc = std::make_unique<VC>(n_, 0);
        ws.rpc.assign(n_, -1);
        (*ws.rvc)[ws.r.tid] = ws.r.clk;
        ws.rpc[ws.r.tid] = ws.r.pc;
        (*ws.rvc)[tid] = myClk;
        ws.rpc[tid] = pc;
        ++sharedPromotions_;
    }
    return c;
}

VectorClockEngine::Conflict
VectorClockEngine::write(std::uint32_t tid, Addr addr, std::int32_t pc)
{
    WordState &ws = word(addr);
    // Repeat-release elision: the thread re-stores a word it just
    // released, nothing joined its clock since the stash was taken,
    // and no other access touched the word — the store publishes
    // nothing new, so skip the O(threads) snapshot and the epoch turn.
    // The read-state check matters: an intervening read would need the
    // write/read race check the elided path skips.
    if (ws.w.tid == tid && ws.stash && ws.stash == snaps_[tid] &&
        clocks_[tid][tid] == ws.w.clk + 1 && !joined_[tid] &&
        ws.r.clk == 0 && !ws.rvc) {
        ++elidedWrites_;
        return Conflict{};
    }
    Conflict c = checkWrite(ws, tid);
    ws.w = Epoch{clocks_[tid][tid], tid, pc};
    ws.r = Epoch{};
    ws.rvc.reset();
    ws.rpc.clear();
    // Release side of store-then-flag publication: stash the writer's
    // clock so a later lds.spin / faa on this word can join it, then
    // open a fresh epoch so later actions of this thread are provably
    // newer than what the store published. Without the increment a
    // post-release store would share the release's epoch and look
    // ordered to any reader the release reached.
    ws.stash = snapshot(tid);
    ++clocks_[tid][tid];
    dirty_[tid] = true;
    return c;
}

void
VectorClockEngine::acquire(std::uint32_t tid, Addr addr)
{
    WordState &ws = word(addr);
    if (ws.stash)
        join(tid, *ws.stash);
    // A spin read is deliberately not race-checked and not recorded:
    // spinning on a concurrently-written flag is the idiom, and the
    // join just performed is what makes the accesses it guards safe.
}

VectorClockEngine::Conflict
VectorClockEngine::rmw(std::uint32_t tid, Addr addr, std::int32_t pc)
{
    WordState &ws = word(addr);
    if (ws.stash)
        join(tid, *ws.stash);
    // The join precedes the check, so two faa on the same word never
    // race with each other — the atomic is its own ordering.
    Conflict c = checkWrite(ws, tid);
    ws.w = Epoch{clocks_[tid][tid], tid, pc};
    ws.r = Epoch{};
    ws.rvc.reset();
    ws.rpc.clear();
    ws.stash = snapshot(tid);
    // Like every release, the faa opens a fresh epoch: everything
    // after it is provably newer than the clock it just published.
    ++clocks_[tid][tid];
    dirty_[tid] = true;
    return c;
}

// ---------------------------------------------------------------------
// RaceDetector

RaceDetector::RaceDetector(const Program &prog,
                           std::uint32_t numThreads,
                           RaceDetectorOptions opts)
    : prog_(prog), opts_(opts),
      engine_(numThreads, opts.granularityWords)
{
}

void
RaceDetector::onSharedData(Cycle cycle, std::uint16_t, std::uint32_t gid,
                           std::int32_t pc, Addr addr,
                           SharedDataKind kind, int words)
{
    // Events already arrive in the memory system's serialization
    // order (see Tracer::onSharedData), so each one is final.
    for (int w = 0; w < words; ++w) {
        Addr a = addr + static_cast<Addr>(w);
        VectorClockEngine::Conflict c;
        switch (kind) {
          case SharedDataKind::Read:
            c = engine_.read(gid, a, pc);
            break;
          case SharedDataKind::SpinRead:
            engine_.acquire(gid, a);
            continue;
          case SharedDataKind::Write:
            c = engine_.write(gid, a, pc);
            break;
          case SharedDataKind::Rmw:
            c = engine_.rmw(gid, a, pc);
            break;
        }
        if (c.race)
            record(c, cycle, gid, pc, a,
                   kind == SharedDataKind::Write ||
                       kind == SharedDataKind::Rmw);
    }
}

void
RaceDetector::record(const VectorClockEngine::Conflict &c, Cycle cycle,
                     std::uint32_t gid, std::int32_t pc, Addr addr,
                     bool laterWrite)
{
    auto key = std::minmax(c.priorPc, pc);
    if (!seenPairs_.insert({key.first, key.second}).second)
        return;
    if (races_.size() >= opts_.maxRaces) {
        ++dropped_;
        return;
    }
    RaceRecord r;
    r.addr = addr;
    r.cycle = cycle;
    r.tid1 = c.priorTid;
    r.pc1 = c.priorPc;
    r.write1 = c.priorWrite;
    r.tid2 = gid;
    r.pc2 = pc;
    r.write2 = laterWrite;
    races_.push_back(r);
}

namespace
{

std::string
accessName(bool write)
{
    return write ? "write" : "read";
}

std::string
site(const Program &prog, std::int32_t pc)
{
    if (pc < 0 || pc >= static_cast<std::int32_t>(prog.code.size()))
        return "<unknown>";
    std::string s = prog.positionOf(pc);
    s += " (pc " + std::to_string(pc);
    std::uint32_t line = prog.code[static_cast<std::size_t>(pc)].srcLine;
    if (line)
        s += ", line " + std::to_string(line);
    s += ")";
    return s;
}

} // namespace

std::string
RaceDetector::renderText() const
{
    std::string out;
    for (const RaceRecord &r : races_) {
        out += "race: " + symbolizeAddr(prog_, r.addr) + ": " +
               accessName(r.write2) + " at " + site(prog_, r.pc2) +
               " by thread " + std::to_string(r.tid2) +
               " is unordered with a prior " + accessName(r.write1) +
               " at " + site(prog_, r.pc1) + " by thread " +
               std::to_string(r.tid1) + " (cycle " +
               std::to_string(r.cycle) + ")\n";
    }
    if (dropped_)
        out += "... " + std::to_string(dropped_) +
               " further racy pair(s) not recorded\n";
    return out;
}

JsonValue
RaceDetector::toJson(const std::string &programName) const
{
    JsonValue doc = JsonValue::object();
    doc["schema"] = kSchema;
    doc["program"] = programName;
    doc["clean"] = clean();
    JsonValue arr = JsonValue::array();
    for (const RaceRecord &r : races_) {
        JsonValue jr = JsonValue::object();
        jr["addr"] = static_cast<std::uint64_t>(r.addr);
        jr["symbol"] = symbolizeAddr(prog_, r.addr);
        jr["cycle"] = static_cast<std::uint64_t>(r.cycle);
        JsonValue sides = JsonValue::array();
        const struct
        {
            std::uint32_t tid;
            std::int32_t pc;
            bool write;
        } s[2] = {{r.tid1, r.pc1, r.write1}, {r.tid2, r.pc2, r.write2}};
        for (int i = 0; i < 2; ++i) {
            JsonValue side = JsonValue::object();
            side["tid"] = s[i].tid;
            side["pc"] = s[i].pc;
            side["access"] = accessName(s[i].write);
            if (s[i].pc >= 0 &&
                s[i].pc < static_cast<std::int32_t>(prog_.code.size())) {
                side["label"] = prog_.positionOf(s[i].pc);
                std::uint32_t line =
                    prog_.code[static_cast<std::size_t>(s[i].pc)].srcLine;
                if (line)
                    side["line"] = line;
            }
            sides.push(std::move(side));
        }
        jr["accesses"] = std::move(sides);
        arr.push(std::move(jr));
    }
    doc["races"] = std::move(arr);
    doc["dropped"] = dropped_;
    JsonValue st = JsonValue::object();
    st["elidedWrites"] = engine_.elidedWrites();
    st["sharedReadWords"] = engine_.sharedReadWords();
    doc["stats"] = std::move(st);
    return doc;
}

} // namespace mts
