/**
 * @file
 * Delta-debugging shrinker for failing fuzz programs.
 *
 * Classic ddmin over the *instruction* lines of an assembly source:
 * directives, labels, comments and blank lines are structural and never
 * removed, so every candidate is still a well-formed program skeleton.
 * The caller-supplied predicate decides whether a candidate still
 * reproduces the original failure; candidates that fail to assemble, do
 * not terminate on the reference interpreter, or diverge for a different
 * reason are simply predicates returning false, so the shrinker needs no
 * knowledge of what "failing" means.
 *
 * The procedure is deterministic: same input + same predicate behaviour
 * -> same minimized program.
 */
#ifndef MTS_VERIFY_SHRINK_HPP
#define MTS_VERIFY_SHRINK_HPP

#include <functional>
#include <string>

namespace mts
{

/** True if this candidate source still reproduces the failure. */
using ShrinkPredicate = std::function<bool(const std::string &)>;

/** Shrinker knobs. */
struct ShrinkOptions
{
    /** Predicate-evaluation budget (each candidate costs one call). */
    int maxAttempts = 2000;
};

/** Outcome of one shrink. */
struct ShrinkResult
{
    std::string source;    ///< minimized program (1-minimal or budget-cut)
    int instructions = 0;  ///< instruction lines remaining
    int attempts = 0;      ///< predicate evaluations spent
};

/**
 * Shrink @p source with ddmin. @p stillFails must be true for @p source
 * itself (the original failure); the result is the smallest found
 * program for which it stays true.
 */
ShrinkResult shrinkProgram(const std::string &source,
                           const ShrinkPredicate &stillFails,
                           const ShrinkOptions &opts = {});

/** Instruction lines in @p source (the shrinker's size metric). */
int countInstructionLines(const std::string &source);

} // namespace mts

#endif // MTS_VERIFY_SHRINK_HPP
