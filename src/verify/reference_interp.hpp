/**
 * @file
 * Architectural reference interpreter: the differential-testing oracle.
 *
 * Executes an assembled Program with zero latency, strictly in order, one
 * thread at a time under a fixed round-robin schedule. There is no
 * scoreboard, no event queue, no cache and no switch model — the only
 * code shared with the real Machine is the ISA description in src/isa/.
 * Shared accesses take effect immediately and fetch-and-add is atomic by
 * construction (threads are interleaved at instruction granularity).
 *
 * For interleaving-independent programs (the only kind the generator in
 * program_gen.hpp emits) the final-state digest computed here must equal
 * the digest of every Machine run of the same program, under every switch
 * model, thread-per-processor split and cache configuration. Divergence
 * means a simulator (or optimizer) bug — or a program that is not in
 * fact interleaving-independent, which differential.cpp screens out by
 * running the reference under two different round-robin quanta.
 */
#ifndef MTS_VERIFY_REFERENCE_INTERP_HPP
#define MTS_VERIFY_REFERENCE_INTERP_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "sim/state_digest.hpp"

namespace mts
{

/** Knobs of one reference execution. */
struct RefOptions
{
    int threads = 4;  ///< total thread count (r5 in every thread)

    /** Per-thread local memory size in words (sp starts here). */
    Addr localWords = kDefaultLocalWords;

    /** Extra shared words past the program's static segment. */
    Addr extraSharedWords = 0;

    /**
     * Instructions each live thread executes per round-robin turn.
     * Running a program at two different quanta and comparing digests is
     * the interleaving-independence screen used by the differential
     * runner: order-dependent programs almost surely disagree.
     */
    std::uint64_t quantum = 1;

    /** Total executed-instruction budget; exceeded = fatal (livelock). */
    std::uint64_t maxSteps = 100'000'000;

    bool collectPrints = true;  ///< capture PRINT/FPRINT output
};

/** Final architectural state of one reference thread. */
struct RefThreadState
{
    std::int64_t iregs[32] = {};
    double fregs[32] = {};
    std::int32_t pc = 0;
    bool halted = false;
    std::uint64_t steps = 0;  ///< instructions this thread executed
};

/** Everything a reference execution produces. */
struct RefResult
{
    StateDigest digest;

    /** Final shared memory, sharedWords + extraSharedWords words. */
    std::vector<std::uint64_t> sharedImage;

    std::vector<RefThreadState> threads;
    std::vector<std::string> prints;  ///< PRINT/FPRINT lines, exec order
    std::uint64_t steps = 0;          ///< total instructions executed
};

/**
 * Run @p prog to completion on the reference interpreter.
 *
 * Throws FatalError on the same user errors the Machine rejects
 * (div/rem by zero, wrong address class, pc out of range, local access
 * out of bounds) and on step-budget exhaustion.
 */
RefResult runReference(const Program &prog, const RefOptions &opts = {});

} // namespace mts

#endif // MTS_VERIFY_REFERENCE_INTERP_HPP
