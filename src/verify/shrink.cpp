#include "verify/shrink.hpp"

#include <algorithm>
#include <vector>

#include "util/strings.hpp"

namespace mts
{

namespace
{

/** Is this trimmed line a removable instruction (vs. structure)? */
bool
isInstructionLine(std::string_view trimmed)
{
    if (trimmed.empty())
        return false;
    char first = trimmed.front();
    if (first == ';' || first == '#' || first == '.')
        return false;
    // "name:" (possibly followed by a comment) is a label line.
    std::size_t colon = trimmed.find(':');
    if (colon != std::string_view::npos) {
        std::string_view rest = trim(trimmed.substr(colon + 1));
        if (rest.empty() || rest.front() == ';' || rest.front() == '#')
            return false;  // pure label: structural
    }
    return true;
}

/** Join the lines whose indices are marked kept. */
std::string
rebuild(const std::vector<std::string> &lines,
        const std::vector<bool> &kept)
{
    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i)
        if (kept[i]) {
            out += lines[i];
            out += '\n';
        }
    return out;
}

} // namespace

int
countInstructionLines(const std::string &source)
{
    int n = 0;
    for (const std::string &line : split(source, '\n'))
        if (isInstructionLine(trim(line)))
            ++n;
    return n;
}

ShrinkResult
shrinkProgram(const std::string &source, const ShrinkPredicate &stillFails,
              const ShrinkOptions &opts)
{
    std::vector<std::string> lines = split(source, '\n');
    std::vector<bool> kept(lines.size(), true);

    // Indices of lines the shrinker may remove.
    std::vector<std::size_t> removable;
    for (std::size_t i = 0; i < lines.size(); ++i)
        if (isInstructionLine(trim(lines[i])))
            removable.push_back(i);

    ShrinkResult res;

    auto alive = [&]() {
        std::vector<std::size_t> v;
        for (std::size_t i : removable)
            if (kept[i])
                v.push_back(i);
        return v;
    };

    // ddmin: try dropping chunks of the still-present instruction lines,
    // halving the chunk size whenever a whole pass makes no progress.
    std::vector<std::size_t> cur = alive();
    std::size_t chunk = cur.size() ? (cur.size() + 1) / 2 : 0;
    while (chunk >= 1 && res.attempts < opts.maxAttempts) {
        bool progressed = false;
        cur = alive();
        for (std::size_t start = 0;
             start < cur.size() && res.attempts < opts.maxAttempts;
             start += chunk) {
            std::size_t end = std::min(start + chunk, cur.size());
            for (std::size_t k = start; k < end; ++k)
                kept[cur[k]] = false;
            ++res.attempts;
            if (stillFails(rebuild(lines, kept))) {
                progressed = true;  // the chunk was irrelevant: drop it
            } else {
                for (std::size_t k = start; k < end; ++k)
                    kept[cur[k]] = true;
            }
        }
        if (progressed && chunk > 1)
            continue;  // retry at the same granularity on the remainder
        if (chunk == 1)
            break;
        chunk = (chunk + 1) / 2;
    }

    res.source = rebuild(lines, kept);
    res.instructions = countInstructionLines(res.source);
    return res;
}

} // namespace mts
