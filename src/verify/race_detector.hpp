/**
 * @file
 * Dynamic data-race detection: a FastTrack-style vector-clock
 * happens-before engine driven by the simulator's tracer hooks.
 *
 * Happens-before edges come from the MTS synchronization idioms, at
 * the ISA level (no runtime-routine knowledge needed):
 *
 *  - `faa` is the atomic read-modify-write every primitive is built
 *    on: it joins the release clock stashed at its word, race-checks
 *    and publishes, then increments the thread's own clock;
 *  - `lds.spin` is an acquire: it joins the clock stashed at the word
 *    it spins on, and is otherwise exempt (spinning on a flag that is
 *    concurrently written is the point of the idiom);
 *  - a plain shared store is race-checked like any access, then
 *    stashes the thread's current clock at the word (release side of
 *    store-then-flag publication) and increments — every release
 *    opens a fresh epoch, so actions after the release are provably
 *    newer than what it published (repeat releases with nothing new
 *    to publish are elided);
 *  - plain loads are race-checked and recorded (with read-share
 *    promotion to a full read vector when lock-free readers overlap).
 *
 * The engine is serialization-order driven: Tracer::onSharedData fires
 * as each access's effect is applied at the memory module, so events
 * arrive in the exact interleaving the memory system executed (the one
 * the fetch-add return values witness) and are handled immediately —
 * no buffering or reordering. Run it on a cache-less configuration
 * (e.g. switch-on-load): cache hits never reach memory and would be
 * invisible to the hook.
 */
#ifndef MTS_VERIFY_RACE_DETECTOR_HPP
#define MTS_VERIFY_RACE_DETECTOR_HPP

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "asm/program.hpp"
#include "trace/tracer.hpp"
#include "util/json.hpp"

namespace mts
{

/** One happens-before violation (a pair of unordered conflicting
 *  accesses to the same word). */
struct RaceRecord
{
    Addr addr = 0;            ///< the contested word (absolute)
    Cycle cycle = 0;          ///< retire time of the later access
    std::uint32_t tid1 = 0;   ///< earlier access: thread id
    std::int32_t pc1 = -1;    ///<                 site (-1: unknown)
    bool write1 = false;
    std::uint32_t tid2 = 0;   ///< later access
    std::int32_t pc2 = -1;
    bool write2 = false;
};

/**
 * The pure epoch/vector-clock state machine, one call per retired
 * access, independent of the simulator (unit-testable in isolation).
 */
class VectorClockEngine
{
  public:
    using Clock = std::uint32_t;
    using VC = std::vector<Clock>;

    /** @p granularityWords coalesces addresses (1 = per word;
     *  a cache-line size emulates line-granularity detection). */
    explicit VectorClockEngine(std::uint32_t numThreads,
                               Addr granularityWords = 1);

    /** Result of one access: race == true reports the prior epoch. */
    struct Conflict
    {
        bool race = false;
        std::uint32_t priorTid = 0;
        std::int32_t priorPc = -1;
        bool priorWrite = false;
    };

    Conflict read(std::uint32_t tid, Addr addr, std::int32_t pc);
    Conflict write(std::uint32_t tid, Addr addr, std::int32_t pc);

    /** lds.spin: join the clock stashed at @p addr, nothing else. */
    void acquire(std::uint32_t tid, Addr addr);

    /** faa: acquire + write-check + publish + clock increment. */
    Conflict rmw(std::uint32_t tid, Addr addr, std::int32_t pc);

    /// @name Introspection (tests, reports).
    /// @{
    Clock clockOf(std::uint32_t tid) const;
    std::uint64_t elidedWrites() const { return elidedWrites_; }
    std::uint64_t sharedReadWords() const { return sharedPromotions_; }
    /// @}

  private:
    struct Epoch
    {
        Clock clk = 0;  ///< 0 = never accessed
        std::uint32_t tid = 0;
        std::int32_t pc = -1;
    };

    struct WordState
    {
        Epoch w;
        Epoch r;                        ///< exclusive read epoch
        std::unique_ptr<VC> rvc;        ///< shared read clocks
        std::vector<std::int32_t> rpc;  ///< shared read sites
        std::shared_ptr<const VC> stash;  ///< published release clock
    };

    Addr key(Addr a) const { return a / gran_; }
    WordState &word(Addr a);
    const std::shared_ptr<const VC> &snapshot(std::uint32_t tid);
    bool ordered(const Epoch &e, std::uint32_t tid) const;
    Conflict checkWrite(WordState &ws, std::uint32_t tid);
    void join(std::uint32_t tid, const VC &other);

    std::uint32_t n_;
    Addr gran_;
    std::vector<VC> clocks_;                        // [tid][u]
    std::vector<std::shared_ptr<const VC>> snaps_;  // COW snapshots
    std::vector<bool> dirty_;   ///< snapshot stale (join or increment)
    std::vector<bool> joined_;  ///< joined since the last snapshot
    std::unordered_map<Addr, WordState> words_;
    std::uint64_t elidedWrites_ = 0;
    std::uint64_t sharedPromotions_ = 0;
};

/** Tuning for the tracer-layer detector. */
struct RaceDetectorOptions
{
    Addr granularityWords = 1;
    std::size_t maxRaces = 32;  ///< stop recording (not detecting) after
};

/**
 * Tracer that feeds the engine one access at a time, in the memory
 * system's serialization order. Attach via MachineConfig::tracer;
 * read races() after Machine::run.
 */
class RaceDetector : public Tracer
{
  public:
    RaceDetector(const Program &prog, std::uint32_t numThreads,
                 RaceDetectorOptions opts = {});

    void onSharedData(Cycle cycle, std::uint16_t proc,
                      std::uint32_t gid, std::int32_t pc, Addr addr,
                      SharedDataKind kind, int words) override;

    bool clean() const { return races_.empty(); }
    const std::vector<RaceRecord> &races() const { return races_; }
    const VectorClockEngine &engine() const { return engine_; }

    /** Human report, one line per race, with symbolized addresses. */
    std::string renderText() const;

    /** The `mts.race/1` JSON document. */
    JsonValue toJson(const std::string &programName) const;

    static constexpr const char *kSchema = "mts.race/1";

  private:
    void record(const VectorClockEngine::Conflict &c, Cycle cycle,
                std::uint32_t gid, std::int32_t pc, Addr addr,
                bool laterWrite);

    const Program &prog_;
    RaceDetectorOptions opts_;
    VectorClockEngine engine_;
    std::vector<RaceRecord> races_;
    std::set<std::pair<std::int32_t, std::int32_t>> seenPairs_;
    std::uint64_t dropped_ = 0;  ///< races past the recording cap
};

} // namespace mts

#endif // MTS_VERIFY_RACE_DETECTOR_HPP
