#include "verify/program_gen.hpp"

#include <vector>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

/**
 * Emission state threaded through the segment generators.
 *
 * The body is generated first (labels, spin slots and fetch-and-add
 * bounds are discovered along the way); the header with the segment
 * directives and `.const` bounds is prepended afterwards.
 */
struct Gen
{
    const GenOptions &opts;
    Rng rng;
    std::string body;
    int labelCounter = 0;
    int spinSlots = 0;
    int phaseChunks = 0;
    bool usesRuntime = false;

    /** Per-accumulator total ever added (for the live-FAA slt bound). */
    std::uint64_t accTotal[4] = {};

    explicit Gen(const GenOptions &o) : opts(o), rng(o.seed) {}

    void
    emit(const std::string &line)
    {
        body += "    ";
        body += line;
        body += "\n";
    }

    void
    label(const std::string &name)
    {
        body += name;
        body += ":\n";
    }

    std::string
    newLabel(const char *stem)
    {
        return format("L%s_%d", stem, labelCounter++);
    }

    int
    irnd(int bound)
    {
        return static_cast<int>(rng.nextBelow(
            static_cast<std::uint64_t>(bound)));
    }

    /** Small signed constant, never zero (safe div/rem divisor). */
    std::int64_t
    smallNonZero()
    {
        return 1 + static_cast<std::int64_t>(rng.nextBelow(97));
    }

    std::int64_t
    smallConst()
    {
        return static_cast<std::int64_t>(rng.nextBelow(50'000)) - 25'000;
    }

    // ---- scratch registers: t0-t7 for integers, f2-f7 for doubles ----

    std::string
    treg(int i)
    {
        return format("t%d", i);
    }

    std::string
    freg(int i)
    {
        return format("f%d", 2 + i);
    }

    /** Fold an integer scratch register into the s0 checksum. */
    void
    foldInt(const std::string &r)
    {
        emit(irnd(2) ? format("xor s0, s0, %s", r.c_str())
                     : format("add s0, s0, %s", r.c_str()));
    }

    /** Fold an FP scratch register into the f8 checksum. */
    void
    foldFp(const std::string &r)
    {
        emit(format("fadd f8, f8, %s", r.c_str()));
    }

    // ---- segment generators ----

    /** Straight-line integer ALU chain folded into the checksum. */
    void
    aluChain(int length)
    {
        // Seed the scratch bank from constants and the thread id.
        for (int i = 0; i < 4; ++i)
            emit(format("li %s, %lld", treg(i).c_str(),
                        static_cast<long long>(smallConst())));
        emit("add t4, s7, 1");
        emit("mul t5, s7, 17");
        emit("xor t6, s0, t4");
        emit("li t7, 3");
        static const char *binops[] = {"add", "sub", "mul", "and",
                                       "or",  "xor", "slt", "sle",
                                       "seq", "sne"};
        for (int i = 0; i < length; ++i) {
            int d = irnd(8), s1 = irnd(8), s2 = irnd(8);
            switch (irnd(10)) {
              case 0:
                emit(format("div %s, %s, %lld", treg(d).c_str(),
                            treg(s1).c_str(),
                            static_cast<long long>(smallNonZero())));
                break;
              case 1:
                emit(format("rem %s, %s, %lld", treg(d).c_str(),
                            treg(s1).c_str(),
                            static_cast<long long>(smallNonZero())));
                break;
              case 2: {
                static const char *shifts[] = {"sll", "srl", "sra"};
                emit(format("%s %s, %s, %d", shifts[irnd(3)],
                            treg(d).c_str(), treg(s1).c_str(), irnd(64)));
                break;
              }
              default:
                emit(format("%s %s, %s, %s",
                            binops[irnd(10)], treg(d).c_str(),
                            treg(s1).c_str(), treg(s2).c_str()));
            }
        }
        foldInt(treg(irnd(8)));
    }

    /** FP latency chain (thread-local data only) folded into f8. */
    void
    fpChain(int length)
    {
        emit("cvtif f2, s7");
        for (int i = 1; i < 6; ++i)
            emit(format("fli %s, %.17g", freg(i).c_str(),
                        rng.nextDouble(-4.0, 4.0)));
        static const char *binops[] = {"fadd", "fsub", "fmul", "fmin",
                                       "fmax"};
        for (int i = 0; i < length; ++i) {
            int d = irnd(6), s1 = irnd(6), s2 = irnd(6);
            switch (irnd(8)) {
              case 0:
                emit(format("fneg %s, %s", freg(d).c_str(),
                            freg(s1).c_str()));
                break;
              case 1:
                // fabs-then-fsqrt keeps the chain NaN-free.
                emit(format("fabs %s, %s", freg(d).c_str(),
                            freg(s1).c_str()));
                emit(format("fsqrt %s, %s", freg(d).c_str(),
                            freg(d).c_str()));
                break;
              case 2:
                emit(format("fdiv %s, %s, f7", freg(d).c_str(),
                            freg(s1).c_str()));
                break;
              default:
                emit(format("%s %s, %s, %s", binops[irnd(5)],
                            freg(d).c_str(), freg(s1).c_str(),
                            freg(s2).c_str()));
            }
        }
        // f7 doubles as the constant fdiv divisor: keep it away from 0.
        emit("fli f7, 1.5");
        foldFp(freg(irnd(6)));
    }

    /**
     * Point t0 at this thread's 8-word slice of gp_priv. Top-level
     * call sites mark the stride multiply with `; slice stride` so the
     * race fuzzer can find (and break) the per-thread disjointness.
     */
    void
    privBase(bool markStride)
    {
        emit("la t0, gp_priv");
        emit(markStride ? "mul t1, s7, 8 ; slice stride"
                        : "mul t1, s7, 8");
        emit("add t0, t0, t1");
    }

    /** Stores and loads confined to this thread's private shared slice. */
    void
    privateMem(bool markStride)
    {
        privBase(markStride);
        int even = 2 * irnd(4);  // pair-aligned slot for the ldsd below
        emit(format("li t2, %lld",
                    static_cast<long long>(smallConst())));
        emit("xor t3, t2, s7");
        emit(format("sts t2, %d(t0)", even));
        emit(format("sts t3, %d(t0)", even + 1));
        emit(format("ldsd t4, %d(t0)", even));  // t4 <- [a], t5 <- [a+1]
        foldInt("t4");
        foldInt("t5");
        if (opts.withFp) {
            emit(format("fsts f8, %d(t0)", even));
            emit(format("flds f2, %d(t0)", even));
            emit(format("fsts f2, %d(t0)", even + 1));
            emit(format("fldsd f4, %d(t0)", even));  // f4, f5
            foldFp("f5");
        }
    }

    /** Local (per-thread) memory traffic through the gl_buf static. */
    void
    localMem()
    {
        emit("la t0, gl_buf");
        int slot = irnd(14);
        emit(format("li t1, %lld",
                    static_cast<long long>(smallConst())));
        emit(format("stl t1, %d(t0)", slot));
        emit(format("ldl t2, %d(t0)", slot));
        foldInt("t2");
        if (opts.withFp) {
            emit(format("fstl f8, %d(t0)", slot));
            emit(format("fldl f3, %d(t0)", slot));
            foldFp("f3");
        }
    }

    /**
     * Fetch-and-add accumulator traffic.
     *
     * @param execsPerThread How many times this site runs per thread
     *        (loop trip count when emitted inside a loop).
     */
    void
    faaSite(std::uint64_t execsPerThread, bool allowLive)
    {
        int acc = irnd(4);
        std::uint64_t addend = 1 + rng.nextBelow(1000);
        accTotal[acc] +=
            addend * execsPerThread *
            static_cast<std::uint64_t>(opts.threads);
        emit(format("la t6, gp_acc"));
        emit(format("li t7, %llu",
                    static_cast<unsigned long long>(addend)));
        if (allowLive && irnd(2)) {
            // Live result: interleaving-dependent, so collapse it to a
            // constant via its statically-known bound (old < total).
            emit(format("faa t5, %d(t6), t7", acc));
            emit(format("li t4, GP_ACC_BOUND%d", acc));
            emit("slt t5, t5, t4");
            foldInt("t5");
        } else {
            emit(format("faa r0, %d(t6), t7", acc));
        }
    }

    /** Ticket-lock protected read-modify-write of gp_prot. */
    void
    lockedRmw()
    {
        usesRuntime = true;
        int word = irnd(2);
        emit("la a0, gp_lk");
        emit("call __mts_lock");
        emit("la t0, gp_prot");
        emit(format("lds t1, %d(t0)", word));
        emit(format("add t1, t1, %lld",
                    static_cast<long long>(smallNonZero())));
        emit(format("sts t1, %d(t0)", word));
        emit("la a0, gp_lk");
        emit("call __mts_unlock");
        // t1 (the value read) is interleaving-dependent: never folded.
    }

    /** All threads meet at the prelude sense-reversing barrier. */
    void
    barrier()
    {
        usesRuntime = true;
        emit("la a0, gp_bar");
        emit("mv a1, s6");
        emit("call __mts_barrier");
    }

    /** Producer-consumer: one thread stores data then a flag. */
    void
    spinSegment()
    {
        int slot = spinSlots++;
        int producer = slot % opts.threads;
        std::int64_t value = smallConst() | 1;  // nonzero
        std::string cons = newLabel("cons");
        std::string spin = newLabel("spin");
        emit(format("li t0, %d", producer));
        emit(format("bne s7, t0, %s", cons.c_str()));
        emit(format("li t1, %lld", static_cast<long long>(value)));
        emit("la t2, gp_fdat");
        emit(format("sts t1, %d(t2)", slot));
        emit("la t2, gp_flag");
        emit("li t1, 1");
        emit(format("sts t1, %d(t2)", slot));  // flag after data
        label(cons);
        emit("la t2, gp_flag");
        label(spin);
        emit(format("lds.spin t1, %d(t2)", slot));
        emit(format("beqz t1, %s", spin.c_str()));
        emit("la t2, gp_fdat");
        emit(format("lds t1, %d(t2)", slot));
        foldInt("t1");
    }

    /** Counted loop around a small body (same trip count every thread). */
    void
    loopSegment()
    {
        int trips = 2 + irnd(opts.maxLoopTrips > 1 ? opts.maxLoopTrips - 1
                                                   : 1);
        std::string top = newLabel("loop");
        emit(format("li s1, %d", trips));
        label(top);
        switch (irnd(3)) {
          case 0:
            aluChain(3);
            break;
          case 1:
            if (opts.withFp) {
                fpChain(3);
                break;
            }
            [[fallthrough]];
          default:
            // Unmarked: a widened slice inside a faa-carrying loop can
            // be (correctly) serialized by the accumulator's
            // happens-before chain, robbing the dynamic detector of a
            // guaranteed catch.
            privateMem(false);
            break;
        }
        if (opts.withFaa && irnd(2))
            faaSite(static_cast<std::uint64_t>(trips), false);
        emit("sub s1, s1, 1");
        emit(format("bnez s1, %s", top.c_str()));
    }

    /**
     * Barrier-separated neighbour exchange: every thread publishes a
     * deterministic per-thread value into its slot of a fresh gp_ph
     * chunk, crosses a barrier, and reads its right neighbour's slot
     * (wrapping), so the read value is a compile-time function of the
     * thread id. The middle barrier is the only thing ordering the
     * write against the neighbour's read — dropping it (the race
     * fuzzer's `; phase gate` marker) races write against read — and
     * the trailing barrier keeps later segments out of this chunk's
     * read window.
     */
    void
    phaseSegment()
    {
        usesRuntime = true;
        int chunk = phaseChunks++;
        int base = chunk * opts.threads;
        int mulK = 3 + irnd(97);
        std::int64_t addC = smallConst();
        emit("la t0, gp_ph");
        emit(format("add t0, t0, %d", base));
        emit("add t0, t0, s7");
        emit(format("mul t1, s7, %d", mulK));
        emit(format("add t1, t1, %lld", static_cast<long long>(addC)));
        emit("sts t1, 0(t0)");
        emit("la a0, gp_bar");
        emit("mv a1, s6");
        emit("call __mts_barrier ; phase gate");
        // t2 = (s7 + 1) % s6 without rem, so the address stays
        // tid-affine for the static analyzer.
        std::string wrap = newLabel("wrap");
        emit("add t2, s7, 1");
        emit(format("bne t2, s6, %s", wrap.c_str()));
        emit("li t2, 0");
        label(wrap);
        emit("la t0, gp_ph");
        emit(format("add t0, t0, %d", base));
        emit("add t0, t0, t2");
        emit("lds t3, 0(t0)");
        foldInt("t3");
        barrier();
    }

    /** Thread-id-dependent but deterministic branchy segment. */
    void
    branchSegment()
    {
        std::string odd = newLabel("odd");
        std::string done = newLabel("join");
        emit("rem t0, s7, 2");
        emit(format("bnez t0, %s", odd.c_str()));
        aluChain(2);
        emit(format("j %s", done.c_str()));
        label(odd);
        emit(format("li t1, %lld",
                    static_cast<long long>(smallConst())));
        foldInt("t1");
        label(done);
    }

    void
    segment()
    {
        // Weighted pick; gated kinds fall back to the ALU chain.
        switch (irnd(11)) {
          case 0:
            if (opts.withFp) {
                fpChain(4 + irnd(6));
                return;
            }
            break;
          case 1:
            privateMem(true);
            return;
          case 2:
            localMem();
            return;
          case 3:
            if (opts.withFaa) {
                faaSite(1, true);
                return;
            }
            break;
          case 4:
            if (opts.withLocks && opts.threads > 1) {
                lockedRmw();
                return;
            }
            break;
          case 5:
            if (opts.withBarrier && opts.threads > 1) {
                barrier();
                return;
            }
            break;
          case 6:
            if (opts.withSpin && opts.threads > 1) {
                spinSegment();
                return;
            }
            break;
          case 7:
            loopSegment();
            return;
          case 8:
            branchSegment();
            return;
          case 9:
            if (opts.withPhases && opts.withBarrier &&
                opts.threads > 1) {
                phaseSegment();
                return;
            }
            break;
          default:
            break;
        }
        aluChain(4 + irnd(6));
    }
};

} // namespace

GeneratedProgram
generateProgram(const GenOptions &opts)
{
    Gen g(opts);

    g.label("main");
    g.emit("mv s7, a0");  // thread id
    g.emit("mv s6, a1");  // thread count
    g.emit(format("li s0, %llu",
                  static_cast<unsigned long long>(
                      0x9e3779b9u ^ opts.seed)));
    if (opts.withFp)
        g.emit("fli f8, 1.0");

    for (int s = 0; s < opts.segments; ++s) {
        g.body += format("; -- segment %d --\n", s);
        g.segment();
        if (opts.withCswitch && g.irnd(3) == 0)
            g.emit("cswitch");
    }

    // Publish the checksums: shared result slots + termination registers.
    g.body += "; -- epilogue --\n";
    g.emit("la t0, gp_out");
    g.emit("add t0, t0, s7");
    g.emit("sts s0, 0(t0)");
    if (opts.withFp) {
        g.emit("la t0, gp_fout");
        g.emit("add t0, t0, s7");
        g.emit("fsts f8, 0(t0)");
    }
    g.emit("mv v0, s0");
    g.emit("li v1, 81985529216486895");  // 0x0123456789abcdef
    if (opts.withFp) {
        g.emit("fmv f0, f8");
        g.emit("fli f1, 2.5");
    }
    g.emit("halt");

    std::string header;
    header += format("; mtfuzz generated program (seed %llu, %d threads)\n",
                     static_cast<unsigned long long>(opts.seed),
                     opts.threads);
    header += ".entry main\n";
    header += format(".shared gp_out, %d\n", opts.threads);
    header += format(".shared gp_fout, %d\n", opts.threads);
    header += format(".shared gp_priv, %d\n", opts.threads * 8);
    header += ".shared gp_acc, 4\n";
    header += ".shared gp_lk, 2\n";
    header += ".shared gp_prot, 2\n";
    header += ".shared gp_bar, 2\n";
    if (g.spinSlots) {
        header += format(".shared gp_flag, %d\n", g.spinSlots);
        header += format(".shared gp_fdat, %d\n", g.spinSlots);
    }
    if (g.phaseChunks)
        header += format(".shared gp_ph, %d\n",
                         g.phaseChunks * opts.threads);
    header += ".local gl_buf, 16\n";
    for (int a = 0; a < 4; ++a)
        header += format(".const GP_ACC_BOUND%d, %llu\n", a,
                         static_cast<unsigned long long>(
                             g.accTotal[a] + 1));
    header += "\n";

    GeneratedProgram out;
    out.seed = opts.seed;
    out.threads = opts.threads;
    out.source = header + g.body;
    out.usesRuntime = g.usesRuntime;
    return out;
}

} // namespace mts
