/**
 * @file
 * Fuzz campaign driver: generate -> differentially test -> shrink.
 *
 * Seeds are independent, so campaigns fan out across a host thread pool;
 * results are collected in seed order so a campaign's outcome (and its
 * mts.fuzz/1 record) is deterministic regardless of worker scheduling.
 */
#ifndef MTS_VERIFY_FUZZ_HPP
#define MTS_VERIFY_FUZZ_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/fuzz_record.hpp"
#include "verify/differential.hpp"
#include "verify/program_gen.hpp"
#include "verify/shrink.hpp"

namespace mts
{

/** Campaign knobs. */
struct FuzzOptions
{
    int seeds = 100;
    std::uint64_t firstSeed = 1;

    GenOptions gen;    ///< per-seed generator shape (seed overwritten)
    DiffOptions diff;  ///< configuration matrix per program

    bool shrink = true;
    int maxShrunkFailures = 3;  ///< shrinking is expensive; bound it
    ShrinkOptions shrinkOpts;

    /** Worker threads; 0 = ThreadPool::defaultWorkers(). */
    unsigned jobs = 0;
};

/** One failing seed. */
struct FuzzFailure
{
    std::uint64_t seed = 0;
    Divergence first;     ///< first divergence (kind/config/detail)
    int divergences = 0;  ///< total divergences for this seed
    std::string source;   ///< full generated program

    std::string minimizedSource;   ///< "" when not shrunk
    int minimizedInstructions = 0;
    int shrinkAttempts = 0;
};

/** Campaign outcome. */
struct FuzzReport
{
    int seedsRun = 0;
    int machineRuns = 0;
    std::vector<FuzzFailure> failures;  ///< sorted by seed

    bool
    ok() const
    {
        return failures.empty();
    }
};

/**
 * Run the campaign. @p log (optional) receives one-line progress
 * messages ("seed 17: 3 divergences").
 */
FuzzReport
runFuzzCampaign(const FuzzOptions &opts,
                const std::function<void(const std::string &)> &log = {});

/** Convert a report into the exportable mts.fuzz/1 record. */
FuzzRecord makeFuzzRecord(const FuzzReport &report,
                          const FuzzOptions &opts);

} // namespace mts

#endif // MTS_VERIFY_FUZZ_HPP
