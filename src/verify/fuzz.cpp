#include "verify/fuzz.hpp"

#include <algorithm>
#include <future>
#include <mutex>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace mts
{

namespace
{

/** Outcome of one seed (worker-side). */
struct SeedOutcome
{
    std::uint64_t seed = 0;
    int machineRuns = 0;
    bool failed = false;
    FuzzFailure failure;
};

SeedOutcome
runSeed(std::uint64_t seed, const FuzzOptions &opts)
{
    SeedOutcome out;
    out.seed = seed;

    GenOptions gen = opts.gen;
    gen.seed = seed;
    gen.threads = opts.diff.threads;
    GeneratedProgram prog = generateProgram(gen);

    DiffReport report = runDifferential(prog.source, opts.diff);
    out.machineRuns = report.machineRuns;
    if (!report.ok()) {
        out.failed = true;
        out.failure.seed = seed;
        out.failure.first = report.divergences.front();
        out.failure.divergences =
            static_cast<int>(report.divergences.size());
        out.failure.source = prog.source;
    }
    return out;
}

/**
 * The shrink predicate: the candidate still produces a divergence of
 * the original kind. Candidates that no longer assemble, no longer
 * terminate, or turn racy (Unstable) are rejected unless the original
 * failure itself was of that kind.
 */
bool
candidateStillFails(const std::string &candidate, DivergenceKind kind,
                    const DiffOptions &diff)
{
    try {
        DiffReport rep = runDifferential(candidate, diff);
        for (const Divergence &d : rep.divergences)
            if (d.kind == kind)
                return true;
        return false;
    } catch (const FatalError &) {
        return false;  // does not even run: not a reproducer
    }
}

} // namespace

FuzzReport
runFuzzCampaign(const FuzzOptions &opts,
                const std::function<void(const std::string &)> &log)
{
    FuzzReport report;
    if (opts.seeds <= 0)
        return report;

    std::mutex logMutex;
    auto say = [&](const std::string &msg) {
        if (log) {
            std::lock_guard<std::mutex> lock(logMutex);
            log(msg);
        }
    };

    std::vector<SeedOutcome> outcomes(
        static_cast<std::size_t>(opts.seeds));
    {
        ThreadPool pool(opts.jobs);
        std::vector<std::future<void>> futures;
        futures.reserve(outcomes.size());
        for (int i = 0; i < opts.seeds; ++i) {
            std::uint64_t seed =
                opts.firstSeed + static_cast<std::uint64_t>(i);
            futures.push_back(pool.submit([&, i, seed] {
                outcomes[static_cast<std::size_t>(i)] =
                    runSeed(seed, opts);
            }));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
            futures[i].get();  // rethrows worker exceptions
            const SeedOutcome &o = outcomes[i];
            if (o.failed)
                say(format(
                    "seed %llu: %d divergence(s), first [%s] %s",
                    static_cast<unsigned long long>(o.seed),
                    o.failure.divergences,
                    std::string(divergenceKindName(o.failure.first.kind))
                        .c_str(),
                    o.failure.first.config.c_str()));
        }
    }

    report.seedsRun = opts.seeds;
    for (const SeedOutcome &o : outcomes) {
        report.machineRuns += o.machineRuns;
        if (o.failed)
            report.failures.push_back(o.failure);
    }
    std::sort(report.failures.begin(), report.failures.end(),
              [](const FuzzFailure &a, const FuzzFailure &b) {
                  return a.seed < b.seed;
              });

    if (opts.shrink) {
        int shrunk = 0;
        for (FuzzFailure &f : report.failures) {
            if (shrunk++ >= opts.maxShrunkFailures)
                break;
            say(format("shrinking seed %llu (%d instructions)...",
                       static_cast<unsigned long long>(f.seed),
                       countInstructionLines(f.source)));
            DivergenceKind kind = f.first.kind;
            ShrinkResult sr = shrinkProgram(
                f.source,
                [&](const std::string &cand) {
                    return candidateStillFails(cand, kind, opts.diff);
                },
                opts.shrinkOpts);
            f.minimizedSource = sr.source;
            f.minimizedInstructions = sr.instructions;
            f.shrinkAttempts = sr.attempts;
            say(format("seed %llu minimized to %d instructions "
                       "(%d attempts)",
                       static_cast<unsigned long long>(f.seed),
                       sr.instructions, sr.attempts));
        }
    }

    return report;
}

FuzzRecord
makeFuzzRecord(const FuzzReport &report, const FuzzOptions &opts)
{
    FuzzRecord rec;
    rec.firstSeed = opts.firstSeed;
    rec.seedsRun = report.seedsRun;
    rec.threads = opts.diff.threads;
    rec.latency = opts.diff.latency;
    rec.machineRuns = report.machineRuns;
    for (const FuzzFailure &f : report.failures) {
        FuzzFailureRecord fr;
        fr.seed = f.seed;
        fr.kind = std::string(divergenceKindName(f.first.kind));
        fr.config = f.first.config;
        fr.detail = f.first.detail;
        fr.divergences = f.divergences;
        fr.minimizedSource = f.minimizedSource;
        fr.minimizedInstructions = f.minimizedInstructions;
        fr.shrinkAttempts = f.shrinkAttempts;
        rec.failures.push_back(std::move(fr));
    }
    return rec;
}

} // namespace mts
