#include "opt/basic_blocks.hpp"

namespace mts
{

std::vector<BlockRange>
findBasicBlocks(const Program &program)
{
    const auto &code = program.code;
    const auto n = static_cast<std::int32_t>(code.size());
    std::vector<bool> leader(n, false);
    if (n == 0)
        return {};

    leader[0] = true;
    leader[program.entry] = true;
    for (const auto &[index, name] : program.labelAt) {
        if (index >= 0 && index < n)
            leader[index] = true;
    }
    for (std::int32_t i = 0; i < n; ++i) {
        const Instruction &inst = code[i];
        if (inst.target >= 0 && inst.target < n &&
            (isBranch(inst.op) || inst.op == Opcode::J ||
             inst.op == Opcode::JAL))
            leader[inst.target] = true;
        if (isControl(inst.op) && i + 1 < n)
            leader[i + 1] = true;
    }

    std::vector<BlockRange> blocks;
    std::int32_t begin = 0;
    for (std::int32_t i = 1; i <= n; ++i) {
        if (i == n || leader[i]) {
            blocks.push_back({begin, i});
            begin = i;
        }
    }
    return blocks;
}

} // namespace mts
