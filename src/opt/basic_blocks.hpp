/**
 * @file
 * Basic-block discovery over an assembled Program.
 */
#ifndef MTS_OPT_BASIC_BLOCKS_HPP
#define MTS_OPT_BASIC_BLOCKS_HPP

#include <cstdint>
#include <vector>

#include "asm/program.hpp"

namespace mts
{

/** Half-open instruction range [begin, end) forming one basic block. */
struct BlockRange
{
    std::int32_t begin;
    std::int32_t end;
};

/**
 * Partition the program into basic blocks.
 *
 * Leaders are: instruction 0, every branch/jump target, every labelled
 * instruction (labels may be reached indirectly, e.g. as jal return
 * sites), and every instruction following a control-flow instruction.
 */
std::vector<BlockRange> findBasicBlocks(const Program &program);

} // namespace mts

#endif // MTS_OPT_BASIC_BLOCKS_HPP
