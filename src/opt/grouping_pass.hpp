/**
 * @file
 * The paper's "simple optimizing compiler": a post-pass that groups
 * independent shared loads within each basic block and inserts one
 * explicit `cswitch` instruction per group (Section 5.1).
 *
 * Dependence analysis is pessimistic exactly as in the paper (footnote 1):
 * every shared store is assumed to conflict with every shared load.
 * Local and shared references never alias (disjoint opcodes/address
 * spaces); two local references with the same unmodified base register
 * and different displacements are provably disjoint.
 *
 * Invariant: the transformed program computes exactly what the original
 * computes; only intra-block ordering changes and `cswitch` instructions
 * are inserted (property-tested in tests/test_grouping_pass.cpp).
 */
#ifndef MTS_OPT_GROUPING_PASS_HPP
#define MTS_OPT_GROUPING_PASS_HPP

#include <cstdint>

#include "asm/program.hpp"

namespace mts
{

/** Static statistics of one grouping-pass run. */
struct GroupingStats
{
    std::size_t basicBlocks = 0;
    std::size_t instructionsIn = 0;
    std::size_t instructionsOut = 0;
    std::size_t sharedLoads = 0;       ///< groupable loads seen (static)
    std::size_t switchesInserted = 0;  ///< cswitch instructions added
    std::size_t loadGroups = 0;        ///< groups containing >=1 data load
    std::size_t reorderedBlocks = 0;   ///< blocks whose order changed

    /** Static loads per group (the paper's Table 4 "grouping" column). */
    double
    staticGroupingFactor() const
    {
        return loadGroups ? static_cast<double>(sharedLoads) /
                                static_cast<double>(loadGroups)
                          : static_cast<double>(sharedLoads);
    }
};

/**
 * Apply the grouping pass, producing a new program with `cswitch`
 * instructions suitable for the explicit-switch and conditional-switch
 * machine models. Idempotent: re-running on the output is a no-op with
 * respect to grouping structure.
 */
Program applyGroupingPass(const Program &program,
                          GroupingStats *stats = nullptr);

} // namespace mts

#endif // MTS_OPT_GROUPING_PASS_HPP
