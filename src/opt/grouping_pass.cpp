#include "opt/grouping_pass.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "opt/basic_blocks.hpp"
#include "util/error.hpp"

namespace mts
{

namespace
{

/** Loads the pass groups (split-phase data accesses). */
bool
isGroupableLoad(Opcode op)
{
    return op == Opcode::LDS || op == Opcode::FLDS || op == Opcode::LDSD ||
           op == Opcode::FLDSD;
}

/** Accesses whose in-flight results force a wait before use. */
bool
isSwitchCausing(const Instruction &inst)
{
    // Dead-result fetch-and-add (rd = r0) is fire-and-forget like a
    // store: nothing returns, so no switch is needed for it.
    if (inst.op == Opcode::FAA && inst.rd == kRegZero)
        return false;
    return isSharedLoad(inst.op);  // includes lds.spin and faa
}

/** Instructions that must not move at all (full scheduling barriers). */
bool
isBarrier(Opcode op)
{
    return op == Opcode::CSWITCH || op == Opcode::PRINT ||
           op == Opcode::FPRINT || op == Opcode::SETPRI;
}

/** One dependence edge; `raw` marks a register flow dependence. */
struct Edge
{
    int from;
    bool raw;
};

class BlockScheduler
{
  public:
    BlockScheduler(const std::vector<Instruction> &code, BlockRange range)
        : insts(code.begin() + range.begin, code.begin() + range.end)
    {
        build();
    }

    /** Schedule the block; returns the new instruction sequence. */
    std::vector<Instruction>
    schedule(GroupingStats &stats)
    {
        const int n = static_cast<int>(insts.size());
        std::vector<Instruction> out;
        out.reserve(insts.size() + 4);

        std::vector<bool> done(n, false);
        std::vector<bool> uncommitted(n, false);
        bool groupOpen = false;
        std::size_t groupDataLoads = 0;
        int scheduled = 0;

        auto isReady = [&](int j) {
            if (done[j])
                return false;
            for (const Edge &e : preds[j])
                if (!done[e.from])
                    return false;
            return true;
        };
        auto canIssue = [&](int j) {
            for (const Edge &e : preds[j])
                if (e.raw && uncommitted[e.from])
                    return false;
            return true;
        };
        auto emit = [&](int j) {
            out.push_back(insts[j]);
            done[j] = true;
            ++scheduled;
            if (insts[j].op == Opcode::CSWITCH) {
                // Pre-existing switch commits the open group (idempotency).
                std::fill(uncommitted.begin(), uncommitted.end(), false);
                groupOpen = false;
                if (groupDataLoads)
                    ++stats.loadGroups;
                groupDataLoads = 0;
            } else if (isSwitchCausing(insts[j])) {
                uncommitted[j] = true;
                groupOpen = true;
                if (isGroupableLoad(insts[j].op))
                    ++groupDataLoads;
            }
        };
        auto closeGroup = [&](std::uint32_t srcLine) {
            Instruction sw;
            sw.op = Opcode::CSWITCH;
            sw.srcLine = srcLine;
            out.push_back(sw);
            std::fill(uncommitted.begin(), uncommitted.end(), false);
            groupOpen = false;
            ++stats.switchesInserted;
            if (groupDataLoads)
                ++stats.loadGroups;
            groupDataLoads = 0;
        };

        while (scheduled < n) {
            // Phase 1: emit every issueable shared access (a group).
            bool any = true;
            while (any) {
                any = false;
                for (int j = 0; j < n; ++j) {
                    if (isSwitchCausing(insts[j]) && isReady(j) &&
                        canIssue(j)) {
                        emit(j);
                        any = true;
                    }
                }
            }
            if (scheduled == n)
                break;

            // Phase 2: prefer work that leads to more shared loads (e.g.
            // address computation) so the group can keep growing.
            int pick = -1;
            for (int j = 0; j < n; ++j) {
                if (!isSwitchCausing(insts[j]) && isReady(j) &&
                    canIssue(j) && reachesLoad[j]) {
                    pick = j;
                    break;
                }
            }
            if (pick >= 0) {
                emit(pick);
                continue;
            }

            // Phase 2.5: a pre-existing cswitch that is ready commits the
            // open group — never insert a duplicate (idempotency).
            for (int j = 0; j < n && pick < 0; ++j)
                if (insts[j].op == Opcode::CSWITCH && isReady(j))
                    pick = j;
            if (pick >= 0) {
                emit(pick);
                continue;
            }

            // Phase 3: nothing can extend the group; wait for it once.
            if (groupOpen) {
                closeGroup(out.empty() ? 0 : out.back().srcLine);
                continue;
            }

            // Phase 4: drain remaining issueable instructions.
            for (int j = 0; j < n; ++j) {
                if (isReady(j) && canIssue(j)) {
                    pick = j;
                    break;
                }
            }
            MTS_ASSERT(pick >= 0,
                       "grouping scheduler wedged (dependence cycle?)");
            emit(pick);
        }

        if (groupOpen)
            closeGroup(out.back().srcLine);

        // Statistics.
        bool sameOrder = true;
        if (out.size() != insts.size()) {
            sameOrder = false;
        } else {
            for (std::size_t i = 0; i < insts.size(); ++i)
                if (out[i].op != insts[i].op ||
                    out[i].srcLine != insts[i].srcLine) {
                    sameOrder = false;
                    break;
                }
        }
        if (!sameOrder)
            ++stats.reorderedBlocks;
        return out;
    }

  private:
    void
    build()
    {
        const int n = static_cast<int>(insts.size());
        preds.assign(n, {});
        reachesLoad.assign(n, false);

        std::vector<Operands> ops(n);
        for (int i = 0; i < n; ++i)
            ops[i] = getOperands(insts[i]);

        const bool hasTerminator = n > 0 && isControl(insts[n - 1].op);

        for (int j = 0; j < n; ++j) {
            for (int i = 0; i < j; ++i) {
                bool dep = false;
                bool raw = false;

                // Register dependences.
                for (int d = 0; d < ops[i].numDefs && !raw; ++d) {
                    RegId r = ops[i].defs[d];
                    for (int u = 0; u < ops[j].numUses; ++u)
                        if (ops[j].uses[u] == r) {
                            dep = raw = true;  // RAW
                            break;
                        }
                    if (!raw)
                        for (int d2 = 0; d2 < ops[j].numDefs; ++d2)
                            if (ops[j].defs[d2] == r)
                                dep = true;  // WAW
                }
                if (!dep) {
                    for (int u = 0; u < ops[i].numUses && !dep; ++u) {
                        RegId r = ops[i].uses[u];
                        for (int d2 = 0; d2 < ops[j].numDefs; ++d2)
                            if (ops[j].defs[d2] == r)
                                dep = true;  // WAR
                    }
                }

                // Memory dependences.
                if (!dep && memConflict(i, j))
                    dep = true;

                // Barriers and the block terminator stay put.
                if (!dep && (isBarrier(insts[i].op) ||
                             isBarrier(insts[j].op)))
                    dep = true;
                if (!dep && hasTerminator && j == n - 1)
                    dep = true;

                if (dep)
                    preds[j].push_back({i, raw});
            }
        }

        // Static reachability to a groupable load (phase-2 priority).
        std::vector<std::vector<int>> succs(n);
        for (int j = 0; j < n; ++j)
            for (const Edge &e : preds[j])
                succs[e.from].push_back(j);
        for (int j = n - 1; j >= 0; --j) {
            for (int s : succs[j])
                if (isGroupableLoad(insts[s].op) || reachesLoad[s])
                    reachesLoad[j] = true;
        }
    }

    /** Conservative may-alias between instructions i < j (paper fn. 1). */
    bool
    memConflict(int i, int j) const
    {
        const Instruction &x = insts[i];
        const Instruction &y = insts[j];
        const bool xs = isSharedMem(x.op);
        const bool ys = isSharedMem(y.op);
        const bool xl = isLocalMem(x.op);
        const bool yl = isLocalMem(y.op);

        if (xs && ys) {
            auto writesOrSyncs = [](Opcode op) {
                return isSharedStore(op) || op == Opcode::FAA ||
                       op == Opcode::LDS_SPIN;
            };
            // Pessimistic: any shared write/sync conflicts with every
            // other shared access; plain loads never conflict.
            return writesOrSyncs(x.op) || writesOrSyncs(y.op);
        }
        if (xl && yl) {
            if (!isLocalStore(x.op) && !isLocalStore(y.op))
                return false;
            // Same unmodified base, different displacement: disjoint.
            if (x.rs1 == y.rs1 && x.imm != y.imm &&
                !baseRedefinedBetween(i, j, x.rs1))
                return false;
            return true;
        }
        return false;  // local and shared address spaces are disjoint
    }

    bool
    baseRedefinedBetween(int i, int j, std::uint8_t base) const
    {
        for (int k = i; k < j; ++k) {
            Operands o = getOperands(insts[k]);
            for (int d = 0; d < o.numDefs; ++d)
                if (o.defs[d] == intReg(base))
                    return true;
        }
        return false;
    }

    std::vector<Instruction> insts;
    std::vector<std::vector<Edge>> preds;
    std::vector<bool> reachesLoad;
};

} // namespace

Program
applyGroupingPass(const Program &program, GroupingStats *statsOut)
{
    GroupingStats stats;
    stats.instructionsIn = program.code.size();

    auto blocks = findBasicBlocks(program);
    stats.basicBlocks = blocks.size();
    for (const Instruction &inst : program.code)
        if (isGroupableLoad(inst.op))
            ++stats.sharedLoads;

    Program out;
    out.sharedWords = program.sharedWords;
    out.localStaticWords = program.localStaticWords;
    out.symbols = program.symbols;
    out.sourceLines = program.sourceLines;

    std::unordered_map<std::int32_t, std::int32_t> leaderMap;
    for (const BlockRange &b : blocks) {
        leaderMap[b.begin] = static_cast<std::int32_t>(out.code.size());
        BlockScheduler sched(program.code, b);
        auto emitted = sched.schedule(stats);
        out.code.insert(out.code.end(), emitted.begin(), emitted.end());
    }

    // Remap branch/jump targets (always block leaders), entry, labels,
    // and label-kind symbols.
    auto remap = [&](std::int32_t old) {
        auto it = leaderMap.find(old);
        MTS_ASSERT(it != leaderMap.end(),
                   "branch target " << old << " is not a block leader");
        return it->second;
    };
    for (Instruction &inst : out.code)
        if (inst.target >= 0)
            inst.target = remap(inst.target);
    out.entry = remap(program.entry);
    for (const auto &[index, name] : program.labelAt)
        out.labelAt[remap(index)] = name;
    for (auto &[name, sym] : out.symbols)
        if (sym.kind == SymbolKind::Label)
            sym.value = remap(static_cast<std::int32_t>(sym.value));

    stats.instructionsOut = out.code.size();
    if (statsOut)
        *statsOut = stats;
    return out;
}

} // namespace mts
