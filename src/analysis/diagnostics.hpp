/**
 * @file
 * Diagnostics produced by the mtlint checkers and the grouping-pass
 * translation validator.
 *
 * A Diag pins one finding to an instruction (pc), its source line and
 * its "label+offset" position; dual-location findings (the data-race
 * checker reports both sides of a conflicting pair) carry a second
 * location plus a note. A LintReport collects, orders and renders them
 * — as compiler-style text (quoting the offending source line when the
 * Program carries its source) and as an `mts.lint/2` JSON document
 * through src/util/json.hpp.
 */
#ifndef MTS_ANALYSIS_DIAGNOSTICS_HPP
#define MTS_ANALYSIS_DIAGNOSTICS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asm/program.hpp"
#include "util/json.hpp"

namespace mts
{

enum class Severity : std::uint8_t
{
    Info,
    Warning,
    Error
};

std::string_view severityName(Severity s);

/** One finding. */
struct Diag
{
    Severity severity = Severity::Warning;
    std::string checker;       ///< checker id ("use-before-def", ...)
    std::int32_t pc = -1;      ///< instruction index (-1: whole program)
    std::uint32_t line = 0;    ///< 1-based source line (0: unknown)
    std::string label;         ///< "label+offset" position
    std::string message;

    /// @name Optional second location (conflicting-pair diagnostics).
    /// @{
    std::int32_t pc2 = -1;     ///< -1: single-location finding
    std::uint32_t line2 = 0;
    std::string label2;
    std::string note;          ///< text attached to the second location
    /// @}
};

/** Ordered collection of findings for one analyzed program. */
class LintReport
{
  public:
    /** Schema tag of the JSON document (the /2 bump added the optional
     *  dual-location fields; documents with zero diagnostics still carry
     *  the schema, program name and severity counts). */
    static constexpr const char *kSchema = "mts.lint/2";

    /** Record a finding against instruction @p pc (fills line/label
     *  from @p prog; pass pc -1 for program-level findings). */
    void add(const Program &prog, Severity severity,
             std::string_view checker, std::int32_t pc,
             std::string message);

    /** Record a pre-built finding (dual-location checkers, merging
     *  reports): line/label of both locations are filled from @p prog
     *  when unset, every other field is preserved as given. */
    void add(const Program &prog, Diag d);

    const std::vector<Diag> &diags() const { return diags_; }
    std::size_t count(Severity s) const;
    bool hasErrors() const { return count(Severity::Error) > 0; }

    /** Stable order: by pc, then severity (worst first), then checker. */
    void sort();

    /** Compiler-style text, one finding per line, quoting the source
     *  line when available; "" when there are no findings. */
    std::string renderText(const Program &prog) const;

    /** The `mts.lint/2` document. @p programName names what was
     *  analyzed; @p grouped records whether the grouping pass ran. */
    JsonValue toJson(const std::string &programName, bool grouped) const;

  private:
    std::vector<Diag> diags_;
};

} // namespace mts

#endif // MTS_ANALYSIS_DIAGNOSTICS_HPP
