/**
 * @file
 * Diagnostics produced by the mtlint checkers and the grouping-pass
 * translation validator.
 *
 * A Diag pins one finding to an instruction (pc), its source line and
 * its "label+offset" position; a LintReport collects, orders and
 * renders them — as compiler-style text (quoting the offending source
 * line when the Program carries its source) and as an `mts.lint/1`
 * JSON document through src/util/json.hpp.
 */
#ifndef MTS_ANALYSIS_DIAGNOSTICS_HPP
#define MTS_ANALYSIS_DIAGNOSTICS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asm/program.hpp"
#include "util/json.hpp"

namespace mts
{

enum class Severity : std::uint8_t
{
    Info,
    Warning,
    Error
};

std::string_view severityName(Severity s);

/** One finding. */
struct Diag
{
    Severity severity = Severity::Warning;
    std::string checker;       ///< checker id ("use-before-def", ...)
    std::int32_t pc = -1;      ///< instruction index (-1: whole program)
    std::uint32_t line = 0;    ///< 1-based source line (0: unknown)
    std::string label;         ///< "label+offset" position
    std::string message;
};

/** Ordered collection of findings for one analyzed program. */
class LintReport
{
  public:
    /** Schema tag of the JSON document. */
    static constexpr const char *kSchema = "mts.lint/1";

    /** Record a finding against instruction @p pc (fills line/label
     *  from @p prog; pass pc -1 for program-level findings). */
    void add(const Program &prog, Severity severity,
             std::string_view checker, std::int32_t pc,
             std::string message);

    const std::vector<Diag> &diags() const { return diags_; }
    std::size_t count(Severity s) const;
    bool hasErrors() const { return count(Severity::Error) > 0; }

    /** Stable order: by pc, then severity (worst first), then checker. */
    void sort();

    /** Compiler-style text, one finding per line, quoting the source
     *  line when available; "" when there are no findings. */
    std::string renderText(const Program &prog) const;

    /** The `mts.lint/1` document. @p programName names what was
     *  analyzed; @p grouped records whether the grouping pass ran. */
    JsonValue toJson(const std::string &programName, bool grouped) const;

  private:
    std::vector<Diag> diags_;
};

} // namespace mts

#endif // MTS_ANALYSIS_DIAGNOSTICS_HPP
