#include "analysis/checkers.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "analysis/addr_resolve.hpp"
#include "analysis/races.hpp"
#include "analysis/routine_summary.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

std::string
regName(RegId r)
{
    return format("%c%u", r < 32 ? 'r' : 'f', r < 32 ? r : r - 32);
}

/** Routine entry blocks paired with the registers defined on entry. */
std::vector<std::pair<std::int32_t, RegSet>>
routineEntryStates(const Cfg &cfg, const LintOptions &opts)
{
    std::vector<std::pair<std::int32_t, RegSet>> entries;
    for (std::int32_t e : cfg.routineEntries()) {
        // Called routines assume a well-formed caller: everything the
        // callee reads is the caller's responsibility, so all registers
        // count as defined. Only the program entry starts cold.
        RegSet defined =
            e == cfg.entryBlock() ? opts.entryDefined : ~RegSet{0};
        entries.push_back({e, defined});
    }
    return entries;
}

// ---------------------------------------------------------------------
// use-before-def
// ---------------------------------------------------------------------

/** Forward undefined-register analysis; union meet gives "maybe
 *  undefined along some path", intersection gives "undefined along
 *  every path". */
struct UndefDomain
{
    using Value = RegSet;

    const Cfg &cfg;
    RegSet entryUndef;
    bool mayAnalysis;  ///< union meet (else intersection)

    Value boundary() const { return entryUndef; }
    Value top() const { return mayAnalysis ? RegSet{0} : ~RegSet{0}; }

    void
    meetInto(Value &into, const Value &from) const
    {
        if (mayAnalysis)
            into |= from;
        else
            into &= from;
    }

    Value
    transfer(std::int32_t block, Value v) const
    {
        const auto &code = cfg.program().code;
        const CfgBlock &b = cfg.block(block);
        for (std::int32_t pc = b.range.begin; pc < b.range.end; ++pc)
            v &= ~instDefs(code[static_cast<std::size_t>(pc)]);
        return v;
    }
};

void
useBeforeDefInRoutine(const Cfg &cfg, std::int32_t entry, RegSet defined,
                      std::set<std::pair<std::int32_t, RegId>> &seen,
                      LintReport &report)
{
    auto blocks = cfg.routineBlocks(entry);
    UndefDomain may{cfg, ~defined, true};
    UndefDomain must{cfg, ~defined, false};
    auto maySol = solveDataflow(cfg, Direction::Forward, may, blocks);
    auto mustSol = solveDataflow(cfg, Direction::Forward, must, blocks);

    const Program &prog = cfg.program();
    std::string entryName =
        prog.positionOf(cfg.block(entry).range.begin);
    for (std::int32_t b : blocks) {
        RegSet mayU = maySol.in[static_cast<std::size_t>(b)];
        RegSet mustU = mustSol.in[static_cast<std::size_t>(b)];
        const CfgBlock &blk = cfg.block(b);
        for (std::int32_t pc = blk.range.begin; pc < blk.range.end;
             ++pc) {
            const Instruction &inst =
                prog.code[static_cast<std::size_t>(pc)];
            RegSet uses = instUses(inst);
            for (RegId r = 0; r < kNumRegIds; ++r) {
                if (!(uses & regBit(r)))
                    continue;
                if (mustU & regBit(r)) {
                    if (seen.insert({pc, r}).second)
                        report.add(
                            prog, Severity::Error, "use-before-def", pc,
                            format("%s is read but never written on any "
                                   "path from %s",
                                   regName(r).c_str(),
                                   entryName.c_str()));
                } else if (mayU & regBit(r)) {
                    if (seen.insert({pc, r}).second)
                        report.add(
                            prog, Severity::Warning, "use-before-def",
                            pc,
                            format("%s may be read before it is written "
                                   "(some path from %s skips the "
                                   "write)",
                                   regName(r).c_str(),
                                   entryName.c_str()));
                }
            }
            mayU &= ~instDefs(inst);
            mustU &= ~instDefs(inst);
        }
    }
}

// ---------------------------------------------------------------------
// split-phase hazard
// ---------------------------------------------------------------------

/** In-flight shared-load destinations with no `cswitch` since issue. */
struct InFlightDomain
{
    using Value = RegSet;

    const Cfg &cfg;

    Value boundary() const { return 0; }
    Value top() const { return 0; }

    void
    meetInto(Value &into, const Value &from) const
    {
        into |= from;
    }

    static RegSet
    step(const Instruction &inst, RegSet v)
    {
        if (inst.op == Opcode::CSWITCH)
            return 0;
        v &= ~instDefs(inst);
        if (isSharedLoad(inst.op))
            v |= instDefs(inst);
        return v;
    }

    Value
    transfer(std::int32_t block, Value v) const
    {
        const auto &code = cfg.program().code;
        const CfgBlock &b = cfg.block(block);
        for (std::int32_t pc = b.range.begin; pc < b.range.end; ++pc)
            v = step(code[static_cast<std::size_t>(pc)], v);
        return v;
    }
};

} // namespace

// ---------------------------------------------------------------------
// public checkers
// ---------------------------------------------------------------------

void
checkUseBeforeDef(const Cfg &cfg, const LintOptions &opts,
                  LintReport &report)
{
    std::set<std::pair<std::int32_t, RegId>> seen;
    for (const auto &[entry, defined] : routineEntryStates(cfg, opts))
        useBeforeDefInRoutine(cfg, entry, defined, seen, report);
}

void
checkSplitPhase(const Cfg &cfg, const LintOptions &opts,
                LintReport &report)
{
    (void)opts;
    const Program &prog = cfg.program();
    std::set<std::pair<std::int32_t, RegId>> seen;
    for (std::int32_t entry : cfg.routineEntries()) {
        auto blocks = cfg.routineBlocks(entry);
        InFlightDomain dom{cfg};
        auto sol = solveDataflow(cfg, Direction::Forward, dom, blocks);
        for (std::int32_t b : blocks) {
            RegSet inflight = sol.in[static_cast<std::size_t>(b)];
            const CfgBlock &blk = cfg.block(b);
            for (std::int32_t pc = blk.range.begin; pc < blk.range.end;
                 ++pc) {
                const Instruction &inst =
                    prog.code[static_cast<std::size_t>(pc)];
                RegSet hazard = instUses(inst) & inflight;
                for (RegId r = 0; r < kNumRegIds; ++r)
                    if ((hazard & regBit(r)) &&
                        seen.insert({pc, r}).second)
                        report.add(
                            prog, Severity::Error, "split-phase", pc,
                            format("%s holds an in-flight shared-load "
                                   "result; explicit-switch hardware "
                                   "needs a cswitch between the load "
                                   "and this use",
                                   regName(r).c_str()));
                inflight = InFlightDomain::step(inst, inflight);
            }
        }
    }
}

void
checkRunLength(const Cfg &cfg, const LintOptions &opts,
               LintReport &report)
{
    const Program &prog = cfg.program();
    const auto &code = prog.code;
    const std::uint64_t limit = opts.sliceLimit;
    if (limit == 0)
        return;

    // Loops with no context-switch point run unboundedly long under
    // conditional-switch (the slice limit can only act at a cswitch).
    std::map<std::int32_t, std::int32_t> sccHead;  // scc id -> first block
    std::map<std::int32_t, bool> sccHasSwitch;
    for (const CfgBlock &b : cfg.blocks()) {
        if (!cfg.blockInCycle(b.id))
            continue;
        std::int32_t scc = cfg.sccOf(b.id);
        if (!sccHead.count(scc))
            sccHead[scc] = b.id;
        for (std::int32_t pc = b.range.begin; pc < b.range.end; ++pc)
            if (code[static_cast<std::size_t>(pc)].op == Opcode::CSWITCH)
                sccHasSwitch[scc] = true;
    }
    for (const auto &[scc, head] : sccHead) {
        if (sccHasSwitch.count(scc))
            continue;
        report.add(prog, Severity::Warning, "run-length",
                   cfg.block(head).range.begin,
                   "loop contains no context-switch point: run length "
                   "is unbounded under conditional-switch");
    }

    // Worst-case acyclic run length between switch points, per routine.
    // Retreating edges are excluded from propagation (the loop case is
    // reported above); the static cycle estimate charges every
    // instruction its full result latency (serial-chain worst case,
    // shared accesses assumed to hit).
    std::set<std::int32_t> reported;
    for (std::int32_t entry : cfg.routineEntries()) {
        auto blocks = cfg.routineBlocks(entry);
        std::unordered_map<std::int32_t, std::size_t> rpoIndex;
        for (std::size_t i = 0; i < blocks.size(); ++i)
            rpoIndex[blocks[i]] = i;
        std::unordered_map<std::int32_t, std::uint64_t> runOut;
        for (std::int32_t b : blocks) {
            std::uint64_t runIn = 0;
            for (const CfgEdge &e : cfg.block(b).preds) {
                if (e.kind == EdgeKind::Call)
                    continue;
                auto it = rpoIndex.find(e.block);
                if (it == rpoIndex.end() ||
                    it->second >= rpoIndex[b])  // retreating edge
                    continue;
                auto ro = runOut.find(e.block);
                if (ro != runOut.end())
                    runIn = std::max(runIn, ro->second);
            }
            std::uint64_t acc = runIn;
            const CfgBlock &blk = cfg.block(b);
            for (std::int32_t pc = blk.range.begin; pc < blk.range.end;
                 ++pc) {
                const Instruction &inst =
                    code[static_cast<std::size_t>(pc)];
                if (inst.op == Opcode::CSWITCH) {
                    acc = 0;
                    continue;
                }
                std::uint64_t prev = acc;
                acc += static_cast<std::uint64_t>(
                    std::max(1, resultLatency(inst.op)));
                if (prev <= limit && acc > limit &&
                    reported.insert(pc).second)
                    report.add(
                        prog, Severity::Warning, "run-length", pc,
                        format("worst-case run reaches %llu cycles "
                               "here with no context-switch point "
                               "(conditional-switch slice limit is "
                               "%llu)",
                               (unsigned long long)acc,
                               (unsigned long long)limit));
            }
            std::uint64_t &slot = runOut[b];
            slot = std::max(slot, acc);
        }
    }
}

void
checkSpinLock(const Cfg &cfg, const LintOptions &opts, LintReport &report)
{
    (void)opts;
    const Program &prog = cfg.program();
    const auto &code = prog.code;

    // lds.spin must spin: its block must lie on a CFG cycle. Name the
    // word being spun on (resolved through the address analysis) so the
    // diagnostic points at the flag, not just the instruction.
    AddrResolver resolver(cfg);
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        if (code[pc].op != Opcode::LDS_SPIN)
            continue;
        if (!cfg.blockInCycle(cfg.blockOf(static_cast<std::int32_t>(pc))))
            report.add(prog, Severity::Error, "spin-lock",
                       static_cast<std::int32_t>(pc),
                       format("lds.spin on %s outside any loop: spin "
                              "loads are excluded from bandwidth "
                              "accounting and must only be used for "
                              "spinning",
                              resolver
                                  .describeMemAddr(
                                      static_cast<std::int32_t>(pc))
                                  .c_str()));
    }

    // setpri pairing: fixpoint over per-routine priority summaries,
    // then a diagnostic pass with concrete entry values.
    auto summaries = computePrioritySummaries(cfg);

    std::set<std::int32_t> seen;
    for (std::int32_t entry : cfg.routineEntries()) {
        auto blocks = cfg.routineBlocks(entry);
        Pri entryValue =
            entry == cfg.entryBlock() ? Pri::Low : Pri::Entry;
        PriDomain dom{cfg, summaries, entryValue};
        auto sol = solveDataflow(cfg, Direction::Forward, dom, blocks);
        for (std::int32_t b : blocks) {
            Pri v = sol.in[static_cast<std::size_t>(b)];
            const CfgBlock &blk = cfg.block(b);
            for (std::int32_t pc = blk.range.begin; pc < blk.range.end;
                 ++pc) {
                const Instruction &inst =
                    code[static_cast<std::size_t>(pc)];
                if (inst.op == Opcode::HALT && seen.insert(pc).second) {
                    if (v == Pri::High)
                        report.add(prog, Severity::Error, "spin-lock",
                                   pc,
                                   "thread halts with raised priority: "
                                   "setpri 1 has no matching setpri 0 "
                                   "on this path");
                    else if (v == Pri::Top)
                        report.add(prog, Severity::Warning, "spin-lock",
                                   pc,
                                   "priority at halt depends on the "
                                   "path taken (unbalanced setpri "
                                   "pairing)");
                }
                if (inst.op == Opcode::SETPRI &&
                    ((inst.imm == 1 && v == Pri::High) ||
                     (inst.imm == 0 && v == Pri::Low)) &&
                    seen.insert(pc).second)
                    report.add(prog, Severity::Info, "spin-lock", pc,
                               format("redundant setpri %lld: priority "
                                      "is already %s on every path "
                                      "here",
                                      (long long)inst.imm,
                                      inst.imm ? "raised" : "normal"));
                if (inst.op == Opcode::JR && v == Pri::Top &&
                    seen.insert(pc).second)
                    report.add(prog, Severity::Warning, "spin-lock", pc,
                               "routine returns with path-dependent "
                               "priority (unbalanced setpri pairing)");
                v = dom.stepInst(inst, v);
            }
        }
    }
}

LintReport
runLint(const Program &prog, const LintOptions &opts)
{
    LintReport report;
    if (prog.code.empty())
        return report;
    Cfg cfg(prog);
    checkUseBeforeDef(cfg, opts, report);
    if (opts.grouped) {
        checkSplitPhase(cfg, opts, report);
        checkRunLength(cfg, opts, report);
    }
    checkSpinLock(cfg, opts, report);
    if (opts.races)
        checkRaces(cfg, opts, report);
    report.sort();
    return report;
}

} // namespace mts
