/**
 * @file
 * Generic worklist dataflow engine over a Cfg, plus the 64-bit register
 * set the register-level analyses share.
 *
 * The engine is direction-parametric (forward / backward) and solves the
 * usual meet-over-paths fixpoint on a *subset* of blocks (a routine, as
 * produced by Cfg::routineBlocks) using only intraprocedural edges. A
 * Domain supplies the lattice:
 *
 *     struct Domain {
 *         using Value = ...;        // equality-comparable
 *         Value boundary() const;   // entry (fwd) / exit (bwd) value
 *         Value top() const;        // meet identity, initial value
 *         void  meetInto(Value &into, const Value &from) const;
 *         Value transfer(std::int32_t block, Value v) const;
 *     };
 *
 * Both banks fit one word: RegSet is a 64-bit mask over bank-tagged
 * RegIds (bits 0..31 integer, 32..63 floating point), so the register
 * analyses (liveness, use-before-def) are plain bitwise transfers.
 */
#ifndef MTS_ANALYSIS_DATAFLOW_HPP
#define MTS_ANALYSIS_DATAFLOW_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "isa/instruction.hpp"

namespace mts
{

/// @name Register sets (both banks in one 64-bit mask).
/// @{
using RegSet = std::uint64_t;

constexpr RegSet
regBit(RegId r)
{
    return RegSet{1} << r;
}

constexpr RegSet kIntRegMask = 0x00000000FFFFFFFFull;
constexpr RegSet kFpRegMask = 0xFFFFFFFF00000000ull;

/** Registers read by @p inst. */
RegSet instUses(const Instruction &inst);

/** Registers written by @p inst (r0 excluded — never a real def). */
RegSet instDefs(const Instruction &inst);

/** Render a set as "r4, r5, f2" for diagnostics. */
std::string regSetNames(RegSet s);
/// @}

enum class Direction
{
    Forward,
    Backward
};

/** Fixpoint solution: per-block entry and exit values (block-id indexed;
 *  blocks outside the solved subset keep top()). */
template <class Domain>
struct DataflowResult
{
    std::vector<typename Domain::Value> in;
    std::vector<typename Domain::Value> out;
};

/**
 * Solve @p dom over @p blocks (a reverse-post-order routine as returned
 * by Cfg::routineBlocks; the first element is the routine entry).
 * Intraprocedural edges only; edges leaving the subset are ignored.
 */
template <class Domain>
DataflowResult<Domain>
solveDataflow(const Cfg &cfg, Direction dir, const Domain &dom,
              const std::vector<std::int32_t> &blocks)
{
    using Value = typename Domain::Value;
    const std::size_t n = static_cast<std::size_t>(cfg.numBlocks());
    DataflowResult<Domain> res;
    res.in.assign(n, dom.top());
    res.out.assign(n, dom.top());
    if (blocks.empty())
        return res;

    std::vector<bool> inSubset(n, false);
    for (std::int32_t b : blocks)
        inSubset[static_cast<std::size_t>(b)] = true;

    // Boundary: the routine entry for forward problems; every block
    // without an intraprocedural successor inside the subset (halt/jr
    // exits) for backward ones.
    const bool fwd = dir == Direction::Forward;
    auto edgesIn = [&](std::int32_t b) {
        return fwd ? cfg.block(b).preds : cfg.block(b).succs;
    };

    std::deque<std::int32_t> work;
    std::vector<bool> queued(n, false);
    // Seed in iteration order: RPO for forward, reverse RPO for backward.
    if (fwd)
        for (std::int32_t b : blocks)
            work.push_back(b);
    else
        for (auto it = blocks.rbegin(); it != blocks.rend(); ++it)
            work.push_back(*it);
    for (std::int32_t b : blocks)
        queued[static_cast<std::size_t>(b)] = true;

    auto isBoundary = [&](std::int32_t b) {
        if (fwd)
            return b == blocks.front();
        for (const CfgEdge &e : cfg.block(b).succs)
            if (e.kind != EdgeKind::Call &&
                inSubset[static_cast<std::size_t>(e.block)])
                return false;
        return true;
    };

    while (!work.empty()) {
        std::int32_t b = work.front();
        work.pop_front();
        queued[static_cast<std::size_t>(b)] = false;

        Value entry = isBoundary(b) ? dom.boundary() : dom.top();
        for (const CfgEdge &e : edgesIn(b)) {
            if (e.kind == EdgeKind::Call ||
                !inSubset[static_cast<std::size_t>(e.block)])
                continue;
            const Value &flow =
                fwd ? res.out[static_cast<std::size_t>(e.block)]
                    : res.in[static_cast<std::size_t>(e.block)];
            dom.meetInto(entry, flow);
        }

        Value &stored = fwd ? res.in[static_cast<std::size_t>(b)]
                            : res.out[static_cast<std::size_t>(b)];
        stored = entry;
        Value exit = dom.transfer(b, std::move(entry));
        Value &storedOut = fwd ? res.out[static_cast<std::size_t>(b)]
                               : res.in[static_cast<std::size_t>(b)];
        const bool changed = !(storedOut == exit);
        storedOut = std::move(exit);
        if (changed) {
            const auto &next =
                fwd ? cfg.block(b).succs : cfg.block(b).preds;
            for (const CfgEdge &e : next) {
                if (e.kind == EdgeKind::Call ||
                    !inSubset[static_cast<std::size_t>(e.block)] ||
                    queued[static_cast<std::size_t>(e.block)])
                    continue;
                queued[static_cast<std::size_t>(e.block)] = true;
                work.push_back(e.block);
            }
        }
    }
    return res;
}

} // namespace mts

#endif // MTS_ANALYSIS_DATAFLOW_HPP
