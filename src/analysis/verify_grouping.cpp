#include "analysis/verify_grouping.hpp"

#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "analysis/dataflow.hpp"
#include "opt/basic_blocks.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

constexpr const char *kChecker = "translation";

/** Accesses whose in-flight results force a wait before use (mirrors
 *  the pass: dead-result faa is fire-and-forget). */
bool
isSwitchCausing(const Instruction &inst)
{
    if (inst.op == Opcode::FAA && inst.rd == kRegZero)
        return false;
    return isSharedLoad(inst.op);
}

/** Instructions the pass must not move (full scheduling barriers). */
bool
isBarrier(Opcode op)
{
    return op == Opcode::CSWITCH || op == Opcode::PRINT ||
           op == Opcode::FPRINT || op == Opcode::SETPRI;
}

/** Matching key: every Instruction field except the branch target
 *  (targets are global indices, checked through the block map). */
using InstKey = std::tuple<Opcode, std::uint8_t, std::uint8_t,
                           std::uint8_t, bool, std::int64_t, double,
                           std::uint32_t>;

InstKey
keyOf(const Instruction &i)
{
    return {i.op, i.rd, i.rs1, i.rs2, i.useImm, i.imm, i.fimm, i.srcLine};
}

/**
 * Independent re-derivation of the pass's per-block dependence edges:
 * register RAW/WAW/WAR, pessimistic memory aliasing (any shared
 * write/sync conflicts with every shared access; local accesses
 * conflict on a store unless provably disjoint displacements off the
 * same unmodified base; local and shared spaces are disjoint), barrier
 * ordering, and the terminator pinned last.
 */
class BlockDeps
{
  public:
    BlockDeps(const std::vector<Instruction> &code, BlockRange range)
        : insts(code.begin() + range.begin, code.begin() + range.end)
    {
        const int n = static_cast<int>(insts.size());
        ops.resize(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            ops[static_cast<std::size_t>(i)] = getOperands(insts[i]);
    }

    int size() const { return static_cast<int>(insts.size()); }

    /** True when instruction @p i must stay before @p j (i < j). */
    bool
    mustPrecede(int i, int j) const
    {
        const Operands &oi = ops[static_cast<std::size_t>(i)];
        const Operands &oj = ops[static_cast<std::size_t>(j)];
        for (int d = 0; d < oi.numDefs; ++d) {
            RegId r = oi.defs[d];
            for (int u = 0; u < oj.numUses; ++u)
                if (oj.uses[u] == r)
                    return true;  // RAW
            for (int d2 = 0; d2 < oj.numDefs; ++d2)
                if (oj.defs[d2] == r)
                    return true;  // WAW
        }
        for (int u = 0; u < oi.numUses; ++u) {
            RegId r = oi.uses[u];
            for (int d2 = 0; d2 < oj.numDefs; ++d2)
                if (oj.defs[d2] == r)
                    return true;  // WAR
        }
        if (memConflict(i, j))
            return true;
        if (isBarrier(insts[static_cast<std::size_t>(i)].op) ||
            isBarrier(insts[static_cast<std::size_t>(j)].op))
            return true;
        const int n = size();
        if (j == n - 1 &&
            isControl(insts[static_cast<std::size_t>(n - 1)].op))
            return true;
        return false;
    }

    /** True when register reads of @p j consume the result of the
     *  switch-causing access @p i (the split-phase dependence). */
    bool
    consumesResult(int i, int j) const
    {
        const Operands &oi = ops[static_cast<std::size_t>(i)];
        const Operands &oj = ops[static_cast<std::size_t>(j)];
        for (int d = 0; d < oi.numDefs; ++d)
            for (int u = 0; u < oj.numUses; ++u)
                if (oj.uses[u] == oi.defs[d])
                    return true;
        return false;
    }

  private:
    bool
    memConflict(int i, int j) const
    {
        const Instruction &x = insts[static_cast<std::size_t>(i)];
        const Instruction &y = insts[static_cast<std::size_t>(j)];
        const bool xs = isSharedMem(x.op);
        const bool ys = isSharedMem(y.op);
        const bool xl = isLocalMem(x.op);
        const bool yl = isLocalMem(y.op);

        if (xs && ys) {
            auto writesOrSyncs = [](Opcode op) {
                return isSharedStore(op) || op == Opcode::FAA ||
                       op == Opcode::LDS_SPIN;
            };
            return writesOrSyncs(x.op) || writesOrSyncs(y.op);
        }
        if (xl && yl) {
            if (!isLocalStore(x.op) && !isLocalStore(y.op))
                return false;
            if (x.rs1 == y.rs1 && x.imm != y.imm &&
                !baseRedefinedBetween(i, j, x.rs1))
                return false;
            return true;
        }
        return false;
    }

    bool
    baseRedefinedBetween(int i, int j, std::uint8_t base) const
    {
        for (int k = i; k < j; ++k)
            for (int d = 0;
                 d < ops[static_cast<std::size_t>(k)].numDefs; ++d)
                if (ops[static_cast<std::size_t>(k)].defs[d] ==
                    intReg(base))
                    return true;
        return false;
    }

    std::vector<Instruction> insts;
    std::vector<Operands> ops;
};

/** Validator state for one orig/xform block pair. */
struct BlockMatch
{
    // xform position (block-relative) -> orig position, -1 for an
    // inserted cswitch, -2 for a foreign instruction.
    std::vector<int> toOrig;
    // orig position -> xform position, -1 when dropped.
    std::vector<int> toXform;
};

BlockMatch
matchBlock(const std::vector<Instruction> &origCode, BlockRange ob,
           const std::vector<Instruction> &xformCode, BlockRange xb)
{
    BlockMatch m;
    m.toOrig.assign(static_cast<std::size_t>(xb.end - xb.begin), -2);
    m.toXform.assign(static_cast<std::size_t>(ob.end - ob.begin), -1);

    std::map<InstKey, std::deque<int>> pending;
    for (std::int32_t pc = ob.begin; pc < ob.end; ++pc)
        pending[keyOf(origCode[static_cast<std::size_t>(pc)])].push_back(
            pc - ob.begin);

    for (std::int32_t pc = xb.begin; pc < xb.end; ++pc) {
        const Instruction &inst = xformCode[static_cast<std::size_t>(pc)];
        auto it = pending.find(keyOf(inst));
        if (it != pending.end() && !it->second.empty()) {
            int o = it->second.front();
            it->second.pop_front();
            m.toOrig[static_cast<std::size_t>(pc - xb.begin)] = o;
            m.toXform[static_cast<std::size_t>(o)] = pc - xb.begin;
        } else if (inst.op == Opcode::CSWITCH) {
            m.toOrig[static_cast<std::size_t>(pc - xb.begin)] = -1;
        }
    }
    return m;
}

} // namespace

bool
verifyGroupingPass(const Program &orig, const Program &xform,
                   LintReport &report)
{
    const std::size_t before = report.count(Severity::Error);

    auto origBlocks = findBasicBlocks(orig);
    auto xformBlocks = findBasicBlocks(xform);

    if (origBlocks.size() != xformBlocks.size()) {
        report.add(xform, Severity::Error, kChecker, -1,
                   format("basic-block structure changed: %zu blocks "
                          "before the pass, %zu after",
                          origBlocks.size(), xformBlocks.size()));
        return false;
    }

    // Block-leader correspondence (orig leader index -> xform leader).
    std::map<std::int32_t, std::int32_t> leaderMap;
    for (std::size_t b = 0; b < origBlocks.size(); ++b)
        leaderMap[origBlocks[b].begin] = xformBlocks[b].begin;

    for (std::size_t b = 0; b < origBlocks.size(); ++b) {
        const BlockRange ob = origBlocks[b];
        const BlockRange xb = xformBlocks[b];
        BlockDeps deps(orig.code, ob);
        BlockMatch m = matchBlock(orig.code, ob, xform.code, xb);

        // Nothing dropped...
        for (std::int32_t o = 0; o < ob.end - ob.begin; ++o)
            if (m.toXform[static_cast<std::size_t>(o)] < 0)
                report.add(
                    xform, Severity::Error, kChecker, xb.begin,
                    format("instruction dropped from block: `%s` (was "
                           "%s)",
                           disassemble(
                               orig.code[static_cast<std::size_t>(
                                   ob.begin + o)])
                               .c_str(),
                           orig.positionOf(ob.begin + o).c_str()));
        // ...nothing invented or duplicated (inserted cswitch aside).
        for (std::int32_t x = 0; x < xb.end - xb.begin; ++x)
            if (m.toOrig[static_cast<std::size_t>(x)] == -2)
                report.add(
                    xform, Severity::Error, kChecker, xb.begin + x,
                    format("instruction not in the source block: `%s` "
                           "(invented or duplicated)",
                           disassemble(
                               xform.code[static_cast<std::size_t>(
                                   xb.begin + x)])
                               .c_str()));

        // Dependence edges preserved by the permutation.
        for (int j = 0; j < deps.size(); ++j) {
            int xj = m.toXform[static_cast<std::size_t>(j)];
            if (xj < 0)
                continue;
            for (int i = 0; i < j; ++i) {
                int xi = m.toXform[static_cast<std::size_t>(i)];
                if (xi < 0 || xi < xj || !deps.mustPrecede(i, j))
                    continue;
                report.add(
                    xform, Severity::Error, kChecker, xb.begin + xj,
                    format("dependence violated: `%s` was reordered "
                           "before `%s` it depends on",
                           disassemble(
                               xform.code[static_cast<std::size_t>(
                                   xb.begin + xj)])
                               .c_str(),
                           disassemble(
                               xform.code[static_cast<std::size_t>(
                                   xb.begin + xi)])
                               .c_str()));
            }
        }

        // Branch targets of matched instructions remap through the
        // block correspondence.
        for (std::int32_t x = 0; x < xb.end - xb.begin; ++x) {
            int o = m.toOrig[static_cast<std::size_t>(x)];
            if (o < 0)
                continue;
            const Instruction &oi =
                orig.code[static_cast<std::size_t>(ob.begin + o)];
            const Instruction &xi =
                xform.code[static_cast<std::size_t>(xb.begin + x)];
            std::int32_t want = -1;
            if (oi.target >= 0) {
                auto it = leaderMap.find(oi.target);
                if (it == leaderMap.end()) {
                    report.add(xform, Severity::Error, kChecker,
                               xb.begin + x,
                               format("source branch target %d is not "
                                      "a block leader",
                                      oi.target));
                    continue;
                }
                want = it->second;
            }
            if (xi.target != want)
                report.add(xform, Severity::Error, kChecker,
                           xb.begin + x,
                           format("branch target remapped to %d, "
                                  "expected %d",
                                  xi.target, want));
        }

        // Every switch-causing access committed by a cswitch before its
        // result is read and before the block ends.
        {
            std::vector<int> inflight;  // xform block-relative positions
            for (std::int32_t x = 0; x < xb.end - xb.begin; ++x) {
                const Instruction &xi =
                    xform.code[static_cast<std::size_t>(xb.begin + x)];
                if (xi.op == Opcode::CSWITCH) {
                    inflight.clear();
                    continue;
                }
                RegSet uses = instUses(xi);
                for (int f : inflight) {
                    const Instruction &load =
                        xform.code[static_cast<std::size_t>(xb.begin +
                                                            f)];
                    if (uses & instDefs(load))
                        report.add(
                            xform, Severity::Error, kChecker,
                            xb.begin + x,
                            format("result of `%s` consumed with no "
                                   "intervening cswitch",
                                   disassemble(load).c_str()));
                }
                if (isSwitchCausing(xi))
                    inflight.push_back(x);
            }
            if (!inflight.empty())
                report.add(xform, Severity::Error, kChecker,
                           xb.end - 1,
                           format("%zu shared access(es) still "
                                  "in-flight at block end: group not "
                                  "closed by a cswitch",
                                  inflight.size()));
        }
    }

    // Program-level metadata.
    auto mapped = [&](std::int32_t old) {
        auto it = leaderMap.find(old);
        return it == leaderMap.end() ? std::int32_t{-1} : it->second;
    };
    if (xform.entry != mapped(orig.entry))
        report.add(xform, Severity::Error, kChecker, -1,
                   format("entry point %d does not correspond to the "
                          "source entry %d",
                          xform.entry, orig.entry));
    for (const auto &[index, name] : orig.labelAt) {
        std::int32_t want = mapped(index);
        auto it = xform.labelAt.find(want);
        if (want < 0 || it == xform.labelAt.end() ||
            it->second != name)
            report.add(xform, Severity::Error, kChecker, -1,
                       format("label '%s' lost or moved by the pass",
                              name.c_str()));
    }
    if (xform.labelAt.size() != orig.labelAt.size())
        report.add(xform, Severity::Error, kChecker, -1,
                   "label table size changed by the pass");
    if (xform.sharedWords != orig.sharedWords ||
        xform.localStaticWords != orig.localStaticWords)
        report.add(xform, Severity::Error, kChecker, -1,
                   "data segment sizes changed by the pass");
    for (const auto &[name, sym] : orig.symbols) {
        auto it = xform.symbols.find(name);
        if (it == xform.symbols.end() || it->second.kind != sym.kind) {
            report.add(xform, Severity::Error, kChecker, -1,
                       format("symbol '%s' lost or re-kinded by the "
                              "pass",
                              name.c_str()));
            continue;
        }
        std::int64_t want =
            sym.kind == SymbolKind::Label
                ? mapped(static_cast<std::int32_t>(sym.value))
                : sym.value;
        if (it->second.value != want)
            report.add(xform, Severity::Error, kChecker, -1,
                       format("symbol '%s' value %lld, expected %lld",
                              name.c_str(),
                              (long long)it->second.value,
                              (long long)want));
    }

    return report.count(Severity::Error) == before;
}

} // namespace mts
