/**
 * @file
 * Reaching definitions over both register banks: the classic forward
 * may-analysis instantiated on the generic dataflow engine.
 *
 * A definition site is one (instruction, register) pair; the entry of
 * the routine contributes one *pseudo-definition* per register (site
 * pc == -1), which is how use-before-def queries fall out of the same
 * solution: a use reached by the entry pseudo-def of a register the
 * routine does not guarantee at entry is a use of an unwritten
 * register along some path.
 */
#ifndef MTS_ANALYSIS_REACHING_DEFS_HPP
#define MTS_ANALYSIS_REACHING_DEFS_HPP

#include <cstdint>
#include <vector>

#include "analysis/dataflow.hpp"

namespace mts
{

/** One definition site. */
struct DefSite
{
    std::int32_t pc;  ///< instruction index, or -1 for the entry pseudo-def
    RegId reg;
};

/** Reaching-definitions solution for one routine. */
struct ReachingDefsResult
{
    std::vector<DefSite> sites;

    /** Per-block bitvectors over @p sites (block-id indexed). */
    std::vector<std::vector<std::uint64_t>> in;
    std::vector<std::vector<std::uint64_t>> out;

    /** Definition sites of @p reg reaching the point before @p pc. */
    std::vector<DefSite> reachingAt(const Cfg &cfg, std::int32_t pc,
                                    RegId reg) const;
};

/** Solve reaching definitions for the routine @p blocks. */
ReachingDefsResult
computeReachingDefs(const Cfg &cfg,
                    const std::vector<std::int32_t> &blocks);

} // namespace mts

#endif // MTS_ANALYSIS_REACHING_DEFS_HPP
