/**
 * @file
 * The mtlint checker suite.
 *
 * Four CFG/dataflow checkers run over any program (the fifth checker,
 * grouping-pass translation validation, lives in verify_grouping.hpp
 * because it compares two programs):
 *
 *  - use-before-def: a register read before any write along some
 *    (warning) or every (error) path from its routine entry;
 *  - split-phase: the destination of an in-flight shared load consumed
 *    with no intervening `cswitch` — the invariant explicit-switch
 *    hardware depends on, so it only applies to grouped code;
 *  - run-length: worst-case static cycles between context-switch
 *    points, against the conditional-switch slice limit (Section 5.2);
 *    loops with no switch point are reported as unbounded;
 *  - spin-lock: `lds.spin` must sit inside a spin loop (a CFG cycle) —
 *    the bandwidth accounting of paper footnote 2 assumes it — and
 *    `setpri 1`/`setpri 0` must pair up on every path, checked
 *    interprocedurally through per-routine priority summaries.
 */
#ifndef MTS_ANALYSIS_CHECKERS_HPP
#define MTS_ANALYSIS_CHECKERS_HPP

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/diagnostics.hpp"

namespace mts
{

/** Registers architecturally defined at thread startup: r0, a0 = thread
 *  id, a1 = thread count, sp = top of local memory. */
constexpr RegSet kEntryDefinedRegs =
    regBit(intReg(kRegZero)) | regBit(intReg(kRegArg0)) |
    regBit(intReg(kRegArg1)) | regBit(intReg(kRegSp));

/** Tuning knobs shared by the checkers. */
struct LintOptions
{
    /**
     * The program is grouping-pass output (destined for the explicit-
     * or conditional-switch models). Enables the split-phase and
     * run-length checkers, which are meaningless on raw code — raw
     * code relies on hardware use-detection and has no switch points.
     */
    bool grouped = false;

    /** Conditional-switch run-length limit in cycles (Section 5.2). */
    std::uint64_t sliceLimit = 200;

    /** Registers assumed defined at program entry. */
    RegSet entryDefined = kEntryDefinedRegs;

    /** Run the interprocedural lockset / shared-region race checker
     *  (see races.hpp). Off by default: it is the most expensive pass
     *  and only meaningful for whole programs with their prelude. */
    bool races = false;
};

/// @name Individual checkers (append findings to @p report).
/// @{
void checkUseBeforeDef(const Cfg &cfg, const LintOptions &opts,
                       LintReport &report);
void checkSplitPhase(const Cfg &cfg, const LintOptions &opts,
                     LintReport &report);
void checkRunLength(const Cfg &cfg, const LintOptions &opts,
                    LintReport &report);
void checkSpinLock(const Cfg &cfg, const LintOptions &opts,
                   LintReport &report);
/// @}

/**
 * Run every applicable checker over @p prog (split-phase and run-length
 * only when opts.grouped). Translation validation is separate — see
 * verifyGroupingPass().
 */
LintReport runLint(const Program &prog, const LintOptions &opts = {});

} // namespace mts

#endif // MTS_ANALYSIS_CHECKERS_HPP
