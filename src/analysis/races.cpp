#include "analysis/races.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "analysis/addr_resolve.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/routine_summary.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

// ---------------------------------------------------------------------
// locksets
// ---------------------------------------------------------------------

/** A lock is the resolved address passed to an acquire routine; -1 is
 *  the wildcard for an acquire whose argument could not be resolved
 *  (assumed to be one single lock everywhere, Eraser-style). */
using LockId = std::int64_t;
constexpr LockId kWildcardLock = -1;

/** Set of locks held, with an explicit bottom ("no path reached here
 *  yet" — the meet identity, distinct from holding no locks). */
struct LockSet
{
    bool bot = true;
    std::vector<LockId> locks;  // sorted

    bool operator==(const LockSet &) const = default;

    static LockSet
    none()
    {
        return {false, {}};
    }

    void
    add(LockId id)
    {
        auto it = std::lower_bound(locks.begin(), locks.end(), id);
        if (it == locks.end() || *it != id)
            locks.insert(it, id);
    }

    void
    remove(LockId id)
    {
        auto it = std::lower_bound(locks.begin(), locks.end(), id);
        if (it != locks.end() && *it == id)
            locks.erase(it);
    }

    void
    meetWith(const LockSet &o)
    {
        if (o.bot)
            return;
        if (bot) {
            *this = o;
            return;
        }
        std::vector<LockId> out;
        std::set_intersection(locks.begin(), locks.end(),
                              o.locks.begin(), o.locks.end(),
                              std::back_inserter(out));
        locks = std::move(out);
    }

    bool
    intersects(const LockSet &o) const
    {
        if (bot || o.bot)
            return false;
        std::size_t i = 0, j = 0;
        while (i < locks.size() && j < o.locks.size()) {
            if (locks[i] == o.locks[j])
                return true;
            if (locks[i] < o.locks[j])
                ++i;
            else
                ++j;
        }
        return false;
    }
};

/** What a call site does to the lockset. */
enum class CallEffect
{
    Acquire,
    Release,
    Barrier,
    Plain  ///< ordinary routine (or unresolved target)
};

/**
 * Whole-program lockset propagation, context-insensitive: each routine
 * has one entry lockset (the meet over its call sites) and one exit
 * lockset (the meet over its jr blocks). Losing a caller's locks
 * across a shared callee only *adds* reports, never hides one.
 */
struct LockAnalysis
{
    const Cfg &cfg;
    const AddrResolver &resolver;
    const SyncRoutines &sync;

    std::map<std::int32_t, LockSet> entryLock;  // routine entry -> in
    std::map<std::int32_t, LockSet> exitLock;   // routine entry -> out

    CallEffect
    effectOf(const Instruction &inst, std::int32_t pc,
             LockId *lockOut) const
    {
        *lockOut = kWildcardLock;
        if (inst.target < 0)
            return CallEffect::Plain;
        std::int32_t callee = cfg.blockOf(inst.target);
        CallEffect eff = sync.acquires.count(callee) ? CallEffect::Acquire
                         : sync.releases.count(callee)
                             ? CallEffect::Release
                         : sync.barriers.count(callee)
                             ? CallEffect::Barrier
                             : CallEffect::Plain;
        if (eff == CallEffect::Acquire || eff == CallEffect::Release) {
            AffineVal a0 = resolver.valueAt(pc, kRegArg0);
            if (a0.kind == AffineVal::Kind::Exact && a0.tid == 0)
                *lockOut = a0.base;
            else if (a0.resolved() && a0.tid != 0)
                *lockOut = LockId{-2};  // per-thread lock: see stepInst
        }
        return eff;
    }

    /** Apply one instruction. @p collect, when set, receives lockset
     *  propagations into plain callee entries. */
    void
    stepInst(const Instruction &inst, std::int32_t pc, LockSet &v,
             std::map<std::int32_t, LockSet> *collect) const
    {
        if (inst.op != Opcode::JAL || v.bot)
            return;
        LockId id;
        switch (effectOf(inst, pc, &id)) {
          case CallEffect::Acquire:
            // A per-thread (tid-affine) lock protects nothing across
            // threads, so holding it adds no cross-thread ordering:
            // leave it out of the set entirely.
            if (id != LockId{-2})
                v.add(id);
            return;
          case CallEffect::Release:
            if (id == kWildcardLock)
                v = LockSet::none();  // unknown release: drop everything
            else if (id != LockId{-2})
                v.remove(id);
            return;
          case CallEffect::Barrier:
            return;
          case CallEffect::Plain: {
            if (inst.target < 0) {
                v = LockSet::none();
                return;
            }
            std::int32_t callee = cfg.blockOf(inst.target);
            if (collect)
                (*collect)[callee].meetWith(v);
            auto it = exitLock.find(callee);
            if (it != exitLock.end() && !it->second.bot)
                v = it->second;
            // Exit still bottom: callee not solved yet; keep the
            // caller's set and let the outer fixpoint re-run us.
            return;
          }
        }
    }

    struct Domain
    {
        using Value = LockSet;
        const LockAnalysis &la;
        LockSet entryValue;
        std::map<std::int32_t, LockSet> *collect;

        Value boundary() const { return entryValue; }
        Value top() const { return LockSet{}; }

        void
        meetInto(Value &into, const Value &from) const
        {
            into.meetWith(from);
        }

        Value
        transfer(std::int32_t block, Value v) const
        {
            const auto &code = la.cfg.program().code;
            const CfgBlock &b = la.cfg.block(block);
            for (std::int32_t pc = b.range.begin; pc < b.range.end; ++pc)
                la.stepInst(code[static_cast<std::size_t>(pc)], pc, v,
                            collect);
            return v;
        }
    };

    void
    solve()
    {
        for (std::int32_t entry : cfg.routineEntries()) {
            entryLock[entry] = LockSet{};
            exitLock[entry] = LockSet{};
        }
        entryLock[cfg.entryBlock()] = LockSet::none();

        const int rounds =
            3 * static_cast<int>(entryLock.size()) + 3;
        for (int iter = 0; iter < rounds; ++iter) {
            bool changed = false;
            std::map<std::int32_t, LockSet> collect;
            for (auto &[entry, in] : entryLock) {
                if (in.bot)
                    continue;
                auto blocks = cfg.routineBlocks(entry);
                Domain dom{*this, in, &collect};
                auto sol =
                    solveDataflow(cfg, Direction::Forward, dom, blocks);
                LockSet out;
                const auto &code = cfg.program().code;
                for (std::int32_t b : blocks) {
                    const CfgBlock &blk = cfg.block(b);
                    if (blk.size() > 0 &&
                        code[static_cast<std::size_t>(blk.range.end - 1)]
                                .op == Opcode::JR)
                        out.meetWith(
                            sol.out[static_cast<std::size_t>(b)]);
                }
                if (out != exitLock[entry]) {
                    exitLock[entry] = out;
                    changed = true;
                }
            }
            for (auto &[callee, v] : collect) {
                LockSet merged = entryLock[callee];
                merged.meetWith(v);
                if (merged != entryLock[callee]) {
                    entryLock[callee] = merged;
                    changed = true;
                }
            }
            if (!changed)
                break;
        }
    }

    /** Lockset just before each pc (meet over owning routines). */
    std::vector<LockSet>
    atEachPc() const
    {
        std::vector<LockSet> at(cfg.program().code.size());
        const auto &code = cfg.program().code;
        for (const auto &[entry, in] : entryLock) {
            if (in.bot)
                continue;
            auto blocks = cfg.routineBlocks(entry);
            Domain dom{*this, in, nullptr};
            auto sol =
                solveDataflow(cfg, Direction::Forward, dom, blocks);
            for (std::int32_t b : blocks) {
                LockSet v = sol.in[static_cast<std::size_t>(b)];
                const CfgBlock &blk = cfg.block(b);
                for (std::int32_t pc = blk.range.begin;
                     pc < blk.range.end; ++pc) {
                    at[static_cast<std::size_t>(pc)].meetWith(v);
                    stepInst(code[static_cast<std::size_t>(pc)], pc, v,
                             nullptr);
                }
            }
        }
        return at;
    }
};

// ---------------------------------------------------------------------
// thread guards (tid == c regions)
// ---------------------------------------------------------------------

/** Per-block constraint on the executing thread id: -2 = unreachable
 *  (meet identity), -1 = any thread, c >= 0 = only thread c. */
constexpr std::int64_t kGuardBot = -2;
constexpr std::int64_t kGuardAny = -1;

std::int64_t
meetGuard(std::int64_t a, std::int64_t b)
{
    if (a == kGuardBot)
        return b;
    if (b == kGuardBot)
        return a;
    return a == b ? a : kGuardAny;
}

/**
 * Edge-sensitive guard propagation: a beq/bne comparing a tid-affine
 * register against a constant pins tid on the "equal" edge. Constraints
 * never expire (tid is immutable), they only weaken at path joins.
 */
std::vector<std::int64_t>
computeGuards(const Cfg &cfg, const AddrResolver &resolver)
{
    const std::size_t n = static_cast<std::size_t>(cfg.numBlocks());
    std::vector<std::int64_t> in(n, kGuardBot);
    const auto &code = cfg.program().code;

    // The "equal" guard implied by the branch ending @p b, or kGuardAny.
    // kGuardBot when the equality is impossible (edge unreachable).
    auto equalGuard = [&](const CfgBlock &b) -> std::int64_t {
        if (b.size() == 0)
            return kGuardAny;
        std::int32_t pc = b.range.end - 1;
        const Instruction &inst = code[static_cast<std::size_t>(pc)];
        if (inst.op != Opcode::BEQ && inst.op != Opcode::BNE)
            return kGuardAny;
        AffineVal a = resolver.valueAt(pc, inst.rs1);
        AffineVal bb = inst.useImm ? AffineVal::exact(inst.imm)
                                   : resolver.valueAt(pc, inst.rs2);
        if (a.isConst())
            std::swap(a, bb);
        if (a.kind != AffineVal::Kind::Exact || a.tid == 0 ||
            !bb.isConst())
            return kGuardAny;
        std::int64_t diff = bb.base - a.base;
        if (diff % a.tid != 0 || diff / a.tid < 0)
            return kGuardBot;  // no thread satisfies the equality
        return diff / a.tid;
    };

    std::int32_t entry = cfg.entryBlock();
    in[static_cast<std::size_t>(entry)] = kGuardAny;
    for (int iter = 0; iter < 2 * static_cast<int>(n) + 2; ++iter) {
        bool changed = false;
        for (const CfgBlock &b : cfg.blocks()) {
            std::int64_t v = b.id == entry ? kGuardAny : kGuardBot;
            for (const CfgEdge &e : b.preds) {
                std::int64_t pv = in[static_cast<std::size_t>(e.block)];
                if (pv == kGuardBot)
                    continue;
                const CfgBlock &pred = cfg.block(e.block);
                bool isEqualEdge = false, isOtherEdge = false;
                if (pred.size() > 0) {
                    Opcode t =
                        code[static_cast<std::size_t>(pred.range.end - 1)]
                            .op;
                    if (t == Opcode::BEQ) {
                        isEqualEdge = e.kind == EdgeKind::Branch;
                        isOtherEdge = e.kind == EdgeKind::Fallthrough;
                    } else if (t == Opcode::BNE) {
                        isEqualEdge = e.kind == EdgeKind::Fallthrough;
                        isOtherEdge = e.kind == EdgeKind::Branch;
                    }
                }
                (void)isOtherEdge;
                std::int64_t ev = pv;
                if (isEqualEdge) {
                    std::int64_t g = equalGuard(pred);
                    if (g == kGuardBot)
                        continue;  // edge can't be taken
                    if (g >= 0)
                        ev = (pv == kGuardAny || pv == g) ? g : kGuardBot;
                    if (ev == kGuardBot)
                        continue;  // contradictory constraints
                }
                v = meetGuard(v, ev);
            }
            if (v != in[static_cast<std::size_t>(b.id)]) {
                in[static_cast<std::size_t>(b.id)] = v;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return in;
}

// ---------------------------------------------------------------------
// may-happen-in-parallel (barrier-free reachability)
// ---------------------------------------------------------------------

/**
 * Block-level reachability along paths that never cross a barrier call
 * (the jal's fallthrough edge *is* the barrier crossing, since jal
 * always terminates its block). Call edges into sync routines are not
 * traversed — their bodies are exempt — and plain calls get synthetic
 * return edges from the callee's jr blocks back to the call site's
 * continuation.
 */
struct Mhp
{
    std::vector<std::vector<bool>> reach;  // [from][to]

    Mhp(const Cfg &cfg, const SyncRoutines &sync)
    {
        const std::size_t n =
            static_cast<std::size_t>(cfg.numBlocks());
        std::vector<std::vector<std::int32_t>> adj(n);
        const auto &code = cfg.program().code;

        // jr blocks per routine entry, for synthetic return edges.
        std::map<std::int32_t, std::vector<std::int32_t>> jrBlocks;
        for (std::int32_t entry : cfg.routineEntries())
            for (std::int32_t b : cfg.routineBlocks(entry)) {
                const CfgBlock &blk = cfg.block(b);
                if (blk.size() > 0 &&
                    code[static_cast<std::size_t>(blk.range.end - 1)]
                            .op == Opcode::JR)
                    jrBlocks[entry].push_back(b);
            }

        for (const CfgBlock &b : cfg.blocks()) {
            bool callsBarrier = false;
            std::int32_t callee = -1;
            if (b.size() > 0) {
                const Instruction &last =
                    code[static_cast<std::size_t>(b.range.end - 1)];
                if (last.op == Opcode::JAL && last.target >= 0) {
                    callee = cfg.blockOf(last.target);
                    callsBarrier = sync.barriers.count(callee) != 0;
                }
            }
            for (const CfgEdge &e : b.succs) {
                if (e.kind == EdgeKind::Call) {
                    if (callee >= 0 && !sync.isSync(callee)) {
                        adj[static_cast<std::size_t>(b.id)].push_back(
                            e.block);
                        // Return edges: callee jr -> our continuation.
                        for (const CfgEdge &f : b.succs)
                            if (f.kind == EdgeKind::Fallthrough)
                                for (std::int32_t jr :
                                     jrBlocks[callee])
                                    adj[static_cast<std::size_t>(jr)]
                                        .push_back(f.block);
                    }
                    continue;
                }
                if (callsBarrier && e.kind == EdgeKind::Fallthrough)
                    continue;  // the barrier edge: the MHP cut
                adj[static_cast<std::size_t>(b.id)].push_back(e.block);
            }
        }

        reach.assign(n, std::vector<bool>(n, false));
        std::vector<std::int32_t> stack;
        for (std::size_t s = 0; s < n; ++s) {
            auto &r = reach[s];
            stack.assign(1, static_cast<std::int32_t>(s));
            r[s] = true;
            while (!stack.empty()) {
                std::int32_t b = stack.back();
                stack.pop_back();
                for (std::int32_t t : adj[static_cast<std::size_t>(b)])
                    if (!r[static_cast<std::size_t>(t)]) {
                        r[static_cast<std::size_t>(t)] = true;
                        stack.push_back(t);
                    }
            }
        }
    }

    bool
    concurrent(std::int32_t a, std::int32_t b) const
    {
        return reach[static_cast<std::size_t>(a)]
                    [static_cast<std::size_t>(b)] ||
               reach[static_cast<std::size_t>(b)]
                    [static_cast<std::size_t>(a)];
    }
};

// ---------------------------------------------------------------------
// shared accesses and regions
// ---------------------------------------------------------------------

enum class RegionKind
{
    Exact,   ///< one word, same for every thread
    Slice,   ///< off + stride * tid (per-thread strided word)
    Whole,   ///< somewhere inside one symbol
    Unknown  ///< unresolved address
};

struct Access
{
    std::int32_t pc = -1;
    std::int32_t block = -1;
    bool write = false;
    bool atomic = false;  ///< faa (atomic read-modify-write)
    int width = 1;        ///< 2 for the paired ldsd/fldsd

    RegionKind region = RegionKind::Unknown;
    std::string sym;          ///< covering shared symbol ("" = unknown)
    std::int64_t off = 0;     ///< word offset within sym (Exact/Slice)
    std::int64_t stride = 0;  ///< tid coefficient (Slice)

    LockSet locks;
    std::int64_t guard = kGuardAny;  ///< only thread `guard` runs this

    // Message-passing idiom: a write later published by a flag store
    // in its own block / a read dominated by a spin on that flag.
    bool hasPubFlag = false;
    std::string pubSym;
    std::int64_t pubOff = 0;
    std::vector<std::pair<std::string, std::int64_t>> spinFlags;
};

/** Shared symbol covering an absolute address, with its word offset. */
bool
coveringSymbol(const Program &prog, std::int64_t addr, std::string *name,
               std::int64_t *off)
{
    if (!isSharedAddr(static_cast<Addr>(addr)))
        return false;
    for (const auto &[n, sym] : prog.symbols) {
        if (sym.kind != SymbolKind::Shared)
            continue;
        std::int64_t base = sym.value;
        std::int64_t size =
            static_cast<std::int64_t>(sym.size ? sym.size : 1);
        if (addr >= base && addr < base + size) {
            *name = n;
            *off = addr - base;
            return true;
        }
    }
    return false;
}

std::vector<Access>
collectAccesses(const Cfg &cfg, const AddrResolver &resolver,
                const SyncRoutines &sync,
                const std::vector<LockSet> &lockAt,
                const std::vector<std::int64_t> &guardIn)
{
    const Program &prog = cfg.program();
    const auto &code = prog.code;

    // Blocks belonging to sync routines are exempt wholesale.
    std::vector<bool> exempt(
        static_cast<std::size_t>(cfg.numBlocks()), false);
    for (std::int32_t entry : cfg.routineEntries())
        if (sync.isSync(entry))
            for (std::int32_t b : cfg.routineBlocks(entry))
                exempt[static_cast<std::size_t>(b)] = true;

    std::vector<Access> out;
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        const Instruction &inst = code[pc];
        if (!isSharedMem(inst.op) || inst.op == Opcode::LDS_SPIN)
            continue;  // spin reads are the acquire side of sync
        std::int32_t block =
            cfg.blockOf(static_cast<std::int32_t>(pc));
        if (exempt[static_cast<std::size_t>(block)])
            continue;
        if (guardIn[static_cast<std::size_t>(block)] == kGuardBot)
            continue;  // unreachable

        Access a;
        a.pc = static_cast<std::int32_t>(pc);
        a.block = block;
        a.write = isSharedStore(inst.op) || inst.op == Opcode::FAA;
        a.atomic = inst.op == Opcode::FAA;
        a.width = (inst.op == Opcode::LDSD ||
                   inst.op == Opcode::FLDSD)
                      ? 2
                      : 1;
        a.locks = lockAt[pc];
        a.guard = guardIn[static_cast<std::size_t>(block)];

        AffineVal addr = resolver.memAddr(a.pc);
        if (addr.resolved() &&
            coveringSymbol(prog, addr.base, &a.sym, &a.off)) {
            if (addr.kind == AffineVal::Kind::Approx)
                a.region = RegionKind::Whole;
            else if (addr.tid == 0)
                a.region = RegionKind::Exact;
            else {
                a.region = RegionKind::Slice;
                a.stride = addr.tid;
            }
        } else {
            a.region = RegionKind::Unknown;
        }

        // Publication: a later plain store in the same block to a
        // different exactly-known word is the flag of a store-then-
        // flag pair (same block, so the same thread guard applies).
        if (a.write && !a.atomic) {
            const CfgBlock &blk = cfg.block(block);
            for (std::int32_t p2 = a.pc + 1; p2 < blk.range.end; ++p2) {
                const Instruction &i2 =
                    code[static_cast<std::size_t>(p2)];
                if (i2.op != Opcode::STS)
                    continue;
                AffineVal fa = resolver.memAddr(p2);
                std::string fs;
                std::int64_t fo;
                if (fa.kind == AffineVal::Kind::Exact && fa.tid == 0 &&
                    coveringSymbol(prog, fa.base, &fs, &fo) &&
                    (fs != a.sym || fo != a.off)) {
                    a.hasPubFlag = true;
                    a.pubSym = fs;
                    a.pubOff = fo;
                    break;
                }
            }
        }
        out.push_back(std::move(a));
    }
    return out;
}

/** Per-routine dominator-based spin coverage: for every read, the set
 *  of exactly-resolved flag words some dominating block spins on. */
void
attachSpinFlags(const Cfg &cfg, const AddrResolver &resolver,
                std::vector<Access> &accesses)
{
    const Program &prog = cfg.program();
    const auto &code = prog.code;

    for (std::int32_t entry : cfg.routineEntries()) {
        auto blocks = cfg.routineBlocks(entry);
        if (blocks.empty())
            continue;
        std::map<std::int32_t, std::size_t> index;
        for (std::size_t i = 0; i < blocks.size(); ++i)
            index[blocks[i]] = i;

        // Iterative intraroutine dominators over the RPO subset.
        const std::size_t n = blocks.size();
        std::vector<std::vector<bool>> dom(
            n, std::vector<bool>(n, true));
        dom[0].assign(n, false);
        dom[0][0] = true;
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 1; i < n; ++i) {
                std::vector<bool> nd(n, true);
                bool any = false;
                for (const CfgEdge &e :
                     cfg.block(blocks[i]).preds) {
                    if (e.kind == EdgeKind::Call)
                        continue;
                    auto it = index.find(e.block);
                    if (it == index.end())
                        continue;
                    any = true;
                    const auto &pd = dom[it->second];
                    for (std::size_t k = 0; k < n; ++k)
                        nd[k] = nd[k] && pd[k];
                }
                if (!any)
                    nd.assign(n, false);
                nd[i] = true;
                if (nd != dom[i]) {
                    dom[i] = std::move(nd);
                    changed = true;
                }
            }
        }

        // Spin blocks in this routine with exactly-resolved targets.
        std::vector<std::pair<std::size_t,
                              std::pair<std::string, std::int64_t>>>
            spins;
        for (std::size_t i = 0; i < n; ++i) {
            const CfgBlock &blk = cfg.block(blocks[i]);
            for (std::int32_t pc = blk.range.begin; pc < blk.range.end;
                 ++pc) {
                if (code[static_cast<std::size_t>(pc)].op !=
                    Opcode::LDS_SPIN)
                    continue;
                AffineVal fa = resolver.memAddr(pc);
                std::string fs;
                std::int64_t fo;
                if (fa.kind == AffineVal::Kind::Exact && fa.tid == 0 &&
                    coveringSymbol(prog, fa.base, &fs, &fo))
                    spins.push_back({i, {fs, fo}});
            }
        }
        if (spins.empty())
            continue;

        for (Access &a : accesses) {
            if (a.write)
                continue;
            auto it = index.find(a.block);
            if (it == index.end())
                continue;
            for (const auto &[spinIdx, flag] : spins)
                if (dom[it->second][spinIdx])
                    a.spinFlags.push_back(flag);
        }
    }
}

// ---------------------------------------------------------------------
// pairwise race check
// ---------------------------------------------------------------------

enum class Verdict
{
    No,
    May,
    Must
};

/** Can threads t1 != t2 collide on a word of A and B? */
Verdict
overlap(const Access &A, const Access &B)
{
    if (A.region == RegionKind::Unknown ||
        B.region == RegionKind::Unknown) {
        // Unresolved vs anything shared: cannot exclude overlap, but
        // never provable either.
        return Verdict::May;
    }
    if (A.sym != B.sym)
        return Verdict::No;
    if (A.region == RegionKind::Whole || B.region == RegionKind::Whole)
        return Verdict::May;

    auto sameThreadOnly = [&](std::int64_t ta, std::int64_t tb) {
        // Guards can rule the colliding thread pair out.
        if (A.guard >= 0 && ta >= 0 && A.guard != ta)
            return true;  // A's thread pinned elsewhere: no collision
        if (B.guard >= 0 && tb >= 0 && B.guard != tb)
            return true;
        if (ta >= 0 && tb >= 0)
            return ta == tb;
        std::int64_t ga = ta >= 0 ? ta : A.guard;
        std::int64_t gb = tb >= 0 ? tb : B.guard;
        return ga >= 0 && gb >= 0 && ga == gb;
    };

    for (int i = 0; i < A.width; ++i) {
        for (int j = 0; j < B.width; ++j) {
            std::int64_t oa = A.off + i, ob = B.off + j;
            bool aSlice = A.region == RegionKind::Slice;
            bool bSlice = B.region == RegionKind::Slice;
            if (!aSlice && !bSlice) {
                // Exact vs Exact: collision iff the same word; any two
                // distinct threads do (unless guards pin one thread).
                if (oa == ob && !sameThreadOnly(-1, -1))
                    return Verdict::Must;
                continue;
            }
            if (aSlice && bSlice) {
                if (A.stride != B.stride)
                    return Verdict::May;
                std::int64_t s = A.stride;
                std::int64_t d = ob - oa;
                if (d % s != 0)
                    continue;  // never the same word
                // oa + s*t1 == ob + s*t2 with t1 = t2 + d/s: distinct
                // threads iff d != 0.
                if (d != 0 && !sameThreadOnly(-1, -1))
                    return Verdict::Must;
                continue;  // d == 0: per-thread slice, same thread only
            }
            // Slice vs Exact: the slice thread t = (ob - oa) / s must
            // exist; the exact access runs on every (unpinned) thread.
            const Access &S = aSlice ? A : B;
            std::int64_t so = aSlice ? oa : ob;
            std::int64_t eo = aSlice ? ob : oa;
            std::int64_t d = eo - so;
            if (d % S.stride != 0 || d / S.stride < 0)
                continue;
            std::int64_t t = d / S.stride;
            if (!sameThreadOnly(aSlice ? t : -1, aSlice ? -1 : t))
                return Verdict::Must;
        }
    }
    return Verdict::No;
}

const char *
accessNoun(const Access &a)
{
    if (a.atomic)
        return "fetch-and-add";
    return a.write ? "store" : "load";
}

std::string
regionText(const AddrResolver &resolver, const Access &a)
{
    return resolver.describeMemAddr(a.pc);
}

} // namespace

void
checkRaces(const Cfg &cfg, const LintOptions &opts, LintReport &report)
{
    (void)opts;
    const Program &prog = cfg.program();

    auto summaries = computePrioritySummaries(cfg);
    SyncRoutines sync = classifySyncRoutines(cfg, summaries);
    AddrResolver resolver(cfg);

    LockAnalysis locks{cfg, resolver, sync, {}, {}};
    locks.solve();
    std::vector<LockSet> lockAt = locks.atEachPc();
    std::vector<std::int64_t> guards = computeGuards(cfg, resolver);
    Mhp mhp(cfg, sync);

    std::vector<Access> accesses =
        collectAccesses(cfg, resolver, sync, lockAt, guards);
    attachSpinFlags(cfg, resolver, accesses);

    auto flagOrdered = [](const Access &w, const Access &r) {
        if (!w.hasPubFlag || r.write)
            return false;
        for (const auto &[fs, fo] : r.spinFlags)
            if (fs == w.pubSym && fo == w.pubOff)
                return true;
        return false;
    };

    for (std::size_t i = 0; i < accesses.size(); ++i) {
        for (std::size_t j = i; j < accesses.size(); ++j) {
            const Access &A = accesses[i];
            const Access &B = accesses[j];
            if (!A.write && !B.write)
                continue;
            if (A.atomic && B.atomic)
                continue;  // atomic vs atomic never races
            if (i == j && (A.guard >= 0 || !A.write))
                continue;  // one pinned thread, or read-read
            if (!mhp.concurrent(A.block, B.block))
                continue;
            if (A.locks.intersects(B.locks))
                continue;
            if (flagOrdered(A, B) || flagOrdered(B, A))
                continue;
            Verdict v = overlap(A, B);
            if (v == Verdict::No)
                continue;

            Diag d;
            d.severity = v == Verdict::Must ? Severity::Error
                                            : Severity::Warning;
            d.checker = "data-race";
            d.pc = std::min(A.pc, B.pc);
            d.pc2 = std::max(A.pc, B.pc);
            const Access &first = A.pc <= B.pc ? A : B;
            const Access &second = A.pc <= B.pc ? B : A;
            if (v == Verdict::Must)
                d.message = format(
                    "data race: %s of %s conflicts with a concurrent "
                    "%s of %s on the same word with no common lock",
                    accessNoun(first),
                    regionText(resolver, first).c_str(),
                    accessNoun(second),
                    regionText(resolver, second).c_str());
            else
                d.message = format(
                    "possible data race: %s of %s may overlap a "
                    "concurrent %s of %s with no common lock",
                    accessNoun(first),
                    regionText(resolver, first).c_str(),
                    accessNoun(second),
                    regionText(resolver, second).c_str());
            d.note = A.pc == B.pc ? "the same instruction races with "
                                    "itself across threads"
                                  : "conflicting access";
            if (A.pc == B.pc)
                d.pc2 = A.pc;
            report.add(prog, std::move(d));
        }
    }
}

} // namespace mts
