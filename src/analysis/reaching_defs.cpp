#include "analysis/reaching_defs.hpp"

#include <array>
#include <unordered_map>

namespace mts
{

namespace
{

using Bits = std::vector<std::uint64_t>;

void
setBit(Bits &b, std::size_t i)
{
    b[i / 64] |= std::uint64_t{1} << (i % 64);
}

bool
getBit(const Bits &b, std::size_t i)
{
    return (b[i / 64] >> (i % 64)) & 1;
}

struct ReachingDomain
{
    using Value = Bits;

    const Cfg &cfg;
    const std::vector<DefSite> &sites;
    std::size_t words;
    /** Sites defining each register (for kill sets). */
    const std::array<Bits, kNumRegIds> &sitesOfReg;
    /** Sites at each instruction (gen sets). */
    const std::unordered_map<std::int32_t, Bits> &sitesAtPc;
    Bits entryValue;

    Value boundary() const { return entryValue; }
    Value top() const { return Bits(words, 0); }

    void
    meetInto(Value &into, const Value &from) const
    {
        for (std::size_t i = 0; i < words; ++i)
            into[i] |= from[i];
    }

    Value
    transfer(std::int32_t block, Value v) const
    {
        const auto &code = cfg.program().code;
        const CfgBlock &b = cfg.block(block);
        for (std::int32_t pc = b.range.begin; pc < b.range.end; ++pc) {
            RegSet defs = instDefs(code[static_cast<std::size_t>(pc)]);
            if (!defs)
                continue;
            for (RegId r = 0; r < kNumRegIds; ++r)
                if (defs & regBit(r))
                    for (std::size_t i = 0; i < words; ++i)
                        v[i] &= ~sitesOfReg[r][i];
            auto it = sitesAtPc.find(pc);
            if (it != sitesAtPc.end())
                for (std::size_t i = 0; i < words; ++i)
                    v[i] |= it->second[i];
        }
        return v;
    }
};

} // namespace

std::vector<DefSite>
ReachingDefsResult::reachingAt(const Cfg &cfg, std::int32_t pc,
                               RegId reg) const
{
    std::int32_t blockId = cfg.blockOf(pc);
    const CfgBlock &b = cfg.block(blockId);
    Bits cur = in[static_cast<std::size_t>(blockId)];
    const auto &code = cfg.program().code;
    // Replay the block prefix up to (not including) pc.
    for (std::int32_t i = b.range.begin; i < pc; ++i) {
        RegSet defs = instDefs(code[static_cast<std::size_t>(i)]);
        if (!defs)
            continue;
        for (std::size_t s = 0; s < sites.size(); ++s) {
            if (defs & regBit(sites[s].reg)) {
                if (sites[s].pc == i)
                    setBit(cur, s);
                else
                    cur[s / 64] &= ~(std::uint64_t{1} << (s % 64));
            }
        }
    }
    std::vector<DefSite> result;
    for (std::size_t s = 0; s < sites.size(); ++s)
        if (sites[s].reg == reg && getBit(cur, s))
            result.push_back(sites[s]);
    return result;
}

ReachingDefsResult
computeReachingDefs(const Cfg &cfg,
                    const std::vector<std::int32_t> &blocks)
{
    ReachingDefsResult res;
    const auto &code = cfg.program().code;

    // Enumerate definition sites: one entry pseudo-def per register,
    // then every (instruction, defined register) pair in the routine.
    for (RegId r = 0; r < kNumRegIds; ++r)
        res.sites.push_back({-1, r});
    for (std::int32_t b : blocks) {
        const CfgBlock &blk = cfg.block(b);
        for (std::int32_t pc = blk.range.begin; pc < blk.range.end;
             ++pc) {
            RegSet defs = instDefs(code[static_cast<std::size_t>(pc)]);
            for (RegId r = 0; r < kNumRegIds; ++r)
                if (defs & regBit(r))
                    res.sites.push_back({pc, r});
        }
    }

    const std::size_t nSites = res.sites.size();
    const std::size_t words = (nSites + 63) / 64;
    std::array<Bits, kNumRegIds> sitesOfReg;
    for (auto &b : sitesOfReg)
        b.assign(words, 0);
    std::unordered_map<std::int32_t, Bits> sitesAtPc;
    Bits entryValue(words, 0);
    for (std::size_t s = 0; s < nSites; ++s) {
        sitesOfReg[res.sites[s].reg][s / 64] |= std::uint64_t{1}
                                                << (s % 64);
        if (res.sites[s].pc < 0) {
            setBit(entryValue, s);
        } else {
            auto it =
                sitesAtPc.try_emplace(res.sites[s].pc, Bits(words, 0))
                    .first;
            setBit(it->second, s);
        }
    }

    ReachingDomain dom{cfg,       res.sites, words,
                       sitesOfReg, sitesAtPc, std::move(entryValue)};
    auto sol = solveDataflow(cfg, Direction::Forward, dom, blocks);
    res.in = std::move(sol.in);
    res.out = std::move(sol.out);
    return res;
}

} // namespace mts
