/**
 * @file
 * Translation validation for the grouping pass.
 *
 * Instead of trusting applyGroupingPass, the validator independently
 * re-derives the per-block dependence graph of the *source* program
 * under the paper's pessimistic alias rule (footnote 1) and checks that
 * the transformed program is exactly a legal output:
 *
 *  - same basic-block structure, blocks corresponding by position;
 *  - each block a permutation of the source block plus inserted
 *    `cswitch` instructions only (nothing dropped, duplicated or
 *    rewritten);
 *  - every dependence edge of the source block preserved by the
 *    permutation;
 *  - every in-flight switch-causing access committed by a `cswitch`
 *    before its result is read and before the block ends;
 *  - entry point, branch targets, labels and label symbols remapped
 *    consistently; data-segment sizes untouched.
 *
 * Findings are reported against *transformed*-program coordinates where
 * an offending instruction exists there, under checker id
 * "translation".
 */
#ifndef MTS_ANALYSIS_VERIFY_GROUPING_HPP
#define MTS_ANALYSIS_VERIFY_GROUPING_HPP

#include "analysis/diagnostics.hpp"
#include "asm/program.hpp"

namespace mts
{

/**
 * Validate that @p xform is a dependence-preserving grouping of
 * @p orig (see file comment). Appends findings to @p report; returns
 * true when no error-severity finding was added.
 */
bool verifyGroupingPass(const Program &orig, const Program &xform,
                        LintReport &report);

} // namespace mts

#endif // MTS_ANALYSIS_VERIFY_GROUPING_HPP
