/**
 * @file
 * Thread-id-affine address resolution.
 *
 * Every memory operand in MTS code is built from `la` (a link-time
 * constant), the architectural thread id in a0, and a short chain of
 * adds/shifts/multiplies. A forward dataflow over the abstract value
 *
 *     k + c * tid        (k, c compile-time constants)
 *
 * therefore resolves most shared accesses to a symbol plus a per-thread
 * stride — exactly the information the race checker needs to prove
 * "disjoint per-thread slice" and the spin/lock checker needs to name
 * the word a diagnostic is about.
 *
 * The lattice per register is Bot < {Exact, Approx} < Top. Exact means
 * the value is k + c*tid on every path; Approx keeps the symbol
 * attribution (k is a lower bound within one symbol, e.g. a stencil
 * pointer that moves by a loop-variant amount) but gives up the offset;
 * Top is unresolved. Calls clobber everything — summaries are not
 * needed because sync-routine internals are exempted by the race
 * checker and user code in this ISA rarely computes addresses across
 * calls.
 */
#ifndef MTS_ANALYSIS_ADDR_RESOLVE_HPP
#define MTS_ANALYSIS_ADDR_RESOLVE_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"

namespace mts
{

/** Abstract register value: k + c * tid. */
struct AffineVal
{
    enum class Kind : std::uint8_t
    {
        Bot,    ///< unreachable / no information yet (meet identity)
        Exact,  ///< exactly base + tid * globalThreadId on every path
        Approx, ///< base locates the value (symbol attribution holds),
                ///< offset within the symbol is path-dependent
        Top     ///< unresolved
    };

    Kind kind = Kind::Top;
    std::int64_t base = 0;  ///< constant part (absolute for addresses)
    std::int64_t tid = 0;   ///< coefficient of the global thread id

    bool operator==(const AffineVal &) const = default;

    static AffineVal bot() { return {Kind::Bot, 0, 0}; }
    static AffineVal top() { return {Kind::Top, 0, 0}; }

    static AffineVal
    exact(std::int64_t base, std::int64_t tid = 0)
    {
        return {Kind::Exact, base, tid};
    }

    static AffineVal
    approx(std::int64_t base, std::int64_t tid = 0)
    {
        return {Kind::Approx, base, tid};
    }

    /** Exact or Approx: the base locates the value. */
    bool
    resolved() const
    {
        return kind == Kind::Exact || kind == Kind::Approx;
    }

    /** Exact with no tid component: a plain compile-time constant. */
    bool
    isConst() const
    {
        return kind == Kind::Exact && tid == 0;
    }
};

/** Lattice meet (path join). Differing resolved values degrade to
 *  Approx over the smaller base so symbol attribution survives loops
 *  whose address moves monotonically within one region. */
AffineVal meetAffine(const AffineVal &a, const AffineVal &b);

/**
 * Per-instruction affine register states for a whole program, solved
 * once per routine (blocks reachable from several routine entries keep
 * the meet of all their contexts). Query with the pc of interest.
 */
class AddrResolver
{
  public:
    /** Integer register states at one pc (before the instruction). */
    using Regs = std::array<AffineVal, 32>;

    explicit AddrResolver(const Cfg &cfg);

    const Cfg &cfg() const { return cfg_; }

    /** Value of integer register @p r just before @p pc executes. */
    const AffineVal &valueAt(std::int32_t pc, std::uint8_t r) const;

    /** Effective address (rs1 + imm) of the memory access at @p pc.
     *  Top for non-memory instructions. */
    AffineVal memAddr(std::int32_t pc) const;

    /** Human form: "gp_lk+0", "gp_priv+8*tid+1", "gp_u+?" (Approx),
     *  "local+12", or "?" when unresolved. */
    std::string describe(const AffineVal &v) const;

    /** describe(memAddr(pc)). */
    std::string describeMemAddr(std::int32_t pc) const;

  private:
    const Cfg &cfg_;
    std::vector<Regs> atPc_;
};

/** "name+off" for the data symbol covering @p addr ("" if none). Looks
 *  at Shared symbols for shared addresses and Local ones otherwise. */
std::string symbolizeAddr(const Program &prog, Addr addr);

} // namespace mts

#endif // MTS_ANALYSIS_ADDR_RESOLVE_HPP
