/**
 * @file
 * Register liveness over both banks: the classic backward may-analysis
 * instantiated on the generic dataflow engine.
 */
#ifndef MTS_ANALYSIS_LIVENESS_HPP
#define MTS_ANALYSIS_LIVENESS_HPP

#include <cstdint>
#include <vector>

#include "analysis/dataflow.hpp"

namespace mts
{

/** Per-block liveness solution for one routine. */
struct LivenessResult
{
    /** Registers live on entry / exit of each block (block-id indexed;
     *  blocks outside the routine hold 0). */
    std::vector<RegSet> liveIn;
    std::vector<RegSet> liveOut;

    /** Registers live immediately before instruction @p pc. */
    RegSet liveBefore(const Cfg &cfg, std::int32_t pc) const;
};

/**
 * Solve liveness for the routine @p blocks (Cfg::routineBlocks order).
 *
 * @param exitLive Registers considered live at routine exits: pass
 *        ~RegSet{0} for `jr` routines (the caller may read anything) or
 *        0 when the routine ends the thread (`halt`).
 */
LivenessResult computeLiveness(const Cfg &cfg,
                               const std::vector<std::int32_t> &blocks,
                               RegSet exitLive);

} // namespace mts

#endif // MTS_ANALYSIS_LIVENESS_HPP
