/**
 * @file
 * Interprocedural routine summaries over the priority lattice.
 *
 * The spin-lock checker introduced the Pri lattice to prove `setpri`
 * pairing; the data-race checkers reuse the same fixpoint to *recognize*
 * synchronization routines structurally instead of by name:
 *
 *  - a routine whose net effect is Pri::High raises priority and is
 *    treated as a lock-acquire (the prelude ticket lock enters its
 *    critical region with `setpri 1`);
 *  - a routine whose net effect is Pri::Low is a lock-release;
 *  - a priority-neutral routine that fetch-and-adds an arrival word and
 *    spins (`lds.spin` on a CFG cycle) is barrier-like: it separates
 *    execution phases without protecting anything.
 *
 * Any future lock added to the prelude (MCS, Anderson) that follows the
 * same setpri discipline is recognized without touching this code.
 */
#ifndef MTS_ANALYSIS_ROUTINE_SUMMARY_HPP
#define MTS_ANALYSIS_ROUTINE_SUMMARY_HPP

#include <cstdint>
#include <map>
#include <set>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"

namespace mts
{

/**
 * Abstract thread priority: Bot = unreachable, Entry = whatever it was
 * at routine entry (symbolic), Low/High = setpri 0/1, Top = differs by
 * path. The same values serve as routine summaries (Entry = identity,
 * Low/High = sets-to, Top = unknown, Bot = never returns).
 */
enum class Pri : std::uint8_t
{
    Bot,
    Entry,
    Low,
    High,
    Top
};

Pri meetPri(Pri a, Pri b);

/** Value after a call given the callee summary. */
Pri applySummary(Pri summary, Pri v);

/** Dataflow domain for the priority lattice (forward). */
struct PriDomain
{
    using Value = Pri;

    const Cfg &cfg;
    const std::map<std::int32_t, Pri> &summaries;  ///< entry block -> effect
    Pri entryValue;

    Value boundary() const { return entryValue; }
    Value top() const { return Pri::Bot; }

    void
    meetInto(Value &into, const Value &from) const
    {
        into = meetPri(into, from);
    }

    Pri stepInst(const Instruction &inst, Pri v) const;
    Value transfer(std::int32_t block, Value v) const;
};

/**
 * Per-routine priority summaries (entry block -> net effect), solved to
 * fixpoint across mutually-calling routines.
 */
std::map<std::int32_t, Pri> computePrioritySummaries(const Cfg &cfg);

/** Classification of every routine derived from the summaries. */
struct SyncRoutines
{
    std::set<std::int32_t> acquires;  ///< summary High: lock acquire
    std::set<std::int32_t> releases;  ///< summary Low: lock release
    std::set<std::int32_t> barriers;  ///< neutral + faa + spin cycle

    bool
    isSync(std::int32_t entry) const
    {
        return acquires.count(entry) || releases.count(entry) ||
               barriers.count(entry);
    }
};

/**
 * Classify routines as lock-acquire / lock-release / barrier-like from
 * @p summaries plus the structural faa+spin test described above.
 */
SyncRoutines classifySyncRoutines(
    const Cfg &cfg, const std::map<std::int32_t, Pri> &summaries);

} // namespace mts

#endif // MTS_ANALYSIS_ROUTINE_SUMMARY_HPP
