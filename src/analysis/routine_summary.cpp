#include "analysis/routine_summary.hpp"

namespace mts
{

Pri
meetPri(Pri a, Pri b)
{
    if (a == Pri::Bot)
        return b;
    if (b == Pri::Bot)
        return a;
    return a == b ? a : Pri::Top;
}

Pri
applySummary(Pri summary, Pri v)
{
    switch (summary) {
      case Pri::Bot:
        return Pri::Bot;  // callee never returns
      case Pri::Entry:
        return v;  // callee leaves priority alone
      case Pri::Low:
      case Pri::High:
        return summary;
      case Pri::Top:
        return Pri::Top;
    }
    return Pri::Top;
}

Pri
PriDomain::stepInst(const Instruction &inst, Pri v) const
{
    if (v == Pri::Bot)
        return v;
    if (inst.op == Opcode::SETPRI)
        return inst.imm == 0 ? Pri::Low
               : inst.imm == 1 ? Pri::High
                               : Pri::Top;
    if (inst.op == Opcode::JAL && inst.target >= 0) {
        auto it = summaries.find(cfg.blockOf(inst.target));
        return applySummary(
            it == summaries.end() ? Pri::Top : it->second, v);
    }
    return v;
}

Pri
PriDomain::transfer(std::int32_t block, Pri v) const
{
    const auto &code = cfg.program().code;
    const CfgBlock &b = cfg.block(block);
    for (std::int32_t pc = b.range.begin; pc < b.range.end; ++pc)
        v = stepInst(code[static_cast<std::size_t>(pc)], v);
    return v;
}

namespace
{

/** Summary of one routine under the current summary map: the meet of
 *  the out-values of its `jr`-terminated blocks with symbolic entry. */
Pri
routineSummary(const Cfg &cfg, std::int32_t entry,
               const std::map<std::int32_t, Pri> &summaries)
{
    auto blocks = cfg.routineBlocks(entry);
    PriDomain dom{cfg, summaries, Pri::Entry};
    auto sol = solveDataflow(cfg, Direction::Forward, dom, blocks);
    Pri out = Pri::Bot;
    const auto &code = cfg.program().code;
    for (std::int32_t b : blocks) {
        const CfgBlock &blk = cfg.block(b);
        if (blk.size() > 0 &&
            code[static_cast<std::size_t>(blk.range.end - 1)].op ==
                Opcode::JR)
            out = meetPri(out, sol.out[static_cast<std::size_t>(b)]);
    }
    return out;
}

} // namespace

std::map<std::int32_t, Pri>
computePrioritySummaries(const Cfg &cfg)
{
    std::map<std::int32_t, Pri> summaries;
    for (std::int32_t entry : cfg.routineEntries())
        summaries[entry] = Pri::Bot;
    for (int iter = 0; iter < 3 * static_cast<int>(summaries.size()) + 3;
         ++iter) {
        bool changed = false;
        for (auto &[entry, current] : summaries) {
            Pri next = routineSummary(cfg, entry, summaries);
            if (next != current) {
                current = next;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return summaries;
}

SyncRoutines
classifySyncRoutines(const Cfg &cfg,
                     const std::map<std::int32_t, Pri> &summaries)
{
    SyncRoutines sync;
    const auto &code = cfg.program().code;
    for (const auto &[entry, summary] : summaries) {
        if (summary == Pri::High) {
            sync.acquires.insert(entry);
            continue;
        }
        if (summary == Pri::Low) {
            sync.releases.insert(entry);
            continue;
        }
        if (summary != Pri::Entry)
            continue;
        // Barrier-like: priority-neutral, fetch-and-adds an arrival
        // word and spins until released.
        bool hasFaa = false, hasSpinLoop = false;
        for (std::int32_t b : cfg.routineBlocks(entry)) {
            const CfgBlock &blk = cfg.block(b);
            for (std::int32_t pc = blk.range.begin; pc < blk.range.end;
                 ++pc) {
                Opcode op = code[static_cast<std::size_t>(pc)].op;
                if (op == Opcode::FAA)
                    hasFaa = true;
                if (op == Opcode::LDS_SPIN && cfg.blockInCycle(b))
                    hasSpinLoop = true;
            }
        }
        // The program entry is a routine too, but thread start is not a
        // barrier even if main happens to faa and spin inline.
        if (hasFaa && hasSpinLoop && entry != cfg.entryBlock())
            sync.barriers.insert(entry);
    }
    return sync;
}

} // namespace mts
