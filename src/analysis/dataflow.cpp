#include "analysis/dataflow.hpp"

#include "util/strings.hpp"

namespace mts
{

RegSet
instUses(const Instruction &inst)
{
    Operands ops = getOperands(inst);
    RegSet s = 0;
    for (int i = 0; i < ops.numUses; ++i)
        s |= regBit(ops.uses[i]);
    return s & ~regBit(intReg(kRegZero));  // r0 always reads as 0
}

RegSet
instDefs(const Instruction &inst)
{
    Operands ops = getOperands(inst);  // addDef already drops r0
    RegSet s = 0;
    for (int i = 0; i < ops.numDefs; ++i)
        s |= regBit(ops.defs[i]);
    return s;
}

std::string
regSetNames(RegSet s)
{
    std::string out;
    for (RegId r = 0; r < kNumRegIds; ++r) {
        if (!(s & regBit(r)))
            continue;
        if (!out.empty())
            out += ", ";
        out += format("%c%u", r < 32 ? 'r' : 'f', r < 32 ? r : r - 32);
    }
    return out;
}

} // namespace mts
