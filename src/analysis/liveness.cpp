#include "analysis/liveness.hpp"

namespace mts
{

namespace
{

struct LivenessDomain
{
    using Value = RegSet;

    const Cfg &cfg;
    RegSet exitLive;

    Value boundary() const { return exitLive; }
    Value top() const { return 0; }

    void
    meetInto(Value &into, const Value &from) const
    {
        into |= from;  // may-analysis: union
    }

    Value
    transfer(std::int32_t block, Value liveOut) const
    {
        const auto &code = cfg.program().code;
        const CfgBlock &b = cfg.block(block);
        for (std::int32_t pc = b.range.end - 1; pc >= b.range.begin;
             --pc) {
            const Instruction &inst =
                code[static_cast<std::size_t>(pc)];
            liveOut &= ~instDefs(inst);
            liveOut |= instUses(inst);
        }
        return liveOut;
    }
};

} // namespace

RegSet
LivenessResult::liveBefore(const Cfg &cfg, std::int32_t pc) const
{
    std::int32_t blockId = cfg.blockOf(pc);
    const CfgBlock &b = cfg.block(blockId);
    RegSet live = liveOut[static_cast<std::size_t>(blockId)];
    const auto &code = cfg.program().code;
    for (std::int32_t i = b.range.end - 1; i >= pc; --i) {
        const Instruction &inst = code[static_cast<std::size_t>(i)];
        live &= ~instDefs(inst);
        live |= instUses(inst);
    }
    return live;
}

LivenessResult
computeLiveness(const Cfg &cfg, const std::vector<std::int32_t> &blocks,
                RegSet exitLive)
{
    LivenessDomain dom{cfg, exitLive};
    auto sol = solveDataflow(cfg, Direction::Backward, dom, blocks);
    return {std::move(sol.in), std::move(sol.out)};
}

} // namespace mts
