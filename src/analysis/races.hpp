/**
 * @file
 * Static data-race detection: interprocedural lockset analysis plus
 * shared-region symbolization (Eraser / RacerX style, adapted to the
 * MTS ISA where synchronization is *recognized* structurally rather
 * than declared).
 *
 * Pipeline (see DESIGN.md §13 for the full rules):
 *
 *  1. classifySyncRoutines() finds lock-acquire / lock-release /
 *     barrier routines from the setpri summaries; their bodies are
 *     exempt (they implement synchronization, they don't misuse it).
 *  2. AddrResolver turns every shared access into a symbolic region:
 *     Exact word, per-thread Slice (base + stride*tid), Whole symbol,
 *     or Unknown.
 *  3. A forward interprocedural lockset dataflow (intersection meet)
 *     computes the locks held at each access; lock identity is the
 *     resolved a0 at the acquire call site.
 *  4. May-happen-in-parallel: two accesses can race only if one can
 *     reach the other along a barrier-free CFG path (SPMD threads
 *     drift freely between barriers).
 *  5. Pairwise check: overlapping regions, at least one write, not
 *     both atomic, disjoint locksets, concurrent, not ordered by the
 *     message-passing (store-then-flag / spin-then-load) idiom, and
 *     not provably the same thread (tid guards, same-offset slices).
 *
 * Verdicts: a pair that must collide on a word across distinct threads
 * is an Error; overlap that cannot be excluded is a Warning.
 */
#ifndef MTS_ANALYSIS_RACES_HPP
#define MTS_ANALYSIS_RACES_HPP

#include "analysis/cfg.hpp"
#include "analysis/checkers.hpp"
#include "analysis/diagnostics.hpp"

namespace mts
{

/** Run the data-race checker, appending findings to @p report. */
void checkRaces(const Cfg &cfg, const LintOptions &opts,
                LintReport &report);

} // namespace mts

#endif // MTS_ANALYSIS_RACES_HPP
