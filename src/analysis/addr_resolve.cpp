#include "analysis/addr_resolve.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "analysis/dataflow.hpp"
#include "util/strings.hpp"

namespace mts
{

AffineVal
meetAffine(const AffineVal &a, const AffineVal &b)
{
    using K = AffineVal::Kind;
    if (a.kind == K::Bot)
        return b;
    if (b.kind == K::Bot)
        return a;
    if (a.kind == K::Top || b.kind == K::Top)
        return AffineVal::top();
    if (a.base == b.base && a.tid == b.tid)
        return (a.kind == K::Exact && b.kind == K::Exact)
                   ? a
                   : AffineVal::approx(a.base, a.tid);
    // Paths disagree. Two exact values join to an approximate anchor
    // at the smaller base (a branch join inside one region keeps its
    // symbol); any disagreement involving an already-approximate side
    // widens straight to Top — that shape only arises from
    // loop-carried arithmetic, and without the widening a descending
    // counter would ratchet the anchor down forever.
    if (a.kind == K::Exact && b.kind == K::Exact)
        return AffineVal::approx(std::min(a.base, b.base),
                                 a.tid == b.tid ? a.tid : 0);
    return AffineVal::top();
}

namespace
{

using K = AffineVal::Kind;

/** a + b / a - b (exact iff both exact). */
AffineVal
combine(const AffineVal &a, const AffineVal &b, std::int64_t sign)
{
    if (!a.resolved() || !b.resolved())
        return AffineVal::top();
    AffineVal r;
    r.kind = (a.kind == K::Exact && b.kind == K::Exact) ? K::Exact
                                                        : K::Approx;
    r.base = a.base + sign * b.base;
    r.tid = a.tid + sign * b.tid;
    return r;
}

/** v * c for a compile-time constant c. */
AffineVal
scale(const AffineVal &v, std::int64_t c)
{
    if (c == 0)
        return AffineVal::exact(0);
    if (!v.resolved())
        return AffineVal::top();
    AffineVal r = v;
    r.base *= c;
    r.tid *= c;
    return r;
}

struct AffineRegs
{
    std::array<AffineVal, 32> r;

    bool operator==(const AffineRegs &) const = default;
};

/**
 * Per-routine clobber summaries: the integer registers a call to the
 * routine (entry block id) may redefine — its own defs plus its
 * transitive callees' (unresolvable callees clobber everything). The
 * prelude routines confine themselves to the r26-r28 scratch bank, so
 * without this a single `call __mts_barrier` would erase the thread id
 * every generated program and app keeps in an s-register.
 */
std::unordered_map<std::int32_t, RegSet>
computeClobberSummaries(const Cfg &cfg)
{
    const auto &code = cfg.program().code;
    std::unordered_map<std::int32_t, RegSet> clob;
    std::unordered_map<std::int32_t, std::vector<std::int32_t>> callees;
    for (std::int32_t entry : cfg.routineEntries()) {
        RegSet s = 0;
        for (std::int32_t b : cfg.routineBlocks(entry)) {
            const CfgBlock &blk = cfg.block(b);
            for (std::int32_t pc = blk.range.begin; pc < blk.range.end;
                 ++pc) {
                const Instruction &inst =
                    code[static_cast<std::size_t>(pc)];
                s |= instDefs(inst);
                if (inst.op == Opcode::JAL)
                    callees[entry].push_back(
                        inst.target >= 0 ? cfg.blockOf(inst.target)
                                         : -1);
            }
        }
        clob[entry] = s;
    }
    for (bool changed = true; changed;) {
        changed = false;
        for (auto &[entry, cs] : callees)
            for (std::int32_t c : cs) {
                RegSet add = c < 0 ? ~RegSet{0} : clob[c];
                if ((clob[entry] | add) != clob[entry]) {
                    clob[entry] |= add;
                    changed = true;
                }
            }
    }
    return clob;
}

struct AffineDomain
{
    using Value = AffineRegs;

    const Cfg &cfg;
    const std::unordered_map<std::int32_t, RegSet> &clobbers;
    bool isProgramEntry;  ///< a0 carries the thread id at boundary

    Value
    boundary() const
    {
        Value v;
        v.r.fill(AffineVal::top());
        v.r[kRegZero] = AffineVal::exact(0);
        if (isProgramEntry)
            v.r[kRegArg0] = AffineVal::exact(0, 1);  // a0 = tid
        return v;
    }

    Value
    top() const
    {
        Value v;
        v.r.fill(AffineVal::bot());
        return v;
    }

    void
    meetInto(Value &into, const Value &from) const
    {
        for (std::size_t i = 0; i < into.r.size(); ++i)
            into.r[i] = meetAffine(into.r[i], from.r[i]);
    }

    void
    stepInst(const Instruction &inst, Value &v) const
    {
        auto def = [&](const AffineVal &val) {
            if (inst.rd != kRegZero)
                v.r[inst.rd] = val;
        };
        auto rs1 = [&]() { return v.r[inst.rs1]; };
        auto rs2v = [&]() {
            return inst.useImm ? AffineVal::exact(inst.imm)
                               : v.r[inst.rs2];
        };

        switch (inst.op) {
          case Opcode::LI:
            def(AffineVal::exact(inst.imm));
            return;
          case Opcode::ADD:
            def(combine(rs1(), rs2v(), +1));
            return;
          case Opcode::SUB:
            def(combine(rs1(), rs2v(), -1));
            return;
          case Opcode::MUL: {
            AffineVal a = rs1(), b = rs2v();
            if (b.isConst())
                def(scale(a, b.base));
            else if (a.isConst())
                def(scale(b, a.base));
            else
                def(AffineVal::top());
            return;
          }
          case Opcode::SLL: {
            AffineVal b = rs2v();
            if (b.isConst() && b.base >= 0 && b.base < 62)
                def(scale(rs1(), std::int64_t{1} << b.base));
            else
                def(AffineVal::top());
            return;
          }
          case Opcode::OR:
          case Opcode::XOR: {
            // Only the or/xor-with-zero identity is affine.
            AffineVal a = rs1(), b = rs2v();
            if (a.isConst() && a.base == 0)
                def(b);
            else if (b.isConst() && b.base == 0)
                def(a);
            else
                def(AffineVal::top());
            return;
          }
          case Opcode::JAL: {
            // Calls clobber what the callee (transitively) defines;
            // an unresolvable target clobbers everything.
            RegSet defs = ~RegSet{0};
            if (inst.target >= 0) {
                auto it = clobbers.find(cfg.blockOf(inst.target));
                if (it != clobbers.end())
                    defs = it->second;
            }
            defs = (defs | regBit(kRegRa)) & kIntRegMask;
            for (RegId i = 1; i < 32; ++i)
                if (defs & regBit(i))
                    v.r[i] = AffineVal::top();
            return;
          }
          default:
            break;
        }
        // Everything else (loads, faa, compares, div/rem, fp moves...)
        // just clobbers its integer definitions.
        RegSet defs = instDefs(inst) & kIntRegMask;
        for (RegId i = 1; i < 32; ++i)
            if (defs & regBit(i))
                v.r[i] = AffineVal::top();
    }

    Value
    transfer(std::int32_t block, Value v) const
    {
        const auto &code = cfg.program().code;
        const CfgBlock &b = cfg.block(block);
        for (std::int32_t pc = b.range.begin; pc < b.range.end; ++pc)
            stepInst(code[static_cast<std::size_t>(pc)], v);
        return v;
    }
};

} // namespace

AddrResolver::AddrResolver(const Cfg &cfg)
    : cfg_(cfg), atPc_(cfg.program().code.size())
{
    for (Regs &st : atPc_)
        st.fill(AffineVal::bot());

    const auto &code = cfg.program().code;
    const auto clobbers = computeClobberSummaries(cfg);
    for (std::int32_t entry : cfg.routineEntries()) {
        auto blocks = cfg.routineBlocks(entry);
        AffineDomain dom{cfg, clobbers, entry == cfg.entryBlock()};
        auto sol = solveDataflow(cfg, Direction::Forward, dom, blocks);
        for (std::int32_t b : blocks) {
            AffineRegs v = sol.in[static_cast<std::size_t>(b)];
            const CfgBlock &blk = cfg.block(b);
            for (std::int32_t pc = blk.range.begin; pc < blk.range.end;
                 ++pc) {
                Regs &slot = atPc_[static_cast<std::size_t>(pc)];
                for (std::size_t i = 0; i < slot.size(); ++i)
                    slot[i] = meetAffine(slot[i], v.r[i]);
                dom.stepInst(code[static_cast<std::size_t>(pc)], v);
            }
        }
    }
}

const AffineVal &
AddrResolver::valueAt(std::int32_t pc, std::uint8_t r) const
{
    static const AffineVal kTop = AffineVal::top();
    if (pc < 0 || static_cast<std::size_t>(pc) >= atPc_.size() || r >= 32)
        return kTop;
    return atPc_[static_cast<std::size_t>(pc)][r];
}

AffineVal
AddrResolver::memAddr(std::int32_t pc) const
{
    if (pc < 0 || static_cast<std::size_t>(pc) >= atPc_.size())
        return AffineVal::top();
    const Instruction &inst =
        cfg_.program().code[static_cast<std::size_t>(pc)];
    if (!isSharedMem(inst.op) && inst.op != Opcode::LDL &&
        inst.op != Opcode::STL && inst.op != Opcode::FLDL &&
        inst.op != Opcode::FSTL)
        return AffineVal::top();
    AffineVal base = valueAt(pc, inst.rs1);
    if (!base.resolved())
        return AffineVal::top();
    AffineVal r = base;
    r.base += inst.imm;
    return r;
}

std::string
symbolizeAddr(const Program &prog, Addr addr)
{
    SymbolKind want =
        isSharedAddr(addr) ? SymbolKind::Shared : SymbolKind::Local;
    for (const auto &[name, sym] : prog.symbols) {
        if (sym.kind != want)
            continue;
        Addr base = static_cast<Addr>(sym.value);
        if (addr >= base && addr < base + (sym.size ? sym.size : 1))
            return format("%s+%llu", name.c_str(),
                          static_cast<unsigned long long>(addr - base));
    }
    return "";
}

std::string
AddrResolver::describe(const AffineVal &v) const
{
    if (!v.resolved())
        return "?";
    const Program &prog = cfg_.program();
    Addr base = static_cast<Addr>(v.base);

    std::string sym;
    SymbolKind want =
        isSharedAddr(base) ? SymbolKind::Shared : SymbolKind::Local;
    std::int64_t off = 0;
    for (const auto &[name, s] : prog.symbols) {
        if (s.kind != want)
            continue;
        Addr sb = static_cast<Addr>(s.value);
        if (base >= sb && base < sb + (s.size ? s.size : 1)) {
            sym = name;
            off = static_cast<std::int64_t>(base - sb);
            break;
        }
    }
    if (sym.empty()) {
        if (v.base >= 0 && !isSharedAddr(base))
            sym = "local", off = v.base;
        else if (isSharedAddr(base))
            sym = "shared",
            off = static_cast<std::int64_t>(base - kSharedBase);
        else
            return "?";
    }

    if (v.kind == AffineVal::Kind::Approx)
        return format("%s+?", sym.c_str());
    if (v.tid != 0) {
        if (off != 0)
            return format("%s+%lld*tid%+lld", sym.c_str(),
                          (long long)v.tid, (long long)off);
        return format("%s+%lld*tid", sym.c_str(), (long long)v.tid);
    }
    return format("%s+%lld", sym.c_str(), (long long)off);
}

std::string
AddrResolver::describeMemAddr(std::int32_t pc) const
{
    return describe(memAddr(pc));
}

} // namespace mts
