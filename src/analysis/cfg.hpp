/**
 * @file
 * Control-flow graph over an assembled Program.
 *
 * Layered on findBasicBlocks: every basic block becomes a node with
 * explicit successor/predecessor edges. Edge kinds distinguish
 * fallthrough, conditional-branch targets, unconditional jumps and
 * `jal` call edges; `jr` and `halt` terminate a block with no
 * intraprocedural successors (a `jr` is a routine return, a `halt` ends
 * the thread).
 *
 * Two views of the graph coexist:
 *  - the *intraprocedural* view ignores Call edges and treats a
 *    terminating `jal` as falling through to the next block (the callee
 *    is summarized by the analysis using the graph); this is the view
 *    the dataflow engine and the checkers run on, partitioned into
 *    routines (program entry + every `jal` target + labelled blocks not
 *    otherwise reachable, so uncalled runtime routines still get
 *    analyzed);
 *  - the raw edge lists (Call edges included) for whole-program
 *    reachability and call-graph construction.
 */
#ifndef MTS_ANALYSIS_CFG_HPP
#define MTS_ANALYSIS_CFG_HPP

#include <cstdint>
#include <vector>

#include "asm/program.hpp"
#include "opt/basic_blocks.hpp"

namespace mts
{

/** How control reaches the edge's destination block. */
enum class EdgeKind : std::uint8_t
{
    Fallthrough,  ///< next block in layout order (incl. after a `jal`)
    Branch,       ///< taken conditional branch
    Jump,         ///< unconditional `j`
    Call,         ///< `jal` target (interprocedural)
};

/** One CFG edge; @p to / @p from is a block id. */
struct CfgEdge
{
    std::int32_t block;
    EdgeKind kind;
};

/** One basic block with explicit edges. */
struct CfgBlock
{
    std::int32_t id = 0;
    BlockRange range{0, 0};
    std::vector<CfgEdge> succs;
    std::vector<CfgEdge> preds;

    std::int32_t
    size() const
    {
        return range.end - range.begin;
    }
};

/** Control-flow graph of one Program (see file comment). */
class Cfg
{
  public:
    explicit Cfg(const Program &program);

    const Program &program() const { return *prog; }
    const std::vector<CfgBlock> &blocks() const { return blocks_; }

    const CfgBlock &
    block(std::int32_t id) const
    {
        return blocks_[static_cast<std::size_t>(id)];
    }

    std::int32_t
    numBlocks() const
    {
        return static_cast<std::int32_t>(blocks_.size());
    }

    /** Block containing instruction @p inst (-1 for empty programs). */
    std::int32_t blockOf(std::int32_t inst) const;

    /** Block containing the program entry point (-1 when empty). */
    std::int32_t entryBlock() const;

    /**
     * Routine entry blocks: the program entry, every `jal` target, and
     * (iteratively) any labelled block not reachable from the entries
     * found so far — so uncalled library routines are still covered.
     */
    const std::vector<std::int32_t> &routineEntries() const
    {
        return routineEntries_;
    }

    /**
     * Blocks of the routine rooted at @p entry, in reverse post-order
     * over intraprocedural edges (Call edges skipped, `jal` falls
     * through). Routines that share tail blocks overlap.
     */
    std::vector<std::int32_t> routineBlocks(std::int32_t entry) const;

    /** True if @p block lies on an intraprocedural cycle. */
    bool
    blockInCycle(std::int32_t block) const
    {
        return inCycle_[static_cast<std::size_t>(block)];
    }

    /** Strongly-connected-component id of @p block (intraprocedural
     *  edges; ids are arbitrary but stable per Cfg). */
    std::int32_t
    sccOf(std::int32_t block) const
    {
        return sccOf_[static_cast<std::size_t>(block)];
    }

    /** Call targets (block ids) of `jal` instructions, deduplicated. */
    const std::vector<std::int32_t> &callTargets() const
    {
        return callTargets_;
    }

  private:
    void buildEdges();
    void computeCycles();
    void computeRoutineEntries();

    const Program *prog;
    std::vector<CfgBlock> blocks_;
    std::vector<std::int32_t> blockOf_;  ///< inst index -> block id
    std::vector<std::int32_t> routineEntries_;
    std::vector<std::int32_t> callTargets_;
    std::vector<std::int32_t> sccOf_;
    std::vector<bool> inCycle_;
};

} // namespace mts

#endif // MTS_ANALYSIS_CFG_HPP
