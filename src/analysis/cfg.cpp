#include "analysis/cfg.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mts
{

namespace
{

/** Successor edges excluding Call (the intraprocedural view). */
bool
isIntraEdge(const CfgEdge &e)
{
    return e.kind != EdgeKind::Call;
}

} // namespace

Cfg::Cfg(const Program &program) : prog(&program)
{
    auto ranges = findBasicBlocks(program);
    blocks_.resize(ranges.size());
    blockOf_.assign(program.code.size(), -1);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        blocks_[i].id = static_cast<std::int32_t>(i);
        blocks_[i].range = ranges[i];
        for (std::int32_t pc = ranges[i].begin; pc < ranges[i].end; ++pc)
            blockOf_[static_cast<std::size_t>(pc)] =
                static_cast<std::int32_t>(i);
    }
    buildEdges();
    computeCycles();
    computeRoutineEntries();
}

std::int32_t
Cfg::blockOf(std::int32_t inst) const
{
    MTS_ASSERT(inst >= 0 &&
                   static_cast<std::size_t>(inst) < blockOf_.size(),
               "blockOf: instruction " << inst << " out of range");
    return blockOf_[static_cast<std::size_t>(inst)];
}

std::int32_t
Cfg::entryBlock() const
{
    if (blocks_.empty())
        return -1;
    return blockOf(prog->entry);
}

void
Cfg::buildEdges()
{
    const auto &code = prog->code;
    for (CfgBlock &b : blocks_) {
        auto addEdge = [&](std::int32_t to, EdgeKind kind) {
            b.succs.push_back({to, kind});
        };
        const bool hasNext = b.id + 1 < numBlocks();
        if (b.size() == 0) {
            if (hasNext)
                addEdge(b.id + 1, EdgeKind::Fallthrough);
            continue;
        }
        const Instruction &last =
            code[static_cast<std::size_t>(b.range.end - 1)];
        switch (last.op) {
          case Opcode::HALT:
          case Opcode::JR:
            break;  // thread end / routine return: no successors
          case Opcode::J:
            if (last.target >= 0)
                addEdge(blockOf(last.target), EdgeKind::Jump);
            break;
          case Opcode::JAL:
            if (last.target >= 0) {
                addEdge(blockOf(last.target), EdgeKind::Call);
                callTargets_.push_back(blockOf(last.target));
            }
            if (hasNext)
                addEdge(b.id + 1, EdgeKind::Fallthrough);
            break;
          default:
            if (isBranch(last.op) && last.target >= 0)
                addEdge(blockOf(last.target), EdgeKind::Branch);
            if (hasNext)
                addEdge(b.id + 1, EdgeKind::Fallthrough);
            break;
        }
    }
    // A jal that is *not* a block terminator cannot occur (jal is a
    // control instruction, so findBasicBlocks ends the block after it),
    // but mid-block call targets are still collected above.
    std::sort(callTargets_.begin(), callTargets_.end());
    callTargets_.erase(
        std::unique(callTargets_.begin(), callTargets_.end()),
        callTargets_.end());
    for (const CfgBlock &b : blocks_)
        for (const CfgEdge &e : b.succs)
            blocks_[static_cast<std::size_t>(e.block)].preds.push_back(
                {b.id, e.kind});
}

void
Cfg::computeCycles()
{
    // Iterative Tarjan SCC over intraprocedural edges; a block is "in a
    // cycle" when its SCC has more than one member or it has a self
    // edge (one-block spin loops).
    const std::int32_t n = numBlocks();
    inCycle_.assign(static_cast<std::size_t>(n), false);
    sccOf_.assign(static_cast<std::size_t>(n), -1);
    std::int32_t sccCounter = 0;
    std::vector<std::int32_t> index(static_cast<std::size_t>(n), -1);
    std::vector<std::int32_t> low(static_cast<std::size_t>(n), 0);
    std::vector<bool> onStack(static_cast<std::size_t>(n), false);
    std::vector<std::int32_t> stack;
    std::int32_t counter = 0;

    struct Frame
    {
        std::int32_t block;
        std::size_t edge;
    };
    for (std::int32_t root = 0; root < n; ++root) {
        if (index[static_cast<std::size_t>(root)] != -1)
            continue;
        std::vector<Frame> frames{{root, 0}};
        index[static_cast<std::size_t>(root)] =
            low[static_cast<std::size_t>(root)] = counter++;
        stack.push_back(root);
        onStack[static_cast<std::size_t>(root)] = true;
        while (!frames.empty()) {
            Frame &f = frames.back();
            const auto &succs =
                blocks_[static_cast<std::size_t>(f.block)].succs;
            if (f.edge < succs.size()) {
                const CfgEdge &e = succs[f.edge++];
                if (!isIntraEdge(e))
                    continue;
                std::int32_t w = e.block;
                if (index[static_cast<std::size_t>(w)] == -1) {
                    index[static_cast<std::size_t>(w)] =
                        low[static_cast<std::size_t>(w)] = counter++;
                    stack.push_back(w);
                    onStack[static_cast<std::size_t>(w)] = true;
                    frames.push_back({w, 0});
                } else if (onStack[static_cast<std::size_t>(w)]) {
                    low[static_cast<std::size_t>(f.block)] =
                        std::min(low[static_cast<std::size_t>(f.block)],
                                 index[static_cast<std::size_t>(w)]);
                }
            } else {
                std::int32_t v = f.block;
                frames.pop_back();
                if (!frames.empty()) {
                    std::int32_t parent = frames.back().block;
                    low[static_cast<std::size_t>(parent)] = std::min(
                        low[static_cast<std::size_t>(parent)],
                        low[static_cast<std::size_t>(v)]);
                }
                if (low[static_cast<std::size_t>(v)] ==
                    index[static_cast<std::size_t>(v)]) {
                    std::vector<std::int32_t> scc;
                    const std::int32_t sccId = sccCounter++;
                    while (true) {
                        std::int32_t w = stack.back();
                        stack.pop_back();
                        onStack[static_cast<std::size_t>(w)] = false;
                        sccOf_[static_cast<std::size_t>(w)] = sccId;
                        scc.push_back(w);
                        if (w == v)
                            break;
                    }
                    bool cyclic = scc.size() > 1;
                    if (!cyclic)
                        for (const CfgEdge &e :
                             blocks_[static_cast<std::size_t>(v)].succs)
                            if (isIntraEdge(e) && e.block == v)
                                cyclic = true;
                    if (cyclic)
                        for (std::int32_t w : scc)
                            inCycle_[static_cast<std::size_t>(w)] = true;
                }
            }
        }
    }
}

void
Cfg::computeRoutineEntries()
{
    if (blocks_.empty())
        return;
    routineEntries_.push_back(entryBlock());
    for (std::int32_t t : callTargets_)
        if (t != entryBlock())
            routineEntries_.push_back(t);

    // Iteratively promote labelled-but-unreachable blocks to entries so
    // uncalled library routines (e.g. an unused prelude lock) still get
    // analyzed.
    std::vector<bool> reached(blocks_.size(), false);
    auto bfs = [&](std::int32_t from) {
        std::vector<std::int32_t> work{from};
        reached[static_cast<std::size_t>(from)] = true;
        while (!work.empty()) {
            std::int32_t v = work.back();
            work.pop_back();
            for (const CfgEdge &e :
                 blocks_[static_cast<std::size_t>(v)].succs) {
                if (!isIntraEdge(e) ||
                    reached[static_cast<std::size_t>(e.block)])
                    continue;
                reached[static_cast<std::size_t>(e.block)] = true;
                work.push_back(e.block);
            }
        }
    };
    for (std::int32_t e : routineEntries_)
        if (!reached[static_cast<std::size_t>(e)])
            bfs(e);
    for (const auto &[index, name] : prog->labelAt) {
        if (index < 0 ||
            static_cast<std::size_t>(index) >= prog->code.size())
            continue;
        std::int32_t b = blockOf(index);
        if (!reached[static_cast<std::size_t>(b)] &&
            block(b).range.begin == index) {
            routineEntries_.push_back(b);
            bfs(b);
        }
    }
}

std::vector<std::int32_t>
Cfg::routineBlocks(std::int32_t entry) const
{
    // Iterative DFS computing post-order, then reverse it.
    std::vector<bool> seen(blocks_.size(), false);
    std::vector<std::int32_t> post;
    struct Frame
    {
        std::int32_t block;
        std::size_t edge;
    };
    std::vector<Frame> frames{{entry, 0}};
    seen[static_cast<std::size_t>(entry)] = true;
    while (!frames.empty()) {
        Frame &f = frames.back();
        const auto &succs = blocks_[static_cast<std::size_t>(f.block)].succs;
        if (f.edge < succs.size()) {
            const CfgEdge &e = succs[f.edge++];
            if (!isIntraEdge(e) || seen[static_cast<std::size_t>(e.block)])
                continue;
            seen[static_cast<std::size_t>(e.block)] = true;
            frames.push_back({e.block, 0});
        } else {
            post.push_back(f.block);
            frames.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

} // namespace mts
