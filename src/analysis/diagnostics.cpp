#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace mts
{

std::string_view
severityName(Severity s)
{
    switch (s) {
      case Severity::Info:
        return "info";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "?";
}

void
LintReport::add(const Program &prog, Severity severity,
                std::string_view checker, std::int32_t pc,
                std::string message)
{
    Diag d;
    d.severity = severity;
    d.checker = std::string(checker);
    d.pc = pc;
    d.message = std::move(message);
    add(prog, std::move(d));
}

void
LintReport::add(const Program &prog, Diag d)
{
    if (d.pc >= 0 && static_cast<std::size_t>(d.pc) < prog.code.size()) {
        if (d.line == 0)
            d.line = prog.code[static_cast<std::size_t>(d.pc)].srcLine;
        if (d.label.empty())
            d.label = prog.positionOf(d.pc);
    }
    if (d.pc2 >= 0 &&
        static_cast<std::size_t>(d.pc2) < prog.code.size()) {
        if (d.line2 == 0)
            d.line2 = prog.code[static_cast<std::size_t>(d.pc2)].srcLine;
        if (d.label2.empty())
            d.label2 = prog.positionOf(d.pc2);
    }
    diags_.push_back(std::move(d));
}

std::size_t
LintReport::count(Severity s) const
{
    std::size_t n = 0;
    for (const Diag &d : diags_)
        if (d.severity == s)
            ++n;
    return n;
}

void
LintReport::sort()
{
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diag &a, const Diag &b) {
                         if (a.pc != b.pc)
                             return a.pc < b.pc;
                         if (a.severity != b.severity)
                             return a.severity > b.severity;
                         return a.checker < b.checker;
                     });
}

std::string
LintReport::renderText(const Program &prog) const
{
    std::ostringstream os;
    for (const Diag &d : diags_) {
        os << severityName(d.severity) << ": [" << d.checker << "] ";
        if (d.pc >= 0) {
            os << d.label << " (pc " << d.pc;
            if (d.line)
                os << ", line " << d.line;
            os << "): ";
        }
        os << d.message << "\n";
        std::string src = prog.sourceLine(d.line);
        if (!src.empty())
            os << "    > " << src << "\n";
        if (d.pc2 >= 0) {
            os << "    note: " << (d.note.empty() ? "see also" : d.note)
               << " at " << d.label2 << " (pc " << d.pc2;
            if (d.line2)
                os << ", line " << d.line2;
            os << ")\n";
            std::string src2 = prog.sourceLine(d.line2);
            if (!src2.empty())
                os << "    > " << src2 << "\n";
        }
    }
    return os.str();
}

JsonValue
LintReport::toJson(const std::string &programName, bool grouped) const
{
    JsonValue doc = JsonValue::object();
    doc["schema"] = kSchema;
    doc["program"] = programName;
    doc["grouped"] = grouped;
    JsonValue counts = JsonValue::object();
    counts["error"] = std::uint64_t(count(Severity::Error));
    counts["warning"] = std::uint64_t(count(Severity::Warning));
    counts["info"] = std::uint64_t(count(Severity::Info));
    doc["counts"] = std::move(counts);
    JsonValue arr = JsonValue::array();
    for (const Diag &d : diags_) {
        JsonValue j = JsonValue::object();
        j["severity"] = std::string(severityName(d.severity));
        j["checker"] = d.checker;
        j["pc"] = d.pc;
        j["line"] = std::uint64_t(d.line);
        j["label"] = d.label;
        j["message"] = d.message;
        if (d.pc2 >= 0) {
            JsonValue rel = JsonValue::object();
            rel["pc"] = d.pc2;
            rel["line"] = std::uint64_t(d.line2);
            rel["label"] = d.label2;
            rel["note"] = d.note;
            j["related"] = std::move(rel);
        }
        arr.push(std::move(j));
    }
    doc["diagnostics"] = std::move(arr);
    return doc;
}

} // namespace mts
