#include "apps/app.hpp"

#include "util/error.hpp"

namespace mts
{

const std::vector<const App *> &
allApps()
{
    static const std::vector<const App *> apps = {
        &sieveApp(),  &blkmatApp(), &sorApp(),  &ugrayApp(),
        &waterApp(),  &locusApp(),  &mp3dApp(),
    };
    return apps;
}

const App &
findApp(const std::string &name)
{
    for (const App *app : allApps())
        if (app->name() == name)
            return *app;
    MTS_FATAL("unknown application '" << name
                                      << "' (try sieve, blkmat, sor, "
                                         "ugray, water, locus, mp3d)");
}

} // namespace mts
