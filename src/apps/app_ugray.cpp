/**
 * @file
 * ugray — ray-casting renderer in the style of Berkeley ugray
 * (paper Table 1: gears scene, 7169 faces, 20x512 image slice,
 * 1353 M cycles).
 *
 * Reproduced behaviours: rays are tested against a shared list of sphere
 * records whose fields are accessed *conditionally* — a cheap bounding
 * test reads (cx, cy) and only surviving candidates read (cz, r²) in a
 * later basic block. This is precisely the cross-basic-block field
 * access pattern the paper blames for ugray's modest intra-block
 * grouping (1.3) and sizable inter-block opportunity (42% estimate-cache
 * hits, grouping 1.9 — Section 5.2). Rows are claimed dynamically; hit
 * results feed an integer checksum combined with fetch-and-add.
 */
#include "apps/app.hpp"

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

struct Sphere
{
    double cx, cy, cz, r2;
};

std::vector<Sphere>
makeScene(std::int64_t count)
{
    Rng rng(0x06a7bea1);
    std::vector<Sphere> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        Sphere s;
        s.cx = rng.nextDouble(-15.0, 15.0);
        s.cy = rng.nextDouble(-15.0, 15.0);
        s.cz = rng.nextDouble(20.0, 40.0);
        double r = rng.nextDouble(1.0, 3.0);
        s.r2 = r * r;
        out.push_back(s);
    }
    return out;
}

const char *const kSource = R"(
.const W, 40                 ; image width
.const H, 96                 ; image height (rows are the work units)
.const NS, 48                ; spheres
.shared spheres, NS*8        ; cx, cy, cz, r^2, 4 pad words (scattered)
.shared row_ctr, 1
.shared checksum, 1
.shared hits, 1
.entry  main

main:
    mv   s0, a0
    mv   s1, a1
    fli  f20, 30.0           ; coarse-test depth
    fli  f21, 400.0          ; coarse bound (Rmax + margin)^2
    fli  f22, 1.0
    fli  f23, 0.0
    fli  f24, 1.0e30         ; +infinity stand-in
    li   s6, 0               ; local checksum
    li   s7, 0               ; local hit count
row_claim:
    li   t0, row_ctr
    li   t1, 1
    faa  s2, 0(t0), t1       ; my row
    li   t2, H
    bge  s2, t2, done
    li   s3, 0               ; px
pixel_loop:
    ; direction: dx = (px - W/2 + 0.5)/W, dy = (py - H/2 + 0.5)/H, dz = 1
    cvtif f10, s3
    li   t0, W
    cvtif f1, t0
    fdiv f2, f22, f1         ; 1/W
    li   t0, W/2
    cvtif f1, t0
    fsub f10, f10, f1
    fli  f1, 0.5
    fadd f10, f10, f1
    fmul f10, f10, f2        ; dx
    cvtif f11, s2
    li   t0, H
    cvtif f1, t0
    fdiv f2, f22, f1
    li   t0, H/2
    cvtif f1, t0
    fsub f11, f11, f1
    fli  f1, 0.5
    fadd f11, f11, f1
    fmul f11, f11, f2        ; dy
    ; len2 = dx*dx + dy*dy + 1
    fmul f12, f10, f10
    fmul f1, f11, f11
    fadd f12, f12, f1
    fadd f12, f12, f22
    fmv  f13, f24            ; best numerator (closest)
    li   s4, 0-1             ; best sphere index
    li   s5, 0               ; j
sphere_loop:
    ; records are scattered: slot = (j*37 + 11) mod NS, stride 8
    mul  t8, s5, 37
    add  t8, t8, 11
    li   t9, NS
    rem  t8, t8, t9
    mul  t8, t8, 8
    li   t9, spheres
    add  t9, t9, t8          ; record pointer
    fldsd f1, 0(t9)          ; cx, cy
    ; coarse bounding test at depth 30: (dx*30-cx)^2+(dy*30-cy)^2 > bound?
    fmul f3, f10, f20
    fsub f3, f3, f1
    fmul f4, f11, f20
    fsub f4, f4, f2
    fmul f3, f3, f3
    fmul f4, f4, f4
    fadd f3, f3, f4
    flt  t0, f21, f3
    bne  t0, r0, sphere_next ; rejected: (cz, r2) never touched
    fldsd f3, 2(t9)          ; cz, r^2   (conditional field access)
    ; b = dx*cx + dy*cy + cz   (dz = 1, origin 0)
    fmul f5, f10, f1
    fmul f6, f11, f2
    fadd f5, f5, f6
    fadd f5, f5, f3
    ; cc = cx^2 + cy^2 + cz^2 - r^2
    fmul f6, f1, f1
    fmul f7, f2, f2
    fadd f6, f6, f7
    fmul f7, f3, f3
    fadd f6, f6, f7
    fsub f6, f6, f4
    ; disc = b^2 - len2*cc
    fmul f7, f5, f5
    fmul f8, f12, f6
    fsub f7, f7, f8
    flt  t0, f7, f23
    bne  t0, r0, sphere_next ; no intersection
    fsqrt f7, f7
    fsub f5, f5, f7          ; t numerator
    fle  t0, f5, f23
    bne  t0, r0, sphere_next ; behind the eye
    flt  t0, f5, f13
    beq  t0, r0, sphere_next
    fmv  f13, f5
    mv   s4, s5              ; new closest sphere
sphere_next:
    add  s5, s5, 1
    li   t0, NS
    blt  s5, t0, sphere_loop
    ; checksum += (best + 7) * (pixelIndex*31 + 11); count hits
    li   t0, W
    mul  t1, s2, t0
    add  t1, t1, s3          ; pixel index
    mul  t1, t1, 31
    add  t1, t1, 11
    add  t2, s4, 7
    mul  t2, t2, t1
    add  s6, s6, t2
    slt  t3, s4, r0          ; 1 if no hit
    xor  t3, t3, 1
    add  s7, s7, t3
    add  s3, s3, 1
    li   t0, W
    blt  s3, t0, pixel_loop
    j    row_claim
done:
    li   t0, checksum
    faa  r0, 0(t0), s6
    li   t0, hits
    faa  r0, 0(t0), s7
    halt
)";

class UgrayApp : public App
{
  public:
    std::string
    name() const override
    {
        return "ugray";
    }

    std::string
    description() const override
    {
        return "ray caster with conditional structure-field accesses and "
               "dynamic row claiming";
    }

    std::string
    source() const override
    {
        return runtimePrelude() + kSource;
    }

    AsmOptions
    options(double scale) const override
    {
        AsmOptions o;
        o.defines["W"] = std::max<std::int64_t>(
            8, static_cast<std::int64_t>(40 * std::sqrt(scale)));
        o.defines["H"] = std::max<std::int64_t>(
            8, static_cast<std::int64_t>(96 * std::sqrt(scale)));
        o.defines["NS"] = 48;
        return o;
    }

    int
    tableProcs() const override
    {
        return 8;
    }

    void
    init(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t ns = prog.constValue("NS");
        SharedMemory &mem = machine.sharedMem();
        Addr base = prog.sharedAddr("spheres");
        auto scene = makeScene(ns);
        for (std::int64_t i = 0; i < ns; ++i) {
            std::int64_t slot = (i * 37 + 11) % ns;  // scattered layout
            mem.writeDouble(base + slot * 8, scene[i].cx);
            mem.writeDouble(base + slot * 8 + 1, scene[i].cy);
            mem.writeDouble(base + slot * 8 + 2, scene[i].cz);
            mem.writeDouble(base + slot * 8 + 3, scene[i].r2);
        }
    }

    AppCheckResult
    check(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t w = prog.constValue("W");
        std::int64_t h = prog.constValue("H");
        std::int64_t ns = prog.constValue("NS");
        auto scene = makeScene(ns);

        std::uint64_t checksum = 0;
        std::uint64_t hits = 0;
        for (std::int64_t py = 0; py < h; ++py) {
            for (std::int64_t px = 0; px < w; ++px) {
                double dx = ((static_cast<double>(px) -
                              static_cast<double>(w / 2)) +
                             0.5) *
                            (1.0 / static_cast<double>(w));
                double dy = ((static_cast<double>(py) -
                              static_cast<double>(h / 2)) +
                             0.5) *
                            (1.0 / static_cast<double>(h));
                double len2 = dx * dx + dy * dy;
                len2 = len2 + 1.0;
                double best = 1.0e30;
                std::int64_t bestIdx = -1;
                for (std::int64_t j = 0; j < ns; ++j) {
                    const Sphere &s = scene[j];
                    double ex = dx * 30.0 - s.cx;
                    double ey = dy * 30.0 - s.cy;
                    double m = ex * ex;
                    m = m + ey * ey;
                    if (400.0 < m)
                        continue;
                    double b = dx * s.cx;
                    b = b + dy * s.cy;
                    b = b + s.cz;
                    double cc = s.cx * s.cx;
                    cc = cc + s.cy * s.cy;
                    cc = cc + s.cz * s.cz;
                    cc = cc - s.r2;
                    double disc = b * b - len2 * cc;
                    if (disc < 0.0)
                        continue;
                    double tnum = b - std::sqrt(disc);
                    if (tnum <= 0.0)
                        continue;
                    if (tnum < best) {
                        best = tnum;
                        bestIdx = j;
                    }
                }
                std::uint64_t pix = static_cast<std::uint64_t>(
                    py * w + px);
                checksum += static_cast<std::uint64_t>(bestIdx + 7) *
                            (pix * 31 + 11);
                if (bestIdx >= 0)
                    ++hits;
            }
        }

        SharedMemory &mem = machine.sharedMem();
        std::uint64_t gotSum =
            mem.read(machine.program().sharedAddr("checksum"));
        std::uint64_t gotHits =
            mem.read(machine.program().sharedAddr("hits"));
        if (gotHits != hits)
            return {false, format("ugray: hits %llu != %llu",
                                  (unsigned long long)gotHits,
                                  (unsigned long long)hits)};
        if (gotSum != checksum)
            return {false, "ugray: checksum mismatch"};
        return {true, ""};
    }
};

} // namespace

const App &
ugrayApp()
{
    static UgrayApp app;
    return app;
}

} // namespace mts
