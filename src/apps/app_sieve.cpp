/**
 * @file
 * sieve — counts primes below N (paper Table 1: "counts primes <
 * 4,000,000", 242 lines, 106 M cycles).
 *
 * Structure mirrors a classic shared-memory sieve: every thread first
 * computes the small primes up to sqrt(N) in *local* memory (no shared
 * traffic), then marks the composites of its block of the shared flags
 * array at a constant rate, then scans its block counting primes and
 * accumulating a checksum, and finally combines with fetch-and-add.
 * The count scan has one shared load every ~19 cycles — the "fairly
 * constant run-length distribution" the paper describes.
 */
#include "apps/app.hpp"

#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

const char *const kSource = R"(
.const N, 400000
.shared flags, N
.shared count, 1
.shared checksum, 1
.local  small, 1024
.entry  main

main:
    mv   s0, a0              ; thread id
    mv   s1, a1              ; number of threads
    ; ---- sqrtN: first s with s*s >= N ----
    li   s2, 2
sqrt_loop:
    mul  t0, s2, s2
    bge  t0, N, sqrt_done
    add  s2, s2, 1
    j    sqrt_loop
sqrt_done:
    ; ---- local sieve over [0, s2] ----
    la   t0, small
    li   t1, 0
zero_loop:
    add  t2, t0, t1
    stl  r0, 0(t2)
    add  t1, t1, 1
    ble  t1, s2, zero_loop
    li   t1, 2               ; p
small_outer:
    mul  t2, t1, t1
    bgt  t2, s2, small_done
    add  t3, t0, t1
    ldl  t3, 0(t3)
    bne  t3, r0, small_next
    mv   t4, t2              ; m = p*p
small_mark:
    bgt  t4, s2, small_next
    add  t5, t0, t4
    li   t6, 1
    stl  t6, 0(t5)
    add  t4, t4, t1
    j    small_mark
small_next:
    add  t1, t1, 1
    j    small_outer
small_done:
    ; ---- my block [lo, hi) of [2, N) ----
    li   t1, N
    sub  t1, t1, 2
    mul  t2, t1, s0
    div  t2, t2, s1
    add  s3, t2, 2           ; lo
    add  t3, s0, 1
    mul  t2, t1, t3
    div  t2, t2, s1
    add  s4, t2, 2           ; hi
    ; ---- mark composites of my block (shared stores, constant rate) ----
    la   t0, small
    li   s5, 2               ; p
mark_outer:
    bgt  s5, s2, mark_done
    add  t1, t0, s5
    ldl  t1, 0(t1)
    bne  t1, r0, mark_next
    mul  t2, s5, s5          ; p*p
    add  t3, s3, s5
    sub  t3, t3, 1
    div  t3, t3, s5
    mul  t3, t3, s5          ; first multiple >= lo
    bge  t3, t2, mark_inner
    mv   t3, t2
mark_inner:
    bge  t3, s4, mark_next
    la   t5, flags
    add  t6, t5, t3
    li   t7, 1
    sts  t7, 0(t6)
    add  t3, t3, s5
    j    mark_inner
mark_next:
    add  s5, s5, 1
    j    mark_outer
mark_done:
    ; ---- count primes in my block with a rolling checksum ----
    li   s5, 0               ; count
    li   s6, 0               ; checksum
    la   t5, flags
    mv   t1, s3              ; i = lo
count_loop:
    bge  t1, s4, count_done
    add  t2, t5, t1
    lds  t3, 0(t2)
    mul  t4, s6, 3
    seq  t6, t3, 0
    add  s5, s5, t6
    add  t4, t4, t3
    add  s6, t4, t1          ; checksum = 3*checksum + flag + i
    add  t1, t1, 1
    j    count_loop
count_done:
    la   t0, count
    faa  r0, 0(t0), s5
    la   t0, checksum
    faa  r0, 0(t0), s6
    halt
)";

class SieveApp : public App
{
  public:
    std::string
    name() const override
    {
        return "sieve";
    }

    std::string
    description() const override
    {
        return "counts primes < N (per-thread blocks of a shared flag "
               "array)";
    }

    std::string
    source() const override
    {
        return runtimePrelude() + kSource;
    }

    AsmOptions
    options(double scale) const override
    {
        AsmOptions o;
        o.defines["N"] =
            static_cast<std::int64_t>(400000 * (scale > 0 ? scale : 1.0));
        return o;
    }

    int
    tableProcs() const override
    {
        return 8;  // paper used 16 at N=4M; 8 keeps our scaled
                   // N=400K in the linear region
    }

    AppCheckResult
    check(Machine &machine) const override
    {
        const Program &prog = machine.program();
        const std::int64_t n = prog.constValue("N");
        const int threads = machine.config().totalThreads();

        // Host oracle: the same sieve.
        std::vector<std::uint8_t> flag(static_cast<std::size_t>(n), 0);
        for (std::int64_t p = 2; p * p < n; ++p) {
            if (flag[p])
                continue;
            for (std::int64_t m = p * p; m < n; m += p)
                flag[m] = 1;
        }
        std::uint64_t primes = 0;
        std::uint64_t checksum = 0;
        for (int t = 0; t < threads; ++t) {
            std::int64_t lo = (n - 2) * t / threads + 2;
            std::int64_t hi = (n - 2) * (t + 1) / threads + 2;
            std::uint64_t cs = 0;
            for (std::int64_t i = lo; i < hi; ++i) {
                if (!flag[i])
                    ++primes;
                cs = cs * 3 + flag[i] + static_cast<std::uint64_t>(i);
            }
            checksum += cs;
        }

        SharedMemory &mem = machine.sharedMem();
        std::uint64_t gotCount = mem.read(prog.sharedAddr("count"));
        std::uint64_t gotSum = mem.read(prog.sharedAddr("checksum"));
        if (gotCount != primes)
            return {false, format("sieve: count %llu != expected %llu",
                                  (unsigned long long)gotCount,
                                  (unsigned long long)primes)};
        if (gotSum != checksum)
            return {false, "sieve: checksum mismatch"};
        return {true, ""};
    }
};

} // namespace

const App &
sieveApp()
{
    static SieveApp app;
    return app;
}

} // namespace mts
