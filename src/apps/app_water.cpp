/**
 * @file
 * water — pairwise molecular-dynamics kernel in the style of SPLASH
 * water (paper Table 1: 345 molecules, 2 iterations, 1082 M cycles).
 *
 * Reproduced behaviours: O(N^2) pairwise interactions whose inner loop
 * loads a molecule's coordinates in a bunch (one Load-Double plus one
 * load — a natural group of two accesses); ceil-divided *static block*
 * load balancing, which produces the paper's Figure 2 quirk where
 * efficiency jumps when the thread count divides the molecule count; and
 * a lock-protected global reduction (potential energy), the kind of
 * critical section that motivates the conditional-switch run-length
 * limit (Section 6.2).
 */
#include "apps/app.hpp"

#include <cmath>
#include <vector>

#include "util/strings.hpp"

namespace mts
{

namespace
{

double
initCoord(std::int64_t axis, std::int64_t i)
{
    return static_cast<double>((i * 29 + axis * 13 + 7) % 97) * 0.25;
}

const char *const kSource = R"(
.const N, 192                ; molecules
.const ITERS, 2
.shared pos, N*4             ; x,y,z,pad per molecule
.shared pe_global, 1         ; potential energy (lock protected)
.shared pe_lock, 2
.shared bar, 2
.local  force, N*4
.entry  main

main:
    mv   s0, a0              ; tid
    mv   s1, a1              ; nthreads
    ; ceil-divided static block: chunk = (N + n - 1) / n
    li   t0, N
    add  t1, t0, s1
    sub  t1, t1, 1
    div  s7, t1, s1          ; chunk
    mul  s2, s7, s0          ; lo = tid*chunk
    add  s4, s2, s7
    li   t0, N
    blt  s4, t0, have_hi
    mv   s4, t0              ; hi = min(N, lo+chunk)
have_hi:
    fli  f20, 1.0
    fli  f21, 0.001          ; dt
    fli  f19, 0.0            ; local potential energy
    li   s5, 0               ; iteration
iter_loop:
    ; ---- force phase: rows [lo, hi) ----
    mv   s3, s2              ; i
force_i:
    bge  s3, s4, force_done
    mul  t0, s3, 4
    li   t1, pos
    add  t1, t1, t0          ; &pos[i]
    fldsd f11, 0(t1)         ; xi, yi
    flds f13, 2(t1)          ; zi
    fli  f14, 0.0            ; fx
    fli  f15, 0.0            ; fy
    fli  f16, 0.0            ; fz
    li   t3, 0               ; j
    li   t2, pos             ; walking pointer
force_j:
    beq  t3, s3, force_skip
    fldsd f1, 0(t2)          ; xj, yj
    flds f3, 2(t2)           ; zj
    fsub f4, f11, f1         ; dx
    fsub f5, f12, f2         ; dy
    fsub f6, f13, f3         ; dz
    fmul f7, f4, f4
    fmul f8, f5, f5
    fmul f9, f6, f6
    fadd f7, f7, f8
    fadd f7, f7, f9
    fadd f7, f7, f20         ; r2 = dx2+dy2+dz2+1
    fdiv f8, f20, f7         ; inv = 1/r2
    fadd f19, f19, f8        ; pe += inv
    fmul f8, f8, f8          ; scale = inv*inv
    fmul f9, f4, f8
    fadd f14, f14, f9
    fmul f9, f5, f8
    fadd f15, f15, f9
    fmul f9, f6, f8
    fadd f16, f16, f9
force_skip:
    add  t2, t2, 4
    add  t3, t3, 1
    li   t4, N
    blt  t3, t4, force_j
    ; save force locally
    mul  t0, s3, 4
    la   t1, force
    add  t1, t1, t0
    fstl f14, 0(t1)
    fstl f15, 1(t1)
    fstl f16, 2(t1)
    add  s3, s3, 1
    j    force_i
force_done:
    la   a0, bar
    mv   a1, s1
    call __mts_barrier
    ; ---- update phase: my molecules ----
    mv   s3, s2
update_i:
    bge  s3, s4, update_done
    mul  t0, s3, 4
    la   t1, force
    add  t1, t1, t0
    fldl f14, 0(t1)
    fldl f15, 1(t1)
    fldl f16, 2(t1)
    li   t2, pos
    add  t2, t2, t0
    fldsd f11, 0(t2)
    flds f13, 2(t2)
    fmul f9, f14, f21
    fadd f11, f11, f9
    fmul f9, f15, f21
    fadd f12, f12, f9
    fmul f9, f16, f21
    fadd f13, f13, f9
    fsts f11, 0(t2)
    fsts f12, 1(t2)
    fsts f13, 2(t2)
    add  s3, s3, 1
    j    update_i
update_done:
    la   a0, bar
    mv   a1, s1
    call __mts_barrier
    add  s5, s5, 1
    blt  s5, ITERS, iter_loop
    ; ---- lock-protected global potential-energy reduction ----
    la   a0, pe_lock
    call __mts_lock
    la   t0, pe_global
    flds f1, 0(t0)
    fadd f1, f1, f19
    fsts f1, 0(t0)
    la   a0, pe_lock
    call __mts_unlock
    halt
)";

class WaterApp : public App
{
  public:
    std::string
    name() const override
    {
        return "water";
    }

    std::string
    description() const override
    {
        return "pairwise molecular dynamics with static block balancing "
               "and a locked global reduction";
    }

    std::string
    source() const override
    {
        return runtimePrelude() + kSource;
    }

    AsmOptions
    options(double scale) const override
    {
        AsmOptions o;
        o.defines["N"] = std::max<std::int64_t>(
            16, static_cast<std::int64_t>(192 * std::sqrt(scale)));
        o.defines["ITERS"] = 2;
        return o;
    }

    int
    tableProcs() const override
    {
        return 8;
    }

    void
    init(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t n = prog.constValue("N");
        SharedMemory &mem = machine.sharedMem();
        Addr base = prog.sharedAddr("pos");
        for (std::int64_t i = 0; i < n; ++i)
            for (std::int64_t axis = 0; axis < 3; ++axis)
                mem.writeDouble(base + i * 4 + axis, initCoord(axis, i));
    }

    AppCheckResult
    check(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t n = prog.constValue("N");
        std::int64_t iters = prog.constValue("ITERS");
        SharedMemory &mem = machine.sharedMem();
        Addr base = prog.sharedAddr("pos");

        // Oracle with the kernel's exact per-row fp order; pe is summed
        // per molecule, combined in arbitrary (lock) order on the machine,
        // so it is checked with a tolerance.
        std::vector<double> p(static_cast<std::size_t>(n) * 3);
        for (std::int64_t i = 0; i < n; ++i)
            for (std::int64_t axis = 0; axis < 3; ++axis)
                p[i * 3 + axis] = initCoord(axis, i);
        double pe = 0.0;
        std::vector<double> f(static_cast<std::size_t>(n) * 3);
        for (std::int64_t it = 0; it < iters; ++it) {
            for (std::int64_t i = 0; i < n; ++i) {
                double fx = 0.0, fy = 0.0, fz = 0.0;
                for (std::int64_t j = 0; j < n; ++j) {
                    if (j == i)
                        continue;
                    double dx = p[i * 3] - p[j * 3];
                    double dy = p[i * 3 + 1] - p[j * 3 + 1];
                    double dz = p[i * 3 + 2] - p[j * 3 + 2];
                    double r2 = dx * dx;
                    r2 = r2 + dy * dy;
                    r2 = r2 + dz * dz;
                    r2 = r2 + 1.0;
                    double inv = 1.0 / r2;
                    pe += inv;
                    double scale = inv * inv;
                    fx = fx + dx * scale;
                    fy = fy + dy * scale;
                    fz = fz + dz * scale;
                }
                f[i * 3] = fx;
                f[i * 3 + 1] = fy;
                f[i * 3 + 2] = fz;
            }
            for (std::int64_t i = 0; i < n; ++i)
                for (int axis = 0; axis < 3; ++axis)
                    p[i * 3 + axis] =
                        p[i * 3 + axis] + f[i * 3 + axis] * 0.001;
        }

        for (std::int64_t i = 0; i < n; ++i)
            for (int axis = 0; axis < 3; ++axis) {
                double got = mem.readDouble(base + i * 4 + axis);
                if (got != p[i * 3 + axis])
                    return {false,
                            format("water: pos[%lld].%d = %.17g, expected "
                                   "%.17g",
                                   (long long)i, axis, got,
                                   p[i * 3 + axis])};
            }
        double gotPe = mem.readDouble(prog.sharedAddr("pe_global"));
        double err = std::fabs(gotPe - pe) /
                     std::max(1.0, std::fabs(pe));
        if (err > 1e-9)
            return {false, format("water: pe %.17g vs %.17g", gotPe, pe)};
        return {true, ""};
    }
};

} // namespace

const App &
waterApp()
{
    static WaterApp app;
    return app;
}

} // namespace mts
