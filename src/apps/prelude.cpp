#include "apps/app.hpp"

namespace mts
{

/*
 * Runtime support routines (paper Section 3): higher-level
 * synchronization built out of Fetch-and-Add and spinning.
 *
 *  - Ticket lock, 2 shared words: [0] = next ticket, [1] = now serving.
 *  - Sense-reversing barrier, 2 shared words: [0] = count, [1] = sense;
 *    each thread keeps its local sense in thread-local memory.
 *
 * Spin loads use `lds.spin`, which the bandwidth accounting excludes
 * (paper footnote 2). Registers r26-r28 are reserved scratch for the
 * runtime; a0/a1 carry arguments; routines are leaves (clobber ra only
 * via the call itself).
 */
const std::string &
runtimePrelude()
{
    static const std::string text = R"(
; ================= mts runtime prelude =================
.local __mts_sense, 1
.local __mts_tsense, 1
.local __mts_tree_save, 8

; __mts_lock(a0 = &lock[2])
__mts_lock:
    li   r26, 1
    faa  r27, 0(a0), r26        ; take a ticket
__mts_lock_spin:
    lds.spin r28, 1(a0)
    beq  r28, r27, __mts_lock_done
    j    __mts_lock_spin
__mts_lock_done:
    setpri 1                    ; critical region (Section 6.2 extension)
    ret

; __mts_unlock(a0 = &lock[2])
__mts_unlock:
    setpri 0
    li   r26, 1
    faa  r0, 1(a0), r26         ; advance "now serving" (fire-and-forget)
    ret

; __mts_barrier(a0 = &bar[2], a1 = number of threads)
__mts_barrier:
    la   r26, __mts_sense
    ldl  r27, 0(r26)
    xor  r27, r27, 1            ; flip my sense
    stl  r27, 0(r26)
    li   r26, 1
    faa  r28, 0(a0), r26        ; arrive
    add  r26, r28, 1
    beq  r26, a1, __mts_barrier_last
__mts_barrier_spin:
    lds.spin r28, 1(a0)
    la   r26, __mts_sense
    ldl  r26, 0(r26)
    beq  r28, r26, __mts_barrier_done
    j    __mts_barrier_spin
__mts_barrier_last:
    sts  r0, 0(a0)              ; reset count for the next episode
    la   r26, __mts_sense
    ldl  r26, 0(r26)
    sts  r26, 1(a0)             ; release waiters
__mts_barrier_done:
    ret

; __mts_barrier_tree(a0 = &tree, a1 = number of threads, a2 = thread id)
;
; Software combining tree (paper reference [26]): fan-in 4 per node, so
; at most 4 fetch-and-adds ever target one word — the hot-spot-free
; alternative to the centralized barrier when the network does not
; combine. Layout: tree[0] = global sense; tree[1..] = one count word
; per node, level by level. Clobbers r26-r28; preserves r19-r23 via
; thread-local save space.
__mts_barrier_tree:
    la   r26, __mts_tree_save
    stl  r19, 0(r26)
    stl  r20, 1(r26)
    stl  r21, 2(r26)
    stl  r22, 3(r26)
    stl  r23, 4(r26)
    la   r26, __mts_tsense
    ldl  r27, 0(r26)
    xor  r27, r27, 1            ; my new sense
    stl  r27, 0(r26)
    mv   r21, a2                ; idx  = tid
    mv   r22, a1                ; P    = participants at this level
    li   r23, 1                 ; node offset of this level (word 0=sense)
__mts_tree_level:
    li   r26, 1
    ble  r22, r26, __mts_tree_root
    div  r19, r21, 4            ; my group
    mul  r26, r19, 4
    sub  r20, r22, r26          ; members = min(4, P - group*4)
    li   r26, 4
    ble  r20, r26, __mts_tree_have_members
    mv   r20, r26
__mts_tree_have_members:
    add  r28, a0, r23
    add  r28, r28, r19          ; &count[level][group]
    li   r26, 1
    faa  r26, 0(r28), r26       ; arrive at my node
    add  r26, r26, 1
    bne  r26, r20, __mts_tree_wait
    sts  r0, 0(r28)             ; last: reset node for the next episode
    add  r26, r22, 3
    div  r26, r26, 4            ; nodes at this level
    add  r23, r23, r26
    mv   r21, r19               ; ascend as this node's representative
    mv   r22, r26
    j    __mts_tree_level
__mts_tree_root:
    sts  r27, 0(a0)             ; overall winner: release everyone
    j    __mts_tree_done
__mts_tree_wait:
    lds.spin r28, 0(a0)
    bne  r28, r27, __mts_tree_wait
__mts_tree_done:
    la   r26, __mts_tree_save
    ldl  r19, 0(r26)
    ldl  r20, 1(r26)
    ldl  r21, 2(r26)
    ldl  r22, 3(r26)
    ldl  r23, 4(r26)
    ret
; ================ end runtime prelude ==================
)";
    return text;
}

} // namespace mts
