/**
 * @file
 * locus — standard-cell wire router in the style of SPLASH LocusRoute
 * (paper Table 1: Primary2, 1250 cells x 20 channels, 665 M cycles).
 *
 * Reproduced behaviours: wires are claimed from a dynamic queue
 * (fetch-and-add); each wire evaluates two L-shaped candidate routes by
 * walking a shared cost grid one cell at a time — a loop with a single
 * shared load and 1-4 cycle run-lengths (locus' very short run-lengths in
 * Table 2, and its poor *intra-block* grouping of ~1.05). Consecutive
 * cells of a walk fall in the same 32-word line, which is exactly the
 * inter-block grouping opportunity the paper's Section 5.2 cache
 * experiment detects (84% hits for locus). The chosen route then bumps a
 * congestion grid with fetch-and-adds. Route choice depends only on the
 * read-only base grid, so results are deterministic.
 */
#include "apps/app.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

struct Wire
{
    std::int64_t r1, c1, r2, c2;
};

std::vector<Wire>
makeWires(std::int64_t count, std::int64_t rows, std::int64_t cols)
{
    Rng rng(0x10c05u);
    std::vector<Wire> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        Wire w;
        // Standard-cell channels are wide and short: wires span many
        // columns but few rows (this is what makes locus' walks mostly
        // horizontal, i.e. consecutive addresses).
        w.r1 = static_cast<std::int64_t>(
            rng.nextBelow(static_cast<std::uint64_t>(rows)));
        w.r2 = std::min<std::int64_t>(
            rows - 1,
            w.r1 + static_cast<std::int64_t>(rng.nextBelow(7)));
        w.c1 = static_cast<std::int64_t>(
            rng.nextBelow(static_cast<std::uint64_t>(cols)));
        w.c2 = static_cast<std::int64_t>(
            rng.nextBelow(static_cast<std::uint64_t>(cols)));
        if (w.c1 > w.c2)
            std::swap(w.c1, w.c2);
        out.push_back(w);
    }
    return out;
}

std::int64_t
baseCostAt(std::int64_t r, std::int64_t c)
{
    return (r * 7 + c * 13 + (r * c) % 5) % 9 + 1;
}

const char *const kSource = R"(
.const ROWS, 32
.const COLS, 128
.const WIRES, 800
.shared base_cost, ROWS*COLS
.shared congest, ROWS*COLS
.shared wires, WIRES*4
.shared wire_ctr, 1
.shared total_cost, 1
.entry  main

main:
    mv   s0, a0
    mv   s1, a1
claim:
    li   t0, wire_ctr
    li   t1, 1
    faa  t2, 0(t0), t1
    li   t3, WIRES
    bge  t2, t3, done
    mul  t4, t2, 4
    li   t5, wires
    add  t5, t5, t4
    ldsd s2, 0(t5)           ; r1 -> s2, c1 -> s3
    ldsd s4, 2(t5)           ; r2 -> s4, c2 -> s5
    ; ---- cost of route A: row r1 (c1..c2), then column c2 (r1+1..r2)
    li   t0, base_cost
    mul  t4, s2, COLS
    add  t4, t0, t4
    add  t5, t4, s3          ; &base[r1][c1]
    add  t6, t4, s5          ; &base[r1][c2]
    li   s6, 0
costA_row:
    lds  t7, 0(t5)
    add  s6, s6, t7
    add  t5, t5, 1
    ble  t5, t6, costA_row
    add  t5, s2, 1
    mul  t5, t5, COLS
    add  t5, t5, s5
    add  t5, t0, t5          ; &base[r1+1][c2]
    mul  t6, s4, COLS
    add  t6, t6, s5
    add  t6, t0, t6          ; &base[r2][c2]
costA_col:
    bgt  t5, t6, costA_done
    lds  t7, 0(t5)
    add  s6, s6, t7
    add  t5, t5, COLS
    j    costA_col
costA_done:
    ; ---- cost of route B: column c1 (r1..r2), then row r2 (c1+1..c2)
    mul  t5, s2, COLS
    add  t5, t5, s3
    add  t5, t0, t5          ; &base[r1][c1]
    mul  t6, s4, COLS
    add  t6, t6, s3
    add  t6, t0, t6          ; &base[r2][c1]
    li   s7, 0
costB_col:
    bgt  t5, t6, costB_row_pre
    lds  t7, 0(t5)
    add  s7, s7, t7
    add  t5, t5, COLS
    j    costB_col
costB_row_pre:
    mul  t4, s4, COLS
    add  t4, t0, t4
    add  t5, t4, s3
    add  t5, t5, 1           ; &base[r2][c1+1]
    add  t6, t4, s5          ; &base[r2][c2]
costB_row:
    bgt  t5, t6, costB_done
    lds  t7, 0(t5)
    add  s7, s7, t7
    add  t5, t5, 1
    j    costB_row
costB_done:
    ; ---- commit the cheaper route into the congestion grid ----
    li   t0, congest
    li   t1, 1
    ble  s6, s7, commitA
    ; route B chosen
    li   t2, total_cost
    faa  r0, 0(t2), s7
    mul  t5, s2, COLS
    add  t5, t5, s3
    add  t5, t0, t5
    mul  t6, s4, COLS
    add  t6, t6, s3
    add  t6, t0, t6
commitB_col:
    bgt  t5, t6, commitB_row_pre
    faa  r0, 0(t5), t1
    add  t5, t5, COLS
    j    commitB_col
commitB_row_pre:
    mul  t4, s4, COLS
    add  t4, t0, t4
    add  t5, t4, s3
    add  t5, t5, 1
    add  t6, t4, s5
commitB_row:
    bgt  t5, t6, claim
    faa  r0, 0(t5), t1
    add  t5, t5, 1
    j    commitB_row
commitA:
    ; route A chosen
    li   t2, total_cost
    faa  r0, 0(t2), s6
    mul  t4, s2, COLS
    add  t4, t0, t4
    add  t5, t4, s3
    add  t6, t4, s5
commitA_row:
    faa  r0, 0(t5), t1
    add  t5, t5, 1
    ble  t5, t6, commitA_row
    add  t5, s2, 1
    mul  t5, t5, COLS
    add  t5, t5, s5
    add  t5, t0, t5
    mul  t6, s4, COLS
    add  t6, t6, s5
    add  t6, t0, t6
commitA_col:
    bgt  t5, t6, claim
    faa  r0, 0(t5), t1
    add  t5, t5, COLS
    j    commitA_col
done:
    halt
)";

class LocusApp : public App
{
  public:
    std::string
    name() const override
    {
        return "locus";
    }

    std::string
    description() const override
    {
        return "wire routing over a shared cost grid (dynamic claiming, "
               "cell-by-cell probing)";
    }

    std::string
    source() const override
    {
        return runtimePrelude() + kSource;
    }

    AsmOptions
    options(double scale) const override
    {
        AsmOptions o;
        o.defines["ROWS"] = 32;
        o.defines["COLS"] = 128;
        o.defines["WIRES"] = std::max<std::int64_t>(
            32, static_cast<std::int64_t>(800 * scale));
        return o;
    }

    int
    tableProcs() const override
    {
        return 8;
    }

    void
    init(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t rows = prog.constValue("ROWS");
        std::int64_t cols = prog.constValue("COLS");
        std::int64_t wires = prog.constValue("WIRES");
        SharedMemory &mem = machine.sharedMem();
        Addr gb = prog.sharedAddr("base_cost");
        for (std::int64_t r = 0; r < rows; ++r)
            for (std::int64_t c = 0; c < cols; ++c)
                mem.writeInt(gb + r * cols + c, baseCostAt(r, c));
        Addr wb = prog.sharedAddr("wires");
        auto list = makeWires(wires, rows, cols);
        for (std::int64_t i = 0; i < wires; ++i) {
            mem.writeInt(wb + i * 4, list[i].r1);
            mem.writeInt(wb + i * 4 + 1, list[i].c1);
            mem.writeInt(wb + i * 4 + 2, list[i].r2);
            mem.writeInt(wb + i * 4 + 3, list[i].c2);
        }
    }

    AppCheckResult
    check(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t rows = prog.constValue("ROWS");
        std::int64_t cols = prog.constValue("COLS");
        std::int64_t wires = prog.constValue("WIRES");
        SharedMemory &mem = machine.sharedMem();

        std::vector<std::uint64_t> congest(
            static_cast<std::size_t>(rows * cols), 0);
        std::uint64_t total = 0;
        for (const Wire &w : makeWires(wires, rows, cols)) {
            std::int64_t costA = 0;
            for (std::int64_t c = w.c1; c <= w.c2; ++c)
                costA += baseCostAt(w.r1, c);
            for (std::int64_t r = w.r1 + 1; r <= w.r2; ++r)
                costA += baseCostAt(r, w.c2);
            std::int64_t costB = 0;
            for (std::int64_t r = w.r1; r <= w.r2; ++r)
                costB += baseCostAt(r, w.c1);
            for (std::int64_t c = w.c1 + 1; c <= w.c2; ++c)
                costB += baseCostAt(w.r2, c);
            if (costA <= costB) {
                total += static_cast<std::uint64_t>(costA);
                for (std::int64_t c = w.c1; c <= w.c2; ++c)
                    ++congest[w.r1 * cols + c];
                for (std::int64_t r = w.r1 + 1; r <= w.r2; ++r)
                    ++congest[r * cols + w.c2];
            } else {
                total += static_cast<std::uint64_t>(costB);
                for (std::int64_t r = w.r1; r <= w.r2; ++r)
                    ++congest[r * cols + w.c1];
                for (std::int64_t c = w.c1 + 1; c <= w.c2; ++c)
                    ++congest[w.r2 * cols + c];
            }
        }

        std::uint64_t gotTotal = mem.read(prog.sharedAddr("total_cost"));
        if (gotTotal != total)
            return {false, format("locus: total cost %llu != %llu",
                                  (unsigned long long)gotTotal,
                                  (unsigned long long)total)};
        Addr cg = prog.sharedAddr("congest");
        for (std::int64_t i = 0; i < rows * cols; ++i)
            if (mem.read(cg + i) != congest[i])
                return {false,
                        format("locus: congestion[%lld] mismatch",
                               (long long)i)};
        return {true, ""};
    }
};

} // namespace

const App &
locusApp()
{
    static LocusApp app;
    return app;
}

} // namespace mts
