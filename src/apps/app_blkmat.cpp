/**
 * @file
 * blkmat — blocked matrix multiply (paper Table 1: 200x200 matrices,
 * 409 lines, 87 M cycles).
 *
 * The defining behaviour (Section 4.1): blocks of A and B are copied from
 * shared memory into *local* memory, then the block product is computed
 * entirely locally — "it makes private copies of shared data" — which
 * yields the exceptionally high mean run-length of Table 2. Copies use
 * Load-Double (`fldsd`) to halve the message count, as the paper's
 * multiprocessor ISA extension intends.
 */
#include "apps/app.hpp"

#include <cmath>
#include <vector>

#include "util/strings.hpp"

namespace mts
{

namespace
{

/// Deterministic input element (mirrored by the host oracle).
double
inputElem(std::int64_t which, std::int64_t i, std::int64_t j,
          std::int64_t n)
{
    return static_cast<double>((i * 31 + j * 17 + which * 7) % 64) /
               64.0 -
           0.5 + static_cast<double>(n % 7) * 0.001;
}

const char *const kSource = R"(
.const N, 64                 ; matrix dimension (multiple of BS)
.const BS, 8                 ; block size
.const NB, N/BS              ; blocks per dimension
.shared A, N*N
.shared B, N*N
.shared C, N*N
.local  la_buf, BS*BS
.local  lb_buf, BS*BS
.local  lc_buf, BS*BS
.entry  main

main:
    mv   s0, a0              ; tid
    mv   s1, a1              ; nthreads
    mv   s2, s0              ; bi = tid
block_loop:
    li   t0, NB*NB
    bge  s2, t0, done
    li   t0, NB
    div  s3, s2, t0          ; br
    rem  s4, s2, t0          ; bc
    ; ---- zero lc ----
    li   t1, 0
    la   t2, lc_buf
zero_lc:
    add  t3, t2, t1
    stl  r0, 0(t3)
    add  t1, t1, 1
    blt  t1, BS*BS, zero_lc
    ; ---- k-block loop ----
    li   s5, 0               ; kb
kb_loop:
    ; copy A block (rows br*BS.., cols kb*BS..) to la_buf
    li   t1, 0               ; i
copyA_row:
    mul  t2, s3, BS          ; br*BS
    add  t2, t2, t1          ; row = br*BS+i
    mul  t2, t2, N
    mul  t3, s5, BS
    add  t2, t2, t3          ; row*N + kb*BS
    li   t4, A
    add  t2, t4, t2          ; shared src
    mul  t3, t1, BS
    la   t4, la_buf
    add  t3, t4, t3          ; local dst
    li   t5, 0               ; jj
copyA_col:
    add  t6, t2, t5
    fldsd f0, 0(t6)
    add  t7, t3, t5
    fstl f0, 0(t7)
    fstl f1, 1(t7)
    add  t5, t5, 2
    blt  t5, BS, copyA_col
    add  t1, t1, 1
    blt  t1, BS, copyA_row
    ; copy B block (rows kb*BS.., cols bc*BS..) to lb_buf
    li   t1, 0
copyB_row:
    mul  t2, s5, BS
    add  t2, t2, t1
    mul  t2, t2, N
    mul  t3, s4, BS
    add  t2, t2, t3
    li   t4, B
    add  t2, t4, t2
    mul  t3, t1, BS
    la   t4, lb_buf
    add  t3, t4, t3
    li   t5, 0
copyB_col:
    add  t6, t2, t5
    fldsd f0, 0(t6)
    add  t7, t3, t5
    fstl f0, 0(t7)
    fstl f1, 1(t7)
    add  t5, t5, 2
    blt  t5, BS, copyB_col
    add  t1, t1, 1
    blt  t1, BS, copyB_row
    ; ---- local block product: lc += la x lb ----
    li   t1, 0               ; i
prod_i:
    li   t2, 0               ; j
prod_j:
    mul  t3, t1, BS
    la   t4, lc_buf
    add  t3, t4, t3
    add  t3, t3, t2          ; &lc[i][j]
    fldl f2, 0(t3)
    mul  t5, t1, BS
    la   t4, la_buf
    add  t5, t4, t5          ; &la[i][0]
    la   t4, lb_buf
    add  t6, t4, t2          ; &lb[0][j]
    li   t7, 0               ; k
prod_k:
    fldl f3, 0(t5)
    fldl f4, 0(t6)
    fmul f5, f3, f4
    fadd f2, f2, f5
    add  t5, t5, 1
    add  t6, t6, BS
    add  t7, t7, 1
    blt  t7, BS, prod_k
    fstl f2, 0(t3)
    add  t2, t2, 1
    blt  t2, BS, prod_j
    add  t1, t1, 1
    blt  t1, BS, prod_i
    add  s5, s5, 1
    blt  s5, NB, kb_loop
    ; ---- write lc back to C ----
    li   t1, 0               ; i
write_row:
    mul  t2, s3, BS
    add  t2, t2, t1
    mul  t2, t2, N
    mul  t3, s4, BS
    add  t2, t2, t3
    li   t4, C
    add  t2, t4, t2          ; shared dst
    mul  t3, t1, BS
    la   t4, lc_buf
    add  t3, t4, t3          ; local src
    li   t5, 0
write_col:
    add  t6, t3, t5
    fldl f0, 0(t6)
    add  t7, t2, t5
    fsts f0, 0(t7)
    add  t5, t5, 1
    blt  t5, BS, write_col
    add  t1, t1, 1
    blt  t1, BS, write_row
    add  s2, s2, s1          ; next block (interleaved)
    j    block_loop
done:
    halt
)";

class BlkmatApp : public App
{
  public:
    std::string
    name() const override
    {
        return "blkmat";
    }

    std::string
    description() const override
    {
        return "blocked matrix multiply with private block copies";
    }

    std::string
    source() const override
    {
        return runtimePrelude() + kSource;
    }

    AsmOptions
    options(double scale) const override
    {
        AsmOptions o;
        // Keep N a multiple of the block size.
        std::int64_t n = static_cast<std::int64_t>(64 * std::sqrt(scale));
        n = std::max<std::int64_t>(16, n / 8 * 8);
        o.defines["N"] = n;
        o.defines["BS"] = 8;
        return o;
    }

    int
    tableProcs() const override
    {
        return 4;  // 64 blocks of C bound the claimable parallelism
    }

    void
    init(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t n = prog.constValue("N");
        SharedMemory &mem = machine.sharedMem();
        Addr a = prog.sharedAddr("A");
        Addr b = prog.sharedAddr("B");
        for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
                mem.writeDouble(a + i * n + j, inputElem(0, i, j, n));
                mem.writeDouble(b + i * n + j, inputElem(1, i, j, n));
            }
        }
    }

    AppCheckResult
    check(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t n = prog.constValue("N");
        std::int64_t bs = prog.constValue("BS");
        SharedMemory &mem = machine.sharedMem();
        Addr cBase = prog.sharedAddr("C");

        // Oracle mirrors the kernel's blocked accumulation order so the
        // result is bit-exact.
        std::vector<double> c(static_cast<std::size_t>(n * n), 0.0);
        for (std::int64_t kb = 0; kb < n / bs; ++kb) {
            for (std::int64_t i = 0; i < n; ++i) {
                for (std::int64_t j = 0; j < n; ++j) {
                    double s = c[i * n + j];
                    for (std::int64_t k = kb * bs; k < (kb + 1) * bs; ++k)
                        s += inputElem(0, i, k, n) *
                             inputElem(1, k, j, n);
                    c[i * n + j] = s;
                }
            }
        }
        for (std::int64_t i = 0; i < n; ++i)
            for (std::int64_t j = 0; j < n; ++j) {
                double got = mem.readDouble(cBase + i * n + j);
                if (got != c[i * n + j])
                    return {false,
                            format("blkmat: C[%lld][%lld] = %.17g, "
                                   "expected %.17g",
                                   (long long)i, (long long)j, got,
                                   c[i * n + j])};
            }
        return {true, ""};
    }
};

} // namespace

const App &
blkmatApp()
{
    static BlkmatApp app;
    return app;
}

} // namespace mts
