/**
 * @file
 * sor — red/black successive over-relaxation for Laplace's equation
 * (paper Table 1: 192x192 grid, 332 lines, 258 M cycles).
 *
 * The inner loop is the paper's Figure 4: five independent shared loads
 * (north, south, west, east, center) that the grouping pass fuses into a
 * single context-switch group. Under plain switch-on-load these
 * back-to-back loads produce the 1- and 2-cycle run-lengths that dominate
 * sor's Table 2 distribution.
 */
#include "apps/app.hpp"

#include <vector>

#include "util/strings.hpp"

namespace mts
{

namespace
{

constexpr double kOmegaQuarter = 0.3125;  // omega/4 with omega = 1.25

const char *const kSource = R"(
.const M, 128                ; interior dimension
.const ITERS, 6
.const W, M+2                ; row stride
.shared u, W*W
.shared bar, 2
.entry  main

main:
    mv   s0, a0              ; tid
    mv   s1, a1              ; nthreads
    ; my interior rows [lo, hi)
    li   t0, M
    mul  t1, t0, s0
    div  t1, t1, s1
    add  s2, t1, 1           ; lo
    add  t2, s0, 1
    mul  t1, t0, t2
    div  t1, t1, s1
    add  s4, t1, 1           ; hi
    fli  f0, 4.0
    fli  f10, 0.3125         ; omega/4
    li   s5, 0               ; iteration
iter_loop:
    li   s6, 0               ; parity: 0 = red, 1 = black
phase_loop:
    mv   s3, s2              ; i = lo
row_loop:
    bge  s3, s4, phase_done
    ; jstart = 1 + ((i + 1 + parity) % 2)
    add  t0, s3, 1
    add  t0, t0, s6
    rem  t0, t0, 2
    add  t3, t0, 1           ; j
    ; pointer = u + i*W + j
    li   t1, W
    mul  t2, s3, t1
    add  t2, t2, t3
    li   t1, u
    add  t2, t1, t2          ; &u[i][j]
col_loop:
    li   t4, M
    bgt  t3, t4, row_next
    flds f1, 0-W(t2)         ; north
    flds f2, W(t2)           ; south
    flds f3, 0-1(t2)         ; west
    flds f4, 1(t2)           ; east
    flds f5, 0(t2)           ; center
    fadd f6, f1, f2
    fadd f7, f3, f4
    fadd f6, f6, f7
    fmul f8, f5, f0          ; 4*c
    fsub f6, f6, f8
    fmul f6, f6, f10
    fadd f5, f5, f6
    fsts f5, 0(t2)
    add  t3, t3, 2
    add  t2, t2, 2
    j    col_loop
row_next:
    add  s3, s3, 1
    j    row_loop
phase_done:
    la   a0, bar
    mv   a1, s1
    call __mts_barrier
    add  s6, s6, 1
    blt  s6, 2, phase_loop
    add  s5, s5, 1
    blt  s5, ITERS, iter_loop
    halt
)";

class SorApp : public App
{
  public:
    std::string
    name() const override
    {
        return "sor";
    }

    std::string
    description() const override
    {
        return "red/black S.O.R. solver for Laplace's equation (5-point "
               "stencil)";
    }

    std::string
    source() const override
    {
        return runtimePrelude() + kSource;
    }

    AsmOptions
    options(double scale) const override
    {
        AsmOptions o;
        std::int64_t m = static_cast<std::int64_t>(128 * scale);
        o.defines["M"] = std::max<std::int64_t>(8, m / 2 * 2);
        o.defines["ITERS"] = 6;
        return o;
    }

    int
    tableProcs() const override
    {
        return 8;  // 128 interior rows keep 8 x 16 threads busy
    }

    void
    init(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t m = prog.constValue("M");
        std::int64_t w = m + 2;
        SharedMemory &mem = machine.sharedMem();
        Addr base = prog.sharedAddr("u");
        for (std::int64_t j = 0; j < w; ++j) {
            mem.writeDouble(base + j, 1.0);                 // top
            mem.writeDouble(base + (w - 1) * w + j, 0.25);  // bottom
        }
        for (std::int64_t i = 1; i + 1 < w; ++i) {
            mem.writeDouble(base + i * w, 0.5);             // left
            mem.writeDouble(base + i * w + (w - 1), 0.75);  // right
        }
    }

    AppCheckResult
    check(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t m = prog.constValue("M");
        std::int64_t iters = prog.constValue("ITERS");
        std::int64_t w = m + 2;
        SharedMemory &mem = machine.sharedMem();
        Addr base = prog.sharedAddr("u");

        // Host oracle replicating the kernel's exact fp operation order.
        std::vector<double> u(static_cast<std::size_t>(w * w), 0.0);
        for (std::int64_t j = 0; j < w; ++j) {
            u[j] = 1.0;
            u[(w - 1) * w + j] = 0.25;
        }
        for (std::int64_t i = 1; i + 1 < w; ++i) {
            u[i * w] = 0.5;
            u[i * w + (w - 1)] = 0.75;
        }
        for (std::int64_t it = 0; it < iters; ++it) {
            for (int parity = 0; parity < 2; ++parity) {
                for (std::int64_t i = 1; i <= m; ++i) {
                    std::int64_t j0 = 1 + (i + 1 + parity) % 2;
                    for (std::int64_t j = j0; j <= m; j += 2) {
                        double n = u[(i - 1) * w + j];
                        double s = u[(i + 1) * w + j];
                        double ww = u[i * w + j - 1];
                        double e = u[i * w + j + 1];
                        double c = u[i * w + j];
                        double sum = (n + s) + (ww + e);
                        double delta = (sum - c * 4.0) * kOmegaQuarter;
                        u[i * w + j] = c + delta;
                    }
                }
            }
        }
        for (std::int64_t i = 1; i <= m; ++i)
            for (std::int64_t j = 1; j <= m; ++j) {
                double got = mem.readDouble(base + i * w + j);
                if (got != u[i * w + j])
                    return {false,
                            format("sor: u[%lld][%lld] = %.17g, expected "
                                   "%.17g",
                                   (long long)i, (long long)j, got,
                                   u[i * w + j])};
            }
        return {true, ""};
    }
};

} // namespace

const App &
sorApp()
{
    static SorApp app;
    return app;
}

} // namespace mts
