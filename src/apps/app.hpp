/**
 * @file
 * Application framework: the seven benchmark programs of the paper
 * (Table 1), rewritten for the MTS machine.
 *
 * Each application supplies its assembly source (with the runtime prelude
 * prepended), default problem-size defines, a host-side initializer that
 * writes input data into shared memory, and a checker that verifies the
 * computed result against a host oracle — so every simulation run is an
 * end-to-end correctness test of the assembler, optimizer, memory system
 * and coherence protocol.
 */
#ifndef MTS_APPS_APP_HPP
#define MTS_APPS_APP_HPP

#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "sim/machine.hpp"

namespace mts
{

/** Outcome of an application's self-check. */
struct AppCheckResult
{
    bool ok = false;
    std::string message;
};

/** One benchmark application. */
class App
{
  public:
    virtual ~App() = default;

    /** Short name as used in the paper ("sieve", "mp3d", ...). */
    virtual std::string name() const = 0;

    /** One-line description (Table 1 style). */
    virtual std::string description() const = 0;

    /** Full assembly source (runtime prelude included). */
    virtual std::string source() const = 0;

    /**
     * Problem-size defines. @p scale stretches the default (scale 1.0 is
     * the scaled-down default documented in EXPERIMENTS.md; larger values
     * approach the paper's sizes).
     */
    virtual AsmOptions options(double scale = 1.0) const = 0;

    /** Write input data into shared memory before the run. */
    virtual void
    init(Machine &machine) const
    {
        (void)machine;
    }

    /** Verify results against the host oracle after the run. */
    virtual AppCheckResult check(Machine &machine) const = 0;

    /** The paper's per-app processor count for the Table 3/5/6/8 rows. */
    virtual int tableProcs() const = 0;
};

/** All seven applications, in Table 1 order. */
const std::vector<const App *> &allApps();

/** Find by name; fatal if unknown. */
const App &findApp(const std::string &name);

/// @name Individual application singletons.
/// @{
const App &sieveApp();
const App &blkmatApp();
const App &sorApp();
const App &ugrayApp();
const App &waterApp();
const App &locusApp();
const App &mp3dApp();
/// @}

/** The runtime prelude: ticket locks and sense-reversing barriers built
 *  on fetch-and-add with spin loads (prepended to every app). */
const std::string &runtimePrelude();

} // namespace mts

#endif // MTS_APPS_APP_HPP
