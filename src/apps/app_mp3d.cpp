/**
 * @file
 * mp3d — rarefied-flow particle simulation in the style of SPLASH mp3d
 * (paper Table 1: 100,000 particles, 10 iterations, 192 M cycles).
 *
 * Reproduced behaviours: particles claimed from a *dynamic* work queue
 * (fetch-and-add), so a particle migrates between processors from step to
 * step and its record is effectively never cache-resident — the paper's
 * "very poor reference locality [that] benefits little from caching"
 * (Section 6.1). Each particle step does a small bunch of shared
 * accesses (claim, pair-load of position/velocity, a scattered cell
 * counter fetch-and-add, two write-backs) separated by only a few
 * compute cycles: the short run-lengths of Table 2.
 */
#include "apps/app.hpp"

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

constexpr double kDt = 0.5;
constexpr double kSpace = 1024.0;
constexpr double kInvCellWidth = 1.0 / 16.0;  // 64 cells

void
initParticle(std::uint64_t i, double &x, double &v)
{
    Rng rng(0x5eedbeef + i * 1315423911ull);
    x = rng.nextDouble(0.0, kSpace);
    v = rng.nextDouble(-8.0, 8.0);
    if (v == 0.0)
        v = 1.0;
}

const char *const kSource = R"(
.const P, 6000               ; particles
.const STEPS, 5
.shared part, P*2            ; x, v per particle
.shared cells, 64
.shared work, STEPS          ; one claim counter per step
.shared moved, 1             ; total particle-steps processed
.shared bar, 2
.entry  main

main:
    mv   s0, a0              ; tid
    mv   s1, a1              ; nthreads
    fli  f20, 0.5            ; dt
    fli  f21, 1024.0         ; space
    fli  f22, 0.0625         ; 1/cell width
    fli  f23, 0.0
    fli  f24, 2048.0         ; 2*space
    li   s2, 0               ; step
    li   s6, 0               ; particles this thread processed
step_loop:
    li   t0, work
    add  s3, t0, s2          ; &work[step]
claim_loop:
    li   t1, 1
    faa  t2, 0(s3), t1       ; my particle index
    li   t3, P
    bge  t2, t3, step_done
    add  s6, s6, 1
    ; load particle record
    mul  t4, t2, 2
    li   t5, part
    add  t5, t5, t4          ; &part[i]
    fldsd f1, 0(t5)          ; x, v
    fmul f3, f2, f20         ; v*dt
    fadd f1, f1, f3          ; x += v*dt
    ; reflect at 0
    fle  t6, f23, f1
    bne  t6, r0, no_low
    fneg f1, f1
    fneg f2, f2
no_low:
    ; reflect at space
    flt  t6, f1, f21
    bne  t6, r0, no_high
    fsub f1, f24, f1         ; x = 2*space - x
    fneg f2, f2
no_high:
    ; cell counter (scattered fetch-and-add)
    fmul f4, f1, f22
    cvtfi t6, f4
    li   t7, 63
    ble  t6, t7, cell_ok     ; clamp x == space edge case
    mv   t6, t7
cell_ok:
    li   t7, cells
    add  t7, t7, t6
    li   t8, 1
    faa  r0, 0(t7), t8          ; fire-and-forget cell count
    ; write back
    fsts f1, 0(t5)
    fsts f2, 1(t5)
    j    claim_loop
step_done:
    la   a0, bar
    mv   a1, s1
    call __mts_barrier
    add  s2, s2, 1
    blt  s2, STEPS, step_loop
    la   t0, moved
    faa  r0, 0(t0), s6
    halt
)";

class Mp3dApp : public App
{
  public:
    std::string
    name() const override
    {
        return "mp3d";
    }

    std::string
    description() const override
    {
        return "particle advection with dynamic claiming and scattered "
               "cell updates (poor locality)";
    }

    std::string
    source() const override
    {
        return runtimePrelude() + kSource;
    }

    AsmOptions
    options(double scale) const override
    {
        AsmOptions o;
        o.defines["P"] =
            std::max<std::int64_t>(64,
                                   static_cast<std::int64_t>(6000 * scale));
        o.defines["STEPS"] = 5;
        return o;
    }

    int
    tableProcs() const override
    {
        return 32;  // paper Table 8 reports mp3d at 32 processors
    }

    void
    init(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t p = prog.constValue("P");
        SharedMemory &mem = machine.sharedMem();
        Addr base = prog.sharedAddr("part");
        for (std::int64_t i = 0; i < p; ++i) {
            double x, v;
            initParticle(static_cast<std::uint64_t>(i), x, v);
            mem.writeDouble(base + i * 2, x);
            mem.writeDouble(base + i * 2 + 1, v);
        }
    }

    AppCheckResult
    check(Machine &machine) const override
    {
        const Program &prog = machine.program();
        std::int64_t p = prog.constValue("P");
        std::int64_t steps = prog.constValue("STEPS");
        SharedMemory &mem = machine.sharedMem();
        Addr base = prog.sharedAddr("part");

        std::vector<std::uint64_t> cells(64, 0);
        for (std::int64_t i = 0; i < p; ++i) {
            double x, v;
            initParticle(static_cast<std::uint64_t>(i), x, v);
            for (std::int64_t s = 0; s < steps; ++s) {
                x = x + v * kDt;
                if (!(0.0 <= x)) {
                    x = -x;
                    v = -v;
                }
                if (!(x < kSpace)) {
                    x = 2048.0 - x;
                    v = -v;
                }
                auto cell = static_cast<std::int64_t>(
                    std::trunc(x * kInvCellWidth));
                if (cell > 63)
                    cell = 63;
                ++cells[static_cast<std::size_t>(cell)];
            }
            double gx = mem.readDouble(base + i * 2);
            double gv = mem.readDouble(base + i * 2 + 1);
            if (gx != x || gv != v)
                return {false,
                        format("mp3d: particle %lld = (%.17g, %.17g), "
                               "expected (%.17g, %.17g)",
                               (long long)i, gx, gv, x, v)};
        }
        Addr cellBase = prog.sharedAddr("cells");
        for (std::size_t c = 0; c < 64; ++c) {
            std::uint64_t got = mem.read(cellBase + c);
            if (got != cells[c])
                return {false, format("mp3d: cell %zu count %llu != %llu",
                                      c, (unsigned long long)got,
                                      (unsigned long long)cells[c])};
        }
        std::uint64_t movedGot = mem.read(prog.sharedAddr("moved"));
        auto expected = static_cast<std::uint64_t>(p * steps);
        if (movedGot != expected)
            return {false, format("mp3d: moved %llu != %llu",
                                  (unsigned long long)movedGot,
                                  (unsigned long long)expected)};
        return {true, ""};
    }
};

} // namespace

const App &
mp3dApp()
{
    static Mp3dApp app;
    return app;
}

} // namespace mts
