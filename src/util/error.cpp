#include "util/error.hpp"

#include <cstdio>

namespace mts
{
namespace detail
{

void
throwFatal(const char *file, int line, const std::string &msg)
{
    std::ostringstream full;
    full << msg << " [" << file << ":" << line << "]";
    throw FatalError(full.str());
}

void
abortPanic(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "mtsim panic: %s [%s:%d]\n", msg.c_str(), file,
                 line);
    std::abort();
}

} // namespace detail
} // namespace mts
