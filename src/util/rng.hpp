/**
 * @file
 * Deterministic pseudo-random number generator used by workload generators.
 *
 * A fixed, seedable generator (splitmix64 core) keeps every experiment
 * reproducible across platforms, unlike std::mt19937 distributions whose
 * output is implementation-defined for floating point.
 */
#ifndef MTS_UTIL_RNG_HPP
#define MTS_UTIL_RNG_HPP

#include <cstdint>

namespace mts
{

/** Small deterministic RNG (splitmix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

  private:
    std::uint64_t state;
};

} // namespace mts

#endif // MTS_UTIL_RNG_HPP
