/**
 * @file
 * Minimal column-aligned table renderer used by the bench binaries to print
 * the paper's tables.
 */
#ifndef MTS_UTIL_TABLE_HPP
#define MTS_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace mts
{

/** Column-aligned text table with a header row and a title. */
class Table
{
  public:
    explicit Table(std::string title_) : title(std::move(title_)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (may have fewer cells than the header). */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p decimals decimal places. */
    static std::string num(double v, int decimals = 2);

    /** Convenience: format an integer. */
    static std::string num(std::uint64_t v);

    /** Render with box-drawing-free ASCII alignment. */
    void print(std::ostream &os) const;

    const std::string &
    titleText() const
    {
        return title;
    }

    const std::vector<std::string> &
    headerCells() const
    {
        return head;
    }

    const std::vector<std::vector<std::string>> &
    rowCells() const
    {
        return rows;
    }

  private:
    std::string title;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace mts

#endif // MTS_UTIL_TABLE_HPP
