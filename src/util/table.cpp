#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace mts
{

void
Table::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::num(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(head);
    for (const auto &r : rows)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            os << cell << std::string(widths[i] - cell.size() + 2, ' ');
        }
        os << "\n";
    };

    os << "== " << title << " ==\n";
    if (!head.empty()) {
        emit(head);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows)
        emit(r);
    os.flush();
}

} // namespace mts
