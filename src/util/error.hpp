/**
 * @file
 * Error-reporting helpers shared by every mtsim module.
 *
 * Follows the gem5 fatal()/panic() split: fatal() is a user error (bad
 * assembly, bad configuration) and throws a recoverable exception;
 * panic() is a simulator bug and aborts.
 */
#ifndef MTS_UTIL_ERROR_HPP
#define MTS_UTIL_ERROR_HPP

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mts
{

/** Exception thrown for user-level errors (bad input, bad config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Accumulates a message via operator<< and throws/aborts on destruction. */
class MessageStream
{
  public:
    template <typename T>
    MessageStream &
    operator<<(const T &value)
    {
        stream << value;
        return *this;
    }

    std::string str() const { return stream.str(); }

  private:
    std::ostringstream stream;
};

[[noreturn]] void throwFatal(const char *file, int line,
                             const std::string &msg);
[[noreturn]] void abortPanic(const char *file, int line,
                             const std::string &msg);

} // namespace detail

} // namespace mts

/** User error: throws mts::FatalError with file/line context. */
#define MTS_FATAL(msg)                                                       \
    do {                                                                     \
        ::mts::detail::MessageStream mts_ms_;                                \
        mts_ms_ << msg;                                                      \
        ::mts::detail::throwFatal(__FILE__, __LINE__, mts_ms_.str());        \
    } while (0)

/** Simulator bug: prints and aborts. */
#define MTS_PANIC(msg)                                                       \
    do {                                                                     \
        ::mts::detail::MessageStream mts_ms_;                                \
        mts_ms_ << msg;                                                      \
        ::mts::detail::abortPanic(__FILE__, __LINE__, mts_ms_.str());        \
    } while (0)

/** Invariant check that indicates a simulator bug when violated. */
#define MTS_ASSERT(cond, msg)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            MTS_PANIC("assertion failed: " #cond ": " << msg);               \
        }                                                                    \
    } while (0)

/** Input validation that indicates a user error when violated. */
#define MTS_REQUIRE(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            MTS_FATAL(msg);                                                  \
        }                                                                    \
    } while (0)

#endif // MTS_UTIL_ERROR_HPP
