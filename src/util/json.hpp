/**
 * @file
 * Dependency-free JSON tree: the machine-readable output format of the
 * metrics layer (RunRecord, Reporter, `mtsim --json`).
 *
 * Deliberately small: insertion-ordered objects (so emitted files are
 * deterministic and diffable), exact 64-bit integer round-trips (cycle
 * and bit counters exceed 2^53), shortest-round-trip doubles via
 * std::to_chars, and a strict parser used by the tests and by external
 * consumers of the BENCH_*.json trajectory files.
 */
#ifndef MTS_UTIL_JSON_HPP
#define MTS_UTIL_JSON_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mts
{

/** One JSON value; objects preserve insertion order. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Uint,
        Int,
        Real,
        String,
        Array,
        Object
    };

    JsonValue() : kind_(Kind::Null) {}
    JsonValue(bool b) : kind_(Kind::Bool), boolV(b) {}
    JsonValue(std::uint64_t v) : kind_(Kind::Uint), uintV(v) {}
    JsonValue(std::int64_t v) : kind_(Kind::Int), intV(v) {}
    JsonValue(int v) : kind_(Kind::Int), intV(v) {}
    JsonValue(unsigned v) : kind_(Kind::Uint), uintV(v) {}
    JsonValue(double v) : kind_(Kind::Real), realV(v) {}
    JsonValue(std::string s) : kind_(Kind::String), strV(std::move(s)) {}
    JsonValue(const char *s) : kind_(Kind::String), strV(s) {}

    static JsonValue
    array()
    {
        JsonValue v;
        v.kind_ = Kind::Array;
        return v;
    }

    static JsonValue
    object()
    {
        JsonValue v;
        v.kind_ = Kind::Object;
        return v;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isString() const { return kind_ == Kind::String; }

    /** True for Uint, Int and Real. */
    bool
    isNumber() const
    {
        return kind_ == Kind::Uint || kind_ == Kind::Int ||
               kind_ == Kind::Real;
    }

    bool asBool() const;
    std::uint64_t asUint() const;    ///< exact; fatal on mismatch
    std::int64_t asInt() const;
    double asNumber() const;         ///< any numeric kind, widened
    const std::string &asString() const;

    /** Array elements / object entry count (fatal on other kinds). */
    std::size_t size() const;

    /** Array element access (fatal unless Array). */
    const JsonValue &at(std::size_t i) const;

    /** Append to an Array (fatal unless Array/Null; Null promotes). */
    JsonValue &push(JsonValue v);

    /** Object field access, inserting a Null on first use (promotes
     *  Null to Object). */
    JsonValue &operator[](const std::string &key);

    /** Lookup without insertion; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    bool
    contains(const std::string &key) const
    {
        return find(key) != nullptr;
    }

    /** Object entries in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    items() const;

    /**
     * Serialize. @p indent 0 renders compact one-line JSON; positive
     * values pretty-print with that many spaces per level.
     */
    std::string dump(int indent = 0) const;

  private:
    void write(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool boolV = false;
    std::uint64_t uintV = 0;
    std::int64_t intV = 0;
    double realV = 0.0;
    std::string strV;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;
};

/** Escape @p s for embedding in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/** Parse a complete JSON document; fatal (FatalError) on malformed
 *  input or trailing garbage. */
JsonValue parseJson(const std::string &text);

} // namespace mts

#endif // MTS_UTIL_JSON_HPP
