#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace mts
{

namespace
{
constexpr std::size_t kNumBuckets = 64;
} // namespace

Histogram::Histogram() : buckets(kNumBuckets, 0), total(0), weightedSum(0) {}

std::size_t
Histogram::bucketIndex(std::uint64_t value)
{
    if (value <= 1)
        return 0;
    // bucket b (b >= 1) holds (2^(b-1), 2^b]
    std::size_t b = 0;
    std::uint64_t v = value - 1;
    while (v) {
        v >>= 1;
        ++b;
    }
    return std::min(b, kNumBuckets - 1);
}

void
Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    buckets[bucketIndex(value)] += weight;
    total += weight;
    weightedSum += value * weight;
}

void
Histogram::merge(const Histogram &other)
{
    for (std::size_t i = 0; i < kNumBuckets; ++i)
        buckets[i] += other.buckets[i];
    total += other.total;
    weightedSum += other.weightedSum;
}

double
Histogram::mean() const
{
    return total ? static_cast<double>(weightedSum) /
                       static_cast<double>(total)
                 : 0.0;
}

double
Histogram::fractionAt(std::uint64_t value) const
{
    if (!total)
        return 0.0;
    return static_cast<double>(buckets[bucketIndex(value)]) /
           static_cast<double>(total);
}

double
Histogram::fractionAtMost(std::uint64_t value) const
{
    if (!total)
        return 0.0;
    std::size_t last = bucketIndex(value);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i <= last; ++i)
        acc += buckets[i];
    return static_cast<double>(acc) / static_cast<double>(total);
}

std::size_t
Histogram::populatedBuckets() const
{
    std::size_t n = 0;
    for (auto b : buckets)
        if (b)
            ++n;
    return n;
}

std::string
Histogram::bucketLabel(std::uint64_t value)
{
    std::size_t b = bucketIndex(value);
    char buf[64];
    if (b == 0) {
        return "1";
    } else if (b == 1) {
        return "2";
    }
    std::uint64_t lo = (1ull << (b - 1)) + 1;
    std::uint64_t hi = 1ull << b;
    std::snprintf(buf, sizeof(buf), "%llu-%llu",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
    return buf;
}

std::vector<std::pair<std::string, std::uint64_t>>
Histogram::populatedBucketCounts() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
        if (!buckets[b])
            continue;
        std::uint64_t repr = (b == 0) ? 1 : (1ull << b);
        out.emplace_back(bucketLabel(repr), buckets[b]);
    }
    return out;
}

std::string
Histogram::format() const
{
    std::string out;
    char buf[96];
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
        if (!buckets[b])
            continue;
        std::uint64_t repr = (b == 0) ? 1 : (1ull << b);
        double pct = 100.0 * static_cast<double>(buckets[b]) /
                     static_cast<double>(total);
        std::snprintf(buf, sizeof(buf), "%s:%.1f%% ",
                      bucketLabel(repr).c_str(), pct);
        out += buf;
    }
    if (!out.empty())
        out.pop_back();
    return out;
}

void
Histogram::clear()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
    weightedSum = 0;
}

} // namespace mts
