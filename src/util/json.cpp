#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace mts
{

bool
JsonValue::asBool() const
{
    MTS_REQUIRE(kind_ == Kind::Bool, "JSON value is not a bool");
    return boolV;
}

std::uint64_t
JsonValue::asUint() const
{
    if (kind_ == Kind::Uint)
        return uintV;
    if (kind_ == Kind::Int && intV >= 0)
        return static_cast<std::uint64_t>(intV);
    MTS_FATAL("JSON value is not a non-negative integer");
}

std::int64_t
JsonValue::asInt() const
{
    if (kind_ == Kind::Int)
        return intV;
    if (kind_ == Kind::Uint) {
        MTS_REQUIRE(uintV <= 0x7fffffffffffffffull,
                    "JSON integer exceeds int64 range");
        return static_cast<std::int64_t>(uintV);
    }
    MTS_FATAL("JSON value is not an integer");
}

double
JsonValue::asNumber() const
{
    switch (kind_) {
      case Kind::Uint:
        return static_cast<double>(uintV);
      case Kind::Int:
        return static_cast<double>(intV);
      case Kind::Real:
        return realV;
      default:
        MTS_FATAL("JSON value is not a number");
    }
}

const std::string &
JsonValue::asString() const
{
    MTS_REQUIRE(kind_ == Kind::String, "JSON value is not a string");
    return strV;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return arr.size();
    if (kind_ == Kind::Object)
        return obj.size();
    MTS_FATAL("JSON value is not a container");
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    MTS_REQUIRE(kind_ == Kind::Array, "JSON value is not an array");
    MTS_REQUIRE(i < arr.size(), "JSON array index out of range");
    return arr[i];
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    MTS_REQUIRE(kind_ == Kind::Array, "JSON value is not an array");
    arr.push_back(std::move(v));
    return arr.back();
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    MTS_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
    for (auto &[k, v] : obj)
        if (k == key)
            return v;
    obj.emplace_back(key, JsonValue());
    return obj.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::items() const
{
    MTS_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
    return obj;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace
{

void
writeNumber(std::string &out, double v)
{
    // Non-finite values are not representable in JSON; emit null (the
    // metrics layer never produces them, but a derived rate could).
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
JsonValue::write(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolV ? "true" : "false";
        break;
      case Kind::Uint: {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof buf, uintV);
        out.append(buf, res.ptr);
        break;
      }
      case Kind::Int: {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof buf, intV);
        out.append(buf, res.ptr);
        break;
      }
      case Kind::Real:
        writeNumber(out, realV);
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(strV);
        out += '"';
        break;
      case Kind::Array: {
        if (arr.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const JsonValue &v : arr) {
            if (!first)
                out += ',';
            first = false;
            if (indent)
                newlineIndent(out, indent, depth + 1);
            v.write(out, indent, depth + 1);
        }
        if (indent)
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        if (obj.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &[k, v] : obj) {
            if (!first)
                out += ',';
            first = false;
            if (indent)
                newlineIndent(out, indent, depth + 1);
            out += '"';
            out += jsonEscape(k);
            out += "\":";
            if (indent)
                out += ' ';
            v.write(out, indent, depth + 1);
        }
        if (indent)
            newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    if (indent)
        out += '\n';
    return out;
}

namespace
{

/** Recursive-descent parser over a complete document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        MTS_REQUIRE(pos == s.size(),
                    "JSON: trailing characters at offset " << pos);
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        MTS_REQUIRE(pos < s.size(), "JSON: unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        MTS_REQUIRE(pos < s.size() && s[pos] == c,
                    "JSON: expected '" << c << "' at offset " << pos);
        ++pos;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = std::string(w).size();
        if (s.compare(pos, n, w) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{':
            return objectValue();
          case '[':
            return arrayValue();
          case '"':
            return JsonValue(stringValue());
          case 't':
            MTS_REQUIRE(consumeWord("true"), "JSON: bad literal");
            return JsonValue(true);
          case 'f':
            MTS_REQUIRE(consumeWord("false"), "JSON: bad literal");
            return JsonValue(false);
          case 'n':
            MTS_REQUIRE(consumeWord("null"), "JSON: bad literal");
            return JsonValue();
          default:
            return numberValue();
        }
    }

    JsonValue
    objectValue()
    {
        expect('{');
        JsonValue v = JsonValue::object();
        skipWs();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = stringValue();
            skipWs();
            expect(':');
            v[key] = value();
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    arrayValue()
    {
        expect('[');
        JsonValue v = JsonValue::array();
        skipWs();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.push(value());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    stringValue()
    {
        expect('"');
        std::string out;
        while (true) {
            MTS_REQUIRE(pos < s.size(), "JSON: unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            MTS_REQUIRE(pos < s.size(), "JSON: unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                MTS_REQUIRE(pos + 4 <= s.size(),
                            "JSON: truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp += static_cast<unsigned>(h - 'A' + 10);
                    else
                        MTS_FATAL("JSON: bad hex digit in \\u escape");
                }
                // UTF-8 encode (BMP only; surrogate pairs are not
                // produced by our writer).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                MTS_FATAL("JSON: unknown escape '\\" << e << "'");
            }
        }
    }

    JsonValue
    numberValue()
    {
        std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        bool isReal = false;
        while (pos < s.size()) {
            char c = s[pos];
            if (c >= '0' && c <= '9') {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isReal = isReal || c == '.' || c == 'e' || c == 'E';
                ++pos;
            } else {
                break;
            }
        }
        MTS_REQUIRE(pos > start, "JSON: expected a value at offset "
                                     << start);
        const char *b = s.data() + start;
        const char *e = s.data() + pos;
        if (!isReal) {
            if (*b == '-') {
                std::int64_t v = 0;
                auto res = std::from_chars(b, e, v);
                MTS_REQUIRE(res.ec == std::errc() && res.ptr == e,
                            "JSON: bad integer");
                return JsonValue(v);
            }
            std::uint64_t v = 0;
            auto res = std::from_chars(b, e, v);
            MTS_REQUIRE(res.ec == std::errc() && res.ptr == e,
                        "JSON: bad integer");
            return JsonValue(v);
        }
        double v = 0;
        auto res = std::from_chars(b, e, v);
        MTS_REQUIRE(res.ec == std::errc() && res.ptr == e,
                    "JSON: bad number");
        return JsonValue(v);
    }

    const std::string &s;
    std::size_t pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).document();
}

} // namespace mts
