/**
 * @file
 * Fixed-size host worker pool used to fan independent simulations across
 * cores. Tasks are submitted as callables and return std::futures;
 * exceptions thrown inside a task propagate through the future, so a
 * failed simulation surfaces exactly where its result is consumed.
 *
 * The worker count defaults to the MTS_JOBS environment variable, or the
 * hardware concurrency when MTS_JOBS is unset (see EXPERIMENTS.md).
 */
#ifndef MTS_UTIL_THREAD_POOL_HPP
#define MTS_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mts
{

/** A fixed set of worker threads draining one FIFO task queue. */
class ThreadPool
{
  public:
    /** @param workers Worker count; 0 means defaultWorkers(). */
    explicit ThreadPool(unsigned workers = 0)
    {
        if (workers == 0)
            workers = defaultWorkers();
        if (workers == 0)
            workers = 1;
        threads.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            threads.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        wake.notify_all();
        for (std::thread &t : threads)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    size() const
    {
        return static_cast<unsigned>(threads.size());
    }

    /** Enqueue @p fn; the returned future yields its result (or rethrows
     *  its exception). */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex);
            queue.emplace_back([task] { (*task)(); });
        }
        wake.notify_one();
        return result;
    }

    /**
     * Worker count from the environment: MTS_JOBS if set and positive,
     * otherwise the hardware concurrency (at least 1).
     */
    static unsigned
    defaultWorkers()
    {
        if (const char *env = std::getenv("MTS_JOBS")) {
            long n = std::atol(env);
            if (n > 0)
                return static_cast<unsigned>(n);
        }
        unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex);
                wake.wait(lock,
                          [this] { return stopping || !queue.empty(); });
                if (queue.empty())
                    return;  // stopping, and no work left
                task = std::move(queue.front());
                queue.pop_front();
            }
            task();
        }
    }

    std::vector<std::thread> threads;
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable wake;
    bool stopping = false;
};

} // namespace mts

#endif // MTS_UTIL_THREAD_POOL_HPP
