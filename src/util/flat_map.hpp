/**
 * @file
 * Open-addressed flat hash map from Addr to Cycle, for per-address
 * hot-path state (the Machine's memory-port contention table). One flat
 * slot array, linear probing, power-of-two capacity reserved up front —
 * no per-node allocation and no pointer chasing on the lookup that the
 * simulator performs once per contended shared access.
 *
 * The all-ones address is reserved as the empty-slot marker (it can never
 * name a real shared word: SharedMemory is far smaller than 2^64 words).
 * Erasure is not supported — the simulator only ever inserts or updates.
 */
#ifndef MTS_UTIL_FLAT_MAP_HPP
#define MTS_UTIL_FLAT_MAP_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/addressing.hpp"

namespace mts
{

/** Open-addressed Addr -> Cycle map with linear probing. */
class AddrCycleMap
{
  public:
    /** @param expected Expected number of distinct keys; capacity is
     *         reserved up front so the hot path never rehashes. */
    explicit AddrCycleMap(std::size_t expected = 0)
    {
        if (expected)
            rehash(tableSizeFor(expected));
    }

    /** Value reference for @p key, default-initialised to 0 if absent.
     *  Invalidated by any later insertion. */
    Cycle &
    operator[](Addr key)
    {
        if (slots.empty())
            rehash(kMinCapacity);
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask) {
            Slot &s = slots[i];
            if (s.key == key)
                return s.value;
            if (s.key == kEmptyKey) {
                if ((used + 1) * 10 > slots.size() * 7) {
                    rehash(slots.size() * 2);
                    return (*this)[key];
                }
                ++used;
                s.key = key;
                s.value = 0;
                return s.value;
            }
        }
    }

    std::size_t
    size() const
    {
        return used;
    }

    std::size_t
    capacity() const
    {
        return slots.size();
    }

  private:
    static constexpr Addr kEmptyKey = ~Addr(0);
    static constexpr std::size_t kMinCapacity = 16;

    struct Slot
    {
        Addr key = kEmptyKey;
        Cycle value = 0;
    };

    static std::size_t
    tableSizeFor(std::size_t expected)
    {
        // Keep the load factor at/below 0.7 for the expected key count.
        std::size_t cap = kMinCapacity;
        while (cap * 7 < expected * 10)
            cap *= 2;
        return cap;
    }

    std::size_t
    indexOf(Addr key) const
    {
        // Fibonacci hashing spreads the mostly-sequential word addresses.
        return static_cast<std::size_t>(
                   (key * 0x9E3779B97F4A7C15ull) >> 32) &
               mask;
    }

    void
    rehash(std::size_t newCap)
    {
        std::vector<Slot> old = std::move(slots);
        slots.assign(newCap, Slot{});
        mask = newCap - 1;
        used = 0;
        for (const Slot &s : old) {
            if (s.key == kEmptyKey)
                continue;
            for (std::size_t i = indexOf(s.key);; i = (i + 1) & mask) {
                if (slots[i].key == kEmptyKey) {
                    slots[i] = s;
                    ++used;
                    break;
                }
            }
        }
    }

    std::vector<Slot> slots;
    std::size_t mask = 0;
    std::size_t used = 0;
};

} // namespace mts

#endif // MTS_UTIL_FLAT_MAP_HPP
