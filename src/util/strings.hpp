/**
 * @file
 * Small string helpers used by the assembler and CLIs.
 */
#ifndef MTS_UTIL_STRINGS_HPP
#define MTS_UTIL_STRINGS_HPP

#include <string>
#include <string_view>
#include <vector>

namespace mts
{

/** Strip leading/trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character, keeping empty fields. */
std::vector<std::string> split(std::string_view s, char delim);

/** True if @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace mts

#endif // MTS_UTIL_STRINGS_HPP
