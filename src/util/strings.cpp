#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace mts
{

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

} // namespace mts
