/**
 * @file
 * Power-of-two bucketed histogram for run-length distributions
 * (paper Tables 2 and 4).
 */
#ifndef MTS_UTIL_HISTOGRAM_HPP
#define MTS_UTIL_HISTOGRAM_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mts
{

/**
 * Histogram with buckets 1, 2, 3-4, 5-8, 9-16, ..., 2^k+1..2^(k+1).
 *
 * The paper reports run-length distributions as the percentage of
 * run-lengths falling into short buckets; this mirrors that presentation.
 */
class Histogram
{
  public:
    Histogram();

    /** Record one sample (values < 1 are clamped into the first bucket). */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    std::uint64_t count() const { return total; }
    std::uint64_t sum() const { return weightedSum; }

    /** Arithmetic mean of recorded samples (0 if empty). */
    double mean() const;

    /** Fraction (0..1) of samples in the bucket containing @p value. */
    double fractionAt(std::uint64_t value) const;

    /** Fraction of samples with value <= limit. */
    double fractionAtMost(std::uint64_t value) const;

    /** Number of buckets with at least one sample. */
    std::size_t populatedBuckets() const;

    /** (label, count) for every populated bucket, in value order. */
    std::vector<std::pair<std::string, std::uint64_t>>
    populatedBucketCounts() const;

    /** Human-readable label for the bucket containing @p value. */
    static std::string bucketLabel(std::uint64_t value);

    /** Render "lbl:pct% lbl:pct% ..." for all populated buckets. */
    std::string format() const;

    /** Reset to empty. */
    void clear();

  private:
    static std::size_t bucketIndex(std::uint64_t value);

    std::vector<std::uint64_t> buckets;
    std::uint64_t total;
    std::uint64_t weightedSum;
};

} // namespace mts

#endif // MTS_UTIL_HISTOGRAM_HPP
