#include "trace/text_tracer.hpp"

#include "util/strings.hpp"

namespace mts
{

const char *
switchReasonName(SwitchReason reason)
{
    switch (reason) {
      case SwitchReason::Load:
        return "load";
      case SwitchReason::Use:
        return "use";
      case SwitchReason::Explicit:
        return "cswitch";
      case SwitchReason::SliceLimit:
        return "slice-limit";
      case SwitchReason::EveryCycle:
        return "every-cycle";
      case SwitchReason::Halt:
        return "halt";
    }
    return "?";
}

const char *
schedEventName(SchedEventKind kind)
{
    switch (kind) {
      case SchedEventKind::Preempt:
        return "preempt";
      case SchedEventKind::Save:
        return "save";
      case SchedEventKind::Restore:
        return "restore";
      case SchedEventKind::Requeue:
        return "requeue";
      case SchedEventKind::Install:
        return "install";
    }
    return "?";
}

bool
TextTracer::accept(Cycle cycle)
{
    if (cycle < from || cycle > to || remaining == 0)
        return false;
    --remaining;
    ++emitted;
    return true;
}

void
TextTracer::onInstruction(Cycle cycle, std::uint16_t proc,
                          std::uint32_t thread, std::int32_t pc,
                          const Instruction &inst)
{
    if (!accept(cycle))
        return;
    os << format("[%8llu] p%02u.t%02u @%-5d %s\n",
                 (unsigned long long)cycle, proc, thread, pc,
                 disassemble(inst).c_str());
}

void
TextTracer::onSwitch(Cycle cycle, std::uint16_t proc, std::uint32_t fromTh,
                     std::uint32_t toTh, Cycle wakeAt, SwitchReason reason)
{
    if (!accept(cycle))
        return;
    os << format("[%8llu] p%02u     switch t%02u -> t%02u (%s, wake "
                 "%llu)\n",
                 (unsigned long long)cycle, proc, fromTh, toTh,
                 switchReasonName(reason), (unsigned long long)wakeAt);
}

void
TextTracer::onSchedEvent(Cycle cycle, std::uint16_t proc,
                         SchedEventKind kind, std::uint32_t gid,
                         Cycle detail)
{
    if (!accept(cycle))
        return;
    const char *label = "";
    switch (kind) {
      case SchedEventKind::Save:
      case SchedEventKind::Restore:
        label = "cycles";
        break;
      case SchedEventKind::Preempt:
        label = "deadline";
        break;
      case SchedEventKind::Requeue:
        label = "depth";
        break;
      case SchedEventKind::Install:
        label = "wake";
        break;
    }
    os << format("[%8llu] p%02u     sched %-7s t%02u (%s %llu)\n",
                 (unsigned long long)cycle, proc, schedEventName(kind),
                 gid, label, (unsigned long long)detail);
}

void
TextTracer::onSharedAccess(Cycle cycle, std::uint16_t proc,
                           std::uint32_t thread, const MemOp &op)
{
    if (!accept(cycle))
        return;
    const char *kind = "?";
    switch (op.kind) {
      case MemOpKind::Load:
        kind = op.spin ? "spin-load" : "load";
        break;
      case MemOpKind::LoadPair:
        kind = "load-pair";
        break;
      case MemOpKind::Store:
        kind = "store";
        break;
      case MemOpKind::FetchAdd:
        kind = "fetch-add";
        break;
    }
    os << format("[%8llu] p%02u.t%02u        %s +%llu%s\n",
                 (unsigned long long)cycle, proc, thread, kind,
                 (unsigned long long)(op.addr - kSharedBase),
                 op.fillLine ? " (line fill)" : "");
}

} // namespace mts
