#include "trace/timeline.hpp"

#include "util/strings.hpp"

namespace mts
{

namespace
{

char
threadGlyph(std::int64_t thread)
{
    if (thread == -2)
        return '*';
    if (thread < 10)
        return static_cast<char>('0' + thread);
    if (thread < 36)
        return static_cast<char>('a' + (thread - 10));
    return '#';
}

} // namespace

std::string
TimelineTracer::render(std::size_t maxColumns) const
{
    std::size_t width = 0;
    for (const auto &[proc, row] : grid)
        width = std::max(width, row.size());
    width = std::min(width, maxColumns);

    std::string out;
    for (const auto &[proc, row] : grid) {
        out += format("p%02u |", proc);
        for (std::size_t b = 0; b < width; ++b) {
            if (b >= row.size() || row[b].count == 0) {
                out += '.';
            } else if (row[b].count * 2 <
                       static_cast<std::uint32_t>(bucketCycles)) {
                out += '-';  // busy less than half the bucket
            } else {
                out += threadGlyph(row[b].thread);
            }
        }
        out += "|\n";
    }
    out += format("      (one column = %llu cycles; digit/letter = thread"
                  " slot busy most of the\n       bucket, '-' partly "
                  "busy, '.' idle, '*' several threads)\n",
                  (unsigned long long)bucketCycles);
    return out;
}

double
TimelineTracer::occupancy() const
{
    std::uint64_t capacity = 0;
    std::uint64_t issued = 0;
    for (const auto &[proc, row] : grid) {
        capacity += row.size() * bucketCycles;
        for (const Cell &c : row)
            issued += c.count;
    }
    return capacity ? static_cast<double>(issued) /
                          static_cast<double>(capacity)
                    : 0.0;
}

} // namespace mts
