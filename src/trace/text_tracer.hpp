/**
 * @file
 * Human-readable instruction/event trace writer.
 */
#ifndef MTS_TRACE_TEXT_TRACER_HPP
#define MTS_TRACE_TEXT_TRACER_HPP

#include <ostream>

#include "trace/tracer.hpp"

namespace mts
{

/**
 * Streams one line per event:
 *
 *     [   1234] p02.t05 @17    lds r1, 0(r8)
 *     [   1234] p02     switch t05 -> t06 (load, wake 1434)
 *
 * Use the cycle window and event cap to keep traces readable.
 */
class TextTracer : public Tracer
{
  public:
    explicit TextTracer(std::ostream &os_, Cycle fromCycle = 0,
                        Cycle toCycle = ~Cycle(0),
                        std::uint64_t maxEvents = 100000)
        : os(os_), from(fromCycle), to(toCycle), remaining(maxEvents)
    {
    }

    void onInstruction(Cycle cycle, std::uint16_t proc,
                       std::uint32_t thread, std::int32_t pc,
                       const Instruction &inst) override;
    void onSwitch(Cycle cycle, std::uint16_t proc, std::uint32_t fromTh,
                  std::uint32_t toTh, Cycle wakeAt,
                  SwitchReason reason) override;
    void onSchedEvent(Cycle cycle, std::uint16_t proc,
                      SchedEventKind kind, std::uint32_t gid,
                      Cycle detail) override;
    void onSharedAccess(Cycle cycle, std::uint16_t proc,
                        std::uint32_t thread, const MemOp &op) override;

    std::uint64_t
    eventsEmitted() const
    {
        return emitted;
    }

  private:
    bool accept(Cycle cycle);

    std::ostream &os;
    Cycle from;
    Cycle to;
    std::uint64_t remaining;
    std::uint64_t emitted = 0;
};

} // namespace mts

#endif // MTS_TRACE_TEXT_TRACER_HPP
