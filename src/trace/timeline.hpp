/**
 * @file
 * ASCII occupancy timeline: which thread ran on each processor, cycle
 * bucket by cycle bucket — the latency-hiding picture of the paper made
 * visible in a terminal.
 */
#ifndef MTS_TRACE_TIMELINE_HPP
#define MTS_TRACE_TIMELINE_HPP

#include <map>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace mts
{

/**
 * Collects per-processor occupancy. Each bucket of @p bucketCycles shows
 * the thread that issued instructions in it ('0'-'9', 'a'-'z', '*' when
 * several did) or '.' when the processor was idle the whole bucket.
 */
class TimelineTracer : public Tracer
{
  public:
    explicit TimelineTracer(Cycle bucketCycles_ = 50)
        : bucketCycles(bucketCycles_ ? bucketCycles_ : 1)
    {
    }

    void
    onInstruction(Cycle cycle, std::uint16_t proc, std::uint32_t thread,
                  std::int32_t pc, const Instruction &inst) override
    {
        (void)pc;
        (void)inst;
        auto bucket = static_cast<std::size_t>(cycle / bucketCycles);
        auto &row = grid[proc];
        if (row.size() <= bucket)
            row.resize(bucket + 1);
        Cell &cell = row[bucket];
        if (cell.count == 0)
            cell.thread = static_cast<std::int64_t>(thread);
        else if (cell.thread != static_cast<std::int64_t>(thread))
            cell.thread = kMixed;
        ++cell.count;
    }

    std::uint64_t
    switches() const
    {
        return switchCount;
    }

    void
    onSwitch(Cycle, std::uint16_t, std::uint32_t, std::uint32_t, Cycle,
             SwitchReason) override
    {
        ++switchCount;
    }

    /** Virtual-threading scheduler actions observed (0 when 1:1). */
    std::uint64_t
    schedEvents() const
    {
        return schedEventCount;
    }

    void
    onSchedEvent(Cycle, std::uint16_t, SchedEventKind, std::uint32_t,
                 Cycle) override
    {
        ++schedEventCount;
    }

    /** Render rows "p00 |0000...1111|"; at most @p maxColumns buckets. */
    std::string render(std::size_t maxColumns = 120) const;

    /** Fraction of buckets with at least one instruction. */
    double occupancy() const;

  private:
    static constexpr std::int64_t kMixed = -2;

    /** One bucket: dominant thread plus issued-instruction count. */
    struct Cell
    {
        std::int64_t thread = -1;
        std::uint32_t count = 0;
    };

    Cycle bucketCycles;
    std::map<std::uint16_t, std::vector<Cell>> grid;
    std::uint64_t switchCount = 0;
    std::uint64_t schedEventCount = 0;
};

} // namespace mts

#endif // MTS_TRACE_TIMELINE_HPP
