/**
 * @file
 * Execution tracing hooks.
 *
 * A Tracer registered in MachineConfig receives instruction, context-
 * switch and shared-memory events as the simulation runs. The hooks are
 * virtual calls behind a null check, so tracing costs nothing when off.
 */
#ifndef MTS_TRACE_TRACER_HPP
#define MTS_TRACE_TRACER_HPP

#include <cstdint>

#include "isa/instruction.hpp"
#include "mem/event_queue.hpp"

namespace mts
{

class MetricsRegistry;

/** Why a processor switched threads. */
enum class SwitchReason
{
    Load,       ///< switch-on-load style (the access itself)
    Use,        ///< use of an in-flight value
    Explicit,   ///< cswitch taken
    SliceLimit, ///< run-length limit expired
    EveryCycle, ///< switch-every-cycle rotation
    Halt        ///< thread terminated
};

/** Printable name of a switch reason. */
const char *switchReasonName(SwitchReason reason);

/** Receiver of simulation events (all hooks optional). */
class Tracer
{
  public:
    virtual ~Tracer() = default;

    /** An instruction issued at @p cycle. */
    virtual void
    onInstruction(Cycle cycle, std::uint16_t proc, std::uint32_t thread,
                  std::int32_t pc, const Instruction &inst)
    {
        (void)cycle;
        (void)proc;
        (void)thread;
        (void)pc;
        (void)inst;
    }

    /**
     * A context switch: @p from yields at @p cycle (resuming no earlier
     * than @p wakeAt) and @p to becomes current.
     */
    virtual void
    onSwitch(Cycle cycle, std::uint16_t proc, std::uint32_t from,
             std::uint32_t to, Cycle wakeAt, SwitchReason reason)
    {
        (void)cycle;
        (void)proc;
        (void)from;
        (void)to;
        (void)wakeAt;
        (void)reason;
    }

    /** A shared access issued into the network. */
    virtual void
    onSharedAccess(Cycle cycle, std::uint16_t proc, std::uint32_t thread,
                   const MemOp &op)
    {
        (void)cycle;
        (void)proc;
        (void)thread;
        (void)op;
    }

    /**
     * The run completed at @p cycle and its metrics were published:
     * @p metrics holds every per-processor scope plus the rolled-up
     * totals (see metrics/metrics.hpp). Called once, after the event
     * loop drains and before Machine::run returns.
     */
    virtual void
    onMetricsSnapshot(Cycle cycle, const MetricsRegistry &metrics)
    {
        (void)cycle;
        (void)metrics;
    }
};

} // namespace mts

#endif // MTS_TRACE_TRACER_HPP
