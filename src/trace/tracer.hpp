/**
 * @file
 * Execution tracing hooks.
 *
 * A Tracer registered in MachineConfig receives instruction, context-
 * switch and shared-memory events as the simulation runs. The hooks are
 * virtual calls behind a null check, so tracing costs nothing when off.
 */
#ifndef MTS_TRACE_TRACER_HPP
#define MTS_TRACE_TRACER_HPP

#include <cstdint>

#include "isa/instruction.hpp"
#include "mem/event_queue.hpp"

namespace mts
{

class MetricsRegistry;

/** Why a processor switched threads. */
enum class SwitchReason
{
    Load,       ///< switch-on-load style (the access itself)
    Use,        ///< use of an in-flight value
    Explicit,   ///< cswitch taken
    SliceLimit, ///< run-length limit expired
    EveryCycle, ///< switch-every-cycle rotation
    Halt        ///< thread terminated
};

/** Printable name of a switch reason. */
const char *switchReasonName(SwitchReason reason);

/**
 * Virtual-threading scheduler actions (software threads over hardware
 * contexts; only emitted when MachineConfig::swThreadsPerProc > 0).
 */
enum class SchedEventKind
{
    Preempt,  ///< quantum expired with a ready waiter; thread evicted
    Save,     ///< preempted context saved (detail = cycles charged)
    Restore,  ///< incoming context restored (detail = cycles charged)
    Requeue,  ///< thread placed on the run queue (detail = queue depth)
    Install   ///< queued thread installed (detail = its wake cycle)
};

/** Printable name of a scheduler event kind. */
const char *schedEventName(SchedEventKind kind);

/** What a shared data access does, as seen by the race detector. */
enum class SharedDataKind : std::uint8_t
{
    Read,      ///< lds / flds / ldsd / fldsd
    SpinRead,  ///< lds.spin — the acquire side of a sync idiom
    Write,     ///< sts / fsts
    Rmw        ///< faa — atomic read-modify-write (release + acquire)
};

/** Receiver of simulation events (all hooks optional). */
class Tracer
{
  public:
    virtual ~Tracer() = default;

    /** An instruction issued at @p cycle. */
    virtual void
    onInstruction(Cycle cycle, std::uint16_t proc, std::uint32_t thread,
                  std::int32_t pc, const Instruction &inst)
    {
        (void)cycle;
        (void)proc;
        (void)thread;
        (void)pc;
        (void)inst;
    }

    /**
     * A context switch: @p from yields at @p cycle (resuming no earlier
     * than @p wakeAt) and @p to becomes current.
     */
    virtual void
    onSwitch(Cycle cycle, std::uint16_t proc, std::uint32_t from,
             std::uint32_t to, Cycle wakeAt, SwitchReason reason)
    {
        (void)cycle;
        (void)proc;
        (void)from;
        (void)to;
        (void)wakeAt;
        (void)reason;
    }

    /**
     * A virtual-threading scheduler action on @p proc at @p cycle.
     * @p gid is the machine-wide id of the software thread acted on;
     * @p detail depends on the kind (see SchedEventKind).
     */
    virtual void
    onSchedEvent(Cycle cycle, std::uint16_t proc, SchedEventKind kind,
                 std::uint32_t gid, Cycle detail)
    {
        (void)cycle;
        (void)proc;
        (void)kind;
        (void)gid;
        (void)detail;
    }

    /** A shared access issued into the network. */
    virtual void
    onSharedAccess(Cycle cycle, std::uint16_t proc, std::uint32_t thread,
                   const MemOp &op)
    {
        (void)cycle;
        (void)proc;
        (void)thread;
        (void)op;
    }

    /**
     * A shared *data* access at the moment its effect is applied to the
     * memory module — i.e. in the memory system's true serialization
     * order, the one the returned fetch-add values witness. Calls for
     * the same processor arrive in that processor's issue (program)
     * order; calls across processors arrive in global arrival order.
     * @p cycle is the arrival time, @p gid the machine-wide thread id;
     * @p words is 1, or 2 for the paired ldsd/fldsd. Accesses satisfied
     * without a memory message (cache or group-estimate hits) are not
     * reported, so happens-before observers should run on cache-less
     * configurations.
     */
    virtual void
    onSharedData(Cycle cycle, std::uint16_t proc, std::uint32_t gid,
                 std::int32_t pc, Addr addr, SharedDataKind kind,
                 int words)
    {
        (void)cycle;
        (void)proc;
        (void)gid;
        (void)pc;
        (void)addr;
        (void)kind;
        (void)words;
    }

    /**
     * The run completed at @p cycle and its metrics were published:
     * @p metrics holds every per-processor scope plus the rolled-up
     * totals (see metrics/metrics.hpp). Called once, after the event
     * loop drains and before Machine::run returns.
     */
    virtual void
    onMetricsSnapshot(Cycle cycle, const MetricsRegistry &metrics)
    {
        (void)cycle;
        (void)metrics;
    }
};

} // namespace mts

#endif // MTS_TRACE_TRACER_HPP
