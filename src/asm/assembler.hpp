/**
 * @file
 * Two-pass assembler for MTS assembly.
 *
 * Syntax overview (see README for the full reference):
 *
 *     ; comment
 *     .entry main
 *     .shared grid, N*N        ; shared static array, N*N words
 *     .local  buf, 64          ; per-thread local static array
 *     .const  N, 128           ; default; host -D defines take precedence
 *
 *     main:
 *         la   r8, grid
 *         lds  r9, 0(r8)       ; shared load
 *         lds  r10, 1(r8)
 *         cswitch              ; explicit context switch (one per group)
 *         add  r11, r9, r10
 *         halt
 *
 * Register aliases: zero(r0), v0/v1(r2/r3), a0-a3(r4-r7), t0-t7(r8-r15),
 * s0-s7(r16-r23), t8/t9(r24/r25), sp(r29), fp(r30), ra(r31).
 * Pseudo-instructions: mv, la, beqz, bnez, bgt, ble, call, ret.
 */
#ifndef MTS_ASM_ASSEMBLER_HPP
#define MTS_ASM_ASSEMBLER_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "asm/program.hpp"

namespace mts
{

/** Host-side assembly options. */
struct AsmOptions
{
    /**
     * Constant definitions that override `.const` defaults in the source —
     * the mechanism workload generators use to set problem sizes.
     */
    std::unordered_map<std::string, std::int64_t> defines;
};

/**
 * Assemble MTS assembly source into a Program.
 *
 * @throws FatalError on any syntax or semantic error, with line numbers.
 */
Program assemble(std::string_view source, const AsmOptions &options = {});

} // namespace mts

#endif // MTS_ASM_ASSEMBLER_HPP
