/**
 * @file
 * Line-oriented lexer for MTS assembly source.
 */
#ifndef MTS_ASM_LEXER_HPP
#define MTS_ASM_LEXER_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mts
{

/** Token kinds produced by the assembly lexer. */
enum class TokKind
{
    Ident,    ///< mnemonic, register, symbol, directive (with leading '.')
    Int,      ///< integer literal (decimal or 0x hex)
    Float,    ///< floating literal (has '.' or exponent)
    Punct,    ///< one of , ( ) : + - * / % or << >>
    End       ///< end of line
};

/** One lexed token. */
struct Token
{
    TokKind kind = TokKind::End;
    std::string text;          ///< identifier / punctuation spelling
    std::int64_t intValue = 0;
    double floatValue = 0.0;
};

/**
 * Tokenize one source line. Comments start with ';' or '#' and run to end
 * of line. Throws FatalError on malformed literals.
 *
 * @param line    The raw source line.
 * @param lineNo  1-based line number for diagnostics.
 */
std::vector<Token> lexLine(std::string_view line, std::uint32_t lineNo);

} // namespace mts

#endif // MTS_ASM_LEXER_HPP
