#include "asm/assembler.hpp"

#include <optional>

#include "asm/lexer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

/** Register aliases accepted in addition to r0..r31 / f0..f31. */
const std::unordered_map<std::string, std::uint8_t> kIntAliases = {
    {"zero", 0}, {"v0", 2},  {"v1", 3},  {"a0", 4},  {"a1", 5},
    {"a2", 6},   {"a3", 7},  {"t0", 8},  {"t1", 9},  {"t2", 10},
    {"t3", 11},  {"t4", 12}, {"t5", 13}, {"t6", 14}, {"t7", 15},
    {"s0", 16},  {"s1", 17}, {"s2", 18}, {"s3", 19}, {"s4", 20},
    {"s5", 21},  {"s6", 22}, {"s7", 23}, {"t8", 24}, {"t9", 25},
    {"sp", 29},  {"fp", 30}, {"ra", 31},
};

/** A pre-scanned statement: one instruction's tokens plus its line. */
struct RawInstr
{
    std::vector<Token> tokens;
    std::uint32_t line;
};

/** Parse context for one instruction. */
class Cursor
{
  public:
    Cursor(const RawInstr &raw) : toks(raw.tokens), line(raw.line) {}

    const Token &
    peek() const
    {
        return toks[pos];
    }

    const Token &
    take()
    {
        const Token &t = toks[pos];
        if (t.kind != TokKind::End)
            ++pos;
        return t;
    }

    bool
    tryPunct(std::string_view p)
    {
        if (peek().kind == TokKind::Punct && peek().text == p) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    expectPunct(std::string_view p)
    {
        if (!tryPunct(p))
            MTS_FATAL("line " << line << ": expected '" << p
                              << "', found '" << peek().text << "'");
    }

    void
    expectEnd()
    {
        if (peek().kind != TokKind::End)
            MTS_FATAL("line " << line << ": trailing junk '"
                              << peek().text << "'");
    }

    std::uint32_t lineNo() const { return line; }

  private:
    const std::vector<Token> &toks;
    std::size_t pos = 0;
    std::uint32_t line;
};

/** Try to interpret an identifier as a register; nullopt otherwise. */
std::optional<std::pair<bool, std::uint8_t>>
asRegister(const std::string &name)
{
    auto alias = kIntAliases.find(name);
    if (alias != kIntAliases.end())
        return std::make_pair(false, alias->second);
    if (name.size() >= 2 && name.size() <= 3 &&
        (name[0] == 'r' || name[0] == 'f')) {
        bool digits = true;
        int v = 0;
        for (std::size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
                digits = false;
                break;
            }
            v = v * 10 + (name[i] - '0');
        }
        if (digits && v < 32)
            return std::make_pair(name[0] == 'f', static_cast<uint8_t>(v));
    }
    return std::nullopt;
}

class Assembler
{
  public:
    Assembler(std::string_view source, const AsmOptions &options)
        : src(source), opts(options)
    {
    }

    Program
    run()
    {
        scan();
        parseAll();
        resolveEntry();
        return std::move(prog);
    }

  private:
    // ---- pass 1: scan lines, build symbols, count instructions ----

    void
    scan()
    {
        // Host defines become Const symbols first so .const won't override.
        for (const auto &[name, value] : opts.defines)
            defineSymbol(name, {SymbolKind::Const, value, 0}, 0);

        std::uint32_t lineNo = 0;
        std::size_t start = 0;
        while (start <= src.size()) {
            std::size_t end = src.find('\n', start);
            if (end == std::string_view::npos)
                end = src.size();
            ++lineNo;
            prog.sourceLines.emplace_back(src.substr(start, end - start));
            scanLine(src.substr(start, end - start), lineNo);
            start = end + 1;
        }
    }

    void
    scanLine(std::string_view line, std::uint32_t lineNo)
    {
        std::vector<Token> toks = lexLine(line, lineNo);
        std::size_t pos = 0;

        // Leading "label:" definitions (possibly several).
        while (toks[pos].kind == TokKind::Ident && toks[pos].text[0] != '.' &&
               pos + 1 < toks.size() && toks[pos + 1].kind == TokKind::Punct &&
               toks[pos + 1].text == ":") {
            auto index = static_cast<std::int64_t>(raw.size());
            defineSymbol(toks[pos].text, {SymbolKind::Label, index, 0},
                         lineNo);
            pendingLabels.push_back(toks[pos].text);
            pos += 2;
        }

        if (toks[pos].kind == TokKind::End)
            return;

        if (toks[pos].kind == TokKind::Ident && toks[pos].text[0] == '.') {
            directive(toks, pos, lineNo);
            return;
        }

        // Instruction: record tokens for pass 2.
        RawInstr ri;
        ri.tokens.assign(toks.begin() + static_cast<std::ptrdiff_t>(pos),
                         toks.end());
        ri.line = lineNo;
        for (const auto &lbl : pendingLabels)
            prog.labelAt[static_cast<std::int32_t>(raw.size())] = lbl;
        pendingLabels.clear();
        raw.push_back(std::move(ri));
    }

    void
    directive(std::vector<Token> &toks, std::size_t pos,
              std::uint32_t lineNo)
    {
        const std::string &name = toks[pos].text;
        RawInstr ri;
        ri.tokens.assign(toks.begin() + static_cast<std::ptrdiff_t>(pos + 1),
                         toks.end());
        ri.line = lineNo;
        Cursor cur(ri);

        if (name == ".entry") {
            entryName = cur.take().text;
            MTS_REQUIRE(!entryName.empty(),
                        "line " << lineNo << ": .entry needs a label");
        } else if (name == ".shared" || name == ".local") {
            std::string sym = cur.take().text;
            cur.expectPunct(",");
            std::int64_t words = parseExpr(cur);
            MTS_REQUIRE(words > 0, "line " << lineNo << ": size of '"
                                           << sym << "' must be positive");
            if (name == ".shared") {
                Addr addr = kSharedBase + prog.sharedWords;
                defineSymbol(sym,
                             {SymbolKind::Shared,
                              static_cast<std::int64_t>(addr),
                              static_cast<std::uint64_t>(words)},
                             lineNo);
                prog.sharedWords += static_cast<Addr>(words);
            } else {
                // Local statics start at word 16 (0..15 trap null-ish use).
                Addr addr = 16 + prog.localStaticWords;
                defineSymbol(sym,
                             {SymbolKind::Local,
                              static_cast<std::int64_t>(addr),
                              static_cast<std::uint64_t>(words)},
                             lineNo);
                prog.localStaticWords += static_cast<Addr>(words);
            }
            cur.expectEnd();
        } else if (name == ".const") {
            std::string sym = cur.take().text;
            cur.expectPunct(",");
            std::int64_t value = parseExpr(cur);
            // Host -D takes precedence; otherwise first .const wins.
            if (!prog.symbols.count(sym))
                defineSymbol(sym, {SymbolKind::Const, value, 0}, lineNo);
            cur.expectEnd();
        } else {
            MTS_FATAL("line " << lineNo << ": unknown directive '" << name
                              << "'");
        }
    }

    void
    defineSymbol(const std::string &name, Symbol sym, std::uint32_t lineNo)
    {
        if (sym.kind != SymbolKind::Const && prog.symbols.count(name))
            MTS_FATAL("line " << lineNo << ": duplicate symbol '" << name
                              << "'");
        prog.symbols[name] = sym;
    }

    // ---- expression evaluation (needs the symbol table) ----

    std::int64_t
    parseExpr(Cursor &cur)
    {
        std::int64_t v = parseTerm(cur);
        while (true) {
            if (cur.tryPunct("+"))
                v += parseTerm(cur);
            else if (cur.tryPunct("-"))
                v -= parseTerm(cur);
            else
                return v;
        }
    }

    std::int64_t
    parseTerm(Cursor &cur)
    {
        std::int64_t v = parseFactor(cur);
        while (true) {
            if (cur.tryPunct("*")) {
                v *= parseFactor(cur);
            } else if (cur.tryPunct("/")) {
                std::int64_t d = parseFactor(cur);
                MTS_REQUIRE(d != 0, "line " << cur.lineNo()
                                            << ": division by zero");
                v /= d;
            } else if (cur.tryPunct("%")) {
                std::int64_t d = parseFactor(cur);
                MTS_REQUIRE(d != 0, "line " << cur.lineNo()
                                            << ": modulo by zero");
                v %= d;
            } else if (cur.tryPunct("<<")) {
                v <<= parseFactor(cur);
            } else if (cur.tryPunct(">>")) {
                v >>= parseFactor(cur);
            } else {
                return v;
            }
        }
    }

    std::int64_t
    parseFactor(Cursor &cur)
    {
        if (cur.tryPunct("-"))
            return -parseFactor(cur);
        if (cur.tryPunct("(")) {
            std::int64_t v = parseExpr(cur);
            cur.expectPunct(")");
            return v;
        }
        const Token &t = cur.take();
        if (t.kind == TokKind::Int)
            return t.intValue;
        if (t.kind == TokKind::Ident) {
            auto it = prog.symbols.find(t.text);
            if (it == prog.symbols.end())
                MTS_FATAL("line " << cur.lineNo() << ": unknown symbol '"
                                  << t.text << "'");
            MTS_REQUIRE(it->second.kind != SymbolKind::Label,
                        "line " << cur.lineNo() << ": label '" << t.text
                                << "' used in an expression");
            return it->second.value;
        }
        MTS_FATAL("line " << cur.lineNo()
                          << ": expected expression, found '" << t.text
                          << "'");
    }

    // ---- pass 2: parse instructions ----

    void
    parseAll()
    {
        prog.code.reserve(raw.size());
        for (const auto &ri : raw) {
            Cursor cur(ri);
            prog.code.push_back(parseInstr(cur));
            cur.expectEnd();
        }
    }

    std::uint8_t
    expectReg(Cursor &cur, bool fp)
    {
        const Token &t = cur.take();
        if (t.kind == TokKind::Ident) {
            auto reg = asRegister(t.text);
            if (reg && reg->first == fp)
                return reg->second;
            if (reg)
                MTS_FATAL("line " << cur.lineNo() << ": expected "
                                  << (fp ? "fp" : "integer")
                                  << " register, found '" << t.text << "'");
        }
        MTS_FATAL("line " << cur.lineNo() << ": expected register, found '"
                          << t.text << "'");
    }

    /** Third ALU/branch operand: register or immediate expression. */
    void
    regOrImm(Cursor &cur, Instruction &inst)
    {
        const Token &t = cur.peek();
        if (t.kind == TokKind::Ident) {
            auto reg = asRegister(t.text);
            if (reg) {
                MTS_REQUIRE(!reg->first, "line " << cur.lineNo()
                                                 << ": fp register in "
                                                    "integer operand");
                inst.rs2 = reg->second;
                cur.take();
                return;
            }
        }
        inst.useImm = true;
        inst.imm = parseExpr(cur);
    }

    /** Memory operand "expr(reg)" or bare "expr" (base r0). */
    void
    memOperand(Cursor &cur, Instruction &inst)
    {
        // A leading "(reg)" with no displacement is also accepted.
        if (cur.peek().kind == TokKind::Punct && cur.peek().text == "(") {
            inst.imm = 0;
        } else {
            inst.imm = parseExprNoParenCall(cur);
        }
        if (cur.tryPunct("(")) {
            inst.rs1 = expectReg(cur, false);
            cur.expectPunct(")");
        } else {
            inst.rs1 = kRegZero;
        }
    }

    /**
     * Expression for a memory displacement. The usual grammar would eat the
     * '(' of "(reg)", so factor-level parentheses are disabled when the
     * next token could start the base-register suffix.
     */
    std::int64_t
    parseExprNoParenCall(Cursor &cur)
    {
        // Simplest correct approach: parse a term chain that never treats
        // '(' as grouping at the top level. An inner group is still fine
        // after an operator, e.g. "8*(N+1)(r4)".
        std::int64_t v = parseFactorNoParen(cur);
        while (true) {
            if (cur.tryPunct("+"))
                v += parseTerm(cur);
            else if (cur.tryPunct("-"))
                v -= parseTerm(cur);
            else if (cur.tryPunct("*"))
                v *= parseFactor(cur);
            else if (cur.tryPunct("/")) {
                std::int64_t d = parseFactor(cur);
                MTS_REQUIRE(d != 0, "line " << cur.lineNo()
                                            << ": division by zero");
                v /= d;
            } else
                return v;
        }
    }

    std::int64_t
    parseFactorNoParen(Cursor &cur)
    {
        if (cur.tryPunct("-"))
            return -parseFactorNoParen(cur);
        const Token &t = cur.take();
        if (t.kind == TokKind::Int)
            return t.intValue;
        if (t.kind == TokKind::Ident) {
            auto it = prog.symbols.find(t.text);
            if (it == prog.symbols.end())
                MTS_FATAL("line " << cur.lineNo() << ": unknown symbol '"
                                  << t.text << "'");
            MTS_REQUIRE(it->second.kind != SymbolKind::Label,
                        "line " << cur.lineNo() << ": label '" << t.text
                                << "' used in an expression");
            return it->second.value;
        }
        MTS_FATAL("line " << cur.lineNo()
                          << ": expected displacement, found '" << t.text
                          << "'");
    }

    std::int32_t
    branchTarget(Cursor &cur)
    {
        const Token &t = cur.take();
        MTS_REQUIRE(t.kind == TokKind::Ident,
                    "line " << cur.lineNo() << ": expected label, found '"
                            << t.text << "'");
        auto it = prog.symbols.find(t.text);
        if (it == prog.symbols.end() ||
            it->second.kind != SymbolKind::Label)
            MTS_FATAL("line " << cur.lineNo() << ": unknown label '"
                              << t.text << "'");
        return static_cast<std::int32_t>(it->second.value);
    }

    Instruction
    parseInstr(Cursor &cur)
    {
        const Token &mn = cur.take();
        MTS_REQUIRE(mn.kind == TokKind::Ident,
                    "line " << cur.lineNo() << ": expected mnemonic");
        Instruction inst;
        inst.srcLine = cur.lineNo();
        const std::string &m = mn.text;

        // ---- pseudo-instructions ----
        if (m == "mv") {
            inst.op = Opcode::ADD;
            inst.rd = expectReg(cur, false);
            cur.expectPunct(",");
            inst.rs1 = expectReg(cur, false);
            inst.useImm = true;
            inst.imm = 0;
            return inst;
        }
        if (m == "la") {
            inst.op = Opcode::LI;
            inst.rd = expectReg(cur, false);
            cur.expectPunct(",");
            inst.imm = parseExpr(cur);
            return inst;
        }
        if (m == "beqz" || m == "bnez") {
            inst.op = (m == "beqz") ? Opcode::BEQ : Opcode::BNE;
            inst.rs1 = expectReg(cur, false);
            cur.expectPunct(",");
            inst.rs2 = kRegZero;
            inst.target = branchTarget(cur);
            return inst;
        }
        if (m == "bgt" || m == "ble") {
            inst.op = (m == "bgt") ? Opcode::BLT : Opcode::BGE;
            std::uint8_t a = expectReg(cur, false);
            cur.expectPunct(",");
            std::uint8_t b = expectReg(cur, false);
            cur.expectPunct(",");
            inst.rs1 = b;  // swapped operands
            inst.rs2 = a;
            inst.target = branchTarget(cur);
            return inst;
        }
        if (m == "call") {
            inst.op = Opcode::JAL;
            inst.target = branchTarget(cur);
            return inst;
        }
        if (m == "ret") {
            inst.op = Opcode::JR;
            inst.rs1 = kRegRa;
            return inst;
        }

        Opcode op = opcodeFromName(m);
        if (op == Opcode::NUM_OPCODES)
            MTS_FATAL("line " << cur.lineNo() << ": unknown mnemonic '" << m
                              << "'");
        inst.op = op;

        switch (op) {
          case Opcode::NOP:
          case Opcode::HALT:
          case Opcode::CSWITCH:
            return inst;

          case Opcode::ADD:
          case Opcode::SUB:
          case Opcode::MUL:
          case Opcode::DIV:
          case Opcode::REM:
          case Opcode::AND:
          case Opcode::OR:
          case Opcode::XOR:
          case Opcode::SLL:
          case Opcode::SRL:
          case Opcode::SRA:
          case Opcode::SLT:
          case Opcode::SLE:
          case Opcode::SEQ:
          case Opcode::SNE:
            inst.rd = expectReg(cur, false);
            cur.expectPunct(",");
            inst.rs1 = expectReg(cur, false);
            cur.expectPunct(",");
            regOrImm(cur, inst);
            return inst;

          case Opcode::LI:
            inst.rd = expectReg(cur, false);
            cur.expectPunct(",");
            inst.imm = parseExpr(cur);
            return inst;

          case Opcode::FLI: {
            inst.rd = expectReg(cur, true);
            cur.expectPunct(",");
            bool neg = cur.tryPunct("-");
            const Token &v = cur.take();
            if (v.kind == TokKind::Float)
                inst.fimm = v.floatValue;
            else if (v.kind == TokKind::Int)
                inst.fimm = static_cast<double>(v.intValue);
            else
                MTS_FATAL("line " << cur.lineNo()
                                  << ": expected numeric literal");
            if (neg)
                inst.fimm = -inst.fimm;
            return inst;
          }

          case Opcode::FADD:
          case Opcode::FSUB:
          case Opcode::FMUL:
          case Opcode::FDIV:
          case Opcode::FMIN:
          case Opcode::FMAX:
            inst.rd = expectReg(cur, true);
            cur.expectPunct(",");
            inst.rs1 = expectReg(cur, true);
            cur.expectPunct(",");
            inst.rs2 = expectReg(cur, true);
            return inst;

          case Opcode::FSQRT:
          case Opcode::FNEG:
          case Opcode::FABS:
          case Opcode::FMV:
            inst.rd = expectReg(cur, true);
            cur.expectPunct(",");
            inst.rs1 = expectReg(cur, true);
            return inst;

          case Opcode::CVTIF:
            inst.rd = expectReg(cur, true);
            cur.expectPunct(",");
            inst.rs1 = expectReg(cur, false);
            return inst;

          case Opcode::CVTFI:
            inst.rd = expectReg(cur, false);
            cur.expectPunct(",");
            inst.rs1 = expectReg(cur, true);
            return inst;

          case Opcode::FEQ:
          case Opcode::FLT:
          case Opcode::FLE:
            inst.rd = expectReg(cur, false);
            cur.expectPunct(",");
            inst.rs1 = expectReg(cur, true);
            cur.expectPunct(",");
            inst.rs2 = expectReg(cur, true);
            return inst;

          case Opcode::BEQ:
          case Opcode::BNE:
          case Opcode::BLT:
          case Opcode::BGE:
            inst.rs1 = expectReg(cur, false);
            cur.expectPunct(",");
            regOrImm(cur, inst);
            cur.expectPunct(",");
            inst.target = branchTarget(cur);
            return inst;

          case Opcode::J:
          case Opcode::JAL:
            inst.target = branchTarget(cur);
            return inst;

          case Opcode::JR:
            inst.rs1 = expectReg(cur, false);
            return inst;

          case Opcode::LDL:
          case Opcode::LDS:
          case Opcode::LDS_SPIN:
          case Opcode::LDSD:
            inst.rd = expectReg(cur, false);
            cur.expectPunct(",");
            memOperand(cur, inst);
            if (op == Opcode::LDSD)
                MTS_REQUIRE(inst.rd < 31,
                            "line " << cur.lineNo()
                                    << ": ldsd needs rd < r31");
            return inst;

          case Opcode::FLDL:
          case Opcode::FLDS:
          case Opcode::FLDSD:
            inst.rd = expectReg(cur, true);
            cur.expectPunct(",");
            memOperand(cur, inst);
            if (op == Opcode::FLDSD)
                MTS_REQUIRE(inst.rd < 31,
                            "line " << cur.lineNo()
                                    << ": fldsd needs fd < f31");
            return inst;

          case Opcode::STL:
          case Opcode::STS:
            inst.rs2 = expectReg(cur, false);
            cur.expectPunct(",");
            memOperand(cur, inst);
            return inst;

          case Opcode::FSTL:
          case Opcode::FSTS:
            inst.rs2 = expectReg(cur, true);
            cur.expectPunct(",");
            memOperand(cur, inst);
            return inst;

          case Opcode::FAA:
            inst.rd = expectReg(cur, false);
            cur.expectPunct(",");
            memOperand(cur, inst);
            cur.expectPunct(",");
            inst.rs2 = expectReg(cur, false);
            return inst;

          case Opcode::SETPRI:
            inst.imm = parseExpr(cur);
            MTS_REQUIRE(inst.imm == 0 || inst.imm == 1,
                        "line " << cur.lineNo()
                                << ": setpri takes 0 or 1");
            return inst;

          case Opcode::PRINT:
            inst.rs1 = expectReg(cur, false);
            return inst;

          case Opcode::FPRINT:
            inst.rs1 = expectReg(cur, true);
            return inst;

          default:
            MTS_FATAL("line " << cur.lineNo()
                              << ": unsupported mnemonic '" << m << "'");
        }
    }

    void
    resolveEntry()
    {
        MTS_REQUIRE(!prog.code.empty(), "program has no instructions");
        if (entryName.empty()) {
            prog.entry = 0;
            return;
        }
        auto it = prog.symbols.find(entryName);
        MTS_REQUIRE(it != prog.symbols.end() &&
                        it->second.kind == SymbolKind::Label,
                    ".entry label '" << entryName << "' not defined");
        prog.entry = static_cast<std::int32_t>(it->second.value);
    }

    std::string_view src;
    const AsmOptions &opts;
    Program prog;
    std::vector<RawInstr> raw;
    std::vector<std::string> pendingLabels;
    std::string entryName;
};

} // namespace

Program
assemble(std::string_view source, const AsmOptions &options)
{
    Assembler assembler(source, options);
    return assembler.run();
}

} // namespace mts
