/**
 * @file
 * Assembled program image: code, symbols, and segment layout.
 */
#ifndef MTS_ASM_PROGRAM_HPP
#define MTS_ASM_PROGRAM_HPP

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/addressing.hpp"
#include "isa/instruction.hpp"

namespace mts
{

/** Kind of a symbol-table entry. */
enum class SymbolKind
{
    Label,   ///< value = instruction index
    Shared,  ///< value = absolute shared word address
    Local,   ///< value = per-thread local word address
    Const    ///< value = integer constant
};

/** One symbol-table entry. */
struct Symbol
{
    SymbolKind kind = SymbolKind::Const;
    std::int64_t value = 0;
    std::uint64_t size = 0;  ///< words reserved (Shared/Local only)
};

/** An assembled program ready to load onto a Machine. */
struct Program
{
    std::vector<Instruction> code;
    std::int32_t entry = 0;            ///< entry instruction index

    Addr sharedWords = 0;              ///< shared-segment size (words)
    Addr localStaticWords = 0;         ///< per-thread local statics (words)

    std::unordered_map<std::string, Symbol> symbols;
    std::map<std::int32_t, std::string> labelAt;  ///< index -> label name

    /**
     * The assembly source, one entry per line (1-based via Instruction
     * srcLine), kept so diagnostics can quote the offending text.
     * Transform passes must propagate it unchanged.
     */
    std::vector<std::string> sourceLines;

    /** Address of a Shared symbol; fatal if missing or wrong kind. */
    Addr sharedAddr(const std::string &name) const;

    /** Value of a Const symbol; fatal if missing or wrong kind. */
    std::int64_t constValue(const std::string &name) const;

    /** Label name at instruction index, or "" if none. */
    std::string labelFor(std::int32_t index) const;

    /** Trimmed source text of 1-based line @p line, or "" if unknown. */
    std::string sourceLine(std::uint32_t line) const;

    /**
     * "label+offset" position of instruction @p index relative to the
     * nearest preceding label ("@index" when the program has no labels).
     */
    std::string positionOf(std::int32_t index) const;

    /** Full disassembly listing (labels + instructions), for tooling. */
    std::string listing() const;
};

} // namespace mts

#endif // MTS_ASM_PROGRAM_HPP
