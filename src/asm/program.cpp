#include "asm/program.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace mts
{

Addr
Program::sharedAddr(const std::string &name) const
{
    auto it = symbols.find(name);
    MTS_REQUIRE(it != symbols.end(), "unknown symbol '" << name << "'");
    MTS_REQUIRE(it->second.kind == SymbolKind::Shared,
                "symbol '" << name << "' is not a shared variable");
    return static_cast<Addr>(it->second.value);
}

std::int64_t
Program::constValue(const std::string &name) const
{
    auto it = symbols.find(name);
    MTS_REQUIRE(it != symbols.end(), "unknown symbol '" << name << "'");
    MTS_REQUIRE(it->second.kind == SymbolKind::Const,
                "symbol '" << name << "' is not a constant");
    return it->second.value;
}

std::string
Program::labelFor(std::int32_t index) const
{
    auto it = labelAt.find(index);
    return it == labelAt.end() ? std::string() : it->second;
}

std::string
Program::sourceLine(std::uint32_t line) const
{
    if (line == 0 || line > sourceLines.size())
        return {};
    return std::string(trim(sourceLines[line - 1]));
}

std::string
Program::positionOf(std::int32_t index) const
{
    auto it = labelAt.upper_bound(index);
    if (it == labelAt.begin())
        return format("@%d", index);
    --it;
    std::int32_t off = index - it->first;
    if (off == 0)
        return it->second;
    return format("%s+%d", it->second.c_str(), off);
}

std::string
Program::listing() const
{
    std::ostringstream os;
    auto resolver = [this](std::int32_t t) { return labelFor(t); };
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::string label = labelFor(static_cast<std::int32_t>(i));
        if (!label.empty())
            os << label << ":\n";
        os << "    " << disassemble(code[i], resolver) << "\n";
    }
    return os.str();
}

} // namespace mts
