#include "asm/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace mts
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

} // namespace

std::vector<Token>
lexLine(std::string_view line, std::uint32_t lineNo)
{
    std::vector<Token> out;
    std::size_t i = 0;
    const std::size_t n = line.size();

    while (i < n) {
        char c = line[i];
        if (c == ';' || c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        Token tok;
        if (isIdentStart(c)) {
            std::size_t start = i;
            while (i < n && isIdentChar(line[i]))
                ++i;
            tok.kind = TokKind::Ident;
            tok.text = std::string(line.substr(start, i - start));
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            bool isFloat = false;
            bool isHex = (c == '0' && i + 1 < n &&
                          (line[i + 1] == 'x' || line[i + 1] == 'X'));
            if (isHex)
                i += 2;
            while (i < n) {
                char d = line[i];
                if (isHex ? std::isxdigit(static_cast<unsigned char>(d))
                          : std::isdigit(static_cast<unsigned char>(d))) {
                    ++i;
                } else if (!isHex && (d == '.' || d == 'e' || d == 'E')) {
                    isFloat = true;
                    ++i;
                    if (i < n && (line[i] == '+' || line[i] == '-') &&
                        (line[i - 1] == 'e' || line[i - 1] == 'E'))
                        ++i;
                } else {
                    break;
                }
            }
            std::string text(line.substr(start, i - start));
            if (isFloat) {
                tok.kind = TokKind::Float;
                tok.floatValue = std::strtod(text.c_str(), nullptr);
            } else {
                tok.kind = TokKind::Int;
                tok.intValue = static_cast<std::int64_t>(
                    std::strtoull(text.c_str(), nullptr, 0));
            }
            tok.text = std::move(text);
        } else if (c == '<' || c == '>') {
            if (i + 1 >= n || line[i + 1] != c)
                MTS_FATAL("line " << lineNo << ": stray '" << c << "'");
            tok.kind = TokKind::Punct;
            tok.text = std::string(2, c);
            i += 2;
        } else if (std::string_view(",():+-*/%=").find(c) !=
                   std::string_view::npos) {
            tok.kind = TokKind::Punct;
            tok.text = std::string(1, c);
            ++i;
        } else {
            MTS_FATAL("line " << lineNo << ": unexpected character '" << c
                              << "'");
        }
        out.push_back(std::move(tok));
    }

    Token end;
    end.kind = TokKind::End;
    out.push_back(std::move(end));
    return out;
}

} // namespace mts
