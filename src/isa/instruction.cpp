#include "isa/instruction.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace mts
{

Operands
getOperands(const Instruction &inst)
{
    Operands ops;
    switch (inst.op) {
      // no register operands
      case Opcode::NOP:
      case Opcode::HALT:
      case Opcode::CSWITCH:
      case Opcode::SETPRI:
      case Opcode::J:
        break;

      case Opcode::JAL:
        ops.addDef(intReg(kRegRa));
        break;

      case Opcode::JR:
        ops.addUse(intReg(inst.rs1));
        break;

      // integer ALU: rd <- rs1 op (rs2|imm)
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::MUL:
      case Opcode::DIV:
      case Opcode::REM:
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
      case Opcode::SLL:
      case Opcode::SRL:
      case Opcode::SRA:
      case Opcode::SLT:
      case Opcode::SLE:
      case Opcode::SEQ:
      case Opcode::SNE:
        ops.addDef(intReg(inst.rd));
        ops.addUse(intReg(inst.rs1));
        if (!inst.useImm)
            ops.addUse(intReg(inst.rs2));
        break;

      case Opcode::LI:
        ops.addDef(intReg(inst.rd));
        break;

      // fp binary: fd <- fs1 op fs2
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::FMIN:
      case Opcode::FMAX:
        ops.addDef(fpReg(inst.rd));
        ops.addUse(fpReg(inst.rs1));
        ops.addUse(fpReg(inst.rs2));
        break;

      // fp unary: fd <- op fs1
      case Opcode::FSQRT:
      case Opcode::FNEG:
      case Opcode::FABS:
      case Opcode::FMV:
        ops.addDef(fpReg(inst.rd));
        ops.addUse(fpReg(inst.rs1));
        break;

      case Opcode::FLI:
        ops.addDef(fpReg(inst.rd));
        break;

      case Opcode::CVTIF:
        ops.addDef(fpReg(inst.rd));
        ops.addUse(intReg(inst.rs1));
        break;

      case Opcode::CVTFI:
        ops.addDef(intReg(inst.rd));
        ops.addUse(fpReg(inst.rs1));
        break;

      // fp compare: rd(int) <- fs1 op fs2
      case Opcode::FEQ:
      case Opcode::FLT:
      case Opcode::FLE:
        ops.addDef(intReg(inst.rd));
        ops.addUse(fpReg(inst.rs1));
        ops.addUse(fpReg(inst.rs2));
        break;

      // branches: use rs1, rs2|imm
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
        ops.addUse(intReg(inst.rs1));
        if (!inst.useImm)
            ops.addUse(intReg(inst.rs2));
        break;

      // integer loads: rd <- M[rs1+imm]
      case Opcode::LDL:
      case Opcode::LDS:
      case Opcode::LDS_SPIN:
        ops.addDef(intReg(inst.rd));
        ops.addUse(intReg(inst.rs1));
        break;

      case Opcode::LDSD:
        ops.addDef(intReg(inst.rd));
        ops.addDef(intReg(inst.rd + 1));
        ops.addUse(intReg(inst.rs1));
        break;

      // fp loads
      case Opcode::FLDL:
      case Opcode::FLDS:
        ops.addDef(fpReg(inst.rd));
        ops.addUse(intReg(inst.rs1));
        break;

      case Opcode::FLDSD:
        ops.addDef(fpReg(inst.rd));
        ops.addDef(fpReg(inst.rd + 1));
        ops.addUse(intReg(inst.rs1));
        break;

      // stores: M[rs1+imm] <- rs2
      case Opcode::STL:
      case Opcode::STS:
        ops.addUse(intReg(inst.rs1));
        ops.addUse(intReg(inst.rs2));
        break;

      case Opcode::FSTL:
      case Opcode::FSTS:
        ops.addUse(intReg(inst.rs1));
        ops.addUse(fpReg(inst.rs2));
        break;

      case Opcode::FAA:
        ops.addDef(intReg(inst.rd));
        ops.addUse(intReg(inst.rs1));
        ops.addUse(intReg(inst.rs2));
        break;

      case Opcode::PRINT:
        ops.addUse(intReg(inst.rs1));
        break;

      case Opcode::FPRINT:
        ops.addUse(fpReg(inst.rs1));
        break;

      default:
        MTS_PANIC("getOperands: unhandled opcode "
                  << static_cast<int>(inst.op));
    }
    return ops;
}

namespace
{

std::string
regName(bool fp, std::uint8_t r)
{
    return format("%c%u", fp ? 'f' : 'r', r);
}

std::string
targetName(const Instruction &inst,
           const std::function<std::string(std::int32_t)> &labelFor)
{
    if (labelFor) {
        std::string s = labelFor(inst.target);
        if (!s.empty())
            return s;
    }
    return format("@%d", inst.target);
}

} // namespace

std::string
disassemble(const Instruction &inst,
            const std::function<std::string(std::int32_t)> &labelFor)
{
    const std::string name(opcodeName(inst.op));
    const Opcode op = inst.op;

    if (op == Opcode::NOP || op == Opcode::HALT || op == Opcode::CSWITCH)
        return name;
    if (op == Opcode::SETPRI)
        return name + format(" %lld", static_cast<long long>(inst.imm));

    if (op == Opcode::J || op == Opcode::JAL)
        return name + " " + targetName(inst, labelFor);
    if (op == Opcode::JR)
        return name + " " + regName(false, inst.rs1);

    if (isBranch(op)) {
        std::string second = inst.useImm
                                 ? format("%lld",
                                          static_cast<long long>(inst.imm))
                                 : regName(false, inst.rs2);
        return name + " " + regName(false, inst.rs1) + ", " + second +
               ", " + targetName(inst, labelFor);
    }

    if (op == Opcode::LI)
        return name + " " + regName(false, inst.rd) +
               format(", %lld", static_cast<long long>(inst.imm));
    if (op == Opcode::FLI)
        return name + " " + regName(true, inst.rd) +
               format(", %g", inst.fimm);

    if (isMem(op)) {
        bool fpVal = op == Opcode::FLDL || op == Opcode::FSTL ||
                     op == Opcode::FLDS || op == Opcode::FSTS ||
                     op == Opcode::FLDSD;
        bool isStore = isLocalStore(op) || isSharedStore(op);
        std::string val = isStore ? regName(fpVal, inst.rs2)
                                  : regName(fpVal, inst.rd);
        std::string addr = format("%lld(%s)",
                                  static_cast<long long>(inst.imm),
                                  regName(false, inst.rs1).c_str());
        if (op == Opcode::FAA)
            return name + " " + regName(false, inst.rd) + ", " + addr +
                   ", " + regName(false, inst.rs2);
        return name + " " + val + ", " + addr;
    }

    if (op == Opcode::PRINT)
        return name + " " + regName(false, inst.rs1);
    if (op == Opcode::FPRINT)
        return name + " " + regName(true, inst.rs1);

    // register/immediate ALU and FP forms
    Operands ops = getOperands(inst);
    bool fpDst = ops.numDefs > 0 && ops.defs[0] >= 32;
    bool fpSrc = isFpOp(op) && op != Opcode::CVTIF;
    std::string out = name + " " +
                      regName(fpDst, inst.rd) + ", " +
                      regName(op == Opcode::CVTIF ? false : fpSrc,
                              inst.rs1);
    bool unary = op == Opcode::FSQRT || op == Opcode::FNEG ||
                 op == Opcode::FABS || op == Opcode::FMV ||
                 op == Opcode::CVTIF || op == Opcode::CVTFI;
    if (!unary) {
        if (inst.useImm)
            out += format(", %lld", static_cast<long long>(inst.imm));
        else
            out += ", " + regName(fpSrc, inst.rs2);
    }
    return out;
}

} // namespace mts
