#include "isa/opcode.hpp"

#include <array>
#include <unordered_map>

#include "util/error.hpp"

namespace mts
{

namespace
{

struct OpInfo
{
    Opcode op;
    std::string_view name;
    int latency;
};

// Latencies follow the MIPS R3000 flavour assumed by the paper: 1-cycle
// integer ALU, long integer multiply/divide, multi-cycle FP that an
// optimizing compiler overlaps with surrounding code.
constexpr std::array<OpInfo, static_cast<std::size_t>(Opcode::NUM_OPCODES)>
    kOpTable = {{
        {Opcode::NOP, "nop", 1},
        {Opcode::HALT, "halt", 1},
        {Opcode::CSWITCH, "cswitch", 1},

        {Opcode::ADD, "add", 1},
        {Opcode::SUB, "sub", 1},
        {Opcode::MUL, "mul", 12},
        {Opcode::DIV, "div", 35},
        {Opcode::REM, "rem", 35},
        {Opcode::AND, "and", 1},
        {Opcode::OR, "or", 1},
        {Opcode::XOR, "xor", 1},
        {Opcode::SLL, "sll", 1},
        {Opcode::SRL, "srl", 1},
        {Opcode::SRA, "sra", 1},
        {Opcode::SLT, "slt", 1},
        {Opcode::SLE, "sle", 1},
        {Opcode::SEQ, "seq", 1},
        {Opcode::SNE, "sne", 1},
        {Opcode::LI, "li", 1},

        {Opcode::FADD, "fadd", 2},
        {Opcode::FSUB, "fsub", 2},
        {Opcode::FMUL, "fmul", 5},
        {Opcode::FDIV, "fdiv", 19},
        {Opcode::FSQRT, "fsqrt", 30},
        {Opcode::FNEG, "fneg", 1},
        {Opcode::FABS, "fabs", 1},
        {Opcode::FMIN, "fmin", 2},
        {Opcode::FMAX, "fmax", 2},
        {Opcode::FMV, "fmv", 1},
        {Opcode::FLI, "fli", 1},
        {Opcode::CVTIF, "cvtif", 3},
        {Opcode::CVTFI, "cvtfi", 3},
        {Opcode::FEQ, "feq", 2},
        {Opcode::FLT, "flt", 2},
        {Opcode::FLE, "fle", 2},

        {Opcode::BEQ, "beq", 1},
        {Opcode::BNE, "bne", 1},
        {Opcode::BLT, "blt", 1},
        {Opcode::BGE, "bge", 1},
        {Opcode::J, "j", 1},
        {Opcode::JAL, "jal", 1},
        {Opcode::JR, "jr", 1},

        {Opcode::LDL, "ldl", 2},
        {Opcode::STL, "stl", 1},
        {Opcode::FLDL, "fldl", 2},
        {Opcode::FSTL, "fstl", 1},

        {Opcode::LDS, "lds", 1},
        {Opcode::STS, "sts", 1},
        {Opcode::FLDS, "flds", 1},
        {Opcode::FSTS, "fsts", 1},
        {Opcode::LDSD, "ldsd", 1},
        {Opcode::FLDSD, "fldsd", 1},
        {Opcode::LDS_SPIN, "lds.spin", 1},
        {Opcode::FAA, "faa", 1},

        {Opcode::SETPRI, "setpri", 1},

        {Opcode::PRINT, "print", 1},
        {Opcode::FPRINT, "fprint", 1},
    }};

const std::unordered_map<std::string_view, Opcode> &
nameMap()
{
    static const auto *map = [] {
        auto *m = new std::unordered_map<std::string_view, Opcode>();
        for (const auto &info : kOpTable)
            (*m)[info.name] = info.op;
        return m;
    }();
    return *map;
}

const OpInfo &
info(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    MTS_ASSERT(idx < kOpTable.size(), "bad opcode " << idx);
    MTS_ASSERT(kOpTable[idx].op == op, "opcode table out of order");
    return kOpTable[idx];
}

} // namespace

std::string_view
opcodeName(Opcode op)
{
    return info(op).name;
}

Opcode
opcodeFromName(std::string_view name)
{
    auto it = nameMap().find(name);
    return it == nameMap().end() ? Opcode::NUM_OPCODES : it->second;
}

int
resultLatency(Opcode op)
{
    return info(op).latency;
}

bool
isSharedLoad(Opcode op)
{
    switch (op) {
      case Opcode::LDS:
      case Opcode::FLDS:
      case Opcode::LDSD:
      case Opcode::FLDSD:
      case Opcode::LDS_SPIN:
      case Opcode::FAA:
        return true;
      default:
        return false;
    }
}

bool
isSharedStore(Opcode op)
{
    return op == Opcode::STS || op == Opcode::FSTS;
}

bool
isSharedMem(Opcode op)
{
    return isSharedLoad(op) || isSharedStore(op);
}

bool
isLocalLoad(Opcode op)
{
    return op == Opcode::LDL || op == Opcode::FLDL;
}

bool
isLocalStore(Opcode op)
{
    return op == Opcode::STL || op == Opcode::FSTL;
}

bool
isLocalMem(Opcode op)
{
    return isLocalLoad(op) || isLocalStore(op);
}

bool
isMem(Opcode op)
{
    return isLocalMem(op) || isSharedMem(op);
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
        return true;
      default:
        return false;
    }
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::J:
      case Opcode::JAL:
      case Opcode::JR:
      case Opcode::HALT:
        return true;
      default:
        return isBranch(op);
    }
}

bool
isFpOp(Opcode op)
{
    switch (op) {
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::FSQRT:
      case Opcode::FNEG:
      case Opcode::FABS:
      case Opcode::FMIN:
      case Opcode::FMAX:
      case Opcode::FMV:
      case Opcode::FLI:
      case Opcode::CVTIF:
      case Opcode::CVTFI:
      case Opcode::FEQ:
      case Opcode::FLT:
      case Opcode::FLE:
      case Opcode::FLDL:
      case Opcode::FSTL:
      case Opcode::FLDS:
      case Opcode::FSTS:
      case Opcode::FLDSD:
      case Opcode::FPRINT:
        return true;
      default:
        return false;
    }
}

} // namespace mts
