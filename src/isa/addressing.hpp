/**
 * @file
 * Address-space layout constants for the MTS machine.
 *
 * Memory is word addressed with 64-bit words. The paper assumes every
 * memory reference can be statically classified as local or shared; the
 * MTS ISA enforces this with distinct opcodes, and the address spaces are
 * disjoint so the simulator can verify the classification dynamically.
 */
#ifndef MTS_ISA_ADDRESSING_HPP
#define MTS_ISA_ADDRESSING_HPP

#include <cstdint>

namespace mts
{

/** Machine address: a 64-bit word index. */
using Addr = std::uint64_t;

/** Simulated time in processor cycles. */
using Cycle = std::uint64_t;

/** First address of the shared segment; local addresses are below it. */
constexpr Addr kSharedBase = 1ull << 40;

/** True if @p a addresses the shared segment. */
constexpr bool
isSharedAddr(Addr a)
{
    return a >= kSharedBase;
}

/** Default size (words) of each thread's local memory (stack + statics). */
constexpr Addr kDefaultLocalWords = 1ull << 16;

} // namespace mts

#endif // MTS_ISA_ADDRESSING_HPP
