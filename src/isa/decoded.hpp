/**
 * @file
 * Pre-decoded execution form of a Program.
 *
 * The Machine translates every `Instruction` into a dense `DecodedOp` at
 * load time: the execution handler is resolved once (including the
 * reg-vs-immediate operand form), the def/use sets, result latency and
 * bank-tagged destination are folded in, and each op carries the length
 * of the purely-local straight-line span starting at its pc. The
 * processor's hot loop dispatches on the pre-resolved handler index and
 * batches whole local runs instead of re-deriving all of this per cycle
 * through one giant opcode switch.
 *
 * Decoding is observationally invisible: executing the decoded form must
 * produce bit-identical final state and statistics to instruction-at-a-
 * time interpretation (DESIGN.md §11; enforced by mtsim_verify_tests).
 */
#ifndef MTS_ISA_DECODED_HPP
#define MTS_ISA_DECODED_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/opcode.hpp"

namespace mts
{

/**
 * Execution handler index: one entry per distinct execution behaviour.
 * ALU and branch opcodes split into register/immediate forms so the
 * second-operand decision is made once at decode, not per cycle.
 *
 * Order matters: every handler up to and including `Fstl` is *local* —
 * it never touches shared memory, never transfers control, and is never
 * a context-switch decision point — so `isLocalHandler` is a single
 * compare and the local-run batcher can execute any run of them in a
 * tight loop.
 */
enum class Handler : std::uint8_t
{
    // ---- local handlers (span-safe; keep contiguous and first) ----
    Nop, Setpri,
    AddRR, AddRI, SubRR, SubRI, MulRR, MulRI, DivRR, DivRI, RemRR, RemRI,
    AndRR, AndRI, OrRR, OrRI, XorRR, XorRI,
    SllRR, SllRI, SrlRR, SrlRI, SraRR, SraRI,
    SltRR, SltRI, SleRR, SleRI, SeqRR, SeqRI, SneRR, SneRI,
    Li,
    Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fneg, Fabs, Fmin, Fmax, Fmv, Fli,
    Cvtif, Cvtfi, Feq, Flt, Fle,
    Ldl, Fldl, Stl, Fstl,

    // ---- batchable control flow (local to the CPU; ends a *straight-
    // line* span but not a batch: the batcher follows the edge) ----
    BeqRR, BeqRI, BneRR, BneRI, BltRR, BltRI, BgeRR, BgeRI,
    J, Jal, Jr,

    // ---- batch terminators ----
    Halt, Cswitch,
    SharedLoad,   ///< LDS/FLDS/LDSD/FLDSD/LDS_SPIN/FAA (see flags)
    SharedStore,  ///< STS/FSTS (see flags)
    Print, Fprint,

    NUM_HANDLERS
};

/** Last handler that may appear inside a local run. */
constexpr Handler kLastLocalHandler = Handler::Fstl;

/** Last handler the batched executor can retire itself. */
constexpr Handler kLastBatchableHandler = Handler::Jr;

/** True if @p h is purely local (counted into DecodedOp::localRun). */
constexpr bool
isLocalHandler(Handler h)
{
    return h <= kLastLocalHandler;
}

/**
 * True if @p h can retire inside a batch: purely-local work plus
 * branches/jumps. Excluded are exactly the handlers that touch shared
 * memory, halt, print, or are context-switch decision points.
 */
constexpr bool
isBatchableHandler(Handler h)
{
    return h <= kLastBatchableHandler;
}

/// @name DecodedOp::flags bits. The low five qualify shared-memory
/// handlers; kDecFuseHead is set by decodeProgram() on local ops only.
/// @{
constexpr std::uint8_t kDecFaa = 1;     ///< fetch-and-add
constexpr std::uint8_t kDecSpin = 2;    ///< lds.spin
constexpr std::uint8_t kDecPair = 4;    ///< load-double
constexpr std::uint8_t kDecFpDest = 8;  ///< destination in the fp bank
constexpr std::uint8_t kDecFpVal = 16;  ///< store value from the fp bank
constexpr std::uint8_t kDecFuseHead = 32;  ///< span worth the fused tier
/// @}

/**
 * @name Fused-tier entry policy, applied once at decode time.
 *
 * decodeProgram() sets kDecFuseHead on a local op when the span it
 * heads is worth routing through the fused tier: either it is long
 * enough (>= kMinFuseLen ops) that one accounting delta beats
 * per-op bookkeeping, or it contains a long-latency op
 * (lat > kFuseWorthyLat) whose intra-span stall the fused schedule
 * precomputes — short spans the decoded batcher would otherwise break
 * out of into the generic stall path. Spans failing both tests stay on
 * the decoded path with zero extra work at run time: the executor
 * tests one bit of the DecodedOp it already loaded, instead of paying
 * the tier's profile counter + fused-pointer load + entry guards on
 * spans too short to amortise them.
 * @{
 */
constexpr std::uint16_t kMinFuseLen = 4;
constexpr std::uint8_t kFuseWorthyLat = 2;
/// @}

/**
 * One pre-decoded instruction (40 bytes; an execution-order-hot subset
 * of `Instruction` plus everything `Processor::step` used to re-derive
 * per cycle).
 */
struct DecodedOp
{
    Handler h = Handler::NUM_HANDLERS;
    Opcode op = Opcode::NUM_OPCODES;  ///< original opcode (tracing/tests)
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint8_t lat = 1;     ///< result latency (resultLatency(op))
    RegId d0 = 0;             ///< bank-tagged destination register
    std::uint8_t flags = 0;   ///< kDec* bits (shared handlers)
    std::uint8_t numUses = 0;
    std::uint8_t numDefs = 0;
    RegId uses[3] = {0, 0, 0};
    RegId defs[2] = {0, 0};

    /**
     * Length of the maximal run of local handlers starting at this pc
     * (0 for non-local handlers; capped at 0xFFFF). The batcher may
     * execute up to this many ops without re-checking for control flow,
     * shared accesses or switch decision points.
     */
    std::uint16_t localRun = 0;

    std::int32_t target = -1;  ///< branch/jump target instruction index
    std::uint32_t srcLine = 0; ///< 1-based source line for diagnostics

    union {
        std::int64_t imm;  ///< immediate / memory offset (words)
        double fimm;       ///< FLI immediate
    };

    DecodedOp() : imm(0) {}
};

/**
 * Decode one instruction. Panics if @p inst has no handler — together
 * with the -Wswitch coverage of the decode switch this is the
 * completeness guarantee: a new opcode cannot silently fall through to
 * a slow or wrong path.
 */
DecodedOp decodeOne(const Instruction &inst);

class FuseCache;

/** A fully decoded program: flat DecodedOp array indexed by pc. */
struct DecodedProgram
{
    std::vector<DecodedOp> ops;

    /**
     * Superinstruction cache for the profile-guided fused tier (see
     * isa/fused.hpp). Owned by the program so compiled spans are shared
     * by every Machine executing it; the cache is internally
     * synchronized, so it is mutable through the `shared_ptr<const
     * DecodedProgram>` handles Machines hold (unique_ptr::get() through
     * a const program yields a non-const cache).
     */
    std::unique_ptr<FuseCache> fuse;

    DecodedProgram();
    DecodedProgram(DecodedProgram &&) noexcept;
    DecodedProgram &operator=(DecodedProgram &&) noexcept;
    ~DecodedProgram();

    std::size_t
    size() const
    {
        return ops.size();
    }

    const DecodedOp &
    operator[](std::size_t pc) const
    {
        return ops[pc];
    }

    const DecodedOp *
    data() const
    {
        return ops.data();
    }
};

/** Decode @p code and precompute the local-run span table. */
DecodedProgram decodeProgram(const std::vector<Instruction> &code);

} // namespace mts

#endif // MTS_ISA_DECODED_HPP
