/**
 * @file
 * Profile-guided superinstruction tier: fused straight-line spans.
 *
 * The decoded core (DESIGN.md §11) already batches purely-local spans;
 * this layer goes one step further for *hot* spans. A FusedSpan is a
 * compact micro-trace compiled from a local run: operand slots are
 * pre-resolved into 16-byte micro-ops, and — because a span may only be
 * entered when the thread's scoreboard watermark has drained
 * (`scoreboardMax <= now`) — the whole span's timing is static.
 * Intra-span def→use forwarding is resolved at fuse time by a symbolic
 * scoreboard walk, so execution needs no per-op readiness scan and no
 * per-op scoreboard writes: the span's cycle count, stall count and the
 * few scoreboard entries still pending at exit are precomputed and
 * applied as one delta.
 *
 * Fusion is a pure function of the immutable DecodedProgram, so spans
 * are compiled once per program and shared by every Machine (programs
 * are shared immutably across SweepRunner's pool): FuseCache compiles
 * under a mutex and publishes via an atomic pointer, and each Processor
 * keeps its own profile counters so *when* a span is first used on a
 * given machine is deterministic regardless of MTS_JOBS.
 *
 * Correctness contract: executing a fused span is observationally
 * identical — registers, memory, cycles, every cpu.* counter — to the
 * decoded per-op path (DESIGN.md §15; enforced by mtsim_verify_tests).
 */
#ifndef MTS_ISA_FUSED_HPP
#define MTS_ISA_FUSED_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "isa/addressing.hpp"
#include "isa/decoded.hpp"

namespace mts
{

/**
 * Cap on one fused span. Longer local runs fuse as a chain: the suffix
 * starting after a fused span is itself a local run head with its own
 * profile counter. Bounded so a span always fits comfortably inside the
 * batcher's budget (kMaxBatch) and compile cost stays trivial.
 */
constexpr std::uint32_t kMaxFusedOps = 256;

/**
 * One micro-op of a fused span (16 bytes; the execution-only subset of
 * DecodedOp). No def/use sets, latency or span metadata — all of that
 * was consumed at fuse time.
 */
struct FusedOp
{
    Handler h = Handler::NUM_HANDLERS;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint32_t srcLine = 0;  ///< diagnostics (div-by-zero, bad stl)

    union {
        std::int64_t imm;
        double fimm;
    };

    FusedOp() : imm(0) {}
};

/**
 * A compiled hot span: the micro-trace plus its precomputed timing.
 *
 * All cycle fields are *offsets from span entry time*; the guard
 * (`scoreboardMax <= now` at entry) makes them exact, not estimates.
 */
struct FusedSpan
{
    std::int32_t startPc = 0;
    std::uint32_t len = 0;       ///< instructions retired by the span

    /** Cycles the span occupies: len issue cycles + stallCycles. */
    Cycle totalCycles = 0;

    /** Intra-span def→use stall cycles (charged to stats.stallCycles). */
    Cycle stallCycles = 0;

    /**
     * Exit scoreboard watermark as an offset from entry, or -1 when no
     * multi-cycle result is still relevant (scoreboardMax unchanged).
     * Mirrors execLocal's rule: only latencies > 1 raise the watermark.
     */
    std::int64_t sbMaxOff = -1;

    std::vector<FusedOp> ops;

    /**
     * Resumable offsets: issueOff[i] is the cycle offset at which op i
     * issues. The executor itself never splits a span (the entry guard
     * requires the whole totalCycles to fit the batch budget — a quantum
     * deadline or horizon inside the span bails to the decoded path,
     * which executes the prefix per-op), but the offsets pin the static
     * schedule for the budget guard, tests and future partial execution.
     */
    std::vector<std::uint32_t> issueOff;

    /**
     * Scoreboard entries still pending when the span exits: the final
     * write to `reg` becomes ready at entry + readyOff with
     * readyOff > totalCycles. Every other register's ready time is at or
     * before exit, where a stale (smaller) regReady entry is
     * indistinguishable from the exact one — all consumers test
     * `regReady > now` — so those writes are elided entirely.
     */
    struct ExitDef
    {
        RegId reg;
        std::uint32_t readyOff;
    };
    std::vector<ExitDef> exitDefs;
};

/**
 * Compile the local run starting at @p pc (requires
 * `prog[pc].localRun > 0`) into a fused span of at most kMaxFusedOps
 * micro-ops. Pure function of the program: the symbolic scoreboard walk
 * replays execLocal's timing rules against an all-ready entry state.
 */
FusedSpan fuseSpan(const DecodedProgram &prog, std::int32_t pc);

/**
 * Per-program cache of compiled spans, shared by every Machine running
 * the program (possibly from SweepRunner's worker threads).
 *
 * Publication protocol: readers do one relaxed/acquire atomic load per
 * span entry; a miss takes the mutex, re-checks, compiles, stores the
 * span in stable storage and release-publishes the pointer. A span is
 * compiled at most once per program; losing the publication race simply
 * means reading the winner's pointer. Published spans are immutable and
 * live as long as the program does.
 */
class FuseCache
{
  public:
    explicit FuseCache(std::size_t codeSize) : published_(codeSize) {}

    FuseCache(const FuseCache &) = delete;
    FuseCache &operator=(const FuseCache &) = delete;

    /** Published span at @p pc, or nullptr while cold. */
    const FusedSpan *
    peek(std::int32_t pc) const
    {
        return published_[static_cast<std::size_t>(pc)].load(
            std::memory_order_acquire);
    }

    /**
     * Span at @p pc, compiling (once) on first demand. Safe to call
     * concurrently from any number of Machines.
     */
    const FusedSpan *acquire(const DecodedProgram &prog, std::int32_t pc);

    /** Spans compiled so far (tests; racy only in the benign direction). */
    std::size_t
    compiledSpans() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return storage_.size();
    }

  private:
    std::vector<std::atomic<const FusedSpan *>> published_;
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<FusedSpan>> storage_;
};

} // namespace mts

#endif // MTS_ISA_FUSED_HPP
