/**
 * @file
 * Opcodes of the MTS RISC ISA.
 *
 * The ISA is modelled on the MIPS R3000 as used by the paper (Section 3),
 * extended with the paper's multiprocessor additions: local and shared
 * versions of all loads and stores, Load-Double (one network message for
 * two adjacent words), Fetch-and-Add as the synchronization primitive,
 * and the explicit context-switch instruction `cswitch`.
 */
#ifndef MTS_ISA_OPCODE_HPP
#define MTS_ISA_OPCODE_HPP

#include <cstdint>
#include <string_view>

namespace mts
{

enum class Opcode : std::uint8_t
{
    // control / special
    NOP,
    HALT,     ///< terminate this thread
    CSWITCH,  ///< explicit context switch (waits for outstanding accesses)

    // integer ALU (rs2 or immediate second operand)
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR,
    SLL, SRL, SRA,
    SLT, SLE, SEQ, SNE,
    LI,       ///< load 64-bit immediate / symbol address

    // floating point (separate 32-entry register bank)
    FADD, FSUB, FMUL, FDIV, FSQRT, FNEG, FABS, FMIN, FMAX, FMV,
    FLI,      ///< load double immediate
    CVTIF,    ///< int reg -> fp reg
    CVTFI,    ///< fp reg -> int reg (truncate)
    FEQ, FLT, FLE,  ///< fp compare, int reg result

    // control flow
    BEQ, BNE, BLT, BGE,
    J, JAL, JR,

    // local memory (serviced by the local cache/memory, never switches)
    LDL, STL, FLDL, FSTL,

    // shared memory (network round trip; split-phase issue)
    LDS, STS, FLDS, FSTS,
    LDSD,     ///< shared load-double: rd <- M[a], rd+1 <- M[a+1]
    FLDSD,    ///< fp shared load-double
    LDS_SPIN, ///< shared load inside a spin loop (bandwidth-excluded)
    FAA,      ///< fetch-and-add: rd <- M[a]; M[a] += rs2

    /**
     * Set this thread's scheduling priority (immediate 0 or 1). A nop
     * unless the machine enables priority scheduling — the Section 6.2
     * "priority scheduling of threads inside critical regions" extension.
     */
    SETPRI,

    // debugging aids (host console; not part of the machine proper)
    PRINT, FPRINT,

    NUM_OPCODES
};

/** Mnemonic (e.g. "lds.spin" for LDS_SPIN). */
std::string_view opcodeName(Opcode op);

/** Opcode for a mnemonic, or NUM_OPCODES when unknown. */
Opcode opcodeFromName(std::string_view name);

/**
 * Result latency in cycles: the number of cycles after issue before the
 * destination register may be consumed. Memory and control ops return 1;
 * shared access latency is supplied by the network model.
 */
int resultLatency(Opcode op);

/// @name Static classification predicates (used by optimizer and CPU).
/// @{
bool isSharedLoad(Opcode op);   ///< LDS/FLDS/LDSD/FLDSD/LDS_SPIN/FAA
bool isSharedStore(Opcode op);  ///< STS/FSTS
bool isSharedMem(Opcode op);
bool isLocalLoad(Opcode op);
bool isLocalStore(Opcode op);
bool isLocalMem(Opcode op);
bool isMem(Opcode op);
bool isBranch(Opcode op);       ///< conditional branches
bool isControl(Opcode op);      ///< branches, jumps, halt
bool isFpOp(Opcode op);         ///< writes/reads fp regs
/// @}

} // namespace mts

#endif // MTS_ISA_OPCODE_HPP
