/**
 * @file
 * Decoded MTS instruction representation and operand metadata.
 *
 * Instructions live in a flat vector; the program counter is an index into
 * that vector. Branch/jump targets are resolved to indices by the
 * assembler. Register operands are indices into the per-thread integer or
 * floating-point bank; the bank is implied by the opcode.
 */
#ifndef MTS_ISA_INSTRUCTION_HPP
#define MTS_ISA_INSTRUCTION_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "isa/opcode.hpp"

namespace mts
{

/// @name Integer register conventions.
/// @{
constexpr std::uint8_t kRegZero = 0;   ///< hardwired zero
constexpr std::uint8_t kRegArg0 = 4;   ///< thread id at startup; call arg 0
constexpr std::uint8_t kRegArg1 = 5;   ///< thread count at startup; arg 1
constexpr std::uint8_t kRegArg2 = 6;
constexpr std::uint8_t kRegArg3 = 7;
constexpr std::uint8_t kRegRet0 = 2;   ///< function result
constexpr std::uint8_t kRegSp = 29;    ///< stack pointer
constexpr std::uint8_t kRegRa = 31;    ///< return address (written by jal)
/// @}

/**
 * Bank-tagged register id for dependence analysis: 0..31 are the integer
 * registers, 32..63 the floating-point registers.
 */
using RegId = std::uint8_t;

constexpr RegId kNumRegIds = 64;

/** RegId of integer register @p r. */
constexpr RegId
intReg(std::uint8_t r)
{
    return r;
}

/** RegId of floating-point register @p f. */
constexpr RegId
fpReg(std::uint8_t f)
{
    return static_cast<RegId>(32 + f);
}

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;   ///< destination register (bank per opcode)
    std::uint8_t rs1 = 0;  ///< first source / address base
    std::uint8_t rs2 = 0;  ///< second source / store value
    bool useImm = false;   ///< rs2 replaced by #imm for ALU/branch ops
    std::int64_t imm = 0;  ///< immediate / memory offset (words)
    double fimm = 0.0;     ///< immediate for FLI
    std::int32_t target = -1;  ///< branch/jump target instruction index
    std::uint32_t srcLine = 0; ///< 1-based source line for diagnostics
};

/** Registers defined and used by an instruction (bank-tagged). */
struct Operands
{
    std::array<RegId, 2> defs{};
    std::array<RegId, 3> uses{};
    int numDefs = 0;
    int numUses = 0;

    void
    addDef(RegId r)
    {
        if (r != intReg(kRegZero))
            defs[numDefs++] = r;
    }

    void
    addUse(RegId r)
    {
        uses[numUses++] = r;
    }
};

/** Compute the def/use sets of @p inst (the dependence-analysis kernel). */
Operands getOperands(const Instruction &inst);

/**
 * Render an instruction as assembly text.
 *
 * @param labelFor Optional resolver mapping a target instruction index to a
 *                 label name; when absent targets print as "@index".
 */
std::string disassemble(
    const Instruction &inst,
    const std::function<std::string(std::int32_t)> &labelFor = nullptr);

} // namespace mts

#endif // MTS_ISA_INSTRUCTION_HPP
