#include "isa/decoded.hpp"

#include <algorithm>

#include "isa/fused.hpp"
#include "util/error.hpp"

namespace mts
{

DecodedOp
decodeOne(const Instruction &inst)
{
    DecodedOp d;
    d.op = inst.op;
    d.rd = inst.rd;
    d.rs1 = inst.rs1;
    d.rs2 = inst.rs2;
    d.imm = inst.imm;
    d.target = inst.target;
    d.srcLine = inst.srcLine;

    const int lat = resultLatency(inst.op);
    MTS_ASSERT(lat >= 0 && lat <= 255, "latency out of decode range");
    d.lat = static_cast<std::uint8_t>(lat);

    const Operands ops = getOperands(inst);
    d.numUses = static_cast<std::uint8_t>(ops.numUses);
    d.numDefs = static_cast<std::uint8_t>(ops.numDefs);
    std::copy(ops.uses.begin(), ops.uses.end(), d.uses);
    std::copy(ops.defs.begin(), ops.defs.end(), d.defs);

// Register/immediate second-operand selection, folded at decode.
#define MTS_DECODE_ALU(OP, H)                                              \
    case Opcode::OP:                                                       \
        d.h = inst.useImm ? Handler::H##RI : Handler::H##RR;               \
        d.d0 = intReg(inst.rd);                                            \
        break;
#define MTS_DECODE_BRANCH(OP, H)                                           \
    case Opcode::OP:                                                       \
        d.h = inst.useImm ? Handler::H##RI : Handler::H##RR;               \
        break;
#define MTS_DECODE_FP(OP, H)                                               \
    case Opcode::OP:                                                       \
        d.h = Handler::H;                                                  \
        d.d0 = fpReg(inst.rd);                                             \
        break;

    // Covered exhaustively (no default): -Wswitch makes a new opcode a
    // compile-time diagnostic here, and the assert below makes any
    // fall-through a startup failure, not a silent slow path.
    switch (inst.op) {
      case Opcode::NOP: d.h = Handler::Nop; break;
      case Opcode::HALT: d.h = Handler::Halt; break;
      case Opcode::CSWITCH: d.h = Handler::Cswitch; break;
      case Opcode::SETPRI: d.h = Handler::Setpri; break;

      MTS_DECODE_ALU(ADD, Add)
      MTS_DECODE_ALU(SUB, Sub)
      MTS_DECODE_ALU(MUL, Mul)
      MTS_DECODE_ALU(DIV, Div)
      MTS_DECODE_ALU(REM, Rem)
      MTS_DECODE_ALU(AND, And)
      MTS_DECODE_ALU(OR, Or)
      MTS_DECODE_ALU(XOR, Xor)
      MTS_DECODE_ALU(SLL, Sll)
      MTS_DECODE_ALU(SRL, Srl)
      MTS_DECODE_ALU(SRA, Sra)
      MTS_DECODE_ALU(SLT, Slt)
      MTS_DECODE_ALU(SLE, Sle)
      MTS_DECODE_ALU(SEQ, Seq)
      MTS_DECODE_ALU(SNE, Sne)

      case Opcode::LI:
        d.h = Handler::Li;
        d.d0 = intReg(inst.rd);
        break;

      MTS_DECODE_FP(FADD, Fadd)
      MTS_DECODE_FP(FSUB, Fsub)
      MTS_DECODE_FP(FMUL, Fmul)
      MTS_DECODE_FP(FDIV, Fdiv)
      MTS_DECODE_FP(FSQRT, Fsqrt)
      MTS_DECODE_FP(FNEG, Fneg)
      MTS_DECODE_FP(FABS, Fabs)
      MTS_DECODE_FP(FMIN, Fmin)
      MTS_DECODE_FP(FMAX, Fmax)
      MTS_DECODE_FP(FMV, Fmv)
      MTS_DECODE_FP(CVTIF, Cvtif)

      case Opcode::FLI:
        d.h = Handler::Fli;
        d.d0 = fpReg(inst.rd);
        d.fimm = inst.fimm;
        break;

      case Opcode::CVTFI:
        d.h = Handler::Cvtfi;
        d.d0 = intReg(inst.rd);
        break;
      case Opcode::FEQ:
        d.h = Handler::Feq;
        d.d0 = intReg(inst.rd);
        break;
      case Opcode::FLT:
        d.h = Handler::Flt;
        d.d0 = intReg(inst.rd);
        break;
      case Opcode::FLE:
        d.h = Handler::Fle;
        d.d0 = intReg(inst.rd);
        break;

      MTS_DECODE_BRANCH(BEQ, Beq)
      MTS_DECODE_BRANCH(BNE, Bne)
      MTS_DECODE_BRANCH(BLT, Blt)
      MTS_DECODE_BRANCH(BGE, Bge)

      case Opcode::J: d.h = Handler::J; break;
      case Opcode::JAL: d.h = Handler::Jal; break;
      case Opcode::JR: d.h = Handler::Jr; break;

      case Opcode::LDL:
        d.h = Handler::Ldl;
        d.d0 = intReg(inst.rd);
        break;
      case Opcode::FLDL:
        d.h = Handler::Fldl;
        d.d0 = fpReg(inst.rd);
        break;
      case Opcode::STL: d.h = Handler::Stl; break;
      case Opcode::FSTL: d.h = Handler::Fstl; break;

      case Opcode::LDS:
        d.h = Handler::SharedLoad;
        d.d0 = intReg(inst.rd);
        break;
      case Opcode::FLDS:
        d.h = Handler::SharedLoad;
        d.flags = kDecFpDest;
        d.d0 = fpReg(inst.rd);
        break;
      case Opcode::LDSD:
        d.h = Handler::SharedLoad;
        d.flags = kDecPair;
        d.d0 = intReg(inst.rd);
        break;
      case Opcode::FLDSD:
        d.h = Handler::SharedLoad;
        d.flags = kDecPair | kDecFpDest;
        d.d0 = fpReg(inst.rd);
        break;
      case Opcode::LDS_SPIN:
        d.h = Handler::SharedLoad;
        d.flags = kDecSpin;
        d.d0 = intReg(inst.rd);
        break;
      case Opcode::FAA:
        // The destination stays in the integer bank even though FAA is
        // not an fp op; d0 drives the in-flight scoreboard entries.
        d.h = Handler::SharedLoad;
        d.flags = kDecFaa;
        d.d0 = intReg(inst.rd);
        break;

      case Opcode::STS: d.h = Handler::SharedStore; break;
      case Opcode::FSTS:
        d.h = Handler::SharedStore;
        d.flags = kDecFpVal;
        break;

      case Opcode::PRINT: d.h = Handler::Print; break;
      case Opcode::FPRINT: d.h = Handler::Fprint; break;

      case Opcode::NUM_OPCODES: break;  // falls to the assert
    }

#undef MTS_DECODE_ALU
#undef MTS_DECODE_BRANCH
#undef MTS_DECODE_FP

    MTS_ASSERT(d.h != Handler::NUM_HANDLERS,
               "opcode " << static_cast<int>(inst.op)
                         << " has no decoded handler");
    return d;
}

// Out of line so decoded.hpp can hold a unique_ptr to the (there
// incomplete) FuseCache.
DecodedProgram::DecodedProgram() = default;
DecodedProgram::DecodedProgram(DecodedProgram &&) noexcept = default;
DecodedProgram &
DecodedProgram::operator=(DecodedProgram &&) noexcept = default;
DecodedProgram::~DecodedProgram() = default;

DecodedProgram
decodeProgram(const std::vector<Instruction> &code)
{
    DecodedProgram d;
    d.ops.reserve(code.size());
    for (const Instruction &inst : code)
        d.ops.push_back(decodeOne(inst));

    // Local-run span table, one backward pass: localRun[pc] is the
    // number of consecutive local handlers starting at pc. Jumping into
    // the middle of a run is fine — every pc carries its own suffix
    // length — and the cap only shortens a batch, never breaks it.
    // The same pass decides the fused-tier entry policy (kDecFuseHead):
    // `slow` propagates backward whether the suffix span contains a
    // long-latency op, so every possible span head — including mid-run
    // branch targets — carries its own verdict.
    std::uint32_t run = 0;
    bool slow = false;
    for (std::size_t i = d.ops.size(); i-- > 0;) {
        DecodedOp &op = d.ops[i];
        if (isLocalHandler(op.h)) {
            run = std::min<std::uint32_t>(run + 1, 0xFFFF);
            slow = slow || op.lat > kFuseWorthyLat;
        } else {
            run = 0;
            slow = false;
        }
        op.localRun = static_cast<std::uint16_t>(run);
        if (run > 0 && (run >= kMinFuseLen || slow))
            op.flags |= kDecFuseHead;
    }
    d.fuse = std::make_unique<FuseCache>(d.ops.size());
    return d;
}

} // namespace mts
