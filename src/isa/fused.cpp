#include "isa/fused.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"

namespace mts
{

namespace
{

/**
 * True for local handlers whose execution writes a result register
 * (i.e. execLocal routes them through wI/wF, which always touches the
 * d0 scoreboard entry — even for a discarded integer write to r0).
 */
inline bool
writesResult(Handler h)
{
    switch (h) {
      case Handler::Nop:
      case Handler::Setpri:
      case Handler::Stl:
      case Handler::Fstl:
        return false;
      default:
        return true;
    }
}

} // namespace

FusedSpan
fuseSpan(const DecodedProgram &prog, std::int32_t pc)
{
    const DecodedOp *ops = prog.data();
    MTS_ASSERT(ops[pc].localRun > 0,
               "fuseSpan at pc " << pc << " which heads no local run");

    FusedSpan fs;
    fs.startPc = pc;
    const std::uint32_t len =
        std::min<std::uint32_t>(ops[pc].localRun, kMaxFusedOps);
    fs.ops.reserve(len);
    fs.issueOff.reserve(len);

    // Symbolic replay of the decoded path's timing against an all-ready
    // entry state (the executor's guard: scoreboardMax <= now implies
    // every regReady <= now and every pendingShared false). Offsets are
    // from span entry; `ready[r] == 0` means "ready at or before entry".
    // Only uses stall — an overwritten in-order pipeline result never
    // delays its overwriter (the generic step's def scan skips
    // non-pendingShared defs, and nothing in a local span sets
    // pendingShared).
    std::array<std::uint64_t, kNumRegIds> ready{};
    std::array<bool, kNumRegIds> wrote{};
    std::uint64_t tau = 0;
    std::uint64_t stall = 0;
    std::int64_t sbMax = -1;

    for (std::uint32_t i = 0; i < len; ++i) {
        const DecodedOp &op = ops[pc + static_cast<std::int32_t>(i)];

        std::uint64_t src = tau;
        for (int u = 0; u < op.numUses; ++u)
            if (ready[op.uses[u]] > src)
                src = ready[op.uses[u]];
        stall += src - tau;
        tau = src;
        fs.issueOff.push_back(static_cast<std::uint32_t>(tau));

        if (writesResult(op.h)) {
            const std::uint64_t rdy = tau + op.lat;
            ready[op.d0] = rdy;
            wrote[op.d0] = true;
            if (op.lat > 1 &&
                static_cast<std::int64_t>(rdy) > sbMax)
                sbMax = static_cast<std::int64_t>(rdy);
        }
        tau += 1;

        FusedOp f;
        f.h = op.h;
        f.rd = op.rd;
        f.rs1 = op.rs1;
        f.rs2 = op.rs2;
        f.srcLine = op.srcLine;
        f.imm = op.imm;  // aliases fimm for Fli
        fs.ops.push_back(f);
    }

    fs.len = len;
    fs.totalCycles = tau;
    fs.stallCycles = stall;
    fs.sbMaxOff = sbMax;

    // Scoreboard entries that outlive the span. Everything else is
    // elided: a register whose final ready time is at or before exit is
    // indistinguishable from its (stale, smaller) pre-span entry to
    // every consumer — regReady is only ever tested against `> now`,
    // and stale-true pendingShared flags are cleared lazily by the
    // generic step's readiness scan (DESIGN.md §11) before any
    // switch-on-use decision can read them.
    for (std::uint32_t r = 0; r < kNumRegIds; ++r)
        if (wrote[r] && ready[r] > tau)
            fs.exitDefs.push_back(
                {static_cast<RegId>(r),
                 static_cast<std::uint32_t>(ready[r])});

    return fs;
}

const FusedSpan *
FuseCache::acquire(const DecodedProgram &prog, std::int32_t pc)
{
    std::atomic<const FusedSpan *> &slot =
        published_[static_cast<std::size_t>(pc)];
    if (const FusedSpan *fs = slot.load(std::memory_order_acquire))
        return fs;
    std::lock_guard<std::mutex> lock(mu_);
    if (const FusedSpan *fs = slot.load(std::memory_order_acquire))
        return fs;  // lost the race; the winner's span is canonical
    storage_.push_back(std::make_unique<FusedSpan>(fuseSpan(prog, pc)));
    const FusedSpan *fs = storage_.back().get();
    slot.store(fs, std::memory_order_release);
    return fs;
}

} // namespace mts
