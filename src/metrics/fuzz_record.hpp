/**
 * @file
 * FuzzRecord: the structured product of one mtfuzz campaign (schema
 * mts.fuzz/1), mirroring mts.run/1 and mts.opt/1 for runs and grouping.
 *
 * Plain-field struct on purpose: the metrics layer stays independent of
 * src/verify/ (the verify layer converts its reports into records).
 */
#ifndef MTS_METRICS_FUZZ_RECORD_HPP
#define MTS_METRICS_FUZZ_RECORD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace mts
{

/** One failing seed, as exported. */
struct FuzzFailureRecord
{
    std::uint64_t seed = 0;
    std::string kind;    ///< divergence kind ("digest", "invariant", ...)
    std::string config;  ///< machine configuration that diverged
    std::string detail;
    int divergences = 0;  ///< total divergences this seed produced

    std::string minimizedSource;   ///< "" when shrinking was disabled
    int minimizedInstructions = 0;
    int shrinkAttempts = 0;
};

/** Structured record of one fuzz campaign. */
struct FuzzRecord
{
    /** Schema tag emitted into every JSON record. */
    static constexpr const char *kSchema = "mts.fuzz/1";

    std::uint64_t firstSeed = 0;
    int seedsRun = 0;
    int threads = 0;
    std::uint64_t latency = 0;
    int machineRuns = 0;  ///< total Machine configurations executed
    std::vector<FuzzFailureRecord> failures;

    bool
    ok() const
    {
        return failures.empty();
    }

    JsonValue toJson() const;
};

} // namespace mts

#endif // MTS_METRICS_FUZZ_RECORD_HPP
