/**
 * @file
 * MetricsRegistry: named, hierarchical simulation metrics.
 *
 * Every component of a run (each processor, each cache, the network
 * accounting) publishes its counters into one registry under a dotted
 * scope ("cpu.p3.instructions", "cache.p3.hits", "net.messages").
 * Aggregation across processors happens inside the registry (rollUp),
 * replacing the hand-rolled per-struct merge() chains as the way a
 * RunResult's machine-wide totals are produced; the structs and their
 * merge() survive as the hot-path collection format and are pinned by
 * tests/test_stats_merge.cpp.
 *
 * Metrics are typed: monotonic counters (summed on roll-up), max
 * counters (e.g. finish times), real-valued gauges, and power-of-two
 * histograms (run-length distributions). Insertion order is preserved
 * everywhere so JSON emission is deterministic.
 */
#ifndef MTS_METRICS_METRICS_HPP
#define MTS_METRICS_METRICS_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "util/histogram.hpp"
#include "util/json.hpp"

namespace mts
{

/** Insertion-ordered registry of typed, dot-scoped metrics. */
class MetricsRegistry
{
  public:
    enum class Kind
    {
        Counter,     ///< monotonic sum
        MaxCounter,  ///< roll-up takes the maximum (finish times)
        Real,        ///< real-valued gauge (derived rates)
        Hist         ///< power-of-two histogram
    };

    /** One named metric. */
    struct Metric
    {
        std::string name;
        Kind kind = Kind::Counter;
        std::uint64_t count = 0;  ///< Counter / MaxCounter payload
        double real = 0.0;        ///< Real payload
        Histogram hist;           ///< Hist payload
    };

    /** Add @p delta to counter @p name (created on first use). */
    void add(const std::string &name, std::uint64_t delta);

    /** Raise max-counter @p name to at least @p value. */
    void max(const std::string &name, std::uint64_t value);

    /** Set real gauge @p name. */
    void set(const std::string &name, double value);

    /** Histogram @p name (created on first use; reference is stable). */
    Histogram &histogram(const std::string &name);

    /** Counter/max-counter value; 0 when absent. */
    std::uint64_t counter(const std::string &name) const;

    /** Real gauge value; 0.0 when absent. */
    double real(const std::string &name) const;

    /** Histogram lookup; nullptr when absent. */
    const Histogram *hist(const std::string &name) const;

    bool
    contains(const std::string &name) const
    {
        return index.find(name) != index.end();
    }

    std::size_t
    size() const
    {
        return entries.size();
    }

    bool
    empty() const
    {
        return entries.empty();
    }

    /** All metrics in insertion order. */
    const std::deque<Metric> &
    metrics() const
    {
        return entries;
    }

    /**
     * Combine another registry into this one, by name: counters sum,
     * max counters take the maximum, reals overwrite, histograms merge.
     */
    void merge(const MetricsRegistry &other);

    /**
     * Aggregate per-processor scopes: every metric named
     * "<parent>.p<N>.<rest>" is combined into "<parent>.<rest>"
     * according to its kind. This is the registry-level replacement of
     * the per-struct merge() chains.
     */
    void rollUp(const std::string &parent);

    /**
     * Nested JSON object: dotted names become nested scopes, histograms
     * become {count, mean, buckets} objects.
     */
    JsonValue toJson() const;

    void clear();

  private:
    Metric &slot(const std::string &name, Kind kind);
    void combineInto(const Metric &src, const std::string &dstName);

    std::deque<Metric> entries;  ///< deque: stable references
    std::unordered_map<std::string, std::size_t> index;
};

} // namespace mts

#endif // MTS_METRICS_METRICS_HPP
