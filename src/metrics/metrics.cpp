#include "metrics/metrics.hpp"

#include "util/error.hpp"

namespace mts
{

MetricsRegistry::Metric &
MetricsRegistry::slot(const std::string &name, Kind kind)
{
    auto it = index.find(name);
    if (it != index.end()) {
        Metric &m = entries[it->second];
        MTS_REQUIRE(m.kind == kind,
                    "metric '" << name << "' re-registered with a "
                                          "different kind");
        return m;
    }
    index.emplace(name, entries.size());
    entries.emplace_back();
    Metric &m = entries.back();
    m.name = name;
    m.kind = kind;
    return m;
}

void
MetricsRegistry::add(const std::string &name, std::uint64_t delta)
{
    slot(name, Kind::Counter).count += delta;
}

void
MetricsRegistry::max(const std::string &name, std::uint64_t value)
{
    Metric &m = slot(name, Kind::MaxCounter);
    if (value > m.count)
        m.count = value;
}

void
MetricsRegistry::set(const std::string &name, double value)
{
    slot(name, Kind::Real).real = value;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return slot(name, Kind::Hist).hist;
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    auto it = index.find(name);
    if (it == index.end())
        return 0;
    const Metric &m = entries[it->second];
    MTS_REQUIRE(m.kind == Kind::Counter || m.kind == Kind::MaxCounter,
                "metric '" << name << "' is not a counter");
    return m.count;
}

double
MetricsRegistry::real(const std::string &name) const
{
    auto it = index.find(name);
    if (it == index.end())
        return 0.0;
    const Metric &m = entries[it->second];
    MTS_REQUIRE(m.kind == Kind::Real,
                "metric '" << name << "' is not a real gauge");
    return m.real;
}

const Histogram *
MetricsRegistry::hist(const std::string &name) const
{
    auto it = index.find(name);
    if (it == index.end())
        return nullptr;
    const Metric &m = entries[it->second];
    MTS_REQUIRE(m.kind == Kind::Hist,
                "metric '" << name << "' is not a histogram");
    return &m.hist;
}

void
MetricsRegistry::combineInto(const Metric &src, const std::string &dstName)
{
    Metric &dst = slot(dstName, src.kind);
    switch (src.kind) {
      case Kind::Counter:
        dst.count += src.count;
        break;
      case Kind::MaxCounter:
        if (src.count > dst.count)
            dst.count = src.count;
        break;
      case Kind::Real:
        dst.real = src.real;
        break;
      case Kind::Hist:
        dst.hist.merge(src.hist);
        break;
    }
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const Metric &m : other.entries)
        combineInto(m, m.name);
}

void
MetricsRegistry::rollUp(const std::string &parent)
{
    const std::string prefix = parent + ".p";
    // entries grows as totals are appended; bound the scan to the
    // pre-roll-up population.
    const std::size_t n = entries.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::string &name = entries[i].name;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        std::size_t pos = prefix.size();
        std::size_t digits = 0;
        while (pos + digits < name.size() &&
               name[pos + digits] >= '0' && name[pos + digits] <= '9')
            ++digits;
        if (!digits || pos + digits >= name.size() ||
            name[pos + digits] != '.')
            continue;
        std::string rest = name.substr(pos + digits + 1);
        // Copy: combineInto may reallocate the index but entries is a
        // deque, so the reference stays valid; the copy guards against
        // self-combination anyway.
        Metric src = entries[i];
        combineInto(src, parent + "." + rest);
    }
}

JsonValue
MetricsRegistry::toJson() const
{
    JsonValue root = JsonValue::object();
    for (const Metric &m : entries) {
        // Walk/create the nested scopes named by the dotted prefix.
        JsonValue *node = &root;
        std::size_t start = 0;
        while (true) {
            std::size_t dot = m.name.find('.', start);
            if (dot == std::string::npos)
                break;
            node = &(*node)[m.name.substr(start, dot - start)];
            start = dot + 1;
        }
        JsonValue &leaf = (*node)[m.name.substr(start)];
        switch (m.kind) {
          case Kind::Counter:
          case Kind::MaxCounter:
            leaf = JsonValue(m.count);
            break;
          case Kind::Real:
            leaf = JsonValue(m.real);
            break;
          case Kind::Hist: {
            JsonValue h = JsonValue::object();
            h["count"] = JsonValue(m.hist.count());
            h["mean"] = JsonValue(m.hist.mean());
            JsonValue buckets = JsonValue::object();
            for (const auto &[label, count] :
                 m.hist.populatedBucketCounts())
                buckets[label] = JsonValue(count);
            h["buckets"] = std::move(buckets);
            leaf = std::move(h);
            break;
          }
        }
    }
    return root;
}

void
MetricsRegistry::clear()
{
    entries.clear();
    index.clear();
}

} // namespace mts
