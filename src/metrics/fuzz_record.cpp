#include "metrics/fuzz_record.hpp"

namespace mts
{

JsonValue
FuzzRecord::toJson() const
{
    JsonValue v = JsonValue::object();
    v["schema"] = JsonValue(FuzzRecord::kSchema);
    v["first_seed"] = JsonValue(firstSeed);
    v["seeds_run"] = JsonValue(seedsRun);
    v["threads"] = JsonValue(threads);
    v["latency"] = JsonValue(latency);
    v["machine_runs"] = JsonValue(machineRuns);
    v["ok"] = JsonValue(ok());
    JsonValue fails = JsonValue::array();
    for (const FuzzFailureRecord &f : failures) {
        JsonValue e = JsonValue::object();
        e["seed"] = JsonValue(f.seed);
        e["kind"] = JsonValue(f.kind);
        e["config"] = JsonValue(f.config);
        e["detail"] = JsonValue(f.detail);
        e["divergences"] = JsonValue(f.divergences);
        if (!f.minimizedSource.empty()) {
            e["minimized_source"] = JsonValue(f.minimizedSource);
            e["minimized_instructions"] =
                JsonValue(f.minimizedInstructions);
            e["shrink_attempts"] = JsonValue(f.shrinkAttempts);
        }
        fails.push(std::move(e));
    }
    v["failures"] = std::move(fails);
    return v;
}

} // namespace mts
