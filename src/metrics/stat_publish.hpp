/**
 * @file
 * Bridge between the hot-path stat structs (CpuStats, CacheStats,
 * NetworkStats) and MetricsRegistry scopes.
 *
 * The structs remain the collection format updated during simulation;
 * at the end of a run each component's struct is published into a named
 * scope ("cpu.p3", "cache.p3", "net") and machine-wide totals are
 * produced by MetricsRegistry::rollUp — the readback functions then
 * reconstitute the merged structs from the aggregated scope, making the
 * registry the single aggregation path. publish/readback are exact
 * inverses; tests/test_metrics.cpp pins the equivalence against the
 * legacy merge() chains.
 */
#ifndef MTS_METRICS_STAT_PUBLISH_HPP
#define MTS_METRICS_STAT_PUBLISH_HPP

#include <string>

#include "cache/cache.hpp"
#include "cpu/cpu_stats.hpp"
#include "cpu/fuse_stats.hpp"
#include "cpu/sched_stats.hpp"
#include "mem/network.hpp"
#include "metrics/metrics.hpp"

namespace mts
{

/// @name Publish one component's counters under @p scope.
/// @{
void publishCpuStats(MetricsRegistry &reg, const std::string &scope,
                     const CpuStats &s);
void publishCacheStats(MetricsRegistry &reg, const std::string &scope,
                       const CacheStats &s);
void publishNetworkStats(MetricsRegistry &reg, const std::string &scope,
                         const NetworkStats &s);
void publishLinkStats(MetricsRegistry &reg, const std::string &scope,
                      const NetLinkStats &s);
void publishSchedStats(MetricsRegistry &reg, const std::string &scope,
                       const SchedStats &s);
void publishFuseStats(MetricsRegistry &reg, const std::string &scope,
                      const FuseStats &s);
/// @}

/// @name Reconstitute a struct from an (aggregated) scope.
/// @{
CpuStats cpuStatsFromMetrics(const MetricsRegistry &reg,
                             const std::string &scope);
CacheStats cacheStatsFromMetrics(const MetricsRegistry &reg,
                                 const std::string &scope);
NetworkStats networkStatsFromMetrics(const MetricsRegistry &reg,
                                     const std::string &scope);
NetLinkStats linkStatsFromMetrics(const MetricsRegistry &reg,
                                  const std::string &scope);
SchedStats schedStatsFromMetrics(const MetricsRegistry &reg,
                                 const std::string &scope);
FuseStats fuseStatsFromMetrics(const MetricsRegistry &reg,
                               const std::string &scope);
/// @}

} // namespace mts

#endif // MTS_METRICS_STAT_PUBLISH_HPP
