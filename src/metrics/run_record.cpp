#include "metrics/run_record.hpp"

#include "mem/network_model.hpp"
#include "metrics/stat_publish.hpp"
#include "sim/machine_config.hpp"
#include "sim/run_result.hpp"
#include "util/strings.hpp"

namespace mts
{

RunRecord
makeRunRecord(const RunResult &result, const MachineConfig &config,
              std::string appName)
{
    RunRecord rec;
    rec.app = std::move(appName);
    rec.model = std::string(switchModelName(config.model));
    rec.numProcs = result.numProcs;
    rec.threadsPerProc = result.threadsPerProc;
    rec.latency = config.network.roundTrip;
    rec.cycles = result.cycles;
    rec.digestShared = result.digest.sharedHash;
    rec.digestRegs = result.digest.regHash;
    rec.network = std::string(networkKindName(config.network.kind));
    if (config.network.kind == NetworkKind::Mesh) {
        auto [mx, my] = resolveMeshDims(config.network, config.numProcs);
        rec.meshX = mx;
        rec.meshY = my;
        rec.hopCycles = config.network.hopCycles;
        rec.linkBits = config.network.linkBits;
    }
    rec.directoryMode = directoryModeName(config.directory.mode);
    if (config.directory.mode == DirectoryMode::LimitedPtr)
        rec.dirPointers = config.directory.pointers;
    if (config.swThreadsPerProc > 0) {
        rec.swThreadsPerProc = config.swThreadsPerProc;
        rec.quantumCycles = config.quantumCycles;
        rec.ctxSwitchCost = config.ctxSwitchCost;
    }

    publishCpuStats(rec.metrics, "cpu", result.cpu);
    if (config.cachesEnabled())
        publishCacheStats(rec.metrics, "cache", result.cache);
    publishNetworkStats(rec.metrics, "net", result.net);
    if (result.hasLinkStats) {
        publishLinkStats(rec.metrics, "link", result.link);
        rec.metrics.set("derived.link_avg_hops", result.link.avgHops());
        rec.metrics.set("derived.link_max_utilization",
                        result.link.maxLinkUtilization(result.cycles));
    }
    if (result.hasSchedStats)
        publishSchedStats(rec.metrics, "sched", result.sched);
    if (result.hasFuseStats)
        publishFuseStats(rec.metrics, "fuse", result.fuse);
    if (config.groupEstimate) {
        rec.metrics.add("estimate.hits", result.estimateHits);
        rec.metrics.add("estimate.misses", result.estimateMisses);
        rec.metrics.set("derived.estimate_hit_rate",
                        result.estimateHitRate());
    }
    rec.metrics.set("derived.utilization", result.utilization());
    rec.metrics.set("derived.grouping_factor", result.groupingFactor());
    rec.metrics.set("derived.bits_per_cycle_per_proc",
                    result.bitsPerCycle());
    if (config.cachesEnabled())
        rec.metrics.set("derived.cache_hit_rate", result.cache.hitRate());
    return rec;
}

JsonValue
RunRecord::toJson() const
{
    JsonValue v = JsonValue::object();
    v["schema"] = JsonValue(RunRecord::kSchema);
    if (!app.empty())
        v["app"] = JsonValue(app);
    v["model"] = JsonValue(model);
    v["procs"] = JsonValue(numProcs);
    v["threads"] = JsonValue(threadsPerProc);
    if (swThreadsPerProc) {
        v["sw_threads"] = JsonValue(swThreadsPerProc);
        v["quantum_cycles"] = JsonValue(quantumCycles);
        v["ctx_cost"] = JsonValue(ctxSwitchCost);
    }
    v["latency"] = JsonValue(latency);
    v["network"] = JsonValue(network);
    if (network == "mesh") {
        v["mesh_x"] = JsonValue(meshX);
        v["mesh_y"] = JsonValue(meshY);
        v["hop_cycles"] = JsonValue(hopCycles);
        v["link_bits"] = JsonValue(linkBits);
    }
    v["directory"] = JsonValue(directoryMode);
    if (dirPointers)
        v["dir_pointers"] = JsonValue(dirPointers);
    v["cycles"] = JsonValue(cycles);
    v["digest_shared"] = JsonValue(format("0x%016llx",
        static_cast<unsigned long long>(digestShared)));
    v["digest_regs"] = JsonValue(format("0x%016llx",
        static_cast<unsigned long long>(digestRegs)));
    if (hasEfficiency) {
        v["efficiency"] = JsonValue(efficiency);
        v["speedup"] = JsonValue(speedup);
        v["reference_cycles"] = JsonValue(referenceCycles);
    }
    v["metrics"] = metrics.toJson();
    return v;
}

JsonValue
OptRecord::toJson() const
{
    JsonValue v = JsonValue::object();
    v["schema"] = JsonValue(OptRecord::kSchema);
    v["program"] = JsonValue(program);
    v["basic_blocks"] = JsonValue(std::uint64_t(stats.basicBlocks));
    v["instructions_in"] =
        JsonValue(std::uint64_t(stats.instructionsIn));
    v["instructions_out"] =
        JsonValue(std::uint64_t(stats.instructionsOut));
    v["shared_loads"] = JsonValue(std::uint64_t(stats.sharedLoads));
    v["switches_inserted"] =
        JsonValue(std::uint64_t(stats.switchesInserted));
    v["load_groups"] = JsonValue(std::uint64_t(stats.loadGroups));
    v["reordered_blocks"] =
        JsonValue(std::uint64_t(stats.reorderedBlocks));
    v["static_grouping_factor"] =
        JsonValue(stats.staticGroupingFactor());
    return v;
}

} // namespace mts
