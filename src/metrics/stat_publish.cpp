#include "metrics/stat_publish.hpp"

namespace mts
{

void
publishCpuStats(MetricsRegistry &reg, const std::string &scope,
                const CpuStats &s)
{
    reg.add(scope + ".instructions", s.instructions);
    reg.add(scope + ".cycles.busy", s.busyCycles);
    reg.add(scope + ".cycles.stall", s.stallCycles);
    reg.add(scope + ".cycles.idle", s.idleCycles);
    reg.add(scope + ".switches.taken", s.switchesTaken);
    reg.add(scope + ".switches.skipped", s.switchesSkipped);
    reg.add(scope + ".switches.slice_limit", s.sliceLimitSwitches);
    reg.add(scope + ".switches.zero_run", s.zeroRuns);
    reg.add(scope + ".loads.shared", s.sharedLoads);
    reg.add(scope + ".loads.spin", s.spinLoads);
    reg.add(scope + ".stores.shared", s.sharedStores);
    reg.add(scope + ".fetch_adds", s.fetchAdds);
    reg.add(scope + ".estimate_hits", s.estimateHits);
    reg.max(scope + ".finish_time", s.finishTime);
    reg.histogram(scope + ".run_lengths").merge(s.runLengths);
}

CpuStats
cpuStatsFromMetrics(const MetricsRegistry &reg, const std::string &scope)
{
    CpuStats s;
    s.instructions = reg.counter(scope + ".instructions");
    s.busyCycles = reg.counter(scope + ".cycles.busy");
    s.stallCycles = reg.counter(scope + ".cycles.stall");
    s.idleCycles = reg.counter(scope + ".cycles.idle");
    s.switchesTaken = reg.counter(scope + ".switches.taken");
    s.switchesSkipped = reg.counter(scope + ".switches.skipped");
    s.sliceLimitSwitches = reg.counter(scope + ".switches.slice_limit");
    s.zeroRuns = reg.counter(scope + ".switches.zero_run");
    s.sharedLoads = reg.counter(scope + ".loads.shared");
    s.spinLoads = reg.counter(scope + ".loads.spin");
    s.sharedStores = reg.counter(scope + ".stores.shared");
    s.fetchAdds = reg.counter(scope + ".fetch_adds");
    s.estimateHits = reg.counter(scope + ".estimate_hits");
    s.finishTime = reg.counter(scope + ".finish_time");
    if (const Histogram *h = reg.hist(scope + ".run_lengths"))
        s.runLengths.merge(*h);
    return s;
}

void
publishCacheStats(MetricsRegistry &reg, const std::string &scope,
                  const CacheStats &s)
{
    reg.add(scope + ".hits", s.hits);
    reg.add(scope + ".misses", s.misses);
    reg.add(scope + ".merged_misses", s.mergedMisses);
    reg.add(scope + ".invalidations", s.invalidationsReceived);
    reg.add(scope + ".store_throughs", s.storeThroughs);
}

CacheStats
cacheStatsFromMetrics(const MetricsRegistry &reg, const std::string &scope)
{
    CacheStats s;
    s.hits = reg.counter(scope + ".hits");
    s.misses = reg.counter(scope + ".misses");
    s.mergedMisses = reg.counter(scope + ".merged_misses");
    s.invalidationsReceived = reg.counter(scope + ".invalidations");
    s.storeThroughs = reg.counter(scope + ".store_throughs");
    return s;
}

void
publishNetworkStats(MetricsRegistry &reg, const std::string &scope,
                    const NetworkStats &s)
{
    reg.add(scope + ".messages", s.messages);
    reg.add(scope + ".bits.forward", s.forwardBits);
    reg.add(scope + ".bits.return", s.returnBits);
    reg.add(scope + ".msgs.load", s.loadMsgs);
    reg.add(scope + ".msgs.store", s.storeMsgs);
    reg.add(scope + ".msgs.faa", s.faaMsgs);
    reg.add(scope + ".msgs.fill", s.fillMsgs);
    reg.add(scope + ".msgs.inval", s.invalMsgs);
    reg.add(scope + ".msgs.spin", s.spinMsgs);
    reg.add(scope + ".msgs.pair", s.pairMsgs);
}

void
publishLinkStats(MetricsRegistry &reg, const std::string &scope,
                 const NetLinkStats &s)
{
    reg.add(scope + ".msgs.routed", s.routedMsgs);
    reg.add(scope + ".msgs.local", s.localMsgs);
    reg.add(scope + ".hops", s.hops);
    reg.add(scope + ".cycles.busy", s.busyCycles);
    reg.add(scope + ".cycles.wait", s.waitCycles);
    reg.max(scope + ".cycles.busy_max", s.busyMax);
}

NetLinkStats
linkStatsFromMetrics(const MetricsRegistry &reg, const std::string &scope)
{
    NetLinkStats s;
    s.routedMsgs = reg.counter(scope + ".msgs.routed");
    s.localMsgs = reg.counter(scope + ".msgs.local");
    s.hops = reg.counter(scope + ".hops");
    s.busyCycles = reg.counter(scope + ".cycles.busy");
    s.waitCycles = reg.counter(scope + ".cycles.wait");
    s.busyMax = reg.counter(scope + ".cycles.busy_max");
    return s;
}

void
publishSchedStats(MetricsRegistry &reg, const std::string &scope,
                  const SchedStats &s)
{
    reg.add(scope + ".preemptions", s.preemptions);
    reg.add(scope + ".cycles.save", s.saveCycles);
    reg.add(scope + ".cycles.restore", s.restoreCycles);
    reg.add(scope + ".switches.block", s.blockSwitches);
    reg.add(scope + ".installs.halt", s.haltInstalls);
    reg.add(scope + ".requeues", s.requeues);
    reg.histogram(scope + ".queue_depth").merge(s.queueDepth);
}

SchedStats
schedStatsFromMetrics(const MetricsRegistry &reg, const std::string &scope)
{
    SchedStats s;
    s.preemptions = reg.counter(scope + ".preemptions");
    s.saveCycles = reg.counter(scope + ".cycles.save");
    s.restoreCycles = reg.counter(scope + ".cycles.restore");
    s.blockSwitches = reg.counter(scope + ".switches.block");
    s.haltInstalls = reg.counter(scope + ".installs.halt");
    s.requeues = reg.counter(scope + ".requeues");
    if (const Histogram *h = reg.hist(scope + ".queue_depth"))
        s.queueDepth.merge(*h);
    return s;
}

void
publishFuseStats(MetricsRegistry &reg, const std::string &scope,
                 const FuseStats &s)
{
    reg.add(scope + ".spans", s.spans);
    reg.add(scope + ".execs", s.execs);
    reg.add(scope + ".instructions", s.instructions);
    reg.add(scope + ".bailouts.watermark", s.bailoutWatermark);
    reg.add(scope + ".bailouts.budget", s.bailoutBudget);
}

FuseStats
fuseStatsFromMetrics(const MetricsRegistry &reg, const std::string &scope)
{
    FuseStats s;
    s.spans = reg.counter(scope + ".spans");
    s.execs = reg.counter(scope + ".execs");
    s.instructions = reg.counter(scope + ".instructions");
    s.bailoutWatermark = reg.counter(scope + ".bailouts.watermark");
    s.bailoutBudget = reg.counter(scope + ".bailouts.budget");
    return s;
}

NetworkStats
networkStatsFromMetrics(const MetricsRegistry &reg,
                        const std::string &scope)
{
    NetworkStats s;
    s.messages = reg.counter(scope + ".messages");
    s.forwardBits = reg.counter(scope + ".bits.forward");
    s.returnBits = reg.counter(scope + ".bits.return");
    s.loadMsgs = reg.counter(scope + ".msgs.load");
    s.storeMsgs = reg.counter(scope + ".msgs.store");
    s.faaMsgs = reg.counter(scope + ".msgs.faa");
    s.fillMsgs = reg.counter(scope + ".msgs.fill");
    s.invalMsgs = reg.counter(scope + ".msgs.inval");
    s.spinMsgs = reg.counter(scope + ".msgs.spin");
    s.pairMsgs = reg.counter(scope + ".msgs.pair");
    return s;
}

} // namespace mts
