/**
 * @file
 * RunRecord: the single structured product of one simulation run.
 *
 * Where RunResult is the in-memory working set (merged stat structs plus
 * the full per-processor registry), a RunRecord is the compact, named,
 * self-describing form everything machine-readable flows through: the
 * machine configuration that produced the run, the aggregate metric
 * scopes, derived rates, and — when produced by ExperimentRunner — the
 * efficiency context against the reference run. `mtsim --json`, the
 * bench Reporter and the sweep aggregation all emit RunRecords.
 */
#ifndef MTS_METRICS_RUN_RECORD_HPP
#define MTS_METRICS_RUN_RECORD_HPP

#include <string>

#include "metrics/metrics.hpp"
#include "opt/grouping_pass.hpp"
#include "util/json.hpp"

namespace mts
{

struct MachineConfig;
struct RunResult;

/** Structured record of one run (see file comment). */
struct RunRecord
{
    /** Schema tag emitted into every JSON record. */
    static constexpr const char *kSchema = "mts.run/1";

    std::string app;    ///< application name ("" for raw programs)
    std::string model;  ///< switch-model name
    int numProcs = 0;
    int threadsPerProc = 0;     ///< hardware contexts per processor
    std::uint64_t latency = 0;  ///< network round-trip cycles
    std::uint64_t cycles = 0;   ///< completion time

    /// @name Virtual threading (emitted only when the layer is on).
    /// @{
    int swThreadsPerProc = 0;        ///< software threads (0 = off)
    std::uint64_t quantumCycles = 0; ///< timer-interrupt quantum
    std::uint64_t ctxSwitchCost = 0; ///< save (= restore) cost, cycles
    /// @}

    /// @name Interconnect + directory configuration.
    /// @{
    std::string network;        ///< backend name ("constant-latency", …)
    int meshX = 0;              ///< resolved mesh dims (mesh only)
    int meshY = 0;
    std::uint64_t hopCycles = 0;   ///< mesh only
    std::uint64_t linkBits = 0;    ///< mesh only
    std::string directoryMode;     ///< "full-map" | "limited"
    int dirPointers = 0;           ///< limited mode only
    /// @}

    /// @name Final-state digest (see sim/state_digest.hpp).
    /// @{
    std::uint64_t digestShared = 0;
    std::uint64_t digestRegs = 0;
    /// @}

    /** Aggregate scopes only (cpu, cache, net, estimate, derived). */
    MetricsRegistry metrics;

    /// @name Efficiency context (ExperimentRunner-produced records).
    /// @{
    bool hasEfficiency = false;
    double efficiency = 0.0;
    double speedup = 0.0;
    std::uint64_t referenceCycles = 0;
    /// @}

    JsonValue toJson() const;
};

/** Build the record of @p result under @p config. */
RunRecord makeRunRecord(const RunResult &result,
                        const MachineConfig &config,
                        std::string appName = {});

/** Structured record of one grouping-pass run: the static statistics
 *  `mtopt` prints, in the same machine-readable form as mts.run/1. */
struct OptRecord
{
    /** Schema tag emitted into every JSON record. */
    static constexpr const char *kSchema = "mts.opt/1";

    std::string program;  ///< app name or assembly file
    GroupingStats stats;

    JsonValue toJson() const;
};

} // namespace mts

#endif // MTS_METRICS_RUN_RECORD_HPP
