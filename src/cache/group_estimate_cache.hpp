/**
 * @file
 * The paper's Section 5.2 inter-block grouping estimator.
 *
 * "We simulate a very small cache associated with each thread. The cache
 * has a line size of 32 words, but only one line. We assume that any loads
 * which hit in this cache are in the same structure or array as the
 * preceding reference and thus could have been grouped."
 *
 * A hit means the load *could have been issued with the preceding group*,
 * so under the estimate the load's latency is considered already covered:
 * the simulator completes it immediately (its traffic is still counted).
 * Spin loads and fetch-and-adds are excluded — they must observe fresh
 * values and are not grouping candidates.
 */
#ifndef MTS_CACHE_GROUP_ESTIMATE_CACHE_HPP
#define MTS_CACHE_GROUP_ESTIMATE_CACHE_HPP

#include <cstdint>

#include "isa/addressing.hpp"

namespace mts
{

/** One-line, 32-word per-thread tracking cache (address-only). */
class GroupEstimateCache
{
  public:
    static constexpr Addr kLineWords = 32;

    /**
     * Record a shared load and report whether it hit the line loaded by
     * the preceding reference.
     */
    bool
    access(Addr addr)
    {
        Addr base = addr & ~(kLineWords - 1);
        if (valid && base == lineBase) {
            ++hitCount;
            return true;
        }
        valid = true;
        lineBase = base;
        ++missCount;
        return false;
    }

    std::uint64_t
    hits() const
    {
        return hitCount;
    }

    std::uint64_t
    misses() const
    {
        return missCount;
    }

    double
    hitRate() const
    {
        std::uint64_t total = hitCount + missCount;
        return total ? static_cast<double>(hitCount) /
                           static_cast<double>(total)
                     : 0.0;
    }

  private:
    bool valid = false;
    Addr lineBase = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace mts

#endif // MTS_CACHE_GROUP_ESTIMATE_CACHE_HPP
