/**
 * @file
 * Sharer directory for the write-through invalidate protocol, with a
 * full-map and a limited-pointer (Dir_i B) organization.
 *
 * The directory lives with the memory modules: fills register the
 * requesting processor as a sharer; a write (store or fetch-and-add)
 * arriving at memory sends one invalidation per sharer other than the
 * writer. Evictions are silent (the cache does not notify the directory),
 * so an invalidation can target a processor that already replaced the
 * line — the message is still counted, as in an imprecise real directory.
 *
 * FullMap keeps every sharer exactly (the pre-refactor behaviour,
 * byte-identical: sharers are stored and invalidated in registration
 * order). LimitedPtr keeps at most DirectoryConfig::pointers sharers per
 * line; registering one more sets the entry's broadcast bit, and a
 * subsequent write invalidates every processor except the writer —
 * Dir_i B in the classic taxonomy. Per-line state is O(pointers)
 * instead of O(P), which is what makes P=1024 affordable.
 */
#ifndef MTS_CACHE_DIRECTORY_HPP
#define MTS_CACHE_DIRECTORY_HPP

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "isa/addressing.hpp"
#include "util/error.hpp"

namespace mts
{

/** Directory organization. */
enum class DirectoryMode : std::uint8_t
{
    FullMap,     ///< exact sharer list per line (O(P) worst case)
    LimitedPtr,  ///< <= pointers sharers, broadcast on overflow (Dir_i B)
};

/** Directory configuration (part of MachineConfig). */
struct DirectoryConfig
{
    DirectoryMode mode = DirectoryMode::FullMap;

    /** Pointer slots per line in LimitedPtr mode (1..kMaxDirPointers). */
    int pointers = 4;
};

constexpr int kMaxDirPointers = 8;

/** Sharer directory keyed by line base address. */
class Directory
{
  public:
    Directory() = default;

    Directory(const DirectoryConfig &config, int numProcs)
        : cfg(config), procs(numProcs)
    {
    }

    /** Record @p proc as a sharer of the line at @p base. */
    void
    addSharer(Addr base, std::uint16_t proc)
    {
        Entry &e = lines[base];
        if (e.broadcast)
            return;  // already imprecise; the write will broadcast
        for (int i = 0; i < e.count; ++i)
            if (ptrOf(e, i) == proc)
                return;
        bool limited = cfg.mode == DirectoryMode::LimitedPtr;
        if (limited && e.count >= cfg.pointers) {
            // Pointer overflow: drop to broadcast (Dir_i B). The exact
            // list is forgotten; the next write invalidates everyone.
            e.broadcast = true;
            ++overflowCount;
            return;
        }
        if (e.count < kMaxDirPointers)
            e.ptrs[e.count] = proc;
        else
            e.spill.push_back(proc);
        ++e.count;
    }

    /**
     * Collect the sharers to invalidate for a write by @p writer and clear
     * the entry (the writer's own copy, if any, is re-registered by the
     * caller). Returns the processors to invalidate, excluding the writer;
     * for a broadcast entry that is every processor except the writer.
     */
    std::vector<std::uint16_t>
    writersInvalidationSet(Addr base, std::uint16_t writer)
    {
        std::vector<std::uint16_t> out;
        auto it = lines.find(base);
        if (it == lines.end())
            return out;
        const Entry &e = it->second;
        if (e.broadcast) {
            ++broadcastCount;
            out.reserve(static_cast<std::size_t>(procs) - 1);
            for (int p = 0; p < procs; ++p)
                if (p != writer)
                    out.push_back(static_cast<std::uint16_t>(p));
        } else {
            for (int i = 0; i < e.count; ++i) {
                std::uint16_t p = ptrOf(e, i);
                if (p != writer)
                    out.push_back(p);
            }
        }
        lines.erase(it);
        return out;
    }

    /** Number of lines with at least one registered sharer. */
    std::size_t
    trackedLines() const
    {
        return lines.size();
    }

    /** Lines currently in broadcast (overflowed) state. */
    std::size_t
    broadcastLines() const
    {
        std::size_t n = 0;
        for (const auto &kv : lines)
            n += kv.second.broadcast ? 1 : 0;
        return n;
    }

    /// @name Imprecision counters (published as directory metrics).
    /// @{
    std::uint64_t
    overflows() const
    {
        return overflowCount;
    }

    std::uint64_t
    broadcasts() const
    {
        return broadcastCount;
    }
    /// @}

    const DirectoryConfig &
    config() const
    {
        return cfg;
    }

  private:
    /**
     * One line's sharer set: up to kMaxDirPointers inline, the rest
     * (FullMap only) in a spill vector. Registration order is preserved
     * across both so FullMap invalidation order matches the historical
     * full-map directory exactly.
     */
    struct Entry
    {
        int count = 0;
        bool broadcast = false;
        std::uint16_t ptrs[kMaxDirPointers] = {};
        std::vector<std::uint16_t> spill;
    };

    static std::uint16_t
    ptrOf(const Entry &e, int i)
    {
        return i < kMaxDirPointers
                   ? e.ptrs[i]
                   : e.spill[static_cast<std::size_t>(i - kMaxDirPointers)];
    }

    DirectoryConfig cfg;
    int procs = 0;
    std::uint64_t overflowCount = 0;
    std::uint64_t broadcastCount = 0;
    std::unordered_map<Addr, Entry> lines;
};

/** Directory mode names (CLI surface). */
inline const char *
directoryModeName(DirectoryMode mode)
{
    switch (mode) {
      case DirectoryMode::FullMap:
        return "full-map";
      case DirectoryMode::LimitedPtr:
        return "limited";
    }
    return "?";
}

/** Parse a directory mode; fatal (naming valid modes) if unknown. */
inline DirectoryMode
directoryModeFromName(std::string_view name)
{
    if (name == "full-map")
        return DirectoryMode::FullMap;
    if (name == "limited")
        return DirectoryMode::LimitedPtr;
    MTS_FATAL("unknown directory mode '"
              << name << "' (--directory): valid modes are full-map, "
                         "limited");
}

} // namespace mts

#endif // MTS_CACHE_DIRECTORY_HPP
