/**
 * @file
 * Full-map sharer directory for the write-through invalidate protocol.
 *
 * The directory lives with the memory modules: fills register the
 * requesting processor as a sharer; a write (store or fetch-and-add)
 * arriving at memory sends one invalidation per sharer other than the
 * writer. Evictions are silent (the cache does not notify the directory),
 * so an invalidation can target a processor that already replaced the
 * line — the message is still counted, as in an imprecise real directory.
 */
#ifndef MTS_CACHE_DIRECTORY_HPP
#define MTS_CACHE_DIRECTORY_HPP

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/addressing.hpp"

namespace mts
{

/** Sharer directory keyed by line base address. */
class Directory
{
  public:
    /** Record @p proc as a sharer of the line at @p base. */
    void
    addSharer(Addr base, std::uint16_t proc)
    {
        auto &v = sharers[base];
        if (std::find(v.begin(), v.end(), proc) == v.end())
            v.push_back(proc);
    }

    /**
     * Collect the sharers to invalidate for a write by @p writer and clear
     * the entry (the writer's own copy, if any, is re-registered by the
     * caller). Returns the processors to invalidate, excluding the writer.
     */
    std::vector<std::uint16_t>
    writersInvalidationSet(Addr base, std::uint16_t writer)
    {
        std::vector<std::uint16_t> out;
        auto it = sharers.find(base);
        if (it == sharers.end())
            return out;
        for (std::uint16_t p : it->second)
            if (p != writer)
                out.push_back(p);
        sharers.erase(it);
        return out;
    }

    /** Number of lines with at least one registered sharer. */
    std::size_t
    trackedLines() const
    {
        return sharers.size();
    }

  private:
    std::unordered_map<Addr, std::vector<std::uint16_t>> sharers;
};

} // namespace mts

#endif // MTS_CACHE_DIRECTORY_HPP
