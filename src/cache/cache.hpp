/**
 * @file
 * Per-processor cache of shared data, for the conditional-switch,
 * switch-on-miss, and switch-on-use-miss models (paper Section 6).
 *
 * Protocol: direct-mapped, write-through, no-write-allocate, with
 * directory-driven invalidation. Because the cache is write-through, the
 * memory image is always current; the cache is purely a latency/bandwidth
 * filter, and every correctness-relevant update flows through memory in
 * global event order. A line filled by a miss becomes usable at the fill's
 * return time; accesses that touch the line earlier merge into the
 * outstanding fill MSHR-style (counted as misses, but generate no new
 * traffic).
 */
#ifndef MTS_CACHE_CACHE_HPP
#define MTS_CACHE_CACHE_HPP

#include <cstdint>
#include <vector>

#include "isa/addressing.hpp"
#include "util/error.hpp"

namespace mts
{

/** Cache geometry. */
struct CacheConfig
{
    unsigned sizeWords = 2048;  ///< total capacity in words
    unsigned lineWords = 4;     ///< line size in words (power of two)

    unsigned
    numLines() const
    {
        return sizeWords / lineWords;
    }
};

/** Per-cache counters. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t mergedMisses = 0;  ///< hit an in-flight fill
    std::uint64_t invalidationsReceived = 0;
    std::uint64_t storeThroughs = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses + mergedMisses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    void
    merge(const CacheStats &o)
    {
        hits += o.hits;
        misses += o.misses;
        mergedMisses += o.mergedMisses;
        invalidationsReceived += o.invalidationsReceived;
        storeThroughs += o.storeThroughs;
    }
};

/** Outcome of probing the cache for a load. */
enum class ProbeResult
{
    Hit,    ///< data available from the cache now
    Merge,  ///< line is being filled; wait for validFrom, no new traffic
    Miss    ///< go to memory (and fill the line)
};

/** One processor's shared-data cache. */
class SharedCache
{
  public:
    explicit SharedCache(const CacheConfig &config) : cfg(config)
    {
        MTS_REQUIRE(cfg.lineWords && !(cfg.lineWords & (cfg.lineWords - 1)),
                    "cache line size must be a power of two");
        MTS_REQUIRE(cfg.sizeWords % cfg.lineWords == 0,
                    "cache size must be a multiple of the line size");
        lines.resize(cfg.numLines());
    }

    const CacheConfig &
    config() const
    {
        return cfg;
    }

    /** First word address of the line containing @p addr. */
    Addr
    lineBase(Addr addr) const
    {
        return addr & ~static_cast<Addr>(cfg.lineWords - 1);
    }

    /**
     * Probe for a load at time @p now.
     *
     * On Hit, @p value receives the cached word. On Merge, @p readyAt
     * receives the time the in-flight fill returns.
     */
    ProbeResult
    probe(Addr addr, Cycle now, std::uint64_t &value, Cycle &readyAt)
    {
        Line &ln = line(addr);
        if (ln.valid && ln.base == lineBase(addr)) {
            if (now >= ln.validFrom) {
                ++stats.hits;
                value = ln.data[addr - ln.base];
                return ProbeResult::Hit;
            }
            ++stats.mergedMisses;
            readyAt = ln.validFrom;
            return ProbeResult::Merge;
        }
        ++stats.misses;
        return ProbeResult::Miss;
    }

    /**
     * Install a line after a miss fill.
     *
     * @param base      Line base address.
     * @param words     The line's data (lineWords entries).
     * @param validFrom When the requesting processor may consume it.
     */
    void
    install(Addr base, const std::uint64_t *words, Cycle validFrom)
    {
        Line &ln = line(base);
        ln.valid = true;
        ln.base = base;
        ln.validFrom = validFrom;
        ln.data.assign(words, words + cfg.lineWords);
    }

    /**
     * Statistics-free read of a word known to be resident (e.g. the
     * second word of a pair hit). Returns false if not present/usable.
     */
    bool
    tryRead(Addr addr, Cycle now, std::uint64_t &value) const
    {
        const Line &ln = lines[lineIndex(addr)];
        if (ln.valid && ln.base == lineBase(addr) && now >= ln.validFrom) {
            value = ln.data[addr - ln.base];
            return true;
        }
        return false;
    }

    /**
     * Write-through update of the processor's own copy (store-buffer
     * forwarding): keeps the line coherent with the store the processor
     * just issued. No-write-allocate: absent lines stay absent.
     */
    void
    updateOwn(Addr addr, std::uint64_t value)
    {
        Line &ln = line(addr);
        if (ln.valid && ln.base == lineBase(addr))
            ln.data[addr - ln.base] = value;
        ++stats.storeThroughs;
    }

    /**
     * Statistics-free variant of updateOwn for store-buffer forwarding
     * onto a freshly installed line: the fill read memory before this
     * (already counted) in-flight store arrived there.
     */
    void
    refresh(Addr addr, std::uint64_t value)
    {
        Line &ln = line(addr);
        if (ln.valid && ln.base == lineBase(addr))
            ln.data[addr - ln.base] = value;
    }

    /** True if the line containing @p addr is present (any validFrom). */
    bool
    present(Addr addr) const
    {
        const Line &ln = lines[lineIndex(addr)];
        return ln.valid && ln.base == lineBase(addr);
    }

    /** Directory-initiated invalidation. */
    void
    invalidate(Addr addr)
    {
        Line &ln = line(addr);
        if (ln.valid && ln.base == lineBase(addr)) {
            ln.valid = false;
            ++stats.invalidationsReceived;
        }
    }

    CacheStats &
    statistics()
    {
        return stats;
    }

    const CacheStats &
    statistics() const
    {
        return stats;
    }

  private:
    struct Line
    {
        bool valid = false;
        Addr base = 0;
        Cycle validFrom = 0;
        std::vector<std::uint64_t> data;
    };

    std::size_t
    lineIndex(Addr addr) const
    {
        return static_cast<std::size_t>((addr / cfg.lineWords) %
                                        cfg.numLines());
    }

    Line &
    line(Addr addr)
    {
        return lines[lineIndex(addr)];
    }

    CacheConfig cfg;
    std::vector<Line> lines;
    CacheStats stats;
};

} // namespace mts

#endif // MTS_CACHE_CACHE_HPP
