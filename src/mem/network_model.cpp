#include "mem/network_model.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/flat_map.hpp"

namespace mts
{

namespace
{

/**
 * The paper's Section 3 interconnect: an ordered pipe with a fixed
 * one-way latency, extracted verbatim from the pre-refactor
 * Machine::issueMem. Optional extensions (both default off): finite
 * per-processor injection channels (Section 6.1's narrow-channel
 * discussion) and per-word memory-port service time (hot spots).
 */
class ConstantLatencyNetwork final : public NetworkModel
{
  public:
    ConstantLatencyNetwork(const NetworkConfig &net, int numProcs,
                           unsigned lineWords)
        : net_(net), lineWords_(lineWords),
          portFree_(net.memPortCycles ? 1024 : 0)
    {
        injectFree_.assign(static_cast<std::size_t>(numProcs), 0);
        lastArrival_.assign(static_cast<std::size_t>(numProcs), 0);
    }

    NetworkTiming
    route(const MemOp &op) override
    {
        Cycle sendStart = op.issueTime;
        Cycle retSerial = 0;

        // Optional channel contention (spin traffic assumed to use a
        // separate hardware synchronization path, consistent with its
        // exclusion from the bandwidth accounting).
        if (net_.channelBits && !op.spin && !op.noTraffic) {
            Cycle &next = injectFree_[op.proc];
            sendStart = std::max(sendStart, next);
            sendStart += net_.serializeCycles(messageForwardBits(op));
            next = sendStart;
            retSerial =
                net_.serializeCycles(messageReturnBits(op, lineWords_));
        }

        Cycle arrival = sendStart + net_.oneWay();

        // Optional per-word memory service serialization (hot spots; the
        // paper's combining network makes this 0). Spin traffic is
        // exempt, consistent with footnote 2: real machines provide
        // spinning mechanisms that do not load the memory module.
        if (net_.memPortCycles && !op.spin && !op.noTraffic) {
            Cycle &free = portFree_[op.addr];
            Cycle service = std::max(arrival, free);
            free = service + net_.memPortCycles;
            arrival = service + net_.memPortCycles;
        }

        // Preserve per-source ordering (the paper's ordered-delivery
        // network) even when contention delays individual messages.
        Cycle &last = lastArrival_[op.proc];
        arrival = std::max(arrival, last);
        last = arrival;

        return {arrival, arrival + net_.oneWay() + retSerial};
    }

    Cycle
    minDelay() const override
    {
        return net_.oneWay();
    }

    bool
    zeroLatency() const override
    {
        return net_.roundTrip == 0;
    }

    std::string_view
    name() const override
    {
        return networkKindName(NetworkKind::ConstantLatency);
    }

  private:
    const NetworkConfig net_;
    const unsigned lineWords_;
    std::vector<Cycle> injectFree_;   ///< channel-contention state
    std::vector<Cycle> lastArrival_;  ///< per-source ordered delivery
    AddrCycleMap portFree_;           ///< hot-spot model state
};

/**
 * 2D mesh with XY dimension-ordered routing and store-and-forward
 * switching: a message of B bits occupies each directed link on its
 * path for ceil(B / linkBits) cycles, queueing behind earlier traffic,
 * and pays hopCycles of router/wire latency per hop. Shared words are
 * line-interleaved across the mesh's memory modules, so latency is
 * distance- *and* load-dependent — the regime the paper's constant
 * round trip abstracts away.
 *
 * Spin and no-traffic messages pay distance but are exempt from link
 * occupancy and memory-port service (footnote 2's separate spinning
 * hardware) and are excluded from the link counters, mirroring the
 * traffic accounting.
 *
 * Delivery stays ordered per source (lastArrival clamp): the store
 * buffer's FIFO retirement and the event queue's near-monotone fast
 * path rely on it. An adaptive-routing mesh would need a reorder stage
 * at the receiver; we keep the paper's ordered-network assumption.
 */
class MeshNetwork final : public NetworkModel
{
  public:
    MeshNetwork(const NetworkConfig &net, int numProcs,
                unsigned lineWords)
        : net_(net), numProcs_(numProcs), lineWords_(lineWords),
          portFree_(net.memPortCycles ? 1024 : 0)
    {
        auto [x, y] = resolveMeshDims(net, numProcs);
        dimX_ = x;
        dimY_ = y;
        MTS_REQUIRE(dimX_ >= 1 && dimY_ >= 1 &&
                        dimX_ * dimY_ == numProcs,
                    "mesh dims " << dimX_ << "x" << dimY_
                                 << " do not cover " << numProcs
                                 << " processors");
        linkFree_.assign(static_cast<std::size_t>(numProcs) * 4, 0);
        linkBusy_.assign(static_cast<std::size_t>(numProcs) * 4, 0);
        lastArrival_.assign(static_cast<std::size_t>(numProcs), 0);
    }

    NetworkTiming
    route(const MemOp &op) override
    {
        const bool exempt = op.spin || op.noTraffic;
        const int src = op.proc;
        const int home = homeNode(op.addr);

        Cycle arrival = traverse(op.issueTime, src, home,
                                 messageForwardBits(op), exempt);

        if (net_.memPortCycles && !exempt) {
            Cycle &free = portFree_[op.addr];
            Cycle service = std::max(arrival, free);
            free = service + net_.memPortCycles;
            arrival = service + net_.memPortCycles;
        }

        // Ordered delivery per source (see class comment).
        Cycle &last = lastArrival_[src];
        arrival = std::max(arrival, last);
        last = arrival;

        Cycle ret = traverse(arrival, home, src,
                             messageReturnBits(op, lineWords_), exempt);
        return {arrival, ret};
    }

    Cycle
    minDelay() const override
    {
        // Even a home-local access pays one injection hop.
        return net_.hopCycles;
    }

    bool
    zeroLatency() const override
    {
        return false;
    }

    std::string_view
    name() const override
    {
        return networkKindName(NetworkKind::Mesh);
    }

    const NetLinkStats *
    linkStats() const override
    {
        return &stats_;
    }

  private:
    /** Home memory module of @p addr: lines interleaved round-robin. */
    int
    homeNode(Addr addr) const
    {
        return static_cast<int>((addr / lineWords_) %
                                static_cast<Addr>(numProcs_));
    }

    /// Directed-link ids: 4 per node, E/W/N/S.
    enum : int { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

    std::size_t
    linkId(int x, int y, int dir) const
    {
        return (static_cast<std::size_t>(y) * dimX_ + x) * 4 + dir;
    }

    /**
     * Move one message of @p bits from @p from to @p to, starting at
     * @p t, occupying every link on the XY path (unless @p exempt).
     * Returns its arrival time at @p to.
     */
    Cycle
    traverse(Cycle t, int from, int to, std::uint64_t bits, bool exempt)
    {
        if (from == to) {
            // Node-local: no links crossed, one injection hop into the
            // local memory module (or back into the processor).
            if (!exempt)
                ++stats_.localMsgs;
            return t + net_.hopCycles;
        }
        const Cycle ser =
            std::max<Cycle>(1, (bits + net_.linkBits - 1) / net_.linkBits);
        int x = from % dimX_, y = from / dimX_;
        const int tx = to % dimX_, ty = to / dimX_;
        std::uint64_t pathHops = 0;
        while (x != tx || y != ty) {
            int dir;
            if (x != tx)
                dir = tx > x ? kEast : kWest;
            else
                dir = ty > y ? kSouth : kNorth;
            if (exempt) {
                t += net_.hopCycles;
            } else {
                std::size_t l = linkId(x, y, dir);
                Cycle depart = std::max(t, linkFree_[l]);
                stats_.waitCycles += depart - t;
                linkFree_[l] = depart + ser;
                linkBusy_[l] += ser;
                stats_.busyCycles += ser;
                stats_.busyMax = std::max(stats_.busyMax, linkBusy_[l]);
                t = depart + ser + net_.hopCycles;
            }
            switch (dir) {
              case kEast: ++x; break;
              case kWest: --x; break;
              case kSouth: ++y; break;
              case kNorth: --y; break;
            }
            ++pathHops;
        }
        if (!exempt) {
            ++stats_.routedMsgs;
            stats_.hops += pathHops;
        }
        return t;
    }

    const NetworkConfig net_;
    const int numProcs_;
    const unsigned lineWords_;
    int dimX_ = 1;
    int dimY_ = 1;
    std::vector<Cycle> linkFree_;          ///< per-link next-free time
    std::vector<std::uint64_t> linkBusy_;  ///< per-link busy cycles
    std::vector<Cycle> lastArrival_;       ///< per-source ordering
    AddrCycleMap portFree_;                ///< hot-spot model state
    NetLinkStats stats_;
};

} // namespace

std::string_view
networkKindName(NetworkKind kind)
{
    switch (kind) {
      case NetworkKind::ConstantLatency:
        return "constant-latency";
      case NetworkKind::Mesh:
        return "mesh";
    }
    return "?";
}

NetworkKind
networkKindFromName(std::string_view name)
{
    for (NetworkKind k : kAllNetworkKinds)
        if (networkKindName(k) == name)
            return k;
    std::string valid;
    for (NetworkKind k : kAllNetworkKinds) {
        if (!valid.empty())
            valid += ", ";
        valid += networkKindName(k);
    }
    MTS_FATAL("unknown network '" << name
                                  << "' (--network): valid backends are "
                                  << valid);
}

std::unique_ptr<NetworkModel>
makeNetworkModel(const NetworkConfig &net, int numProcs,
                 unsigned lineWords)
{
    switch (net.kind) {
      case NetworkKind::ConstantLatency:
        return std::make_unique<ConstantLatencyNetwork>(net, numProcs,
                                                        lineWords);
      case NetworkKind::Mesh:
        return std::make_unique<MeshNetwork>(net, numProcs, lineWords);
    }
    MTS_FATAL("unknown NetworkKind "
              << static_cast<int>(net.kind));
}

std::string
networkConfigToken(const NetworkConfig &net)
{
    std::string s;
    switch (net.kind) {
      case NetworkKind::ConstantLatency:
        s = "const:rt" + std::to_string(net.roundTrip) + ":cb" +
            std::to_string(net.channelBits);
        break;
      case NetworkKind::Mesh:
        s = "mesh:" + std::to_string(net.meshX) + "x" +
            std::to_string(net.meshY) + ":h" +
            std::to_string(net.hopCycles) + ":lb" +
            std::to_string(net.linkBits);
        break;
    }
    s += ":mp" + std::to_string(net.memPortCycles);
    return s;
}

} // namespace mts
