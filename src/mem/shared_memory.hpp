/**
 * @file
 * The shared memory image: a flat word array starting at kSharedBase.
 *
 * All mutations happen at message-arrival time in global event order, which
 * together with the constant-latency ordered network makes the simulated
 * memory system sequentially consistent per memory module. Fetch-and-add
 * is performed atomically here, which is what a combining network
 * guarantees at the switches/memory.
 */
#ifndef MTS_MEM_SHARED_MEMORY_HPP
#define MTS_MEM_SHARED_MEMORY_HPP

#include <bit>
#include <cstdint>
#include <vector>

#include "isa/addressing.hpp"
#include "util/error.hpp"

namespace mts
{

/** Shared-segment storage with typed word access. */
class SharedMemory
{
  public:
    /** @param words Size of the shared segment in 64-bit words. */
    explicit SharedMemory(Addr words) : data(words, 0) {}

    Addr
    sizeWords() const
    {
        return data.size();
    }

    std::uint64_t
    read(Addr addr) const
    {
        return data[index(addr)];
    }

    void
    write(Addr addr, std::uint64_t value)
    {
        data[index(addr)] = value;
    }

    /** Atomic fetch-and-add; returns the previous value. */
    std::uint64_t
    fetchAdd(Addr addr, std::uint64_t addend)
    {
        std::uint64_t &w = data[index(addr)];
        std::uint64_t old = w;
        w += addend;
        return old;
    }

    /// @name Typed host-side helpers for workload setup and verification.
    /// @{
    std::int64_t
    readInt(Addr addr) const
    {
        return static_cast<std::int64_t>(read(addr));
    }

    double
    readDouble(Addr addr) const
    {
        return std::bit_cast<double>(read(addr));
    }

    void
    writeInt(Addr addr, std::int64_t v)
    {
        write(addr, static_cast<std::uint64_t>(v));
    }

    void
    writeDouble(Addr addr, double v)
    {
        write(addr, std::bit_cast<std::uint64_t>(v));
    }
    /// @}

  private:
    std::size_t
    index(Addr addr) const
    {
        MTS_REQUIRE(isSharedAddr(addr),
                    "shared access to non-shared address " << addr);
        Addr off = addr - kSharedBase;
        MTS_REQUIRE(off < data.size(),
                    "shared address out of range: offset "
                        << off << " >= " << data.size());
        return static_cast<std::size_t>(off);
    }

    std::vector<std::uint64_t> data;
};

} // namespace mts

#endif // MTS_MEM_SHARED_MEMORY_HPP
