/**
 * @file
 * Constant-latency network model and bandwidth accounting.
 *
 * Following the paper (Section 3), the interconnection network is not
 * simulated: every shared access has a constant round-trip latency
 * (default 200 cycles), messages are delivered in issue order, and
 * fetch-and-add combines at the memory module. What *is* tracked is the
 * traffic each application would put on the network (Section 6.1 /
 * Table 7): message counts and bits, split into forward and return
 * directions, with lock/barrier spin traffic excluded (footnote 2).
 */
#ifndef MTS_MEM_NETWORK_HPP
#define MTS_MEM_NETWORK_HPP

#include <cstdint>

#include "isa/addressing.hpp"
#include "mem/event_queue.hpp"

namespace mts
{

/// @name Message field sizes in bits (see DESIGN.md §3).
/// @{
constexpr std::uint64_t kHeaderBits = 32;
constexpr std::uint64_t kAddrBits = 32;
constexpr std::uint64_t kDataBits = 64;
/// @}

/** Network latency and (optional) contention configuration. */
struct NetworkConfig
{
    /** Round-trip latency in cycles; 0 models the ideal machine. */
    Cycle roundTrip = 200;

    /**
     * Channel width in bits per cycle per direction per processor;
     * 0 = unlimited (the paper's base model). When finite, messages
     * serialize at the processor's network interface and responses pay
     * their serialization latency — the "channels as narrow as 2 bits"
     * discussion of Section 6.1 made executable.
     */
    std::uint64_t channelBits = 0;

    /**
     * Per-word memory service time in cycles; 0 = combining network
     * (the paper's assumption: concurrent fetch-and-adds to one word
     * combine). When positive, accesses to the same word serialize at
     * the memory module — the hot-spot behaviour software combining
     * trees exist to avoid (paper's reference [26]).
     */
    Cycle memPortCycles = 0;

    Cycle
    oneWay() const
    {
        return roundTrip / 2;
    }

    /** Cycles to push @p bits through the channel (0 if unlimited). */
    Cycle
    serializeCycles(std::uint64_t bits) const
    {
        return channelBits ? (bits + channelBits - 1) / channelBits : 0;
    }
};

/// @name Message sizes (shared by traffic accounting and serialization).
/// @{

/** Bits of the forward (request) message of @p op. */
inline std::uint64_t
messageForwardBits(const MemOp &op)
{
    switch (op.kind) {
      case MemOpKind::Load:
      case MemOpKind::LoadPair:
        return kHeaderBits + kAddrBits;
      case MemOpKind::Store:
      case MemOpKind::FetchAdd:
        return kHeaderBits + kAddrBits + kDataBits;
    }
    return 0;
}

/** Bits of the return (response) message of @p op. */
inline std::uint64_t
messageReturnBits(const MemOp &op, unsigned lineWords)
{
    switch (op.kind) {
      case MemOpKind::Load:
      case MemOpKind::LoadPair: {
        std::uint64_t words =
            op.fillLine ? lineWords
                        : (op.kind == MemOpKind::LoadPair ? 2 : 1);
        return kHeaderBits + words * kDataBits;
      }
      case MemOpKind::Store:
        return kHeaderBits;  // acknowledgement
      case MemOpKind::FetchAdd:
        return kHeaderBits + kDataBits;
    }
    return 0;
}
/// @}

/** Accumulated traffic statistics. */
struct NetworkStats
{
    std::uint64_t messages = 0;
    std::uint64_t forwardBits = 0;
    std::uint64_t returnBits = 0;

    std::uint64_t loadMsgs = 0;
    std::uint64_t storeMsgs = 0;
    std::uint64_t faaMsgs = 0;
    std::uint64_t fillMsgs = 0;
    std::uint64_t invalMsgs = 0;
    std::uint64_t spinMsgs = 0;  ///< counted separately, not in bits
    std::uint64_t pairMsgs = 0;  ///< subset of loadMsgs (2-word returns)

    std::uint64_t
    totalBits() const
    {
        return forwardBits + returnBits;
    }

    /** Paper's Table 7 metric: total bits per processor per cycle. */
    double
    bitsPerCycle(std::uint64_t cycles, int numProcs) const
    {
        if (!cycles || !numProcs)
            return 0.0;
        return static_cast<double>(totalBits()) /
               (static_cast<double>(cycles) *
                static_cast<double>(numProcs));
    }

    void
    merge(const NetworkStats &o)
    {
        messages += o.messages;
        forwardBits += o.forwardBits;
        returnBits += o.returnBits;
        loadMsgs += o.loadMsgs;
        storeMsgs += o.storeMsgs;
        faaMsgs += o.faaMsgs;
        fillMsgs += o.fillMsgs;
        invalMsgs += o.invalMsgs;
        spinMsgs += o.spinMsgs;
        pairMsgs += o.pairMsgs;
    }

    /**
     * Record the traffic of one shared access.
     *
     * @param op        The access (spin/noTraffic flags respected).
     * @param lineWords Words transferred on a fill (op.fillLine).
     */
    void
    count(const MemOp &op, unsigned lineWords)
    {
        if (op.noTraffic)
            return;
        if (op.spin) {
            ++spinMsgs;
            return;
        }
        ++messages;
        forwardBits += messageForwardBits(op);
        returnBits += messageReturnBits(op, lineWords);
        switch (op.kind) {
          case MemOpKind::Load:
          case MemOpKind::LoadPair:
            if (op.fillLine) {
                ++fillMsgs;
            } else {
                ++loadMsgs;
                if (op.kind == MemOpKind::LoadPair)
                    ++pairMsgs;
            }
            break;
          case MemOpKind::Store:
            ++storeMsgs;
            break;
          case MemOpKind::FetchAdd:
            ++faaMsgs;
            break;
        }
    }

    /** Record one invalidation message plus its acknowledgement. */
    void
    countInvalidation()
    {
        ++messages;
        ++invalMsgs;
        forwardBits += kHeaderBits + kAddrBits;
        returnBits += kHeaderBits;
    }
};

} // namespace mts

#endif // MTS_MEM_NETWORK_HPP
