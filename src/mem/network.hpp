/**
 * @file
 * Constant-latency network model and bandwidth accounting.
 *
 * Following the paper (Section 3), the interconnection network is not
 * simulated: every shared access has a constant round-trip latency
 * (default 200 cycles), messages are delivered in issue order, and
 * fetch-and-add combines at the memory module. What *is* tracked is the
 * traffic each application would put on the network (Section 6.1 /
 * Table 7): message counts and bits, split into forward and return
 * directions, with lock/barrier spin traffic excluded (footnote 2).
 */
#ifndef MTS_MEM_NETWORK_HPP
#define MTS_MEM_NETWORK_HPP

#include <cstdint>
#include <utility>

#include "isa/addressing.hpp"
#include "mem/event_queue.hpp"

namespace mts
{

/// @name Message field sizes in bits (see DESIGN.md §3).
/// @{
constexpr std::uint64_t kHeaderBits = 32;
constexpr std::uint64_t kAddrBits = 32;
constexpr std::uint64_t kDataBits = 64;
/// @}

/**
 * Interconnect backend selector (see mem/network_model.hpp). The
 * constant-latency pipe is the paper's model; the mesh makes latency
 * distance- and load-dependent so 1024-processor-class configurations
 * stop being a thought experiment.
 */
enum class NetworkKind : std::uint8_t
{
    ConstantLatency,  ///< ordered pipe, fixed round trip (the paper)
    Mesh,             ///< 2D mesh, XY routing, per-link contention
};

/** Network latency and (optional) contention configuration. */
struct NetworkConfig
{
    /** Round-trip latency in cycles; 0 models the ideal machine. */
    Cycle roundTrip = 200;

    /**
     * Channel width in bits per cycle per direction per processor;
     * 0 = unlimited (the paper's base model). When finite, messages
     * serialize at the processor's network interface and responses pay
     * their serialization latency — the "channels as narrow as 2 bits"
     * discussion of Section 6.1 made executable.
     */
    std::uint64_t channelBits = 0;

    /**
     * Per-word memory service time in cycles; 0 = combining network
     * (the paper's assumption: concurrent fetch-and-adds to one word
     * combine). When positive, accesses to the same word serialize at
     * the memory module — the hot-spot behaviour software combining
     * trees exist to avoid (paper's reference [26]).
     */
    Cycle memPortCycles = 0;

    /** Which interconnect backend times shared accesses. */
    NetworkKind kind = NetworkKind::ConstantLatency;

    /// @name Mesh backend knobs (ignored by the constant-latency pipe).
    /// @{

    /** Mesh dimensions; 0/0 = auto (near-square factorization of
     *  numProcs, e.g. 1024 -> 32x32). When set, meshX * meshY must
     *  equal numProcs. */
    int meshX = 0;
    int meshY = 0;

    /** Router + wire traversal time per hop, cycles (>= 1). */
    Cycle hopCycles = 2;

    /**
     * Link bandwidth in bits per cycle per directed link (> 0). A
     * message of B bits occupies every link on its path for
     * ceil(B / linkBits) cycles; queued messages wait for the link.
     */
    std::uint64_t linkBits = 64;
    /// @}

    Cycle
    oneWay() const
    {
        return roundTrip / 2;
    }

    /** Cycles to push @p bits through the channel (0 if unlimited). */
    Cycle
    serializeCycles(std::uint64_t bits) const
    {
        return channelBits ? (bits + channelBits - 1) / channelBits : 0;
    }
};

/**
 * The mesh dimensions a config resolves to for @p numProcs: the
 * explicit meshX x meshY when set, otherwise the most-square
 * factorization (x <= y, x the largest divisor <= sqrt(numProcs)).
 */
inline std::pair<int, int>
resolveMeshDims(const NetworkConfig &net, int numProcs)
{
    if (net.meshX > 0 || net.meshY > 0)
        return {net.meshX, net.meshY};
    int best = 1;
    for (int x = 1; x * x <= numProcs; ++x)
        if (numProcs % x == 0)
            best = x;
    return {best, numProcs / best};
}

/// @name Message sizes (shared by traffic accounting and serialization).
/// @{

/** Bits of the forward (request) message of @p op. */
inline std::uint64_t
messageForwardBits(const MemOp &op)
{
    switch (op.kind) {
      case MemOpKind::Load:
      case MemOpKind::LoadPair:
        return kHeaderBits + kAddrBits;
      case MemOpKind::Store:
      case MemOpKind::FetchAdd:
        return kHeaderBits + kAddrBits + kDataBits;
    }
    return 0;
}

/** Bits of the return (response) message of @p op. */
inline std::uint64_t
messageReturnBits(const MemOp &op, unsigned lineWords)
{
    switch (op.kind) {
      case MemOpKind::Load:
      case MemOpKind::LoadPair: {
        std::uint64_t words =
            op.fillLine ? lineWords
                        : (op.kind == MemOpKind::LoadPair ? 2 : 1);
        return kHeaderBits + words * kDataBits;
      }
      case MemOpKind::Store:
        return kHeaderBits;  // acknowledgement
      case MemOpKind::FetchAdd:
        return kHeaderBits + kDataBits;
    }
    return 0;
}
/// @}

/**
 * Aggregated per-link contention counters of a topology-aware backend
 * (the constant-latency pipe has no links and reports none). Occupancy
 * and queueing are accumulated over every directed link; busyMax is the
 * hottest single link — the congestion bottleneck.
 */
struct NetLinkStats
{
    std::uint64_t routedMsgs = 0;  ///< messages routed (both directions)
    std::uint64_t localMsgs = 0;   ///< home == source: no links crossed
    std::uint64_t hops = 0;        ///< total link traversals
    std::uint64_t busyCycles = 0;  ///< link-cycles spent serializing
    std::uint64_t waitCycles = 0;  ///< cycles messages queued for links
    std::uint64_t busyMax = 0;     ///< busiest single link's busy cycles

    /** Mean hops per routed message (0 when nothing was routed). */
    double
    avgHops() const
    {
        return routedMsgs ? static_cast<double>(hops) /
                                static_cast<double>(routedMsgs)
                          : 0.0;
    }

    /** Utilization of the hottest link over @p cycles. */
    double
    maxLinkUtilization(std::uint64_t cycles) const
    {
        return cycles ? static_cast<double>(busyMax) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Accumulated traffic statistics. */
struct NetworkStats
{
    std::uint64_t messages = 0;
    std::uint64_t forwardBits = 0;
    std::uint64_t returnBits = 0;

    std::uint64_t loadMsgs = 0;
    std::uint64_t storeMsgs = 0;
    std::uint64_t faaMsgs = 0;
    std::uint64_t fillMsgs = 0;
    std::uint64_t invalMsgs = 0;
    std::uint64_t spinMsgs = 0;  ///< counted separately, not in bits
    std::uint64_t pairMsgs = 0;  ///< subset of loadMsgs (2-word returns)

    std::uint64_t
    totalBits() const
    {
        return forwardBits + returnBits;
    }

    /** Paper's Table 7 metric: total bits per processor per cycle. */
    double
    bitsPerCycle(std::uint64_t cycles, int numProcs) const
    {
        if (!cycles || !numProcs)
            return 0.0;
        return static_cast<double>(totalBits()) /
               (static_cast<double>(cycles) *
                static_cast<double>(numProcs));
    }

    void
    merge(const NetworkStats &o)
    {
        messages += o.messages;
        forwardBits += o.forwardBits;
        returnBits += o.returnBits;
        loadMsgs += o.loadMsgs;
        storeMsgs += o.storeMsgs;
        faaMsgs += o.faaMsgs;
        fillMsgs += o.fillMsgs;
        invalMsgs += o.invalMsgs;
        spinMsgs += o.spinMsgs;
        pairMsgs += o.pairMsgs;
    }

    /**
     * Record the traffic of one shared access.
     *
     * @param op        The access (spin/noTraffic flags respected).
     * @param lineWords Words transferred on a fill (op.fillLine).
     */
    void
    count(const MemOp &op, unsigned lineWords)
    {
        if (op.noTraffic)
            return;
        if (op.spin) {
            ++spinMsgs;
            return;
        }
        ++messages;
        forwardBits += messageForwardBits(op);
        returnBits += messageReturnBits(op, lineWords);
        switch (op.kind) {
          case MemOpKind::Load:
          case MemOpKind::LoadPair:
            if (op.fillLine) {
                ++fillMsgs;
            } else {
                ++loadMsgs;
                if (op.kind == MemOpKind::LoadPair)
                    ++pairMsgs;
            }
            break;
          case MemOpKind::Store:
            ++storeMsgs;
            break;
          case MemOpKind::FetchAdd:
            ++faaMsgs;
            break;
        }
    }

    /** Record one invalidation message plus its acknowledgement. */
    void
    countInvalidation()
    {
        ++messages;
        ++invalMsgs;
        forwardBits += kHeaderBits + kAddrBits;
        returnBits += kHeaderBits;
    }
};

} // namespace mts

#endif // MTS_MEM_NETWORK_HPP
