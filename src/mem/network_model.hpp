/**
 * @file
 * Pluggable interconnect backends.
 *
 * The Machine no longer reads latency constants out of NetworkConfig:
 * every shared access is timed by a NetworkModel, which owns all
 * contention state (injection channels, link queues, memory ports) and
 * maps one issued MemOp to its (arrival at memory, return at processor)
 * pair. Two backends exist:
 *
 *  - ConstantLatencyNetwork: the paper's Section 3 model, extracted
 *    verbatim from the old Machine::issueMem — an ordered pipe with a
 *    fixed one-way latency, optional per-processor channel
 *    serialization, and an optional per-word memory-port hot-spot
 *    model. Byte-identical to the pre-refactor simulator.
 *
 *  - MeshNetwork: a 2D mesh with XY dimension-ordered routing, per-hop
 *    latency, finite per-link bandwidth, and per-link contention
 *    queues. Latency becomes distance- and load-dependent, which is
 *    exactly the regime the paper's constant-latency argument abstracts
 *    away — and the one a 1024-processor machine actually lives in.
 *
 * Both backends preserve per-source ordered delivery (arrivals are
 * monotone per issuing processor): the Machine's FIFO store-buffer
 * retirement and the event queue's near-monotone lane fast path rely on
 * it, and it is the paper's stated network assumption (Section 3).
 */
#ifndef MTS_MEM_NETWORK_MODEL_HPP
#define MTS_MEM_NETWORK_MODEL_HPP

#include <memory>
#include <string>
#include <string_view>

#include "mem/network.hpp"

namespace mts
{

/** When one shared access reaches memory and returns to its issuer. */
struct NetworkTiming
{
    Cycle arrival = 0;     ///< request reaches the memory module
    Cycle returnTime = 0;  ///< response reaches the issuing processor
};

/** One interconnect backend: times accesses, owns contention state. */
class NetworkModel
{
  public:
    virtual ~NetworkModel() = default;

    /**
     * Time one shared access issued at op.issueTime by op.proc,
     * advancing the backend's contention state. Arrivals must be
     * monotone per issuing processor (ordered delivery).
     */
    virtual NetworkTiming route(const MemOp &op) = 0;

    /**
     * Safe lower bound on any message's issue-to-arrival delay; the
     * Machine's conservative execution horizon (and the processors'
     * burst clamp) depend on no arrival ever beating it.
     */
    virtual Cycle minDelay() const = 0;

    /** True for the ideal network: accesses complete at issue and the
     *  Machine uses its direct-access path instead of route(). */
    virtual bool zeroLatency() const = 0;

    virtual std::string_view name() const = 0;

    /** Per-link contention counters, or nullptr if the backend has no
     *  links (constant-latency pipe). */
    virtual const NetLinkStats *
    linkStats() const
    {
        return nullptr;
    }
};

/// @name Backend registry (mirrors the switch-model name functions).
/// @{
std::string_view networkKindName(NetworkKind kind);

/** Parse a backend name; fatal (naming the valid backends) if unknown. */
NetworkKind networkKindFromName(std::string_view name);

constexpr NetworkKind kAllNetworkKinds[] = {
    NetworkKind::ConstantLatency,
    NetworkKind::Mesh,
};
/// @}

/**
 * Build the backend selected by @p net.
 *
 * @param numProcs  Machine size (mesh node count, channel table size).
 * @param lineWords Cache line size, for fill-response message sizes and
 *                  the mesh's line-interleaved home mapping.
 */
std::unique_ptr<NetworkModel> makeNetworkModel(const NetworkConfig &net,
                                               int numProcs,
                                               unsigned lineWords);

/**
 * Canonical short token of everything that makes two network configs
 * time accesses differently ("const:200" / "mesh:4x4:h2:b64:p200:c16");
 * memoization keys (ExperimentRunner) must include it.
 */
std::string networkConfigToken(const NetworkConfig &net);

} // namespace mts

#endif // MTS_MEM_NETWORK_MODEL_HPP
