/**
 * @file
 * Global event queue driving the simulation.
 *
 * Two event streams are kept apart so the Machine can compute the
 * conservative execution horizon in O(1):
 *
 *  - memory arrivals (shared-access messages reaching the memory modules,
 *    one network one-way latency after issue), and
 *  - processor resumptions.
 *
 * Tie rule (documented here, nowhere else): at equal timestamps, memory
 * arrivals are processed before processor runs; within a stream, the
 * oldest sequence number wins, so simulations are fully deterministic.
 *
 * Layout: the two streams have different shapes and get different
 * structures. Memory arrivals form an *indexed lane queue* — one
 * ordered lane per issuing processor. The network's per-source ordered
 * delivery makes arrivals monotone per processor (Machine::issueMem
 * enforces it via lastArrival), so a push is an O(1) append to its
 * source lane almost always (out-of-order pushes fall back to a sorted
 * insert, kept for API generality). The global minimum is the smallest
 * lane head: the head (time, seq) keys are mirrored into flat arrays
 * with a winner tree of lane indices on top, so the front event is read
 * in O(1) and a head change replays ceil(log2 numProcs) tree entries.
 * This removes the O(log n) sift-down that copied 70-byte MemEvent
 * payloads around the heap on every push/pop.
 *
 * Processor resumptions are simpler still: the Machine keeps at most
 * ONE outstanding resume per processor (it re-pushes a processor's next
 * resume only after popping the previous one), so that stream is a flat
 * (time, seq) slot per processor with a lazily cached argmin — no
 * lanes, no tree, no per-event allocation (see ProcSlotQueue).
 */
#ifndef MTS_MEM_EVENT_QUEUE_HPP
#define MTS_MEM_EVENT_QUEUE_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/addressing.hpp"
#include "util/error.hpp"

namespace mts
{

/** Kind of shared-memory operation carried by a memory event. */
enum class MemOpKind : std::uint8_t
{
    Load,      ///< one word
    LoadPair,  ///< two adjacent words (Load-Double)
    Store,     ///< one word write
    FetchAdd   ///< atomic fetch-and-add at the memory module
};

/** A shared-memory access in flight. */
struct MemOp
{
    MemOpKind kind = MemOpKind::Load;
    Addr addr = 0;
    std::uint64_t value = 0;   ///< store data / fetch-add addend (raw bits)
    std::uint16_t proc = 0;    ///< issuing processor
    std::uint16_t thread = 0;  ///< issuing thread slot on that processor
    std::uint8_t reg = 0;      ///< destination register (loads)
    bool fpDest = false;       ///< destination is an fp register
    bool spin = false;         ///< spin access: excluded from bandwidth
    bool noTraffic = false;    ///< MSHR-merged access: no new messages
    bool fillLine = false;     ///< miss fill: transfers a whole cache line
    bool deliver = true;       ///< write the result into the register file
    std::int32_t pc = -1;      ///< issuing instruction (-1: synthetic op)
    Cycle issueTime = 0;
    Cycle returnTime = 0;      ///< set by Machine::issueMem (fill validFrom)
};

/** Memory-arrival event. */
struct MemEvent
{
    Cycle time = 0;
    std::uint64_t seq = 0;
    MemOp op;
};

/** Processor-resume event. */
struct ProcEvent
{
    Cycle time = 0;
    std::uint64_t seq = 0;
    std::uint16_t proc = 0;
};

/** Sentinel "no event" time. */
constexpr Cycle kNever = ~Cycle(0);

/**
 * One event stream: a lane of near-monotone events per source, with the
 * lane-head sort keys mirrored into flat arrays and a winner tree
 * (segment-tree minimum of lane indices) on top. peek()/nextTime() read
 * the tree root in O(1) — as cheap as a heap's top() — and a head change
 * replays only the ceil(log2 P) tree levels above that lane, touching a
 * handful of contiguous 32-bit entries. Event must expose .time/.seq.
 */
template <typename Event>
class LaneQueue
{
  public:
    /** Pre-size the lane table for sources [0, count). */
    void
    reserve(std::size_t count)
    {
        if (count > lanes.size())
            grow(count);
    }

    bool
    empty() const
    {
        return live == 0;
    }

    Cycle
    nextTime() const
    {
        if (live == 0)
            return kNever;
        return headTime[tree[1]];
    }

    void
    push(std::size_t source, const Event &ev)
    {
        if (source >= lanes.size())
            grow(source + 1);
        Lane &lane = lanes[source];
        bool newHead;
        if (lane.size() == 0 || !before(ev, lane.back())) {
            newHead = lane.size() == 0;
            lane.buf.push_back(ev);  // the near-monotone fast path
        } else {
            // Rare out-of-order push (direct API use): sorted insert.
            auto at = lane.buf.begin() +
                      static_cast<std::ptrdiff_t>(lane.first);
            auto it = std::upper_bound(
                at, lane.buf.end(), ev,
                [](const Event &a, const Event &b) { return before(a, b); });
            newHead = it == at;
            lane.buf.insert(it, ev);
        }
        ++live;
        if (newHead) {
            headTime[source] = ev.time;
            headSeq[source] = ev.seq;
            replay(source);
        }
    }

    /** The globally smallest event; valid until the next push/pop. */
    const Event &
    peek() const
    {
        return lanes[tree[1]].head();
    }

    /** Drop the event peek() refers to. */
    void
    drop()
    {
        std::size_t i = tree[1];
        Lane &lane = lanes[i];
        ++lane.first;
        --live;
        if (lane.first == lane.buf.size()) {
            lane.buf.clear();
            lane.first = 0;
            headTime[i] = kNever;
            headSeq[i] = ~std::uint64_t(0);
        } else {
            if (lane.first >= 64 && lane.first * 2 >= lane.buf.size()) {
                // Amortized compaction keeps the lane from growing
                // without bound while it stays non-empty.
                lane.buf.erase(lane.buf.begin(),
                               lane.buf.begin() +
                                   static_cast<std::ptrdiff_t>(lane.first));
                lane.first = 0;
            }
            headTime[i] = lane.head().time;
            headSeq[i] = lane.head().seq;
        }
        replay(i);
    }

    Event
    pop()
    {
        Event e = peek();
        drop();
        return e;
    }

  private:
    struct Lane
    {
        std::vector<Event> buf;
        std::size_t first = 0;  ///< index of the lane head within buf

        std::size_t
        size() const
        {
            return buf.size() - first;
        }

        const Event &
        head() const
        {
            return buf[first];
        }

        const Event &
        back() const
        {
            return buf.back();
        }
    };

    static bool
    before(const Event &a, const Event &b)
    {
        return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    }

    /** (time, seq) order over the mirrored head keys. Empty lanes carry
     *  (kNever, maxSeq), so they lose against every real event and no
     *  emptiness test is needed. */
    bool
    keyBefore(std::uint32_t a, std::uint32_t b) const
    {
        return headTime[a] != headTime[b] ? headTime[a] < headTime[b]
                                          : headSeq[a] < headSeq[b];
    }

    /** Recompute the winner on the path from lane i's leaf to the root
     *  after headTime/headSeq[i] changed. */
    void
    replay(std::size_t i)
    {
        for (std::size_t n = (cap + i) >> 1; n >= 1; n >>= 1) {
            std::uint32_t l = tree[2 * n];
            std::uint32_t r = tree[2 * n + 1];
            tree[n] = keyBefore(r, l) ? r : l;
        }
    }

    /** Grow to at least `count` lanes: pad the key arrays to the next
     *  power of two (phantom lanes stay empty forever) and rebuild the
     *  winner tree bottom-up. Rare: once per Machine via reserve(). */
    void
    grow(std::size_t count)
    {
        lanes.resize(count);
        std::size_t newCap = 1;
        while (newCap < count)
            newCap <<= 1;
        if (newCap > cap) {
            cap = newCap;
            headTime.resize(cap, kNever);
            headSeq.resize(cap, ~std::uint64_t(0));
            tree.assign(2 * cap, 0);
            for (std::size_t i = 0; i < cap; ++i)
                tree[cap + i] = static_cast<std::uint32_t>(i);
            for (std::size_t n = cap - 1; n >= 1; --n) {
                std::uint32_t l = tree[2 * n];
                std::uint32_t r = tree[2 * n + 1];
                tree[n] = keyBefore(r, l) ? r : l;
            }
        }
    }

    std::vector<Lane> lanes;
    std::size_t cap = 0;                 ///< padded lane count (power of 2)
    std::vector<Cycle> headTime;         ///< per-lane head time (kNever
                                         ///  when the lane is empty)
    std::vector<std::uint64_t> headSeq;  ///< per-lane head seq
    std::vector<std::uint32_t> tree;     ///< winner tree; tree[1] = argmin
    std::size_t live = 0;
};

/**
 * Processor-resume stream. Relies on the Machine's invariant that each
 * processor has at most one resume event in flight (asserted in push),
 * which collapses the stream to one (time, seq) slot per processor:
 * a push writes two words and refreshes the cached argmin with a single
 * key compare; a pop clears the slot and invalidates the cache, and the
 * next query recomputes the argmin with one pass over the flat slot
 * arrays — contiguous and branch-predictable, cheaper in practice than
 * replaying a winner tree on every head change. Empty slots carry
 * (kNever, maxSeq) so the scan needs no occupancy test, and the
 * (time, seq) total order — hence determinism — is identical to the
 * general lane queue's.
 */
class ProcSlotQueue
{
  public:
    /** Pre-size the slot table for processors [0, count). */
    void
    reserve(std::size_t count)
    {
        if (count > slotTime.size())
            grow(count);
    }

    bool
    empty() const
    {
        return live == 0;
    }

    Cycle
    nextTime() const
    {
        if (live == 0)
            return kNever;
        return slotTime[minSlot()];
    }

    void
    push(Cycle time, std::uint64_t seq, std::uint16_t proc)
    {
        std::size_t i = proc;
        if (i >= slotTime.size())
            grow(i + 1);
        MTS_ASSERT(slotTime[i] == kNever,
                   "processor " << proc
                                << " already has a resume event in flight");
        slotTime[i] = time;
        slotSeq[i] = seq;
        ++live;
        // Only this slot's key changed; the cached argmin stays correct
        // unless the new key beats it.
        if (minValid && keyBefore(i, minCached))
            minCached = i;
    }

    ProcEvent
    pop()
    {
        std::size_t i = minSlot();
        ProcEvent e{slotTime[i], slotSeq[i], static_cast<std::uint16_t>(i)};
        slotTime[i] = kNever;
        slotSeq[i] = ~std::uint64_t(0);
        --live;
        minValid = false;  // next query rescans the flat slot arrays
        return e;
    }

  private:
    /** (time, seq) order over the slot keys; empty slots lose against
     *  every real event. */
    bool
    keyBefore(std::size_t a, std::size_t b) const
    {
        return slotTime[a] != slotTime[b] ? slotTime[a] < slotTime[b]
                                          : slotSeq[a] < slotSeq[b];
    }

    /** The slot holding the smallest key; requires live > 0. */
    std::size_t
    minSlot() const
    {
        if (!minValid) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < slotTime.size(); ++i)
                if (keyBefore(i, best))
                    best = i;
            minCached = best;
            minValid = true;
        }
        return minCached;
    }

    void
    grow(std::size_t count)
    {
        slotTime.resize(count, kNever);
        slotSeq.resize(count, ~std::uint64_t(0));
    }

    std::vector<Cycle> slotTime;         ///< per-proc resume time (kNever
                                         ///  when no resume is in flight)
    std::vector<std::uint64_t> slotSeq;  ///< per-proc resume seq
    mutable std::size_t minCached = 0;   ///< argmin slot when minValid
    mutable bool minValid = false;
    std::size_t live = 0;
};

/** The two-stream event queue. */
class EventQueue
{
  public:
    /** Pre-size both streams for `numProcs` sources. */
    void
    reserve(std::size_t numProcs)
    {
        memLanes.reserve(numProcs);
        procSlots.reserve(numProcs);
    }

    void
    pushMem(Cycle time, MemOp op)
    {
        std::size_t source = op.proc;
        memLanes.push(source, MemEvent{time, nextSeq++, op});
    }

    /** Schedule `proc`'s next resume. At most one may be in flight per
     *  processor (see ProcSlotQueue). */
    void
    pushProc(Cycle time, std::uint16_t proc)
    {
        procSlots.push(time, nextSeq++, proc);
    }

    Cycle
    nextMemTime() const
    {
        return memLanes.nextTime();
    }

    Cycle
    nextProcTime() const
    {
        return procSlots.nextTime();
    }

    bool
    empty() const
    {
        return memLanes.empty() && procSlots.empty();
    }

    /** True if the next event overall is a memory arrival. */
    bool
    memIsNext() const
    {
        if (memLanes.empty())
            return false;
        // Memory-before-processor at equal times (see file comment).
        return memLanes.nextTime() <= procSlots.nextTime();
    }

    /** Smallest memory arrival, without copying the 70-byte payload.
     *  The reference is valid until the next queue mutation. */
    const MemEvent &
    peekMem() const
    {
        return memLanes.peek();
    }

    /** Drop the event peekMem() refers to. */
    void
    dropMem()
    {
        memLanes.drop();
    }

    MemEvent
    popMem()
    {
        return memLanes.pop();
    }

    ProcEvent
    popProc()
    {
        return procSlots.pop();
    }

  private:
    LaneQueue<MemEvent> memLanes;
    ProcSlotQueue procSlots;
    std::uint64_t nextSeq = 0;
};

} // namespace mts

#endif // MTS_MEM_EVENT_QUEUE_HPP
