/**
 * @file
 * Global event queue driving the simulation.
 *
 * Two event streams are kept in separate heaps so the Machine can compute
 * the conservative execution horizon in O(1):
 *
 *  - memory arrivals (shared-access messages reaching the memory modules,
 *    one network one-way latency after issue), and
 *  - processor resumptions.
 *
 * Ordering rule: at equal timestamps, memory arrivals are processed before
 * processor runs, and ties beyond that break on a monotone sequence number
 * so simulations are fully deterministic.
 */
#ifndef MTS_MEM_EVENT_QUEUE_HPP
#define MTS_MEM_EVENT_QUEUE_HPP

#include <cstdint>
#include <queue>
#include <vector>

#include "isa/addressing.hpp"

namespace mts
{

/** Kind of shared-memory operation carried by a memory event. */
enum class MemOpKind : std::uint8_t
{
    Load,      ///< one word
    LoadPair,  ///< two adjacent words (Load-Double)
    Store,     ///< one word write
    FetchAdd   ///< atomic fetch-and-add at the memory module
};

/** A shared-memory access in flight. */
struct MemOp
{
    MemOpKind kind = MemOpKind::Load;
    Addr addr = 0;
    std::uint64_t value = 0;   ///< store data / fetch-add addend (raw bits)
    std::uint16_t proc = 0;    ///< issuing processor
    std::uint16_t thread = 0;  ///< issuing thread slot on that processor
    std::uint8_t reg = 0;      ///< destination register (loads)
    bool fpDest = false;       ///< destination is an fp register
    bool spin = false;         ///< spin access: excluded from bandwidth
    bool noTraffic = false;    ///< MSHR-merged access: no new messages
    bool fillLine = false;     ///< miss fill: transfers a whole cache line
    bool deliver = true;       ///< write the result into the register file
    Cycle issueTime = 0;
    Cycle returnTime = 0;      ///< set by Machine::issueMem (fill validFrom)
};

/** Heap entry. */
struct MemEvent
{
    Cycle time = 0;
    std::uint64_t seq = 0;
    MemOp op;
};

/** Processor-resume heap entry. */
struct ProcEvent
{
    Cycle time = 0;
    std::uint64_t seq = 0;
    std::uint16_t proc = 0;
};

/** Sentinel "no event" time. */
constexpr Cycle kNever = ~Cycle(0);

/** The two-heap event queue. */
class EventQueue
{
  public:
    void
    pushMem(Cycle time, MemOp op)
    {
        memHeap.push(MemEvent{time, nextSeq++, op});
    }

    void
    pushProc(Cycle time, std::uint16_t proc)
    {
        procHeap.push(ProcEvent{time, nextSeq++, proc});
    }

    Cycle
    nextMemTime() const
    {
        return memHeap.empty() ? kNever : memHeap.top().time;
    }

    Cycle
    nextProcTime() const
    {
        return procHeap.empty() ? kNever : procHeap.top().time;
    }

    bool
    empty() const
    {
        return memHeap.empty() && procHeap.empty();
    }

    /** True if the next event overall is a memory arrival. */
    bool
    memIsNext() const
    {
        if (memHeap.empty())
            return false;
        if (procHeap.empty())
            return true;
        const auto &m = memHeap.top();
        const auto &p = procHeap.top();
        // Memory arrivals win ties; otherwise oldest seq wins same-kind.
        return m.time < p.time || (m.time == p.time);
    }

    MemEvent
    popMem()
    {
        MemEvent e = memHeap.top();
        memHeap.pop();
        return e;
    }

    ProcEvent
    popProc()
    {
        ProcEvent e = procHeap.top();
        procHeap.pop();
        return e;
    }

  private:
    struct MemLater
    {
        bool
        operator()(const MemEvent &a, const MemEvent &b) const
        {
            return a.time != b.time ? a.time > b.time : a.seq > b.seq;
        }
    };

    struct ProcLater
    {
        bool
        operator()(const ProcEvent &a, const ProcEvent &b) const
        {
            return a.time != b.time ? a.time > b.time : a.seq > b.seq;
        }
    };

    std::priority_queue<MemEvent, std::vector<MemEvent>, MemLater> memHeap;
    std::priority_queue<ProcEvent, std::vector<ProcEvent>, ProcLater>
        procHeap;
    std::uint64_t nextSeq = 0;
};

} // namespace mts

#endif // MTS_MEM_EVENT_QUEUE_HPP
