/**
 * @file
 * One hardware thread context: registers, scoreboard, and blocking state.
 *
 * Each thread has its own 32 integer and 32 floating-point registers
 * (paper Section 3). The scoreboard records, per register, the absolute
 * cycle at which its value becomes consumable — this is how the in-order
 * pipeline's result latencies (and shared-load round trips) are modelled.
 */
#ifndef MTS_CPU_THREAD_CONTEXT_HPP
#define MTS_CPU_THREAD_CONTEXT_HPP

#include <array>
#include <cstdint>

#include "cache/group_estimate_cache.hpp"
#include "cpu/local_memory.hpp"
#include "isa/instruction.hpp"

namespace mts
{

/** Architected plus microarchitected state of one thread. */
struct ThreadContext
{
    ThreadContext(std::uint32_t globalId_, Addr localWords)
        : globalId(globalId_), local(localWords)
    {
        iregs.fill(0);
        fregs.fill(0.0);
        regReady.fill(0);
        pendingShared.fill(false);
    }

    std::uint32_t globalId;        ///< 0..numThreads-1 across the machine

    std::array<std::int64_t, 32> iregs;
    std::array<double, 32> fregs;

    /** Absolute cycle when each (bank-tagged) register becomes ready. */
    std::array<Cycle, kNumRegIds> regReady;

    /**
     * Conservative watermark over the scoreboard: at least as large as
     * every regReady entry written with a multi-cycle latency (shared
     * loads and multi-cycle results). Single-cycle results are excluded
     * on purpose — their ready time (write cycle + 1) can never exceed
     * the cycle of this thread's next issue, so they cannot block it.
     * When `scoreboardMax <= now` every register is consumable and the
     * batched executor skips the per-op scoreboard scan entirely.
     * Never decreases, so it may be stale-high (a later in-order write
     * can shorten a register's ready time); that only costs a precise
     * re-check, never correctness.
     */
    Cycle scoreboardMax = 0;

    /** Register holds an in-flight shared-load result (switch-on-use). */
    std::array<bool, kNumRegIds> pendingShared;

    std::int32_t pc = 0;
    bool halted = false;

    /** Earliest cycle this thread may issue again (blocking state). */
    Cycle readyAt = 0;

    /** Return time of the last shared load issued (ordered delivery ⇒
     *  this dominates all earlier outstanding accesses). */
    Cycle lastReturn = 0;

    /** Number of shared loads issued since the last taken switch. */
    std::uint32_t groupLoads = 0;

    /** Conditional-switch: a load in the current group missed. */
    bool missedSinceSwitch = false;

    /** Conditional-switch: start of the current uninterrupted slice. */
    Cycle sliceStart = 0;

    /** Start time of the current run (for run-length statistics). */
    Cycle runStart = 0;

    /** Scheduling priority (setpri; honoured when prioritySched is on). */
    bool highPriority = false;

    /** §5.2 estimator (enabled per machine config). */
    GroupEstimateCache groupEstimate;

    LocalMemory local;

    std::int64_t
    readIReg(std::uint8_t r) const
    {
        return r == kRegZero ? 0 : iregs[r];
    }

    void
    writeIReg(std::uint8_t r, std::int64_t v)
    {
        if (r != kRegZero)
            iregs[r] = v;
    }
};

} // namespace mts

#endif // MTS_CPU_THREAD_CONTEXT_HPP
