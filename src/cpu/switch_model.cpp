#include "cpu/switch_model.hpp"

#include "util/error.hpp"

namespace mts
{

std::string_view
switchModelName(SwitchModel model)
{
    switch (model) {
      case SwitchModel::Ideal:
        return "ideal";
      case SwitchModel::SwitchEveryCycle:
        return "switch-every-cycle";
      case SwitchModel::SwitchOnLoad:
        return "switch-on-load";
      case SwitchModel::SwitchOnUse:
        return "switch-on-use";
      case SwitchModel::ExplicitSwitch:
        return "explicit-switch";
      case SwitchModel::SwitchOnMiss:
        return "switch-on-miss";
      case SwitchModel::SwitchOnUseMiss:
        return "switch-on-use-miss";
      case SwitchModel::ConditionalSwitch:
        return "conditional-switch";
    }
    return "unknown";
}

SwitchModel
switchModelFromName(std::string_view name)
{
    for (SwitchModel m :
         {SwitchModel::Ideal, SwitchModel::SwitchEveryCycle,
          SwitchModel::SwitchOnLoad, SwitchModel::SwitchOnUse,
          SwitchModel::ExplicitSwitch, SwitchModel::SwitchOnMiss,
          SwitchModel::SwitchOnUseMiss, SwitchModel::ConditionalSwitch}) {
        if (switchModelName(m) == name)
            return m;
    }
    MTS_FATAL("unknown switch model '" << name << "'");
}

} // namespace mts
