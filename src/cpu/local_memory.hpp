/**
 * @file
 * Per-thread local memory (stack plus local statics).
 *
 * Local references are serviced by the local memory/cache and never cause
 * a context switch (paper Section 3). Storage grows lazily so thousands
 * of mostly-idle thread contexts stay cheap.
 */
#ifndef MTS_CPU_LOCAL_MEMORY_HPP
#define MTS_CPU_LOCAL_MEMORY_HPP

#include <cstdint>
#include <vector>

#include "isa/addressing.hpp"
#include "util/error.hpp"

namespace mts
{

/** Lazily grown per-thread word array. */
class LocalMemory
{
  public:
    explicit LocalMemory(Addr maxWords_) : maxWords(maxWords_) {}

    Addr
    capacityWords() const
    {
        return maxWords;
    }

    std::uint64_t
    read(Addr addr)
    {
        ensure(addr);
        return data[static_cast<std::size_t>(addr)];
    }

    void
    write(Addr addr, std::uint64_t value)
    {
        ensure(addr);
        data[static_cast<std::size_t>(addr)] = value;
    }

  private:
    void
    ensure(Addr addr)
    {
        MTS_REQUIRE(addr < maxWords,
                    "local address " << addr << " out of range (max "
                                     << maxWords
                                     << " words; raise localWords or was a "
                                        "shared pointer used with ldl/stl?)");
        if (addr >= data.size()) {
            std::size_t ns = data.empty() ? 256 : data.size();
            while (ns <= addr)
                ns *= 2;
            data.resize(ns, 0);
        }
    }

    Addr maxWords;
    std::vector<std::uint64_t> data;
};

} // namespace mts

#endif // MTS_CPU_LOCAL_MEMORY_HPP
