/**
 * @file
 * The multithreading-model taxonomy of the paper's Figure 1.
 */
#ifndef MTS_CPU_SWITCH_MODEL_HPP
#define MTS_CPU_SWITCH_MODEL_HPP

#include <string_view>

namespace mts
{

/**
 * When a processor context switches among its hardware thread contexts.
 *
 * The paper concentrates on SwitchOnLoad, ExplicitSwitch and
 * ConditionalSwitch; the remaining models are implemented to cover the
 * full design space of Figure 1 (and the DASH switch-on-miss comparison
 * in Section 7).
 */
enum class SwitchModel
{
    /** No multithreading semantics; used with 0-latency ideal runs. */
    Ideal,

    /** HEP/MASA style: switch after every instruction. */
    SwitchEveryCycle,

    /** Switch on every load from shared memory. */
    SwitchOnLoad,

    /**
     * Split-phase loads; switch at the first *use* of a value that is
     * still in flight.
     */
    SwitchOnUse,

    /**
     * The paper's main model: loads are grouped by the compiler and an
     * explicit `cswitch` instruction performs one switch per group.
     */
    ExplicitSwitch,

    /** Cache added; switch when a shared load misses (DASH/ALEWIFE). */
    SwitchOnMiss,

    /** Cache + split-phase; switch at first use of a missing value. */
    SwitchOnUseMiss,

    /**
     * Cache + explicit switch: the `cswitch` is taken only when a load in
     * the preceding group missed (or the run-length limit expired).
     */
    ConditionalSwitch,
};

/** Short printable name ("explicit-switch", ...). */
std::string_view switchModelName(SwitchModel model);

/** Parse a model name; throws FatalError when unknown. */
SwitchModel switchModelFromName(std::string_view name);

/** True if the model requires a per-processor shared-data cache. */
constexpr bool
modelUsesCache(SwitchModel m)
{
    return m == SwitchModel::SwitchOnMiss ||
           m == SwitchModel::SwitchOnUseMiss ||
           m == SwitchModel::ConditionalSwitch;
}

/**
 * True if the model only switches at explicit `cswitch` instructions and
 * therefore requires code processed by the grouping pass.
 */
constexpr bool
modelNeedsSwitchInstr(SwitchModel m)
{
    return m == SwitchModel::ExplicitSwitch ||
           m == SwitchModel::ConditionalSwitch;
}

/** All models, in taxonomy order (for ablation sweeps). */
inline constexpr SwitchModel kAllModels[] = {
    SwitchModel::SwitchEveryCycle, SwitchModel::SwitchOnLoad,
    SwitchModel::SwitchOnUse,      SwitchModel::ExplicitSwitch,
    SwitchModel::SwitchOnMiss,     SwitchModel::SwitchOnUseMiss,
    SwitchModel::ConditionalSwitch,
};

} // namespace mts

#endif // MTS_CPU_SWITCH_MODEL_HPP
