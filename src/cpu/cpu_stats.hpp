/**
 * @file
 * Per-processor execution statistics.
 */
#ifndef MTS_CPU_CPU_STATS_HPP
#define MTS_CPU_CPU_STATS_HPP

#include <cstdint>

#include "isa/addressing.hpp"
#include "util/histogram.hpp"

namespace mts
{

/** Cycle and event counters for one processor (mergeable). */
struct CpuStats
{
    std::uint64_t instructions = 0;  ///< instructions issued
    Cycle busyCycles = 0;            ///< cycles an instruction issued
    Cycle stallCycles = 0;           ///< pipeline waits on the scoreboard
    Cycle idleCycles = 0;            ///< no thread ready (latency exposed)
    std::uint64_t switchesTaken = 0;
    std::uint64_t switchesSkipped = 0;  ///< conditional switches not taken
    std::uint64_t sliceLimitSwitches = 0;  ///< forced by run-length limit
    std::uint64_t zeroRuns = 0;  ///< taken switches ending a 0-cycle run
    std::uint64_t sharedLoads = 0;   ///< data loads (spin loads excluded)
    std::uint64_t spinLoads = 0;     ///< lds.spin accesses
    std::uint64_t sharedStores = 0;
    std::uint64_t fetchAdds = 0;
    std::uint64_t estimateHits = 0;  ///< §5.2 grouping-estimate hits
    Cycle finishTime = 0;            ///< cycle the last thread halted

    /** Run-length = busy+stall span between taken context switches. */
    Histogram runLengths;

    void
    merge(const CpuStats &o)
    {
        instructions += o.instructions;
        busyCycles += o.busyCycles;
        stallCycles += o.stallCycles;
        idleCycles += o.idleCycles;
        switchesTaken += o.switchesTaken;
        switchesSkipped += o.switchesSkipped;
        sliceLimitSwitches += o.sliceLimitSwitches;
        zeroRuns += o.zeroRuns;
        sharedLoads += o.sharedLoads;
        spinLoads += o.spinLoads;
        sharedStores += o.sharedStores;
        fetchAdds += o.fetchAdds;
        estimateHits += o.estimateHits;
        if (o.finishTime > finishTime)
            finishTime = o.finishTime;
        runLengths.merge(o.runLengths);
    }
};

} // namespace mts

#endif // MTS_CPU_CPU_STATS_HPP
