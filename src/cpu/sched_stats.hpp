/**
 * @file
 * Per-processor counters for the virtual-threading scheduler (software
 * threads over hardware contexts). All zero when the layer is off.
 */
#ifndef MTS_CPU_SCHED_STATS_HPP
#define MTS_CPU_SCHED_STATS_HPP

#include <cstdint>

#include "util/histogram.hpp"

namespace mts
{

/** Scheduler activity of one processor (or a machine-wide merge). */
struct SchedStats
{
    /** Timer-interrupt preemptions (quantum expired, ready waiter). */
    std::uint64_t preemptions = 0;

    /** Cycles spent saving preempted contexts (ctxSwitchCost each). */
    std::uint64_t saveCycles = 0;

    /** Cycles spent restoring installed contexts (ctxSwitchCost each). */
    std::uint64_t restoreCycles = 0;

    /** Blocked software threads swapped out for an earlier-ready one. */
    std::uint64_t blockSwitches = 0;

    /** Run-queue threads installed into a context freed by a halt. */
    std::uint64_t haltInstalls = 0;

    /** Software threads placed (back) on the run queue after start-up. */
    std::uint64_t requeues = 0;

    /** Run-queue occupancy sampled at every scheduler action. */
    Histogram queueDepth;

    void
    merge(const SchedStats &o)
    {
        preemptions += o.preemptions;
        saveCycles += o.saveCycles;
        restoreCycles += o.restoreCycles;
        blockSwitches += o.blockSwitches;
        haltInstalls += o.haltInstalls;
        requeues += o.requeues;
        queueDepth.merge(o.queueDepth);
    }
};

} // namespace mts

#endif // MTS_CPU_SCHED_STATS_HPP
