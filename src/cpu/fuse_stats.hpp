/**
 * @file
 * Per-processor counters for the fused superinstruction tier. All zero
 * when the tier is off (fusion disabled, tracer attached, or the
 * switch-every-cycle model).
 */
#ifndef MTS_CPU_FUSE_STATS_HPP
#define MTS_CPU_FUSE_STATS_HPP

#include <cstdint>

namespace mts
{

/** Fused-tier activity of one processor (or a machine-wide merge). */
struct FuseStats
{
    /** Span pcs promoted to the fused tier on this processor. */
    std::uint64_t spans = 0;

    /** Fused-span executions (whole spans retired by the fast path). */
    std::uint64_t execs = 0;

    /** Instructions retired through fused spans. */
    std::uint64_t instructions = 0;

    /** Entries declined because the scoreboard watermark was live. */
    std::uint64_t bailoutWatermark = 0;

    /** Entries declined because the span would cross the batch budget
     *  (burst horizon or a virtual-threading quantum deadline: the
     *  decoded path then splits the span per-op). */
    std::uint64_t bailoutBudget = 0;

    void
    merge(const FuseStats &o)
    {
        spans += o.spans;
        execs += o.execs;
        instructions += o.instructions;
        bailoutWatermark += o.bailoutWatermark;
        bailoutBudget += o.bailoutBudget;
    }
};

} // namespace mts

#endif // MTS_CPU_FUSE_STATS_HPP
