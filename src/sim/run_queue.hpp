/**
 * @file
 * Run queue for the virtual-threading layer: the software threads of
 * one processor that currently have no hardware context, plus the
 * policy that decides which of them is installed next.
 */
#ifndef MTS_SIM_RUN_QUEUE_HPP
#define MTS_SIM_RUN_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/addressing.hpp"
#include "util/error.hpp"

namespace mts
{

/** One descheduled software thread waiting for a context. */
struct RunQueueEntry
{
    std::uint16_t thread;  ///< software-thread slot on this processor
    Cycle readyAt;         ///< earliest cycle it can issue an instruction
};

/**
 * Scheduling policy: given the queue (oldest entry first) and the
 * current cycle, choose the entry to install next. Implementations must
 * be deterministic pure functions of their arguments — the differential
 * oracle depends on replayable schedules.
 */
class SchedPolicy
{
  public:
    virtual ~SchedPolicy() = default;

    /** Index into @p entries of the thread to install; never empty. */
    virtual std::size_t pick(const std::vector<RunQueueEntry> &entries,
                             Cycle now) const = 0;
};

/**
 * Round robin: the oldest entry that is ready at @p now; when none is
 * ready yet, the one that becomes ready first (oldest wins ties).
 */
class RoundRobinPolicy final : public SchedPolicy
{
  public:
    std::size_t
    pick(const std::vector<RunQueueEntry> &entries,
         Cycle now) const override
    {
        std::size_t best = 0;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].readyAt <= now)
                return i;
            if (entries[i].readyAt < entries[best].readyAt)
                best = i;
        }
        return best;
    }
};

/**
 * FIFO container for descheduled software threads. Insertion order is
 * the round-robin order; the policy only ever reorders by readiness.
 */
class RunQueue
{
  public:
    explicit RunQueue(const SchedPolicy &policy) : policy_(policy) {}

    bool
    empty() const
    {
        return q_.empty();
    }

    std::size_t
    size() const
    {
        return q_.size();
    }

    const std::vector<RunQueueEntry> &
    entries() const
    {
        return q_;
    }

    /** Append at the tail (youngest position). */
    void
    enqueue(std::uint16_t thread, Cycle readyAt)
    {
        q_.push_back({thread, readyAt});
    }

    /** Ask the policy for the next thread to install. */
    std::size_t
    pick(Cycle now) const
    {
        MTS_ASSERT(!q_.empty(), "pick on an empty run queue");
        return policy_.pick(q_, now);
    }

    /** Remove and return the entry at @p index (from pick). */
    RunQueueEntry
    take(std::size_t index)
    {
        MTS_ASSERT(index < q_.size(), "run-queue take out of range");
        RunQueueEntry e = q_[index];
        q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(index));
        return e;
    }

    /** Earliest readyAt over all entries (kNever when empty). */
    Cycle
    minReadyAt() const
    {
        Cycle best = ~Cycle(0);
        for (const RunQueueEntry &e : q_)
            if (e.readyAt < best)
                best = e.readyAt;
        return best;
    }

  private:
    const SchedPolicy &policy_;
    std::vector<RunQueueEntry> q_;
};

} // namespace mts

#endif // MTS_SIM_RUN_QUEUE_HPP
