#include "sim/machine.hpp"

#include <cstdio>

#include "metrics/stat_publish.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace mts
{

namespace
{

Addr
roundUpTo(Addr v, Addr multiple)
{
    return (v + multiple - 1) / multiple * multiple;
}

Cycle
saturatingAdd(Cycle a, Cycle b)
{
    Cycle s = a + b;
    return s < a ? kNever : s;
}

} // namespace

Machine::Machine(const Program &program, const MachineConfig &config,
                 Addr extraSharedWords)
    : Machine(std::make_shared<const Program>(program), nullptr, config,
              extraSharedWords)
{
}

Machine::Machine(std::shared_ptr<const Program> program,
                 std::shared_ptr<const DecodedProgram> decodedProgram,
                 const MachineConfig &config, Addr extraSharedWords)
    : prog(std::move(program)),
      decoded(decodedProgram
                  ? std::move(decodedProgram)
                  : std::make_shared<const DecodedProgram>(
                        decodeProgram(prog->code))),
      cfg((validateMachineConfig(config), config)),
      mem(roundUpTo(prog->sharedWords + extraSharedWords +
                        config.cache.lineWords,
                    config.cache.lineWords)),
      directory(config.directory, config.numProcs),
      net(makeNetworkModel(config.network, config.numProcs,
                           config.cache.lineWords))
{
    MTS_REQUIRE(cfg.localWords > prog->localStaticWords + 256,
                "localWords too small for this program's local statics");
    if (modelNeedsSwitchInstr(cfg.model)) {
        bool hasSwitch = false;
        for (const auto &inst : prog->code)
            if (inst.op == Opcode::CSWITCH) {
                hasSwitch = true;
                break;
            }
        MTS_REQUIRE(hasSwitch || net->zeroLatency(),
                    switchModelName(cfg.model)
                        << " requires code processed by the grouping pass "
                           "(no cswitch instructions found)");
    }

    printHandler = [](const std::string &s) {
        std::fputs(s.c_str(), stdout);
        std::fputc('\n', stdout);
    };

    queue.reserve(static_cast<std::size_t>(cfg.numProcs));
    if (cfg.cachesEnabled())
        pendingStores.resize(static_cast<std::size_t>(cfg.numProcs));

    procs.reserve(cfg.numProcs);
    for (int p = 0; p < cfg.numProcs; ++p)
        procs.push_back(std::make_unique<Processor>(
            *this, static_cast<std::uint16_t>(p), cfg, *prog, *decoded));
}

Machine::~Machine() = default;

Cycle
Machine::issueMem(MemOp op)
{
    if (cfg.tracer)
        cfg.tracer->onSharedAccess(
            op.issueTime, op.proc,
            static_cast<std::uint32_t>(op.proc) *
                    cfg.effSwThreadsPerProc() +
                op.thread,
            op);
    if (op.kind == MemOpKind::Store && cfg.cachesEnabled())
        pendingStores[op.proc].push_back({op.addr, op.value});
    if (net->zeroLatency()) {
        // Ideal network: the access completes at issue, in the bounded
        // causality window enforced by the zero-latency quantum.
        op.returnTime = op.issueTime;
        processArrival(MemEvent{op.issueTime, 0, op});
        return op.issueTime + 1;
    }

    // The backend owns all timing: latency, contention, ordering.
    NetworkTiming t = net->route(op);
    op.returnTime = t.returnTime;
    queue.pushMem(t.arrival, op);
    return op.returnTime;
}

std::uint64_t
Machine::directLoad(Addr addr)
{
    return mem.read(addr);
}

std::uint64_t
Machine::directFetchAdd(Addr addr, std::uint64_t addend)
{
    return mem.fetchAdd(addr, addend);
}

void
Machine::directStore(Addr addr, std::uint64_t value)
{
    mem.write(addr, value);
}

std::uint64_t
Machine::estimateRead(Addr addr)
{
    return mem.read(addr);
}

void
Machine::invalidateSharers(Addr addr, std::uint16_t writer)
{
    Addr base = addr & ~static_cast<Addr>(cfg.cache.lineWords - 1);
    for (std::uint16_t p : directory.writersInvalidationSet(base, writer)) {
        procs[p]->cache()->invalidate(addr);
        netStats.countInvalidation();
    }
    SharedCache *wc = procs[writer]->cache();
    if (wc && wc->present(addr))
        directory.addSharer(base, writer);
}

void
Machine::processArrival(const MemEvent &ev)
{
    const MemOp &op = ev.op;
    netStats.count(op, cfg.cache.lineWords);

    // Report data accesses here, where their effects serialize: the
    // event loop applies arrivals in (time, seq) order, so observers
    // see the exact interleaving the memory module executed — the one
    // the fetch-add return values witness (at issue time, same-cycle
    // ties across processors can resolve either way).
    if (cfg.tracer && op.pc >= 0)
        cfg.tracer->onSharedData(
            ev.time, op.proc,
            static_cast<std::uint32_t>(op.proc) *
                    static_cast<std::uint32_t>(
                        cfg.effSwThreadsPerProc()) +
                op.thread,
            op.pc, op.addr,
            op.kind == MemOpKind::FetchAdd ? SharedDataKind::Rmw
            : op.kind == MemOpKind::Store  ? SharedDataKind::Write
            : op.spin                      ? SharedDataKind::SpinRead
                                           : SharedDataKind::Read,
            op.kind == MemOpKind::LoadPair ? 2 : 1);

    switch (op.kind) {
      case MemOpKind::Store:
        mem.write(op.addr, op.value);
        if (cfg.cachesEnabled()) {
            invalidateSharers(op.addr, op.proc);
            // Now visible in memory: retire from the writer's store
            // buffer. Ordered delivery retires stores in issue order, so
            // the head must be this store. (The writer's own cached copy
            // was already updated at issue; re-applying op.value here
            // would roll back any younger store to the same word.)
            auto &sb = pendingStores[op.proc];
            MTS_ASSERT(!sb.empty() && sb.front().addr == op.addr,
                       "store buffer out of sync with arrival order");
            sb.pop_front();
        }
        break;

      case MemOpKind::FetchAdd: {
        std::uint64_t old = mem.fetchAdd(op.addr, op.value);
        if (cfg.cachesEnabled()) {
            // Same in-flight-fill hazard as stores: drop any copy that a
            // concurrent fill resurrected between issue and arrival
            // (before the directory pass so the writer is not re-added).
            if (SharedCache *wc = procs[op.proc]->cache())
                wc->invalidate(op.addr);
            invalidateSharers(op.addr, op.proc);
        }
        if (op.deliver)
            procs[op.proc]->deliver(op.thread, op.reg, false, false, old,
                                    0);
        break;
      }

      case MemOpKind::Load:
      case MemOpKind::LoadPair: {
        std::uint64_t v0 = mem.read(op.addr);
        std::uint64_t v1 =
            op.kind == MemOpKind::LoadPair ? mem.read(op.addr + 1) : 0;
        if (op.fillLine) {
            SharedCache *c = procs[op.proc]->cache();
            MTS_ASSERT(c, "fill for a processor without a cache");
            Addr base = c->lineBase(op.addr);
            std::uint64_t line[64];
            for (unsigned w = 0; w < cfg.cache.lineWords; ++w)
                line[w] = mem.read(base + w);
            c->install(base, line, op.returnTime);
            // The memory image lags this processor's own stores still in
            // flight; forward them (in issue order) onto the fresh line
            // so its hits respect the processor's program order.
            for (const PendingStore &ps : pendingStores[op.proc])
                if (c->lineBase(ps.addr) == base)
                    c->refresh(ps.addr, ps.value);
            directory.addSharer(base, op.proc);
        }
        if (op.deliver)
            procs[op.proc]->deliver(op.thread, op.reg, op.fpDest,
                                    op.kind == MemOpKind::LoadPair, v0, v1);
        break;
      }
    }
}

RunResult
Machine::run()
{
    MTS_REQUIRE(!ran, "Machine::run may only be called once");
    ran = true;

    for (int p = 0; p < cfg.numProcs; ++p)
        queue.pushProc(0, static_cast<std::uint16_t>(p));

    const Cycle lookahead =
        net->zeroLatency() ? cfg.zeroLatencyQuantum : net->minDelay();
    std::size_t finished = 0;

    while (!queue.empty()) {
        if (queue.memIsNext()) {
            // Process in place: processArrival never mutates the queue,
            // so the reference stays valid until dropMem().
            processArrival(queue.peekMem());
            queue.dropMem();
            continue;
        }
        ProcEvent pe = queue.popProc();
        MTS_REQUIRE(pe.time <= cfg.maxCycles,
                    "watchdog: simulation exceeded "
                        << cfg.maxCycles
                        << " cycles (deadlock or runaway spin?)");
        Cycle horizon = std::min(
            queue.nextMemTime(),
            saturatingAdd(queue.nextProcTime(), lookahead));
        RunStatus st = procs[pe.proc]->run(pe.time, horizon);
        if (st.outcome == RunOutcome::Finished)
            ++finished;
        else
            queue.pushProc(st.resumeAt, pe.proc);
    }

    MTS_ASSERT(finished == static_cast<std::size_t>(cfg.numProcs),
               "event queue drained with " << cfg.numProcs - finished
                                           << " processors unfinished");

    RunResult r;
    r.numProcs = cfg.numProcs;
    r.threadsPerProc = cfg.threadsPerProc;
    r.swThreadsPerProc = cfg.swThreadsPerProc;

    // Canonical final-state digest: the shared static segment (scratch
    // words and line padding excluded so cache geometry cannot leak in),
    // then every software thread's termination registers in global-id
    // order (software threads == hardware contexts when 1:1).
    for (Addr a = 0; a < prog->sharedWords; ++a)
        r.digest.addSharedWord(mem.read(kSharedBase + a));
    for (int p = 0; p < cfg.numProcs; ++p)
        for (int t = 0; t < cfg.effSwThreadsPerProc(); ++t) {
            const ThreadContext &th =
                procs[p]->thread(static_cast<std::uint16_t>(t));
            r.digest.addThreadRegs(th.iregs[kDigestIntReg0],
                                   th.iregs[kDigestIntReg1],
                                   th.fregs[kDigestFpReg0],
                                   th.fregs[kDigestFpReg1]);
        }

    // Publish every component into the metrics registry under its own
    // scope; machine-wide totals are produced by the registry roll-up
    // and the merged structs reconstituted from the aggregated scopes.
    MetricsRegistry &reg = r.metrics;
    for (int p = 0; p < cfg.numProcs; ++p) {
        const std::string tag = ".p" + std::to_string(p);
        publishCpuStats(reg, "cpu" + tag, procs[p]->stats);
        if (const SharedCache *c = procs[p]->cache())
            publishCacheStats(reg, "cache" + tag, c->statistics());
        // The scheduler scope exists only with virtual threading on:
        // publishing nothing keeps the 1:1 metric set — and golden
        // traces — identical to the seed.
        if (cfg.swThreadsPerProc > 0)
            publishSchedStats(reg, "sched" + tag, procs[p]->sched);
        // Likewise the fused-tier scope exists only while the tier is
        // armed: fuse-off runs keep the seed's exact metric set.
        if (procs[p]->fuseTier())
            publishFuseStats(reg, "fuse" + tag, procs[p]->fuse);
        std::uint64_t estHits = 0, estMisses = 0;
        for (int t = 0; t < cfg.effSwThreadsPerProc(); ++t) {
            const auto &g = procs[p]
                                ->thread(static_cast<std::uint16_t>(t))
                                .groupEstimate;
            estHits += g.hits();
            estMisses += g.misses();
        }
        reg.add("estimate" + tag + ".hits", estHits);
        reg.add("estimate" + tag + ".misses", estMisses);
    }
    publishNetworkStats(reg, "net", netStats);
    // Topology-aware backends expose per-link contention counters;
    // the constant-latency pipe has none (and publishing nothing keeps
    // its metric set — and golden traces — identical to the seed).
    if (const NetLinkStats *ls = net->linkStats()) {
        publishLinkStats(reg, "link", *ls);
        r.link = *ls;
        r.hasLinkStats = true;
    }
    if (cfg.directory.mode != DirectoryMode::FullMap) {
        reg.add("directory.overflows", directory.overflows());
        reg.add("directory.broadcasts", directory.broadcasts());
    }
    reg.rollUp("cpu");
    reg.rollUp("cache");
    reg.rollUp("estimate");
    if (cfg.swThreadsPerProc > 0) {
        reg.rollUp("sched");
        r.sched = schedStatsFromMetrics(reg, "sched");
        r.hasSchedStats = true;
    }
    if (cfg.numProcs > 0 && procs[0]->fuseTier()) {
        reg.rollUp("fuse");
        r.fuse = fuseStatsFromMetrics(reg, "fuse");
        r.hasFuseStats = true;
    }

    r.cpu = cpuStatsFromMetrics(reg, "cpu");
    r.cache = cacheStatsFromMetrics(reg, "cache");
    r.net = networkStatsFromMetrics(reg, "net");
    r.estimateHits = reg.counter("estimate.hits");
    r.estimateMisses = reg.counter("estimate.misses");
    r.cycles = r.cpu.finishTime;

    if (cfg.tracer)
        cfg.tracer->onMetricsSnapshot(r.cycles, reg);
    return r;
}

} // namespace mts
