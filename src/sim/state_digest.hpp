/**
 * @file
 * Canonical final-state digest of one program execution.
 *
 * The digest is the machine-checkable form of the paper's central
 * invariant (Section 4): the multithreading models and the grouping pass
 * change *timing*, never *results*. Any two executors of the same
 * program — the event-driven Machine under any switch model, and the
 * zero-latency reference interpreter in src/verify/ — must agree on it.
 *
 * Definition (see DESIGN.md §10):
 *  - the shared static segment, word by word, for the program's
 *    `sharedWords` (extra scratch words and cache-line padding excluded
 *    so the digest is independent of cache geometry), then
 *  - per thread, in global-id order, the termination registers: integer
 *    v0/v1 (r2/r3) and floating-point f0/f1, as raw 64-bit words.
 *
 * Scratch registers are deliberately excluded: values such as ticket-lock
 * tickets are interleaving-dependent even in programs whose results are
 * not. Programs that want a value checked either store it to shared
 * memory or move it into a termination register before halting.
 *
 * Both hash streams use FNV-1a over 64-bit words, which is cheap enough
 * to compute unconditionally at the end of every run.
 */
#ifndef MTS_SIM_STATE_DIGEST_HPP
#define MTS_SIM_STATE_DIGEST_HPP

#include <bit>
#include <cstdint>
#include <string>

#include "isa/instruction.hpp"
#include "util/strings.hpp"

namespace mts
{

/// @name Termination-register convention (digested per thread).
/// @{
constexpr std::uint8_t kDigestIntReg0 = kRegRet0;      ///< v0 (r2)
constexpr std::uint8_t kDigestIntReg1 = kRegRet0 + 1;  ///< v1 (r3)
constexpr std::uint8_t kDigestFpReg0 = 0;              ///< f0
constexpr std::uint8_t kDigestFpReg1 = 1;              ///< f1
/// @}

/** Accumulating final-state digest (see file comment for the stream). */
struct StateDigest
{
    static constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;

    std::uint64_t sharedHash = kFnvOffset;  ///< shared static segment
    std::uint64_t regHash = kFnvOffset;     ///< termination registers
    std::uint64_t sharedWords = 0;          ///< words folded into sharedHash
    std::uint32_t threads = 0;              ///< threads folded into regHash

    static std::uint64_t
    mix(std::uint64_t h, std::uint64_t word)
    {
        return (h ^ word) * kFnvPrime;
    }

    void
    addSharedWord(std::uint64_t word)
    {
        sharedHash = mix(sharedHash, word);
        ++sharedWords;
    }

    /** Fold one thread's termination registers (global-id order). */
    void
    addThreadRegs(std::int64_t v0, std::int64_t v1, double f0, double f1)
    {
        regHash = mix(regHash, static_cast<std::uint64_t>(v0));
        regHash = mix(regHash, static_cast<std::uint64_t>(v1));
        regHash = mix(regHash, std::bit_cast<std::uint64_t>(f0));
        regHash = mix(regHash, std::bit_cast<std::uint64_t>(f1));
        ++threads;
    }

    /** Single 64-bit summary of both streams plus their extents. */
    std::uint64_t
    combined() const
    {
        std::uint64_t h = mix(kFnvOffset, sharedHash);
        h = mix(h, regHash);
        h = mix(h, sharedWords);
        return mix(h, threads);
    }

    bool
    operator==(const StateDigest &o) const
    {
        return sharedHash == o.sharedHash && regHash == o.regHash &&
               sharedWords == o.sharedWords && threads == o.threads;
    }

    bool
    operator!=(const StateDigest &o) const
    {
        return !(*this == o);
    }

    /** "shared=0x.../regs=0x..." form for divergence reports. */
    std::string
    hex() const
    {
        return format("shared=0x%016llx/regs=0x%016llx",
                      static_cast<unsigned long long>(sharedHash),
                      static_cast<unsigned long long>(regHash));
    }
};

} // namespace mts

#endif // MTS_SIM_STATE_DIGEST_HPP
