#include "sim/processor.hpp"

#include <bit>
#include <cmath>

#include "sim/machine.hpp"
#include "util/strings.hpp"

namespace mts
{

namespace
{

/**
 * Execute one purely-local decoded op at cycle @p now. Shared by the
 * generic step (which has already done readiness, stall accounting and
 * tracing) and the batched span executor. Must stay free of control
 * flow, shared-memory and switch decisions — decode guarantees only
 * local handlers reach it, and the default case enforces that.
 */
inline void
execLocal(const DecodedOp &op, ThreadContext &th, Cycle now)
{
    const auto wI = [&](std::int64_t v) {
        th.writeIReg(op.rd, v);
        th.regReady[op.d0] = now + op.lat;
        th.pendingShared[op.d0] = false;
        if (op.lat > 1 && now + op.lat > th.scoreboardMax)
            th.scoreboardMax = now + op.lat;
    };
    const auto wF = [&](double v) {
        th.fregs[op.rd] = v;
        th.regReady[op.d0] = now + op.lat;
        th.pendingShared[op.d0] = false;
        if (op.lat > 1 && now + op.lat > th.scoreboardMax)
            th.scoreboardMax = now + op.lat;
    };
    const auto a = [&]() { return th.readIReg(op.rs1); };
    const auto ua = [&]() { return static_cast<std::uint64_t>(a()); };
    const auto b = [&]() { return th.readIReg(op.rs2); };
    const auto ub = [&]() { return static_cast<std::uint64_t>(b()); };
    const auto fa = [&]() { return th.fregs[op.rs1]; };
    const auto fb = [&]() { return th.fregs[op.rs2]; };
    const auto effAddr = [&]() {
        return static_cast<Addr>(a() + op.imm);
    };

    switch (op.h) {
      case Handler::Nop:
        break;
      case Handler::Setpri:
        th.highPriority = op.imm != 0;
        break;

      // ---- integer ALU (wrapping two's-complement semantics) ----
      case Handler::AddRR:
        wI(static_cast<std::int64_t>(ua() + ub()));
        break;
      case Handler::AddRI:
        wI(static_cast<std::int64_t>(
            ua() + static_cast<std::uint64_t>(op.imm)));
        break;
      case Handler::SubRR:
        wI(static_cast<std::int64_t>(ua() - ub()));
        break;
      case Handler::SubRI:
        wI(static_cast<std::int64_t>(
            ua() - static_cast<std::uint64_t>(op.imm)));
        break;
      case Handler::MulRR:
        wI(static_cast<std::int64_t>(ua() * ub()));
        break;
      case Handler::MulRI:
        wI(static_cast<std::int64_t>(
            ua() * static_cast<std::uint64_t>(op.imm)));
        break;
      case Handler::DivRR: {
        std::int64_t d = b();
        MTS_REQUIRE(d != 0, "div by zero at source line " << op.srcLine);
        wI(a() / d);
        break;
      }
      case Handler::DivRI: {
        std::int64_t d = op.imm;
        MTS_REQUIRE(d != 0, "div by zero at source line " << op.srcLine);
        wI(a() / d);
        break;
      }
      case Handler::RemRR: {
        std::int64_t d = b();
        MTS_REQUIRE(d != 0, "rem by zero at source line " << op.srcLine);
        wI(a() % d);
        break;
      }
      case Handler::RemRI: {
        std::int64_t d = op.imm;
        MTS_REQUIRE(d != 0, "rem by zero at source line " << op.srcLine);
        wI(a() % d);
        break;
      }
      case Handler::AndRR: wI(a() & b()); break;
      case Handler::AndRI: wI(a() & op.imm); break;
      case Handler::OrRR: wI(a() | b()); break;
      case Handler::OrRI: wI(a() | op.imm); break;
      case Handler::XorRR: wI(a() ^ b()); break;
      case Handler::XorRI: wI(a() ^ op.imm); break;
      case Handler::SllRR:
        wI(static_cast<std::int64_t>(ua() << (b() & 63)));
        break;
      case Handler::SllRI:
        wI(static_cast<std::int64_t>(ua() << (op.imm & 63)));
        break;
      case Handler::SrlRR:
        wI(static_cast<std::int64_t>(ua() >> (b() & 63)));
        break;
      case Handler::SrlRI:
        wI(static_cast<std::int64_t>(ua() >> (op.imm & 63)));
        break;
      case Handler::SraRR: wI(a() >> (b() & 63)); break;
      case Handler::SraRI: wI(a() >> (op.imm & 63)); break;
      case Handler::SltRR: wI(a() < b() ? 1 : 0); break;
      case Handler::SltRI: wI(a() < op.imm ? 1 : 0); break;
      case Handler::SleRR: wI(a() <= b() ? 1 : 0); break;
      case Handler::SleRI: wI(a() <= op.imm ? 1 : 0); break;
      case Handler::SeqRR: wI(a() == b() ? 1 : 0); break;
      case Handler::SeqRI: wI(a() == op.imm ? 1 : 0); break;
      case Handler::SneRR: wI(a() != b() ? 1 : 0); break;
      case Handler::SneRI: wI(a() != op.imm ? 1 : 0); break;
      case Handler::Li: wI(op.imm); break;

      // ---- floating point ----
      case Handler::Fadd: wF(fa() + fb()); break;
      case Handler::Fsub: wF(fa() - fb()); break;
      case Handler::Fmul: wF(fa() * fb()); break;
      case Handler::Fdiv: wF(fa() / fb()); break;
      case Handler::Fsqrt: wF(std::sqrt(fa())); break;
      case Handler::Fneg: wF(-fa()); break;
      case Handler::Fabs: wF(std::fabs(fa())); break;
      case Handler::Fmin: wF(std::fmin(fa(), fb())); break;
      case Handler::Fmax: wF(std::fmax(fa(), fb())); break;
      case Handler::Fmv: wF(fa()); break;
      case Handler::Fli: wF(op.fimm); break;
      case Handler::Cvtif: wF(static_cast<double>(a())); break;
      case Handler::Cvtfi:
        wI(static_cast<std::int64_t>(std::trunc(fa())));
        break;
      case Handler::Feq: wI(fa() == fb() ? 1 : 0); break;
      case Handler::Flt: wI(fa() < fb() ? 1 : 0); break;
      case Handler::Fle: wI(fa() <= fb() ? 1 : 0); break;

      // ---- local memory ----
      case Handler::Ldl: {
        Addr addr = effAddr();
        MTS_REQUIRE(!isSharedAddr(addr),
                    "ldl with shared address (line " << op.srcLine
                                                     << ")");
        wI(static_cast<std::int64_t>(th.local.read(addr)));
        break;
      }
      case Handler::Fldl: {
        Addr addr = effAddr();
        MTS_REQUIRE(!isSharedAddr(addr),
                    "fldl with shared address (line " << op.srcLine
                                                      << ")");
        wF(std::bit_cast<double>(th.local.read(addr)));
        break;
      }
      case Handler::Stl: {
        Addr addr = effAddr();
        MTS_REQUIRE(!isSharedAddr(addr),
                    "stl with shared address (line " << op.srcLine
                                                     << ")");
        th.local.write(addr, ub());
        break;
      }
      case Handler::Fstl: {
        Addr addr = effAddr();
        MTS_REQUIRE(!isSharedAddr(addr),
                    "fstl with shared address (line " << op.srcLine
                                                      << ")");
        th.local.write(addr,
                       std::bit_cast<std::uint64_t>(th.fregs[op.rs2]));
        break;
      }

      default:
        MTS_PANIC("handler " << static_cast<int>(op.h)
                             << " ('" << opcodeName(op.op)
                             << "') is not a local handler");
    }
}

/**
 * Retire a fused span's micro-trace (DESIGN.md §15). Values only: the
 * caller has verified the entry guard (scoreboardMax <= now), under
 * which all intra-span timing was precomputed at fuse time, so no
 * per-op readiness scan and no per-op scoreboard writes happen here —
 * the few scoreboard entries that outlive the span are applied by the
 * caller from FusedSpan::exitDefs. Must raise exactly the diagnostics
 * execLocal would (div/rem by zero, shared-address local accesses).
 */
inline void
execFusedOps(const FusedSpan &fs, ThreadContext &th)
{
    const FusedOp *ops = fs.ops.data();
    for (std::uint32_t i = 0; i < fs.len; ++i) {
        const FusedOp &op = ops[i];
        const auto wI = [&](std::int64_t v) { th.writeIReg(op.rd, v); };
        const auto wF = [&](double v) { th.fregs[op.rd] = v; };
        const auto a = [&]() { return th.readIReg(op.rs1); };
        const auto ua = [&]() { return static_cast<std::uint64_t>(a()); };
        const auto b = [&]() { return th.readIReg(op.rs2); };
        const auto ub = [&]() { return static_cast<std::uint64_t>(b()); };
        const auto fa = [&]() { return th.fregs[op.rs1]; };
        const auto fb = [&]() { return th.fregs[op.rs2]; };
        const auto effAddr = [&]() {
            return static_cast<Addr>(a() + op.imm);
        };

        switch (op.h) {
          case Handler::Nop:
            break;
          case Handler::Setpri:
            th.highPriority = op.imm != 0;
            break;

          case Handler::AddRR:
            wI(static_cast<std::int64_t>(ua() + ub()));
            break;
          case Handler::AddRI:
            wI(static_cast<std::int64_t>(
                ua() + static_cast<std::uint64_t>(op.imm)));
            break;
          case Handler::SubRR:
            wI(static_cast<std::int64_t>(ua() - ub()));
            break;
          case Handler::SubRI:
            wI(static_cast<std::int64_t>(
                ua() - static_cast<std::uint64_t>(op.imm)));
            break;
          case Handler::MulRR:
            wI(static_cast<std::int64_t>(ua() * ub()));
            break;
          case Handler::MulRI:
            wI(static_cast<std::int64_t>(
                ua() * static_cast<std::uint64_t>(op.imm)));
            break;
          case Handler::DivRR: {
            std::int64_t d = b();
            MTS_REQUIRE(d != 0,
                        "div by zero at source line " << op.srcLine);
            wI(a() / d);
            break;
          }
          case Handler::DivRI: {
            std::int64_t d = op.imm;
            MTS_REQUIRE(d != 0,
                        "div by zero at source line " << op.srcLine);
            wI(a() / d);
            break;
          }
          case Handler::RemRR: {
            std::int64_t d = b();
            MTS_REQUIRE(d != 0,
                        "rem by zero at source line " << op.srcLine);
            wI(a() % d);
            break;
          }
          case Handler::RemRI: {
            std::int64_t d = op.imm;
            MTS_REQUIRE(d != 0,
                        "rem by zero at source line " << op.srcLine);
            wI(a() % d);
            break;
          }
          case Handler::AndRR: wI(a() & b()); break;
          case Handler::AndRI: wI(a() & op.imm); break;
          case Handler::OrRR: wI(a() | b()); break;
          case Handler::OrRI: wI(a() | op.imm); break;
          case Handler::XorRR: wI(a() ^ b()); break;
          case Handler::XorRI: wI(a() ^ op.imm); break;
          case Handler::SllRR:
            wI(static_cast<std::int64_t>(ua() << (b() & 63)));
            break;
          case Handler::SllRI:
            wI(static_cast<std::int64_t>(ua() << (op.imm & 63)));
            break;
          case Handler::SrlRR:
            wI(static_cast<std::int64_t>(ua() >> (b() & 63)));
            break;
          case Handler::SrlRI:
            wI(static_cast<std::int64_t>(ua() >> (op.imm & 63)));
            break;
          case Handler::SraRR: wI(a() >> (b() & 63)); break;
          case Handler::SraRI: wI(a() >> (op.imm & 63)); break;
          case Handler::SltRR: wI(a() < b() ? 1 : 0); break;
          case Handler::SltRI: wI(a() < op.imm ? 1 : 0); break;
          case Handler::SleRR: wI(a() <= b() ? 1 : 0); break;
          case Handler::SleRI: wI(a() <= op.imm ? 1 : 0); break;
          case Handler::SeqRR: wI(a() == b() ? 1 : 0); break;
          case Handler::SeqRI: wI(a() == op.imm ? 1 : 0); break;
          case Handler::SneRR: wI(a() != b() ? 1 : 0); break;
          case Handler::SneRI: wI(a() != op.imm ? 1 : 0); break;
          case Handler::Li: wI(op.imm); break;

          case Handler::Fadd: wF(fa() + fb()); break;
          case Handler::Fsub: wF(fa() - fb()); break;
          case Handler::Fmul: wF(fa() * fb()); break;
          case Handler::Fdiv: wF(fa() / fb()); break;
          case Handler::Fsqrt: wF(std::sqrt(fa())); break;
          case Handler::Fneg: wF(-fa()); break;
          case Handler::Fabs: wF(std::fabs(fa())); break;
          case Handler::Fmin: wF(std::fmin(fa(), fb())); break;
          case Handler::Fmax: wF(std::fmax(fa(), fb())); break;
          case Handler::Fmv: wF(fa()); break;
          case Handler::Fli: wF(op.fimm); break;
          case Handler::Cvtif: wF(static_cast<double>(a())); break;
          case Handler::Cvtfi:
            wI(static_cast<std::int64_t>(std::trunc(fa())));
            break;
          case Handler::Feq: wI(fa() == fb() ? 1 : 0); break;
          case Handler::Flt: wI(fa() < fb() ? 1 : 0); break;
          case Handler::Fle: wI(fa() <= fb() ? 1 : 0); break;

          case Handler::Ldl: {
            Addr addr = effAddr();
            MTS_REQUIRE(!isSharedAddr(addr),
                        "ldl with shared address (line " << op.srcLine
                                                         << ")");
            wI(static_cast<std::int64_t>(th.local.read(addr)));
            break;
          }
          case Handler::Fldl: {
            Addr addr = effAddr();
            MTS_REQUIRE(!isSharedAddr(addr),
                        "fldl with shared address (line " << op.srcLine
                                                          << ")");
            wF(std::bit_cast<double>(th.local.read(addr)));
            break;
          }
          case Handler::Stl: {
            Addr addr = effAddr();
            MTS_REQUIRE(!isSharedAddr(addr),
                        "stl with shared address (line " << op.srcLine
                                                         << ")");
            th.local.write(addr, ub());
            break;
          }
          case Handler::Fstl: {
            Addr addr = effAddr();
            MTS_REQUIRE(!isSharedAddr(addr),
                        "fstl with shared address (line " << op.srcLine
                                                          << ")");
            th.local.write(addr,
                           std::bit_cast<std::uint64_t>(th.fregs[op.rs2]));
            break;
          }

          default:
            MTS_PANIC("handler " << static_cast<int>(op.h)
                                 << " is not fusable");
        }
    }
}

} // namespace

Processor::Processor(Machine &machine_, std::uint16_t id,
                     const MachineConfig &config, const Program &program,
                     const DecodedProgram &decoded)
    : machine(machine_), cfg(config), code(program.code),
      decoded_(decoded), dec_(decoded.data()), codeSize_(decoded.size()),
      procId(id)
{
    const int swCount = cfg.effSwThreadsPerProc();
    threads.reserve(swCount);
    for (int t = 0; t < swCount; ++t) {
        std::uint32_t gid =
            static_cast<std::uint32_t>(id) * swCount + t;
        threads.emplace_back(gid, cfg.localWords);
        ThreadContext &th = threads.back();
        th.pc = program.entry;
        th.iregs[kRegArg0] = gid;
        th.iregs[kRegArg1] = cfg.totalThreads();
        th.iregs[kRegSp] = static_cast<std::int64_t>(cfg.localWords);
    }
    liveThreads = swCount;
    liveCtx_ = cfg.threadsPerProc;
    liveMask_.assign((cfg.threadsPerProc + 63) / 64, 0);
    for (int t = 0; t < cfg.threadsPerProc; ++t)
        liveMask_[t >> 6] |= 1ull << (t & 63);

    // Virtual threading: the first K software threads start installed on
    // the K contexts; the surplus waits on the run queue, ready at once.
    vt_ = cfg.swThreadsPerProc > 0;
    ctxThread_.resize(cfg.threadsPerProc);
    ctxDeadline_.assign(cfg.threadsPerProc, kNever);
    for (int k = 0; k < cfg.threadsPerProc; ++k) {
        ctxThread_[k] = static_cast<std::uint16_t>(k);
        if (vt_)
            ctxDeadline_[k] = cfg.quantumCycles;
    }
    for (int t = cfg.threadsPerProc; t < swCount; ++t)
        runq_.enqueue(static_cast<std::uint16_t>(t), 0);

    // Span batching folds the tracer's per-instruction callbacks away,
    // and switch-every-cycle makes every instruction a decision point,
    // so both force instruction-at-a-time stepping.
    spanExec_ = cfg.tracer == nullptr &&
                cfg.model != SwitchModel::SwitchEveryCycle;

    // The fused tier rides on span batching, so every spanExec_ opt-out
    // (tracer attached — which covers race-detector runs — and
    // switch-every-cycle) disables it too.
    fuseTier_ = spanExec_ && cfg.fuseSpans && decoded.fuse != nullptr;
    if (fuseTier_) {
        fuseCache_ = decoded.fuse.get();
        spanHits_.assign(codeSize_, 0);
        fusedAt_.assign(codeSize_, nullptr);
    }

    if (cfg.cachesEnabled())
        cache_ = std::make_unique<SharedCache>(cfg.cache);
}

int
Processor::nextLiveSlot(int from) const
{
    const int words = static_cast<int>(liveMask_.size());
    const int w = from >> 6;
    std::uint64_t m = liveMask_[w] >> (from & 63);
    if (m)
        return from + std::countr_zero(m);
    // Wrap: later words, then around to the low bits of word `w` (its
    // high bits were just proven empty, so rechecking it is safe).
    for (int i = 1; i <= words; ++i) {
        int wi = w + i >= words ? w + i - words : w + i;
        if (liveMask_[wi])
            return (wi << 6) + std::countr_zero(liveMask_[wi]);
    }
    MTS_PANIC("live-context mask empty with liveCtx=" << liveCtx_);
}

void
Processor::rotate()
{
    MTS_ASSERT(liveCtx_ > 0, "rotate with no live contexts");
    const int tpp = cfg.threadsPerProc;
    if (cfg.prioritySched) {
        // Prefer the next high-priority thread in round-robin order
        // (e.g. a lock holder), falling back to strict round robin.
        int cand = cur;
        for (int k = 1; k < tpp; ++k) {
            cand = cand + 1 == tpp ? 0 : cand + 1;
            if (!ctxTh(cand).halted && ctxTh(cand).highPriority) {
                cur = cand;
                return;
            }
        }
    }
    int next = cur + 1 == tpp ? 0 : cur + 1;
    if (!ctxTh(next).halted) {  // O(1) common case: neighbour is live
        cur = next;
        return;
    }
    cur = nextLiveSlot(next);
}

void
Processor::takeSwitch(ThreadContext &th, Cycle runEnd, Cycle threadReady,
                      SwitchReason reason)
{
    ++stats.switchesTaken;
    if (runEnd > th.runStart)
        stats.runLengths.add(runEnd - th.runStart);
    else
        ++stats.zeroRuns;  // decode-time switch right after switch-in
    th.readyAt = std::max(threadReady, runEnd);
    std::uint32_t from = th.globalId;
    if (vt_ && !runq_.empty())
        maybeSwapOut(th, runEnd);
    rotate();
    freshRun = true;
    if (cfg.tracer)
        cfg.tracer->onSwitch(runEnd, procId, from, ctxTh(cur).globalId,
                             th.readyAt, reason);
}

void
Processor::installFromQueue(Cycle now)
{
    RunQueueEntry in = runq_.take(runq_.pick(now));
    ctxThread_[cur] = in.thread;
    Cycle wake = std::max(now, in.readyAt);
    ctxDeadline_[cur] = wake + cfg.quantumCycles;
    if (cfg.tracer)
        cfg.tracer->onSchedEvent(now, procId, SchedEventKind::Install,
                                 threads[in.thread].globalId, wake);
}

void
Processor::maybeSwapOut(ThreadContext &th, Cycle now)
{
    // Swap only for a strict win: the chosen waiter must become ready
    // before the blocked thread does (ties keep the resident thread, so
    // schedules stay deterministic and the 1:1 path unperturbed).
    const RunQueueEntry &cand = runq_.entries()[runq_.pick(now)];
    if (std::max(now, cand.readyAt) >= th.readyAt)
        return;
    ++sched.blockSwitches;
    ++sched.requeues;
    sched.queueDepth.add(runq_.size());
    runq_.enqueue(ctxThread_[cur], th.readyAt);
    if (cfg.tracer)
        cfg.tracer->onSchedEvent(now, procId, SchedEventKind::Requeue,
                                 th.globalId, runq_.size());
    installFromQueue(now);
}

bool
Processor::schedTimer(ThreadContext &th, Cycle &now)
{
    std::size_t idx = runq_.pick(now);
    if (runq_.entries()[idx].readyAt > now) {
        // No waiter could use the context yet: re-arm the timer.
        ctxDeadline_[cur] = now + cfg.quantumCycles;
        return false;
    }

    // Preempt: the only scheduler action that pays the context cost —
    // save the evicted thread, restore the incoming one, both charged
    // as stall time (cf. missSwitchPenalty's late-switch accounting).
    ++sched.preemptions;
    sched.queueDepth.add(runq_.size());
    const Cycle cost = cfg.ctxSwitchCost;
    stats.stallCycles += 2 * cost;
    sched.saveCycles += cost;
    sched.restoreCycles += cost;
    if (freshRun)
        ++stats.zeroRuns;  // evicted before issuing a single instruction
    else if (now > th.runStart)
        stats.runLengths.add(now - th.runStart);
    else
        ++stats.zeroRuns;
    th.readyAt = now;  // it was running; it stays runnable
    ++sched.requeues;
    runq_.enqueue(ctxThread_[cur], now);
    if (cfg.tracer) {
        std::uint32_t gid = th.globalId;
        cfg.tracer->onSchedEvent(now, procId, SchedEventKind::Preempt,
                                 gid, ctxDeadline_[cur]);
        cfg.tracer->onSchedEvent(now, procId, SchedEventKind::Save, gid,
                                 cost);
        cfg.tracer->onSchedEvent(now, procId, SchedEventKind::Requeue,
                                 gid, runq_.size());
    }
    RunQueueEntry in = runq_.take(idx);
    ctxThread_[cur] = in.thread;
    now += 2 * cost;
    ctxDeadline_[cur] = now + cfg.quantumCycles;
    freshRun = true;
    if (cfg.tracer) {
        cfg.tracer->onSchedEvent(now, procId, SchedEventKind::Install,
                                 threads[in.thread].globalId, now);
        cfg.tracer->onSchedEvent(now, procId, SchedEventKind::Restore,
                                 threads[in.thread].globalId, cost);
    }
    return true;
}

void
Processor::deliver(std::uint16_t threadSlot, std::uint8_t reg, bool fpDest,
                   bool pair, std::uint64_t v0, std::uint64_t v1)
{
    ThreadContext &th = threads[threadSlot];
    if (fpDest) {
        th.fregs[reg] = std::bit_cast<double>(v0);
        if (pair)
            th.fregs[reg + 1] = std::bit_cast<double>(v1);
    } else {
        th.writeIReg(reg, static_cast<std::int64_t>(v0));
        if (pair)
            th.writeIReg(reg + 1, static_cast<std::int64_t>(v1));
    }
}

RunStatus
Processor::run(Cycle now, Cycle horizon)
{
    effHorizon = horizon;
    while (true) {
        if (liveThreads == 0)
            return {RunOutcome::Finished, 0};
        // Watchdog here as well as in the Machine loop: a runaway local
        // loop never creates events, so only the processor can notice.
        MTS_REQUIRE(now <= cfg.maxCycles,
                    "watchdog: processor " << procId << " exceeded "
                                           << cfg.maxCycles << " cycles");

        ThreadContext &th = ctxTh(cur);
        if (th.readyAt > now) {
            stats.idleCycles += th.readyAt - now;
            if (th.readyAt >= effHorizon)
                return {RunOutcome::Waiting, th.readyAt};
            now = th.readyAt;
        }
        if (now >= effHorizon)
            return {RunOutcome::Waiting, now};

        // Virtual threading: timer interrupt. Checked only at the burst
        // loop (and bounding the span budget below), so the 1:1 path
        // pays a single always-false branch.
        if (vt_ && now >= ctxDeadline_[cur] && !runq_.empty() &&
            schedTimer(th, now))
            continue;

        // Batched fast path: retire local spans and the control flow
        // between them in a tight loop. Falls through to the generic
        // step when the first op cannot issue at `now` (stall,
        // switch-on-use, wait) or is a batch terminator.
        if (spanExec_ &&
            static_cast<std::uint32_t>(th.pc) < codeSize_ &&
            isBatchableHandler(dec_[th.pc].h) && runSpan(th, now))
            continue;

        switch (step(th, now)) {
          case StepResult::Continue:
          case StepResult::Switched:
          case StepResult::Halted:
            break;
          case StepResult::NeedWait:
            return {RunOutcome::Waiting, std::max(waitUntil, now)};
        }
    }
}

namespace
{

/**
 * All sources and (WAW) destinations of @p op must be consumable at
 * @p now for the batcher to retire it; otherwise the generic step
 * re-runs the op with full stall accounting and switch-on-use
 * detection.
 */
inline bool
operandsReady(const DecodedOp &op, const ThreadContext &th, Cycle now)
{
    for (int i = 0; i < op.numUses; ++i)
        if (th.regReady[op.uses[i]] > now)
            return false;
    for (int i = 0; i < op.numDefs; ++i)
        if (th.regReady[op.defs[i]] > now)
            return false;
    return true;
}

/**
 * Cap on one batch: bounds how far `now` can run ahead of the outer
 * loop's watchdog check, so a runaway local loop (which never creates
 * events) still trips the watchdog promptly.
 */
constexpr std::uint64_t kMaxBatch = 1u << 16;

} // namespace

bool
Processor::runSpan(ThreadContext &th, Cycle &now)
{
    // The caller guarantees now < effHorizon; every batched op costs
    // exactly one cycle (zero stall), so the horizon budget is a simple
    // instruction count and the batch needs no per-op horizon check.
    // With descheduled threads waiting, the quantum deadline bounds the
    // batch too (the caller also guarantees now < ctxDeadline_[cur]).
    Cycle horizonBudget = effHorizon - now;
    if (vt_ && !runq_.empty() && ctxDeadline_[cur] - now < horizonBudget)
        horizonBudget = ctxDeadline_[cur] - now;
    const std::uint64_t budget =
        horizonBudget < kMaxBatch ? horizonBudget : kMaxBatch;

    if (freshRun) {
        th.runStart = now;
        th.sliceStart = now;
        freshRun = false;
    }

    const DecodedOp *ops = dec_;
    std::int32_t pc = th.pc;
    std::uint64_t executed = 0;  // instructions retired this batch
    std::uint64_t spent = 0;     // cycles consumed (+ fused stalls)
    while (spent < budget) {
        if (static_cast<std::uint32_t>(pc) >= codeSize_)
            break;  // generic step raises the out-of-range diagnostic
        const DecodedOp &op = ops[pc];

        // Purely-local straight-line stretch: the precomputed span
        // length lets this inner loop skip all handler-kind checks.
        if (op.localRun > 0) {
            // Fused superinstruction tier (DESIGN.md §15): profile the
            // stretch head while cold (one add per span execution), and
            // once hot retire the whole compiled micro-trace at once.
            // The entry guard makes the fuse-time static schedule
            // exact: a drained scoreboard means every intra-span stall
            // target is < now + totalCycles <= the batch budget, so
            // neither the burst horizon, a vt quantum deadline nor a
            // NeedWait could interleave mid-span on the decoded path.
            // Any guard miss falls through to the per-op loop below,
            // which natively splits the span (prefix now, rest later).
            // kDecFuseHead encodes the decode-time entry policy (see
            // decoded.hpp): long spans, or short ones with a
            // long-latency op worth a precomputed stall schedule.
            if (fuseTier_ && (op.flags & kDecFuseHead) != 0) {
                const FusedSpan *fs = fusedAt_[pc];
                if (fs == nullptr &&
                    ++spanHits_[pc] >= cfg.fuseThreshold) {
                    fs = fuseCache_->acquire(decoded_, pc);
                    fusedAt_[pc] = fs;
                    ++fuse.spans;
                }
                if (fs != nullptr) {
                    if (th.scoreboardMax > now) {
                        ++fuse.bailoutWatermark;
                    } else if (fs->totalCycles > budget - spent) {
                        ++fuse.bailoutBudget;
                    } else {
                        execFusedOps(*fs, th);
                        // Apply the precomputed scoreboard delta: only
                        // entries that outlive the span (all other
                        // ready times are <= the exit cycle, where the
                        // stale pre-span entries are equivalent).
                        for (const FusedSpan::ExitDef &ed : fs->exitDefs) {
                            th.regReady[ed.reg] = now + ed.readyOff;
                            th.pendingShared[ed.reg] = false;
                        }
                        if (fs->sbMaxOff >= 0)  // guard proved <= now
                            th.scoreboardMax =
                                now + static_cast<Cycle>(fs->sbMaxOff);
                        stats.stallCycles += fs->stallCycles;
                        now += fs->totalCycles;
                        spent += fs->totalCycles;
                        executed += fs->len;
                        pc += static_cast<std::int32_t>(fs->len);
                        ++fuse.execs;
                        fuse.instructions += fs->len;
                        continue;
                    }
                }
            }

            std::uint64_t k = budget - spent;
            if (op.localRun < k)
                k = op.localRun;
            std::uint64_t j = 0;
            // Watermark fast path: when every register is ready the
            // per-op scoreboard scan is one compare (see ThreadContext::
            // scoreboardMax for why 1-cycle results need no check).
            while (j < k && (th.scoreboardMax <= now ||
                             operandsReady(ops[pc], th, now))) {
                execLocal(ops[pc], th, now);
                ++pc;
                ++now;
                ++j;
            }
            executed += j;
            spent += j;
            if (j < k)
                break;  // operand not ready: generic step handles it
            continue;
        }

        // Between stretches: follow local control flow. Branches and
        // jumps never touch shared memory and are never switch decision
        // points (switch-every-cycle disables batching entirely), so
        // retiring them here is timing-identical to the generic step.
        if (!isBatchableHandler(op.h) ||
            (th.scoreboardMax > now && !operandsReady(op, th, now)))
            break;

        std::int32_t nextPc = pc + 1;
        switch (op.h) {
          case Handler::BeqRR:
            if (th.readIReg(op.rs1) == th.readIReg(op.rs2))
                nextPc = op.target;
            break;
          case Handler::BeqRI:
            if (th.readIReg(op.rs1) == op.imm)
                nextPc = op.target;
            break;
          case Handler::BneRR:
            if (th.readIReg(op.rs1) != th.readIReg(op.rs2))
                nextPc = op.target;
            break;
          case Handler::BneRI:
            if (th.readIReg(op.rs1) != op.imm)
                nextPc = op.target;
            break;
          case Handler::BltRR:
            if (th.readIReg(op.rs1) < th.readIReg(op.rs2))
                nextPc = op.target;
            break;
          case Handler::BltRI:
            if (th.readIReg(op.rs1) < op.imm)
                nextPc = op.target;
            break;
          case Handler::BgeRR:
            if (th.readIReg(op.rs1) >= th.readIReg(op.rs2))
                nextPc = op.target;
            break;
          case Handler::BgeRI:
            if (th.readIReg(op.rs1) >= op.imm)
                nextPc = op.target;
            break;
          case Handler::J:
            nextPc = op.target;
            break;
          case Handler::Jal:
            th.writeIReg(kRegRa, pc + 1);
            th.regReady[intReg(kRegRa)] = now + 1;
            th.pendingShared[intReg(kRegRa)] = false;
            nextPc = op.target;
            break;
          case Handler::Jr:
            nextPc = static_cast<std::int32_t>(th.readIReg(op.rs1));
            break;
          default:
            MTS_PANIC("handler " << static_cast<int>(op.h)
                                 << " is not batchable control flow");
        }
        pc = nextPc;
        ++now;
        ++executed;
        ++spent;
    }
    if (executed == 0)
        return false;
    th.pc = pc;
    stats.instructions += executed;
    stats.busyCycles += executed;
    spanInstructions_ += executed;
    return true;
}

Cycle
Processor::issueSharedLoad(ThreadContext &th, const DecodedOp &inst,
                           Cycle now, Addr addr, bool &missed)
{
    const bool isFaa = inst.flags & kDecFaa;
    const bool isSpin = inst.flags & kDecSpin;
    const bool isPair = inst.flags & kDecPair;
    const bool fpDest = inst.flags & kDecFpDest;
    // Whether shared accesses actually travel (any non-ideal backend).
    const bool netLatent = !machine.netZeroLatency();

    missed = true;  // refined below for cache hits / estimate hits

    // Section 5.2 inter-block grouping estimator: a hit means the load
    // could have been issued with the preceding group, so its latency is
    // treated as already covered (traffic still counted).
    if (cfg.groupEstimate && !isFaa && !isSpin && netLatent) {
        if (th.groupEstimate.access(addr)) {
            ++stats.estimateHits;
            missed = false;
            std::uint64_t v0 = machine.estimateRead(addr);
            std::uint64_t v1 = isPair ? machine.estimateRead(addr + 1) : 0;
            deliver(curSw(), inst.rd, fpDest,
                    isPair, v0, v1);
            MemOp op2;
            op2.kind = isPair ? MemOpKind::LoadPair : MemOpKind::Load;
            op2.addr = addr;
            op2.proc = procId;
            op2.thread = curSw();
            op2.deliver = false;  // value already architecturally visible
            op2.pc = th.pc;
            op2.issueTime = now;
            machine.issueMem(op2);
            effHorizon = std::min(effHorizon, now + machine.netMinDelay());
            return now + 1;
        }
    }

    // Cache probe (conditional-switch / switch-on-*miss models).
    if (cache_ && !isFaa) {
        std::uint64_t v = 0;
        Cycle mergeReady = 0;
        bool sameLine =
            !isPair || cache_->lineBase(addr) == cache_->lineBase(addr + 1);
        ProbeResult pr = sameLine
                             ? cache_->probe(addr, now, v, mergeReady)
                             : ProbeResult::Miss;
        if (pr == ProbeResult::Hit) {
            missed = false;
            std::uint64_t v1 = 0;
            if (isPair) {
                bool ok = cache_->tryRead(addr + 1, now, v1);
                MTS_ASSERT(ok, "pair second word must hit with the first");
            }
            deliver(curSw(), inst.rd, fpDest,
                    isPair, v, v1);
            // A spin load that hits cannot observe a change until an
            // invalidation arrives, so hot-spinning is pointless: make
            // the following cswitch unconditional.
            if (isSpin && cfg.model == SwitchModel::ConditionalSwitch)
                th.missedSinceSwitch = true;
            return now + 2;  // cache hit: local-load latency
        }
        if (pr == ProbeResult::Merge) {
            // MSHR merge: wait for the in-flight fill; the write-through
            // memory image is always current, so read it at arrival time.
            MemOp mop;
            mop.kind = isPair ? MemOpKind::LoadPair : MemOpKind::Load;
            mop.addr = addr;
            mop.proc = procId;
            mop.thread = curSw();
            mop.reg = inst.rd;
            mop.fpDest = fpDest;
            mop.spin = isSpin;
            mop.noTraffic = true;
            mop.pc = th.pc;
            mop.issueTime = now;
            machine.issueMem(mop);
            effHorizon = std::min(effHorizon, now + machine.netMinDelay());
            Cycle ready = std::max(mergeReady, now + machine.netMinDelay());
            th.lastReturn = std::max(th.lastReturn, ready);
            return ready;
        }
        // Miss: fall through to a line fill.
    }

    if (isFaa && cache_)
        cache_->invalidate(addr);  // memory-side atomic; drop stale copy

    // Dead-result fetch-and-add (rd = r0): fire-and-forget like a store —
    // nothing to wait for, so no switch and no lastReturn update. This is
    // how commit-style atomic increments avoid paying the round trip.
    if (isFaa && inst.rd == kRegZero) {
        missed = false;
        MemOp mop;
        mop.kind = MemOpKind::FetchAdd;
        mop.addr = addr;
        mop.value = static_cast<std::uint64_t>(th.readIReg(inst.rs2));
        mop.proc = procId;
        mop.thread = curSw();
        mop.deliver = false;
        mop.pc = th.pc;
        mop.issueTime = now;
        machine.issueMem(mop);
        if (netLatent)
            effHorizon = std::min(effHorizon, now + machine.netMinDelay());
        return now + 1;
    }

    // §5.2 estimator mode: this load heads (or joins the misses of) a real
    // group, so the next cswitch must actually be taken.
    if (cfg.groupEstimate)
        th.missedSinceSwitch = true;

    MemOp mop;
    mop.kind = isFaa ? MemOpKind::FetchAdd
                     : (isPair ? MemOpKind::LoadPair : MemOpKind::Load);
    mop.addr = addr;
    if (isFaa)
        mop.value = static_cast<std::uint64_t>(th.readIReg(inst.rs2));
    mop.proc = procId;
    mop.thread = curSw();
    mop.reg = inst.rd;
    mop.fpDest = fpDest;
    mop.spin = isSpin;
    mop.fillLine = cache_ != nullptr && !isFaa;
    mop.pc = th.pc;
    mop.issueTime = now;
    Cycle ready = machine.issueMem(mop);
    if (netLatent)
        effHorizon = std::min(effHorizon, now + machine.netMinDelay());
    th.lastReturn = std::max(th.lastReturn, ready);
    return ready;
}

void
Processor::issueSharedStore(ThreadContext &th, const DecodedOp &inst,
                            Cycle now, Addr addr)
{
    std::uint64_t value =
        inst.flags & kDecFpVal
            ? std::bit_cast<std::uint64_t>(th.fregs[inst.rs2])
            : static_cast<std::uint64_t>(th.readIReg(inst.rs2));

    // Write-through with store-buffer forwarding: the processor's own
    // cached copy is updated at issue so later hits by this processor see
    // program order; memory and other caches update at arrival.
    if (cache_)
        cache_->updateOwn(addr, value);

    MemOp mop;
    mop.kind = MemOpKind::Store;
    mop.addr = addr;
    mop.value = value;
    mop.proc = procId;
    mop.thread = curSw();
    mop.pc = th.pc;
    mop.issueTime = now;
    machine.issueMem(mop);
    if (!machine.netZeroLatency())
        effHorizon = std::min(effHorizon, now + machine.netMinDelay());
}

Processor::StepResult
Processor::step(ThreadContext &th, Cycle &now)
{
    MTS_REQUIRE(th.pc >= 0 &&
                    th.pc < static_cast<std::int32_t>(codeSize_),
                "pc " << th.pc << " out of range (bad jr/fallthrough?)");
    const DecodedOp &op = dec_[th.pc];

    if (freshRun) {
        th.runStart = now;
        th.sliceStart = now;
        freshRun = false;
    }

    const bool useModel = cfg.model == SwitchModel::SwitchOnUse ||
                          cfg.model == SwitchModel::SwitchOnUseMiss;

    // ---- source readiness / switch-on-use detection ----
    // This scan must run unconditionally (no scoreboard-watermark
    // shortcut): its lazy pendingShared clears are load-bearing.
    // issueSharedLoad's hit path leaves the flag unrefreshed, so a
    // stale flag from a long-landed miss must be cleared here — by the
    // consumer's use scan or by the next load's own def scan — before
    // any switch-on-use decision reads it.
    Cycle srcReady = now;
    Cycle pendingReady = 0;
    for (int i = 0; i < op.numUses; ++i) {
        RegId u = op.uses[i];
        Cycle rdy = th.regReady[u];
        if (rdy <= now) {
            th.pendingShared[u] = false;
            continue;
        }
        if (th.pendingShared[u])
            pendingReady = std::max(pendingReady, rdy);
        srcReady = std::max(srcReady, rdy);
    }
    for (int i = 0; i < op.numDefs; ++i) {
        RegId d = op.defs[i];
        Cycle rdy = th.regReady[d];
        if (rdy <= now) {
            th.pendingShared[d] = false;
            continue;
        }
        if (!th.pendingShared[d])
            continue;  // pipeline-latency result: overwriting is in order
        // WAW on an in-flight load: its late delivery would overwrite
        // this instruction's result, so the write must wait it out.
        pendingReady = std::max(pendingReady, rdy);
        srcReady = std::max(srcReady, rdy);
    }

    if (useModel && pendingReady > now) {
        // The use of an in-flight shared value: switch instead of stall.
        // Recognized at decode => zero-cost; the use re-executes on wake.
        takeSwitch(th, now, pendingReady, SwitchReason::Use);
        return StepResult::Switched;
    }

    if (srcReady > now) {
        stats.stallCycles += srcReady - now;
        if (srcReady >= effHorizon) {
            waitUntil = srcReady;
            return StepResult::NeedWait;
        }
        now = srcReady;
    }

    // ---- execute at cycle `now` ----
    ++stats.instructions;
    ++stats.busyCycles;
    if (cfg.tracer)
        cfg.tracer->onInstruction(now, procId, th.globalId, th.pc,
                                  code[th.pc]);

    std::int32_t nextPc = th.pc + 1;
    Cycle switchReady = kNever;  // switch after this instruction if set
    SwitchReason switchReason = SwitchReason::Explicit;
    Cycle memReady = kNever;     // shared-load return time, if any
    bool halted = false;
    bool missPenalty = false;

    switch (op.h) {
      case Handler::Halt:
        halted = true;
        break;

      case Handler::Cswitch: {
        bool take = true;
        const bool conditional =
            cfg.model == SwitchModel::ConditionalSwitch ||
            (cfg.groupEstimate &&
             cfg.model == SwitchModel::ExplicitSwitch);
        if (conditional) {
            bool sliceExpired =
                cfg.sliceLimit != 0 && now - th.sliceStart >= cfg.sliceLimit;
            take = th.missedSinceSwitch || sliceExpired;
            if (take && !th.missedSinceSwitch) {
                switchReason = SwitchReason::SliceLimit;
                ++stats.sliceLimitSwitches;
            }
            th.missedSinceSwitch = false;
            if (!take)
                ++stats.switchesSkipped;
        } else if (cfg.model == SwitchModel::Ideal) {
            take = false;  // costs its cycle; never switches
        }
        if (take)
            switchReady = std::max(th.lastReturn, now + 1);
        break;
      }

      // ---- control flow ----
      case Handler::BeqRR:
        if (th.readIReg(op.rs1) == th.readIReg(op.rs2))
            nextPc = op.target;
        break;
      case Handler::BeqRI:
        if (th.readIReg(op.rs1) == op.imm)
            nextPc = op.target;
        break;
      case Handler::BneRR:
        if (th.readIReg(op.rs1) != th.readIReg(op.rs2))
            nextPc = op.target;
        break;
      case Handler::BneRI:
        if (th.readIReg(op.rs1) != op.imm)
            nextPc = op.target;
        break;
      case Handler::BltRR:
        if (th.readIReg(op.rs1) < th.readIReg(op.rs2))
            nextPc = op.target;
        break;
      case Handler::BltRI:
        if (th.readIReg(op.rs1) < op.imm)
            nextPc = op.target;
        break;
      case Handler::BgeRR:
        if (th.readIReg(op.rs1) >= th.readIReg(op.rs2))
            nextPc = op.target;
        break;
      case Handler::BgeRI:
        if (th.readIReg(op.rs1) >= op.imm)
            nextPc = op.target;
        break;
      case Handler::J:
        nextPc = op.target;
        break;
      case Handler::Jal:
        th.writeIReg(kRegRa, th.pc + 1);
        th.regReady[intReg(kRegRa)] = now + 1;
        th.pendingShared[intReg(kRegRa)] = false;
        nextPc = op.target;
        break;
      case Handler::Jr:
        nextPc = static_cast<std::int32_t>(th.readIReg(op.rs1));
        break;

      // ---- shared memory ----
      case Handler::SharedLoad: {
        Addr addr = static_cast<Addr>(th.readIReg(op.rs1) + op.imm);
        MTS_REQUIRE(isSharedAddr(addr),
                    "shared access to local address "
                        << addr << " (line " << op.srcLine << ")");
        const bool isFaa = op.flags & kDecFaa;
        const bool isSpin = op.flags & kDecSpin;
        if (isFaa)
            ++stats.fetchAdds;
        else if (isSpin)
            ++stats.spinLoads;
        else
            ++stats.sharedLoads;
        bool missed = false;
        Cycle ready = issueSharedLoad(th, op, now, addr, missed);

        // Dead-result fetch-and-add behaves like a store: no wait, no
        // switch (see issueSharedLoad).
        if (isFaa && op.rd == kRegZero)
            break;
        memReady = ready;

        // Destination scoreboard entries. An in-flight delivery owns the
        // destination until it lands: pendingShared drives both the
        // switch-on-use decode check and the WAW interlock in step().
        RegId d0 = op.d0;
        th.regReady[d0] = ready;
        if (missed && ready > now + 1)
            th.pendingShared[d0] = true;
        if (op.flags & kDecPair) {
            RegId d1 = static_cast<RegId>(d0 + 1);
            th.regReady[d1] = ready;
            if (missed && ready > now + 1)
                th.pendingShared[d1] = true;
        }
        if (ready > th.scoreboardMax)
            th.scoreboardMax = ready;

        // Cache-based models must bound hit streaks (the Section 6.2
        // run-length limit, generalized): an endless run of hits would
        // starve co-resident threads, e.g. a spinner starving the lock
        // holder on its own processor.
        bool sliceExpired = cache_ != nullptr && cfg.sliceLimit != 0 &&
                            now - th.sliceStart >= cfg.sliceLimit;

        // Model reactions.
        switch (cfg.model) {
          case SwitchModel::SwitchOnLoad:
            switchReady = ready;
            switchReason = SwitchReason::Load;
            break;
          case SwitchModel::SwitchOnUse:
          case SwitchModel::SwitchOnUseMiss:
            if (!missed && sliceExpired) {
                switchReady = ready;
                switchReason = SwitchReason::SliceLimit;
                ++stats.sliceLimitSwitches;
            }
            break;
          case SwitchModel::SwitchOnMiss:
            if (missed) {
                switchReady = ready;
                switchReason = SwitchReason::Load;
                missPenalty = true;
            } else if (sliceExpired) {
                switchReady = ready;
                switchReason = SwitchReason::SliceLimit;
                ++stats.sliceLimitSwitches;
            }
            break;
          case SwitchModel::ConditionalSwitch:
            if (missed)
                th.missedSinceSwitch = true;
            break;
          case SwitchModel::ExplicitSwitch:
          case SwitchModel::SwitchEveryCycle:
          case SwitchModel::Ideal:
            break;
        }
        break;
      }

      case Handler::SharedStore: {
        Addr addr = static_cast<Addr>(th.readIReg(op.rs1) + op.imm);
        MTS_REQUIRE(isSharedAddr(addr),
                    "shared store to local address "
                        << addr << " (line " << op.srcLine << ")");
        ++stats.sharedStores;
        issueSharedStore(th, op, now, addr);
        break;
      }

      case Handler::Print:
        machine.print(format(
            "%lld", static_cast<long long>(th.readIReg(op.rs1))));
        break;
      case Handler::Fprint:
        machine.print(format("%.10g", th.fregs[op.rs1]));
        break;

      default:
        // Every local handler: ALU, FP, local memory, li/fli, setpri.
        execLocal(op, th, now);
        break;
    }

    th.pc = nextPc;
    now += 1;  // the instruction occupied cycle (now-1)

    if (halted) {
        th.halted = true;
        --liveThreads;
        if (now > stats.finishTime)
            stats.finishTime = now;
        if (now > th.runStart)
            stats.runLengths.add(now - th.runStart);
        else
            ++stats.zeroRuns;
        if (vt_ && !runq_.empty()) {
            // The freed context immediately picks up a queued software
            // thread (free: a halted thread has no live state to save).
            ++sched.haltInstalls;
            sched.queueDepth.add(runq_.size());
            installFromQueue(now);
        } else {
            // No waiter: this context's install chain is exhausted.
            liveMask_[cur >> 6] &= ~(1ull << (cur & 63));
            --liveCtx_;
        }
        if (liveCtx_ > 0) {
            rotate();
            freshRun = true;
            if (cfg.tracer)
                cfg.tracer->onSwitch(now, procId, th.globalId,
                                     ctxTh(cur).globalId, now,
                                     SwitchReason::Halt);
        }
        return StepResult::Halted;
    }

    if (cfg.model == SwitchModel::SwitchEveryCycle) {
        Cycle ready = memReady != kNever ? std::max(memReady, now) : now;
        takeSwitch(th, now, ready, SwitchReason::EveryCycle);
        return StepResult::Switched;
    }

    if (switchReady != kNever) {
        if (missPenalty && cfg.missSwitchPenalty > 0) {
            // Late-detected switch: squashed pipeline slots.
            stats.stallCycles += cfg.missSwitchPenalty;
            takeSwitch(th, now, switchReady, switchReason);
            now += cfg.missSwitchPenalty;
        } else {
            takeSwitch(th, now, switchReady, switchReason);
        }
        return StepResult::Switched;
    }

    return StepResult::Continue;
}

} // namespace mts
